#pragma once

#include <chrono>
#include <cstdint>

/// \file stopwatch.h
/// Wall-clock timing for benchmark harnesses and the SSFL time breakdown.

namespace geqo {

/// \brief A monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates time across multiple start/stop intervals, used for the
/// SSFL per-phase breakdown (Figure 11).
class Accumulator {
 public:
  void Start() { watch_.Reset(); }
  void Stop() { total_seconds_ += watch_.ElapsedSeconds(); }
  double TotalSeconds() const { return total_seconds_; }
  void Clear() { total_seconds_ = 0.0; }

 private:
  Stopwatch watch_;
  double total_seconds_ = 0.0;
};

/// \brief RAII helper: accumulates the enclosing scope's duration.
class ScopedTimer {
 public:
  explicit ScopedTimer(Accumulator* accumulator) : accumulator_(accumulator) {
    accumulator_->Start();
  }
  ~ScopedTimer() { accumulator_->Stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Accumulator* accumulator_;
};

}  // namespace geqo
