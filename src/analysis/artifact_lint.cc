#include "analysis/artifact_lint.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "analysis/shape_checker.h"
#include "common/format_magic.h"
#include "common/hash.h"
#include "common/log_io.h"
#include "encode/encoding.h"

namespace geqo::analysis {
namespace {

/// Sanity bounds: a field beyond these is a corrupt length, not a real
/// deployment (the largest shipped layout is ~10^2 symbols and the largest
/// model ~10^7 scalars). They keep the walker from looping on garbage.
constexpr uint64_t kMaxLayoutSymbols = 1 << 12;
constexpr uint64_t kMaxTensorDim = 1 << 24;
constexpr uint64_t kMaxStateEntries = 1 << 12;
constexpr uint64_t kMaxNameLength = 1 << 12;
constexpr int64_t kMaxHnswLevel = 64;
constexpr uint64_t kMaxLintShards = 4096;  // ShardedCatalogOptions::Validate

/// Bounded reader over raw bytes that remembers where it fell off the end.
class ByteCursor {
 public:
  explicit ByteCursor(std::string_view bytes) : bytes_(bytes) {}

  size_t offset() const { return offset_; }
  bool ok() const { return ok_; }
  bool AtEnd() const { return offset_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - offset_; }

  uint64_t U64() { return Fixed<uint64_t>(); }
  uint32_t U32() { return Fixed<uint32_t>(); }
  uint8_t U8() { return Fixed<uint8_t>(); }
  float F32() { return Fixed<float>(); }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  bool Skip(size_t n) {
    if (!ok_ || remaining() < n) {
      MarkFailed();
      return false;
    }
    offset_ += n;
    return true;
  }

  std::string String(size_t max_length) {
    const uint64_t length = U64();
    if (!ok_ || length > max_length || remaining() < length) {
      MarkFailed();
      return {};
    }
    std::string out(bytes_.substr(offset_, length));
    offset_ += length;
    return out;
  }

 private:
  template <typename T>
  T Fixed() {
    if (!ok_ || remaining() < sizeof(T)) {
      MarkFailed();
      return T{};
    }
    T value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  void MarkFailed() { ok_ = false; }

  std::string_view bytes_;
  size_t offset_ = 0;
  bool ok_ = true;
};

std::string OffsetContext(size_t offset) {
  return "offset " + std::to_string(offset);
}

void At(Diagnostics* out, const char* code, std::string message,
        size_t offset) {
  Report(out, code, std::move(message), OffsetContext(offset));
}

/// Strips and verifies the 8-byte checksum footer shared by the v2 container
/// formats. Returns the payload view; on a bad footer the payload is still
/// returned (best effort) so the structural walk can narrow the damage.
std::string_view CheckFooter(std::string_view bytes, const char* kind_prefix,
                             Diagnostics* out) {
  const std::string truncated_code = std::string(kind_prefix) + ".truncated";
  const std::string checksum_code = std::string(kind_prefix) + ".checksum";
  if (bytes.size() < sizeof(uint64_t)) {
    Report(out, truncated_code,
           "file is shorter than the checksum footer", OffsetContext(0));
    return {};
  }
  const size_t payload_size = bytes.size() - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload_size, sizeof(stored));
  const uint64_t computed = HashBytes(bytes.data(), payload_size);
  if (stored != computed) {
    Report(out, checksum_code,
           "payload checksum mismatch: the file is corrupt, truncated, or "
           "carries trailing bytes",
           OffsetContext(payload_size));
  }
  return bytes.substr(0, payload_size);
}

/// Walks a GEQOMODL section. Collects the tensor shapes and, when the
/// entries look like an EMF state dict, proves the layer graph. Returns
/// false when the walk had to stop early.
bool LintModelSection(ByteCursor* cursor, size_t expected_input_dim,
                      Diagnostics* out) {
  const size_t magic_offset = cursor->offset();
  const uint64_t magic = cursor->U64();
  if (!cursor->ok() || magic != io::kModelStateMagic) {
    At(out, "model.magic",
       "model state section does not start with the GEQOMODL magic",
       magic_offset);
    return false;
  }
  const size_t count_offset = cursor->offset();
  const uint64_t count = cursor->U64();
  if (!cursor->ok() || count > kMaxStateEntries) {
    At(out, "model.count",
       "implausible state entry count " + std::to_string(count),
       count_offset);
    return false;
  }
  std::vector<NamedShape> shapes;
  for (uint64_t i = 0; i < count; ++i) {
    const size_t entry_offset = cursor->offset();
    const std::string name = cursor->String(kMaxNameLength);
    if (!cursor->ok()) {
      At(out, "model.name",
         "state entry " + std::to_string(i) +
             " has a truncated or oversized name",
         entry_offset);
      return false;
    }
    const size_t shape_offset = cursor->offset();
    const uint64_t rows = cursor->U64();
    const uint64_t cols = cursor->U64();
    if (!cursor->ok() || rows > kMaxTensorDim || cols > kMaxTensorDim) {
      At(out, "model.shape",
         "state entry '" + name + "' declares an implausible shape " +
             std::to_string(rows) + "x" + std::to_string(cols),
         shape_offset);
      return false;
    }
    if (!cursor->Skip(rows * cols * sizeof(float))) {
      At(out, "model.truncated",
         "state entry '" + name + "' is cut off before its " +
             std::to_string(rows * cols) + " float payload ends",
         shape_offset);
      return false;
    }
    shapes.push_back(NamedShape{name, rows, cols});
  }
  // Only state dicts that announce the EMF trunk get the layer-graph proof;
  // GEQOMODL itself is a generic named-tensor container.
  bool looks_like_emf = false;
  for (const NamedShape& shape : shapes) {
    if (shape.name == "conv1.self") looks_like_emf = true;
  }
  if (looks_like_emf) {
    for (Diagnostic diagnostic :
         CheckEmfStateShapes(shapes, expected_input_dim)) {
      out->push_back(std::move(diagnostic));
    }
  }
  return true;
}

/// Walks a GEQOHNSW section. \p expected_dim / \p expected_count are
/// cross-checked when provided (from the catalog header).
bool LintHnswSection(ByteCursor* cursor, std::optional<uint64_t> expected_dim,
                     std::optional<uint64_t> expected_count,
                     Diagnostics* out) {
  const size_t magic_offset = cursor->offset();
  const uint64_t magic = cursor->U64();
  if (!cursor->ok() || magic != io::kHnswMagic) {
    At(out, "hnsw.magic",
       "index section does not start with the GEQOHNSW magic", magic_offset);
    return false;
  }
  const size_t version_offset = cursor->offset();
  const uint64_t version = cursor->U64();
  if (!cursor->ok() || version != io::kHnswVersion) {
    At(out, "hnsw.version",
       "unsupported index version " + std::to_string(version),
       version_offset);
    return false;
  }
  const size_t params_offset = cursor->offset();
  const uint64_t dim = cursor->U64();
  const uint64_t max_connections = cursor->U64();
  cursor->Skip(3 * sizeof(uint64_t));  // ef_construction, ef_search, seed
  // v2 quantization block: resolved mode, calibration threshold, calibrated
  // flag, and — only for a calibrated quantized index — the HNSWSQ8! magic
  // plus dim (min, max) f32 range pairs.
  const size_t quant_offset = cursor->offset();
  const uint64_t quant_enabled = cursor->U64();
  cursor->Skip(sizeof(uint64_t));  // sq8_calibration threshold
  const uint64_t calibrated = cursor->U64();
  if (!cursor->ok() || quant_enabled > 1 || calibrated > 1) {
    At(out, "hnsw.quant",
       "invalid quantization flags (quant " + std::to_string(quant_enabled) +
           ", calibrated " + std::to_string(calibrated) + ")",
       quant_offset);
    return false;
  }
  if (quant_enabled == 1 && calibrated == 1) {
    const size_t sq8_magic_offset = cursor->offset();
    const uint64_t sq8_magic = cursor->U64();
    if (!cursor->ok() || sq8_magic != io::kHnswSq8Magic) {
      At(out, "hnsw.quant-magic",
         "calibrated quantized index is missing the HNSWSQ8! range-table "
         "magic",
         sq8_magic_offset);
      return false;
    }
    for (uint64_t i = 0; i < dim; ++i) {
      const size_t range_offset = cursor->offset();
      const float range_min = cursor->F32();
      const float range_max = cursor->F32();
      if (!cursor->ok() || !std::isfinite(range_min) ||
          !std::isfinite(range_max) || range_min > range_max) {
        At(out, "hnsw.quant-range",
           "SQ8 range for dimension " + std::to_string(i) +
               " is corrupt (non-finite or min > max)",
           range_offset);
        return false;
      }
    }
  }
  cursor->Skip(4 * sizeof(uint64_t));  // rng stream position
  const size_t level_offset = cursor->offset();
  const int64_t max_level = cursor->I64();
  const uint64_t entry_point = cursor->U64();
  const size_t count_offset = cursor->offset();
  const uint64_t count = cursor->U64();
  if (!cursor->ok()) {
    At(out, "hnsw.truncated", "index header is cut off", params_offset);
    return false;
  }
  if (dim == 0 || dim > kMaxTensorDim || max_connections < 2) {
    At(out, "hnsw.params",
       "invalid construction parameters (dim " + std::to_string(dim) +
           ", M " + std::to_string(max_connections) + ")",
       params_offset);
    return false;
  }
  if (expected_dim.has_value() && dim != *expected_dim) {
    At(out, "hnsw.dim-mismatch",
       "index dim " + std::to_string(dim) +
           " does not match the embedding dim " +
           std::to_string(*expected_dim) + " of the enclosing snapshot",
       params_offset);
  }
  if (expected_count.has_value() && count != *expected_count) {
    At(out, "hnsw.count-mismatch",
       "index holds " + std::to_string(count) + " vectors for " +
           std::to_string(*expected_count) + " catalog entries",
       count_offset);
    return false;
  }
  if (max_level < -1 || max_level > kMaxHnswLevel) {
    At(out, "hnsw.level",
       "implausible max level " + std::to_string(max_level), level_offset);
    return false;
  }
  if (count == 0 && max_level != -1) {
    At(out, "hnsw.entry-point", "empty index declares an entry point",
       level_offset);
  }
  if (count > 0 && entry_point >= count) {
    At(out, "hnsw.entry-point",
       "entry point " + std::to_string(entry_point) + " is out of range",
       level_offset);
  }
  if (!cursor->Skip(count * dim * sizeof(float))) {
    At(out, "hnsw.truncated", "vector payload is cut off", count_offset);
    return false;
  }
  for (uint64_t node = 0; node < count; ++node) {
    const size_t node_offset = cursor->offset();
    const int64_t level = cursor->I64();
    if (!cursor->ok() || level < 0 || level > max_level) {
      At(out, "hnsw.level",
         "node " + std::to_string(node) + " has level " +
             std::to_string(level) + " outside [0, " +
             std::to_string(max_level) + "]",
         node_offset);
      return false;
    }
    for (int64_t layer = 0; layer <= level; ++layer) {
      const size_t links_offset = cursor->offset();
      const uint64_t n_links = cursor->U64();
      if (!cursor->ok() || n_links > count) {
        At(out, "hnsw.link",
           "node " + std::to_string(node) + " layer " +
               std::to_string(layer) + " declares " +
               std::to_string(n_links) + " links (index holds " +
               std::to_string(count) + " nodes)",
           links_offset);
        return false;
      }
      for (uint64_t i = 0; i < n_links; ++i) {
        const uint32_t link = cursor->U32();
        if (!cursor->ok() || link >= count) {
          At(out, "hnsw.link",
             "node " + std::to_string(node) + " links to out-of-range id " +
                 std::to_string(link),
             links_offset);
          return false;
        }
      }
    }
  }
  const size_t end_offset = cursor->offset();
  const uint64_t end_magic = cursor->U64();
  if (!cursor->ok() || end_magic != io::kHnswEndMagic) {
    At(out, "hnsw.end-magic", "index section is missing its end marker",
       end_offset);
    return false;
  }
  return true;
}

void LintSystemSnapshot(std::string_view bytes, Diagnostics* out) {
  const std::string_view payload = CheckFooter(bytes, "snapshot", out);
  ByteCursor cursor(payload);
  const uint64_t magic = cursor.U64();
  if (!cursor.ok() || magic != io::kSystemSnapshotMagic) {
    At(out, "snapshot.magic", "missing GEQOSNAP magic", 0);
    return;
  }
  const size_t version_offset = cursor.offset();
  const uint64_t version = cursor.U64();
  if (!cursor.ok() || version != io::kSystemSnapshotVersion) {
    At(out, "snapshot.version",
       "unsupported snapshot version " + std::to_string(version),
       version_offset);
    return;
  }
  cursor.U64();  // catalog fingerprint: opaque without the live catalog
  const size_t layout_offset = cursor.offset();
  const uint64_t tables = cursor.U64();
  const uint64_t columns = cursor.U64();
  const size_t calibration_offset = cursor.offset();
  const float radius = cursor.F32();
  const float threshold = cursor.F32();
  if (!cursor.ok()) {
    At(out, "snapshot.truncated", "snapshot header is cut off", 0);
    return;
  }
  size_t expected_input_dim = 0;
  if (tables == 0 || tables > kMaxLayoutSymbols || columns == 0 ||
      columns > kMaxLayoutSymbols) {
    At(out, "snapshot.layout",
       "implausible agnostic layout " + std::to_string(tables) + "x" +
           std::to_string(columns),
       layout_offset);
  } else {
    expected_input_dim =
        EncodingLayout::Agnostic(tables, columns).node_vector_size();
  }
  if (!std::isfinite(radius) || radius < 0.0f) {
    At(out, "snapshot.radius",
       "calibrated VMF radius is not a finite non-negative value",
       calibration_offset);
  }
  if (!std::isfinite(threshold) || threshold < 0.0f || threshold > 1.0f) {
    At(out, "snapshot.threshold",
       "calibrated EMF threshold is outside [0, 1]", calibration_offset);
  }
  if (!LintModelSection(&cursor, expected_input_dim, out)) return;
  if (!cursor.AtEnd()) {
    At(out, "snapshot.trailing",
       std::to_string(cursor.remaining()) +
           " unexpected bytes after the model state section",
       cursor.offset());
  }
}

void LintCatalogSnapshot(std::string_view bytes, Diagnostics* out) {
  const std::string_view payload = CheckFooter(bytes, "catalog", out);
  ByteCursor cursor(payload);
  const uint64_t magic = cursor.U64();
  if (!cursor.ok() || magic != io::kCatalogMagic) {
    At(out, "catalog.magic", "missing GEQOCATG magic", 0);
    return;
  }
  const size_t version_offset = cursor.offset();
  const uint64_t version = cursor.U64();
  if (!cursor.ok() || version != io::kCatalogVersion) {
    At(out, "catalog.version",
       "unsupported catalog version " + std::to_string(version),
       version_offset);
    return;
  }
  cursor.U64();  // database schema fingerprint: opaque without the catalog
  const size_t dim_offset = cursor.offset();
  const uint64_t embedding_dim = cursor.U64();
  const size_t count_offset = cursor.offset();
  const uint64_t count = cursor.U64();
  if (!cursor.ok()) {
    At(out, "catalog.truncated", "catalog header is cut off", 0);
    return;
  }
  if (embedding_dim == 0 || embedding_dim > kMaxTensorDim) {
    At(out, "catalog.embedding-dim",
       "implausible embedding dim " + std::to_string(embedding_dim),
       dim_offset);
    return;
  }
  if (count * sizeof(uint64_t) > cursor.remaining()) {
    At(out, "catalog.entry-count",
       "entry count " + std::to_string(count) +
           " exceeds what the file can hold",
       count_offset);
    return;
  }
  cursor.Skip(count * sizeof(uint64_t));  // canonical hashes: free-form
  if (!LintHnswSection(&cursor, embedding_dim, count, out)) return;
  // Union-find forest in compressed, min-root form: every parent points at
  // or below its child and directly at its root.
  const size_t parents_offset = cursor.offset();
  std::vector<uint64_t> parents(count);
  for (uint64_t i = 0; i < count; ++i) parents[i] = cursor.U64();
  if (!cursor.ok()) {
    At(out, "catalog.truncated", "class forest is cut off", parents_offset);
    return;
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (parents[i] > i) {
      At(out, "catalog.parent-range",
         "entry " + std::to_string(i) + " has parent " +
             std::to_string(parents[i]) +
             " above itself (roots must be class minima)",
         parents_offset);
      return;
    }
    if (parents[parents[i]] != parents[i]) {
      At(out, "catalog.parent-compressed",
         "entry " + std::to_string(i) +
             " points at a non-root parent (forest must be "
             "path-compressed)",
         parents_offset);
      return;
    }
  }
  // Verifier memo (v3): strictly sorted normalized pair fingerprints, each
  // carrying its secondary check-hash pair (the collision guard) and a
  // verdict byte in the tri-state range.
  const size_t memo_offset = cursor.offset();
  const uint64_t memo_count = cursor.U64();
  if (!cursor.ok() ||
      memo_count > cursor.remaining() / (4 * sizeof(uint64_t) + 1)) {
    At(out, "catalog.truncated", "verifier memo is cut off", memo_offset);
    return;
  }
  uint64_t prev_lo = 0;
  uint64_t prev_hi = 0;
  for (uint64_t i = 0; i < memo_count; ++i) {
    const size_t entry_offset = cursor.offset();
    const uint64_t lo = cursor.U64();
    const uint64_t hi = cursor.U64();
    const uint64_t check_lo = cursor.U64();
    const uint64_t check_hi = cursor.U64();
    const uint8_t verdict = cursor.U8();
    if (!cursor.ok()) {
      At(out, "catalog.truncated", "verifier memo is cut off", entry_offset);
      return;
    }
    if (lo > hi) {
      At(out, "catalog.memo-key",
         "memo entry " + std::to_string(i) +
             " is not a normalized pair fingerprint (lo > hi)",
         entry_offset);
      return;
    }
    if (i > 0 && (lo < prev_lo || (lo == prev_lo && hi <= prev_hi))) {
      At(out, "catalog.memo-order",
         "memo entries are not strictly sorted at entry " +
             std::to_string(i),
         entry_offset);
      return;
    }
    if (lo == hi && check_lo > check_hi) {
      At(out, "catalog.memo-check",
         "memo entry " + std::to_string(i) +
             " violates the check-pair normalization on a key tie "
             "(check_lo > check_hi while lo == hi)",
         entry_offset);
      return;
    }
    if (verdict > 2) {  // EquivalenceVerdict::kUnknown is the largest value
      At(out, "catalog.memo-verdict",
         "memo entry " + std::to_string(i) + " has verdict byte " +
             std::to_string(verdict) + " outside the tri-state range",
         entry_offset);
      return;
    }
    prev_lo = lo;
    prev_hi = hi;
  }
  const size_t end_offset = cursor.offset();
  const uint64_t end_magic = cursor.U64();
  if (!cursor.ok() || end_magic != io::kCatalogEndMagic) {
    At(out, "catalog.end-magic", "catalog is missing its CATGEND! marker",
       end_offset);
    return;
  }
  if (!cursor.AtEnd()) {
    At(out, "catalog.trailing",
       std::to_string(cursor.remaining()) +
           " unexpected bytes after the end marker",
       cursor.offset());
  }
}

/// Walks a GEQOSHRD container: header, per-entry shard routing table, one
/// full GEQOCATG snapshot per shard (linted recursively), and the
/// pending-verification tail of (query gid, member gid) pairs.
void LintShardedCatalog(std::string_view bytes, Diagnostics* out) {
  const std::string_view payload = CheckFooter(bytes, "sharded", out);
  ByteCursor cursor(payload);
  const uint64_t magic = cursor.U64();
  if (!cursor.ok() || magic != io::kShardedCatalogMagic) {
    At(out, "sharded.magic", "missing GEQOSHRD magic", 0);
    return;
  }
  const size_t version_offset = cursor.offset();
  const uint64_t version = cursor.U64();
  if (!cursor.ok() || version != io::kShardedCatalogVersion) {
    At(out, "sharded.version",
       "unsupported sharded catalog version " + std::to_string(version),
       version_offset);
    return;
  }
  const size_t shards_offset = cursor.offset();
  const uint64_t num_shards = cursor.U64();
  const size_t count_offset = cursor.offset();
  const uint64_t count = cursor.U64();
  if (!cursor.ok()) {
    At(out, "sharded.truncated", "container header is cut off", 0);
    return;
  }
  if (num_shards == 0 || num_shards > kMaxLintShards) {
    At(out, "sharded.shard-count",
       "implausible shard count " + std::to_string(num_shards),
       shards_offset);
    return;
  }
  if (count > cursor.remaining() / sizeof(uint64_t)) {
    At(out, "sharded.entry-count",
       "entry count " + std::to_string(count) +
           " exceeds what the file can hold",
       count_offset);
    return;
  }
  const size_t routing_offset = cursor.offset();
  std::vector<uint64_t> shard_of(count);
  for (uint64_t i = 0; i < count; ++i) shard_of[i] = cursor.U64();
  if (!cursor.ok()) {
    At(out, "sharded.truncated", "shard routing table is cut off",
       routing_offset);
    return;
  }
  std::vector<uint64_t> per_shard(num_shards, 0);
  for (uint64_t i = 0; i < count; ++i) {
    if (shard_of[i] >= num_shards) {
      At(out, "sharded.shard-range",
         "entry " + std::to_string(i) + " routes to shard " +
             std::to_string(shard_of[i]) + " of " +
             std::to_string(num_shards),
         routing_offset);
      return;
    }
    ++per_shard[shard_of[i]];
  }
  for (uint64_t sid = 0; sid < num_shards; ++sid) {
    const size_t segment_offset = cursor.offset();
    const uint64_t segment_size = cursor.U64();
    if (!cursor.ok() || segment_size > cursor.remaining()) {
      At(out, "sharded.truncated",
         "shard " + std::to_string(sid) + " segment is cut off",
         segment_offset);
      return;
    }
    const std::string_view segment =
        payload.substr(cursor.offset(), segment_size);
    cursor.Skip(segment_size);
    // Each segment is a complete GEQOCATG snapshot (own footer, memo, end
    // magic): the catalog walker proves it. Its diagnostics carry offsets
    // relative to the segment, so anchor them with a container-level note.
    const size_t findings_before = out->size();
    LintCatalogSnapshot(segment, out);
    if (out->size() > findings_before) {
      At(out, "sharded.segment",
         "shard " + std::to_string(sid) +
             " segment failed the catalog walk (segment-relative offsets "
             "above)",
         segment_offset);
      return;
    }
    // Cross-check: the segment's entry count must match the routing table.
    // GEQOCATG layout: magic, version, fingerprint, dim, count — count at
    // byte 32 of the segment payload.
    if (segment.size() >= 5 * sizeof(uint64_t)) {
      uint64_t segment_count = 0;
      std::memcpy(&segment_count, segment.data() + 4 * sizeof(uint64_t),
                  sizeof(segment_count));
      if (segment_count != per_shard[sid]) {
        At(out, "sharded.segment-count",
           "shard " + std::to_string(sid) + " segment holds " +
               std::to_string(segment_count) +
               " entries but the routing table assigns it " +
               std::to_string(per_shard[sid]),
           segment_offset);
        return;
      }
    }
  }
  // Pending-verification tail: sorted, deduplicated (query gid, member gid)
  // pairs. Both endpoints must exist and share a shard — equivalence classes
  // never span shards, so a cross-shard pair is corruption.
  const size_t pending_offset = cursor.offset();
  const uint64_t pending_count = cursor.U64();
  if (!cursor.ok() ||
      pending_count > cursor.remaining() / (2 * sizeof(uint64_t))) {
    At(out, "sharded.truncated", "pending-verification tail is cut off",
       pending_offset);
    return;
  }
  uint64_t prev_query = 0;
  uint64_t prev_member = 0;
  for (uint64_t i = 0; i < pending_count; ++i) {
    const size_t pair_offset = cursor.offset();
    const uint64_t query_gid = cursor.U64();
    const uint64_t member_gid = cursor.U64();
    if (!cursor.ok()) {
      At(out, "sharded.truncated", "pending-verification tail is cut off",
         pair_offset);
      return;
    }
    if (query_gid >= count || member_gid >= count) {
      At(out, "sharded.pending-range",
         "pending pair " + std::to_string(i) + " names entry " +
             std::to_string(query_gid >= count ? query_gid : member_gid) +
             " beyond the " + std::to_string(count) + " stored entries",
         pair_offset);
      return;
    }
    if (shard_of[query_gid] != shard_of[member_gid]) {
      At(out, "sharded.pending-shard",
         "pending pair " + std::to_string(i) +
             " spans shards — equivalence classes never do",
         pair_offset);
      return;
    }
    if (i > 0 && (query_gid < prev_query ||
                  (query_gid == prev_query && member_gid <= prev_member))) {
      At(out, "sharded.pending-order",
         "pending pairs are not strictly sorted at pair " + std::to_string(i),
         pair_offset);
      return;
    }
    prev_query = query_gid;
    prev_member = member_gid;
  }
  const size_t end_offset = cursor.offset();
  const uint64_t end_magic = cursor.U64();
  if (!cursor.ok() || end_magic != io::kShardedCatalogEndMagic) {
    At(out, "sharded.end-magic",
       "sharded catalog is missing its end marker", end_offset);
    return;
  }
  if (!cursor.AtEnd()) {
    At(out, "sharded.trailing",
       std::to_string(cursor.remaining()) +
           " unexpected bytes after the end marker",
       cursor.offset());
  }
}

/// Walks a GEQOMANI catalog-store manifest: versioned header, store kind,
/// base segment + log tail ids, end magic, under the shared checksum
/// footer. Mirrors persist::ReadManifest's validation byte for byte so the
/// linter can gate a store directory without opening it.
void LintStoreManifest(std::string_view bytes, Diagnostics* out) {
  const std::string_view payload = CheckFooter(bytes, "manifest", out);
  ByteCursor cursor(payload);
  const uint64_t magic = cursor.U64();
  if (!cursor.ok() || magic != io::kManifestMagic) {
    At(out, "manifest.magic", "missing GEQOMANI magic", 0);
    return;
  }
  const size_t version_offset = cursor.offset();
  const uint64_t version = cursor.U64();
  if (!cursor.ok() || version != io::kManifestVersion) {
    At(out, "manifest.version",
       "unsupported manifest version " + std::to_string(version),
       version_offset);
    return;
  }
  const size_t kind_offset = cursor.offset();
  const uint64_t kind = cursor.U64();
  const size_t shards_offset = cursor.offset();
  const uint64_t num_shards = cursor.U64();
  const size_t base_offset = cursor.offset();
  const uint64_t base_id = cursor.U64();
  const uint64_t base_entry_count = cursor.U64();
  const size_t allocator_offset = cursor.offset();
  const uint64_t next_file_id = cursor.U64();
  const size_t logs_offset = cursor.offset();
  const uint64_t num_logs = cursor.U64();
  if (!cursor.ok()) {
    At(out, "manifest.truncated", "manifest header is cut off", 0);
    return;
  }
  if (kind != 1 && kind != 2) {  // StoreKind::kSingle / kSharded
    At(out, "manifest.kind",
       "unknown store kind " + std::to_string(kind), kind_offset);
    return;
  }
  if (num_shards == 0 || num_shards > kMaxLintShards) {
    At(out, "manifest.shard-count",
       "implausible shard count " + std::to_string(num_shards),
       shards_offset);
    return;
  }
  if (base_id == 0 && base_entry_count != 0) {
    At(out, "manifest.base",
       "entry count " + std::to_string(base_entry_count) +
           " without a base segment",
       base_offset);
  }
  if (base_id != 0 && base_id >= next_file_id) {
    At(out, "manifest.base",
       "base id " + std::to_string(base_id) +
           " outruns the id allocator (next " +
           std::to_string(next_file_id) + ")",
       allocator_offset);
  }
  if (num_logs > cursor.remaining() / sizeof(uint64_t)) {
    At(out, "manifest.truncated",
       "log list of " + std::to_string(num_logs) +
           " ids exceeds what the file can hold",
       logs_offset);
    return;
  }
  uint64_t prev = 0;
  for (uint64_t i = 0; i < num_logs; ++i) {
    const size_t id_offset = cursor.offset();
    const uint64_t id = cursor.U64();
    if (!cursor.ok()) {
      At(out, "manifest.truncated", "log id list is cut off", id_offset);
      return;
    }
    if (id == 0 || id <= prev) {
      At(out, "manifest.log-ids",
         "log ids must be nonzero and strictly increasing (id " +
             std::to_string(id) + " after " + std::to_string(prev) + ")",
         id_offset);
      return;
    }
    if (id >= next_file_id || id == base_id) {
      At(out, "manifest.log-ids",
         "log id " + std::to_string(id) +
             " collides with the id allocator or the base segment",
         id_offset);
      return;
    }
    prev = id;
  }
  const size_t end_offset = cursor.offset();
  const uint64_t end_magic = cursor.U64();
  if (!cursor.ok() || end_magic != io::kManifestEndMagic) {
    At(out, "manifest.end-magic", "manifest is missing its end marker",
       end_offset);
    return;
  }
  if (!cursor.AtEnd()) {
    At(out, "manifest.trailing",
       std::to_string(cursor.remaining()) +
           " unexpected bytes after the end marker",
       cursor.offset());
  }
}

/// Decodes one framed delta-log record (the grammar of persist/wal.h) and
/// proves its type- and normalization invariants. \p offset anchors the
/// diagnostics at the frame's position in the file.
bool LintWalRecord(std::string_view record, size_t index, size_t offset,
                   uint64_t* prev_add_gid, bool* saw_add, Diagnostics* out) {
  ByteCursor cursor(record);
  const uint8_t type = cursor.U8();
  switch (type) {
    case 1: {  // kAddEntry: gid, canonical hash, check hash
      const uint64_t gid = cursor.U64();
      cursor.U64();
      cursor.U64();
      if (cursor.ok() && *saw_add && gid <= *prev_add_gid) {
        At(out, "wal.add-order",
           "record " + std::to_string(index) + " adds gid " +
               std::to_string(gid) +
               " at or below an earlier add in the same partition (gid " +
               std::to_string(*prev_add_gid) + ")",
           offset);
        return false;
      }
      *prev_add_gid = gid;
      *saw_add = true;
      break;
    }
    case 2: {  // kVerdict: normalized pair key, check pair, verdict byte
      const uint64_t lo = cursor.U64();
      const uint64_t hi = cursor.U64();
      const uint64_t check_lo = cursor.U64();
      const uint64_t check_hi = cursor.U64();
      const uint8_t verdict = cursor.U8();
      if (cursor.ok() && (lo > hi || (lo == hi && check_lo > check_hi))) {
        At(out, "wal.verdict-key",
           "record " + std::to_string(index) +
               " carries a non-normalized memo key",
           offset);
        return false;
      }
      if (cursor.ok() && verdict > 2) {  // EquivalenceVerdict::kUnknown
        At(out, "wal.verdict-range",
           "record " + std::to_string(index) + " has verdict byte " +
               std::to_string(verdict) + " outside the tri-state range",
           offset);
        return false;
      }
      break;
    }
    case 3: {  // kUnion: two distinct gids
      const uint64_t a = cursor.U64();
      const uint64_t b = cursor.U64();
      if (cursor.ok() && a == b) {
        At(out, "wal.union",
           "record " + std::to_string(index) + " unions gid " +
               std::to_string(a) + " with itself",
           offset);
        return false;
      }
      break;
    }
    case 4:  // kPending: (query gid, member gid)
      cursor.U64();
      cursor.U64();
      break;
    default:
      At(out, "wal.record-type",
         "record " + std::to_string(index) + " has unknown type " +
             std::to_string(type),
         offset);
      return false;
  }
  if (!cursor.ok() || !cursor.AtEnd()) {
    At(out, "wal.record-size",
       "record " + std::to_string(index) +
           " does not match its type's payload size",
       offset);
    return false;
  }
  return true;
}

/// Walks a GEQOWALG delta-log partition: the 32-byte header, then the
/// framed record stream. The frame checksums localize damage, so the walker
/// classifies it: a torn tail (crash mid-append — recoverable, but a
/// cleanly closed store never shows one) versus mid-log corruption (valid
/// frames after a bad one — never produced by a sequential writer).
void LintWalLog(std::string_view bytes, Diagnostics* out) {
  constexpr size_t kWalHeaderSize = 4 * sizeof(uint64_t);
  if (bytes.size() < kWalHeaderSize) {
    At(out, "wal.truncated",
       "file is shorter than the partition header (creation crash window)",
       0);
    return;
  }
  uint64_t header[4] = {};
  std::memcpy(header, bytes.data(), kWalHeaderSize);
  if (header[0] != io::kWalMagic) {
    At(out, "wal.magic", "missing GEQOWALG magic", 0);
    return;
  }
  if (header[1] != io::kWalVersion) {
    At(out, "wal.version",
       "unsupported log version " + std::to_string(header[1]),
       sizeof(uint64_t));
    return;
  }
  if (header[2] == 0) {
    At(out, "wal.file-id", "partition header names file id 0 (never issued)",
       2 * sizeof(uint64_t));
  }
  if (header[3] >= kMaxLintShards) {
    At(out, "wal.shard",
       "implausible shard index " + std::to_string(header[3]),
       3 * sizeof(uint64_t));
    return;
  }
  const io::FramedScan scan = io::ScanFramedRecords(bytes, kWalHeaderSize);
  if (scan.mid_corruption) {
    At(out, "wal.mid-corruption",
       "a record fails its checksum but valid records follow — interior "
       "damage, not a torn tail",
       scan.clean_size);
    return;
  }
  if (scan.torn) {
    At(out, "wal.torn-tail",
       std::to_string(bytes.size() - scan.clean_size) +
           " bytes past the last valid frame do not form a record "
           "(interrupted append)",
       scan.clean_size);
  }
  size_t offset = kWalHeaderSize;
  uint64_t prev_add_gid = 0;
  bool saw_add = false;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    if (!LintWalRecord(scan.records[i], i, offset, &prev_add_gid, &saw_add,
                       out)) {
      return;
    }
    offset += io::kFrameOverhead + scan.records[i].size();
  }
}

void LintModelStateFile(std::string_view bytes, Diagnostics* out) {
  ByteCursor cursor(bytes);
  if (!LintModelSection(&cursor, /*expected_input_dim=*/0, out)) return;
  if (!cursor.AtEnd()) {
    At(out, "model.trailing",
       std::to_string(cursor.remaining()) +
           " unexpected bytes after the last state entry",
       cursor.offset());
  }
}

void LintHnswFile(std::string_view bytes, Diagnostics* out) {
  ByteCursor cursor(bytes);
  if (!LintHnswSection(&cursor, std::nullopt, std::nullopt, out)) return;
  if (!cursor.AtEnd()) {
    At(out, "hnsw.trailing",
       std::to_string(cursor.remaining()) +
           " unexpected bytes after the end marker",
       cursor.offset());
  }
}

}  // namespace

std::string_view ArtifactKindToString(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kSystemSnapshot:
      return "system snapshot";
    case ArtifactKind::kServingCatalog:
      return "serving catalog";
    case ArtifactKind::kModelState:
      return "model state";
    case ArtifactKind::kHnswIndex:
      return "hnsw index";
    case ArtifactKind::kShardedCatalog:
      return "sharded catalog";
    case ArtifactKind::kStoreManifest:
      return "catalog store manifest";
    case ArtifactKind::kWalLog:
      return "catalog delta log";
    case ArtifactKind::kUnknown:
      break;
  }
  return "unknown";
}

ArtifactKind SniffArtifact(std::string_view bytes) {
  if (bytes.size() < sizeof(uint64_t)) return ArtifactKind::kUnknown;
  uint64_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  switch (magic) {
    case io::kSystemSnapshotMagic:
      return ArtifactKind::kSystemSnapshot;
    case io::kCatalogMagic:
      return ArtifactKind::kServingCatalog;
    case io::kModelStateMagic:
      return ArtifactKind::kModelState;
    case io::kHnswMagic:
      return ArtifactKind::kHnswIndex;
    case io::kShardedCatalogMagic:
      return ArtifactKind::kShardedCatalog;
    case io::kManifestMagic:
      return ArtifactKind::kStoreManifest;
    case io::kWalMagic:
      return ArtifactKind::kWalLog;
    default:
      return ArtifactKind::kUnknown;
  }
}

Diagnostics LintArtifactBytes(std::string_view bytes) {
  Diagnostics out;
  switch (SniffArtifact(bytes)) {
    case ArtifactKind::kSystemSnapshot:
      LintSystemSnapshot(bytes, &out);
      break;
    case ArtifactKind::kServingCatalog:
      LintCatalogSnapshot(bytes, &out);
      break;
    case ArtifactKind::kModelState:
      LintModelStateFile(bytes, &out);
      break;
    case ArtifactKind::kHnswIndex:
      LintHnswFile(bytes, &out);
      break;
    case ArtifactKind::kShardedCatalog:
      LintShardedCatalog(bytes, &out);
      break;
    case ArtifactKind::kStoreManifest:
      LintStoreManifest(bytes, &out);
      break;
    case ArtifactKind::kWalLog:
      LintWalLog(bytes, &out);
      break;
    case ArtifactKind::kUnknown:
      At(&out, "artifact.unknown-magic",
         "file does not start with any known GEqO artifact magic", 0);
      break;
  }
  return out;
}

Result<Diagnostics> LintArtifactFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  return LintArtifactBytes(contents.str());
}

}  // namespace geqo::analysis
