#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>

#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/serialize.h"
#include "nn/treeconv.h"

namespace geqo::nn {
namespace {

/// Numeric gradient check: perturbs each parameter (and input) coordinate
/// and compares the finite-difference slope of a scalar loss against the
/// analytic gradient from Backward.
constexpr float kEpsilon = 1e-2f;
constexpr float kTolerance = 2e-2f;

/// Scalar loss used for checks: sum of squares of the output.
float SumSquares(const Tensor& t) {
  float acc = 0.0f;
  for (const float v : t.values()) acc += v * v;
  return 0.5f * acc;
}

Tensor SumSquaresGrad(const Tensor& t) { return t; }

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(1);
  Linear layer(2, 1, &rng);
  layer.weight().At(0, 0) = 2.0f;
  layer.weight().At(0, 1) = -1.0f;
  layer.bias().At(0, 0) = 0.5f;
  const Tensor x = Tensor::FromRows(1, 2, {3.0f, 4.0f});
  const Tensor y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y.At(0, 0), 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(LinearTest, GradientCheck) {
  Rng rng(7);
  Linear layer(3, 2, &rng);
  const Tensor x = Tensor::Randn(4, 3, 1.0f, &rng);

  std::vector<ParamRef> params;
  layer.CollectParams("linear", &params);

  const auto loss_fn = [&]() { return SumSquares(layer.Forward(x)); };
  // Analytic gradients.
  for (const ParamRef& param : params) param.grad->Fill(0.0f);
  const Tensor y = layer.Forward(x);
  const Tensor dx = layer.Backward(SumSquaresGrad(y));

  for (const ParamRef& param : params) {
    for (size_t i = 0; i < param.value->size(); ++i) {
      float& coordinate = param.value->mutable_values()[i];
      const float saved = coordinate;
      coordinate = saved + kEpsilon;
      const float plus = loss_fn();
      coordinate = saved - kEpsilon;
      const float minus = loss_fn();
      coordinate = saved;
      const float numeric = (plus - minus) / (2 * kEpsilon);
      EXPECT_NEAR(param.grad->values()[i], numeric, kTolerance)
          << param.name << "[" << i << "]";
    }
  }
  // Input gradient.
  Tensor x_copy = x;
  for (size_t i = 0; i < x_copy.size(); ++i) {
    const float saved = x_copy.values()[i];
    x_copy.mutable_values()[i] = saved + kEpsilon;
    const float plus = SumSquares(layer.Forward(x_copy));
    x_copy.mutable_values()[i] = saved - kEpsilon;
    const float minus = SumSquares(layer.Forward(x_copy));
    x_copy.mutable_values()[i] = saved;
    EXPECT_NEAR(dx.values()[i], (plus - minus) / (2 * kEpsilon), kTolerance);
  }
}

TEST(PReluTest, ForwardSemantics) {
  PReLU layer(2, 0.1f);
  const Tensor x = Tensor::FromRows(1, 2, {-2.0f, 3.0f});
  const Tensor y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y.At(0, 0), -0.2f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 3.0f);
}

TEST(PReluTest, GradientCheck) {
  Rng rng(9);
  PReLU layer(3, 0.25f);
  const Tensor x = Tensor::Randn(5, 3, 1.0f, &rng);
  std::vector<ParamRef> params;
  layer.CollectParams("prelu", &params);
  for (const ParamRef& param : params) param.grad->Fill(0.0f);
  const Tensor y = layer.Forward(x);
  const Tensor dx = layer.Backward(SumSquaresGrad(y));

  for (const ParamRef& param : params) {
    for (size_t i = 0; i < param.value->size(); ++i) {
      float& coordinate = param.value->mutable_values()[i];
      const float saved = coordinate;
      coordinate = saved + kEpsilon;
      const float plus = SumSquares(layer.Forward(x));
      coordinate = saved - kEpsilon;
      const float minus = SumSquares(layer.Forward(x));
      coordinate = saved;
      EXPECT_NEAR(param.grad->values()[i], (plus - minus) / (2 * kEpsilon),
                  kTolerance);
    }
  }
}

TEST(BatchNormTest, NormalizesBatch) {
  BatchNorm1d layer(2);
  Rng rng(3);
  const Tensor x = Tensor::FromRows(4, 2, {1, 10, 2, 20, 3, 30, 4, 40});
  const Tensor y = layer.Forward(x, /*training=*/true);
  // Per-channel mean ~0, variance ~1 after normalization.
  for (size_t c = 0; c < 2; ++c) {
    float mean = 0.0f;
    for (size_t r = 0; r < 4; ++r) mean += y.At(r, c);
    EXPECT_NEAR(mean / 4.0f, 0.0f, 1e-5f);
  }
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  BatchNorm1d layer(1);
  const Tensor x = Tensor::FromRows(4, 1, {1, 2, 3, 4});
  for (int i = 0; i < 50; ++i) layer.Forward(x, /*training=*/true);
  // Inference on the training distribution should roughly normalize it.
  const Tensor y = layer.Forward(x, /*training=*/false);
  EXPECT_NEAR(y.At(0, 0) + y.At(3, 0), 0.0f, 0.2f);  // symmetric around mean
}

TEST(BatchNormTest, GradientCheckInputs) {
  Rng rng(11);
  BatchNorm1d layer(2);
  const Tensor x = Tensor::Randn(6, 2, 1.0f, &rng);
  std::vector<ParamRef> params;
  layer.CollectParams("bn", &params);
  for (const ParamRef& param : params) param.grad->Fill(0.0f);
  const Tensor y = layer.Forward(x, true);
  const Tensor dx = layer.Backward(SumSquaresGrad(y));

  Tensor x_copy = x;
  for (size_t i = 0; i < x_copy.size(); ++i) {
    const float saved = x_copy.values()[i];
    x_copy.mutable_values()[i] = saved + kEpsilon;
    BatchNorm1d fresh(2);  // avoid running-stat drift between evaluations
    fresh.Forward(x, true);
    const float plus = SumSquares(fresh.Forward(x_copy, true));
    x_copy.mutable_values()[i] = saved - kEpsilon;
    const float minus = SumSquares(fresh.Forward(x_copy, true));
    x_copy.mutable_values()[i] = saved;
    EXPECT_NEAR(dx.values()[i], (plus - minus) / (2 * kEpsilon), 5e-2f);
  }
}

TEST(DropoutTest, InferencePassthrough) {
  Rng rng(5);
  Dropout layer(0.5f, &rng);
  const Tensor x = Tensor::FromVector({1, 2, 3, 4});
  const Tensor y = layer.Forward(x, /*training=*/false);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y.values()[i], x.values()[i]);
}

TEST(DropoutTest, TrainingZeroesAndScales) {
  Rng rng(5);
  Dropout layer(0.5f, &rng);
  const Tensor x = Tensor::Full(1, 1000, 1.0f);
  const Tensor y = layer.Forward(x, /*training=*/true);
  size_t zeros = 0;
  for (const float v : y.values()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.08);
}

nn::TreeBatch MakeToyTreeBatch(Rng* rng) {
  // Two trees: a 3-node join-shaped tree and a 2-node chain.
  nn::TreeBatch batch;
  batch.nodes = Tensor::Randn(5, 4, 1.0f, rng);
  batch.left = {1, -1, -1, 4, -1};
  batch.right = {2, -1, -1, -1, -1};
  batch.spans = {{0, 3}, {3, 2}};
  return batch;
}

TEST(TreeConvTest, StructurePreserved) {
  Rng rng(13);
  TreeConv layer(4, 6, &rng);
  const nn::TreeBatch input = MakeToyTreeBatch(&rng);
  input.Validate();
  const nn::TreeBatch output = layer.Forward(input);
  output.Validate();
  EXPECT_EQ(output.feature_dim(), 6u);
  EXPECT_EQ(output.spans, input.spans);
  EXPECT_EQ(output.left, input.left);
}

TEST(TreeConvTest, GradientCheck) {
  Rng rng(17);
  TreeConv layer(3, 2, &rng);
  nn::TreeBatch input;
  input.nodes = Tensor::Randn(4, 3, 1.0f, &rng);
  input.left = {1, -1, 3, -1};
  input.right = {2, -1, -1, -1};
  input.spans = {{0, 3}, {3, 1}};

  std::vector<ParamRef> params;
  layer.CollectParams("conv", &params);
  for (const ParamRef& param : params) param.grad->Fill(0.0f);

  nn::TreeBatch out = layer.Forward(input);
  nn::TreeBatch grad = out;
  grad.nodes = SumSquaresGrad(out.nodes);
  const nn::TreeBatch dx = layer.Backward(grad);

  const auto loss_fn = [&]() { return SumSquares(layer.Forward(input).nodes); };
  for (const ParamRef& param : params) {
    for (size_t i = 0; i < param.value->size(); ++i) {
      float& coordinate = param.value->mutable_values()[i];
      const float saved = coordinate;
      coordinate = saved + kEpsilon;
      const float plus = loss_fn();
      coordinate = saved - kEpsilon;
      const float minus = loss_fn();
      coordinate = saved;
      EXPECT_NEAR(param.grad->values()[i], (plus - minus) / (2 * kEpsilon),
                  kTolerance)
          << param.name << "[" << i << "]";
    }
  }
  // Input gradient (exercises the child scatter path).
  for (size_t i = 0; i < input.nodes.size(); ++i) {
    const float saved = input.nodes.values()[i];
    input.nodes.mutable_values()[i] = saved + kEpsilon;
    const float plus = loss_fn();
    input.nodes.mutable_values()[i] = saved - kEpsilon;
    const float minus = loss_fn();
    input.nodes.mutable_values()[i] = saved;
    EXPECT_NEAR(dx.nodes.values()[i], (plus - minus) / (2 * kEpsilon),
                kTolerance);
  }
}

TEST(DynamicMaxPoolTest, PoolsPerTree) {
  nn::TreeBatch batch;
  batch.nodes = Tensor::FromRows(3, 2, {1, 5, 3, 2, -1, 9});
  batch.left = {-1, -1, -1};
  batch.right = {-1, -1, -1};
  batch.spans = {{0, 2}, {2, 1}};
  DynamicMaxPool pool;
  const Tensor pooled = pool.Forward(batch);
  EXPECT_EQ(pooled.rows(), 2u);
  EXPECT_EQ(pooled.At(0, 0), 3.0f);
  EXPECT_EQ(pooled.At(0, 1), 5.0f);
  EXPECT_EQ(pooled.At(1, 1), 9.0f);
}

TEST(DynamicMaxPoolTest, BackwardRoutesToArgmax) {
  nn::TreeBatch batch;
  batch.nodes = Tensor::FromRows(2, 1, {1, 3});
  batch.left = {-1, -1};
  batch.right = {-1, -1};
  batch.spans = {{0, 2}};
  DynamicMaxPool pool;
  pool.Forward(batch);
  const Tensor dy = Tensor::FromRows(1, 1, {1.0f});
  const nn::TreeBatch dx = pool.Backward(dy);
  EXPECT_EQ(dx.nodes.At(0, 0), 0.0f);
  EXPECT_EQ(dx.nodes.At(1, 0), 1.0f);
}

TEST(LossTest, SigmoidValues) {
  const Tensor s = Sigmoid(Tensor::FromVector({0.0f, 100.0f, -100.0f}));
  EXPECT_FLOAT_EQ(s.At(0, 0), 0.5f);
  EXPECT_NEAR(s.At(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(s.At(0, 2), 0.0f, 1e-6f);
}

TEST(LossTest, BceMatchesDefinition) {
  const Tensor logits = Tensor::FromRows(2, 1, {0.0f, 2.0f});
  const Tensor labels = Tensor::FromRows(2, 1, {1.0f, 1.0f});
  // -log(sigmoid(0)) = log 2; -log(sigmoid(2)) = log(1 + e^-2).
  const float expected =
      (std::log(2.0f) + std::log1p(std::exp(-2.0f))) / 2.0f;
  EXPECT_NEAR(BceWithLogitsLoss(logits, labels), expected, 1e-6f);
}

TEST(LossTest, BceGradientCheck) {
  Tensor logits = Tensor::FromRows(3, 1, {0.5f, -1.0f, 2.0f});
  const Tensor labels = Tensor::FromRows(3, 1, {1.0f, 0.0f, 1.0f});
  const Tensor grad = BceWithLogitsGrad(logits, labels);
  for (size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits.values()[i];
    logits.mutable_values()[i] = saved + kEpsilon;
    const float plus = BceWithLogitsLoss(logits, labels);
    logits.mutable_values()[i] = saved - kEpsilon;
    const float minus = BceWithLogitsLoss(logits, labels);
    logits.mutable_values()[i] = saved;
    EXPECT_NEAR(grad.values()[i], (plus - minus) / (2 * kEpsilon), 1e-3f);
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 with Adam.
  Tensor w(1, 1);
  Tensor grad(1, 1);
  AdamOptions options;
  options.learning_rate = 0.1f;
  options.weight_decay = 0.0f;
  Adam adam({ParamRef{"w", &w, &grad}}, options);
  for (int i = 0; i < 300; ++i) {
    adam.ZeroGrad();
    grad.At(0, 0) = 2.0f * (w.At(0, 0) - 3.0f);
    adam.Step();
  }
  EXPECT_NEAR(w.At(0, 0), 3.0f, 0.05f);
}

TEST(AdamTest, WeightDecayShrinksUnusedParams) {
  Tensor w = Tensor::Full(1, 1, 10.0f);
  Tensor grad(1, 1);
  AdamOptions options;
  options.weight_decay = 0.1f;
  Adam adam({ParamRef{"w", &w, &grad}}, options);
  for (int i = 0; i < 200; ++i) {
    adam.ZeroGrad();
    adam.Step();  // gradient stays zero: only decay acts
  }
  EXPECT_LT(std::fabs(w.At(0, 0)), 10.0f);
}

TEST(SerializeTest, RoundTrip) {
  Tensor a = Tensor::FromRows(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({5, 6, 7});
  const std::string path = ::testing::TempDir() + "/geqo_state.bin";
  ASSERT_TRUE(SaveState({{"a", &a}, {"b", &b}}, path).ok());

  Tensor a2(2, 2);
  Tensor b2(1, 3);
  ASSERT_TRUE(LoadState({{"a", &a2}, {"b", &b2}}, path).ok());
  EXPECT_EQ(a2.At(1, 1), 4.0f);
  EXPECT_EQ(b2.At(0, 2), 7.0f);

  const auto size = StateFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, sizeof(float) * 7);
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Tensor a = Tensor::FromRows(2, 2, {1, 2, 3, 4});
  const std::string path = ::testing::TempDir() + "/geqo_state2.bin";
  ASSERT_TRUE(SaveState({{"a", &a}}, path).ok());
  Tensor wrong(1, 2);
  EXPECT_FALSE(LoadState({{"a", &wrong}}, path).ok());
  Tensor right(2, 2);
  EXPECT_FALSE(LoadState({{"zz", &right}}, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geqo::nn
