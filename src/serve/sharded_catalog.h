#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "common/work_queue.h"
#include "serve/equivalence_catalog.h"

/// \file sharded_catalog.h
/// Concurrent serving (§7.7 at scale): a ShardedCatalog partitions one
/// logical equivalence catalog across N EquivalenceCatalog shards routed by
/// SF signature, and moves verification off the probe path onto an async
/// background plane.
///
/// Why sharding by SF signature is complete: two equivalent subexpressions
/// necessarily scan the same table set and return the same output arity
/// (§2.2.1) — i.e. they share an SF signature — so every equivalence class
/// lives entirely inside one shard and cross-shard traffic never exists.
/// Routing uses the signature even when the pipeline's use_sf ablation
/// toggle is off (the toggle still controls the *filter stage* within the
/// routed shard).
///
/// Concurrency model:
///   - Each shard carries a reader-writer lock. Probe takes the shard's
///     shared lock and runs EquivalenceCatalog::ProbeReadOnly — a const
///     filter-plus-classification pass that never calls the verifier and
///     never mutates — so probes of one shard proceed concurrently with
///     each other and block only behind that shard's brief Add critical
///     section, never behind verification.
///   - Add/ProbeAdd prepare and embed OUTSIDE any lock (the expensive part),
///     then take the shard's unique lock only for the index insert and
///     bookkeeping. AddBatch fans the prepare/embed work through the global
///     thread pool and applies the inserts in input order, so assigned ids
///     are deterministic regardless of thread count.
///   - Probe returns immediately with per-candidate MatchVerdicts: kProven /
///     kRefuted straight from the memo and class forest, kLikely (with the
///     EMF score) for anything undecided. Undecided classes are enqueued on
///     a WorkQueue; a pool of background verifier threads — each owning its
///     own SpesVerifier — drains them, memoizes the verdicts, and folds
///     proofs into the owning shard's union-find, upgrading what a later
///     probe of the same pair will see. DrainPendingVerifications() is the
///     barrier that makes "no lost async verdicts" testable.
///   - With verifier_threads == 0 the plane is *deferred*: tasks queue up
///     and DrainPendingVerifications() processes them inline on the caller.
///     Deterministic by construction — the mode the replay tests and the
///     snapshot pending-tail tests use.
///
/// Global ids: entries get densely-increasing global ids in Add order,
/// mapped to (shard, local) slots. All public results speak global ids.
///
/// Snapshots: ExportSnapshot/ImportSnapshot use the GEQOSHRD container —
/// shard count, the gid -> shard routing map, one length-prefixed GEQOCATG
/// segment per shard, and the pending-verification tail (entry-entry pairs
/// not yet drained), so a restarted service resumes both the catalog state
/// and the unfinished verification backlog. Probe-only pending tasks (whose
/// query is not an entry) are dropped at export with a warning and counted;
/// a restarted client simply re-probes. Durable incremental persistence
/// (delta log + compaction + manifest) lives in serve::CatalogStore
/// (persist/catalog_store.h), fed by the CatalogJournal hooks: this class
/// journals its own mutations with *global* ids under the owning shard's
/// lock, so each shard's log partition is a self-consistent mutation
/// stream.

namespace geqo::serve {

/// \brief Configuration of a sharded serving deployment.
struct ShardedCatalogOptions {
  /// Per-shard catalog (filter cascade) options.
  CatalogOptions catalog;
  /// Number of shards; routing is HashSignature % num_shards.
  size_t num_shards = 4;
  /// Background verifier threads; 0 = deferred mode (tasks queue until
  /// DrainPendingVerifications drains them inline on the caller).
  size_t verifier_threads = 1;
  /// Verify-queue capacity bound (producers block when full); 0 = unbounded.
  /// Requires verifier_threads > 0 — a bounded queue with no consumer would
  /// deadlock the producer.
  size_t verify_queue_capacity = 0;
  /// Run background proof computation at idle scheduling priority
  /// (SCHED_IDLE on Linux; no-op elsewhere) so proof work never
  /// time-slices against foreground Probe/Add clients when cores are
  /// scarce. The demotion is scoped to the lock-free verifier call — shard
  /// locks are always taken at normal priority (no priority inversion) —
  /// and engages only when the worker is guaranteed to be able to leave
  /// SCHED_IDLE again (CAP_SYS_NICE or RLIMIT_NICE >= 20).
  bool low_priority_verifiers = true;

  Status Validate() const;
};

/// \brief Monotonic serving counters, aggregated across shards and the
/// async plane. Readable concurrently at any time (atomics snapshot).
struct ShardedCatalogStats {
  uint64_t adds = 0;
  uint64_t probes = 0;
  uint64_t verify_tasks_enqueued = 0;
  uint64_t verify_tasks_completed = 0;
  uint64_t async_verifier_calls = 0;  ///< proofs attempted by the plane
  uint64_t async_memo_hits = 0;       ///< plane tasks settled from the memo
  uint64_t async_unions = 0;          ///< class merges folded by the plane
  uint64_t memo_collisions = 0;       ///< check-pair mismatches (all paths)
  uint64_t dropped_probe_tasks = 0;   ///< probe-only tasks dropped at Save
};

/// \brief Outcome of one async-path probe. Ids are global.
struct ShardedProbeResult {
  /// One entry per filter survivor, ascending by id, each classified
  /// kProven / kLikely(score) / kRefuted (see MatchVerdict).
  std::vector<ProbeMatch> matches;
  /// Every member of every already-proven class, sorted ascending.
  std::vector<size_t> proven_ids;
  /// Smallest proven class representative, if any.
  std::optional<size_t> representative;
  size_t shard = 0;  ///< the shard the probe routed to
  size_t memo_hits = 0;
  size_t class_shortcuts = 0;
  /// Candidate classes handed to the async verifier plane by this probe.
  size_t pending_classes = 0;
  /// Of those, classes enqueued *without* a catalog entry id — i.e. by a
  /// plain Probe. Their verification tasks exist only in this process: no
  /// snapshot or store can name the query across a restart, so they are
  /// dropped at export/shutdown (see stats().dropped_probe_tasks) and the
  /// client re-probes. Always 0 for ProbeAdd, whose tasks carry the entry.
  size_t probe_only_pending = 0;
  /// prepare + the shard's sf/vmf/emf/classify stages (tagged with shard).
  std::vector<StageReport> stages;
  /// Stage-sum latency, measured from Probe entry (same convention as
  /// ProbeResult::seconds).
  double seconds = 0.0;
};

/// \brief Outcome of ProbeAdd: the probe plus the new entry's global id.
struct ShardedProbeAddResult {
  ShardedProbeResult probe;
  size_t id = 0;
};

/// \brief A sharded, concurrently-servable equivalence catalog with an
/// async verification plane.
class ShardedCatalog {
 public:
  /// Component lifetime contract matches EquivalenceCatalog: \p db_catalog,
  /// \p model, and the layouts must outlive this object. Background
  /// verifier threads start immediately (when verifier_threads > 0).
  ShardedCatalog(const Catalog* db_catalog, ml::EmfModel* model,
                 const EncodingLayout* instance_layout,
                 const EncodingLayout* agnostic_layout, ValueRange value_range,
                 ShardedCatalogOptions options = ShardedCatalogOptions());
  /// Closes the verify queue and joins the worker pool. Pending tasks that
  /// were not drained are discarded — Save first if they matter.
  ~ShardedCatalog();

  ShardedCatalog(const ShardedCatalog&) = delete;
  ShardedCatalog& operator=(const ShardedCatalog&) = delete;

  /// Registers \p plan (prepare + embed outside the lock, brief unique-lock
  /// insert); returns its global id. Thread-safe.
  Result<size_t> Add(const PlanPtr& plan);

  /// Adds \p plans, fanning the prepare/embed work through the global
  /// thread pool; inserts happen in input order, so the returned ids are
  /// plans' positions appended to the current size — deterministic for any
  /// thread count. Thread-safe (concurrent AddBatch calls interleave
  /// batches, not elements).
  Result<std::vector<size_t>> AddBatch(const std::vector<PlanPtr>& plans);

  /// Classifies \p plan against its routed shard under a shared lock:
  /// returns immediately with Proven/Likely/Refuted matches, enqueueing
  /// undecided classes for the async plane. Never blocks behind another
  /// probe or a verification; blocks only behind the shard's brief Add
  /// critical section. Thread-safe.
  Result<ShardedProbeResult> Probe(const PlanPtr& plan);

  /// Probe + Add as one exclusive critical section on the routed shard; the
  /// new entry joins every already-proven class synchronously, and pending
  /// classes carry the entry id so async proofs union it in later.
  /// Thread-safe.
  Result<ShardedProbeAddResult> ProbeAdd(const PlanPtr& plan);

  /// Blocks until every queued verification task has been fully applied
  /// (memo + unions). In deferred mode (verifier_threads == 0) the backlog
  /// is processed inline on the calling thread.
  void DrainPendingVerifications();

  /// Queued plus in-flight verification tasks.
  size_t PendingVerifications() const { return queue_.outstanding(); }

  size_t size() const;
  size_t num_shards() const { return shards_.size(); }
  size_t NumClasses() const;
  size_t memo_size() const;
  /// Members of \p gid's equivalence class, as sorted global ids.
  std::vector<size_t> ClassMembers(size_t gid) const;
  /// Representative (smallest global id) of \p gid's class.
  size_t ClassOf(size_t gid) const;
  PlanPtr plan(size_t gid) const;
  ShardedCatalogStats stats() const;
  const ShardedCatalogOptions& options() const { return options_; }

  /// Writes the one-shot GEQOSHRD export (see file comment). Pauses the
  /// verify queue so the pending tail is captured atomically, then resumes
  /// it. Probe-only pending tasks cannot be named across a restart: they
  /// are dropped with a logged warning and counted (the old Save silently
  /// bumped a counter). Durable deployments go through CatalogStore; this
  /// is for one-shot artifact interchange. The old Save(path)/Load(path)
  /// pairs are gone.
  Status ExportSnapshot(std::ostream& os) const;

  /// Restores a GEQOSHRD export. \p plans must be all entries in global Add
  /// order (the same contract as EquivalenceCatalog::ImportSnapshot). The
  /// shard count is adopted from the snapshot (routing must stay consistent
  /// with the ids already assigned); \p options.num_shards is ignored. The
  /// pending-verification tail is re-enqueued, ready for the worker pool or
  /// a DrainPendingVerifications call.
  static Result<std::unique_ptr<ShardedCatalog>> ImportSnapshot(
      std::istream& is, const Catalog* db_catalog, ml::EmfModel* model,
      const EncodingLayout* instance_layout,
      const EncodingLayout* agnostic_layout, ValueRange value_range,
      const std::vector<PlanPtr>& plans,
      ShardedCatalogOptions options = ShardedCatalogOptions());

  /// Attaches (or detaches, with nullptr) the mutation journal. Hooks fire
  /// in commit order under the owning shard's lock, speaking global ids;
  /// the per-shard catalogs carry no journal of their own. The journal must
  /// outlive this object or be detached first. Owned by CatalogStore.
  void AttachJournal(persist::CatalogJournal* journal) { journal_ = journal; }

 private:
  friend class persist::CatalogStore;
  /// Sentinel for "the probing plan is not a catalog entry".
  static constexpr size_t kNoEntry = ~static_cast<size_t>(0);

  /// One undecided candidate class, bound for the verifier plane.
  struct VerifyTask {
    size_t shard = 0;
    PlanPtr query_plan;
    uint64_t query_hash = 0;
    uint64_t query_check = 0;
    /// The query's own local id when it was ProbeAdd'ed (async proofs then
    /// union it into the proven class); kNoEntry for plain probes.
    size_t query_local = kNoEntry;
    /// Shard-local verification agenda, class root first — replayed exactly
    /// like the sync path's class-at-a-time cascade.
    std::vector<size_t> agenda;
    /// The (query gid, member gid) pending pairs journaled for this task;
    /// ProcessTask reports them resolved when the task retires. Empty for
    /// probe-only tasks and when no journal is attached.
    std::vector<std::pair<uint64_t, uint64_t>> logged_pairs;
    Stopwatch enqueued;  ///< verify-lag clock, started at enqueue
  };

  struct Shard {
    /// Guards catalog (its entries, index, classes, memo) and to_global.
    /// This capability also carries the shard's HNSW single-writer
    /// contract: hnsw::Index::Add is not safe against concurrent Add OR
    /// Search (see ann/hnsw.h), and both only ever run through the
    /// pt-guarded catalog below — Search under this lock held shared,
    /// Add under it held exclusive.
    mutable SharedMutex mu{analysis::LockRank::kShard};
    std::unique_ptr<EquivalenceCatalog> catalog GEQO_PT_GUARDED_BY(mu);
    std::vector<size_t> to_global
        GEQO_GUARDED_BY(mu);  ///< local id -> global id (ascending)
  };

  /// Plan plus its precomputed embedding, ready for the locked insert.
  struct PreparedAdd {
    EquivalenceCatalog::QueryContext query;
    std::vector<float> embedding;
  };

  /// RAII shared lock over every shard in index order (see the .cc).
  class AllShardsReadLock;

  size_t ShardOf(const SfSignature& signature) const;
  /// A dedicated never-mutated catalog used for lock-free const
  /// preparation work (PrepareQuery/EmbedQuery touch only immutable
  /// wiring). Historically this returned shard 0's live catalog — an
  /// unlocked read of a guarded member that raced shard-0 inserts.
  const EquivalenceCatalog& prep() const { return *prep_; }
  Result<PreparedAdd> PrepareAdd(const PlanPtr& plan) const;
  /// Insert under the shard's unique lock; returns the new global id.
  Result<size_t> CommitAdd(PreparedAdd prepared);
  /// Rewrites a shard-local ReadProbeResult into \p out with global ids and
  /// shard-tagged stages; the caller must hold \p shard's lock (shared or
  /// unique) so to_global is stable.
  void TranslateLocked(const Shard& shard, size_t sid,
                       EquivalenceCatalog::ReadProbeResult& read,
                       ShardedProbeResult* out) const
      GEQO_REQUIRES_SHARED(shard.mu);
  /// Converts a probe's undecided classes into ready-to-queue VerifyTasks,
  /// resolving global ids for the journal pairs; the caller must hold \p
  /// shard's lock (shared or unique) so to_global is stable.
  std::vector<VerifyTask> BuildPendingTasksLocked(
      const Shard& shard, size_t sid, const PlanPtr& query_plan,
      uint64_t query_hash, uint64_t query_check, size_t query_local,
      std::vector<EquivalenceCatalog::ClassDecision> pending) const
      GEQO_REQUIRES_SHARED(shard.mu);
  /// Journals each task's pending pairs (before the push, so a resolution
  /// can never be journaled ahead of its pending record), then enqueues.
  /// Must be called with no shard lock held (the queue may block when
  /// bounded, and in deferred mode the caller later drains inline).
  void EnqueueTasks(std::vector<VerifyTask> tasks);
  /// Recovery-side appliers, used by persist::CatalogStore while the
  /// journal is detached (so replay never re-journals itself):
  /// re-derives an entry through the normal Add path, verifying the logged
  /// hashes match (replay determinism check);
  Result<size_t> ReplayAdd(const PlanPtr& plan, uint64_t canonical_hash,
                           uint64_t check_hash);
  /// folds a logged verdict into the owning shard's memo;
  Status ReplayVerdict(size_t shard, const CheckedPair& key,
                       EquivalenceVerdict verdict);
  /// re-joins two entries' classes (idempotent);
  Status ReplayUnion(uint64_t a_gid, uint64_t b_gid);
  /// and rebuilds the async backlog from recovered (query gid, member gid)
  /// pending pairs: pairs are grouped per query by current class root and
  /// walked memo-first exactly like ProbeReadOnly — a memoized kEquivalent
  /// applies its union and the class is dropped, an all-kUnknown agenda is
  /// dropped, any memo miss keeps the whole class as one VerifyTask. The
  /// pairs of kept tasks come back through \p kept (the store re-logs
  /// them); EnqueueRecoveredTasks pushes without journaling.
  Result<std::vector<VerifyTask>> BuildRecoveredTasks(
      const std::vector<std::pair<uint64_t, uint64_t>>& pairs,
      std::vector<std::pair<uint64_t, uint64_t>>* kept);
  void EnqueueRecoveredTasks(std::vector<VerifyTask> tasks);
  /// Serializes the GEQOSHRD container with an *empty* pending tail (a
  /// CatalogStore base segment: the pending backlog lives in the delta log,
  /// not the base). Takes every shard's shared lock; concurrent probes
  /// proceed, adds briefly block. \p entry_count reports the entries
  /// captured.
  Status ExportBase(std::ostream& os, uint64_t* entry_count) const;
  /// Shared body of ExportSnapshot/ExportBase; caller holds all shard
  /// locks + the map lock. \p pending is null for a base export. The
  /// dynamically sized all-shards lock set is beyond the static analysis
  /// (which needs lock expressions it can name), so this one body opts
  /// out; the runtime rank checker still validates the acquisition order
  /// on every export.
  Status WriteSnapshotLocked(std::ostream& os,
                             const std::vector<VerifyTask>* pending) const
      GEQO_NO_THREAD_SAFETY_ANALYSIS;
  void WorkerLoop();
  /// Applies one task: memo-first agenda replay, verifier calls outside any
  /// lock, memo insert + union under the shard's unique lock.
  /// \p idle_proofs runs the (lock-free) proof at idle scheduling priority;
  /// shard locks are always taken at the caller's normal priority.
  void ProcessTask(const VerifyTask& task, SpesVerifier& verifier,
                   bool idle_proofs = false);
  void UpdateQueueGauge() const;

  const Catalog* db_catalog_;
  ml::EmfModel* model_;
  const EncodingLayout* instance_layout_;
  const EncodingLayout* agnostic_layout_;
  ValueRange value_range_;
  ShardedCatalogOptions options_;
  Status options_status_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// The prepare/embed catalog behind prep(): constructed once, never
  /// mutated, so PrepareQuery/EmbedQuery run with no lock at all.
  std::unique_ptr<EquivalenceCatalog> prep_;

  /// Guards global_map_. Lock order: shard.mu before map_mu_ (ranks kShard
  /// < kCatalogMap); never acquire a shard lock while holding map_mu_.
  mutable SharedMutex map_mu_{analysis::LockRank::kCatalogMap};
  std::vector<std::pair<size_t, size_t>> global_map_
      GEQO_GUARDED_BY(map_mu_);  ///< gid -> (shard, local)

  mutable WorkQueue<VerifyTask> queue_;
  std::vector<std::thread> workers_;
  /// Deferred-mode drain serialization (verifier_threads == 0). Ranks
  /// below the shard locks: the inline drain takes shard locks while
  /// holding it.
  Mutex drain_mu_{analysis::LockRank::kVerifyDrain};
  std::unique_ptr<SpesVerifier> drain_verifier_ GEQO_GUARDED_BY(drain_mu_);

  std::atomic<uint64_t> adds_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> verify_tasks_enqueued_{0};
  std::atomic<uint64_t> verify_tasks_completed_{0};
  std::atomic<uint64_t> async_verifier_calls_{0};
  std::atomic<uint64_t> async_memo_hits_{0};
  std::atomic<uint64_t> async_unions_{0};
  std::atomic<uint64_t> memo_collisions_{0};
  mutable std::atomic<uint64_t> dropped_probe_tasks_{0};

  /// Mutation journal (delta-log feed); null when not persisted. Set once
  /// before concurrent use (AttachJournal is not thread-safe).
  persist::CatalogJournal* journal_ = nullptr;
};

}  // namespace geqo::serve
