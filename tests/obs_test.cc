#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace geqo::obs {
namespace {

/// Every test here toggles the global trace level; restore kOff on exit so
/// ordering between tests (and the rest of the suite) cannot leak state.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetTraceLevel(TraceLevel::kOff);
    Tracer::Global().Reset();
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(ObsTest, ParseTraceLevel) {
  EXPECT_EQ(ParseTraceLevel(nullptr), TraceLevel::kOff);
  EXPECT_EQ(ParseTraceLevel(""), TraceLevel::kOff);
  EXPECT_EQ(ParseTraceLevel("off"), TraceLevel::kOff);
  EXPECT_EQ(ParseTraceLevel("metrics"), TraceLevel::kMetrics);
  EXPECT_EQ(ParseTraceLevel("spans"), TraceLevel::kSpans);
  EXPECT_EQ(ParseTraceLevel("SPANS"), TraceLevel::kSpans);
  EXPECT_EQ(ParseTraceLevel("bogus"), TraceLevel::kOff);
}

TEST_F(ObsTest, LevelGates) {
  SetTraceLevel(TraceLevel::kOff);
  EXPECT_FALSE(MetricsEnabled());
  EXPECT_FALSE(SpansEnabled());
  SetTraceLevel(TraceLevel::kMetrics);
  EXPECT_TRUE(MetricsEnabled());
  EXPECT_FALSE(SpansEnabled());
  SetTraceLevel(TraceLevel::kSpans);
  EXPECT_TRUE(MetricsEnabled());
  EXPECT_TRUE(SpansEnabled());
}

TEST_F(ObsTest, CounterAndGaugeBasics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test.counter");
  counter.Reset();
  counter.Increment();
  counter.Add(4);
  EXPECT_EQ(counter.value(), 5u);
  // Same name -> same handle.
  EXPECT_EQ(&registry.GetCounter("test.counter"), &counter);

  Gauge& gauge = registry.GetGauge("test.gauge");
  gauge.Set(2.5);
  gauge.Add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
}

TEST_F(ObsTest, CountersAreThreadSafe) {
  Counter& counter = MetricsRegistry::Global().GetCounter("test.concurrent");
  counter.Reset();
  Gauge& gauge = MetricsRegistry::Global().GetGauge("test.concurrent_gauge");
  gauge.Reset();

  ThreadPool::SetGlobalThreads(8);
  constexpr size_t kIterations = 20000;
  ParallelFor(0, kIterations, [&](size_t) {
    counter.Increment();
    gauge.Add(1.0);
  });
  ThreadPool::SetGlobalThreads(1);

  EXPECT_EQ(counter.value(), kIterations);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kIterations));
}

TEST_F(ObsTest, HistogramPercentiles) {
  Histogram histogram;
  // 1000 observations spread over [1ms, 1s): percentiles must be ordered
  // and land within a bucket (factor-of-two resolution) of the true value.
  for (int i = 1; i <= 1000; ++i) {
    histogram.Observe(1e-3 * static_cast<double>(i));
  }
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_NEAR(histogram.Mean(), 0.5005, 1e-9);
  const double p50 = histogram.P50();
  const double p95 = histogram.P95();
  const double p99 = histogram.P99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.25);
  EXPECT_LT(p50, 1.1);
  EXPECT_GT(p99, p50);
  // Empty histogram reports zeros.
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.P50(), 0.0);
}

TEST_F(ObsTest, HistogramBucketBoundsAreMonotonic) {
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_GT(Histogram::BucketBound(i), Histogram::BucketBound(i - 1));
  }
}

TEST_F(ObsTest, SnapshotValueAndDelta) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.delta.moves").Reset();
  registry.GetCounter("test.delta.stays").Reset();
  registry.GetCounter("test.delta.stays").Add(7);
  const MetricsSnapshot before = registry.Snapshot();
  EXPECT_DOUBLE_EQ(before.Value("test.delta.stays"), 7.0);
  EXPECT_DOUBLE_EQ(before.Value("no.such.metric"), 0.0);

  registry.GetCounter("test.delta.moves").Add(3);
  const MetricsSnapshot after = registry.Snapshot();
  const auto delta = after.DeltaSince(before);
  bool saw_moves = false;
  for (const auto& [name, value] : delta) {
    EXPECT_NE(name, "test.delta.stays") << "zero deltas must be dropped";
    if (name == "test.delta.moves") {
      saw_moves = true;
      EXPECT_DOUBLE_EQ(value, 3.0);
    }
  }
  EXPECT_TRUE(saw_moves);

  const auto json_error = ValidateJson(after.ToJson());
  EXPECT_FALSE(json_error.has_value()) << json_error.value_or("");
}

TEST_F(ObsTest, JsonWriterProducesValidDocuments) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("name")
      .String("q\"uote\\and\ncontrol")
      .Key("values")
      .BeginArray()
      .Number(uint64_t{42})
      .Number(0.125)
      .Bool(true)
      .EndArray()
      .Key("nested")
      .BeginObject()
      .Key("empty")
      .BeginArray()
      .EndArray()
      .EndObject()
      .EndObject();
  const std::string document = std::move(writer).Finish();
  const auto error = ValidateJson(document);
  EXPECT_FALSE(error.has_value()) << error.value_or("") << "\n" << document;
  EXPECT_NE(document.find("\\\"uote\\\\and\\n"), std::string::npos)
      << document;

  // Non-finite numbers must not produce invalid JSON.
  JsonWriter nan_writer;
  nan_writer.BeginArray().Number(std::nan("")).EndArray();
  const std::string nan_document = std::move(nan_writer).Finish();
  EXPECT_FALSE(ValidateJson(nan_document).has_value()) << nan_document;
}

TEST_F(ObsTest, ValidatorRejectsMalformedJson) {
  EXPECT_FALSE(ValidateJson("{}").has_value());
  EXPECT_FALSE(ValidateJson("[1, 2.5e3, \"x\", null, true]").has_value());
  EXPECT_TRUE(ValidateJson("").has_value());
  EXPECT_TRUE(ValidateJson("{").has_value());
  EXPECT_TRUE(ValidateJson("[1,]").has_value());
  EXPECT_TRUE(ValidateJson("{\"a\":}").has_value());
  EXPECT_TRUE(ValidateJson("{\"a\":1} trailing").has_value());
  EXPECT_TRUE(ValidateJson("{'a': 1}").has_value());
  EXPECT_TRUE(ValidateJson("[01]").has_value());
}

TEST_F(ObsTest, SpansRecordNestingAndSurviveWorkerThreads) {
  SetTraceLevel(TraceLevel::kSpans);
  Tracer::Global().Reset();

  {
    Span outer("outer");
    Span inner("inner");
  }
  ThreadPool::SetGlobalThreads(4);
  ParallelFor(0, 8, [](size_t) { Span worker_span("worker"); });
  ThreadPool::SetGlobalThreads(1);

  const std::vector<SpanEvent> spans = Tracer::Global().Collect();
  const SpanEvent* outer = nullptr;
  const SpanEvent* inner = nullptr;
  size_t workers = 0;
  for (const SpanEvent& span : spans) {
    if (span.name == "outer") outer = &span;
    if (span.name == "inner") inner = &span;
    workers += span.name == "worker";
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(workers, 8u);

  // Nesting: the inner span sits one level deeper, on the same thread, and
  // within the outer span's time range.
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(outer->thread_id, inner->thread_id);
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->duration_us,
            outer->start_us + outer->duration_us);

  const std::string chrome =
      ToChromeTraceJson(spans, MetricsRegistry::Global().Snapshot());
  const auto chrome_error = ValidateJson(chrome);
  EXPECT_FALSE(chrome_error.has_value()) << chrome_error.value_or("");
  const std::string tree = ToSpanTreeJson(spans);
  const auto tree_error = ValidateJson(tree);
  EXPECT_FALSE(tree_error.has_value()) << tree_error.value_or("");
}

TEST_F(ObsTest, SpansAreFreeWhenDisabled) {
  SetTraceLevel(TraceLevel::kOff);
  Tracer::Global().Reset();
  { Span ignored("ignored"); }
  EXPECT_TRUE(Tracer::Global().Collect().empty());
}

}  // namespace
}  // namespace geqo::obs
