#include "filters/schema_filter.h"

#include <algorithm>
#include <map>

#include "plan/spj.h"

namespace geqo {

Result<SfSignature> SchemaSignature(const PlanPtr& plan,
                                    const Catalog& catalog) {
  SfSignature signature;
  signature.tables = SortedTableNames(plan);
  signature.tables.erase(
      std::unique(signature.tables.begin(), signature.tables.end()),
      signature.tables.end());
  GEQO_ASSIGN_OR_RETURN(signature.num_output_columns,
                        plan->NumOutputColumns(catalog));
  return signature;
}

Result<std::vector<SfGroup>> SchemaFilter(const std::vector<PlanPtr>& workload,
                                          const Catalog& catalog) {
  std::map<SfSignature, size_t> group_index;
  std::vector<SfGroup> groups;
  for (size_t i = 0; i < workload.size(); ++i) {
    GEQO_ASSIGN_OR_RETURN(SfSignature signature,
                          SchemaSignature(workload[i], catalog));
    const auto it = group_index.find(signature);
    if (it == group_index.end()) {
      group_index.emplace(signature, groups.size());
      groups.push_back(SfGroup{std::move(signature.tables),
                               signature.num_output_columns,
                               {i}});
    } else {
      groups[it->second].members.push_back(i);
    }
  }
  return groups;
}

size_t CountIntraGroupPairs(const std::vector<SfGroup>& groups) {
  size_t pairs = 0;
  for (const SfGroup& group : groups) {
    pairs += group.members.size() * (group.members.size() - 1) / 2;
  }
  return pairs;
}

Result<bool> SchemaFilterPair(const PlanPtr& a, const PlanPtr& b,
                              const Catalog& catalog) {
  std::vector<std::string> tables_a = SortedTableNames(a);
  std::vector<std::string> tables_b = SortedTableNames(b);
  tables_a.erase(std::unique(tables_a.begin(), tables_a.end()), tables_a.end());
  tables_b.erase(std::unique(tables_b.begin(), tables_b.end()), tables_b.end());
  if (tables_a != tables_b) return false;
  GEQO_ASSIGN_OR_RETURN(const size_t arity_a, a->NumOutputColumns(catalog));
  GEQO_ASSIGN_OR_RETURN(const size_t arity_b, b->NumOutputColumns(catalog));
  return arity_a == arity_b;
}

}  // namespace geqo
