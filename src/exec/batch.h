#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"
#include "plan/expr.h"
#include "plan/value.h"

/// \file batch.h
/// The columnar unit of work of the vectorized executor: a `Batch` is a
/// morsel's worth of rows as typed column vectors plus a selection vector.
/// Columns are either zero-copy views into stable storage (a Database table
/// or a materialized pipeline breaker) or owned 32-byte-aligned buffers
/// produced by an operator, so scans cost nothing and only computed columns
/// allocate. Filters narrow the selection vector without touching data;
/// projections and join probes emit dense (fully selected) batches.

namespace geqo::exec {

/// \brief One typed column of a Batch: either a borrowed pointer into
/// storage that outlives the batch, or owned storage.
///
/// Owned numeric storage uses AlignedVector so the f64 kernels see
/// kernel-aligned buffers. Accessors return the borrowed pointer when set
/// and the owned buffer otherwise, so moves never dangle (owned buffers are
/// re-read through the vector on every access).
class ColumnVector {
 public:
  ColumnVector() = default;

  static ColumnVector ViewInts(const int64_t* data) {
    ColumnVector c;
    c.type_ = ValueType::kInt;
    c.int_view_ = data;
    return c;
  }
  static ColumnVector ViewDoubles(const double* data) {
    ColumnVector c;
    c.type_ = ValueType::kDouble;
    c.double_view_ = data;
    return c;
  }
  static ColumnVector ViewStrings(const std::string* data) {
    ColumnVector c;
    c.type_ = ValueType::kString;
    c.string_view_ = data;
    return c;
  }
  static ColumnVector OwnInts(AlignedVector<int64_t> data) {
    ColumnVector c;
    c.type_ = ValueType::kInt;
    c.own_ints_ = std::move(data);
    return c;
  }
  static ColumnVector OwnDoubles(AlignedVector<double> data) {
    ColumnVector c;
    c.type_ = ValueType::kDouble;
    c.own_doubles_ = std::move(data);
    return c;
  }
  static ColumnVector OwnStrings(std::vector<std::string> data) {
    ColumnVector c;
    c.type_ = ValueType::kString;
    c.own_strings_ = std::move(data);
    return c;
  }

  ValueType type() const { return type_; }
  bool is_view() const {
    return int_view_ != nullptr || double_view_ != nullptr ||
           string_view_ != nullptr;
  }
  /// Rows physically present in owned storage; nullopt for views (a
  /// view's extent lives with the storage it points into and is not
  /// recorded here). Used by exec::ValidateBatch to prove column-length
  /// agreement with the owning batch's num_rows.
  std::optional<size_t> owned_size() const {
    if (is_view()) return std::nullopt;
    switch (type_) {
      case ValueType::kInt:
        return own_ints_.size();
      case ValueType::kDouble:
        return own_doubles_.size();
      case ValueType::kString:
        return own_strings_.size();
    }
    return std::nullopt;
  }

  const int64_t* ints() const {
    GEQO_DCHECK(type_ == ValueType::kInt);
    return int_view_ != nullptr ? int_view_ : own_ints_.data();
  }
  const double* doubles() const {
    GEQO_DCHECK(type_ == ValueType::kDouble);
    return double_view_ != nullptr ? double_view_ : own_doubles_.data();
  }
  const std::string* strings() const {
    GEQO_DCHECK(type_ == ValueType::kString);
    return string_view_ != nullptr ? string_view_ : own_strings_.data();
  }

  /// Cell as a dynamically typed Value (row-at-a-time boundary crossings:
  /// aggregation fold, RowSet materialization).
  Value GetValue(size_t row) const {
    switch (type_) {
      case ValueType::kInt:
        return Value::Int(ints()[row]);
      case ValueType::kDouble:
        return Value::Double(doubles()[row]);
      case ValueType::kString:
        return Value::String(strings()[row]);
    }
    return Value();
  }

 private:
  ValueType type_ = ValueType::kInt;
  const int64_t* int_view_ = nullptr;
  const double* double_view_ = nullptr;
  const std::string* string_view_ = nullptr;
  AlignedVector<int64_t> own_ints_;
  AlignedVector<double> own_doubles_;
  std::vector<std::string> own_strings_;
};

/// \brief A morsel's worth of rows in columnar form.
///
/// `num_rows` physical rows live in every column; when `all` is false only
/// the physical rows listed (ascending) in `sel` are logically present.
/// `bindings[c]` names column c as alias.column (empty alias for computed /
/// projected pseudo-columns), mirroring the legacy executor's Intermediate
/// bindings so expression resolution behaves identically.
struct Batch {
  std::vector<ColumnRef> bindings;
  std::vector<ColumnVector> columns;
  size_t num_rows = 0;
  bool all = true;
  std::vector<uint32_t> sel;

  size_t ActiveRows() const { return all ? num_rows : sel.size(); }
  uint32_t RowAt(size_t i) const {
    return all ? static_cast<uint32_t>(i) : sel[i];
  }
  Value ValueAt(size_t column, size_t physical_row) const {
    return columns[column].GetValue(physical_row);
  }
};

/// Index of \p ref in \p bindings (first match, like the legacy executor's
/// resolution order), or -1 when unbound.
inline int FindBinding(const std::vector<ColumnRef>& bindings,
                       const ColumnRef& ref) {
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i] == ref) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace geqo::exec
