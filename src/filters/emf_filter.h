#pragma once

#include <utility>
#include <vector>

#include "encode/agnostic.h"
#include "ml/dataset.h"
#include "ml/emf_model.h"

/// \file emf_filter.h
/// The equivalence model filter (EMF, §2.2/§5) as a pairwise filter stage:
/// candidate pairs are pairwise db-agnostic-encoded via the fast converter
/// (§4.2.1) and scored by the trained EmfModel; pairs with probability below
/// the threshold are pruned before verification.

namespace geqo {

/// \brief EMF filter configuration.
struct EmfFilterOptions {
  float threshold = 0.5f;  ///< minimum P(equivalent) to pass the filter
  size_t batch_size = 256;
};

/// \brief Scores and filters candidate pairs with the EMF network.
class EquivalenceModelFilter {
 public:
  EquivalenceModelFilter(ml::EmfModel* model,
                         const EncodingLayout* instance_layout,
                         const EncodingLayout* agnostic_layout,
                         EmfFilterOptions options = EmfFilterOptions())
      : model_(model),
        instance_layout_(instance_layout),
        agnostic_layout_(agnostic_layout),
        options_(options) {}

  /// Equivalence probability for each (i, j) pair of workload indices.
  /// \p instance_encoded is indexed by workload position.
  Result<std::vector<float>> Scores(
      const std::vector<std::pair<size_t, size_t>>& pairs,
      const std::vector<EncodedPlan>& instance_encoded) const;

  /// View-based variant for query-vs-catalog scoring: callers assemble the
  /// position space from encodings that live in different containers (e.g.
  /// slot 0 = the probe query, slots 1..k = catalog entries) without copying
  /// any of them.
  Result<std::vector<float>> Scores(
      const std::vector<std::pair<size_t, size_t>>& pairs,
      const std::vector<const EncodedPlan*>& instance_encoded) const;

  /// The pairs whose score clears the threshold.
  Result<std::vector<std::pair<size_t, size_t>>> Filter(
      const std::vector<std::pair<size_t, size_t>>& pairs,
      const std::vector<EncodedPlan>& instance_encoded) const;

  const EmfFilterOptions& options() const { return options_; }
  ml::EmfModel* model() const { return model_; }

 private:
  ml::EmfModel* model_;
  const EncodingLayout* instance_layout_;
  const EncodingLayout* agnostic_layout_;
  EmfFilterOptions options_;
};

/// \brief Calibrates the EMF decision threshold from labeled pairs: the
/// probability quantile that keeps \p target_recall of the equivalent pairs
/// above threshold (the paper operates the EMF at TPR ~0.98 with moderate
/// TNR, Table 1 — false negatives "should be minimized at all costs",
/// §7.1.1). Clamped to [0.02, 0.5].
Result<float> CalibrateEmfThreshold(ml::EmfModel* model,
                                    const ml::PairDataset& dataset,
                                    double target_recall = 0.97);

}  // namespace geqo
