#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file strings.h
/// Small string helpers shared by the parser, plan printer, and harnesses.

namespace geqo {

/// \brief Joins \p parts with \p separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// \brief Splits \p text on \p delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// \brief Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// \brief ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);

/// \brief True if \p text starts with \p prefix (case-sensitive).
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace geqo
