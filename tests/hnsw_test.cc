#include <gtest/gtest.h>

#include <cmath>

#include "ann/hnsw.h"

namespace geqo::ann {
namespace {

std::vector<std::vector<float>> RandomPoints(size_t n, size_t dim, Rng* rng) {
  std::vector<std::vector<float>> points(n, std::vector<float>(dim));
  for (auto& point : points) {
    for (float& v : point) v = static_cast<float>(rng->NextGaussian());
  }
  return points;
}

TEST(HnswTest, EmptyIndexReturnsNothing) {
  HnswIndex index(4);
  const float query[4] = {0, 0, 0, 0};
  EXPECT_TRUE(index.SearchKnn(query, 3).empty());
  EXPECT_TRUE(index.SearchRadius(query, 1.0f).empty());
}

TEST(HnswTest, SingleElement) {
  HnswIndex index(2);
  index.Add(std::vector<float>{1.0f, 2.0f});
  const float query[2] = {1.0f, 2.0f};
  const auto hits = index.SearchKnn(query, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_FLOAT_EQ(hits[0].distance, 0.0f);
}

TEST(HnswTest, FindsExactNearestOnSmallSet) {
  Rng rng(21);
  HnswIndex index(8);
  const auto points = RandomPoints(200, 8, &rng);
  for (const auto& point : points) index.Add(point);

  // For every indexed point, querying it must return itself first.
  for (size_t i = 0; i < points.size(); i += 17) {
    const auto hits = index.SearchKnn(points[i].data(), 1);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].id, i);
  }
}

TEST(HnswTest, KnnResultsSortedByDistance) {
  Rng rng(22);
  HnswIndex index(4);
  for (const auto& point : RandomPoints(300, 4, &rng)) index.Add(point);
  const float query[4] = {0.1f, -0.2f, 0.3f, 0.0f};
  const auto hits = index.SearchKnn(query, 10);
  ASSERT_EQ(hits.size(), 10u);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance);
  }
}

TEST(HnswTest, RadiusSearchRespectsRadius) {
  Rng rng(23);
  HnswIndex index(4);
  for (const auto& point : RandomPoints(400, 4, &rng)) index.Add(point);
  const float query[4] = {0, 0, 0, 0};
  const float radius = 1.5f;
  for (const Neighbor& hit : index.SearchRadius(query, radius)) {
    EXPECT_LE(hit.distance, radius);
  }
}

TEST(HnswTest, RecallAgainstExactSearch) {
  Rng rng(24);
  HnswOptions options;
  options.ef_search = 128;
  HnswIndex index(8, options);
  const auto points = RandomPoints(500, 8, &rng);
  for (const auto& point : points) index.Add(point);

  size_t found = 0;
  size_t expected = 0;
  for (size_t q = 0; q < 50; ++q) {
    const float* query = points[q * 7].data();
    const auto exact = index.ExactRadius(query, 2.0f);
    const auto approx = index.SearchRadius(query, 2.0f, 128);
    expected += exact.size();
    for (const Neighbor& hit : exact) {
      for (const Neighbor& candidate : approx) {
        if (candidate.id == hit.id) {
          ++found;
          break;
        }
      }
    }
  }
  ASSERT_GT(expected, 0u);
  const double recall =
      static_cast<double>(found) / static_cast<double>(expected);
  EXPECT_GT(recall, 0.9) << "HNSW radius recall too low: " << recall;
}

TEST(HnswTest, ClustersStayTogether) {
  // Two well separated clusters: radius search within a cluster must never
  // return members of the other.
  Rng rng(25);
  HnswIndex index(2);
  for (size_t i = 0; i < 100; ++i) {
    const float offset = i < 50 ? 0.0f : 100.0f;
    index.Add(std::vector<float>{
        offset + static_cast<float>(rng.NextGaussian()) * 0.1f,
        offset + static_cast<float>(rng.NextGaussian()) * 0.1f});
  }
  const float query[2] = {0.0f, 0.0f};
  for (const Neighbor& hit : index.SearchRadius(query, 5.0f, 128)) {
    EXPECT_LT(hit.id, 50u);
  }
}

TEST(HnswTest, DeterministicForSeed) {
  Rng rng(26);
  const auto points = RandomPoints(100, 4, &rng);
  HnswOptions options;
  options.seed = 777;
  HnswIndex index1(4, options);
  HnswIndex index2(4, options);
  for (const auto& point : points) {
    index1.Add(point);
    index2.Add(point);
  }
  const auto hits1 = index1.SearchKnn(points[3].data(), 5);
  const auto hits2 = index2.SearchKnn(points[3].data(), 5);
  ASSERT_EQ(hits1.size(), hits2.size());
  for (size_t i = 0; i < hits1.size(); ++i) {
    EXPECT_EQ(hits1[i].id, hits2[i].id);
  }
}

}  // namespace
}  // namespace geqo::ann
