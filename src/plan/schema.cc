#include "plan/schema.h"

#include "common/hash.h"

namespace geqo {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kDouble: {
      std::string out = std::to_string(double_);
      return out;
    }
    case ValueType::kString:
      return "'" + string_ + "'";
  }
  return "?";
}

std::optional<size_t> TableDef::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> TableDef::NumericColumns() const {
  std::vector<std::string> out;
  for (const ColumnDef& column : columns_) {
    if (column.type != ValueType::kString) out.push_back(column.name);
  }
  return out;
}

Status Catalog::AddTable(TableDef table) {
  if (FindTable(table.name()) != nullptr) {
    return Status::InvalidArgument("duplicate table: " + table.name());
  }
  if (table.columns().empty()) {
    return Status::InvalidArgument("table has no columns: " + table.name());
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Status Catalog::AddJoinKey(JoinKey key) {
  const TableDef* left = FindTable(key.left_table);
  const TableDef* right = FindTable(key.right_table);
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("join key references unknown table");
  }
  if (!left->ColumnIndex(key.left_column) || !right->ColumnIndex(key.right_column)) {
    return Status::InvalidArgument("join key references unknown column");
  }
  join_keys_.push_back(std::move(key));
  return Status::OK();
}

const TableDef* Catalog::FindTable(std::string_view name) const {
  for (const TableDef& table : tables_) {
    if (table.name() == name) return &table;
  }
  return nullptr;
}

Result<const TableDef*> Catalog::GetTable(std::string_view name) const {
  const TableDef* table = FindTable(name);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + std::string(name));
  }
  return table;
}

std::vector<JoinKey> Catalog::JoinKeysFor(std::string_view table) const {
  std::vector<JoinKey> out;
  for (const JoinKey& key : join_keys_) {
    if (key.left_table == table || key.right_table == table) out.push_back(key);
  }
  return out;
}

uint64_t CatalogFingerprint(const Catalog& catalog) {
  // Combine per-table and per-join-key hashes unordered, so two catalogs
  // declaring the same schema in a different order fingerprint identically.
  uint64_t fingerprint = HashString("geqo.catalog.v1");
  for (const TableDef& table : catalog.tables()) {
    uint64_t table_hash = HashString(table.name());
    for (const ColumnDef& column : table.columns()) {
      table_hash = HashCombine(table_hash, HashString(column.name));
      table_hash =
          HashCombine(table_hash, static_cast<uint64_t>(column.type));
    }
    fingerprint = HashCombineUnordered(fingerprint, table_hash);
  }
  for (const JoinKey& key : catalog.join_keys()) {
    uint64_t key_hash = HashString(key.left_table);
    key_hash = HashCombine(key_hash, HashString(key.left_column));
    key_hash = HashCombine(key_hash, HashString(key.right_table));
    key_hash = HashCombine(key_hash, HashString(key.right_column));
    fingerprint = HashCombineUnordered(fingerprint, key_hash);
  }
  return fingerprint;
}

}  // namespace geqo
