#pragma once

#include <set>
#include <vector>

#include "ml/trainer.h"
#include "pipeline/geqo.h"

/// \file ssfl.h
/// The semi-supervised feedback loop (SSFL, §6 / Algorithm 1). When the
/// EMF's confidence over a workload falls below the threshold T_h, the SSFL
/// draws a new balanced training sample — using the cheap SF and VMF filters
/// to surface likely-equivalent pairs that the automated verifier then
/// labels (filter-balanced sampling) — augments the training set, and
/// fine-tunes the model. Random sampling is provided as the paper's
/// comparison point (Figures 9-10).

namespace geqo {

/// \brief SSFL configuration (paper: T_h = 0.9, 512-sample batches).
struct SsflOptions {
  float confidence_threshold = 0.9f;  ///< T_h
  size_t sample_batch = 512;          ///< labeled samples per iteration
  size_t max_iterations = 8;
  size_t finetune_epochs = 5;
  bool filter_based_sampling = true;  ///< false = random sampling baseline
  /// Pairs sampled from W x W to estimate SSFL-CL (Definition 6.1); the
  /// full cross product is quadratic and needless for a rate estimate.
  size_t confidence_sample = 2000;
  uint64_t seed = 0x55f1ULL;
  VmfOptions vmf;
};

/// \brief Per-iteration record backing Figures 9-11.
struct SsflIterationReport {
  double confidence = 0.0;       ///< SSFL-CL before this iteration's tuning
  size_t new_positives = 0;
  size_t new_negatives = 0;
  double sample_seconds = 0.0;   ///< SF+VMF candidate generation / sampling
  double verify_seconds = 0.0;   ///< AV labeling
  double featurize_seconds = 0.0;
  double train_seconds = 0.0;
  double TotalSeconds() const {
    return sample_seconds + verify_seconds + featurize_seconds + train_seconds;
  }
};

/// \brief Runs Algorithm 1 over a workload.
class Ssfl {
 public:
  Ssfl(const Catalog* catalog, ml::EmfModel* model, ml::EmfTrainer* trainer,
       const EncodingLayout* instance_layout,
       const EncodingLayout* agnostic_layout, SsflOptions options = SsflOptions())
      : catalog_(catalog),
        model_(model),
        trainer_(trainer),
        instance_layout_(instance_layout),
        agnostic_layout_(agnostic_layout),
        options_(options),
        rng_(options.seed),
        verifier_(catalog) {}

  /// Iterates sample -> label -> fine-tune until the confidence level
  /// reaches T_h or max_iterations is hit. Returns one report per executed
  /// iteration (each beginning with the pre-tuning confidence estimate).
  Result<std::vector<SsflIterationReport>> Run(
      const std::vector<PlanPtr>& workload, ValueRange value_range);

  /// SSFL-CL estimate for \p workload (Definition 6.1).
  Result<double> EstimateConfidence(const std::vector<EncodedPlan>& encoded);

  /// Seeds the accumulated pool with existing training data, so
  /// fine-tuning *augments* the original dataset (§6) instead of replacing
  /// it — this is what prevents catastrophic forgetting of the pretrained
  /// patterns when the new-workload batches are small.
  void SeedTrainingData(const ml::PairDataset& dataset) {
    accumulated_.Append(dataset);
  }

  /// Training data accumulated across iterations.
  const ml::PairDataset& accumulated_data() const { return accumulated_; }
  SpesVerifier& verifier() { return verifier_; }

 private:
  /// Draws one labeled batch; appends to \p out and fills timing fields.
  Status DrawSample(const std::vector<PlanPtr>& workload,
                    const std::vector<EncodedPlan>& encoded,
                    SsflIterationReport* report, ml::PairDataset* out);

  const Catalog* catalog_;
  ml::EmfModel* model_;
  ml::EmfTrainer* trainer_;
  const EncodingLayout* instance_layout_;
  const EncodingLayout* agnostic_layout_;
  SsflOptions options_;
  Rng rng_;
  SpesVerifier verifier_;
  ml::PairDataset accumulated_;
  /// Pairs already labeled in earlier iterations; skipped by the sampler so
  /// every batch contributes new information.
  std::set<std::pair<size_t, size_t>> sampled_;
};

}  // namespace geqo
