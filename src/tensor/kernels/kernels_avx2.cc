#include "tensor/kernels/kernel_table.h"

/// \file kernels_avx2.cc
/// AVX2+FMA kernels. This is the only translation unit in the tree compiled
/// with -mavx2 -mfma (see src/tensor/CMakeLists.txt); everything here is
/// fenced behind GEQO_KERNELS_AVX2 so the file still links into portable
/// builds, where Avx2TableOrNull() simply reports "unavailable".
///
/// Accuracy contract: float reductions use four independent accumulators and
/// a lane-tree horizontal sum, so dot/squared_distance/sq8_distance may
/// differ from the scalar table by reassociation only (tested to a small ULP
/// bound in kernels_test). Elementwise ops and dot_i8 are exact — identical
/// bits to the scalar table — because per-element float ops and int32
/// arithmetic don't reassociate. (axpy uses FMA, so its single rounding per
/// element can differ from scalar mul+add by <= 1 ULP per update.)

#if defined(GEQO_KERNELS_AVX2)

#include <immintrin.h>

namespace geqo::kernels {
namespace {

float Hsum(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

std::int32_t HsumI32(__m256i v) {
  __m128i s =
      _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return _mm_cvtsi128_si32(s);
}

float DotAvx2(const float* a, const float* b, std::size_t n) {
  // Four accumulators break the FMA dependency chain that makes the scalar
  // loop latency-bound; loads are unaligned-tolerant so callers with
  // arbitrary row offsets (transpose variants, tails) stay correct.
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8),
                           acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float sum = Hsum(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                 _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void AxpyAvx2(float a, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

float SquaredDistanceAvx2(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float sum = Hsum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

void AddAvx2(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void SubAvx2(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_sub_ps(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

void MulAvx2(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] *= src[i];
}

void ScaleAvx2(float* dst, float s, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i), vs));
  }
  for (; i < n; ++i) dst[i] *= s;
}

float Sq8DistanceAvx2(const float* t, const float* scale,
                      const std::uint8_t* codes, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // 8 uint8 codes -> 8 int32 lanes -> f32, then d = t - scale*code.
    const __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i))));
    const __m256 d = _mm256_fnmadd_ps(_mm256_loadu_ps(scale + i), c,
                                      _mm256_loadu_ps(t + i));
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float sum = Hsum(acc);
  for (; i < n; ++i) {
    const float d = t[i] - scale[i] * static_cast<float>(codes[i]);
    sum += d * d;
  }
  return sum;
}

std::int32_t DotI8Avx2(const std::int8_t* a, const std::int8_t* b,
                       std::size_t n) {
  // 16 int8 pairs per step: widen to i16, madd to pairwise i32 sums. i16*i16
  // products accumulate in i32 inside madd, so the result is exact and
  // bit-identical to the scalar table.
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  std::int32_t sum = HsumI32(acc);
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return sum;
}

void AddF64Avx2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void SubF64Avx2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_sub_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

void MulF64Avx2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] *= src[i];
}

void DivF64Avx2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_div_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] /= src[i];
}

void FillF64Avx2(double* dst, double v, std::size_t n) {
  const __m256d vv = _mm256_set1_pd(v);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(dst + i, vv);
  for (; i < n; ++i) dst[i] = v;
}

/// One compare predicate per 4-lane step; the movemask bits drive ascending
/// index emission, so output order matches the scalar table exactly. Inputs
/// are NaN-free (executor contract), so the ordered predicates (and NEQ_UQ
/// for !=) agree bitwise with the scalar <,<=,==,... comparisons.
template <int kPredicate>
std::size_t CmpSelectF64Body(const double* a, const double* b,
                             std::uint32_t* out, std::size_t n,
                             bool (*scalar_tail)(double, double)) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d cmp = _mm256_cmp_pd(_mm256_loadu_pd(a + i),
                                      _mm256_loadu_pd(b + i), kPredicate);
    int mask = _mm256_movemask_pd(cmp);
    while (mask != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(mask));
      out[count++] = static_cast<std::uint32_t>(i + bit);
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (scalar_tail(a[i], b[i])) out[count++] = static_cast<std::uint32_t>(i);
  }
  return count;
}

std::size_t CmpSelectF64Avx2(int op, const double* a, const double* b,
                             std::uint32_t* out, std::size_t n) {
  switch (op) {
    case 0:
      return CmpSelectF64Body<_CMP_EQ_OQ>(a, b, out, n,
                                          [](double x, double y) { return x == y; });
    case 1:
      return CmpSelectF64Body<_CMP_NEQ_UQ>(a, b, out, n,
                                           [](double x, double y) { return x != y; });
    case 2:
      return CmpSelectF64Body<_CMP_LT_OQ>(a, b, out, n,
                                          [](double x, double y) { return x < y; });
    case 3:
      return CmpSelectF64Body<_CMP_LE_OQ>(a, b, out, n,
                                          [](double x, double y) { return x <= y; });
    case 4:
      return CmpSelectF64Body<_CMP_GT_OQ>(a, b, out, n,
                                          [](double x, double y) { return x > y; });
    default:
      return CmpSelectF64Body<_CMP_GE_OQ>(a, b, out, n,
                                          [](double x, double y) { return x >= y; });
  }
}

constexpr KernelTable kAvx2Table = {
    "avx2",         DotAvx2, AxpyAvx2, SquaredDistanceAvx2,
    AddAvx2,        SubAvx2, MulAvx2,  ScaleAvx2,
    Sq8DistanceAvx2, DotI8Avx2,
    AddF64Avx2,     SubF64Avx2, MulF64Avx2, DivF64Avx2,
    FillF64Avx2,    CmpSelectF64Avx2,
};

bool HostSupportsAvx2Fma() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace

const KernelTable* Avx2TableOrNull() {
  static const bool supported = HostSupportsAvx2Fma();
  return supported ? &kAvx2Table : nullptr;
}

}  // namespace geqo::kernels

#else  // !GEQO_KERNELS_AVX2

namespace geqo::kernels {

const KernelTable* Avx2TableOrNull() { return nullptr; }

}  // namespace geqo::kernels

#endif  // GEQO_KERNELS_AVX2
