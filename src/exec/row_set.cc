#include "exec/row_set.h"

#include <algorithm>

namespace geqo {
namespace {

/// Type-safe three-way comparison for sorting heterogeneous tuples:
/// numerics order before strings, avoiding cross-type aborts.
int SafeCompare(const Value& a, const Value& b) {
  const bool a_string = a.type() == ValueType::kString;
  const bool b_string = b.type() == ValueType::kString;
  if (a_string != b_string) return a_string ? 1 : -1;
  return a.Compare(b);
}

int CompareRows(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    const int c = SafeCompare(a[i], b[i]);
    if (c != 0) return c;
  }
  return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
}

}  // namespace

size_t RowSet::ByteSize() const {
  size_t bytes = 0;
  for (const auto& row : rows) {
    for (const Value& value : row) {
      bytes += value.type() == ValueType::kString ? 8 + value.AsString().size()
                                                  : 8;
    }
  }
  return bytes;
}

bool RowSet::BagEquals(const RowSet& other) const {
  if (rows.size() != other.rows.size()) return false;
  if (num_columns() != other.num_columns()) return false;
  std::vector<std::vector<Value>> a = rows;
  std::vector<std::vector<Value>> b = other.rows;
  const auto less = [](const std::vector<Value>& x,
                       const std::vector<Value>& y) {
    return CompareRows(x, y) < 0;
  };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  for (size_t i = 0; i < a.size(); ++i) {
    if (CompareRows(a[i], b[i]) != 0) return false;
  }
  return true;
}

}  // namespace geqo
