#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"

/// \file log_io.h
/// Per-record integrity framing for append-only delta logs — the
/// record-granular counterpart of checksum_io.h's whole-payload footer.
/// Each record is written as
///
///   u32 payload_size | payload bytes | u64 FNV-1a(payload)
///
/// so a log interrupted mid-append (process killed, disk full) has a
/// well-defined *clean prefix*: scanning stops at the first frame that is
/// short or fails its checksum, and recovery truncates the file back to the
/// clean prefix instead of rejecting the whole log. A bad frame that is
/// followed by a checksum-valid frame cannot be a torn tail — appends are
/// sequential, so bytes after the torn point were never written — and is
/// reported as mid-log corruption, which recovery refuses to truncate over.

namespace geqo::io {

/// Framing overhead per record: the u32 length prefix + the u64 checksum.
constexpr size_t kFrameOverhead = sizeof(uint32_t) + sizeof(uint64_t);

/// Appends one framed record to \p out.
inline void AppendFramedRecord(std::string* out, std::string_view payload) {
  const uint32_t size = static_cast<uint32_t>(payload.size());
  const uint64_t checksum = HashBytes(payload.data(), payload.size());
  out->append(reinterpret_cast<const char*>(&size), sizeof(size));
  out->append(payload.data(), payload.size());
  out->append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
}

/// Outcome of scanning a byte range for framed records.
struct FramedScan {
  /// The checksum-valid record payloads, in append order.
  std::vector<std::string> records;
  /// Byte offset (from the start of \p bytes) one past the last valid
  /// frame — the truncation target when the tail is torn.
  size_t clean_size = 0;
  /// Bytes remain past clean_size that do not form a valid frame.
  bool torn = false;
  /// A checksum-valid frame parses *after* the bad one: the damage is not a
  /// torn tail but corruption inside the log (bit rot, tampering) —
  /// truncating would silently drop durable records, so callers must fail.
  bool mid_corruption = false;
};

/// True when a checksum-valid frame starts at \p offset.
inline bool ValidFrameAt(std::string_view bytes, size_t offset) {
  if (offset + sizeof(uint32_t) > bytes.size()) return false;
  uint32_t size = 0;
  std::memcpy(&size, bytes.data() + offset, sizeof(size));
  const size_t end = offset + sizeof(uint32_t) + size + sizeof(uint64_t);
  if (size > bytes.size() || end > bytes.size()) return false;
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + offset + sizeof(uint32_t) + size,
              sizeof(stored));
  return stored == HashBytes(bytes.data() + offset + sizeof(uint32_t), size);
}

/// Scans \p bytes from \p offset, collecting the clean prefix of framed
/// records and classifying whatever ends it (nothing / torn tail / mid-log
/// corruption).
inline FramedScan ScanFramedRecords(std::string_view bytes, size_t offset) {
  FramedScan out;
  size_t pos = offset;
  while (pos < bytes.size()) {
    if (!ValidFrameAt(bytes, pos)) {
      out.torn = true;
      // Distinguish a torn tail from interior damage: if the bad frame's
      // length field still delimits a plausible successor frame, or any
      // later byte begins a valid frame, durable records live beyond the
      // damage and truncation would lose them.
      if (pos + sizeof(uint32_t) <= bytes.size()) {
        uint32_t bad_size = 0;
        std::memcpy(&bad_size, bytes.data() + pos, sizeof(bad_size));
        const size_t next = pos + sizeof(uint32_t) + bad_size + sizeof(uint64_t);
        if (bad_size <= bytes.size() && next < bytes.size() &&
            ValidFrameAt(bytes, next)) {
          out.mid_corruption = true;
        }
      }
      break;
    }
    uint32_t size = 0;
    std::memcpy(&size, bytes.data() + pos, sizeof(size));
    out.records.emplace_back(bytes.substr(pos + sizeof(uint32_t), size));
    pos += sizeof(uint32_t) + size + sizeof(uint64_t);
  }
  out.clean_size = pos;
  return out;
}

}  // namespace geqo::io
