#pragma once

#include <vector>

#include "analysis/diagnostics.h"
#include "exec/batch.h"
#include "exec/pipeline.h"

/// \file validate.h
/// Exec-batch and pipeline invariant validation — the executor-side member
/// of the PR 5 validator family (analysis/plan_validator.h). The always-on
/// Validate* functions return structured diagnostics with stable exec.*
/// codes; the Debug* wrappers run at morsel boundaries behind the same
/// GEQO_VALIDATE switch as plan validation (analysis::
/// DebugValidationEnabled) and abort with formatted findings, so a batch
/// that violates the columnar contract dies at the boundary that produced
/// it instead of corrupting a sink three operators later.
///
/// Invariants checked (codes in parentheses):
///   Batch:
///     - bindings and columns agree in arity (exec.batch.binding-arity)
///     - a non-all selection vector is strictly ascending — sorted and
///       duplicate-free, the order every operator and sink assumes
///       (exec.batch.sel-not-ascending) — and stays inside the physical
///       row count (exec.batch.sel-out-of-range)
///     - owned columns physically hold num_rows rows; view extents are
///       not recorded and cannot be checked (exec.batch.column-length)
///     - owned numeric column storage sits on the kernel alignment
///       boundary, kKernelAlignment = 32 (exec.batch.misaligned-column).
///       Views are exempt by default: a zero-copy scan of morsel k points
///       at row offset k*morsel_rows, which lands off-boundary by design;
///       BatchValidationOptions::require_view_alignment tightens this for
///       dense interchange batches.
///   Pipeline wiring (against the compiled query's breaker table):
///     - materialized sources, probe ops, and build/aggregate sinks name
///       an existing breaker (exec.pipeline.source-breaker-range,
///       exec.pipeline.op-breaker-range, exec.pipeline.sink-breaker-range)
///     - hash probes carry in-range keys on both sides and their build
///       breaker was hashed on the same key
///       (exec.pipeline.probe-key-range, exec.pipeline.unhashed-build)
///     - projections emit one column per output expression
///       (exec.pipeline.project-arity)
///     - the last op's schema is the schema entering the sink
///       (exec.pipeline.final-schema), and an aggregate sink's output
///       arity is group-by keys plus aggregates
///       (exec.pipeline.aggregate-arity)

namespace geqo::exec {

struct BatchValidationOptions {
  /// Also require view columns to be kernel-aligned (dense interchange
  /// batches only — morsel-offset scan views legitimately are not).
  bool require_view_alignment = false;
};

/// Appends a diagnostic per violated batch invariant; empty means valid.
/// \p context names the batch's origin in reports (e.g. "pipeline 2
/// morsel 7").
void ValidateBatch(const Batch& batch, analysis::Diagnostics* out,
                   const BatchValidationOptions& options = {},
                   const std::string& context = {});

/// Appends a diagnostic per pipeline wiring violation; \p breakers is the
/// owning CompiledQuery's breaker table.
void ValidatePipeline(const Pipeline& pipeline,
                      const std::vector<Breaker>& breakers,
                      analysis::Diagnostics* out,
                      const std::string& context = {});

/// Aborts (GEQO_CHECK) with formatted diagnostics when debug validation
/// is enabled and \p batch violates the columnar contract. \p boundary
/// names the execution edge, e.g. "exec.RunPipeline.morsel".
void DebugValidateBatch(const Batch& batch, const char* boundary);

/// As DebugValidateBatch, for pipeline wiring ahead of execution.
void DebugValidatePipeline(const Pipeline& pipeline,
                           const std::vector<Breaker>& breakers,
                           const char* boundary);

}  // namespace geqo::exec
