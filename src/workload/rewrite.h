#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "plan/plan.h"
#include "plan/spj.h"

/// \file rewrite.h
/// A WeTune-style library of semantics-preserving rewrite rules (§5).
/// Applied to AMOEBA-style base queries, these rules manufacture the
/// training signal GEqO learns from: pairs that are semantically equivalent
/// yet syntactically dissimilar (exactly the Figure-1 class of variation).
/// A property test asserts every rule preserves verifier equivalence.

namespace geqo {

/// \brief The rewrite rules. Each is semantics-preserving; rules that do not
/// apply to a given plan leave it unchanged.
enum class RewriteRule : uint8_t {
  kShuffleAtoms,           ///< permute join order (join commutativity)
  kShufflePredicates,      ///< permute conjunct order
  kSwapOperands,           ///< a op b  ->  b flip(op) a
  kShiftConstant,          ///< a op b  ->  a + k op b + k (numeric sides)
  kAddImpliedPredicate,    ///< add a weaker copy of a range predicate
  kRemoveRedundantPredicate,  ///< drop a conjunct implied by a stronger one
  kRenameAliases,          ///< fresh table aliases
  kSubstituteEqualColumn,  ///< replace col via an equality conjunct
  /// From x - y > c1 and y > c2, add the implied x > c1 + c2 (the Figure-1
  /// pattern). Requires cross-term arithmetic to undo, which rule-based
  /// optimizers lack — this is the rewrite class that separates GEqO from
  /// the optimizer baseline in §7.5.
  kAddCrossTermImplied,
};

inline constexpr RewriteRule kAllRewriteRules[] = {
    RewriteRule::kShuffleAtoms,
    RewriteRule::kShufflePredicates,
    RewriteRule::kSwapOperands,
    RewriteRule::kShiftConstant,
    RewriteRule::kAddImpliedPredicate,
    RewriteRule::kRemoveRedundantPredicate,
    RewriteRule::kRenameAliases,
    RewriteRule::kSubstituteEqualColumn,
    RewriteRule::kAddCrossTermImplied,
};

std::string_view RewriteRuleToString(RewriteRule rule);

/// \brief Rebuilds a left-deep SPJ plan from a flattened form, choosing join
/// predicates greedily (first conjunct spanning both sides) and stacking the
/// remaining conjuncts as selections.
PlanPtr RebuildPlan(const FlatSpj& flat);

/// \brief Rewrite configuration.
struct RewriteOptions {
  size_t max_rules_per_variant = 3;  ///< rules chained per variant
};

/// \brief Applies semantics-preserving rewrites to SPJ plans.
class Rewriter {
 public:
  Rewriter(const Catalog* catalog, RewriteOptions options = RewriteOptions())
      : catalog_(catalog), options_(options) {}

  /// Applies one named rule. NotSupported for plans outside SPJ form.
  Result<PlanPtr> Apply(RewriteRule rule, const PlanPtr& plan, Rng* rng) const;

  /// Applies 1..max_rules_per_variant random rules in sequence.
  Result<PlanPtr> RewriteOnce(const PlanPtr& plan, Rng* rng) const;

  /// \p count independent equivalent variants of \p plan.
  Result<std::vector<PlanPtr>> Variants(const PlanPtr& plan, size_t count,
                                        Rng* rng) const;

 private:
  const Catalog* catalog_;
  RewriteOptions options_;
};

}  // namespace geqo
