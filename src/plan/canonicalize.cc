#include "plan/canonicalize.h"

#include <algorithm>
#include <optional>

#include "common/hash.h"

namespace geqo {

std::optional<bool> TryEvaluateComparison(const Comparison& raw) {
  const Comparison cmp{FoldConstants(raw.lhs), raw.op, FoldConstants(raw.rhs)};
  if (!cmp.lhs->is_literal() || !cmp.rhs->is_literal()) return std::nullopt;
  const Value& a = cmp.lhs->value();
  const Value& b = cmp.rhs->value();
  if (a.is_numeric() != b.is_numeric()) return std::nullopt;
  const int c = a.Compare(b);
  switch (cmp.op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return std::nullopt;
}


PlanPtr Canonicalize(const PlanPtr& plan) {
  switch (plan->kind()) {
    case OpKind::kScan:
      return plan;
    case OpKind::kSelect: {
      PlanPtr child = Canonicalize(plan->child(0));
      Comparison folded{FoldConstants(plan->predicate().lhs),
                        plan->predicate().op,
                        FoldConstants(plan->predicate().rhs)};
      const std::optional<bool> constant = TryEvaluateComparison(folded);
      if (constant.has_value() && *constant) {
        return child;  // WHERE 1 = 1: drop
      }
      return PlanNode::Select(std::move(folded), std::move(child));
    }
    case OpKind::kJoin: {
      PlanPtr left = Canonicalize(plan->child(0));
      PlanPtr right = Canonicalize(plan->child(1));
      Comparison folded{FoldConstants(plan->predicate().lhs),
                        plan->predicate().op,
                        FoldConstants(plan->predicate().rhs)};
      return PlanNode::Join(plan->join_type(), std::move(folded),
                            std::move(left), std::move(right));
    }
    case OpKind::kProject: {
      PlanPtr child = Canonicalize(plan->child(0));
      std::vector<OutputColumn> outputs;
      outputs.reserve(plan->outputs().size());
      for (const OutputColumn& output : plan->outputs()) {
        outputs.push_back(OutputColumn{output.name, FoldConstants(output.expr)});
      }
      return PlanNode::Project(std::move(outputs), std::move(child));
    }
    case OpKind::kAggregate: {
      PlanPtr child = Canonicalize(plan->child(0));
      std::vector<OutputColumn> keys;
      keys.reserve(plan->group_by().size());
      for (const OutputColumn& key : plan->group_by()) {
        keys.push_back(OutputColumn{key.name, FoldConstants(key.expr)});
      }
      std::vector<AggregateExpr> aggregates;
      aggregates.reserve(plan->aggregates().size());
      for (const AggregateExpr& aggregate : plan->aggregates()) {
        aggregates.push_back(AggregateExpr{
            aggregate.fn,
            aggregate.argument == nullptr ? nullptr
                                          : FoldConstants(aggregate.argument),
            aggregate.name});
      }
      return PlanNode::Aggregate(std::move(keys), std::move(aggregates),
                                 std::move(child));
    }
  }
  return plan;
}

size_t CountPredicates(const PlanPtr& plan) {
  size_t count =
      (plan->kind() == OpKind::kSelect || plan->kind() == OpKind::kJoin) ? 1 : 0;
  for (const PlanPtr& child : plan->children()) count += CountPredicates(child);
  return count;
}

uint64_t CanonicalHash(const PlanPtr& plan) {
  return Canonicalize(plan)->Hash();
}

uint64_t CanonicalCheckHash(const PlanPtr& plan) {
  // Distinct seed and distinct input channel (the textual rendering instead
  // of the structural node walk), so this does not co-collide with
  // CanonicalHash. Canonicalize is idempotent: callers may pass either the
  // raw or the canonical plan.
  return HashString(Canonicalize(plan)->ToString(), 0x9ae16a3b2f90404fULL);
}

PairFingerprint FingerprintPair(uint64_t canonical_hash_a,
                                uint64_t canonical_hash_b) {
  return PairFingerprint{std::min(canonical_hash_a, canonical_hash_b),
                         std::max(canonical_hash_a, canonical_hash_b)};
}

}  // namespace geqo
