#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "exec/database.h"
#include "exec/executor.h"
#include "exec/session.h"
#include "tensor/kernels/kernel_table.h"
#include "test_util.h"
#include "workload/generator.h"
#include "workload/schemas.h"

/// \file vec_exec_test.cc
/// Parity suite for the morsel-driven vectorized executor: every query must
/// produce a bag identical to the legacy row-at-a-time Executor (the
/// oracle), and the exact output — including floating-point aggregates —
/// must be byte-stable across thread counts and kernel ISAs.

namespace geqo {
namespace {

using testing::MakeFigure1Catalog;
using testing::MustParse;

/// Thread counts every parity check sweeps. 1 exercises the inline path,
/// 8 oversubscribes the morsel loop on small tables.
const size_t kThreadCounts[] = {1, 2, 8};

/// Restores the global pool and ISA after a sweep.
class ConfigGuard {
 public:
  ConfigGuard()
      : threads_(ThreadPool::GlobalThreads()),
        isa_(kernels::ActiveIsa()) {}
  ~ConfigGuard() {
    ThreadPool::SetGlobalThreads(threads_);
    kernels::SetIsa(isa_);
  }

 private:
  size_t threads_;
  kernels::Isa isa_;
};

std::vector<kernels::Isa> AvailableIsas() {
  std::vector<kernels::Isa> isas = {kernels::Isa::kScalar};
  if (kernels::Avx2TableOrNull() != nullptr) {
    isas.push_back(kernels::Isa::kAvx2);
  }
  return isas;
}

/// Rows of \p a and \p b are identical, in order (exact Value comparison —
/// stronger than BagEquals; catches nondeterministic output order or FP
/// accumulation differences across configs).
bool ExactlyEqual(const RowSet& a, const RowSet& b) {
  if (a.column_names != b.column_names || a.rows.size() != b.rows.size()) {
    return false;
  }
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (a.rows[r].size() != b.rows[r].size()) return false;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      const Value& x = a.rows[r][c];
      const Value& y = b.rows[r][c];
      if (x.is_numeric() != y.is_numeric() || x.Compare(y) != 0) return false;
    }
  }
  return true;
}

/// Runs \p plan through the oracle and through the vectorized engine under
/// every thread count x ISA combination, checking bag parity everywhere and
/// exact cross-config determinism of the vectorized output.
void ExpectParity(const Database& db, const PlanPtr& plan,
                  size_t morsel_rows = 16) {
  Executor oracle(&db);
  const Result<RowSet> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  ConfigGuard guard;
  exec::SessionOptions options;
  options.morsel_rows = morsel_rows;
  const exec::ExecutionSession session(&db, options);
  bool have_reference = false;
  RowSet reference;
  for (const kernels::Isa isa : AvailableIsas()) {
    ASSERT_TRUE(kernels::SetIsa(isa));
    for (const size_t threads : kThreadCounts) {
      ThreadPool::SetGlobalThreads(threads);
      const Result<RowSet> actual = session.Execute(plan);
      ASSERT_TRUE(actual.ok())
          << actual.status().ToString() << " (isa=" << static_cast<int>(isa)
          << " threads=" << threads << ")";
      EXPECT_EQ(actual->column_names, expected->column_names);
      EXPECT_TRUE(actual->BagEquals(*expected))
          << "vectorized result diverges from oracle (isa="
          << static_cast<int>(isa) << " threads=" << threads
          << "): " << actual->num_rows() << " vs " << expected->num_rows()
          << " rows";
      if (!have_reference) {
        reference = *actual;
        have_reference = true;
      } else {
        EXPECT_TRUE(ExactlyEqual(*actual, reference))
            << "vectorized output is not bit-stable across configs (isa="
            << static_cast<int>(isa) << " threads=" << threads << ")";
      }
    }
  }
}

class VecExecTest : public ::testing::Test {
 protected:
  VecExecTest() : catalog_(MakeFigure1Catalog()) {
    DataGenOptions options;
    options.default_rows = 50;
    options.key_cardinality = 10;  // dense keys: joins produce matches
    options.seed = 999;
    db_ = std::make_unique<Database>(Database::Generate(catalog_, options));
  }

  void CheckSql(std::string_view sql, size_t morsel_rows = 16) {
    ExpectParity(*db_, MustParse(sql, catalog_), morsel_rows);
  }

  Catalog catalog_;
  std::unique_ptr<Database> db_;
};

// --- Operator-by-operator parity -----------------------------------------

TEST_F(VecExecTest, Scan) { CheckSql("SELECT * FROM a"); }

TEST_F(VecExecTest, Filter) { CheckSql("SELECT * FROM a WHERE a.val > 50"); }

TEST_F(VecExecTest, FilterChain) {
  CheckSql("SELECT * FROM a WHERE a.val > 20 AND a.val < 80 AND a.x >= 3");
}

TEST_F(VecExecTest, FilterWithArithmetic) {
  CheckSql("SELECT * FROM a WHERE a.val + 10 > a.x * 2");
}

TEST_F(VecExecTest, ProjectColumnsAndExpressions) {
  CheckSql("SELECT a.x, a.val + 1 AS v1, a.val * a.x AS vx, 7 AS c FROM a");
}

TEST_F(VecExecTest, ProjectDivision) {
  CheckSql("SELECT a.val / 4 AS q FROM a WHERE a.val > 0");
}

TEST_F(VecExecTest, HashJoin) {
  CheckSql("SELECT a.x, b.y FROM a, b WHERE a.joinkey = b.joinkey");
}

TEST_F(VecExecTest, HashJoinSwappedSides) {
  CheckSql("SELECT a.x, b.y FROM a, b WHERE b.joinkey = a.joinkey");
}

TEST_F(VecExecTest, NestedLoopJoin) {
  CheckSql("SELECT a.x, b.y FROM a, b WHERE a.joinkey + 0 = b.joinkey");
}

TEST_F(VecExecTest, NestedLoopInequalityJoin) {
  CheckSql("SELECT a.x, b.y FROM a, b WHERE a.val > b.val + 80");
}

TEST_F(VecExecTest, CrossJoin) { CheckSql("SELECT a.x, b.y FROM a, b"); }

TEST_F(VecExecTest, JoinThenFilterThenProject) {
  CheckSql(
      "SELECT a.x, b.y FROM a, b WHERE a.joinkey = b.joinkey AND "
      "a.val > b.val + 10 AND b.val > 10");
}

TEST_F(VecExecTest, SelfJoin) {
  CheckSql(
      "SELECT p1.x, p2.val FROM a AS p1, a AS p2 "
      "WHERE p1.joinkey = p2.joinkey AND p1.val > 30");
}

TEST_F(VecExecTest, AggregateCountSumMinMaxAvg) {
  CheckSql(
      "SELECT a.joinkey, COUNT(*) AS n, SUM(a.val) AS s, MIN(a.val) AS lo, "
      "MAX(a.val) AS hi, AVG(a.val) AS mean FROM a GROUP BY a.joinkey");
}

TEST_F(VecExecTest, GlobalAggregate) {
  CheckSql("SELECT SUM(a.val) AS s, COUNT(*) AS n FROM a");
}

TEST_F(VecExecTest, AggregateOverJoin) {
  CheckSql(
      "SELECT a.joinkey, SUM(b.val) AS s FROM a, b "
      "WHERE a.joinkey = b.joinkey GROUP BY a.joinkey");
}

TEST_F(VecExecTest, AggregateOverExpression) {
  CheckSql("SELECT a.joinkey, SUM(a.val * 2 + 1) AS s FROM a GROUP BY a.joinkey");
}

TEST_F(VecExecTest, EmptyFilterResult) {
  CheckSql("SELECT a.x FROM a WHERE a.val > 100000");
}

TEST_F(VecExecTest, AggregateOverEmptyInput) {
  CheckSql("SELECT a.joinkey, SUM(a.val) AS s FROM a WHERE a.val > 100000 "
           "GROUP BY a.joinkey");
}

TEST_F(VecExecTest, MorselBoundaryOfOne) {
  // Morsels of a single row: maximal scheduling freedom, same answer.
  CheckSql("SELECT a.joinkey, SUM(a.val) AS s FROM a GROUP BY a.joinkey",
           /*morsel_rows=*/1);
}

TEST_F(VecExecTest, MorselLargerThanTable) {
  CheckSql("SELECT a.x FROM a WHERE a.val > 50", /*morsel_rows=*/65536);
}

// --- Error parity ----------------------------------------------------------

TEST_F(VecExecTest, DivisionByZeroMatchesOracle) {
  const PlanPtr plan =
      MustParse("SELECT a.val / (a.val - a.val) AS q FROM a", catalog_);
  Executor oracle(db_.get());
  const Result<RowSet> expected = oracle.Execute(plan);
  ASSERT_FALSE(expected.ok());
  const exec::ExecutionSession session(db_.get());
  const Result<RowSet> actual = session.Execute(plan);
  ASSERT_FALSE(actual.ok());
  EXPECT_EQ(actual.status().ToString(), expected.status().ToString());
}

TEST_F(VecExecTest, DivisionByZeroNotRaisedWhenNoRowsFlow) {
  // The oracle evaluates lazily: a filter that kills every row means the
  // poisoned projection is never evaluated. The compiled engine must match.
  const PlanPtr plan = MustParse(
      "SELECT a.val / (a.val - a.val) AS q FROM a WHERE a.val > 100000",
      catalog_);
  Executor oracle(db_.get());
  ASSERT_TRUE(oracle.Execute(plan).ok());
  const exec::ExecutionSession session(db_.get());
  const Result<RowSet> actual = session.Execute(plan);
  EXPECT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(actual->num_rows(), 0u);
}

TEST_F(VecExecTest, OuterJoinNotSupportedMatchesOracle) {
  const PlanPtr plan = MustParse(
      "SELECT a.x FROM a LEFT JOIN b ON a.joinkey = b.joinkey", catalog_);
  Executor oracle(db_.get());
  const Result<RowSet> expected = oracle.Execute(plan);
  ASSERT_TRUE(expected.status().IsNotSupported());
  const exec::ExecutionSession session(db_.get());
  const Result<RowSet> actual = session.Execute(plan);
  EXPECT_TRUE(actual.status().IsNotSupported());
  EXPECT_EQ(actual.status().ToString(), expected.status().ToString());
}

// --- Streaming API ---------------------------------------------------------

TEST_F(VecExecTest, NextBatchStreamsAllRowsThenDrains) {
  const PlanPtr plan = MustParse("SELECT * FROM a", catalog_);
  exec::SessionOptions options;
  options.morsel_rows = 16;  // 50 rows -> 4 morsels
  const exec::ExecutionSession session(db_.get(), options);
  auto prepared = session.Prepare(plan);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  exec::QueryExecution& query = **prepared;
  size_t batches = 0;
  size_t rows = 0;
  while (true) {
    const Result<const exec::Batch*> batch = query.NextBatch();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (*batch == nullptr) break;
    ++batches;
    rows += (*batch)->ActiveRows();
  }
  EXPECT_EQ(batches, 4u);
  EXPECT_EQ(rows, 50u);
  // Drained: Materialize returns the (now empty) remainder.
  const Result<RowSet> rest = query.Materialize();
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->num_rows(), 0u);
  EXPECT_EQ(query.metrics().morsels, 4u);
  EXPECT_EQ(query.metrics().rows_scanned, 50u);
}

TEST_F(VecExecTest, PartialStreamThenMaterializeReturnsRemainder) {
  const PlanPtr plan = MustParse("SELECT * FROM a", catalog_);
  exec::SessionOptions options;
  options.morsel_rows = 16;
  const exec::ExecutionSession session(db_.get(), options);
  auto prepared = session.Prepare(plan);
  ASSERT_TRUE(prepared.ok());
  exec::QueryExecution& query = **prepared;
  const Result<const exec::Batch*> first = query.NextBatch();
  ASSERT_TRUE(first.ok());
  ASSERT_NE(*first, nullptr);
  const size_t streamed = (*first)->ActiveRows();
  const Result<RowSet> rest = query.Materialize();
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(streamed + rest->num_rows(), 50u);
}

TEST_F(VecExecTest, MetricsCountPipelinesAndRows) {
  const PlanPtr plan = MustParse(
      "SELECT a.joinkey, SUM(b.val) AS s FROM a, b "
      "WHERE a.joinkey = b.joinkey GROUP BY a.joinkey",
      catalog_);
  exec::ExecMetrics metrics;
  const exec::ExecutionSession session(db_.get());
  const Result<RowSet> out = session.Execute(plan, &metrics);
  ASSERT_TRUE(out.ok());
  // Join build + aggregate input + final scan over the group table.
  EXPECT_EQ(metrics.pipelines, 3u);
  EXPECT_EQ(metrics.rows_scanned, 100u);  // both 50-row tables
  EXPECT_EQ(metrics.rows_output, out->num_rows());
  EXPECT_GE(metrics.execute_seconds, 0.0);
}

// --- Whole-workload parity -------------------------------------------------

std::vector<std::string> LoadStatements(const std::string& path) {
  std::ifstream in(path);
  GEQO_CHECK(in.good()) << "cannot open workload file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  // Strip -- comments, then split on ';'.
  std::string stripped;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t comment = text.find("--", pos);
    if (comment == std::string::npos) {
      stripped.append(text, pos, text.size() - pos);
      break;
    }
    stripped.append(text, pos, comment - pos);
    const size_t eol = text.find('\n', comment);
    if (eol == std::string::npos) break;
    pos = eol;  // keep the newline as whitespace
  }
  std::vector<std::string> statements;
  std::stringstream split(stripped);
  std::string statement;
  while (std::getline(split, statement, ';')) {
    const size_t first = statement.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) continue;
    statements.push_back(statement.substr(first));
  }
  return statements;
}

TEST(VecExecWorkloadTest, TpchViewsFileMatchesOracle) {
  const Catalog catalog = MakeTpchCatalog();
  DataGenOptions options;
  options.default_rows = 60;
  options.key_cardinality = 15;
  options.seed = 0x7c9;
  const Database db = Database::Generate(catalog, options);
  const std::vector<std::string> statements =
      LoadStatements(std::string(GEQO_WORKLOADS_DIR) + "/tpch_views.sql");
  ASSERT_GT(statements.size(), 5u);
  for (const std::string& sql : statements) {
    SCOPED_TRACE(sql);
    ExpectParity(db, MustParse(sql, catalog));
  }
}

TEST(VecExecWorkloadTest, GeneratedTpchWorkloadMatchesOracle) {
  const Catalog catalog = MakeTpchCatalog();
  DataGenOptions data_options;
  data_options.default_rows = 40;
  data_options.key_cardinality = 12;
  data_options.seed = 0xabc1;
  const Database db = Database::Generate(catalog, data_options);

  GeneratorOptions gen_options;
  gen_options.max_tables = 3;
  gen_options.max_select_predicates = 3;
  gen_options.aggregate_probability = 0.4;
  gen_options.string_predicate_probability = 0.3;
  const QueryGenerator generator(&catalog, gen_options);
  Rng rng(0x5eed01);
  const std::vector<PlanPtr> queries = generator.GenerateMany(25, &rng);
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE("generated query " + std::to_string(i));
    ExpectParity(db, queries[i], /*morsel_rows=*/8);
  }
}

}  // namespace
}  // namespace geqo
