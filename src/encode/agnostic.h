#pragma once

#include <vector>

#include "encode/encoding.h"

/// \file agnostic.h
/// Database-agnostic encoding (§4.2). Two implementations are provided, as
/// in the paper:
///
///   Path A ("symbolize then encode"): BuildSymbolMap assigns symbolic
///   tables t01.. and per-table columns c01.. to the names referenced by a
///   pair (or group) of subexpressions, and PlanEncoder encodes against the
///   agnostic layout through that map.
///
///   Path B (the fast converter, §4.2.1 / Figure 5): subexpressions are
///   instance-encoded once (O(n)), and per pair a lightweight matrix-column
///   remapping — masks over referenced tables/columns, eliminate, scatter —
///   converts instance matrices to agnostic matrices. The paper measures
///   this ~1.8x faster than path A; bench_micro reproduces the comparison.
///
/// The n-ary generalization (§4.2.2) computes the mask over an entire
/// SF-group and backs the VMF's group encoding.

namespace geqo {

/// \brief Columns of \p plan that its encoding marks (predicate columns in
/// normalized form, first column of non-normalizable predicates, projected
/// columns), as (table, column) pairs. This is the reference set both paths
/// derive their symbol assignment from, keeping them bit-identical.
std::vector<std::pair<std::string, std::string>> CollectEncodedColumns(
    const PlanPtr& plan);

/// \brief Builds the symbol map for a set of subexpressions: referenced
/// tables sorted alphanumerically become t01, t02, ...; each table's
/// referenced columns, sorted, become c01, c02, ... Fails with
/// ResourceExhausted if the group exceeds the agnostic layout's capacity.
Result<SymbolMap> BuildSymbolMap(const std::vector<PlanPtr>& plans,
                                 const EncodingLayout& agnostic_layout);

/// \brief Path B: converts instance encodings to agnostic encodings by
/// column-mask elimination and remapping, without revisiting plan trees.
class AgnosticConverter {
 public:
  /// Builds the conversion for a group of instance-encoded subexpressions
  /// (a pair for the EMF; a whole SF-group for the VMF's n-ary variant).
  /// The mask is the union of references across all group members. When the
  /// group references more tables/columns than the agnostic layout holds,
  /// Create fails with ResourceExhausted unless \p truncate_overflow is set,
  /// in which case overflowing references are dropped from the encoding
  /// (a lossy approximation used by the VMF-without-SF ablation, where
  /// "groups" can span the whole workload).
  static Result<AgnosticConverter> Create(
      const EncodingLayout* instance_layout,
      const EncodingLayout* agnostic_layout,
      const std::vector<const EncodedPlan*>& group,
      bool truncate_overflow = false);

  /// Remaps one instance-encoded plan into the agnostic layout.
  EncodedPlan Convert(const EncodedPlan& instance_encoded) const;

 private:
  AgnosticConverter(const EncodingLayout* instance_layout,
                    const EncodingLayout* agnostic_layout)
      : instance_layout_(instance_layout), agnostic_layout_(agnostic_layout) {}

  const EncodingLayout* instance_layout_;
  const EncodingLayout* agnostic_layout_;
  /// instance table slot -> agnostic table slot, npos when unreferenced.
  std::vector<size_t> table_map_;
  /// instance column slot -> agnostic column slot, npos when unreferenced.
  std::vector<size_t> column_map_;
};

/// \brief Convenience: db-agnostic encodings for a pair of subexpressions
/// via path A. Used by tests and by callers that do not pre-encode.
Result<std::pair<EncodedPlan, EncodedPlan>> EncodePairAgnostic(
    const PlanPtr& a, const PlanPtr& b, const EncodingLayout& agnostic_layout,
    const Catalog& catalog, ValueRange value_range);

}  // namespace geqo
