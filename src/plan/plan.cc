#include "plan/plan.h"

#include <algorithm>

#include "common/check.h"

namespace geqo {

std::string_view OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "Scan";
    case OpKind::kSelect:
      return "Select";
    case OpKind::kProject:
      return "Project";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kAggregate:
      return "Aggregate";
  }
  return "?";
}

std::string_view AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "COUNT";
    case AggregateFn::kSum:
      return "SUM";
    case AggregateFn::kMin:
      return "MIN";
    case AggregateFn::kMax:
      return "MAX";
    case AggregateFn::kAvg:
      return "AVG";
  }
  return "?";
}

std::string AggregateExpr::ToString() const {
  std::string out(AggregateFnToString(fn));
  out += "(";
  out += argument == nullptr ? "*" : argument->ToString();
  out += ")";
  return out;
}

bool AggregateExpr::Equals(const AggregateExpr& other) const {
  if (fn != other.fn) return false;
  if ((argument == nullptr) != (other.argument == nullptr)) return false;
  return argument == nullptr || argument->Equals(*other.argument);
}

uint64_t AggregateExpr::Hash() const {
  uint64_t hash = HashCombine(0xA6642E6A7E, static_cast<uint64_t>(fn));
  if (argument != nullptr) hash = HashCombine(hash, argument->Hash());
  return hash;
}

std::string_view JoinTypeToString(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "INNER";
    case JoinType::kLeftOuter:
      return "LEFT OUTER";
    case JoinType::kRightOuter:
      return "RIGHT OUTER";
  }
  return "?";
}

PlanPtr PlanNode::Scan(std::string table, std::string alias) {
  GEQO_CHECK(!table.empty());
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->kind_ = OpKind::kScan;
  node->table_ = std::move(table);
  node->alias_ = alias.empty() ? node->table_ : std::move(alias);
  return node;
}

PlanPtr PlanNode::Select(Comparison predicate, PlanPtr child) {
  GEQO_CHECK(child != nullptr);
  GEQO_CHECK(predicate.lhs != nullptr && predicate.rhs != nullptr);
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->kind_ = OpKind::kSelect;
  node->predicate_ = std::move(predicate);
  node->children_.push_back(std::move(child));
  return node;
}

PlanPtr PlanNode::Project(std::vector<OutputColumn> outputs, PlanPtr child) {
  GEQO_CHECK(child != nullptr);
  GEQO_CHECK(!outputs.empty()) << "projection needs at least one column";
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->kind_ = OpKind::kProject;
  node->outputs_ = std::move(outputs);
  node->children_.push_back(std::move(child));
  return node;
}

PlanPtr PlanNode::Join(JoinType type, Comparison predicate, PlanPtr left,
                       PlanPtr right) {
  GEQO_CHECK(left != nullptr && right != nullptr);
  GEQO_CHECK(predicate.lhs != nullptr && predicate.rhs != nullptr);
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->kind_ = OpKind::kJoin;
  node->join_type_ = type;
  node->predicate_ = std::move(predicate);
  node->children_.push_back(std::move(left));
  node->children_.push_back(std::move(right));
  return node;
}

PlanPtr PlanNode::Aggregate(std::vector<OutputColumn> group_by,
                            std::vector<AggregateExpr> aggregates,
                            PlanPtr child) {
  GEQO_CHECK(child != nullptr);
  GEQO_CHECK(!group_by.empty() || !aggregates.empty())
      << "aggregation needs at least one key or aggregate";
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->kind_ = OpKind::kAggregate;
  node->outputs_ = std::move(group_by);
  node->aggregates_ = std::move(aggregates);
  node->children_.push_back(std::move(child));
  return node;
}

const std::string& PlanNode::table() const {
  GEQO_DCHECK(kind_ == OpKind::kScan);
  return table_;
}

const std::string& PlanNode::alias() const {
  GEQO_DCHECK(kind_ == OpKind::kScan);
  return alias_;
}

const Comparison& PlanNode::predicate() const {
  GEQO_DCHECK(kind_ == OpKind::kSelect || kind_ == OpKind::kJoin);
  return predicate_;
}

JoinType PlanNode::join_type() const {
  GEQO_DCHECK(kind_ == OpKind::kJoin);
  return join_type_;
}

const std::vector<OutputColumn>& PlanNode::outputs() const {
  GEQO_DCHECK(kind_ == OpKind::kProject);
  return outputs_;
}

const std::vector<OutputColumn>& PlanNode::group_by() const {
  GEQO_DCHECK(kind_ == OpKind::kAggregate);
  return outputs_;
}

const std::vector<AggregateExpr>& PlanNode::aggregates() const {
  GEQO_DCHECK(kind_ == OpKind::kAggregate);
  return aggregates_;
}

size_t PlanNode::NumOps() const {
  size_t count = 1;
  for (const PlanPtr& child : children_) count += child->NumOps();
  return count;
}

size_t PlanNode::Height() const {
  size_t height = 0;
  for (const PlanPtr& child : children_) height = std::max(height, child->Height());
  return height + 1;
}

namespace {

void CollectScans(const PlanNode& node,
                  std::vector<std::pair<std::string, std::string>>* out) {
  if (node.kind() == OpKind::kScan) {
    out->emplace_back(node.table(), node.alias());
    return;
  }
  for (const PlanPtr& child : node.children()) CollectScans(*child, out);
}

}  // namespace

std::vector<std::string> PlanNode::ScanAliases() const {
  std::vector<std::pair<std::string, std::string>> bindings;
  CollectScans(*this, &bindings);
  std::vector<std::string> out;
  out.reserve(bindings.size());
  for (auto& [table, alias] : bindings) out.push_back(std::move(alias));
  return out;
}

std::vector<std::pair<std::string, std::string>> PlanNode::ScanBindings() const {
  std::vector<std::pair<std::string, std::string>> bindings;
  CollectScans(*this, &bindings);
  return bindings;
}

Result<std::vector<OutputColumn>> PlanNode::OutputColumns(
    const Catalog& catalog) const {
  if (kind_ == OpKind::kProject) return outputs_;
  if (kind_ == OpKind::kAggregate) {
    std::vector<OutputColumn> out = outputs_;  // group-by keys
    for (const AggregateExpr& aggregate : aggregates_) {
      // Expose the aggregate under its name; the expression records the
      // argument's column dependencies (COUNT(*) depends on nothing).
      out.push_back(OutputColumn{
          aggregate.name, aggregate.argument != nullptr
                              ? aggregate.argument
                              : Expr::IntLiteral(1)});
    }
    return out;
  }
  if (kind_ == OpKind::kSelect) return children_[0]->OutputColumns(catalog);
  if (kind_ == OpKind::kJoin) {
    GEQO_ASSIGN_OR_RETURN(std::vector<OutputColumn> left,
                          children_[0]->OutputColumns(catalog));
    GEQO_ASSIGN_OR_RETURN(std::vector<OutputColumn> right,
                          children_[1]->OutputColumns(catalog));
    for (auto& column : right) left.push_back(std::move(column));
    return left;
  }
  // Scan: expose every column of the table, qualified by the alias.
  GEQO_ASSIGN_OR_RETURN(const TableDef* table, catalog.GetTable(table_));
  std::vector<OutputColumn> out;
  out.reserve(table->columns().size());
  for (const ColumnDef& column : table->columns()) {
    out.push_back(OutputColumn{alias_ + "." + column.name,
                               Expr::Column(alias_, column.name)});
  }
  return out;
}

Result<size_t> PlanNode::NumOutputColumns(const Catalog& catalog) const {
  if (kind_ == OpKind::kProject) return outputs_.size();
  GEQO_ASSIGN_OR_RETURN(std::vector<OutputColumn> columns,
                        OutputColumns(catalog));
  return columns.size();
}

bool PlanNode::Equals(const PlanNode& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case OpKind::kScan:
      return table_ == other.table_ && alias_ == other.alias_;
    case OpKind::kSelect:
      if (!predicate_.Equals(other.predicate_)) return false;
      break;
    case OpKind::kJoin:
      if (join_type_ != other.join_type_ ||
          !predicate_.Equals(other.predicate_)) {
        return false;
      }
      break;
    case OpKind::kProject: {
      if (outputs_.size() != other.outputs_.size()) return false;
      for (size_t i = 0; i < outputs_.size(); ++i) {
        if (outputs_[i].name != other.outputs_[i].name ||
            !outputs_[i].expr->Equals(*other.outputs_[i].expr)) {
          return false;
        }
      }
      break;
    }
    case OpKind::kAggregate: {
      if (outputs_.size() != other.outputs_.size() ||
          aggregates_.size() != other.aggregates_.size()) {
        return false;
      }
      for (size_t i = 0; i < outputs_.size(); ++i) {
        if (!outputs_[i].expr->Equals(*other.outputs_[i].expr)) return false;
      }
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (!aggregates_[i].Equals(other.aggregates_[i])) return false;
      }
      break;
    }
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

uint64_t PlanNode::Hash() const {
  uint64_t hash = HashCombine(0x91a571c5, static_cast<uint64_t>(kind_));
  switch (kind_) {
    case OpKind::kScan:
      hash = HashCombine(hash, HashString(table_));
      hash = HashCombine(hash, HashString(alias_));
      break;
    case OpKind::kSelect:
      hash = HashCombine(hash, predicate_.Hash());
      break;
    case OpKind::kJoin:
      hash = HashCombine(hash, static_cast<uint64_t>(join_type_));
      hash = HashCombine(hash, predicate_.Hash());
      break;
    case OpKind::kProject:
      for (const OutputColumn& output : outputs_) {
        hash = HashCombine(hash, HashString(output.name));
        hash = HashCombine(hash, output.expr->Hash());
      }
      break;
    case OpKind::kAggregate:
      for (const OutputColumn& key : outputs_) {
        hash = HashCombine(hash, key.expr->Hash());
      }
      for (const AggregateExpr& aggregate : aggregates_) {
        hash = HashCombine(hash, aggregate.Hash());
      }
      break;
  }
  for (const PlanPtr& child : children_) hash = HashCombine(hash, child->Hash());
  return hash;
}

void PlanNode::AppendString(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  switch (kind_) {
    case OpKind::kScan:
      *out += "Scan(" + table_;
      if (alias_ != table_) *out += " AS " + alias_;
      *out += ")";
      break;
    case OpKind::kSelect:
      *out += "Select(" + predicate_.ToString() + ")";
      break;
    case OpKind::kJoin:
      *out += "Join[" + std::string(JoinTypeToString(join_type_)) + "](" +
              predicate_.ToString() + ")";
      break;
    case OpKind::kProject: {
      *out += "Project(";
      for (size_t i = 0; i < outputs_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += outputs_[i].expr->ToString() + " AS " + outputs_[i].name;
      }
      *out += ")";
      break;
    }
    case OpKind::kAggregate: {
      *out += "Aggregate(keys: ";
      for (size_t i = 0; i < outputs_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += outputs_[i].expr->ToString();
      }
      *out += "; aggs: ";
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += aggregates_[i].ToString() + " AS " + aggregates_[i].name;
      }
      *out += ")";
      break;
    }
  }
  *out += "\n";
  for (const PlanPtr& child : children_) {
    child->AppendString(out, indent + 1);
  }
}

std::string PlanNode::ToString() const {
  std::string out;
  AppendString(&out, 0);
  return out;
}

PlanPtr PlanNode::RenameAliases(
    const std::vector<std::pair<std::string, std::string>>& rename) const {
  switch (kind_) {
    case OpKind::kScan: {
      for (const auto& [from, to] : rename) {
        if (alias_ == from) return PlanNode::Scan(table_, to);
      }
      return PlanNode::Scan(table_, alias_);
    }
    case OpKind::kSelect:
      return PlanNode::Select(predicate_.RenameAliases(rename),
                              children_[0]->RenameAliases(rename));
    case OpKind::kJoin:
      return PlanNode::Join(join_type_, predicate_.RenameAliases(rename),
                            children_[0]->RenameAliases(rename),
                            children_[1]->RenameAliases(rename));
    case OpKind::kProject: {
      std::vector<OutputColumn> outputs;
      outputs.reserve(outputs_.size());
      for (const OutputColumn& output : outputs_) {
        outputs.push_back(
            OutputColumn{output.name, output.expr->RenameAliases(rename)});
      }
      return PlanNode::Project(std::move(outputs),
                               children_[0]->RenameAliases(rename));
    }
    case OpKind::kAggregate: {
      std::vector<OutputColumn> keys;
      keys.reserve(outputs_.size());
      for (const OutputColumn& key : outputs_) {
        keys.push_back(OutputColumn{key.name, key.expr->RenameAliases(rename)});
      }
      std::vector<AggregateExpr> aggregates;
      aggregates.reserve(aggregates_.size());
      for (const AggregateExpr& aggregate : aggregates_) {
        aggregates.push_back(AggregateExpr{
            aggregate.fn,
            aggregate.argument == nullptr
                ? nullptr
                : aggregate.argument->RenameAliases(rename),
            aggregate.name});
      }
      return PlanNode::Aggregate(std::move(keys), std::move(aggregates),
                                 children_[0]->RenameAliases(rename));
    }
  }
  GEQO_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace geqo
