#include "ann/hnsw.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "common/binary_io.h"
#include "common/format_magic.h"
#include "obs/metrics.h"
#include "tensor/kernels/kernel_table.h"

namespace geqo::ann {
namespace {

constexpr uint64_t kHnswMagic = io::kHnswMagic;        // "GEQOHNSW"
constexpr uint64_t kHnswEndMagic = io::kHnswEndMagic;  // "HNSWEND!"
constexpr uint64_t kHnswSq8Magic = io::kHnswSq8Magic;  // "HNSWSQ8!"
constexpr uint64_t kHnswVersion = io::kHnswVersion;

bool ResolveQuant(QuantOverride mode) {
  switch (mode) {
    case QuantOverride::kOff:
      return false;
    case QuantOverride::kOn:
      return true;
    case QuantOverride::kAuto:
      return kernels::QuantEnabled();
  }
  return false;
}

}  // namespace

HnswIndex::HnswIndex(size_t dim, HnswOptions options)
    : dim_(dim),
      padded_dim_(AlignedStride(dim, sizeof(float))),
      code_stride_(AlignedStride(dim, sizeof(uint8_t))),
      options_(options),
      level_multiplier_(1.0 /
                        std::log(static_cast<double>(options.max_connections))),
      rng_(options.seed),
      quant_enabled_(ResolveQuant(options.quant)) {
  GEQO_CHECK(dim_ > 0);
  GEQO_CHECK(options_.max_connections >= 2);
  if (quant_enabled_) {
    range_min_.assign(dim_, 0.0f);
    range_max_.assign(dim_, 0.0f);
  }
}

HnswIndex::SearchContext HnswIndex::MakeContext(const float* query) const {
  SearchContext ctx;
  ctx.query = query;
  ctx.quantized = quant_enabled_ && calibrated_;
  if (ctx.quantized) {
    ctx.shifted.resize(dim_);
    std::copy(query, query + dim_, ctx.shifted.data());
    kernels::Active().sub(ctx.shifted.data(), range_min_.data(), dim_);
  }
  return ctx;
}

float HnswIndex::DistanceSq(const SearchContext& ctx, uint32_t id) const {
  if (obs::MetricsEnabled()) {
    pending_distances_.fetch_add(1, std::memory_order_relaxed);
  }
  if (ctx.quantized) {
    return kernels::Active().sq8_distance(ctx.shifted.data(), scale_.data(),
                                          codes_.data() + id * code_stride_,
                                          dim_);
  }
  return ops::SquaredDistance(ctx.query, vector(id), dim_);
}

float HnswIndex::StoredDistanceSq(uint32_t a, uint32_t b) const {
  if (obs::MetricsEnabled()) {
    pending_distances_.fetch_add(1, std::memory_order_relaxed);
  }
  return ops::SquaredDistance(vector(a), vector(b), dim_);
}

void HnswIndex::FoldMetrics() const {
  if (!obs::MetricsEnabled()) return;
  const uint64_t distances = pending_distances_.exchange(0);
  const uint64_t hops = pending_hops_.exchange(0);
  auto& registry = obs::MetricsRegistry::Global();
  if (distances > 0) {
    registry.GetCounter("hnsw.distance_computations").Add(distances);
  }
  if (hops > 0) registry.GetCounter("hnsw.hops").Add(hops);
}

int HnswIndex::RandomLevel() {
  const double u = std::max(rng_.NextDouble(), 1e-12);
  return static_cast<int>(-std::log(u) * level_multiplier_);
}

void HnswIndex::EncodeVector(uint32_t id) {
  const float* v = vector(id);
  uint8_t* codes = codes_.data() + static_cast<size_t>(id) * code_stride_;
  for (size_t i = 0; i < dim_; ++i) {
    if (scale_[i] == 0.0f) {
      codes[i] = 0;
      continue;
    }
    const long q = std::lrint((v[i] - range_min_[i]) / scale_[i]);
    codes[i] = static_cast<uint8_t>(std::clamp(q, 0L, 255L));
  }
  std::fill(codes + dim_, codes + code_stride_, static_cast<uint8_t>(0));
}

void HnswIndex::Calibrate() {
  scale_.resize(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    scale_[i] = (range_max_[i] - range_min_[i]) / 255.0f;
  }
  calibrated_ = true;
  codes_.assign(nodes_.size() * code_stride_, 0);
  for (uint32_t id = 0; id < nodes_.size(); ++id) EncodeVector(id);
}

size_t HnswIndex::Add(const std::vector<float>& vector) {
  GEQO_CHECK(vector.size() == dim_);
  return Add(vector.data());
}

size_t HnswIndex::Add(const float* vector) {
  const auto id = static_cast<uint32_t>(nodes_.size());
  vectors_.resize(vectors_.size() + padded_dim_, 0.0f);
  float* stored = vectors_.data() + static_cast<size_t>(id) * padded_dim_;
  std::copy(vector, vector + dim_, stored);

  if (quant_enabled_) {
    if (!calibrated_) {
      // Running per-dimension ranges over the calibration sample.
      for (size_t i = 0; i < dim_; ++i) {
        if (id == 0) {
          range_min_[i] = vector[i];
          range_max_[i] = vector[i];
        } else {
          range_min_[i] = std::min(range_min_[i], vector[i]);
          range_max_[i] = std::max(range_max_[i], vector[i]);
        }
      }
    } else {
      codes_.resize(codes_.size() + code_stride_, 0);
      EncodeVector(id);  // post-freeze inserts clamp to the frozen ranges
    }
  }

  const int level = RandomLevel();
  Node node;
  node.level = level;
  node.neighbors.resize(static_cast<size_t>(level) + 1);
  nodes_.push_back(std::move(node));

  if (quant_enabled_ && !calibrated_ &&
      nodes_.size() >= std::max<size_t>(options_.sq8_calibration, 1)) {
    Calibrate();
  }

  if (id == 0) {
    max_level_ = level;
    entry_point_ = 0;
    return id;
  }

  SearchContext ctx = MakeContext(stored);
  uint32_t entry = entry_point_;
  // Greedy descent through layers above the new node's level.
  for (int layer = max_level_; layer > level; --layer) {
    entry = GreedySearch(ctx, entry, layer);
  }
  // Insert into each layer from min(level, max_level_) down to 0.
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    const std::vector<Neighbor> candidates =
        SearchLayer(ctx, entry, options_.ef_construction, layer);
    const size_t max_links = layer == 0 ? options_.max_connections * 2
                                        : options_.max_connections;
    Connect(id, candidates, layer, max_links);
    if (!candidates.empty()) entry = static_cast<uint32_t>(candidates[0].id);
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = id;
  }
  FoldMetrics();
  return id;
}

uint32_t HnswIndex::GreedySearch(const SearchContext& ctx, uint32_t entry,
                                 int layer) const {
  uint32_t current = entry;
  float current_distance = DistanceSq(ctx, current);
  bool improved = true;
  while (improved) {
    improved = false;
    if (obs::MetricsEnabled()) {
      pending_hops_.fetch_add(1, std::memory_order_relaxed);
    }
    for (const uint32_t neighbor :
         nodes_[current].neighbors[static_cast<size_t>(layer)]) {
      const float d = DistanceSq(ctx, neighbor);
      if (d < current_distance) {
        current = neighbor;
        current_distance = d;
        improved = true;
      }
    }
  }
  return current;
}

std::vector<Neighbor> HnswIndex::SearchLayer(SearchContext& ctx,
                                             uint32_t entry, size_t ef,
                                             int layer) const {
  // Classic beam search over squared distances: `candidates` is a min-heap
  // of frontier nodes, `best` a max-heap of the ef closest results so far.
  // Both heaps and the visited mask live in the per-search scratch (their
  // capacity survives across layers and the mask is a flat byte array), so
  // the hot probe path performs no per-layer hash or heap allocations. The
  // heap algorithms match what std::priority_queue runs, so the beam —
  // including tie resolution among equal distances — is unchanged.
  const auto further = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;  // max-heap by distance
  };
  const auto closer = [](const Neighbor& a, const Neighbor& b) {
    return a.distance > b.distance;  // min-heap by distance
  };
  std::vector<Neighbor>& best = ctx.best_heap;
  std::vector<Neighbor>& candidates = ctx.candidate_heap;
  std::vector<uint8_t>& visited = ctx.visited;
  best.clear();
  candidates.clear();
  visited.assign(nodes_.size(), 0);

  const float entry_distance = DistanceSq(ctx, entry);
  best.push_back(Neighbor{entry, entry_distance});
  candidates.push_back(Neighbor{entry, entry_distance});
  visited[entry] = 1;

  while (!candidates.empty()) {
    const Neighbor current = candidates.front();
    std::pop_heap(candidates.begin(), candidates.end(), closer);
    candidates.pop_back();
    if (best.size() >= ef && current.distance > best.front().distance) break;
    if (obs::MetricsEnabled()) {
      pending_hops_.fetch_add(1, std::memory_order_relaxed);
    }
    for (const uint32_t neighbor :
         nodes_[current.id].neighbors[static_cast<size_t>(layer)]) {
      if (visited[neighbor] != 0) continue;
      visited[neighbor] = 1;
      const float d = DistanceSq(ctx, neighbor);
      if (best.size() < ef || d < best.front().distance) {
        best.push_back(Neighbor{neighbor, d});
        std::push_heap(best.begin(), best.end(), further);
        candidates.push_back(Neighbor{neighbor, d});
        std::push_heap(candidates.begin(), candidates.end(), closer);
        if (best.size() > ef) {
          std::pop_heap(best.begin(), best.end(), further);
          best.pop_back();
        }
      }
    }
  }

  // Closest first; ties broken by id (heap order among equal distances
  // depends on insertion interleaving, so a final sort makes it stable).
  std::vector<Neighbor> out(best.begin(), best.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Neighbor> HnswIndex::FinishBeam(const SearchContext& ctx,
                                            std::vector<Neighbor> beam) const {
  // The beam carries squared distances (approximate ones under SQ8). Exact
  // rerank: recompute f32 squared distances for the quantized case, then
  // convert to true distance and restore the (distance, id) order — so
  // reported distances are always exact and quantization can only have
  // affected which candidates made the beam, not how they are reported.
  for (Neighbor& neighbor : beam) {
    const float exact_sq =
        ctx.quantized
            ? ops::SquaredDistance(ctx.query,
                                   vector(static_cast<uint32_t>(neighbor.id)),
                                   dim_)
            : neighbor.distance;
    neighbor.distance = std::sqrt(exact_sq);
  }
  std::sort(beam.begin(), beam.end());
  return beam;
}

void HnswIndex::Connect(uint32_t id, const std::vector<Neighbor>& candidates,
                        int layer, size_t max_links) {
  auto& my_links = nodes_[id].neighbors[static_cast<size_t>(layer)];
  for (const Neighbor& candidate : candidates) {
    if (my_links.size() >= max_links) break;
    if (candidate.id == id) continue;
    my_links.push_back(static_cast<uint32_t>(candidate.id));
    // Bidirectional link; prune the neighbor's list if it overflows by
    // keeping its max_links closest connections.
    auto& back_links =
        nodes_[candidate.id].neighbors[static_cast<size_t>(layer)];
    back_links.push_back(id);
    if (back_links.size() > max_links) {
      const auto anchor = static_cast<uint32_t>(candidate.id);
      std::sort(back_links.begin(), back_links.end(),
                [&](uint32_t a, uint32_t b) {
                  const float da = StoredDistanceSq(anchor, a);
                  const float db = StoredDistanceSq(anchor, b);
                  if (da != db) return da < db;
                  return a < b;  // deterministic prune among equidistant links
                });
      back_links.resize(max_links);
    }
  }
}

std::vector<Neighbor> HnswIndex::SearchKnn(const float* query, size_t k,
                                           size_t ef) const {
  if (nodes_.empty()) return {};
  if (ef == 0) ef = std::max(options_.ef_search, k);
  SearchContext ctx = MakeContext(query);
  uint32_t entry = entry_point_;
  for (int layer = max_level_; layer > 0; --layer) {
    entry = GreedySearch(ctx, entry, layer);
  }
  std::vector<Neighbor> result =
      FinishBeam(ctx, SearchLayer(ctx, entry, ef, /*layer=*/0));
  if (result.size() > k) result.resize(k);
  FoldMetrics();
  return result;
}

std::vector<Neighbor> HnswIndex::SearchRadius(const float* query, float radius,
                                              size_t ef) const {
  if (nodes_.empty()) return {};
  if (ef == 0) ef = options_.ef_search;
  SearchContext ctx = MakeContext(query);
  uint32_t entry = entry_point_;
  for (int layer = max_level_; layer > 0; --layer) {
    entry = GreedySearch(ctx, entry, layer);
  }
  const std::vector<Neighbor> beam =
      FinishBeam(ctx, SearchLayer(ctx, entry, ef, /*layer=*/0));
  std::vector<Neighbor> out;
  for (const Neighbor& neighbor : beam) {
    if (neighbor.distance <= radius) out.push_back(neighbor);
  }
  FoldMetrics();
  return out;
}

Status HnswIndex::Serialize(std::ostream& os) const {
  io::BinaryWriter writer(os, "HNSW index");
  writer.U64(kHnswMagic);
  writer.U64(kHnswVersion);
  writer.U64(dim_);
  writer.U64(options_.max_connections);
  writer.U64(options_.ef_construction);
  writer.U64(options_.ef_search);
  writer.U64(options_.seed);
  // Quantization block: the *resolved* mode is stored (not the kAuto
  // request), so a snapshot reproduces its serving behavior regardless of
  // the GEQO_QUANT environment at load time.
  writer.U64(quant_enabled_ ? 1 : 0);
  writer.U64(options_.sq8_calibration);
  writer.U64(calibrated_ ? 1 : 0);
  if (quant_enabled_ && calibrated_) {
    writer.U64(kHnswSq8Magic);
    for (size_t i = 0; i < dim_; ++i) {
      writer.F32(range_min_[i]);
      writer.F32(range_max_[i]);
    }
  }
  // The rng's stream position makes post-load Add assign the same levels the
  // uninterrupted index would have.
  for (const uint64_t word : rng_.SaveState()) writer.U64(word);
  writer.I64(max_level_);
  writer.U64(entry_point_);
  writer.U64(nodes_.size());
  for (size_t id = 0; id < nodes_.size(); ++id) {
    writer.Bytes(vector(id), dim_ * sizeof(float));
  }
  for (const Node& node : nodes_) {
    writer.I64(node.level);
    for (const auto& links : node.neighbors) {
      writer.U64(links.size());
      writer.Bytes(links.data(), links.size() * sizeof(uint32_t));
    }
  }
  writer.U64(kHnswEndMagic);
  return writer.status();
}

Result<std::unique_ptr<HnswIndex>> HnswIndex::Deserialize(std::istream& is) {
  io::BinaryReader reader(is, "HNSW index");
  const uint64_t magic = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (magic != kHnswMagic) {
    return Status::InvalidArgument("HNSW index: bad magic (not an index blob)");
  }
  const uint64_t version = reader.U64();
  if (reader.ok() && version != kHnswVersion) {
    return Status::InvalidArgument(
        "HNSW index: unsupported version " + std::to_string(version) +
        " (expected " + std::to_string(kHnswVersion) + ")");
  }
  const uint64_t dim = reader.U64();
  HnswOptions options;
  options.max_connections = reader.U64();
  options.ef_construction = reader.U64();
  options.ef_search = reader.U64();
  options.seed = reader.U64();
  const uint64_t quant_enabled = reader.U64();
  options.sq8_calibration = reader.U64();
  const uint64_t calibrated = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (quant_enabled > 1 || calibrated > 1) {
    return Status::InvalidArgument(
        "HNSW index: invalid quantization flags (corrupt quant block)");
  }
  options.quant = quant_enabled == 1 ? QuantOverride::kOn : QuantOverride::kOff;
  std::vector<float> range_min;
  std::vector<float> range_max;
  if (quant_enabled == 1 && calibrated == 1) {
    if (reader.U64() != kHnswSq8Magic) {
      return Status::InvalidArgument(
          "HNSW index: missing SQ8 calibration magic (corrupt quant block)");
    }
    range_min.resize(dim);
    range_max.resize(dim);
    for (uint64_t i = 0; i < dim; ++i) {
      range_min[i] = reader.F32();
      range_max[i] = reader.F32();
      GEQO_RETURN_NOT_OK(reader.status());
      if (!std::isfinite(range_min[i]) || !std::isfinite(range_max[i]) ||
          range_min[i] > range_max[i]) {
        return Status::InvalidArgument(
            "HNSW index: invalid SQ8 range for dimension " +
            std::to_string(i) + " (corrupt calibration table)");
      }
    }
  }
  std::array<uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = reader.U64();
  const int64_t max_level = reader.I64();
  const uint64_t entry_point = reader.U64();
  const uint64_t count = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (dim == 0 || options.max_connections < 2) {
    return Status::InvalidArgument("HNSW index: invalid header parameters");
  }

  auto index = std::make_unique<HnswIndex>(dim, options);
  index->rng_.RestoreState(rng_state);
  index->max_level_ = static_cast<int>(max_level);
  index->entry_point_ = static_cast<uint32_t>(entry_point);
  index->vectors_.assign(count * index->padded_dim_, 0.0f);
  for (uint64_t id = 0; id < count; ++id) {
    reader.Bytes(index->vectors_.data() + id * index->padded_dim_,
                 dim * sizeof(float));
    GEQO_RETURN_NOT_OK(reader.status());
  }
  index->nodes_.resize(count);
  for (Node& node : index->nodes_) {
    node.level = static_cast<int>(reader.I64());
    GEQO_RETURN_NOT_OK(reader.status());
    if (node.level < 0 || node.level > index->max_level_) {
      return Status::InvalidArgument("HNSW index: node level out of range");
    }
    node.neighbors.resize(static_cast<size_t>(node.level) + 1);
    for (auto& links : node.neighbors) {
      const uint64_t n_links = reader.U64();
      GEQO_RETURN_NOT_OK(reader.status());
      if (n_links > count) {
        return Status::InvalidArgument("HNSW index: neighbor count exceeds "
                                       "element count (corrupt graph)");
      }
      links.resize(n_links);
      reader.Bytes(links.data(), n_links * sizeof(uint32_t));
      GEQO_RETURN_NOT_OK(reader.status());
      for (const uint32_t link : links) {
        if (link >= count) {
          return Status::InvalidArgument(
              "HNSW index: neighbor id out of range (corrupt graph)");
        }
      }
    }
  }
  if (reader.U64() != kHnswEndMagic) {
    reader.Fail("missing end marker");
  }
  GEQO_RETURN_NOT_OK(reader.status());
  if (count == 0) {
    if (index->max_level_ != -1) {
      return Status::InvalidArgument("HNSW index: empty index with entry");
    }
  } else {
    if (entry_point >= count) {
      return Status::InvalidArgument("HNSW index: entry point out of range");
    }
    if (index->nodes_[entry_point].level != index->max_level_) {
      return Status::InvalidArgument(
          "HNSW index: entry point level does not match max level");
    }
  }
  if (quant_enabled == 1) {
    if (calibrated == 1) {
      index->range_min_ = std::move(range_min);
      index->range_max_ = std::move(range_max);
      index->Calibrate();  // derives scales, re-encodes codes from f32
    } else if (count > 0) {
      // Resume an in-progress calibration: replay the ranges the stored
      // vectors would have produced.
      for (uint64_t id = 0; id < count; ++id) {
        const float* v = index->vector(id);
        for (size_t i = 0; i < dim; ++i) {
          if (id == 0) {
            index->range_min_[i] = v[i];
            index->range_max_[i] = v[i];
          } else {
            index->range_min_[i] = std::min(index->range_min_[i], v[i]);
            index->range_max_[i] = std::max(index->range_max_[i], v[i]);
          }
        }
      }
    }
  }
  return index;
}

std::vector<Neighbor> HnswIndex::ExactRadius(const float* query,
                                             float radius) const {
  std::vector<Neighbor> out;
  for (size_t id = 0; id < nodes_.size(); ++id) {
    if (obs::MetricsEnabled()) {
      pending_distances_.fetch_add(1, std::memory_order_relaxed);
    }
    const float d = std::sqrt(
        ops::SquaredDistance(query, vector(id), dim_));
    if (d <= radius) out.push_back(Neighbor{id, d});
  }
  std::sort(out.begin(), out.end());
  FoldMetrics();
  return out;
}

}  // namespace geqo::ann
