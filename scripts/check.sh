#!/usr/bin/env bash
# Full correctness gate: plain build + ctest, then a ThreadSanitizer build
# + ctest to catch data races in the parallel pipeline (thread pool, shared
# inference, per-worker verifiers).
#
# Usage: scripts/check.sh [ctest-args...]
#   GEQO_CHECK_JOBS=N       parallel build/test jobs (default: nproc)
#   GEQO_CHECK_SKIP_TSAN=1  run only the plain build + tests
#   GEQO_CHECK_TSAN_FILTER  ctest -R filter for the TSan pass (default: all;
#                           TSan runs ~5-20x slower, so narrowing to e.g.
#                           'thread_pool|pipeline|tensor' keeps CI fast)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${GEQO_CHECK_JOBS:-$(nproc)}"

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
echo "== plain ctest =="
ctest --test-dir build --output-on-failure -j "$jobs" "$@"

echo "== traced smoke run =="
# Exercise the observability layer end to end: a spans-level run of the demo
# must produce artifacts that the strict JSON linter accepts.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
GEQO_TRACE=spans \
  GEQO_TRACE_FILE="$smoke_dir/geqo_trace.json" \
  GEQO_METRICS_FILE="$smoke_dir/geqo_metrics.json" \
  ./build/examples/observability_demo
./build/src/obs/geqo_json_lint "$smoke_dir/geqo_trace.json" \
  "$smoke_dir/geqo_metrics.json"

echo "== serving snapshot round-trip smoke =="
# The serving catalog's core guarantee: a stream interrupted by
# save+restart replays with bit-identical probe results.
check_serving_roundtrip() {
  local demo="$1" snap_base="$2"
  "$demo" > "$smoke_dir/serve_full.txt"
  "$demo" --phase1 "$snap_base" > "$smoke_dir/serve_p1.txt"
  "$demo" --phase2 "$snap_base" > "$smoke_dir/serve_p2.txt"
  diff <(grep '^PROBE' "$smoke_dir/serve_full.txt") \
       <(cat <(grep '^PROBE' "$smoke_dir/serve_p1.txt") \
             <(grep '^PROBE' "$smoke_dir/serve_p2.txt"))
}
check_serving_roundtrip ./build/examples/serving_demo "$smoke_dir/serve_snap"

if [[ "${GEQO_CHECK_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== TSan pass skipped (GEQO_CHECK_SKIP_TSAN=1) =="
  exit 0
fi

echo "== TSan build =="
cmake -B build-tsan -S . -DGEQO_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"
echo "== TSan ctest =="
# Threads > cores still interleaves enough for TSan to see races; force a
# multi-threaded pool even on small CI machines.
tsan_filter=(${GEQO_CHECK_TSAN_FILTER:+-R "$GEQO_CHECK_TSAN_FILTER"})
GEQO_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
  "${tsan_filter[@]}" "$@"

echo "== TSan traced smoke run =="
# Tracing itself must be race-free under the 4-thread pool: spans close on
# worker threads while metrics fold from every stage.
GEQO_THREADS=4 GEQO_TRACE=spans \
  GEQO_TRACE_FILE="$smoke_dir/geqo_trace_tsan.json" \
  GEQO_METRICS_FILE="$smoke_dir/geqo_metrics_tsan.json" \
  ./build-tsan/examples/observability_demo
./build/src/obs/geqo_json_lint "$smoke_dir/geqo_trace_tsan.json" \
  "$smoke_dir/geqo_metrics_tsan.json"

echo "== TSan serving snapshot round-trip smoke =="
GEQO_THREADS=4 check_serving_roundtrip ./build-tsan/examples/serving_demo \
  "$smoke_dir/serve_snap_tsan"

echo "== all checks passed =="
