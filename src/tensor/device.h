#pragma once

#include <string>

#include "tensor/tensor.h"

/// \file device.h
/// Device cost model used to reproduce Figure 12 (CPU vs GPU filter
/// runtimes) without GPU hardware.
///
/// Substitution note (see DESIGN.md §1): the paper executed the VMF/EMF on
/// an Nvidia Tesla T4 and found a crossover — the GPU loses at small input
/// sizes (transfer/dispatch overhead dominates) and wins at large ones
/// (compute amortizes). We reproduce the *mechanism*: kernels are
/// instrumented (KernelStats counts dispatches, flops, and moved bytes), and
/// the accelerator's modeled time is
///
///   dispatches x dispatch_overhead + transferred_bytes / pcie_bandwidth
///     + measured_cpu_compute_time / compute_speedup.
///
/// plus a one-time session overhead (CUDA context creation, library/kernel
/// warm-up) charged per filter invocation — the fixed cost that makes real
/// GPUs lose at small input sizes.
///
/// The constants below are order-of-magnitude figures for a T4-class card
/// attached over PCIe 3.0 x16; the crossover shape is insensitive to their
/// exact values.

namespace geqo {

/// \brief An analytical device model applied to measured CPU executions.
struct DeviceModel {
  std::string name;
  double dispatch_overhead_s = 0.0;   ///< per-kernel launch latency
  double bytes_per_second = 0.0;      ///< host<->device bandwidth (0 = none)
  double compute_speedup = 1.0;       ///< device FLOP rate / CPU FLOP rate
  double session_overhead_s = 0.0;    ///< one-time context/warm-up cost

  /// The CPU itself: measured time is reported unchanged.
  static DeviceModel Cpu() { return DeviceModel{"cpu", 0.0, 0.0, 1.0, 0.0}; }

  /// A T4-class accelerator: ~10us launch latency, ~12 GB/s effective PCIe
  /// bandwidth, ~40x the single-core FP32 throughput of the host, and
  /// ~1.5 s of context creation + warm-up per job.
  static DeviceModel AcceleratorT4Like() {
    return DeviceModel{"gpu-sim", 10e-6, 12e9, 40.0, 1.5};
  }

  /// \brief Models the wall time of an execution that took
  /// \p measured_cpu_seconds on the CPU, issued \p stats kernels, and moved
  /// \p transferred_bytes across the host/device boundary.
  double ModelSeconds(double measured_cpu_seconds, const KernelStats& stats,
                      double transferred_bytes) const {
    if (compute_speedup == 1.0 && dispatch_overhead_s == 0.0) {
      return measured_cpu_seconds;
    }
    double seconds = session_overhead_s + measured_cpu_seconds / compute_speedup;
    seconds += static_cast<double>(stats.dispatches) * dispatch_overhead_s;
    if (bytes_per_second > 0.0) seconds += transferred_bytes / bytes_per_second;
    return seconds;
  }
};

}  // namespace geqo
