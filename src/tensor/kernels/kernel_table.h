#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

/// \file kernel_table.h
/// Runtime ISA dispatch for the tensor hot loops.
///
/// Every arithmetic inner loop in the cascade — MatMul for EMF inference,
/// SquaredDistance for HNSW search, and the elementwise ops — funnels through
/// one function-pointer table selected once at startup. Two implementations
/// exist: a portable scalar table whose arithmetic is bit-identical to the
/// historical loops in tensor.cc, and an AVX2+FMA table compiled in its own
/// translation unit (the only TU built with -mavx2 -mfma, keeping the rest of
/// the binary portable). Selection order:
///
///   1. `GEQO_ISA=scalar|avx2|auto` env override, read once at first use.
///      `avx2` on a host without AVX2 support logs a warning and falls back.
///   2. `auto` (default): CPUID probe — AVX2+FMA present picks the AVX2 table.
///
/// Benches and tests can flip tables after startup with SetIsa(); production
/// code never does. A separate process-wide quantization switch (`GEQO_QUANT`,
/// SetQuantMode) gates the int8 paths layered on top of the f32 kernels; the
/// two knobs are independent — quantized distances work (slower) on the
/// scalar table too, which is what makes parity testing possible.

namespace geqo::kernels {

/// Instruction sets a kernel table can be built for.
enum class Isa : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// One entry point per hot loop. Pointer parameters follow the historical
/// tensor.cc conventions: contiguous f32 rows, no aliasing between source and
/// destination unless the name says "in place" (dst-accumulating ops read and
/// write dst only at the same index, so dst==src is still well-defined).
struct KernelTable {
  /// Strict-order reference semantics are defined by the scalar table; SIMD
  /// tables may reassociate float sums (documented ULP tolerance), but all
  /// integer kernels must be exact across tables.
  const char* name;

  /// sum_i a[i]*b[i]
  float (*dot)(const float* a, const float* b, std::size_t n);
  /// y[i] += a * x[i]
  void (*axpy)(float a, const float* x, float* y, std::size_t n);
  /// sum_i (a[i]-b[i])^2
  float (*squared_distance)(const float* a, const float* b, std::size_t n);
  /// dst[i] += src[i]
  void (*add)(float* dst, const float* src, std::size_t n);
  /// dst[i] -= src[i]
  void (*sub)(float* dst, const float* src, std::size_t n);
  /// dst[i] *= src[i]
  void (*mul)(float* dst, const float* src, std::size_t n);
  /// dst[i] *= s
  void (*scale)(float* dst, float s, std::size_t n);
  /// Asymmetric SQ8 distance (ADC): sum_i (t[i] - scale[i]*codes[i])^2.
  /// The caller pre-subtracts the per-dimension minimum from the query so
  /// t = query - min; the stored side decodes as min + scale*code and the
  /// min offsets cancel. Query side stays f32, so only the stored vector
  /// carries quantization error.
  float (*sq8_distance)(const float* t, const float* scale,
                        const std::uint8_t* codes, std::size_t n);
  /// sum_i a[i]*b[i] in int32 — exact, table-independent (used by the
  /// quantized EMF batch path, which must be bit-identical across ISAs).
  std::int32_t (*dot_i8)(const std::int8_t* a, const std::int8_t* b,
                         std::size_t n);

  // --- f64 executor kernels -------------------------------------------------
  // The vectorized query executor (src/exec) evaluates expressions over dense
  // double columns through these. All are elementwise (no reassociation), so
  // results must be bit-identical across tables — the executor's parity tests
  // compare whole query results against the row-at-a-time oracle under
  // GEQO_ISA=scalar and auto.

  /// dst[i] += src[i]
  void (*add_f64)(double* dst, const double* src, std::size_t n);
  /// dst[i] -= src[i]
  void (*sub_f64)(double* dst, const double* src, std::size_t n);
  /// dst[i] *= src[i]
  void (*mul_f64)(double* dst, const double* src, std::size_t n);
  /// dst[i] /= src[i] — caller must reject zero divisors first.
  void (*div_f64)(double* dst, const double* src, std::size_t n);
  /// dst[i] = v
  void (*fill_f64)(double* dst, double v, std::size_t n);
  /// Writes the indices i in [0,n) with `a[i] <op> b[i]` to out (ascending)
  /// and returns how many passed. op follows plan::CompareOp order:
  /// 0 ==, 1 !=, 2 <, 3 <=, 4 >, 5 >=. Inputs are never NaN (the executor
  /// rejects division by zero before it happens), so ordered SIMD predicates
  /// agree with the scalar comparisons.
  std::size_t (*cmp_select_f64)(int op, const double* a, const double* b,
                                std::uint32_t* out, std::size_t n);
};

/// The table every op dispatches through. First call resolves GEQO_ISA /
/// CPUID; subsequent calls are a single atomic load.
const KernelTable& Active();

/// Currently active ISA / its lower-case name ("scalar", "avx2").
Isa ActiveIsa();
const char* ActiveIsaName();

/// Metrics counter name for the active table, e.g. "kernel.dispatch.avx2".
const char* DispatchCounterName();

/// Portable reference table (always available).
const KernelTable& ScalarTable();

/// AVX2+FMA table, or nullptr when the binary was built without AVX2 support
/// or the host CPU lacks AVX2/FMA. Defined in kernels_avx2.cc.
const KernelTable* Avx2TableOrNull();

/// Forces the active table (benches / parity tests). Returns false and leaves
/// the table unchanged when \p isa is unavailable on this build/host.
bool SetIsa(Isa isa);

/// Parses "scalar" / "avx2" / "auto" (case-sensitive, as documented for
/// GEQO_ISA). Returns false on an unrecognised spec. "auto" resolves to the
/// best ISA the host supports.
bool ResolveIsaSpec(const std::string& spec, Isa* out);

/// Process-wide int8 switch: when on, HNSW indexes default to SQ8 storage and
/// Linear::Infer quantizes large batches. Resolved once from `GEQO_QUANT`
/// (truthy: "1", "on", "true"); SetQuantMode overrides it at runtime.
bool QuantEnabled();
void SetQuantMode(bool on);

/// "sq8" or "f32" — for StageReport tags and bench artifacts.
const char* QuantModeName();

}  // namespace geqo::kernels
