#include <gtest/gtest.h>

#include <memory>

#include "common/thread_pool.h"
#include "filters/emf_filter.h"
#include "ml/metrics.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/canonicalize.h"
#include "pipeline/baselines.h"
#include "pipeline/geqo.h"
#include "pipeline/ssfl.h"
#include "test_util.h"
#include "workload/schemas.h"

namespace geqo {
namespace {

using testing::MustParse;

/// Shared trained-model fixture: builds a small TPC-H-trained EMF once for
/// the whole suite (training is the expensive part).
class PipelineTest : public ::testing::Test {
 protected:
  struct Shared {
    Catalog catalog = MakeTpchCatalog();
    EncodingLayout instance_layout = EncodingLayout::FromCatalog(catalog);
    EncodingLayout agnostic_layout = EncodingLayout::Agnostic(6, 8);
    std::unique_ptr<ml::EmfModel> model;
    ValueRange value_range{0, 100};
    float vmf_radius = 2.0f;
    float emf_threshold = 0.3f;
  };

  static Shared& shared() {
    static Shared* instance = [] {
      auto* s = new Shared();
      ml::EmfModelOptions model_options;
      model_options.input_dim = s->agnostic_layout.node_vector_size();
      model_options.conv1_size = 32;
      model_options.conv2_size = 32;
      model_options.fc1_size = 32;
      model_options.fc2_size = 16;
      model_options.dropout = 0.2f;
      s->model = std::make_unique<ml::EmfModel>(model_options);

      Rng rng(71);
      LabeledDataOptions data_options;
      data_options.num_base_queries = 40;
      data_options.variants_per_query = 3;
      auto pairs = BuildLabeledPairs(s->catalog, data_options, &rng);
      GEQO_CHECK(pairs.ok());
      auto dataset =
          EncodeLabeledPairs(*pairs, s->catalog, s->instance_layout,
                             s->agnostic_layout, s->value_range);
      GEQO_CHECK(dataset.ok());
      ml::TrainOptions train_options;
      train_options.epochs = 10;
      ml::EmfTrainer trainer(s->model.get(), train_options);
      trainer.Train(*dataset);
      // Use the deployed operating points: radius/threshold calibrated for
      // near-perfect recall on the training distribution.
      const auto radius = CalibrateVmfRadius(s->model.get(), *dataset);
      if (radius.ok()) s->vmf_radius = *radius;
      const auto threshold = CalibrateEmfThreshold(s->model.get(), *dataset);
      if (threshold.ok()) s->emf_threshold = *threshold;
      return s;
    }();
    return *instance;
  }

  /// A workload with planted equivalences: `num_bases` random queries, the
  /// first `num_equivalent_bases` of which get one equivalent variant each.
  std::vector<PlanPtr> MakeWorkload(size_t num_bases,
                                    size_t num_equivalent_bases,
                                    uint64_t seed,
                                    std::vector<std::pair<size_t, size_t>>*
                                        planted = nullptr) {
    Shared& s = shared();
    Rng rng(seed);
    QueryGenerator generator(&s.catalog, GeneratorOptions());
    Rewriter rewriter(&s.catalog);
    std::vector<PlanPtr> workload;
    for (size_t i = 0; i < num_bases; ++i) {
      workload.push_back(generator.Generate(&rng));
    }
    for (size_t i = 0; i < num_equivalent_bases; ++i) {
      auto variant = rewriter.RewriteOnce(workload[i], &rng);
      GEQO_CHECK(variant.ok());
      if (planted != nullptr) planted->emplace_back(i, workload.size());
      workload.push_back(*variant);
    }
    return workload;
  }
};

TEST_F(PipelineTest, SchemaFilterGroups) {
  Shared& s = shared();
  const std::vector<PlanPtr> workload = {
      MustParse("SELECT c_custkey FROM customer", s.catalog),
      MustParse("SELECT c_nationkey FROM customer", s.catalog),
      MustParse("SELECT o_orderkey FROM orders", s.catalog),
      MustParse("SELECT c_custkey, c_nationkey FROM customer", s.catalog),
  };
  const auto groups = SchemaFilter(workload, s.catalog);
  ASSERT_TRUE(groups.ok());
  // {customer,1col} x2, {orders,1col}, {customer,2col}.
  EXPECT_EQ(groups->size(), 3u);
  EXPECT_EQ(CountIntraGroupPairs(*groups), 1u);
}

TEST_F(PipelineTest, SchemaFilterPairSemantics) {
  Shared& s = shared();
  const PlanPtr a = MustParse("SELECT c_custkey FROM customer", s.catalog);
  const PlanPtr b = MustParse("SELECT c_nationkey FROM customer", s.catalog);
  const PlanPtr c = MustParse("SELECT o_orderkey FROM orders", s.catalog);
  EXPECT_TRUE(*SchemaFilterPair(a, b, s.catalog));
  EXPECT_FALSE(*SchemaFilterPair(a, c, s.catalog));
}

TEST_F(PipelineTest, EndToEndFindsPlantedEquivalences) {
  Shared& s = shared();
  std::vector<std::pair<size_t, size_t>> planted;
  const std::vector<PlanPtr> workload = MakeWorkload(30, 5, 72, &planted);

  GeqoOptions options;
  options.vmf.radius = s.vmf_radius;
  options.emf.threshold = s.emf_threshold;
  GeqoPipeline pipeline(&s.catalog, s.model.get(), &s.instance_layout,
                        &s.agnostic_layout, options);
  const auto result = pipeline.DetectEquivalences(workload, s.value_range);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Recall over planted pairs: the filters should admit most of them, and
  // everything reported must be verified-correct.
  size_t recovered = 0;
  for (const auto& pair : planted) {
    for (const auto& found : result->equivalences) {
      if (found == pair) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GE(recovered, planted.size() - 1)
      << "recovered only " << recovered << "/" << planted.size();

  // No false positives can survive verification.
  SpesVerifier oracle(&s.catalog);
  for (const auto& [i, j] : result->equivalences) {
    EXPECT_EQ(oracle.CheckEquivalence(workload[i], workload[j]),
              EquivalenceVerdict::kEquivalent);
  }

  // Filter funnel: each stage passes at most what it received, and the
  // stage list always has the five fixed entries in execution order.
  ASSERT_EQ(result->stages.size(), 5u);
  const char* expected_order[] = {"encode", "sf", "vmf", "emf", "verify"};
  for (size_t i = 0; i < result->stages.size(); ++i) {
    EXPECT_EQ(result->stages[i].name, expected_order[i]);
    EXPECT_LE(result->stages[i].pairs_out, result->stages[i].pairs_in);
  }
}

TEST_F(PipelineTest, FiltersShortCircuitReducesVerifierLoad) {
  Shared& s = shared();
  const std::vector<PlanPtr> workload = MakeWorkload(30, 3, 73);

  GeqoOptions all_filters;
  all_filters.vmf.radius = s.vmf_radius;
  all_filters.emf.threshold = s.emf_threshold;
  GeqoPipeline with_filters(&s.catalog, s.model.get(), &s.instance_layout,
                            &s.agnostic_layout, all_filters);
  const auto filtered = with_filters.DetectEquivalences(workload, s.value_range);
  ASSERT_TRUE(filtered.ok());

  GeqoOptions no_filters;
  no_filters.use_sf = false;
  no_filters.use_vmf = false;
  no_filters.use_emf = false;
  GeqoPipeline without_filters(&s.catalog, s.model.get(), &s.instance_layout,
                               &s.agnostic_layout, no_filters);
  const auto unfiltered =
      without_filters.DetectEquivalences(workload, s.value_range);
  ASSERT_TRUE(unfiltered.ok());

  EXPECT_LT(filtered->candidates.size(), unfiltered->candidates.size());
  // Verifying everything is the ground truth; GEqO must not report extras.
  for (const auto& pair : filtered->equivalences) {
    EXPECT_NE(std::find(unfiltered->equivalences.begin(),
                        unfiltered->equivalences.end(), pair),
              unfiltered->equivalences.end());
  }
}

TEST_F(PipelineTest, CheckPairSpecialCase) {
  Shared& s = shared();
  GeqoOptions options;
  options.vmf.radius = s.vmf_radius;
  options.emf.threshold = s.emf_threshold;
  GeqoPipeline pipeline(&s.catalog, s.model.get(), &s.instance_layout,
                        &s.agnostic_layout, options);
  const PlanPtr q1 = MustParse(
      "SELECT c_custkey FROM customer WHERE c_acctbal > 50", s.catalog);
  const PlanPtr q2 = MustParse(
      "SELECT c_custkey FROM customer WHERE 50 < c_acctbal", s.catalog);
  const PlanPtr q3 = MustParse(
      "SELECT c_custkey FROM customer WHERE c_acctbal > 51", s.catalog);
  EXPECT_EQ(*pipeline.CheckPair(q1, q2, s.value_range),
            EquivalenceVerdict::kEquivalent);
  EXPECT_EQ(*pipeline.CheckPair(q1, q3, s.value_range),
            EquivalenceVerdict::kNotEquivalent);
}

TEST_F(PipelineTest, CheckPairSurfacesUnknownVerdicts) {
  Shared& s = shared();
  // Route straight to the verifier so the filters cannot pre-empt the
  // tri-state: a non-linear predicate is outside the DPLL(T) fragment and
  // must surface as kUnknown, not as a refutation.
  GeqoOptions options;
  options.use_sf = false;
  options.use_vmf = false;
  options.use_emf = false;
  GeqoPipeline pipeline(&s.catalog, s.model.get(), &s.instance_layout,
                        &s.agnostic_layout, options);
  const PlanPtr q1 = MustParse(
      "SELECT c_custkey FROM customer WHERE c_acctbal * 2 > 100", s.catalog);
  const PlanPtr q2 = MustParse(
      "SELECT c_custkey FROM customer WHERE c_acctbal > 50", s.catalog);
  EXPECT_EQ(*pipeline.CheckPair(q1, q2, s.value_range),
            EquivalenceVerdict::kUnknown);
}

TEST_F(PipelineTest, SignatureBaselineCatchesSyntacticOnly) {
  Shared& s = shared();
  Rng rng(74);
  QueryGenerator generator(&s.catalog, GeneratorOptions());
  Rewriter rewriter(&s.catalog);
  const PlanPtr base = generator.Generate(&rng);

  // Join commutation (syntactic normalization catches it).
  const auto commuted = rewriter.Apply(RewriteRule::kShuffleAtoms, base, &rng);
  ASSERT_TRUE(commuted.ok());
  EXPECT_EQ(*PlanSignature(base, s.catalog),
            *PlanSignature(*commuted, s.catalog));

  // Implied-predicate insertion (semantic: signatures must differ).
  PlanPtr with_implied = base;
  for (int i = 0; i < 5 && CountPredicates(with_implied) ==
                               CountPredicates(base); ++i) {
    auto r = rewriter.Apply(RewriteRule::kAddImpliedPredicate, with_implied, &rng);
    ASSERT_TRUE(r.ok());
    with_implied = *r;
  }
  if (CountPredicates(with_implied) > CountPredicates(base)) {
    EXPECT_NE(*PlanSignature(base, s.catalog),
              *PlanSignature(with_implied, s.catalog));
  }
}

TEST_F(PipelineTest, OptimizerBaselineStrongerThanSignature) {
  Shared& s = shared();
  // Equality substitution: the optimizer's equivalence classes catch it;
  // signatures do not.
  const PlanPtr q1 = MustParse(
      "SELECT o_orderkey FROM orders, customer WHERE o_custkey = c_custkey "
      "AND o_custkey > 10",
      s.catalog);
  const PlanPtr q2 = MustParse(
      "SELECT o_orderkey FROM orders, customer WHERE o_custkey = c_custkey "
      "AND c_custkey > 10",
      s.catalog);
  EXPECT_EQ(*OptimizerNormalForm(q1, s.catalog),
            *OptimizerNormalForm(q2, s.catalog));
  EXPECT_NE(*PlanSignature(q1, s.catalog), *PlanSignature(q2, s.catalog));
}

TEST_F(PipelineTest, OptimizerBaselineMissesCrossTermImplication) {
  Shared& s = shared();
  // The Figure-1 gap: cross-term implied predicates are beyond rule-based
  // normalization but provable by the verifier.
  const PlanPtr q1 = MustParse(
      "SELECT o_orderkey FROM orders, customer WHERE o_custkey = c_custkey "
      "AND o_totalprice > c_acctbal + 10 AND c_acctbal > 10",
      s.catalog);
  const PlanPtr q2 = MustParse(
      "SELECT o_orderkey FROM orders, customer WHERE o_custkey = c_custkey "
      "AND o_totalprice > c_acctbal + 10 AND c_acctbal > 10 "
      "AND o_totalprice > 20",
      s.catalog);
  EXPECT_NE(*OptimizerNormalForm(q1, s.catalog),
            *OptimizerNormalForm(q2, s.catalog));
  SpesVerifier verifier(&s.catalog);
  EXPECT_EQ(verifier.CheckEquivalence(q1, q2),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(PipelineTest, BaselinePowerOrdering) {
  // Over a rewritten workload: signature ⊆ optimizer ⊆ verifier (by TPR).
  Shared& s = shared();
  std::vector<std::pair<size_t, size_t>> planted;
  const std::vector<PlanPtr> workload = MakeWorkload(20, 10, 75, &planted);

  const auto signature_pairs = SignatureEquivalences(workload, s.catalog);
  const auto optimizer_pairs = OptimizerEquivalences(workload, s.catalog);
  ASSERT_TRUE(signature_pairs.ok() && optimizer_pairs.ok());

  size_t signature_hits = 0;
  size_t optimizer_hits = 0;
  for (const auto& pair : planted) {
    signature_hits += std::find(signature_pairs->begin(), signature_pairs->end(),
                                pair) != signature_pairs->end();
    optimizer_hits += std::find(optimizer_pairs->begin(), optimizer_pairs->end(),
                                pair) != optimizer_pairs->end();
  }
  EXPECT_LE(signature_hits, optimizer_hits);
  EXPECT_LE(optimizer_hits, planted.size());

  // Both baselines must be sound on this workload (verified spot check).
  SpesVerifier verifier(&s.catalog);
  for (const auto& [i, j] : *optimizer_pairs) {
    EXPECT_NE(verifier.CheckEquivalence(workload[i], workload[j]),
              EquivalenceVerdict::kNotEquivalent);
  }
}

TEST_F(PipelineTest, DeterministicAcrossThreadCounts) {
  Shared& s = shared();
  const std::vector<PlanPtr> workload = MakeWorkload(25, 5, 78);

  GeqoOptions options;
  options.vmf.radius = s.vmf_radius;
  options.emf.threshold = s.emf_threshold;

  // The same workload at 1, 2, and 8 threads must yield bit-identical
  // candidate and equivalence lists (sorted) and the same per-stage funnel.
  std::vector<GeqoResult> results;
  for (const size_t threads : {1u, 2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    GeqoPipeline pipeline(&s.catalog, s.model.get(), &s.instance_layout,
                          &s.agnostic_layout, options);
    const auto result = pipeline.DetectEquivalences(workload, s.value_range);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    results.push_back(*result);
  }
  ThreadPool::SetGlobalThreads(1);

  const GeqoResult& base = results[0];
  EXPECT_TRUE(std::is_sorted(base.candidates.begin(), base.candidates.end()));
  EXPECT_TRUE(
      std::is_sorted(base.equivalences.begin(), base.equivalences.end()));
  for (size_t r = 1; r < results.size(); ++r) {
    EXPECT_EQ(results[r].candidates, base.candidates) << "threads run " << r;
    EXPECT_EQ(results[r].equivalences, base.equivalences)
        << "threads run " << r;
    ASSERT_EQ(results[r].stages.size(), base.stages.size());
    for (size_t stage = 0; stage < base.stages.size(); ++stage) {
      EXPECT_EQ(results[r].stages[stage].name, base.stages[stage].name);
      EXPECT_EQ(results[r].stages[stage].pairs_in,
                base.stages[stage].pairs_in);
      EXPECT_EQ(results[r].stages[stage].pairs_out,
                base.stages[stage].pairs_out);
    }
  }
}

TEST_F(PipelineTest, VerifierStatsMergedFromWorkers) {
  Shared& s = shared();
  const std::vector<PlanPtr> workload = MakeWorkload(15, 4, 79);

  GeqoOptions options;
  options.vmf.radius = s.vmf_radius;
  options.emf.threshold = s.emf_threshold;

  ThreadPool::SetGlobalThreads(4);
  GeqoPipeline pipeline(&s.catalog, s.model.get(), &s.instance_layout,
                        &s.agnostic_layout, options);
  const auto result = pipeline.DetectEquivalences(workload, s.value_range);
  ThreadPool::SetGlobalThreads(1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every surviving candidate was verified exactly once, and the per-worker
  // counters were folded back into the pipeline's verifier.
  EXPECT_EQ(pipeline.verifier().stats().pairs_checked,
            result->candidates.size());
}

TEST_F(PipelineTest, TotalSecondsIsSumOfStageSeconds) {
  Shared& s = shared();
  const std::vector<PlanPtr> workload = MakeWorkload(10, 2, 80);

  GeqoOptions options;
  options.vmf.radius = s.vmf_radius;
  options.emf.threshold = s.emf_threshold;
  GeqoPipeline pipeline(&s.catalog, s.model.get(), &s.instance_layout,
                        &s.agnostic_layout, options);
  const auto result = pipeline.DetectEquivalences(workload, s.value_range);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The headline total is by construction the sum of the measured stage
  // spans (the pre-redesign code measured them independently and drifted).
  double stage_sum = 0.0;
  for (const StageReport& stage : result->stages) {
    EXPECT_GE(stage.seconds, 0.0) << stage.name;
    stage_sum += stage.seconds;
  }
  EXPECT_DOUBLE_EQ(result->total_seconds, stage_sum);
  EXPECT_GT(result->total_seconds, 0.0);
}

TEST_F(PipelineTest, OptionsValidateRejectsOutOfDomainValues) {
  EXPECT_TRUE(GeqoOptions().Validate().ok());

  GeqoOptions negative_radius;
  negative_radius.vmf.radius = -1.0f;
  EXPECT_FALSE(negative_radius.Validate().ok());

  GeqoOptions threshold_above_one;
  threshold_above_one.emf.threshold = 1.5f;
  EXPECT_FALSE(threshold_above_one.Validate().ok());

  GeqoOptions negative_threshold;
  negative_threshold.emf.threshold = -0.1f;
  EXPECT_FALSE(negative_threshold.Validate().ok());

  GeqoOptions zero_batch;
  zero_batch.emf.batch_size = 0;
  EXPECT_FALSE(zero_batch.Validate().ok());
}

TEST_F(PipelineTest, InvalidOptionsPoisonPipelineUntilUpdated) {
  Shared& s = shared();
  const PlanPtr q1 = MustParse("SELECT c_custkey FROM customer", s.catalog);
  const PlanPtr q2 = MustParse("SELECT c_nationkey FROM customer", s.catalog);

  GeqoOptions bad;
  bad.vmf.radius = -2.0f;
  GeqoPipeline pipeline(&s.catalog, s.model.get(), &s.instance_layout,
                        &s.agnostic_layout, bad);
  // Every entry point reports the construction-time validation error.
  EXPECT_FALSE(pipeline.DetectEquivalences({q1, q2}, s.value_range).ok());
  EXPECT_FALSE(pipeline.CheckPair(q1, q2, s.value_range).ok());

  // UpdateOptions with a valid configuration heals the pipeline.
  GeqoOptions good;
  good.vmf.radius = s.vmf_radius;
  good.emf.threshold = s.emf_threshold;
  ASSERT_TRUE(pipeline.UpdateOptions(good).ok());
  EXPECT_TRUE(pipeline.DetectEquivalences({q1, q2}, s.value_range).ok());
}

TEST_F(PipelineTest, UpdateOptionsRejectsInvalidAndPreservesStats) {
  Shared& s = shared();
  GeqoOptions options;
  options.vmf.radius = s.vmf_radius;
  options.emf.threshold = s.emf_threshold;
  GeqoPipeline pipeline(&s.catalog, s.model.get(), &s.instance_layout,
                        &s.agnostic_layout, options);

  // Accumulate some verifier work first.
  const PlanPtr q1 = MustParse(
      "SELECT c_custkey FROM customer WHERE c_acctbal > 50", s.catalog);
  const PlanPtr q2 = MustParse(
      "SELECT c_custkey FROM customer WHERE 50 < c_acctbal", s.catalog);
  ASSERT_TRUE(pipeline.CheckPair(q1, q2, s.value_range).ok());
  const uint64_t checked_before = pipeline.verifier().stats().pairs_checked;
  ASSERT_GT(checked_before, 0u);

  // A rejected update leaves the current options untouched.
  GeqoOptions bad = pipeline.options();
  bad.emf.threshold = 2.0f;
  EXPECT_FALSE(pipeline.UpdateOptions(bad).ok());
  EXPECT_FLOAT_EQ(pipeline.options().emf.threshold, s.emf_threshold);

  // A valid update takes effect and carries the cumulative verifier
  // accounting across the rebuild.
  GeqoOptions tweaked = pipeline.options();
  tweaked.vmf.radius = s.vmf_radius + 0.5f;
  ASSERT_TRUE(pipeline.UpdateOptions(tweaked).ok());
  EXPECT_FLOAT_EQ(pipeline.options().vmf.radius, s.vmf_radius + 0.5f);
  EXPECT_EQ(pipeline.verifier().stats().pairs_checked, checked_before);
}

TEST_F(PipelineTest, CheckPairMatchesDetectAcrossAblations) {
  Shared& s = shared();
  const PlanPtr equal_a = MustParse(
      "SELECT c_custkey FROM customer WHERE c_acctbal > 50", s.catalog);
  const PlanPtr equal_b = MustParse(
      "SELECT c_custkey FROM customer WHERE 50 < c_acctbal", s.catalog);
  const PlanPtr different = MustParse(
      "SELECT c_custkey FROM customer WHERE c_acctbal > 51", s.catalog);

  // GEqO_PAIR must agree with GEqO_SET on the corresponding two-query
  // workload under every combination of the Fig-14 ablation toggles.
  for (int mask = 0; mask < 16; ++mask) {
    GeqoOptions options;
    options.vmf.radius = s.vmf_radius;
    options.emf.threshold = s.emf_threshold;
    options.use_sf = (mask & 1) != 0;
    options.use_vmf = (mask & 2) != 0;
    options.use_emf = (mask & 4) != 0;
    options.run_verifier = (mask & 8) != 0;
    GeqoPipeline pipeline(&s.catalog, s.model.get(), &s.instance_layout,
                          &s.agnostic_layout, options);

    for (const auto& [a, b] : {std::pair{equal_a, equal_b},
                               std::pair{equal_a, different}}) {
      const auto detect = pipeline.DetectEquivalences({a, b}, s.value_range);
      ASSERT_TRUE(detect.ok()) << detect.status().ToString();
      const bool detected =
          std::find(detect->equivalences.begin(), detect->equivalences.end(),
                    std::pair<size_t, size_t>{0, 1}) !=
          detect->equivalences.end();
      const auto pairwise = pipeline.CheckPair(a, b, s.value_range);
      ASSERT_TRUE(pairwise.ok()) << pairwise.status().ToString();
      // DetectEquivalences counts only proved pairs, so kNotEquivalent and
      // kUnknown both map to "not detected".
      EXPECT_EQ(*pairwise == EquivalenceVerdict::kEquivalent, detected)
          << "toggle mask " << mask;
    }
  }
}

TEST_F(PipelineTest, TraceSpansProduceValidJsonPerStage) {
  Shared& s = shared();
  const std::vector<PlanPtr> workload = MakeWorkload(12, 4, 81);

  GeqoOptions options;
  options.vmf.radius = s.vmf_radius;
  options.emf.threshold = s.emf_threshold;
  GeqoPipeline pipeline(&s.catalog, s.model.get(), &s.instance_layout,
                        &s.agnostic_layout, options);

  obs::SetTraceLevel(obs::TraceLevel::kSpans);
  obs::Tracer::Global().Reset();
  const auto result = pipeline.DetectEquivalences(workload, s.value_range);
  const std::vector<obs::SpanEvent> spans = obs::Tracer::Global().Collect();
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  obs::SetTraceLevel(obs::TraceLevel::kOff);
  obs::Tracer::Global().Reset();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Exactly one root span for the run and one span per enabled stage.
  const auto count_spans = [&spans](const std::string& name) {
    size_t n = 0;
    for (const obs::SpanEvent& span : spans) n += span.name == name;
    return n;
  };
  EXPECT_EQ(count_spans("DetectEquivalences"), 1u);
  for (const StageReport& stage : result->stages) {
    if (!stage.enabled) continue;
    EXPECT_EQ(count_spans("stage." + stage.name), 1u) << stage.name;
  }

  // With metrics collection on, enabled stages attribute registry deltas
  // (the verifier at minimum moves the smt.* and verify.* counters).
  const StageReport* verify_stage = result->FindStage("verify");
  ASSERT_NE(verify_stage, nullptr);
  EXPECT_FALSE(verify_stage->metrics.empty());

  // Every export format is valid JSON.
  const std::string chrome = obs::ToChromeTraceJson(spans, snapshot);
  const auto chrome_error = obs::ValidateJson(chrome);
  EXPECT_FALSE(chrome_error.has_value()) << chrome_error.value_or("");
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);

  const std::string tree = obs::ToSpanTreeJson(spans);
  const auto tree_error = obs::ValidateJson(tree);
  EXPECT_FALSE(tree_error.has_value()) << tree_error.value_or("");

  const auto metrics_error = obs::ValidateJson(snapshot.ToJson());
  EXPECT_FALSE(metrics_error.has_value()) << metrics_error.value_or("");
}

TEST_F(PipelineTest, SsflImprovesWeakModel) {
  Shared& s = shared();
  // A fresh (untrained) model fine-tuned by the SSFL on a workload with
  // planted equivalences should end more confident than it started.
  ml::EmfModelOptions model_options;
  model_options.input_dim = s.agnostic_layout.node_vector_size();
  model_options.conv1_size = 32;
  model_options.conv2_size = 32;
  model_options.fc1_size = 32;
  model_options.fc2_size = 16;
  model_options.dropout = 0.2f;
  ml::EmfModel weak_model(model_options);
  ml::TrainOptions train_options;
  train_options.epochs = 4;
  ml::EmfTrainer trainer(&weak_model, train_options);

  const std::vector<PlanPtr> workload = MakeWorkload(20, 6, 76);
  SsflOptions ssfl_options;
  ssfl_options.max_iterations = 3;
  ssfl_options.sample_batch = 64;
  ssfl_options.confidence_sample = 200;
  ssfl_options.finetune_epochs = 4;
  ssfl_options.vmf.radius = 2.0f;
  Ssfl ssfl(&s.catalog, &weak_model, &trainer, &s.instance_layout,
            &s.agnostic_layout, ssfl_options);
  const auto reports = ssfl.Run(workload, s.value_range);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_FALSE(reports->empty());
  EXPECT_GT(ssfl.accumulated_data().size(), 0u);
  // Timing fields populated on tuning iterations.
  if (reports->size() > 1 || (*reports)[0].new_negatives > 0) {
    EXPECT_GT((*reports)[0].TotalSeconds(), 0.0);
  }
}

TEST_F(PipelineTest, SsflFilterSamplingFindsPositives) {
  Shared& s = shared();
  const std::vector<PlanPtr> workload = MakeWorkload(20, 8, 77);

  ml::TrainOptions train_options;
  train_options.epochs = 2;
  ml::EmfTrainer trainer(s.model.get(), train_options);

  SsflOptions filter_options;
  filter_options.max_iterations = 1;
  filter_options.sample_batch = 64;
  filter_options.confidence_sample = 100;
  filter_options.confidence_threshold = 1.1f;  // force one iteration
  filter_options.vmf.radius = 2.5f;
  Ssfl filter_ssfl(&s.catalog, s.model.get(), &trainer, &s.instance_layout,
                   &s.agnostic_layout, filter_options);
  const auto filter_reports = filter_ssfl.Run(workload, s.value_range);
  ASSERT_TRUE(filter_reports.ok());

  SsflOptions random_options = filter_options;
  random_options.filter_based_sampling = false;
  ml::EmfModel random_model(s.model->options());
  ml::EmfTrainer random_trainer(&random_model, train_options);
  Ssfl random_ssfl(&s.catalog, &random_model, &random_trainer,
                   &s.instance_layout, &s.agnostic_layout, random_options);
  const auto random_reports = random_ssfl.Run(workload, s.value_range);
  ASSERT_TRUE(random_reports.ok());

  // Filter-based sampling surfaces positives; random sampling over a
  // quadratic pair space virtually never does (§6).
  EXPECT_GE((*filter_reports)[0].new_positives,
            (*random_reports)[0].new_positives);
}

}  // namespace
}  // namespace geqo
