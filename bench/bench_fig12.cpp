/// \file bench_fig12.cpp
/// Reproduces Figure 12 (§7.4): VMF and EMF runtimes on growing numbers of
/// TPC-DS subexpression pairs, CPU versus (modeled) GPU, with all other
/// filters disabled.
///
/// Substitution note (DESIGN.md §1): no GPU is available, so the GPU series
/// is an analytical model applied to the measured CPU run — instrumented
/// kernel dispatches, transferred bytes, a 40x compute speedup, and a fixed
/// per-job session overhead (see tensor/device.h). That model reproduces
/// the paper's mechanism and shape: the GPU loses below a crossover point
/// (fixed costs dominate) and wins beyond it (compute amortizes); the
/// EMF's heavier per-pair compute pushes its crossover earlier than the
/// VMF's.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "filters/emf_filter.h"
#include "filters/vmf.h"
#include "tensor/device.h"

using namespace geqo;
using namespace geqo::bench;

namespace {

struct SeriesPoint {
  size_t pairs;
  double cpu_seconds;
  double gpu_seconds;
};

size_t SubexpressionsForPairs(size_t pairs) {
  return static_cast<size_t>(std::ceil((1.0 + std::sqrt(1.0 + 8.0 *
             static_cast<double>(pairs))) / 2.0));
}

}  // namespace

int main() {
  PrintHeader("bench_fig12",
              "Figure 12: VMF/EMF runtime scaling, CPU vs modeled GPU");
  BenchContext context = TpchTrainedSystem(GetScale());
  const Catalog tpcds = MakeTpcdsCatalog();
  const EncodingLayout tpcds_layout = EncodingLayout::FromCatalog(tpcds);
  const DeviceModel gpu = DeviceModel::AcceleratorT4Like();

  const std::vector<size_t> pair_counts =
      GetScale() == Scale::kFull
          ? std::vector<size_t>{1000, 4000, 16000, 64000, 250000}
          : (GetScale() == Scale::kSmoke
                 ? std::vector<size_t>{300, 1200}
                 : std::vector<size_t>{1000, 4000, 16000});

  const size_t max_n = SubexpressionsForPairs(pair_counts.back());
  const DetectionWorkload workload = MakeDetectionWorkload(
      tpcds, max_n, std::min<size_t>(max_n / 8, 64), /*seed=*/0xF16012);
  auto encoded = EncodeWorkload(workload.subexpressions, tpcds_layout, tpcds,
                                context.system->value_range());
  GEQO_CHECK(encoded.ok());
  const size_t node_vector_bytes =
      context.system->agnostic_layout().node_vector_size() * sizeof(float);

  std::vector<SeriesPoint> vmf_series;
  std::vector<SeriesPoint> emf_series;
  for (const size_t pairs : pair_counts) {
    const size_t n = SubexpressionsForPairs(pairs);
    std::vector<size_t> group(n);
    for (size_t i = 0; i < n; ++i) group[i] = i;

    // --- VMF: group-encode, embed, index, radius-search (one SF group). ---
    {
      VmfOptions options;
      options.radius = context.system->pipeline().options().vmf.radius;
      options.truncate_overflow = true;
      const VectorMatchingFilter vmf(&context.system->model(), &tpcds_layout,
                                     &context.system->agnostic_layout(),
                                     options);
      GetKernelStats().Reset();
      Stopwatch watch;
      auto result = vmf.CandidatePairs(group, *encoded);
      GEQO_CHECK(result.ok());
      const double cpu_seconds = watch.ElapsedSeconds();
      // Host->device traffic: every encoded subexpression's node matrix.
      double bytes = 0;
      for (size_t i = 0; i < n; ++i) {
        bytes += static_cast<double>((*encoded)[i].num_nodes() *
                                     node_vector_bytes);
      }
      vmf_series.push_back(SeriesPoint{
          pairs, cpu_seconds,
          gpu.ModelSeconds(cpu_seconds, GetKernelStats(), bytes)});
    }

    // --- EMF: score every pair (pairwise conversion + siamese forward). ---
    {
      std::vector<std::pair<size_t, size_t>> all_pairs;
      all_pairs.reserve(pairs);
      for (size_t i = 0; i < n && all_pairs.size() < pairs; ++i) {
        for (size_t j = i + 1; j < n && all_pairs.size() < pairs; ++j) {
          all_pairs.emplace_back(i, j);
        }
      }
      const EquivalenceModelFilter emf(&context.system->model(), &tpcds_layout,
                                       &context.system->agnostic_layout());
      GetKernelStats().Reset();
      Stopwatch watch;
      auto scores = emf.Scores(all_pairs, *encoded);
      GEQO_CHECK(scores.ok());
      const double cpu_seconds = watch.ElapsedSeconds();
      double bytes = 0;
      for (const auto& [i, j] : all_pairs) {
        bytes += static_cast<double>(
            ((*encoded)[i].num_nodes() + (*encoded)[j].num_nodes()) *
            node_vector_bytes);
      }
      emf_series.push_back(SeriesPoint{
          all_pairs.size(), cpu_seconds,
          gpu.ModelSeconds(cpu_seconds, GetKernelStats(), bytes)});
    }
    std::printf("# measured %zu pairs\n", pairs);
  }

  const auto print_series = [](const char* name,
                               const std::vector<SeriesPoint>& series) {
    std::printf("\n(%s) %-12s %-12s %-14s %-10s\n", name, "# pairs",
                "CPU (s)", "GPU-model (s)", "winner");
    for (const SeriesPoint& point : series) {
      std::printf("     %-12zu %-12.3f %-14.3f %-10s\n", point.pairs,
                  point.cpu_seconds, point.gpu_seconds,
                  point.cpu_seconds <= point.gpu_seconds ? "cpu" : "gpu");
    }
  };
  print_series("a: VMF", vmf_series);
  print_series("b: EMF", emf_series);

  const bool vmf_small_cpu =
      vmf_series.front().cpu_seconds < vmf_series.front().gpu_seconds;
  const bool emf_large_gpu =
      emf_series.back().gpu_seconds < emf_series.back().cpu_seconds ||
      GetScale() == Scale::kSmoke;
  std::printf("\nshape check: CPU wins small VMF jobs -> %s; "
              "GPU wins large EMF jobs -> %s\n",
              vmf_small_cpu ? "yes" : "NO", emf_large_gpu ? "yes" : "NO");
  return (vmf_small_cpu && emf_large_gpu) ? 0 : 1;
}
