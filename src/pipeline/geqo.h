#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "filters/emf_filter.h"
#include "filters/schema_filter.h"
#include "filters/vmf.h"
#include "verify/verifier.h"
#include "workload/labeled_data.h"

/// \file geqo.h
/// The end-to-end GEqO pipeline (Equations 1-2, §2.2): filters applied in
/// decreasing order of speed and increasing order of precision — SF groups,
/// VMF candidate pairs, EMF classification — with the automated verifier
/// eliminating false positives last. Filters short-circuit: a pair rejected
/// by any stage is never seen by later stages.
///
/// DetectEquivalences parallelizes every stage but the (cheap) schema filter
/// across the global ThreadPool: encoding per plan, VMF per SF-group, EMF
/// per batch shard, and verification per pair with per-thread verifier
/// instances. Output is deterministic — candidates and equivalences are
/// sorted by workload index pair and identical at any thread count
/// (GEQO_THREADS / ThreadPool::SetGlobalThreads).
///
/// Observability (DESIGN.md §"Observability"): each run reports an ordered
/// std::vector<StageReport> — one entry per pipeline stage in execution
/// order — and emits tracing spans plus per-stage metric deltas when
/// GEQO_TRACE is "metrics" or "spans".

namespace geqo {

/// \brief Which filters run (the Fig-14 ablation toggles these) and their
/// parameters.
struct GeqoOptions {
  bool use_sf = true;
  bool use_vmf = true;
  bool use_emf = true;
  bool run_verifier = true;  ///< disable to inspect raw filter output
  VmfOptions vmf;
  EmfFilterOptions emf;
  VerifierOptions verifier;

  /// Checks every parameter for domain validity: the VMF radius must be
  /// non-negative and finite, the EMF threshold must lie in [0, 1], batch
  /// sizes and beam widths must be positive. All calibration and ablation
  /// paths funnel through this check (construction and UpdateOptions), so
  /// an out-of-domain value fails loudly instead of silently misfiltering.
  Status Validate() const;
};

/// \brief Accounting for one pipeline stage of one run: the pair funnel,
/// the measured wall-clock span, and (at GEQO_TRACE=metrics or above) the
/// global metric deltas attributable to the stage.
struct StageReport {
  std::string name;     ///< "encode", "sf", "vmf", "emf", or "verify"
  bool enabled = true;  ///< disabled stages report pass-through pair counts
  size_t pairs_in = 0;
  size_t pairs_out = 0;
  double seconds = 0.0;
  /// Kernel table the stage's tensor work dispatched through ("scalar",
  /// "avx2"), captured at stage entry.
  std::string isa;
  /// Serving-layer tag: the catalog shard the stage ran against, or -1 for
  /// batch-pipeline and unsharded stages.
  int shard = -1;
  /// Registry counter/gauge deltas observed while the stage ran (name,
  /// increment), sorted by name. Empty when GEQO_TRACE=off.
  std::vector<std::pair<std::string, double>> metrics;

  /// Renders \p stages as an aligned text table (stage, in, out, seconds) —
  /// the one formatting path for examples and bench drivers.
  static std::string FormatTable(const std::vector<StageReport>& stages);
};

/// \brief Output of GEqO_SET. Pair lists are sorted ascending by
/// (first, second) workload index regardless of grouping or thread count.
struct GeqoResult {
  /// Verified equivalent pairs (workload indices, i < j).
  std::vector<std::pair<size_t, size_t>> equivalences;
  /// Pairs surviving all filters (the verifier's input).
  std::vector<std::pair<size_t, size_t>> candidates;
  size_t total_pairs = 0;  ///< |W| * (|W|-1) / 2
  /// Stage accounting in execution order: encode, sf, vmf, emf, verify.
  /// Always exactly these five entries (disabled stages carry enabled=false
  /// and pass-through counts), so iteration order is stable across runs,
  /// options, and versions.
  std::vector<StageReport> stages;
  /// Sum of the stages' measured seconds — by construction equal to the
  /// per-stage total, never a separately measured wall clock.
  double total_seconds = 0.0;

  /// The named stage entry, or nullptr if \p name is not a stage.
  const StageReport* FindStage(std::string_view name) const;
};

/// \brief The GEqO pipeline over a fixed catalog, model, and layouts.
///
/// Options are validated at construction; an invalid GeqoOptions poisons
/// the pipeline and every subsequent call returns the validation error
/// (constructors cannot return Result). Runtime reconfiguration — VMF
/// radius calibration, EMF threshold calibration, ablation toggling — goes
/// through UpdateOptions, the one audited mutation route.
class GeqoPipeline {
 public:
  GeqoPipeline(const Catalog* catalog, ml::EmfModel* model,
               const EncodingLayout* instance_layout,
               const EncodingLayout* agnostic_layout,
               GeqoOptions options = GeqoOptions())
      : catalog_(catalog),
        model_(model),
        instance_layout_(instance_layout),
        agnostic_layout_(agnostic_layout),
        options_(options),
        options_status_(options.Validate()),
        verifier_(catalog, options.verifier) {}

  /// GEqO_SET(W, F): approximates the equivalence set of \p workload.
  Result<GeqoResult> DetectEquivalences(const std::vector<PlanPtr>& workload,
                                        ValueRange value_range);

  /// GEqO_PAIR(q_i, q_j, F): the pairwise special case. Returns the
  /// verifier's tri-state so callers can distinguish a refutation from an
  /// exhausted proof budget: kEquivalent (proved — or, with run_verifier
  /// disabled, survived every enabled filter), kNotEquivalent (rejected by a
  /// filter or refuted by the verifier), kUnknown (survived the filters but
  /// the verifier could neither prove nor refute). DetectEquivalences counts
  /// only kEquivalent pairs.
  Result<EquivalenceVerdict> CheckPair(const PlanPtr& a, const PlanPtr& b,
                                       ValueRange value_range);

  /// Replaces the pipeline's options after validating them. On validation
  /// failure the current options are left untouched. The verifier is
  /// rebuilt with the new VerifierOptions; its cumulative stats carry over.
  Status UpdateOptions(const GeqoOptions& options);

  SpesVerifier& verifier() { return verifier_; }
  const GeqoOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  ml::EmfModel* model_;
  const EncodingLayout* instance_layout_;
  const EncodingLayout* agnostic_layout_;
  GeqoOptions options_;
  Status options_status_;  ///< construction-time validation verdict
  SpesVerifier verifier_;
};

}  // namespace geqo
