#include <gtest/gtest.h>

#include "encode/agnostic.h"
#include "exec/database.h"
#include "exec/executor.h"
#include "pipeline/baselines.h"
#include "test_util.h"
#include "verify/verifier.h"
#include "workload/generator.h"
#include "workload/rewrite.h"
#include "workload/schemas.h"

/// \file aggregate_test.cc
/// Tests for the §9.1 extension: GROUP BY / aggregation across the parser,
/// executor, featurization, verifier, rewriter, and baselines.

namespace geqo {
namespace {

using testing::MakeFigure1Catalog;
using testing::MustParse;

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest() : catalog_(MakeFigure1Catalog()) {
    DataGenOptions options;
    options.default_rows = 60;
    options.key_cardinality = 8;
    options.seed = 0xA66;
    database_ = std::make_unique<Database>(Database::Generate(catalog_, options));
    executor_ = std::make_unique<Executor>(database_.get());
  }

  RowSet Run(std::string_view sql) {
    auto result = executor_->Execute(MustParse(sql, catalog_));
    GEQO_CHECK(result.ok()) << result.status().ToString();
    return *result;
  }

  Catalog catalog_;
  std::unique_ptr<Database> database_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(AggregateTest, ParserBuildsAggregateNode) {
  const PlanPtr plan = MustParse(
      "SELECT a.joinkey, COUNT(*) AS n, SUM(a.val) AS total FROM a "
      "GROUP BY a.joinkey",
      catalog_);
  ASSERT_EQ(plan->kind(), OpKind::kAggregate);
  EXPECT_EQ(plan->group_by().size(), 1u);
  ASSERT_EQ(plan->aggregates().size(), 2u);
  EXPECT_EQ(plan->aggregates()[0].fn, AggregateFn::kCount);
  EXPECT_EQ(plan->aggregates()[0].argument, nullptr);
  EXPECT_EQ(plan->aggregates()[1].fn, AggregateFn::kSum);
  EXPECT_EQ(plan->aggregates()[1].name, "total");
}

TEST_F(AggregateTest, ParserRejectsNonGroupedSelectItem) {
  EXPECT_TRUE(ParseSql("SELECT a.val, COUNT(*) FROM a GROUP BY a.joinkey",
                       catalog_)
                  .status()
                  .IsParseError());
}

TEST_F(AggregateTest, ParserRejectsAggregateBeforePlainItem) {
  EXPECT_TRUE(ParseSql("SELECT COUNT(*), a.joinkey FROM a GROUP BY a.joinkey",
                       catalog_)
                  .status()
                  .IsParseError());
}

TEST_F(AggregateTest, GlobalAggregateWithoutGroupBy) {
  const RowSet result = Run("SELECT COUNT(*) AS n FROM a");
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt(), 60);
}

TEST_F(AggregateTest, GroupedCountsSumToTotal) {
  const RowSet grouped =
      Run("SELECT a.joinkey, COUNT(*) AS n FROM a GROUP BY a.joinkey");
  EXPECT_LE(grouped.num_rows(), 8u);  // key cardinality
  int64_t total = 0;
  for (const auto& row : grouped.rows) total += row[1].AsInt();
  EXPECT_EQ(total, 60);
}

TEST_F(AggregateTest, SumMinMaxAvgAgree) {
  const RowSet result = Run(
      "SELECT SUM(a.val) AS s, MIN(a.val) AS lo, MAX(a.val) AS hi, "
      "AVG(a.val) AS mean, COUNT(a.val) AS n FROM a");
  ASSERT_EQ(result.num_rows(), 1u);
  const double sum = result.rows[0][0].AsDouble();
  const double lo = result.rows[0][1].AsDouble();
  const double hi = result.rows[0][2].AsDouble();
  const double mean = result.rows[0][3].AsDouble();
  const int64_t n = result.rows[0][4].AsInt();
  EXPECT_EQ(n, 60);
  EXPECT_LE(lo, mean);
  EXPECT_LE(mean, hi);
  EXPECT_NEAR(mean, sum / static_cast<double>(n), 1e-9);
}

TEST_F(AggregateTest, AggregateOverJoinExecutes) {
  const RowSet result = Run(
      "SELECT a.joinkey, COUNT(*) AS n FROM a, b "
      "WHERE a.joinkey = b.joinkey GROUP BY a.joinkey");
  EXPECT_GT(result.num_rows(), 0u);
  EXPECT_EQ(result.num_columns(), 2u);
}

TEST_F(AggregateTest, VerifierProvesAggregateOverRewrittenChild) {
  SpesVerifier verifier(&catalog_);
  const PlanPtr q1 = MustParse(
      "SELECT b.joinkey, SUM(a.val) AS s FROM a, b "
      "WHERE a.joinkey = b.joinkey AND a.val > b.val + 10 AND b.val > 10 "
      "GROUP BY b.joinkey",
      catalog_);
  const PlanPtr q2 = MustParse(
      "SELECT b.joinkey, SUM(a.val) AS s FROM b, a "
      "WHERE b.joinkey = a.joinkey AND b.val + 10 < a.val "
      "AND b.val + 10 > 20 AND a.val > 20 GROUP BY b.joinkey",
      catalog_);
  EXPECT_EQ(verifier.CheckEquivalence(q1, q2),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(AggregateTest, VerifierDistinguishesAggregateSpecs) {
  SpesVerifier verifier(&catalog_);
  const PlanPtr sum = MustParse(
      "SELECT a.joinkey, SUM(a.val) AS s FROM a GROUP BY a.joinkey", catalog_);
  const PlanPtr avg = MustParse(
      "SELECT a.joinkey, AVG(a.val) AS s FROM a GROUP BY a.joinkey", catalog_);
  const PlanPtr other_key = MustParse(
      "SELECT a.x, SUM(a.val) AS s FROM a GROUP BY a.x", catalog_);
  EXPECT_NE(verifier.CheckEquivalence(sum, avg),
            EquivalenceVerdict::kEquivalent);
  EXPECT_NE(verifier.CheckEquivalence(sum, other_key),
            EquivalenceVerdict::kEquivalent);
  // Aggregate vs plain SPJ stays conservative.
  const PlanPtr plain = MustParse("SELECT a.joinkey, a.val FROM a", catalog_);
  EXPECT_EQ(verifier.CheckEquivalence(sum, plain),
            EquivalenceVerdict::kUnknown);
}

TEST_F(AggregateTest, RewriteVariantsOfAggregatesStayEquivalent) {
  const Catalog tpch = MakeTpchCatalog();
  GeneratorOptions options;
  options.aggregate_probability = 1.0;
  QueryGenerator generator(&tpch, options);
  Rewriter rewriter(&tpch);
  SpesVerifier verifier(&tpch);
  Rng rng(0xA67);
  for (int trial = 0; trial < 10; ++trial) {
    const PlanPtr base = generator.Generate(&rng);
    ASSERT_EQ(base->kind(), OpKind::kAggregate);
    const auto variant = rewriter.RewriteOnce(base, &rng);
    ASSERT_TRUE(variant.ok());
    EXPECT_EQ(verifier.CheckEquivalence(base, *variant),
              EquivalenceVerdict::kEquivalent)
        << base->ToString() << "\nvs\n"
        << (*variant)->ToString();
  }
}

TEST_F(AggregateTest, RewriteVariantsProduceIdenticalResults) {
  const Catalog tpch = MakeTpchCatalog();
  DataGenOptions data_options;
  data_options.default_rows = 100;
  const Database db = Database::Generate(tpch, data_options);
  Executor executor(&db);
  GeneratorOptions options;
  options.aggregate_probability = 1.0;
  QueryGenerator generator(&tpch, options);
  Rewriter rewriter(&tpch);
  Rng rng(0xA68);
  for (int trial = 0; trial < 8; ++trial) {
    const PlanPtr base = generator.Generate(&rng);
    const auto variant = rewriter.RewriteOnce(base, &rng);
    ASSERT_TRUE(variant.ok());
    const auto result_base = executor.Execute(base);
    const auto result_variant = executor.Execute(*variant);
    ASSERT_TRUE(result_base.ok() && result_variant.ok());
    EXPECT_TRUE(result_base->BagEquals(*result_variant));
  }
}

TEST_F(AggregateTest, EncodingMarksAggregateSegments) {
  const EncodingLayout layout = EncodingLayout::FromCatalog(catalog_);
  PlanEncoder encoder(&layout, &catalog_, ValueRange{0, 100});
  const PlanPtr plan = MustParse(
      "SELECT a.joinkey, SUM(a.val) AS s FROM a GROUP BY a.joinkey", catalog_);
  const auto encoded = encoder.Encode(plan);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  const float* root = encoded->nodes.Row(0);
  // a.joinkey is sorted column 0; a.val is column 1.
  EXPECT_EQ(root[layout.group_by_offset() + 0], 1.0f);
  EXPECT_EQ(root[layout.agg_fn_offset() +
                 static_cast<size_t>(AggregateFn::kSum)],
            1.0f);
  EXPECT_EQ(root[layout.agg_col_offset() + 1], 1.0f);
}

TEST_F(AggregateTest, AgnosticPathsAgreeOnAggregates) {
  const EncodingLayout instance_layout = EncodingLayout::FromCatalog(catalog_);
  const EncodingLayout agnostic_layout = EncodingLayout::Agnostic(4, 6);
  PlanEncoder encoder(&instance_layout, &catalog_, ValueRange{0, 100});
  const PlanPtr q1 = MustParse(
      "SELECT b.joinkey, AVG(a.x) AS m FROM a, b WHERE a.joinkey = b.joinkey "
      "GROUP BY b.joinkey",
      catalog_);
  const PlanPtr q2 = MustParse(
      "SELECT b.joinkey, AVG(a.x) AS m FROM b, a WHERE b.joinkey = a.joinkey "
      "GROUP BY b.joinkey",
      catalog_);
  const auto path_a = EncodePairAgnostic(q1, q2, agnostic_layout, catalog_,
                                         ValueRange{0, 100});
  ASSERT_TRUE(path_a.ok()) << path_a.status().ToString();
  const auto i1 = encoder.Encode(q1);
  const auto i2 = encoder.Encode(q2);
  ASSERT_TRUE(i1.ok() && i2.ok());
  const auto converter = AgnosticConverter::Create(
      &instance_layout, &agnostic_layout, {&*i1, &*i2});
  ASSERT_TRUE(converter.ok());
  const EncodedPlan b1 = converter->Convert(*i1);
  for (size_t i = 0; i < b1.nodes.size(); ++i) {
    ASSERT_EQ(path_a->first.nodes.values()[i], b1.nodes.values()[i]) << i;
  }
}

TEST_F(AggregateTest, BaselinesHandleAggregates) {
  // Join commutation under an aggregate: signature-equal; different
  // aggregate function: signature-different.
  const PlanPtr q1 = MustParse(
      "SELECT b.joinkey, SUM(a.val) AS s FROM a, b "
      "WHERE a.joinkey = b.joinkey GROUP BY b.joinkey",
      catalog_);
  const PlanPtr q2 = MustParse(
      "SELECT b.joinkey, SUM(a.val) AS s FROM b, a "
      "WHERE b.joinkey = a.joinkey GROUP BY b.joinkey",
      catalog_);
  const PlanPtr q3 = MustParse(
      "SELECT b.joinkey, MAX(a.val) AS s FROM a, b "
      "WHERE a.joinkey = b.joinkey GROUP BY b.joinkey",
      catalog_);
  EXPECT_EQ(*PlanSignature(q1, catalog_), *PlanSignature(q2, catalog_));
  EXPECT_NE(*PlanSignature(q1, catalog_), *PlanSignature(q3, catalog_));
  EXPECT_EQ(*OptimizerNormalForm(q1, catalog_),
            *OptimizerNormalForm(q2, catalog_));
  EXPECT_NE(*OptimizerNormalForm(q1, catalog_),
            *OptimizerNormalForm(q3, catalog_));
}

TEST_F(AggregateTest, SchemaFilterSeesAggregateArity) {
  const PlanPtr narrow = MustParse(
      "SELECT a.joinkey, COUNT(*) AS n FROM a GROUP BY a.joinkey", catalog_);
  const auto arity = narrow->NumOutputColumns(catalog_);
  ASSERT_TRUE(arity.ok());
  EXPECT_EQ(*arity, 2u);
}

}  // namespace
}  // namespace geqo
