#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

/// \file work_queue.h
/// A bounded multi-producer / multi-consumer task queue for background
/// service planes (the serving layer's async verifier pool is the first
/// client). Unlike ThreadPool::ParallelFor — which fans a finite index range
/// out to workers and blocks the caller — a WorkQueue decouples producers
/// from consumers: producers Push items and return immediately (blocking
/// only at the capacity bound, the backpressure contract), while long-lived
/// consumer threads Pop until Close.
///
/// Locking: one rank-checked mutex (LockRank::kWorkQueue) guards all queue
/// state; every method is a self-contained critical section, so callers may
/// hold any lower-ranked lock (AppendRecord pushes compaction requests
/// while holding a WAL handle lock, rank kWalHandle).
///
/// Lifecycle extras the async plane needs:
///   - WaitIdle(): block until the queue is empty AND every popped item has
///     been matched by a TaskDone() — i.e. no work is queued or in flight.
///     This is the drain barrier behind "no lost async verdicts".
///   - Pause()/Resume(): stop handing items to consumers without closing,
///     then SnapshotPending() the untouched backlog — the snapshot path
///     uses this to persist the pending-verification tail atomically.
///     Pauses nest: with overlapping Pause/Resume pairs (concurrent
///     snapshotters), consumers resume only after the last Resume.

namespace geqo {

template <typename T>
class WorkQueue {
 public:
  /// \p capacity bounds the backlog; 0 means unbounded. Push blocks while
  /// the queue is at capacity (backpressure, never silent drops).
  explicit WorkQueue(size_t capacity = 0)
      : capacity_(capacity), mu_(analysis::LockRank::kWorkQueue) {}

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Enqueues \p item, blocking while full. Returns false (and drops the
  /// item) only after Close().
  bool Push(T item) {
    UniqueLock lock(mu_);
    while (!(closed_ || capacity_ == 0 || queue_.size() < capacity_)) {
      space_cv_.wait(lock);
    }
    if (closed_) return false;
    queue_.push_back(std::move(item));
    item_cv_.notify_one();
    return true;
  }

  /// Dequeues the oldest item, blocking while the queue is empty or paused.
  /// Returns nullopt once the queue is closed and drained. Every returned
  /// item counts as in-flight until the consumer calls TaskDone().
  std::optional<T> Pop() {
    UniqueLock lock(mu_);
    while (!((closed_ || !queue_.empty()) && pause_count_ == 0)) {
      item_cv_.wait(lock);
    }
    if (queue_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    space_cv_.notify_one();
    return item;
  }

  /// Marks one popped item fully processed (side effects applied).
  void TaskDone() {
    MutexLock lock(mu_);
    --in_flight_;
    // Notify on every idle transition, not only when the backlog is also
    // empty: Pause() waits for in_flight_ == 0 alone (the backlog may be
    // non-empty and frozen), and both waiters re-check their own predicate.
    if (in_flight_ == 0) idle_cv_.notify_all();
  }

  /// Blocks until the queue is empty and no popped item is still in flight.
  /// With no consumer attached this returns only once producers stop and
  /// the backlog is externally drained — callers owning zero consumer
  /// threads should use SnapshotPending()/Pop-inline instead.
  void WaitIdle() {
    UniqueLock lock(mu_);
    while (!(queue_.empty() && in_flight_ == 0)) {
      idle_cv_.wait(lock);
    }
  }

  /// Stops handing items to consumers (Pop blocks; Push still accepted),
  /// then waits for in-flight items to finish. On return the backlog is
  /// frozen and fully observable via SnapshotPending(). Reentrant: pauses
  /// nest, and consumers run again only after the matching last Resume —
  /// so two overlapping pause/snapshot/resume sections each see a frozen
  /// backlog for their whole extent.
  void Pause() {
    UniqueLock lock(mu_);
    ++pause_count_;
    while (in_flight_ != 0) {
      idle_cv_.wait(lock);
    }
  }

  /// Undoes one Pause(); consumers wake once every pause is matched.
  void Resume() {
    MutexLock lock(mu_);
    if (pause_count_ > 0) --pause_count_;
    if (pause_count_ == 0) item_cv_.notify_all();
  }

  /// The frozen backlog, oldest first. Meaningful while paused (or when the
  /// caller otherwise knows no consumer is active).
  std::vector<T> SnapshotPending() const {
    MutexLock lock(mu_);
    return std::vector<T>(queue_.begin(), queue_.end());
  }

  /// Wakes all consumers to exit once the backlog drains; further Push
  /// calls are refused.
  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  size_t size() const {
    MutexLock lock(mu_);
    return queue_.size();
  }

  /// Queued plus in-flight items — the quantity a drain must retire.
  size_t outstanding() const {
    MutexLock lock(mu_);
    return queue_.size() + in_flight_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::condition_variable_any item_cv_;   ///< items available (or closed)
  std::condition_variable_any space_cv_;  ///< capacity available (or closed)
  std::condition_variable_any idle_cv_;   ///< empty + nothing in flight
  std::deque<T> queue_ GEQO_GUARDED_BY(mu_);
  size_t in_flight_ GEQO_GUARDED_BY(mu_) = 0;
  size_t pause_count_ GEQO_GUARDED_BY(mu_) = 0;
  bool closed_ GEQO_GUARDED_BY(mu_) = false;
};

}  // namespace geqo
