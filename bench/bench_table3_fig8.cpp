/// \file bench_table3_fig8.cpp
/// Reproduces Table 3 and Figure 8 (§7.1.1): accuracy and F1 of the three
/// candidate EMF classifiers — the tree-convolution MLP, a random forest,
/// and logistic regression — trained on TPC-H and tested on TPC-DS, plus
/// each model's confusion matrix.
///
/// Paper shape to reproduce: MLP dominates both baselines on accuracy and
/// F1 (0.970 / 0.964 vs RF 0.592 / 0.030 and LR 0.588 / 0.486); in the
/// confusion matrices the MLP keeps both error quadrants small while RF
/// collapses to the majority class and LR errs on both sides.

#include <cstdio>

#include "bench_util.h"
#include "ml/flat_features.h"
#include "ml/logistic.h"
#include "ml/random_forest.h"

using namespace geqo;
using namespace geqo::bench;

int main() {
  PrintHeader("bench_table3_fig8",
              "Table 3 + Figure 8: classifier comparison (train TPC-H, "
              "test TPC-DS)");
  BenchContext context = TpchTrainedSystem(GetScale());

  // Shared TPC-H training data for the flat-feature baselines (the MLP in
  // `context` is already trained on equivalent data).
  const size_t train_bases = Pick(40, 160, 400);
  EvalSet train = MakeEvalSet(*context.system, context.system->catalog(),
                              train_bases, 3, /*seed=*/0x7AB1E3);
  Tensor train_features;
  Tensor train_labels;
  ml::FlattenDataset(train.dataset, &train_features, &train_labels);

  // TPC-DS evaluation set (unseen schema).
  const Catalog tpcds = MakeTpcdsCatalog();
  const size_t eval_bases = Pick(30, 120, 300);
  EvalSet eval = MakeEvalSet(*context.system, tpcds, eval_bases, 3,
                             /*seed=*/0xE7A1);
  Tensor eval_features;
  Tensor eval_labels;
  ml::FlattenDataset(eval.dataset, &eval_features, &eval_labels);
  std::printf("train: %zu TPC-H pairs; test: %zu TPC-DS pairs "
              "(%zu positives)\n\n",
              train.dataset.size(), eval.dataset.size(),
              eval.dataset.NumPositives());

  struct Row {
    const char* name;
    ml::ConfusionMatrix matrix;
  };
  std::vector<Row> rows;

  // MLP (the EMF architecture).
  rows.push_back(Row{"MLP", ml::EvaluateBinary(ml::PredictAll(
                                &context.system->model(), eval.dataset),
                                eval.dataset.labels)});

  // Random forest on flattened pair features.
  {
    ml::RandomForestOptions options;
    options.num_trees = Pick(20, 50, 100);
    ml::RandomForest forest(options);
    forest.Train(train_features, train_labels);
    rows.push_back(Row{"RF", ml::EvaluateBinary(
                                 forest.PredictProba(eval_features),
                                 eval.dataset.labels)});
  }

  // Logistic regression on the same features.
  {
    ml::LogisticRegression logistic;
    logistic.Train(train_features, train_labels);
    rows.push_back(Row{"LR", ml::EvaluateBinary(
                                 logistic.PredictProba(eval_features),
                                 eval.dataset.labels)});
  }

  std::printf("Table 3: classifier performance (train TPC-H, test TPC-DS)\n");
  std::printf("%-12s %10s %8s\n", "Model Type", "Accuracy", "F1");
  for (const Row& row : rows) {
    std::printf("%-12s %10.3f %8.3f\n", row.name, row.matrix.Accuracy(),
                row.matrix.F1());
  }

  std::printf("\nFigure 8: confusion matrices (fractions of the test set)\n");
  for (const Row& row : rows) {
    std::printf("\n[%s]\n%s", row.name, row.matrix.ToString().c_str());
  }

  const bool mlp_wins = rows[0].matrix.F1() > rows[1].matrix.F1() &&
                        rows[0].matrix.F1() > rows[2].matrix.F1();
  std::printf("\nshape check: MLP F1 beats RF and LR -> %s\n",
              mlp_wins ? "yes (matches paper)" : "NO");
  return mlp_wins ? 0 : 1;
}
