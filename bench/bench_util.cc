#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "filters/emf_filter.h"
#include "obs/json.h"
#include "tensor/kernels/kernel_table.h"
#include "obs/trace.h"

namespace geqo::bench {

Scale GetScale() {
  const char* env = std::getenv("GEQO_BENCH_SCALE");
  if (env == nullptr) return Scale::kDefault;
  const std::string value = ToLower(env);
  if (value == "smoke") return Scale::kSmoke;
  if (value == "full") return Scale::kFull;
  return Scale::kDefault;
}

std::string_view ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kDefault:
      return "default";
    case Scale::kFull:
      return "full";
  }
  return "?";
}

size_t Pick(size_t smoke, size_t default_size, size_t full) {
  switch (GetScale()) {
    case Scale::kSmoke:
      return smoke;
    case Scale::kDefault:
      return default_size;
    case Scale::kFull:
      return full;
  }
  return default_size;
}

GeqoSystemOptions StandardOptions(Scale scale) {
  GeqoSystemOptions options;
  const bool full = scale == Scale::kFull;
  options.model.conv1_size = full ? 128 : 64;
  options.model.conv2_size = full ? 128 : 64;
  options.model.fc1_size = full ? 128 : 64;
  options.model.fc2_size = full ? 64 : 32;
  options.model.dropout = 0.3f;
  options.training.epochs = full ? 24 : 15;
  options.synthetic_data.num_base_queries =
      scale == Scale::kSmoke ? 40 : (full ? 400 : 160);
  options.synthetic_data.variants_per_query = 3;
  options.pipeline.emf.threshold = 0.5f;
  return options;
}

BenchContext BuildTrainedSystem(const std::string& tag,
                                std::unique_ptr<Catalog> catalog,
                                GeqoSystemOptions options, uint64_t seed,
                                bool join_free) {
  if (join_free) options.synthetic_data.generator.max_tables = 1;

  BenchContext context;
  context.catalog = std::move(catalog);
  context.system =
      std::make_unique<GeqoSystem>(context.catalog.get(), options);

  const std::string cache_dir = "bench_cache";
  const std::string cache_path = cache_dir + "/" + tag + "_" +
                                 std::string(ScaleName(GetScale())) + ".bin";
  if (std::filesystem::exists(cache_path)) {
    // The snapshot carries the calibrated VMF radius and EMF threshold, so
    // a cache hit needs no recalibration sample. Pre-snapshot cache files
    // fail the magic check and fall through to retraining.
    const Status loaded = context.system->LoadSnapshot(cache_path);
    if (loaded.ok()) {
      context.loaded_from_cache = true;
      std::printf("# model '%s': loaded from %s\n", tag.c_str(),
                  cache_path.c_str());
      return context;
    }
    std::printf("# model '%s': cache load failed (%s); retraining\n",
                tag.c_str(), loaded.ToString().c_str());
  }

  Stopwatch watch;
  // Two generator profiles: the default diverse one plus the narrow
  // collision-heavy profile detection workloads use, so the model sees the
  // same pattern distribution at train and test time (the paper's training
  // corpus likewise comes from the evaluation generator, §5).
  Rng rng(seed);
  LabeledDataOptions diverse = options.synthetic_data;
  auto pairs = BuildLabeledPairs(*context.catalog, diverse, &rng);
  GEQO_CHECK(pairs.ok()) << pairs.status().ToString();
  if (!join_free) {
    LabeledDataOptions narrow = options.synthetic_data;
    narrow.generator.fixed_projection_columns = 2;
    for (const char* table : {"store_sales", "date_dim", "item", "customer",
                              "lineitem", "orders"}) {
      if (context.catalog->FindTable(table) != nullptr) {
        narrow.generator.table_pool.push_back(table);
      }
    }
    auto narrow_pairs = BuildLabeledPairs(*context.catalog, narrow, &rng);
    GEQO_CHECK(narrow_pairs.ok());
    pairs->insert(pairs->end(), narrow_pairs->begin(), narrow_pairs->end());
  }
  auto report = context.system->TrainOnPairs(*pairs);
  GEQO_CHECK(report.ok()) << report.status().ToString();
  context.train_seconds = watch.ElapsedSeconds();
  std::printf("# model '%s': trained in %.1fs (loss %.3f)\n", tag.c_str(),
              context.train_seconds, report->final_epoch_loss);

  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  const Status saved = context.system->SaveSnapshot(cache_path);
  if (!saved.ok()) {
    std::printf("# model '%s': cache save failed (%s)\n", tag.c_str(),
                saved.ToString().c_str());
  }
  return context;
}

BenchContext TpchTrainedSystem(Scale scale) {
  return BuildTrainedSystem("emf_tpch",
                            std::make_unique<Catalog>(MakeTpchCatalog()),
                            StandardOptions(scale), /*seed=*/0xBE9C);
}

ForeignPipeline MakeForeignPipeline(GeqoSystem& system,
                                    std::unique_ptr<Catalog> catalog,
                                    GeqoOptions options) {
  ForeignPipeline foreign;
  foreign.catalog = std::move(catalog);
  foreign.instance_layout = std::make_unique<EncodingLayout>(
      EncodingLayout::FromCatalog(*foreign.catalog));
  // Carry over the calibrated VMF radius and EMF threshold.
  options.vmf.radius = system.pipeline().options().vmf.radius;
  options.emf.threshold = system.pipeline().options().emf.threshold;
  foreign.pipeline = std::make_unique<GeqoPipeline>(
      foreign.catalog.get(), &system.model(), foreign.instance_layout.get(),
      &system.agnostic_layout(), options);
  return foreign;
}

EvalSet MakeEvalSet(const GeqoSystem& system, const Catalog& catalog,
                    size_t num_bases, size_t variants, uint64_t seed) {
  Rng rng(seed);
  LabeledDataOptions options;
  options.num_base_queries = num_bases;
  options.variants_per_query = variants;
  auto pairs = BuildLabeledPairs(catalog, options, &rng);
  GEQO_CHECK(pairs.ok()) << pairs.status().ToString();

  const EncodingLayout foreign_layout = EncodingLayout::FromCatalog(catalog);
  auto dataset =
      EncodeLabeledPairs(*pairs, catalog, foreign_layout,
                         system.agnostic_layout(), system.value_range());
  GEQO_CHECK(dataset.ok()) << dataset.status().ToString();
  return EvalSet{std::move(*pairs), std::move(*dataset)};
}

DetectionWorkload MakeDetectionWorkload(const Catalog& catalog,
                                        size_t num_subexpressions,
                                        size_t num_equivalences,
                                        uint64_t seed) {
  GEQO_CHECK(num_equivalences * 2 <= num_subexpressions);
  Rng rng(seed);
  // Concentrate the workload on a narrow table pool with a fixed output
  // arity so that SF-groups are large, as in the paper's subexpression
  // corpora (Table 1 reports SF TNR of only 0.37: most pairs share an SF
  // signature and must be pruned by the later, smarter filters).
  GeneratorOptions generator_options;
  generator_options.fixed_projection_columns = 2;
  for (const char* table : {"store_sales", "date_dim", "item",
                            "customer", "lineitem", "orders"}) {
    if (catalog.FindTable(table) != nullptr) {
      generator_options.table_pool.push_back(table);
    }
  }
  QueryGenerator generator(&catalog, generator_options);
  Rewriter rewriter(&catalog);

  DetectionWorkload workload;
  const size_t num_bases = num_subexpressions - num_equivalences;
  for (size_t i = 0; i < num_bases; ++i) {
    workload.subexpressions.push_back(generator.Generate(&rng));
  }
  for (size_t i = 0; i < num_equivalences; ++i) {
    auto variant = rewriter.RewriteOnce(workload.subexpressions[i], &rng);
    GEQO_CHECK(variant.ok());
    workload.planted.emplace_back(i, workload.subexpressions.size());
    workload.subexpressions.push_back(*variant);
  }
  return workload;
}

bool ContainsPair(const std::vector<std::pair<size_t, size_t>>& pairs,
                  const std::pair<size_t, size_t>& pair) {
  return std::find(pairs.begin(), pairs.end(), pair) != pairs.end();
}

ml::ConfusionMatrix ScoreDetection(
    const DetectionWorkload& workload,
    const std::vector<std::pair<size_t, size_t>>& detected) {
  ml::ConfusionMatrix matrix;
  std::vector<std::pair<size_t, size_t>> detected_sorted = detected;
  std::vector<std::pair<size_t, size_t>> planted_sorted = workload.planted;
  std::sort(detected_sorted.begin(), detected_sorted.end());
  std::sort(planted_sorted.begin(), planted_sorted.end());
  const size_t n = workload.subexpressions.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const std::pair<size_t, size_t> pair{i, j};
      matrix.Add(std::binary_search(detected_sorted.begin(),
                                    detected_sorted.end(), pair),
                 std::binary_search(planted_sorted.begin(),
                                    planted_sorted.end(), pair));
    }
  }
  return matrix;
}

namespace {

/// Evaluates a model on an encoded labeled dataset.
SsflStudyPoint EvaluatePoint(ml::EmfModel* model,
                             const ml::PairDataset& eval_set) {
  const ml::ConfusionMatrix matrix =
      ml::EvaluateBinary(ml::PredictAll(model, eval_set), eval_set.labels);
  SsflStudyPoint point;
  point.accuracy = matrix.Accuracy();
  point.f1 = matrix.F1();
  return point;
}

std::vector<SsflStudyPoint> RunSsflMode(bool filter_based, Scale scale,
                                        const std::vector<PlanPtr>& workload,
                                        const Catalog& tpcds,
                                        const EncodingLayout& tpcds_layout,
                                        const ml::PairDataset& eval_set) {
  // Degenerate initial model: trained on join-free TPC-H only (§7.3).
  BenchContext context = BuildTrainedSystem(
      "emf_tpch_joinfree", std::make_unique<Catalog>(MakeTpchCatalog()),
      StandardOptions(scale), /*seed=*/0x10f7, /*join_free=*/true);
  GeqoSystem& system = *context.system;

  SsflOptions options;
  options.filter_based_sampling = filter_based;
  options.max_iterations = 1;  // driven one batch at a time from here
  options.sample_batch = Pick(128, 256, 512);
  options.confidence_sample = Pick(100, 300, 1000);
  options.confidence_threshold = 1.01f;  // never stop early: fixed batches
  options.finetune_epochs = Pick(6, 8, 10);
  options.vmf.radius = system.pipeline().options().vmf.radius;
  options.seed = filter_based ? 0xF117E4 : 0x4A4D04;

  ml::TrainOptions finetune_options;
  finetune_options.adam.learning_rate = 5e-4f;  // gentle fine-tuning
  ml::EmfTrainer tuner(&system.model(), finetune_options);
  Ssfl ssfl(&tpcds, &system.model(), &tuner, &tpcds_layout,
            &system.agnostic_layout(), options);

  // Seed the pool with (join-free) pretraining data so fine-tuning augments
  // rather than replaces the model's knowledge (§6).
  {
    Rng seed_rng(0x5EED0);
    LabeledDataOptions seed_options;
    seed_options.num_base_queries = Pick(20, 40, 80);
    seed_options.generator.max_tables = 1;
    auto seed_pairs =
        BuildLabeledPairs(*context.catalog, seed_options, &seed_rng);
    GEQO_CHECK(seed_pairs.ok());
    auto seed_dataset = EncodeLabeledPairs(
        *seed_pairs, *context.catalog, context.system->instance_layout(),
        system.agnostic_layout(), system.value_range());
    GEQO_CHECK(seed_dataset.ok());
    ssfl.SeedTrainingData(*seed_dataset);
  }

  std::vector<SsflStudyPoint> points;
  points.push_back(EvaluatePoint(&system.model(), eval_set));  // untuned

  const size_t iterations = Pick(3, 5, 8);
  size_t cumulative = 0;
  for (size_t iteration = 0; iteration < iterations; ++iteration) {
    auto reports = ssfl.Run(workload, system.value_range());
    GEQO_CHECK(reports.ok()) << reports.status().ToString();
    GEQO_CHECK(!reports->empty());
    const SsflIterationReport& report = reports->back();
    cumulative += report.new_positives + report.new_negatives;
    std::printf("#   %s batch %zu: %zu positives / %zu negatives\n",
                filter_based ? "filter" : "random", iteration + 1,
                report.new_positives, report.new_negatives);

    SsflStudyPoint point = EvaluatePoint(&system.model(), eval_set);
    point.cumulative_samples = cumulative;
    point.sample_seconds = report.sample_seconds;
    point.verify_seconds = report.verify_seconds;
    point.featurize_seconds = report.featurize_seconds;
    point.train_seconds = report.train_seconds;
    points.push_back(point);
  }
  return points;
}

}  // namespace

SsflStudyResult RunSsflStudy(Scale scale) {
  const Catalog tpcds = MakeTpcdsCatalog();
  const EncodingLayout tpcds_layout = EncodingLayout::FromCatalog(tpcds);

  // The evolving workload the model has never seen: TPC-DS with joins.
  const DetectionWorkload detection = MakeDetectionWorkload(
      tpcds, Pick(60, 120, 240), Pick(15, 30, 60), /*seed=*/0x55F1D5);

  // Held-out labeled TPC-DS evaluation set. Any trained system instance can
  // encode it (the agnostic layout is shared); build a throwaway context.
  BenchContext probe = BuildTrainedSystem(
      "emf_tpch_joinfree", std::make_unique<Catalog>(MakeTpchCatalog()),
      StandardOptions(scale), /*seed=*/0x10f7, /*join_free=*/true);
  EvalSet eval = MakeEvalSet(*probe.system, tpcds, Pick(25, 80, 200), 3,
                             /*seed=*/0xE7A19);
  std::printf("# SSFL study: %zu-subexpression TPC-DS workload, "
              "%zu-pair eval set\n",
              detection.subexpressions.size(), eval.dataset.size());

  SsflStudyResult result;
  result.filter_based =
      RunSsflMode(true, scale, detection.subexpressions, tpcds, tpcds_layout,
                  eval.dataset);
  result.random =
      RunSsflMode(false, scale, detection.subexpressions, tpcds, tpcds_layout,
                  eval.dataset);
  return result;
}

void WritePipelineArtifact(const std::string& label,
                           const GeqoResult& result) {
  struct Entry {
    std::string label;
    GeqoResult result;
  };
  static std::vector<Entry> entries;  // harness processes are single-threaded
  entries.push_back(Entry{label, result});

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("runs").BeginArray();
  for (const Entry& entry : entries) {
    json.BeginObject();
    json.Key("label").String(entry.label);
    json.Key("total_pairs")
        .Number(static_cast<uint64_t>(entry.result.total_pairs));
    json.Key("candidates")
        .Number(static_cast<uint64_t>(entry.result.candidates.size()));
    json.Key("equivalences")
        .Number(static_cast<uint64_t>(entry.result.equivalences.size()));
    json.Key("total_seconds").Number(entry.result.total_seconds);
    json.Key("stages").BeginArray();
    for (const StageReport& stage : entry.result.stages) {
      json.BeginObject();
      json.Key("name").String(stage.name);
      json.Key("enabled").Bool(stage.enabled);
      json.Key("pairs_in").Number(static_cast<uint64_t>(stage.pairs_in));
      json.Key("pairs_out").Number(static_cast<uint64_t>(stage.pairs_out));
      json.Key("seconds").Number(stage.seconds);
      json.Key("metrics").BeginObject();
      for (const auto& [name, delta] : stage.metrics) {
        json.Key(name).Number(delta);
      }
      json.EndObject();
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out("BENCH_pipeline.json", std::ios::trunc);
  if (out) out << std::move(json).Finish();
  obs::WriteTraceArtifactsIfEnabled();
}

void WriteServeArtifact(const std::vector<ServeBenchReport>& phases,
                        const std::vector<KernelBenchReport>& kernel_phases,
                        double speedup,
                        const std::vector<ConcurrentServeReport>& concurrent,
                        double concurrent_p99_speedup,
                        const DurabilityBenchReport* durability) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("kernel").BeginObject();
  json.Key("isa").String(kernels::ActiveIsaName());
  json.Key("quant").String(kernels::QuantModeName());
  json.EndObject();
  json.Key("phases").BeginArray();
  for (const ServeBenchReport& phase : phases) {
    json.BeginObject();
    json.Key("label").String(phase.label);
    json.Key("catalog_size").Number(static_cast<uint64_t>(phase.catalog_size));
    json.Key("classes").Number(static_cast<uint64_t>(phase.num_classes));
    json.Key("probes").Number(static_cast<uint64_t>(phase.probes));
    json.Key("verifier_calls").Number(phase.verifier_calls);
    json.Key("memo_hits").Number(phase.memo_hits);
    json.Key("class_shortcuts").Number(phase.class_shortcuts);
    json.Key("memo_hit_rate").Number(phase.memo_hit_rate);
    json.Key("probe_p50_seconds").Number(phase.p50_seconds);
    json.Key("probe_p99_seconds").Number(phase.p99_seconds);
    json.Key("total_seconds").Number(phase.total_seconds);
    json.EndObject();
  }
  json.EndArray();
  if (!kernel_phases.empty()) {
    json.Key("embed_probe").BeginArray();
    for (const KernelBenchReport& phase : kernel_phases) {
      json.BeginObject();
      json.Key("label").String(phase.label);
      json.Key("isa").String(phase.isa);
      json.Key("quant").String(phase.quant);
      json.Key("ops").Number(static_cast<uint64_t>(phase.ops));
      json.Key("seconds").Number(phase.seconds);
      json.Key("ops_per_second").Number(phase.ops_per_second);
      json.EndObject();
    }
    json.EndArray();
    json.Key("embed_probe_speedup").Number(speedup);
  }
  if (!concurrent.empty()) {
    json.Key("concurrent").BeginArray();
    for (const ConcurrentServeReport& report : concurrent) {
      json.BeginObject();
      json.Key("label").String(report.label);
      json.Key("probers").Number(static_cast<uint64_t>(report.probers));
      json.Key("adders").Number(static_cast<uint64_t>(report.adders));
      json.Key("shards").Number(static_cast<uint64_t>(report.num_shards));
      json.Key("verifier_threads")
          .Number(static_cast<uint64_t>(report.verifier_threads));
      json.Key("probes").Number(static_cast<uint64_t>(report.probes));
      json.Key("adds").Number(static_cast<uint64_t>(report.adds));
      json.Key("probe_p50_seconds").Number(report.p50_seconds);
      json.Key("probe_p99_seconds").Number(report.p99_seconds);
      json.Key("wall_seconds").Number(report.wall_seconds);
      json.EndObject();
    }
    json.EndArray();
    json.Key("concurrent_p99_speedup").Number(concurrent_p99_speedup);
  }
  if (durability != nullptr) {
    json.Key("durability").BeginObject();
    json.Key("entries").Number(static_cast<uint64_t>(durability->entries));
    json.Key("wal_records")
        .Number(static_cast<uint64_t>(durability->wal_records));
    json.Key("snapshot_pause_ms").Number(durability->snapshot_pause_ms);
    json.Key("checkpoint_pause_ms").Number(durability->checkpoint_pause_ms);
    json.Key("recovery_replay_ms").Number(durability->recovery_replay_ms);
    json.EndObject();
  }
  json.EndObject();

  std::ofstream out("BENCH_serve.json", std::ios::trunc);
  if (out) out << std::move(json).Finish();
  obs::WriteTraceArtifactsIfEnabled();
}

void WriteE2eArtifact(const std::vector<E2eEngineReport>& engines,
                      double engine_speedup,
                      const std::vector<E2eStreamReport>& streams,
                      double cached_speedup, size_t catalog_entries,
                      size_t catalog_classes, size_t cache_used_bytes,
                      size_t cache_budget_bytes) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("kernel").BeginObject();
  json.Key("isa").String(kernels::ActiveIsaName());
  json.Key("quant").String(kernels::QuantModeName());
  json.EndObject();
  json.Key("engines").BeginArray();
  for (const E2eEngineReport& engine : engines) {
    json.BeginObject();
    json.Key("label").String(engine.label);
    json.Key("queries").Number(static_cast<uint64_t>(engine.queries));
    json.Key("rows").Number(static_cast<uint64_t>(engine.rows));
    json.Key("seconds").Number(engine.seconds);
    json.Key("queries_per_second").Number(engine.queries_per_second);
    json.EndObject();
  }
  json.EndArray();
  json.Key("engine_speedup").Number(engine_speedup);
  json.Key("streams").BeginArray();
  for (const E2eStreamReport& stream : streams) {
    json.BeginObject();
    json.Key("label").String(stream.label);
    json.Key("clients").Number(static_cast<uint64_t>(stream.clients));
    json.Key("queries").Number(static_cast<uint64_t>(stream.queries));
    json.Key("executions").Number(static_cast<uint64_t>(stream.executions));
    json.Key("cache_hits").Number(static_cast<uint64_t>(stream.cache_hits));
    json.Key("query_p50_seconds").Number(stream.p50_seconds);
    json.Key("query_p99_seconds").Number(stream.p99_seconds);
    json.Key("wall_seconds").Number(stream.wall_seconds);
    json.Key("queries_per_second").Number(stream.queries_per_second);
    json.EndObject();
  }
  json.EndArray();
  json.Key("cached_speedup").Number(cached_speedup);
  json.Key("catalog").BeginObject();
  json.Key("entries").Number(static_cast<uint64_t>(catalog_entries));
  json.Key("classes").Number(static_cast<uint64_t>(catalog_classes));
  json.EndObject();
  json.Key("result_cache").BeginObject();
  json.Key("used_bytes").Number(static_cast<uint64_t>(cache_used_bytes));
  json.Key("budget_bytes").Number(static_cast<uint64_t>(cache_budget_bytes));
  json.EndObject();
  json.EndObject();

  std::ofstream out("BENCH_e2e.json", std::ios::trunc);
  if (out) out << std::move(json).Finish();
  obs::WriteTraceArtifactsIfEnabled();
}

void PrintHeader(const std::string& name, const std::string& reproduces) {
  std::printf("================================================================\n");
  std::printf("%s  --  reproduces %s\n", name.c_str(), reproduces.c_str());
  std::printf("scale: %s (set GEQO_BENCH_SCALE=smoke|default|full)\n",
              std::string(ScaleName(GetScale())).c_str());
  std::printf("================================================================\n");
}

}  // namespace geqo::bench
