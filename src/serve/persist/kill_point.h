#pragma once

/// \file kill_point.h
/// Crash injection for the persistence layer's recovery tests. A kill point
/// is a named location on the write path (e.g. "wal-append",
/// "compact-pre-manifest"); when armed, the Nth time execution reaches it
/// the process dies via _exit(137) — no destructors, no stream flushes —
/// emulating SIGKILL at exactly that boundary (137 = 128 + SIGKILL).
///
/// Arming:
///   - env GEQO_PERSIST_KILL_POINT="name" or "name:N" (die on the Nth hit;
///     default 1) — the hook scripts/check.sh's recovery lane uses.
///   - SetKillPoint(name, n) — what tests/persist_test.cc calls in a forked
///     child before driving the store.
///
/// Unarmed, a kill point is one relaxed atomic load — free enough to leave
/// compiled into release binaries, which is the point: the recovery lane
/// crashes the *production* write path, not a test double.

namespace geqo::serve::persist {

/// Dies with _exit(137) when \p name is the armed kill point and this hit
/// exhausts its countdown; otherwise returns immediately.
void KillPoint(const char* name);

/// Arms \p name to fire on its \p hits-th upcoming hit (test entry point;
/// overrides any env arming). nullptr disarms.
void SetKillPoint(const char* name, int hits = 1);

}  // namespace geqo::serve::persist
