#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "plan/plan.h"

/// \file spj.h
/// Flattening of SPJ plans into a join-order-independent normal form:
/// (multiset of table atoms, conjunction of predicates, output list).
/// This form is shared by the verifier, the schema filter, the signature
/// baseline, and the executor.

namespace geqo {

/// \brief One table instance scanned by the plan.
struct TableAtom {
  std::string table;
  std::string alias;

  bool operator==(const TableAtom&) const = default;
};

/// \brief The flattened form of an SPJ subexpression.
struct FlatSpj {
  std::vector<TableAtom> atoms;        ///< in scan (left-to-right) order
  std::vector<Comparison> predicates;  ///< all join + selection conjuncts
  std::vector<OutputColumn> outputs;   ///< the columns the plan returns
  bool has_root_project = false;
};

/// \brief Flattens \p plan into a FlatSpj.
///
/// Supported shape: an optional Project at the root over a tree of Select /
/// inner Join / Scan operators. Outer joins and non-root projections return
/// NotSupported — callers (notably the verifier) treat that as Unknown.
Result<FlatSpj> FlattenSpj(const PlanPtr& plan, const Catalog& catalog);

/// \brief The set of distinct table names scanned by \p plan, sorted.
std::vector<std::string> SortedTableNames(const PlanPtr& plan);

}  // namespace geqo
