#include "analysis/diagnostics.h"

namespace geqo::analysis {

void Report(Diagnostics* out, std::string code, std::string message,
            std::string context) {
  out->push_back(Diagnostic{std::move(code), std::move(message),
                            std::move(context)});
}

bool HasFindings(const Diagnostics& diagnostics) {
  return !diagnostics.empty();
}

bool HasCode(const Diagnostics& diagnostics, std::string_view code) {
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.code == code) return true;
  }
  return false;
}

std::string FormatDiagnostics(const Diagnostics& diagnostics) {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics) {
    out += "[" + diagnostic.code + "] " + diagnostic.message;
    if (!diagnostic.context.empty()) out += " (" + diagnostic.context + ")";
    out += "\n";
  }
  return out;
}

}  // namespace geqo::analysis
