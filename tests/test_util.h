#pragma once

#include "common/check.h"
#include "parser/parser.h"
#include "plan/plan.h"
#include "plan/schema.h"

/// \file test_util.h
/// Shared fixtures: the Figure-1 schema (tables A and B) and parse helpers.

namespace geqo::testing {

/// Catalog matching the paper's running example (Figure 1): tables A and B
/// with joinKey/val plus a payload column each.
inline Catalog MakeFigure1Catalog() {
  Catalog catalog;
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "a", {ColumnDef{"joinkey", ValueType::kInt}, ColumnDef{"val", ValueType::kInt},
            ColumnDef{"x", ValueType::kInt}})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "b", {ColumnDef{"joinkey", ValueType::kInt}, ColumnDef{"val", ValueType::kInt},
            ColumnDef{"y", ValueType::kInt}})));
  GEQO_CHECK_OK(catalog.AddJoinKey(JoinKey{"a", "joinkey", "b", "joinkey"}));
  return catalog;
}

/// Parses \p sql against \p catalog, aborting the test on failure.
inline PlanPtr MustParse(std::string_view sql, const Catalog& catalog) {
  Result<PlanPtr> plan = ParseSql(sql, catalog);
  GEQO_CHECK(plan.ok()) << "parse failed for: " << std::string(sql) << " -- "
                        << plan.status().ToString();
  return *plan;
}

}  // namespace geqo::testing
