#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/trainer.h"
#include "pipeline/baselines.h"
#include "pipeline/geqo.h"
#include "pipeline/ssfl.h"
#include "serve/equivalence_catalog.h"
#include "serve/persist/catalog_store.h"
#include "serve/sharded_catalog.h"
#include "workload/labeled_data.h"

/// \file geqo_system.h
/// High-level facade over the GEqO library: one object that owns the
/// catalog-bound encoding layouts, the EMF model and its trainer, and the
/// detection pipeline. This is the API the examples and most downstream
/// users interact with; the underlying modules remain available for
/// fine-grained control.
///
/// Typical usage:
/// \code
///   geqo::GeqoSystem system(catalog);
///   system.TrainOnSyntheticWorkload(/*seed=*/42);
///   auto result = system.DetectEquivalences(subexpressions);
/// \endcode

namespace geqo {

/// \brief Configuration for a GeqoSystem.
struct GeqoSystemOptions {
  /// Symbol capacity of the db-agnostic layout (§4.2): t01..tNN tables,
  /// c01..cMM columns per table.
  size_t agnostic_tables = 6;
  size_t agnostic_columns_per_table = 8;
  ml::EmfModelOptions model;      ///< input_dim is filled automatically
  ml::TrainOptions training;
  LabeledDataOptions synthetic_data;
  GeqoOptions pipeline;
  ValueRange value_range{0.0, 100.0};
};

/// \brief An assembled GEqO deployment bound to one catalog.
class GeqoSystem {
 public:
  explicit GeqoSystem(const Catalog* catalog,
                      GeqoSystemOptions options = GeqoSystemOptions());

  /// Trains the EMF on synthetic AMOEBA/WeTune-style labeled data generated
  /// over this catalog (§5). Returns the training report.
  Result<ml::TrainReport> TrainOnSyntheticWorkload(uint64_t seed);

  /// Trains on a caller-provided labeled pair set (e.g. pairs labeled by
  /// the verifier on a production workload).
  Result<ml::TrainReport> TrainOnPairs(const std::vector<LabeledPair>& pairs);

  /// GEqO_SET over a workload of subexpressions.
  Result<GeqoResult> DetectEquivalences(const std::vector<PlanPtr>& workload);

  /// GEqO_PAIR for two subexpressions. kEquivalent means proved (or, with
  /// run_verifier disabled, survived the filter cascade), kNotEquivalent
  /// means filter-rejected or refuted, kUnknown means the proof budget ran
  /// out before a verdict.
  Result<EquivalenceVerdict> CheckPair(const PlanPtr& a, const PlanPtr& b);

  /// Runs the semi-supervised feedback loop on \p workload (§6).
  Result<std::vector<SsflIterationReport>> RunSsfl(
      const std::vector<PlanPtr>& workload, SsflOptions options);

  /// Saves / restores the trained deployment as a versioned snapshot:
  /// magic + version, the database-catalog fingerprint, the agnostic layout
  /// shape, the calibrated VMF radius and EMF threshold, and the model
  /// weights. LoadSnapshot fails loudly when the snapshot was produced for
  /// a different database schema, a different layout shape, or by a
  /// different format version — and applies the saved calibration, so a
  /// loaded system probes exactly like the one that saved it.
  Status SaveSnapshot(const std::string& path);
  Status LoadSnapshot(const std::string& path);

  /// Opens an empty online serving catalog (§7.7) wired to this system's
  /// model, layouts, and calibrated pipeline options. The catalog borrows
  /// the system's components: the system must outlive it.
  std::unique_ptr<serve::EquivalenceCatalog> OpenCatalog(
      serve::CatalogOptions options);
  std::unique_ptr<serve::EquivalenceCatalog> OpenCatalog();

  /// Restores a one-shot serving catalog export (GEQOCATG stream) against
  /// this system (see serve::EquivalenceCatalog::ImportSnapshot for the
  /// \p plans contract). For durable serving state use OpenCatalogStore.
  Result<std::unique_ptr<serve::EquivalenceCatalog>> ImportCatalogSnapshot(
      std::istream& is, const std::vector<PlanPtr>& plans);

  /// Opens (creating or recovering) a durable single-catalog store at
  /// \p dir, wired to this system's model, layouts, and calibrated
  /// pipeline options — the replacement for the old save/load-by-path
  /// quartet (see serve::CatalogStore). Borrowing contract as OpenCatalog:
  /// the system must outlive the store.
  Result<std::unique_ptr<serve::CatalogStore>> OpenCatalogStore(
      const std::string& dir, const std::vector<PlanPtr>& plans,
      serve::DurabilityOptions durability = serve::DurabilityOptions());

  /// Opens an empty *sharded* serving catalog (concurrent Probe/Add with an
  /// async verification plane — see serve::ShardedCatalog). The no-argument
  /// overload uses the system's calibrated pipeline options with the sharded
  /// defaults. Same borrowing contract as OpenCatalog.
  std::unique_ptr<serve::ShardedCatalog> OpenShardedCatalog(
      serve::ShardedCatalogOptions options);
  std::unique_ptr<serve::ShardedCatalog> OpenShardedCatalog();

  /// Restores a one-shot sharded catalog export (GEQOSHRD stream) against
  /// this system; \p plans are all entries in global Add order. \p options
  /// supplies the runtime knobs (verifier threads, queue bound) — the
  /// shard count comes from the snapshot. For durable serving state use
  /// OpenShardedCatalogStore.
  Result<std::unique_ptr<serve::ShardedCatalog>> ImportShardedSnapshot(
      std::istream& is, const std::vector<PlanPtr>& plans,
      serve::ShardedCatalogOptions options = serve::ShardedCatalogOptions());

  /// Opens (creating or recovering) a durable sharded-catalog store at
  /// \p dir. \p options.catalog.pipeline is overridden with the system's
  /// calibrated pipeline options. Same borrowing contract as OpenCatalog.
  Result<std::unique_ptr<serve::CatalogStore>> OpenShardedCatalogStore(
      const std::string& dir, const std::vector<PlanPtr>& plans,
      serve::ShardedCatalogOptions options = serve::ShardedCatalogOptions(),
      serve::DurabilityOptions durability = serve::DurabilityOptions());

  /// The component wiring a serve::CatalogStore needs (borrowed from this
  /// system; the system must outlive any store built from it).
  serve::CatalogComponents ServeComponents();

  // Component access for advanced use and benchmarking.
  const Catalog& catalog() const { return *catalog_; }
  const EncodingLayout& instance_layout() const { return instance_layout_; }
  const EncodingLayout& agnostic_layout() const { return agnostic_layout_; }
  ml::EmfModel& model() { return *model_; }
  ml::EmfTrainer& trainer() { return *trainer_; }
  GeqoPipeline& pipeline() { return *pipeline_; }
  const GeqoSystemOptions& options() const { return options_; }
  ValueRange value_range() const { return options_.value_range; }

 private:
  const Catalog* catalog_;
  GeqoSystemOptions options_;
  EncodingLayout instance_layout_;
  EncodingLayout agnostic_layout_;
  std::unique_ptr<ml::EmfModel> model_;
  std::unique_ptr<ml::EmfTrainer> trainer_;
  std::unique_ptr<GeqoPipeline> pipeline_;
};

}  // namespace geqo
