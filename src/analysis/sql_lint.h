#pragma once

#include <string_view>

#include "analysis/diagnostics.h"
#include "plan/schema.h"

/// \file sql_lint.h
/// Lints a workload SQL file: statements are split on ';', parsed against a
/// catalog, and the resulting plans run through the PlanValidator. Contexts
/// carry 1-based line numbers ("line 12"). Lives beside (not inside)
/// geqo_analysis because it needs the parser, which itself depends on
/// geqo_analysis for the post-parse debug validation hook.

namespace geqo::analysis {

/// Lints \p text (the content of a .sql file). `--` comments are ignored;
/// blank statements are skipped. Codes: sql.parse for statements the SPJ
/// dialect rejects, plus every plan.* validator code.
Diagnostics LintSqlText(std::string_view text, const Catalog& catalog);

}  // namespace geqo::analysis
