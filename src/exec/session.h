#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/database.h"
#include "exec/pipeline.h"
#include "exec/row_set.h"

/// \file session.h
/// The batched execution API of the vectorized engine.
///
/// `ExecutionSession` is the entry point: it binds a Database and the
/// execution options (morsel size), compiles plans once, and hands back
/// `QueryExecution` objects that stream columnar batches:
///
///     ExecutionSession session(&database);
///     GEQO_ASSIGN_OR_RETURN(auto query, session.Prepare(plan));
///     while (true) {
///       GEQO_ASSIGN_OR_RETURN(const exec::Batch* batch, query->NextBatch());
///       if (batch == nullptr) break;  // drained
///       ...consume columns...
///     }
///
/// `Materialize()` (or the one-shot `ExecutionSession::Execute`) converts the
/// remaining stream into the legacy row-oriented RowSet, which stays the
/// interchange currency with the caching and catalog layers. The legacy
/// `Executor` remains in the tree as the row-at-a-time parity oracle; new
/// code should go through this API.

namespace geqo::exec {

/// \brief Execution knobs, fixed per session.
struct SessionOptions {
  /// Morsel size in source rows. Values outside [1, 65536] are clamped.
  size_t morsel_rows = 4096;
};

/// \brief One compiled query, ready to stream batches.
///
/// Pipelines run on the first NextBatch()/Materialize() call; results are
/// buffered (the final pipeline's batches, in morsel order) and then
/// streamed. Not thread-safe; create one per query per thread.
class QueryExecution {
 public:
  /// The next result batch, or nullptr when the stream is drained. The
  /// first call executes the query's pipelines.
  Result<const Batch*> NextBatch();

  /// Drains the remaining stream into a legacy RowSet (all batches when
  /// called before any NextBatch()). Column names follow the legacy
  /// executor's convention: alias.column, bare names for computed columns.
  Result<RowSet> Materialize();

  const std::vector<std::string>& column_names() const {
    return query_->column_names();
  }

  /// Counters of the executed query; fully populated once the pipelines
  /// have run.
  const ExecMetrics& metrics() const { return metrics_; }

 private:
  friend class ExecutionSession;
  QueryExecution(std::unique_ptr<CompiledQuery> query, size_t morsel_rows,
                 double compile_seconds)
      : query_(std::move(query)), morsel_rows_(morsel_rows) {
    metrics_.compile_seconds = compile_seconds;
  }

  Status EnsureRan();

  std::unique_ptr<CompiledQuery> query_;
  size_t morsel_rows_;
  bool ran_ = false;
  std::vector<Batch> batches_;
  size_t cursor_ = 0;
  ExecMetrics metrics_;
};

/// \brief A handle on a Database through the vectorized engine.
class ExecutionSession {
 public:
  explicit ExecutionSession(const Database* database,
                            SessionOptions options = SessionOptions{});

  /// Compiles \p plan into a streamable execution. Fails eagerly on unknown
  /// tables and unsupported operators, like the legacy executor.
  Result<std::unique_ptr<QueryExecution>> Prepare(const PlanPtr& plan) const;

  /// One-shot convenience: Prepare + run + Materialize. When \p metrics is
  /// non-null it receives the execution's counters.
  Result<RowSet> Execute(const PlanPtr& plan,
                         ExecMetrics* metrics = nullptr) const;

  const Database& database() const { return *database_; }
  size_t morsel_rows() const { return morsel_rows_; }

 private:
  const Database* database_;
  size_t morsel_rows_;
};

}  // namespace geqo::exec
