#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace geqo::obs {

std::string JsonEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back() != 0) out_ += ',';
    need_comma_.back() = 1;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  need_comma_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  need_comma_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Separate();
  if (!std::isfinite(value)) {
    out_ += '0';
    return *this;
  }
  char buf[40];
  // %.17g round-trips doubles; trim the common integral case for readability.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t value) {
  Separate();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  return *this;
}

std::string JsonWriter::Finish() && { return std::move(out_); }

namespace {

/// Strict single-pass JSON parser used only for validation.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  std::optional<std::string> Run() {
    SkipWhitespace();
    if (auto error = ParseValue()) return error;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return std::nullopt;
  }

 private:
  std::optional<std::string> Error(const std::string& what) const {
    return what + " at offset " + std::to_string(pos_);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  std::optional<std::string> ParseValue() {
    if (++depth_ > 256) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    std::optional<std::string> result;
    switch (Peek()) {
      case '{':
        result = ParseObject();
        break;
      case '[':
        result = ParseArray();
        break;
      case '"':
        result = ParseString();
        break;
      case 't':
        result = ParseLiteral("true");
        break;
      case 'f':
        result = ParseLiteral("false");
        break;
      case 'n':
        result = ParseLiteral("null");
        break;
      default:
        result = ParseNumber();
    }
    --depth_;
    return result;
  }

  std::optional<std::string> ParseLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) return Error("invalid literal");
    pos_ += len;
    return std::nullopt;
  }

  std::optional<std::string> ParseObject() {
    ++pos_;  // '{'
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return std::nullopt;
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      if (auto error = ParseString()) return error;
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Error("expected ':'");
      ++pos_;
      SkipWhitespace();
      if (auto error = ParseValue()) return error;
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return std::nullopt;
      }
      return Error("expected ',' or '}'");
    }
  }

  std::optional<std::string> ParseArray() {
    ++pos_;  // '['
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return std::nullopt;
    }
    for (;;) {
      SkipWhitespace();
      if (auto error = ParseValue()) return error;
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return std::nullopt;
      }
      return Error("expected ',' or ']'");
    }
  }

  std::optional<std::string> ParseString() {
    ++pos_;  // '"'
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return std::nullopt;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) break;
        const char escape = text_[pos_];
        if (escape == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              return Error("invalid \\u escape");
            }
          }
        } else if (std::strchr("\"\\/bfnrt", escape) == nullptr) {
          return Error("invalid escape character");
        }
      }
      ++pos_;
    }
    return Error("unterminated string");
  }

  std::optional<std::string> ParseNumber() {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit expected after '.'");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit expected in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return pos_ > start ? std::nullopt : Error("invalid number");
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<std::string> ValidateJson(std::string_view text) {
  return Validator(text).Run();
}

}  // namespace geqo::obs
