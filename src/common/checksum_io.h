#pragma once

#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"

/// \file checksum_io.h
/// Whole-payload integrity framing for the v2 snapshot formats: the payload
/// bytes are followed by an 8-byte FNV-1a checksum over everything before
/// it. Truncation, bit flips anywhere in the payload, and trailing garbage
/// all surface as one loud checksum mismatch instead of whatever the
/// structural parser happens to trip over (or, worse, silently accepts).

namespace geqo::io {

/// Checksum of a payload, as stored in the footer.
inline uint64_t PayloadChecksum(const std::string& payload) {
  return HashBytes(payload.data(), payload.size());
}

/// Writes \p payload followed by its checksum footer.
inline Status WriteChecksummed(std::ostream& os, const std::string& payload,
                               const std::string& context) {
  const uint64_t checksum = PayloadChecksum(payload);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!os.good()) return Status::IoError("write failed while saving " + context);
  return Status::OK();
}

/// Consumes the remainder of \p is and validates the checksum footer.
/// Returns the payload (footer stripped) on success.
inline Result<std::string> ReadChecksummed(std::istream& is,
                                           const std::string& context) {
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(uint64_t)) {
    return Status::InvalidArgument(
        context + ": truncated (shorter than the checksum footer)");
  }
  const size_t payload_size = bytes.size() - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload_size, sizeof(stored));
  const uint64_t computed =
      HashBytes(bytes.data(), payload_size);
  if (stored != computed) {
    return Status::InvalidArgument(
        context +
        ": checksum mismatch — the file is corrupt, truncated, or carries "
        "trailing bytes");
  }
  bytes.resize(payload_size);
  return bytes;
}

}  // namespace geqo::io
