#include "ann/hnsw.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <istream>
#include <ostream>
#include <queue>
#include <string>
#include <unordered_set>

#include "common/binary_io.h"
#include "common/format_magic.h"
#include "obs/metrics.h"

namespace geqo::ann {
namespace {

constexpr uint64_t kHnswMagic = io::kHnswMagic;        // "GEQOHNSW"
constexpr uint64_t kHnswEndMagic = io::kHnswEndMagic;  // "HNSWEND!"
constexpr uint64_t kHnswVersion = io::kHnswVersion;

}  // namespace

HnswIndex::HnswIndex(size_t dim, HnswOptions options)
    : dim_(dim),
      options_(options),
      level_multiplier_(1.0 /
                        std::log(static_cast<double>(options.max_connections))),
      rng_(options.seed) {
  GEQO_CHECK(dim_ > 0);
  GEQO_CHECK(options_.max_connections >= 2);
}

float HnswIndex::Distance(const float* a, const float* b) const {
  if (obs::MetricsEnabled()) {
    pending_distances_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::sqrt(ops::SquaredDistance(a, b, dim_));
}

void HnswIndex::FoldMetrics() const {
  if (!obs::MetricsEnabled()) return;
  const uint64_t distances = pending_distances_.exchange(0);
  const uint64_t hops = pending_hops_.exchange(0);
  auto& registry = obs::MetricsRegistry::Global();
  if (distances > 0) {
    registry.GetCounter("hnsw.distance_computations").Add(distances);
  }
  if (hops > 0) registry.GetCounter("hnsw.hops").Add(hops);
}

int HnswIndex::RandomLevel() {
  const double u = std::max(rng_.NextDouble(), 1e-12);
  return static_cast<int>(-std::log(u) * level_multiplier_);
}

size_t HnswIndex::Add(const std::vector<float>& vector) {
  GEQO_CHECK(vector.size() == dim_);
  return Add(vector.data());
}

size_t HnswIndex::Add(const float* vector) {
  const auto id = static_cast<uint32_t>(vectors_.size());
  vectors_.emplace_back(vector, vector + dim_);
  const int level = RandomLevel();
  Node node;
  node.level = level;
  node.neighbors.resize(static_cast<size_t>(level) + 1);
  nodes_.push_back(std::move(node));

  if (id == 0) {
    max_level_ = level;
    entry_point_ = 0;
    return id;
  }

  const float* query = vectors_[id].data();
  uint32_t entry = entry_point_;
  // Greedy descent through layers above the new node's level.
  for (int layer = max_level_; layer > level; --layer) {
    entry = GreedySearch(query, entry, layer);
  }
  // Insert into each layer from min(level, max_level_) down to 0.
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    const std::vector<Neighbor> candidates =
        SearchLayer(query, entry, options_.ef_construction, layer);
    const size_t max_links = layer == 0 ? options_.max_connections * 2
                                        : options_.max_connections;
    Connect(id, candidates, layer, max_links);
    if (!candidates.empty()) entry = static_cast<uint32_t>(candidates[0].id);
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = id;
  }
  FoldMetrics();
  return id;
}

uint32_t HnswIndex::GreedySearch(const float* query, uint32_t entry,
                                 int layer) const {
  uint32_t current = entry;
  float current_distance = Distance(query, vectors_[current].data());
  bool improved = true;
  while (improved) {
    improved = false;
    if (obs::MetricsEnabled()) {
      pending_hops_.fetch_add(1, std::memory_order_relaxed);
    }
    for (const uint32_t neighbor :
         nodes_[current].neighbors[static_cast<size_t>(layer)]) {
      const float d = Distance(query, vectors_[neighbor].data());
      if (d < current_distance) {
        current = neighbor;
        current_distance = d;
        improved = true;
      }
    }
  }
  return current;
}

std::vector<Neighbor> HnswIndex::SearchLayer(const float* query, uint32_t entry,
                                             size_t ef, int layer) const {
  // Classic beam search: `candidates` is a min-heap of frontier nodes,
  // `best` a max-heap of the ef closest results found so far.
  const auto further = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;  // max-heap by distance
  };
  const auto closer = [](const Neighbor& a, const Neighbor& b) {
    return a.distance > b.distance;  // min-heap by distance
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(further)> best(
      further);
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(closer)>
      candidates(closer);
  std::unordered_set<uint32_t> visited;

  const float entry_distance = Distance(query, vectors_[entry].data());
  best.push(Neighbor{entry, entry_distance});
  candidates.push(Neighbor{entry, entry_distance});
  visited.insert(entry);

  while (!candidates.empty()) {
    const Neighbor current = candidates.top();
    candidates.pop();
    if (best.size() >= ef && current.distance > best.top().distance) break;
    if (obs::MetricsEnabled()) {
      pending_hops_.fetch_add(1, std::memory_order_relaxed);
    }
    for (const uint32_t neighbor :
         nodes_[current.id].neighbors[static_cast<size_t>(layer)]) {
      if (!visited.insert(neighbor).second) continue;
      const float d = Distance(query, vectors_[neighbor].data());
      if (best.size() < ef || d < best.top().distance) {
        best.push(Neighbor{neighbor, d});
        candidates.push(Neighbor{neighbor, d});
        if (best.size() > ef) best.pop();
      }
    }
  }

  std::vector<Neighbor> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  // Closest first; ties broken by id (heap pop order among equal distances
  // depends on insertion interleaving, so a final sort makes it stable).
  std::sort(out.begin(), out.end());
  return out;
}

void HnswIndex::Connect(uint32_t id, const std::vector<Neighbor>& candidates,
                        int layer, size_t max_links) {
  auto& my_links = nodes_[id].neighbors[static_cast<size_t>(layer)];
  for (const Neighbor& candidate : candidates) {
    if (my_links.size() >= max_links) break;
    if (candidate.id == id) continue;
    my_links.push_back(static_cast<uint32_t>(candidate.id));
    // Bidirectional link; prune the neighbor's list if it overflows by
    // keeping its max_links closest connections.
    auto& back_links =
        nodes_[candidate.id].neighbors[static_cast<size_t>(layer)];
    back_links.push_back(id);
    if (back_links.size() > max_links) {
      const float* anchor = vectors_[candidate.id].data();
      std::sort(back_links.begin(), back_links.end(),
                [&](uint32_t a, uint32_t b) {
                  const float da = Distance(anchor, vectors_[a].data());
                  const float db = Distance(anchor, vectors_[b].data());
                  if (da != db) return da < db;
                  return a < b;  // deterministic prune among equidistant links
                });
      back_links.resize(max_links);
    }
  }
}

std::vector<Neighbor> HnswIndex::SearchKnn(const float* query, size_t k,
                                           size_t ef) const {
  if (vectors_.empty()) return {};
  if (ef == 0) ef = std::max(options_.ef_search, k);
  uint32_t entry = entry_point_;
  for (int layer = max_level_; layer > 0; --layer) {
    entry = GreedySearch(query, entry, layer);
  }
  std::vector<Neighbor> result = SearchLayer(query, entry, ef, /*layer=*/0);
  if (result.size() > k) result.resize(k);
  FoldMetrics();
  return result;
}

std::vector<Neighbor> HnswIndex::SearchRadius(const float* query, float radius,
                                              size_t ef) const {
  if (vectors_.empty()) return {};
  if (ef == 0) ef = options_.ef_search;
  uint32_t entry = entry_point_;
  for (int layer = max_level_; layer > 0; --layer) {
    entry = GreedySearch(query, entry, layer);
  }
  std::vector<Neighbor> beam = SearchLayer(query, entry, ef, /*layer=*/0);
  std::vector<Neighbor> out;
  for (const Neighbor& neighbor : beam) {
    if (neighbor.distance <= radius) out.push_back(neighbor);
  }
  FoldMetrics();
  return out;
}

Status HnswIndex::Serialize(std::ostream& os) const {
  io::BinaryWriter writer(os, "HNSW index");
  writer.U64(kHnswMagic);
  writer.U64(kHnswVersion);
  writer.U64(dim_);
  writer.U64(options_.max_connections);
  writer.U64(options_.ef_construction);
  writer.U64(options_.ef_search);
  writer.U64(options_.seed);
  // The rng's stream position makes post-load Add assign the same levels the
  // uninterrupted index would have.
  for (const uint64_t word : rng_.SaveState()) writer.U64(word);
  writer.I64(max_level_);
  writer.U64(entry_point_);
  writer.U64(vectors_.size());
  for (const auto& vector : vectors_) {
    writer.Bytes(vector.data(), vector.size() * sizeof(float));
  }
  for (const Node& node : nodes_) {
    writer.I64(node.level);
    for (const auto& links : node.neighbors) {
      writer.U64(links.size());
      writer.Bytes(links.data(), links.size() * sizeof(uint32_t));
    }
  }
  writer.U64(kHnswEndMagic);
  return writer.status();
}

Result<std::unique_ptr<HnswIndex>> HnswIndex::Deserialize(std::istream& is) {
  io::BinaryReader reader(is, "HNSW index");
  const uint64_t magic = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (magic != kHnswMagic) {
    return Status::InvalidArgument("HNSW index: bad magic (not an index blob)");
  }
  const uint64_t version = reader.U64();
  if (reader.ok() && version != kHnswVersion) {
    return Status::InvalidArgument(
        "HNSW index: unsupported version " + std::to_string(version) +
        " (expected " + std::to_string(kHnswVersion) + ")");
  }
  const uint64_t dim = reader.U64();
  HnswOptions options;
  options.max_connections = reader.U64();
  options.ef_construction = reader.U64();
  options.ef_search = reader.U64();
  options.seed = reader.U64();
  std::array<uint64_t, 4> rng_state;
  for (auto& word : rng_state) word = reader.U64();
  const int64_t max_level = reader.I64();
  const uint64_t entry_point = reader.U64();
  const uint64_t count = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (dim == 0 || options.max_connections < 2) {
    return Status::InvalidArgument("HNSW index: invalid header parameters");
  }

  auto index = std::make_unique<HnswIndex>(dim, options);
  index->rng_.RestoreState(rng_state);
  index->max_level_ = static_cast<int>(max_level);
  index->entry_point_ = static_cast<uint32_t>(entry_point);
  index->vectors_.resize(count);
  for (auto& vector : index->vectors_) {
    vector.resize(dim);
    reader.Bytes(vector.data(), dim * sizeof(float));
    GEQO_RETURN_NOT_OK(reader.status());
  }
  index->nodes_.resize(count);
  for (Node& node : index->nodes_) {
    node.level = static_cast<int>(reader.I64());
    GEQO_RETURN_NOT_OK(reader.status());
    if (node.level < 0 || node.level > index->max_level_) {
      return Status::InvalidArgument("HNSW index: node level out of range");
    }
    node.neighbors.resize(static_cast<size_t>(node.level) + 1);
    for (auto& links : node.neighbors) {
      const uint64_t n_links = reader.U64();
      GEQO_RETURN_NOT_OK(reader.status());
      if (n_links > count) {
        return Status::InvalidArgument("HNSW index: neighbor count exceeds "
                                       "element count (corrupt graph)");
      }
      links.resize(n_links);
      reader.Bytes(links.data(), n_links * sizeof(uint32_t));
      GEQO_RETURN_NOT_OK(reader.status());
      for (const uint32_t link : links) {
        if (link >= count) {
          return Status::InvalidArgument(
              "HNSW index: neighbor id out of range (corrupt graph)");
        }
      }
    }
  }
  if (reader.U64() != kHnswEndMagic) {
    reader.Fail("missing end marker");
  }
  GEQO_RETURN_NOT_OK(reader.status());
  if (count == 0) {
    if (index->max_level_ != -1) {
      return Status::InvalidArgument("HNSW index: empty index with entry");
    }
  } else {
    if (entry_point >= count) {
      return Status::InvalidArgument("HNSW index: entry point out of range");
    }
    if (index->nodes_[entry_point].level != index->max_level_) {
      return Status::InvalidArgument(
          "HNSW index: entry point level does not match max level");
    }
  }
  return index;
}

std::vector<Neighbor> HnswIndex::ExactRadius(const float* query,
                                             float radius) const {
  std::vector<Neighbor> out;
  for (size_t id = 0; id < vectors_.size(); ++id) {
    const float d = Distance(query, vectors_[id].data());
    if (d <= radius) out.push_back(Neighbor{id, d});
  }
  std::sort(out.begin(), out.end());
  FoldMetrics();
  return out;
}

}  // namespace geqo::ann
