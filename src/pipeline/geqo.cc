#include "pipeline/geqo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/plan_validator.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/stage_scope.h"

namespace geqo {

Status GeqoOptions::Validate() const {
  if (!std::isfinite(vmf.radius) || vmf.radius < 0.0f) {
    return Status::InvalidArgument(
        StrFormat("vmf.radius must be finite and non-negative, got %g",
                  static_cast<double>(vmf.radius)));
  }
  if (!std::isfinite(emf.threshold) || emf.threshold < 0.0f ||
      emf.threshold > 1.0f) {
    return Status::InvalidArgument(
        StrFormat("emf.threshold must be within [0, 1], got %g",
                  static_cast<double>(emf.threshold)));
  }
  if (emf.batch_size == 0) {
    return Status::InvalidArgument("emf.batch_size must be positive");
  }
  if (vmf.hnsw.max_connections < 2) {
    return Status::InvalidArgument(
        StrFormat("vmf.hnsw.max_connections must be at least 2, got %zu",
                  vmf.hnsw.max_connections));
  }
  if (vmf.hnsw.ef_construction == 0 || vmf.hnsw.ef_search == 0) {
    return Status::InvalidArgument(
        "vmf.hnsw beam widths (ef_construction, ef_search) must be positive");
  }
  if (verifier.max_bijections == 0) {
    return Status::InvalidArgument("verifier.max_bijections must be positive");
  }
  return Status::OK();
}

std::string StageReport::FormatTable(const std::vector<StageReport>& stages) {
  std::string out;
  out += "  stage     pairs_in   pairs_out     seconds\n";
  char line[128];
  for (const StageReport& stage : stages) {
    std::snprintf(line, sizeof(line), "  %-7s %10zu  %10zu  %10.4f%s\n",
                  stage.name.c_str(), stage.pairs_in, stage.pairs_out,
                  stage.seconds, stage.enabled ? "" : "  (off)");
    out += line;
  }
  return out;
}

const StageReport* GeqoResult::FindStage(std::string_view name) const {
  for (const StageReport& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

Status GeqoPipeline::UpdateOptions(const GeqoOptions& options) {
  GEQO_RETURN_NOT_OK(options.Validate());
  options_ = options;
  options_status_ = Status::OK();
  // Rebuild the verifier under the new VerifierOptions without losing the
  // cumulative work accounting benches report across calibration runs.
  SpesVerifier fresh(catalog_, options.verifier);
  fresh.MergeStats(verifier_.stats());
  verifier_ = std::move(fresh);
  return Status::OK();
}

Result<GeqoResult> GeqoPipeline::DetectEquivalences(
    const std::vector<PlanPtr>& workload, ValueRange value_range) {
  GEQO_RETURN_NOT_OK(options_status_);
  obs::Span run_span("DetectEquivalences");
  if (analysis::DebugValidationEnabled()) {
    for (const PlanPtr& plan : workload) {
      analysis::DebugValidatePlan(plan, *catalog_,
                                  "pipeline.DetectEquivalences");
    }
  }
  GeqoResult result;
  const size_t n = workload.size();
  result.total_pairs = n * (n - 1) / 2;

  // Stage 0: instance encoding, parallel across plans (see EncodeWorkload).
  // Not a pair filter: the funnel passes through unchanged.
  StageReport encode_report = MakeStage("encode", /*enabled=*/true);
  encode_report.pairs_in = result.total_pairs;
  encode_report.pairs_out = result.total_pairs;
  StageScope encode_scope("stage.encode");
  GEQO_ASSIGN_OR_RETURN(
      std::vector<EncodedPlan> encoded,
      EncodeWorkload(workload, *instance_layout_, *catalog_, value_range));
  encode_scope.Finish(&encode_report);
  result.stages.push_back(std::move(encode_report));

  // Stage 1: schema filter (or one group containing everything).
  StageReport sf_report = MakeStage("sf", options_.use_sf);
  StageScope sf_scope("stage.sf");
  std::vector<SfGroup> groups;
  if (options_.use_sf) {
    GEQO_ASSIGN_OR_RETURN(groups, SchemaFilter(workload, *catalog_));
  } else {
    SfGroup everything;
    for (size_t i = 0; i < n; ++i) everything.members.push_back(i);
    groups.push_back(std::move(everything));
  }
  sf_report.pairs_in = result.total_pairs;
  sf_report.pairs_out = CountIntraGroupPairs(groups);
  sf_scope.Finish(&sf_report);
  const size_t sf_pairs_out = sf_report.pairs_out;
  result.stages.push_back(std::move(sf_report));

  // Stage 2: vector matching filter, parallel across SF-groups. Groups are
  // independent (each builds its own HNSW index over its own group encoding;
  // model embedding is re-entrant), and each group's pair list is computed
  // deterministically, so only concatenation order could vary — the sort
  // below removes even that.
  StageReport vmf_report = MakeStage("vmf", options_.use_vmf);
  StageScope vmf_scope("stage.vmf");
  std::vector<std::pair<size_t, size_t>> candidates;
  if (options_.use_vmf) {
    VmfOptions vmf_options = options_.vmf;
    // Without the SF, "groups" can reference arbitrarily many tables; fall
    // back to the lossy group encoding (see AgnosticConverter::Create).
    if (!options_.use_sf) vmf_options.truncate_overflow = true;
    const VectorMatchingFilter vmf(model_, instance_layout_, agnostic_layout_,
                                   vmf_options);
    std::vector<std::vector<std::pair<size_t, size_t>>> group_pairs(
        groups.size());
    std::vector<Status> group_status(groups.size());
    ParallelFor(0, groups.size(), [&](size_t g) {
      Result<std::vector<std::pair<size_t, size_t>>> pairs =
          vmf.CandidatePairs(groups[g].members, encoded);
      if (pairs.ok()) {
        group_pairs[g] = std::move(*pairs);
      } else {
        group_status[g] = pairs.status();
      }
    });
    for (const Status& status : group_status) {
      if (!status.ok()) return status;
    }
    for (std::vector<std::pair<size_t, size_t>>& pairs : group_pairs) {
      candidates.insert(candidates.end(), pairs.begin(), pairs.end());
    }
  } else {
    for (const SfGroup& group : groups) {
      for (size_t i = 0; i < group.members.size(); ++i) {
        for (size_t j = i + 1; j < group.members.size(); ++j) {
          candidates.emplace_back(group.members[i], group.members[j]);
        }
      }
    }
  }
  // Canonical output order: sorted by workload index pair, independent of
  // grouping, group iteration order, and thread count. Later stages preserve
  // relative order, so candidates/equivalences stay sorted from here on.
  std::sort(candidates.begin(), candidates.end());
  vmf_report.pairs_in = sf_pairs_out;
  vmf_report.pairs_out = candidates.size();
  vmf_scope.Finish(&vmf_report);
  const size_t vmf_pairs_out = vmf_report.pairs_out;
  result.stages.push_back(std::move(vmf_report));

  // Stage 3: equivalence model filter (batches sharded across workers inside
  // EquivalenceModelFilter::Scores).
  StageReport emf_report = MakeStage("emf", options_.use_emf);
  StageScope emf_scope("stage.emf");
  if (options_.use_emf && !candidates.empty()) {
    const EquivalenceModelFilter emf(model_, instance_layout_,
                                     agnostic_layout_, options_.emf);
    GEQO_ASSIGN_OR_RETURN(candidates, emf.Filter(candidates, encoded));
  }
  emf_report.pairs_in = vmf_pairs_out;
  emf_report.pairs_out = candidates.size();
  emf_scope.Finish(&emf_report);
  result.stages.push_back(std::move(emf_report));
  result.candidates = candidates;

  // Stage 4: automated verification of the surviving candidates — the
  // dominant cost (§2.2). Pairs are verified in parallel with one
  // SpesVerifier per worker (CheckEquivalence mutates internal stats, so
  // instances cannot be shared); verdicts land in a per-pair slot and the
  // surviving list is assembled serially in candidate order, keeping output
  // and accounting identical across thread counts.
  StageReport verify_report = MakeStage("verify", options_.run_verifier);
  StageScope verify_scope("stage.verify");
  if (options_.run_verifier && !candidates.empty()) {
    std::vector<uint8_t> verdicts(candidates.size(), 0);
    const size_t num_workers = ThreadPool::GlobalThreads();
    std::vector<SpesVerifier> verifiers;
    verifiers.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      verifiers.emplace_back(catalog_, options_.verifier);
    }
    ParallelForWithWorker(
        0, candidates.size(),
        [&](size_t worker, size_t p) {
          const auto& [i, j] = candidates[p];
          verdicts[p] =
              verifiers[worker].CheckEquivalence(workload[i], workload[j]) ==
              EquivalenceVerdict::kEquivalent;
        },
        /*grain=*/1);  // verification cost is highly skewed: steal per pair
    // Merge the per-worker accounting into the pipeline's verifier and fold
    // this run's total into the registry once, at the quiesce point.
    const VerifierStats before_merge = verifier_.stats();
    for (const SpesVerifier& verifier : verifiers) {
      verifier_.MergeStats(verifier.stats());
    }
    FoldVerifierStatsToMetrics(verifier_.stats().DeltaSince(before_merge));
    for (size_t p = 0; p < candidates.size(); ++p) {
      if (verdicts[p]) result.equivalences.push_back(candidates[p]);
    }
  } else {
    result.equivalences = candidates;
  }
  verify_report.pairs_in = candidates.size();
  verify_report.pairs_out = result.equivalences.size();
  verify_scope.Finish(&verify_report);
  result.stages.push_back(std::move(verify_report));

  // The headline total is the sum of the measured stage spans — a separate
  // wall clock can disagree with the per-stage sum under thread contention.
  result.total_seconds = 0.0;
  for (const StageReport& stage : result.stages) {
    result.total_seconds += stage.seconds;
  }
  return result;
}

Result<EquivalenceVerdict> GeqoPipeline::CheckPair(const PlanPtr& a,
                                                   const PlanPtr& b,
                                                   ValueRange value_range) {
  GEQO_RETURN_NOT_OK(options_status_);
  obs::Span span("CheckPair");
  analysis::DebugValidatePlan(a, *catalog_, "pipeline.CheckPair/a");
  analysis::DebugValidatePlan(b, *catalog_, "pipeline.CheckPair/b");
  // The pairwise special case of Equation 2: each enabled filter may
  // short-circuit to "not equivalent"; survivors are verified. Filter
  // rejections are reported as kNotEquivalent — filters are approximate, but
  // that is exactly the contract DetectEquivalences implements, and the
  // tri-state keeps "refuted by proof" distinguishable wherever the verifier
  // actually ran.
  if (options_.use_sf) {
    GEQO_ASSIGN_OR_RETURN(const bool pass, SchemaFilterPair(a, b, *catalog_));
    if (!pass) return EquivalenceVerdict::kNotEquivalent;
  }
  GEQO_ASSIGN_OR_RETURN(
      std::vector<EncodedPlan> encoded,
      EncodeWorkload({a, b}, *instance_layout_, *catalog_, value_range));
  if (options_.use_vmf) {
    // Mirror the set path: without the SF there is no single-schema
    // guarantee, so use the lossy group encoding rather than erroring.
    VmfOptions vmf_options = options_.vmf;
    if (!options_.use_sf) vmf_options.truncate_overflow = true;
    const VectorMatchingFilter vmf(model_, instance_layout_, agnostic_layout_,
                                   vmf_options);
    GEQO_ASSIGN_OR_RETURN(const auto pairs,
                          vmf.CandidatePairs({0, 1}, encoded));
    if (pairs.empty()) return EquivalenceVerdict::kNotEquivalent;
  }
  if (options_.use_emf) {
    const EquivalenceModelFilter emf(model_, instance_layout_,
                                     agnostic_layout_, options_.emf);
    GEQO_ASSIGN_OR_RETURN(const auto scores, emf.Scores({{0, 1}}, encoded));
    if (scores[0] < options_.emf.threshold) {
      return EquivalenceVerdict::kNotEquivalent;
    }
  }
  // Without the verifier, surviving every enabled filter is the pipeline's
  // (approximate) notion of equivalence — mirroring DetectEquivalences,
  // which reports raw filter output as equivalences in that configuration.
  if (!options_.run_verifier) return EquivalenceVerdict::kEquivalent;
  const VerifierStats before = verifier_.stats();
  const EquivalenceVerdict verdict = verifier_.CheckEquivalence(a, b);
  FoldVerifierStatsToMetrics(verifier_.stats().DeltaSince(before));
  return verdict;
}

}  // namespace geqo
