#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

/// \file thread_pool.h
/// A persistent worker pool plus ParallelFor/ParallelMap helpers used by the
/// hot paths of the filter cascade (encoding, VMF candidate generation, EMF
/// batch scoring, verification). See DESIGN.md "Concurrency model" for the
/// thread-safety contract each parallel section relies on.
///
/// Scheduling: a parallel region carves [begin, end) into chunks claimed off
/// a shared atomic cursor, so fast workers steal leftover chunks from slow
/// ones (dynamic load balancing without per-thread deques). The calling
/// thread participates, so a pool of size N runs regions on N-1 spawned
/// workers plus the caller. Nested ParallelFor calls run inline on their
/// worker — there is no recursive fan-out, hence no deadlock.
///
/// The global pool's size defaults to std::thread::hardware_concurrency()
/// and can be overridden with the GEQO_THREADS environment variable or
/// programmatically with ThreadPool::SetGlobalThreads (benches/tests).

namespace geqo {

/// \brief A fixed-size pool of persistent worker threads.
class ThreadPool {
 public:
  /// Creates a pool where parallel regions run on \p num_threads threads
  /// (num_threads - 1 spawned workers plus the calling thread). A size of 1
  /// runs everything inline on the caller.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads participating in a parallel region (spawned workers + caller).
  size_t num_threads() const { return workers_.size() + 1; }

  /// \brief fn(worker, index): \p worker is a dense id < num_threads(),
  /// stable for the duration of one ParallelFor call — use it to index
  /// per-worker scratch state (e.g. per-thread SpesVerifier instances).
  using WorkerFn = std::function<void(size_t worker, size_t index)>;

  /// Runs fn(worker, i) for every i in [begin, end); blocks until all
  /// iterations finish. The first exception thrown by \p fn is rethrown on
  /// the calling thread (remaining chunks are abandoned). \p grain is the
  /// chunk size claimed per cursor bump (0 = auto). Safe to call from inside
  /// a running region: nested calls execute inline, serially.
  void ParallelFor(size_t begin, size_t end, const WorkerFn& fn,
                   size_t grain = 0);

  /// The process-wide pool (created on first use; sized from GEQO_THREADS
  /// or hardware concurrency). Returned as shared_ptr so a concurrent
  /// SetGlobalThreads cannot destroy a pool mid-region.
  static std::shared_ptr<ThreadPool> GlobalPool();
  /// Largest GEQO_THREADS accepted, as a multiple of hardware concurrency.
  /// Oversubscription beyond this only adds context-switch thrash (and a
  /// typo'd "GEQO_THREADS=1000000" would try to spawn a million threads).
  static constexpr size_t kMaxHardwareMultiple = 8;
  /// Parses a GEQO_THREADS-style override against \p hardware_concurrency.
  /// The whole string must be a positive decimal integer — trailing garbage
  /// ("8x") and non-numeric values are rejected, not prefix-parsed. Values
  /// above kMaxHardwareMultiple x hardware are clamped with a warning.
  /// Returns 0 for rejected input (callers fall back to the hardware
  /// default). Exposed for tests.
  static size_t ParseThreadCount(const char* value,
                                 size_t hardware_concurrency);
  /// Replaces the global pool with one of \p num_threads threads (clamped to
  /// >= 1). In-flight regions keep their old pool alive until they finish.
  static void SetGlobalThreads(size_t num_threads);
  /// Size of the global pool.
  static size_t GlobalThreads();

 private:
  struct ForState;
  void WorkerLoop();
  /// Claims chunks off \p state until the range is exhausted.
  static void Drain(ForState* state);

  std::vector<std::thread> workers_;
  /// Guards the task queue; ranks above the shard locks because parallel
  /// regions are launched from under them (EMF scoring inside a probe).
  Mutex mu_{analysis::LockRank::kThreadPool};
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ GEQO_GUARDED_BY(mu_);
  bool shutdown_ GEQO_GUARDED_BY(mu_) = false;
};

/// Runs fn(i) for i in [begin, end) on the global pool.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, Fn&& fn, size_t grain = 0) {
  static_assert(std::is_invocable_v<Fn&, size_t>,
                "ParallelFor callback must accept an index");
  ThreadPool::GlobalPool()->ParallelFor(
      begin, end, [&fn](size_t, size_t i) { fn(i); }, grain);
}

/// Runs fn(worker, i) for i in [begin, end) on the global pool; \p worker is
/// a dense per-region thread id for indexing per-worker state.
template <typename Fn>
void ParallelForWithWorker(size_t begin, size_t end, Fn&& fn,
                           size_t grain = 0) {
  static_assert(std::is_invocable_v<Fn&, size_t, size_t>,
                "ParallelForWithWorker callback must accept (worker, index)");
  ThreadPool::GlobalPool()->ParallelFor(
      begin, end, [&fn](size_t worker, size_t i) { fn(worker, i); }, grain);
}

/// out[i] = fn(i) for i in [0, n), computed in parallel. The element type
/// must be default-constructible (slots are filled in place).
template <typename Fn>
auto ParallelMap(size_t n, Fn&& fn) {
  using T = std::decay_t<std::invoke_result_t<Fn&, size_t>>;
  std::vector<T> out(n);
  ParallelFor(0, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace geqo
