#include "filters/emf_filter.h"

#include <algorithm>

#include "ml/trainer.h"

namespace geqo {

Result<std::vector<float>> EquivalenceModelFilter::Scores(
    const std::vector<std::pair<size_t, size_t>>& pairs,
    const std::vector<EncodedPlan>& instance_encoded) const {
  std::vector<float> scores;
  scores.reserve(pairs.size());
  std::vector<EncodedPlan> lhs_converted;
  std::vector<EncodedPlan> rhs_converted;

  for (size_t begin = 0; begin < pairs.size(); begin += options_.batch_size) {
    const size_t end = std::min(begin + options_.batch_size, pairs.size());
    lhs_converted.clear();
    rhs_converted.clear();
    for (size_t p = begin; p < end; ++p) {
      const EncodedPlan& a = instance_encoded[pairs[p].first];
      const EncodedPlan& b = instance_encoded[pairs[p].second];
      // Pairwise fast conversion (§4.2.1): masks over the two members only.
      GEQO_ASSIGN_OR_RETURN(
          AgnosticConverter converter,
          AgnosticConverter::Create(instance_layout_, agnostic_layout_,
                                    {&a, &b}));
      lhs_converted.push_back(converter.Convert(a));
      rhs_converted.push_back(converter.Convert(b));
    }
    std::vector<const EncodedPlan*> lhs_views;
    std::vector<const EncodedPlan*> rhs_views;
    for (size_t i = 0; i < lhs_converted.size(); ++i) {
      lhs_views.push_back(&lhs_converted[i]);
      rhs_views.push_back(&rhs_converted[i]);
    }
    const Tensor probs = model_->PredictProba(lhs_views, rhs_views);
    for (size_t i = 0; i < probs.rows(); ++i) scores.push_back(probs.At(i, 0));
  }
  return scores;
}

Result<std::vector<std::pair<size_t, size_t>>> EquivalenceModelFilter::Filter(
    const std::vector<std::pair<size_t, size_t>>& pairs,
    const std::vector<EncodedPlan>& instance_encoded) const {
  GEQO_ASSIGN_OR_RETURN(std::vector<float> scores,
                        Scores(pairs, instance_encoded));
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (scores[i] >= options_.threshold) out.push_back(pairs[i]);
  }
  return out;
}

Result<float> CalibrateEmfThreshold(ml::EmfModel* model,
                                    const ml::PairDataset& dataset,
                                    double target_recall) {
  const std::vector<float> probabilities = ml::PredictAll(model, dataset);
  std::vector<float> positive_scores;
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.labels[i] > 0.5f) positive_scores.push_back(probabilities[i]);
  }
  if (positive_scores.empty()) {
    return Status::InvalidArgument(
        "EMF calibration requires positive training pairs");
  }
  std::sort(positive_scores.begin(), positive_scores.end());
  const size_t index = std::min(
      positive_scores.size() - 1,
      static_cast<size_t>((1.0 - target_recall) *
                          static_cast<double>(positive_scores.size())));
  const float threshold = positive_scores[index] * 0.9f;  // safety margin
  return std::clamp(threshold, 0.02f, 0.5f);
}

}  // namespace geqo
