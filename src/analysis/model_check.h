#pragma once

#include "analysis/shape_checker.h"
#include "common/status.h"
#include "ml/emf_model.h"

/// \file model_check.h
/// Header-only bridge from a live ml::EmfModel to the generic shape checker.
/// Kept out of the geqo_analysis library so that library depends only on
/// plan/encode — callers of this header (core, tests) already link geqo_ml.

namespace geqo::analysis {

/// The model's state dict as named shapes.
inline std::vector<NamedShape> ModelStateShapes(ml::EmfModel& model) {
  std::vector<NamedShape> shapes;
  for (const auto& [name, tensor] : model.State()) {
    shapes.push_back(NamedShape{name, tensor->rows(), tensor->cols()});
  }
  return shapes;
}

/// Proves every layer of \p model shape-compatible (including against its
/// configured input_dim) before a training or inference call; a violation
/// comes back as one InvalidArgument carrying the named diagnostics instead
/// of a crash deep inside MatMul.
inline Status CheckModelShapes(ml::EmfModel& model) {
  const Diagnostics diagnostics = CheckEmfStateShapes(
      ModelStateShapes(model), model.options().input_dim);
  if (diagnostics.empty()) return Status::OK();
  return Status::InvalidArgument("EMF model shape check failed:\n" +
                                 FormatDiagnostics(diagnostics));
}

}  // namespace geqo::analysis
