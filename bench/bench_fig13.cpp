/// \file bench_fig13.cpp
/// Reproduces Figure 13 (§7.5): end-to-end comparison of GEqO against SPES
/// (the AV applied to every pair), signature-based detection, and
/// optimizer-based detection, over TPC-DS datasets with increasing numbers
/// of planted equivalences.
///
/// Paper shapes to reproduce:
///  (a) GEqO's true-positive count tracks SPES closely (TPR ~0.88-0.93 vs
///      1.0) while signature and optimizer detection find ~2x fewer;
///  (b) SPES is ~200x more expensive than everything else;
///  (c) signature/optimizer runtimes are ~flat; GEqO's rises gently with
///      the number of equivalences (it verifies more candidates);
///  (d) per detected equivalence, GEqO costs about what the heuristics do.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "pipeline/baselines.h"

using namespace geqo;
using namespace geqo::bench;

namespace {

struct MethodResult {
  size_t true_positives = 0;
  double seconds = 0.0;         ///< measured (modeled for AV-based methods)
};

size_t CountTruePositives(const std::vector<std::pair<size_t, size_t>>& found,
                          const std::vector<std::pair<size_t, size_t>>& truth) {
  size_t hits = 0;
  for (const auto& pair : truth) hits += ContainsPair(found, pair);
  return hits;
}

}  // namespace

int main() {
  PrintHeader("bench_fig13",
              "Figure 13: GEqO vs SPES vs signature vs optimizer");
  BenchContext context = TpchTrainedSystem(GetScale());
  const Catalog tpcds = MakeTpcdsCatalog();

  const size_t n = Pick(60, 140, 317);
  const std::vector<size_t> equivalence_counts =
      GetScale() == Scale::kFull
          ? std::vector<size_t>{8, 16, 32, 64, 128}
          : (GetScale() == Scale::kSmoke ? std::vector<size_t>{8}
                                         : std::vector<size_t>{8, 16, 32});
  const size_t datasets_per_count = Pick(1, 2, 5);

  std::printf("datasets: %zu subexpressions (%zu pairs) x %zu repetitions "
              "per equivalence count\n",
              n, n * (n - 1) / 2, datasets_per_count);
  std::printf("AV times are modeled with the %.0f ms SPES invocation price "
              "(see bench_util.h); other columns are measured.\n\n",
              kSpesInvocationOverheadSeconds * 1e3);

  std::printf("%-8s | %-21s | %-21s | %-21s | %-21s\n", "#equiv",
              "GEqO  (TP, s, s/eq)", "SPES  (TP, s, s/eq)",
              "signature (TP, s)", "optimizer (TP, s)");

  bool shapes_hold = true;
  for (const size_t equivalences : equivalence_counts) {
    MethodResult geqo_total;
    MethodResult spes_total;
    MethodResult signature_total;
    MethodResult optimizer_total;
    size_t truth_total = 0;

    for (size_t repetition = 0; repetition < datasets_per_count;
         ++repetition) {
      const DetectionWorkload workload = MakeDetectionWorkload(
          tpcds, n, equivalences,
          /*seed=*/0xF16013 + equivalences * 101 + repetition);

      // SPES: verify everything; its output is the ground truth (§7.5).
      GeqoOptions spes_options;
      spes_options.use_sf = false;
      spes_options.use_vmf = false;
      spes_options.use_emf = false;
      ForeignPipeline spes = MakeForeignPipeline(
          *context.system, std::make_unique<Catalog>(MakeTpcdsCatalog()),
          spes_options);
      Stopwatch watch;
      auto spes_result = spes.pipeline->DetectEquivalences(
          workload.subexpressions, context.system->value_range());
      GEQO_CHECK(spes_result.ok());
      const auto& truth = spes_result->equivalences;
      truth_total += truth.size();
      spes_total.true_positives += truth.size();
      spes_total.seconds +=
          ModeledAvSeconds(watch.ElapsedSeconds(), workload.TotalPairs());

      // GEqO with all filters.
      ForeignPipeline geqo = MakeForeignPipeline(
          *context.system, std::make_unique<Catalog>(MakeTpcdsCatalog()),
          GeqoOptions());
      watch.Reset();
      auto geqo_result = geqo.pipeline->DetectEquivalences(
          workload.subexpressions, context.system->value_range());
      GEQO_CHECK(geqo_result.ok());
      geqo_total.true_positives +=
          CountTruePositives(geqo_result->equivalences, truth);
      geqo_total.seconds += ModeledAvSeconds(
          watch.ElapsedSeconds(), geqo_result->candidates.size());
      WritePipelineArtifact("fig13/geqo", *geqo_result);

      // Signature baseline.
      watch.Reset();
      auto signature_pairs =
          SignatureEquivalences(workload.subexpressions, tpcds);
      GEQO_CHECK(signature_pairs.ok());
      signature_total.seconds += watch.ElapsedSeconds();
      signature_total.true_positives +=
          CountTruePositives(*signature_pairs, truth);

      // Optimizer baseline.
      watch.Reset();
      auto optimizer_pairs =
          OptimizerEquivalences(workload.subexpressions, tpcds);
      GEQO_CHECK(optimizer_pairs.ok());
      optimizer_total.seconds += watch.ElapsedSeconds();
      optimizer_total.true_positives +=
          CountTruePositives(*optimizer_pairs, truth);
    }

    const double inv = 1.0 / static_cast<double>(datasets_per_count);
    const double truth_avg = static_cast<double>(truth_total) * inv;
    const auto per_equivalence = [&](const MethodResult& method) {
      return method.true_positives == 0
                 ? 0.0
                 : method.seconds /
                       static_cast<double>(method.true_positives);
    };
    std::printf(
        "%-8zu | %6.1f %7.2f %6.3f | %6.1f %7.1f %6.2f | %6.1f %8.3f     | "
        "%6.1f %8.3f\n",
        equivalences, static_cast<double>(geqo_total.true_positives) * inv,
        geqo_total.seconds * inv, per_equivalence(geqo_total),
        truth_avg, spes_total.seconds * inv, per_equivalence(spes_total),
        static_cast<double>(signature_total.true_positives) * inv,
        signature_total.seconds * inv,
        static_cast<double>(optimizer_total.true_positives) * inv,
        optimizer_total.seconds * inv);

    shapes_hold &= geqo_total.true_positives >= optimizer_total.true_positives;
    shapes_hold &=
        optimizer_total.true_positives >= signature_total.true_positives;
    shapes_hold &= spes_total.seconds > 10.0 * geqo_total.seconds;
  }

  std::printf("\nshape check: signature <= optimizer <= GEqO <= SPES on "
              "recall, and SPES >10x slower than GEqO -> %s\n",
              shapes_hold ? "yes (matches paper)" : "NO");
  return shapes_hold ? 0 : 1;
}
