#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

/// \file tokenizer.h
/// SQL tokenizer for the SPJ dialect understood by geqo::ParseSql.

namespace geqo {

enum class TokenKind : uint8_t {
  kIdentifier,  ///< table/column/alias names; keywords are identifiers too
  kInteger,
  kFloat,
  kString,    ///< 'single-quoted'
  kSymbol,    ///< punctuation / operators, stored as text
  kEndOfInput,
};

/// \brief A lexed token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEndOfInput;
  std::string text;   ///< identifier lower-cased; symbols verbatim
  size_t offset = 0;  ///< byte offset into the original SQL

  bool IsKeyword(std::string_view keyword) const {
    return kind == TokenKind::kIdentifier && text == keyword;
  }
  bool IsSymbol(std::string_view symbol) const {
    return kind == TokenKind::kSymbol && text == symbol;
  }
};

/// \brief Tokenizes \p sql. Identifiers and keywords are lower-cased; string
/// literal contents are preserved verbatim. Returns ParseError on stray
/// characters or unterminated strings.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace geqo
