#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "tensor/kernels/kernel_table.h"
#include "tensor/tensor.h"

/// Kernel-dispatch tests: the scalar table must reproduce the historical
/// tensor.cc arithmetic bit-for-bit (the forced-GEQO_ISA=scalar CI lane
/// depends on it), the AVX2 table must agree with scalar within a small
/// reassociation tolerance on float reductions and exactly on elementwise /
/// integer kernels, and both must be correct across odd lengths and
/// unaligned bases (SIMD tail + misalignment handling).

namespace geqo::kernels {
namespace {

/// Sizes straddling every tail case: below one vector, exact multiples of
/// 8/16/32, and off-by-one on both sides.
const size_t kSizes[] = {0,  1,  2,  3,  7,  8,  9,  15, 16, 17,
                         24, 31, 32, 33, 63, 64, 65, 100, 127, 257};

std::vector<float> RandomFloats(size_t n, Rng* rng) {
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng->NextGaussian());
  return out;
}

/// Tolerance for reassociated float sums: proportional to the sum of
/// absolute terms (computed in double), with a floor for near-zero results.
float SumTolerance(double abs_sum) {
  return static_cast<float>(abs_sum * 1e-6 + 1e-6);
}

/// Restores the entry ISA when a test forces tables.
class IsaGuard {
 public:
  IsaGuard() : saved_(ActiveIsa()) {}
  ~IsaGuard() { SetIsa(saved_); }

 private:
  Isa saved_;
};

TEST(KernelTableTest, ScalarMatchesReferenceBitwise) {
  Rng rng(11);
  const KernelTable& scalar = ScalarTable();
  for (const size_t n : kSizes) {
    const std::vector<float> a = RandomFloats(n, &rng);
    const std::vector<float> b = RandomFloats(n, &rng);

    float ref_dot = 0.0f;
    for (size_t i = 0; i < n; ++i) ref_dot += a[i] * b[i];
    EXPECT_EQ(scalar.dot(a.data(), b.data(), n), ref_dot) << "n=" << n;

    float ref_sq = 0.0f;
    for (size_t i = 0; i < n; ++i) {
      const float d = a[i] - b[i];
      ref_sq += d * d;
    }
    EXPECT_EQ(scalar.squared_distance(a.data(), b.data(), n), ref_sq)
        << "n=" << n;

    std::vector<float> y = b;
    std::vector<float> ref_y = b;
    const float alpha = 0.37f;
    scalar.axpy(alpha, a.data(), y.data(), n);
    for (size_t i = 0; i < n; ++i) ref_y[i] += alpha * a[i];
    EXPECT_EQ(y, ref_y) << "n=" << n;
  }
}

TEST(KernelTableTest, Avx2MatchesScalarWithinTolerance) {
  const KernelTable* avx2 = Avx2TableOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this build/host";
  const KernelTable& scalar = ScalarTable();
  Rng rng(12);
  for (const size_t n : kSizes) {
    const std::vector<float> a = RandomFloats(n, &rng);
    const std::vector<float> b = RandomFloats(n, &rng);

    double abs_dot = 0.0;
    for (size_t i = 0; i < n; ++i) {
      abs_dot += std::fabs(static_cast<double>(a[i]) * b[i]);
    }
    EXPECT_NEAR(avx2->dot(a.data(), b.data(), n),
                scalar.dot(a.data(), b.data(), n), SumTolerance(abs_dot))
        << "n=" << n;

    double abs_sq = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      abs_sq += d * d;
    }
    EXPECT_NEAR(avx2->squared_distance(a.data(), b.data(), n),
                scalar.squared_distance(a.data(), b.data(), n),
                SumTolerance(abs_sq))
        << "n=" << n;

    // axpy: per-element, one FMA rounding vs mul+add — within 1 ULP each.
    std::vector<float> y_avx = b;
    std::vector<float> y_scalar = b;
    avx2->axpy(1.7f, a.data(), y_avx.data(), n);
    scalar.axpy(1.7f, a.data(), y_scalar.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y_avx[i], y_scalar[i], std::fabs(y_scalar[i]) * 1e-6 + 1e-7)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelTableTest, ElementwiseKernelsAreBitIdenticalAcrossTables) {
  const KernelTable* avx2 = Avx2TableOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this build/host";
  const KernelTable& scalar = ScalarTable();
  Rng rng(13);
  for (const size_t n : kSizes) {
    const std::vector<float> src = RandomFloats(n, &rng);
    const std::vector<float> base = RandomFloats(n, &rng);

    for (int op = 0; op < 4; ++op) {
      std::vector<float> d_avx = base;
      std::vector<float> d_scalar = base;
      switch (op) {
        case 0:
          avx2->add(d_avx.data(), src.data(), n);
          scalar.add(d_scalar.data(), src.data(), n);
          break;
        case 1:
          avx2->sub(d_avx.data(), src.data(), n);
          scalar.sub(d_scalar.data(), src.data(), n);
          break;
        case 2:
          avx2->mul(d_avx.data(), src.data(), n);
          scalar.mul(d_scalar.data(), src.data(), n);
          break;
        default:
          avx2->scale(d_avx.data(), -2.5f, n);
          scalar.scale(d_scalar.data(), -2.5f, n);
          break;
      }
      EXPECT_EQ(d_avx, d_scalar) << "op=" << op << " n=" << n;
    }
  }
}

TEST(KernelTableTest, DotI8IsExactAcrossTables) {
  const KernelTable* avx2 = Avx2TableOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this build/host";
  const KernelTable& scalar = ScalarTable();
  Rng rng(14);
  for (const size_t n : kSizes) {
    std::vector<int8_t> a(n);
    std::vector<int8_t> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int8_t>(rng.Uniform(255)) - 127;
      b[i] = static_cast<int8_t>(rng.Uniform(255)) - 127;
    }
    EXPECT_EQ(avx2->dot_i8(a.data(), b.data(), n),
              scalar.dot_i8(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(KernelTableTest, Sq8DistanceMatchesDecodedFloatDistance) {
  const KernelTable& scalar = ScalarTable();
  const KernelTable* avx2 = Avx2TableOrNull();
  Rng rng(15);
  for (const size_t n : kSizes) {
    const std::vector<float> query = RandomFloats(n, &rng);
    std::vector<float> range_min(n);
    std::vector<float> scale(n);
    std::vector<uint8_t> codes(n);
    for (size_t i = 0; i < n; ++i) {
      range_min[i] = static_cast<float>(rng.NextGaussian());
      scale[i] = 0.01f + 0.05f * static_cast<float>(rng.NextFloat());
      codes[i] = static_cast<uint8_t>(rng.Uniform(256));
    }
    // t = query - min; decoded vector = min + scale*code.
    std::vector<float> t(n);
    double ref = 0.0;
    for (size_t i = 0; i < n; ++i) {
      t[i] = query[i] - range_min[i];
      const double decoded = range_min[i] + scale[i] * codes[i];
      const double d = query[i] - decoded;
      ref += d * d;
    }
    const float got_scalar =
        scalar.sq8_distance(t.data(), scale.data(), codes.data(), n);
    EXPECT_NEAR(got_scalar, ref, ref * 1e-5 + 1e-5) << "n=" << n;
    if (avx2 != nullptr) {
      const float got_avx2 =
          avx2->sq8_distance(t.data(), scale.data(), codes.data(), n);
      EXPECT_NEAR(got_avx2, got_scalar, ref * 1e-5 + 1e-5) << "n=" << n;
    }
  }
}

TEST(KernelTableTest, F64ExecutorKernelsAreBitIdenticalAcrossTables) {
  // The vectorized query executor's f64 ops are elementwise (no
  // reassociation), so scalar and AVX2 must agree bit-for-bit — query
  // results must not depend on GEQO_ISA.
  const KernelTable* avx2 = Avx2TableOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this build/host";
  const KernelTable& scalar = ScalarTable();
  Rng rng(77);
  for (const size_t n : kSizes) {
    AlignedVector<double> a(n);
    AlignedVector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.NextGaussian() * 100.0;
      b[i] = rng.NextGaussian() * 100.0 + (i % 3 == 0 ? 1.0 : 0.0);
      if (b[i] == 0.0) b[i] = 1.0;  // div kernel contract: no zero divisors
    }
    const auto check = [&](void (*s_op)(double*, const double*, size_t),
                           void (*v_op)(double*, const double*, size_t),
                           const char* name) {
      AlignedVector<double> s = a;
      AlignedVector<double> v = a;
      s_op(s.data(), b.data(), n);
      v_op(v.data(), b.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(s[i], v[i]) << name << " n=" << n << " i=" << i;
      }
    };
    check(scalar.add_f64, avx2->add_f64, "add_f64");
    check(scalar.sub_f64, avx2->sub_f64, "sub_f64");
    check(scalar.mul_f64, avx2->mul_f64, "mul_f64");
    check(scalar.div_f64, avx2->div_f64, "div_f64");

    AlignedVector<double> fill_s(n, 0.0);
    AlignedVector<double> fill_v(n, 1.0);
    scalar.fill_f64(fill_s.data(), 42.5, n);
    avx2->fill_f64(fill_v.data(), 42.5, n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(fill_s[i], fill_v[i]) << "fill_f64 n=" << n << " i=" << i;
    }
  }
}

TEST(KernelTableTest, CmpSelectF64MatchesScalarOnEveryOp) {
  const KernelTable* avx2 = Avx2TableOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this build/host";
  const KernelTable& scalar = ScalarTable();
  Rng rng(78);
  for (const size_t n : kSizes) {
    AlignedVector<double> a(n);
    AlignedVector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      // Small integer domain: plenty of exact ties for ==, <=, >=.
      a[i] = static_cast<double>(rng.Uniform(8));
      b[i] = static_cast<double>(rng.Uniform(8));
    }
    for (int op = 0; op < 6; ++op) {
      AlignedVector<uint32_t> s_out(n);
      AlignedVector<uint32_t> v_out(n);
      const size_t s_n = scalar.cmp_select_f64(op, a.data(), b.data(),
                                               s_out.data(), n);
      const size_t v_n =
          avx2->cmp_select_f64(op, a.data(), b.data(), v_out.data(), n);
      ASSERT_EQ(s_n, v_n) << "op=" << op << " n=" << n;
      for (size_t i = 0; i < s_n; ++i) {
        ASSERT_EQ(s_out[i], v_out[i]) << "op=" << op << " n=" << n;
      }
      // Selected indices must be strictly ascending (the executor's
      // selection-vector invariant).
      for (size_t i = 1; i < s_n; ++i) ASSERT_LT(s_out[i - 1], s_out[i]);
    }
  }
}

TEST(KernelTableTest, UnalignedBasesAreHandled) {
  const KernelTable* avx2 = Avx2TableOrNull();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this build/host";
  const KernelTable& scalar = ScalarTable();
  Rng rng(16);
  const size_t n = 67;
  // Carve operands at every offset within one 8-float vector, so loads start
  // at every possible misalignment relative to the 32-byte boundary.
  const std::vector<float> pool = RandomFloats(n + 16, &rng);
  for (size_t offset_a = 0; offset_a < 8; ++offset_a) {
    for (size_t offset_b = 0; offset_b < 8; ++offset_b) {
      const float* a = pool.data() + offset_a;
      const float* b = pool.data() + offset_b + 8;
      double abs_dot = 0.0;
      for (size_t i = 0; i < n; ++i) {
        abs_dot += std::fabs(static_cast<double>(a[i]) * b[i]);
      }
      EXPECT_NEAR(avx2->dot(a, b, n), scalar.dot(a, b, n),
                  SumTolerance(abs_dot))
          << "offsets " << offset_a << "," << offset_b;
    }
  }
}

TEST(KernelTableTest, MatMulTransposeVariantsAgreeAcrossIsas) {
  if (Avx2TableOrNull() == nullptr) {
    GTEST_SKIP() << "AVX2 unavailable on this build/host";
  }
  IsaGuard guard;
  Rng rng(17);
  // Odd shapes on purpose: every variant exercises tails.
  const Tensor a = Tensor::Randn(13, 21, 1.0f, &rng);
  const Tensor b = Tensor::Randn(21, 9, 1.0f, &rng);
  const Tensor at = ops::Transpose(a);
  const Tensor bt = ops::Transpose(b);

  struct Variant {
    const Tensor* lhs;
    const Tensor* rhs;
    bool ta;
    bool tb;
  };
  const Variant variants[] = {{&a, &b, false, false},
                              {&a, &bt, false, true},
                              {&at, &b, true, false},
                              {&at, &bt, true, true}};
  for (const Variant& variant : variants) {
    ASSERT_TRUE(SetIsa(Isa::kScalar));
    const Tensor scalar_out =
        ops::MatMul(*variant.lhs, *variant.rhs, variant.ta, variant.tb);
    ASSERT_TRUE(SetIsa(Isa::kAvx2));
    const Tensor avx2_out =
        ops::MatMul(*variant.lhs, *variant.rhs, variant.ta, variant.tb);
    ASSERT_EQ(scalar_out.rows(), avx2_out.rows());
    ASSERT_EQ(scalar_out.cols(), avx2_out.cols());
    for (size_t i = 0; i < scalar_out.size(); ++i) {
      EXPECT_NEAR(avx2_out.values()[i], scalar_out.values()[i],
                  std::fabs(scalar_out.values()[i]) * 1e-5 + 1e-5)
          << "ta=" << variant.ta << " tb=" << variant.tb << " i=" << i;
    }
  }
}

TEST(KernelTableTest, QuantizedMatMulApproximatesExact) {
  IsaGuard guard;
  Rng rng(18);
  const Tensor x = Tensor::Randn(12, 40, 1.0f, &rng);
  const Tensor w = Tensor::Randn(17, 40, 0.5f, &rng);
  const Tensor exact = ops::MatMul(x, w, false, true);
  const Tensor quant = ops::MatMulNTSq8(x, w);
  ASSERT_EQ(exact.rows(), quant.rows());
  ASSERT_EQ(exact.cols(), quant.cols());
  double max_abs = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(double{exact.values()[i]}));
  }
  for (size_t i = 0; i < exact.size(); ++i) {
    // int8 symmetric quantization of both operands: ~1% of the row maxima.
    EXPECT_NEAR(quant.values()[i], exact.values()[i], max_abs * 0.05 + 1e-3)
        << "i=" << i;
  }
  // The int8 path itself is table-independent: identical bits across ISAs.
  if (Avx2TableOrNull() != nullptr) {
    ASSERT_TRUE(SetIsa(Isa::kScalar));
    const Tensor quant_scalar = ops::MatMulNTSq8(x, w);
    ASSERT_TRUE(SetIsa(Isa::kAvx2));
    const Tensor quant_avx2 = ops::MatMulNTSq8(x, w);
    for (size_t i = 0; i < quant_scalar.size(); ++i) {
      EXPECT_EQ(quant_scalar.values()[i], quant_avx2.values()[i]) << "i=" << i;
    }
  }
}

TEST(KernelTableTest, IsaSpecParsing) {
  Isa isa = Isa::kScalar;
  EXPECT_TRUE(ResolveIsaSpec("scalar", &isa));
  EXPECT_EQ(isa, Isa::kScalar);
  EXPECT_TRUE(ResolveIsaSpec("avx2", &isa));
  EXPECT_EQ(isa, Isa::kAvx2);
  EXPECT_TRUE(ResolveIsaSpec("auto", &isa));
  EXPECT_EQ(isa,
            Avx2TableOrNull() != nullptr ? Isa::kAvx2 : Isa::kScalar);
  EXPECT_FALSE(ResolveIsaSpec("sse9", &isa));
  EXPECT_FALSE(ResolveIsaSpec("", &isa));
}

TEST(KernelTableTest, SetIsaSwitchesTheActiveTable) {
  IsaGuard guard;
  ASSERT_TRUE(SetIsa(Isa::kScalar));
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_STREQ(ActiveIsaName(), "scalar");
  EXPECT_STREQ(DispatchCounterName(), "kernel.dispatch.scalar");
  if (Avx2TableOrNull() != nullptr) {
    ASSERT_TRUE(SetIsa(Isa::kAvx2));
    EXPECT_EQ(ActiveIsa(), Isa::kAvx2);
    EXPECT_STREQ(ActiveIsaName(), "avx2");
    EXPECT_STREQ(DispatchCounterName(), "kernel.dispatch.avx2");
  } else {
    EXPECT_FALSE(SetIsa(Isa::kAvx2));
    EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  }
}

TEST(KernelTableTest, QuantModeSwitch) {
  const bool saved = QuantEnabled();
  SetQuantMode(true);
  EXPECT_TRUE(QuantEnabled());
  EXPECT_STREQ(QuantModeName(), "sq8");
  SetQuantMode(false);
  EXPECT_FALSE(QuantEnabled());
  EXPECT_STREQ(QuantModeName(), "f32");
  SetQuantMode(saved);
}

TEST(AlignmentTest, TensorBuffersAreKernelAligned) {
  static_assert(kKernelAlignment == 32, "AVX2 vectors are 32 bytes");
  Rng rng(19);
  for (const size_t cols : {1u, 3u, 8u, 17u, 64u}) {
    const Tensor t = Tensor::Randn(5, cols, 1.0f, &rng);
    EXPECT_TRUE(IsKernelAligned(t.data())) << "cols=" << cols;
  }
  AlignedVector<float> v(123);
  EXPECT_TRUE(IsKernelAligned(v.data()));
  AlignedVector<uint8_t> codes(77);
  EXPECT_TRUE(IsKernelAligned(codes.data()));
}

TEST(AlignmentTest, AlignedStrideRoundsUpToWholeBlocks) {
  EXPECT_EQ(AlignedStride(1, sizeof(float)), 8u);
  EXPECT_EQ(AlignedStride(8, sizeof(float)), 8u);
  EXPECT_EQ(AlignedStride(9, sizeof(float)), 16u);
  EXPECT_EQ(AlignedStride(1, sizeof(uint8_t)), 32u);
  EXPECT_EQ(AlignedStride(32, sizeof(uint8_t)), 32u);
  EXPECT_EQ(AlignedStride(33, sizeof(uint8_t)), 64u);
}

}  // namespace
}  // namespace geqo::kernels
