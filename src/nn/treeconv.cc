#include "nn/treeconv.h"

#include <cmath>
#include <limits>

namespace geqo::nn {

void TreeBatch::Validate() const {
  GEQO_CHECK(left.size() == total_nodes() && right.size() == total_nodes());
  for (const auto& [offset, count] : spans) {
    GEQO_CHECK(offset + count <= total_nodes());
    for (size_t i = offset; i < offset + count; ++i) {
      for (const int32_t child : {left[i], right[i]}) {
        if (child < 0) continue;
        GEQO_CHECK(static_cast<size_t>(child) >= offset &&
                   static_cast<size_t>(child) < offset + count)
            << "child index escapes its tree span";
      }
    }
  }
}

TreeConv::TreeConv(size_t in_features, size_t out_features, Rng* rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features * 3));
  self_weight_ = Tensor::Randn(out_features, in_features, stddev, rng);
  left_weight_ = Tensor::Randn(out_features, in_features, stddev, rng);
  right_weight_ = Tensor::Randn(out_features, in_features, stddev, rng);
  bias_ = Tensor(1, out_features);
  self_grad_ = Tensor(out_features, in_features);
  left_grad_ = Tensor(out_features, in_features);
  right_grad_ = Tensor(out_features, in_features);
  bias_grad_ = Tensor(1, out_features);
}

Tensor TreeConv::GatherChildren(const Tensor& x,
                                const std::vector<int32_t>& child) {
  Tensor out(x.rows(), x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    if (child[i] < 0) continue;
    const float* src = x.Row(static_cast<size_t>(child[i]));
    std::copy(src, src + x.cols(), out.Row(i));
  }
  return out;
}

void TreeConv::ScatterAddChildren(const Tensor& dy,
                                  const std::vector<int32_t>& child,
                                  Tensor* dx) {
  for (size_t i = 0; i < dy.rows(); ++i) {
    if (child[i] < 0) continue;
    float* dst = dx->Row(static_cast<size_t>(child[i]));
    const float* src = dy.Row(i);
    for (size_t c = 0; c < dy.cols(); ++c) dst[c] += src[c];
  }
}

TreeBatch TreeConv::Forward(const TreeBatch& input) {
  GEQO_CHECK(input.feature_dim() == self_weight_.cols())
      << "TreeConv input dim " << input.feature_dim() << " vs weight "
      << self_weight_.ShapeString();
  cached_input_ = input;

  const Tensor left_gathered = GatherChildren(input.nodes, input.left);
  const Tensor right_gathered = GatherChildren(input.nodes, input.right);

  Tensor y = ops::MatMul(input.nodes, self_weight_, false, true);
  ops::AddInPlace(&y, ops::MatMul(left_gathered, left_weight_, false, true));
  ops::AddInPlace(&y, ops::MatMul(right_gathered, right_weight_, false, true));
  ops::AddRowVectorInPlace(&y, bias_);

  TreeBatch out;
  out.nodes = std::move(y);
  out.left = input.left;
  out.right = input.right;
  out.spans = input.spans;
  return out;
}

TreeBatch TreeConv::Infer(const TreeBatch& input) const {
  GEQO_CHECK(input.feature_dim() == self_weight_.cols())
      << "TreeConv input dim " << input.feature_dim() << " vs weight "
      << self_weight_.ShapeString();

  const Tensor left_gathered = GatherChildren(input.nodes, input.left);
  const Tensor right_gathered = GatherChildren(input.nodes, input.right);

  Tensor y = ops::MatMul(input.nodes, self_weight_, false, true);
  ops::AddInPlace(&y, ops::MatMul(left_gathered, left_weight_, false, true));
  ops::AddInPlace(&y, ops::MatMul(right_gathered, right_weight_, false, true));
  ops::AddRowVectorInPlace(&y, bias_);

  TreeBatch out;
  out.nodes = std::move(y);
  out.left = input.left;
  out.right = input.right;
  out.spans = input.spans;
  return out;
}

TreeBatch TreeConv::Backward(const TreeBatch& dy) {
  const Tensor& x = cached_input_.nodes;
  const Tensor left_gathered = GatherChildren(x, cached_input_.left);
  const Tensor right_gathered = GatherChildren(x, cached_input_.right);

  // Parameter gradients.
  ops::AddInPlace(&self_grad_, ops::MatMul(dy.nodes, x, true, false));
  ops::AddInPlace(&left_grad_, ops::MatMul(dy.nodes, left_gathered, true, false));
  ops::AddInPlace(&right_grad_,
                  ops::MatMul(dy.nodes, right_gathered, true, false));
  ops::AddInPlace(&bias_grad_, ops::ColumnSum(dy.nodes));

  // Input gradients: self path plus scattered child paths.
  Tensor dx = ops::MatMul(dy.nodes, self_weight_);
  const Tensor d_left = ops::MatMul(dy.nodes, left_weight_);
  const Tensor d_right = ops::MatMul(dy.nodes, right_weight_);
  ScatterAddChildren(d_left, cached_input_.left, &dx);
  ScatterAddChildren(d_right, cached_input_.right, &dx);

  TreeBatch out;
  out.nodes = std::move(dx);
  out.left = cached_input_.left;
  out.right = cached_input_.right;
  out.spans = cached_input_.spans;
  return out;
}

void TreeConv::CollectParams(const std::string& prefix,
                             std::vector<ParamRef>* out) {
  out->push_back(ParamRef{prefix + ".self", &self_weight_, &self_grad_});
  out->push_back(ParamRef{prefix + ".left", &left_weight_, &left_grad_});
  out->push_back(ParamRef{prefix + ".right", &right_weight_, &right_grad_});
  out->push_back(ParamRef{prefix + ".bias", &bias_, &bias_grad_});
}

Tensor DynamicMaxPool::Forward(const TreeBatch& input) {
  const size_t dim = input.feature_dim();
  Tensor out(input.num_trees(), dim);
  argmax_.assign(input.num_trees() * dim, 0);
  for (size_t t = 0; t < input.num_trees(); ++t) {
    const auto [offset, count] = input.spans[t];
    GEQO_CHECK(count > 0) << "empty tree in pool";
    float* out_row = out.Row(t);
    for (size_t c = 0; c < dim; ++c) {
      out_row[c] = -std::numeric_limits<float>::infinity();
    }
    for (size_t i = offset; i < offset + count; ++i) {
      const float* row = input.nodes.Row(i);
      for (size_t c = 0; c < dim; ++c) {
        if (row[c] > out_row[c]) {
          out_row[c] = row[c];
          argmax_[t * dim + c] = static_cast<uint32_t>(i);
        }
      }
    }
  }
  cached_structure_ = input;
  cached_structure_.nodes = Tensor(input.total_nodes(), dim);  // shape only
  return out;
}

Tensor DynamicMaxPool::Infer(const TreeBatch& input) {
  const size_t dim = input.feature_dim();
  Tensor out(input.num_trees(), dim);
  for (size_t t = 0; t < input.num_trees(); ++t) {
    const auto [offset, count] = input.spans[t];
    GEQO_CHECK(count > 0) << "empty tree in pool";
    float* out_row = out.Row(t);
    for (size_t c = 0; c < dim; ++c) {
      out_row[c] = -std::numeric_limits<float>::infinity();
    }
    for (size_t i = offset; i < offset + count; ++i) {
      const float* row = input.nodes.Row(i);
      for (size_t c = 0; c < dim; ++c) {
        if (row[c] > out_row[c]) out_row[c] = row[c];
      }
    }
  }
  return out;
}

TreeBatch DynamicMaxPool::Backward(const Tensor& dy) {
  const size_t dim = dy.cols();
  TreeBatch out = cached_structure_;
  out.nodes = Tensor(cached_structure_.total_nodes(), dim);
  for (size_t t = 0; t < dy.rows(); ++t) {
    const float* dy_row = dy.Row(t);
    for (size_t c = 0; c < dim; ++c) {
      out.nodes.At(argmax_[t * dim + c], c) += dy_row[c];
    }
  }
  return out;
}

}  // namespace geqo::nn
