/// \file bench_complex.cpp
/// Reproduces the §9.1 plan: extend the encoding with group-by/aggregation
/// segments and "assess the effectiveness of the current EMF model on
/// complex queries". We measure the EMF on three TPC-DS pair populations:
///
///   1. plain SPJ pairs (the paper's §7 regime, as a baseline);
///   2. aggregate pairs scored by an EMF trained only on SPJ data
///      (complex queries unseen in training);
///   3. aggregate pairs scored by an EMF whose training data also contains
///      aggregates (the extension §9.1 proposes).
///
/// Expected shape: (1) is strong; (2) degrades; (3) recovers most of the
/// gap, demonstrating that the encoding extension carries the signal.

#include <cstdio>

#include "bench_util.h"

using namespace geqo;
using namespace geqo::bench;

namespace {

/// Builds a labeled TPC-DS evaluation set with the given aggregate share.
ml::PairDataset MakeEval(const GeqoSystem& system, double aggregate_probability,
                         size_t bases, uint64_t seed) {
  const Catalog tpcds = MakeTpcdsCatalog();
  Rng rng(seed);
  LabeledDataOptions options;
  options.num_base_queries = bases;
  options.variants_per_query = 3;
  options.generator.aggregate_probability = aggregate_probability;
  auto pairs = BuildLabeledPairs(tpcds, options, &rng);
  GEQO_CHECK(pairs.ok());
  const EncodingLayout tpcds_layout = EncodingLayout::FromCatalog(tpcds);
  auto dataset = EncodeLabeledPairs(*pairs, tpcds, tpcds_layout,
                                    system.agnostic_layout(),
                                    system.value_range());
  GEQO_CHECK(dataset.ok());
  return *dataset;
}

/// Trains a fresh system on TPC-H with the given aggregate share.
std::unique_ptr<GeqoSystem> TrainSystem(const Catalog* tpch,
                                        double aggregate_probability,
                                        Scale scale, uint64_t seed) {
  GeqoSystemOptions options = StandardOptions(scale);
  options.synthetic_data.generator.aggregate_probability =
      aggregate_probability;
  auto system = std::make_unique<GeqoSystem>(tpch, options);
  GEQO_CHECK_OK(system->TrainOnSyntheticWorkload(seed).status());
  return system;
}

double Score(GeqoSystem& system, const ml::PairDataset& eval,
             const char* label) {
  const ml::ConfusionMatrix matrix = ml::EvaluateBinary(
      ml::PredictAll(&system.model(), eval), eval.labels);
  std::printf("  %-44s accuracy %.3f  F1 %.3f\n", label, matrix.Accuracy(),
              matrix.F1());
  return matrix.F1();
}

}  // namespace

int main() {
  PrintHeader("bench_complex",
              "§9.1: EMF effectiveness on aggregate (complex) subexpressions");
  const Catalog tpch = MakeTpchCatalog();
  const size_t eval_bases = Pick(30, 100, 250);

  std::printf("training EMF on SPJ-only TPC-H data...\n");
  auto spj_system = TrainSystem(&tpch, 0.0, GetScale(), 0xC0);
  std::printf("training EMF on TPC-H data with 40%% aggregate queries...\n");
  auto mixed_system = TrainSystem(&tpch, 0.4, GetScale(), 0xC1);

  const ml::PairDataset spj_eval = MakeEval(*spj_system, 0.0, eval_bases, 0xE0);
  const ml::PairDataset agg_eval = MakeEval(*spj_system, 1.0, eval_bases, 0xE1);

  std::printf("\nTPC-DS evaluation (train TPC-H, zero-shot):\n");
  const double spj_f1 = Score(*spj_system, spj_eval, "SPJ pairs, SPJ-trained EMF");
  const double unseen_f1 =
      Score(*spj_system, agg_eval, "aggregate pairs, SPJ-trained EMF");
  const double extended_f1 =
      Score(*mixed_system, agg_eval, "aggregate pairs, aggregate-aware EMF");

  // Finding: the encoding extension alone carries most of the signal — the
  // SPJ-trained EMF reads the aggregate segments it never saw in training
  // and stays effective; aggregate-aware training must not make things
  // worse and typically closes the remaining gap.
  const bool shape = spj_f1 > 0.7 && unseen_f1 > 0.5 &&
                     extended_f1 >= unseen_f1 - 0.02;
  std::printf("\nshape check: the aggregate encoding extension keeps the EMF "
              "effective on complex queries -> %s\n",
              shape ? "yes (supports the paper's §9.1 plan)" : "NO");
  return shape ? 0 : 1;
}
