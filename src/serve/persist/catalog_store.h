#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/work_queue.h"
#include "serve/equivalence_catalog.h"
#include "serve/persist/journal.h"
#include "serve/persist/manifest.h"
#include "serve/persist/wal.h"
#include "serve/sharded_catalog.h"

/// \file catalog_store.h
/// serve::CatalogStore — durable, incrementally-persisted serving state
/// behind one API, replacing the old Save(path)/Load(path) snapshot
/// quartets. A store is a directory in LSM style:
///
///   MANIFEST            versioned, checksummed root (manifest.h): names
///                       the live base segment + the live log generations
///   base-000007.seg     a GEQOCATG/GEQOSHRD snapshot (the fold of all
///                       state up to some point)
///   wal-000009.s000.log delta-log partitions (wal.h): one per shard per
///                       generation, carrying every mutation since the base
///
/// The store attaches itself to the catalog it owns as a CatalogJournal:
/// each add / verdict / union / pending-enqueue appends one framed record
/// to the owning shard's partition at mutation time. Recovery is
/// manifest-driven: load the base, replay the log tail (truncating a torn
/// final record), rebuild the async verification backlog from the pending
/// pairs, garbage-collect everything the manifest does not name.
///
///   Checkpoint()  fsync every partition + rotate to a fresh generation —
///                 a durability barrier whose pause is O(shards), never a
///                 full catalog serialize.
///   Compact()     fold base + sealed generations into a new base segment
///                 and drop the sealed logs (the M0 -> M1 -> M2 manifest
///                 walk documented in manifest.h). In sharded mode this
///                 runs on a background worker once the delta log passes
///                 DurabilityOptions::compact_after_records, without
///                 blocking Probe/Add (the export takes shard *shared*
///                 locks). A single-catalog store is single-writer by
///                 contract, so it compacts only inline — from Compact()
///                 or a threshold-crossing Checkpoint() on the owner
///                 thread.
///
/// Journal appends cannot fail the serving path (the mutation is already
/// applied), so append errors latch: status() reports the first failure,
/// and Checkpoint()/Close() refuse to pretend durability that was not
/// achieved.

namespace geqo::serve::persist {

/// \brief Write-path durability knobs.
struct DurabilityOptions {
  /// Create the store directory when it does not exist; when false, Open
  /// of a missing directory fails with NotFound.
  bool create_if_missing = true;
  /// fflush each appended record so it survives _exit/SIGKILL of this
  /// process (the crash model the recovery tests exercise). Disabling
  /// batches records in the stdio buffer: cheaper, but a crash can lose
  /// the tail since the last Checkpoint.
  bool flush_each_append = true;
  /// fsync each appended record (survives power loss, not just process
  /// death). Implies a disk round-trip per mutation — measure first.
  bool sync_each_append = false;
  /// Fold the log into a fresh base segment once this many records have
  /// accumulated since the last base. 0 disables automatic compaction
  /// (explicit Compact() still works).
  size_t compact_after_records = 4096;
  /// Run threshold compactions on a background worker (sharded stores
  /// only; a single-catalog store always compacts inline).
  bool background_compaction = true;

  Status Validate() const;
};

/// \brief The non-owned component wiring every catalog constructor takes;
/// all pointers must outlive the store.
struct CatalogComponents {
  const Catalog* db_catalog = nullptr;
  ml::EmfModel* model = nullptr;
  const EncodingLayout* instance_layout = nullptr;
  const EncodingLayout* agnostic_layout = nullptr;
  ValueRange value_range;
};

/// \brief Store-level counters (session-local; stats() snapshots them).
struct CatalogStoreStats {
  uint64_t wal_records_appended = 0;
  uint64_t wal_records_replayed = 0;   ///< applied during the last Open
  uint64_t replay_dropped_records = 0; ///< lost to torn tails / gid gaps
  uint64_t torn_tails_truncated = 0;   ///< partitions truncated at Open
  uint64_t records_since_base = 0;     ///< compaction-threshold progress
  uint64_t checkpoints = 0;
  uint64_t compactions = 0;
  uint64_t gc_files_removed = 0;
  double last_checkpoint_pause_seconds = 0.0;
  double recovery_seconds = 0.0;  ///< Open's base-load + replay wall time
};

/// \brief A durable catalog store: owns the serving catalog, its delta
/// log, and the manifest that binds them.
class CatalogStore final : public CatalogJournal {
 public:
  /// Opens (or creates) a single-EquivalenceCatalog store at \p dir.
  /// \p plans must hold every entry ever added, in global Add order — the
  /// same contract as ImportSnapshot; surplus plans are ignored. Passing a
  /// path to a legacy one-shot snapshot *file* fails loudly: snapshots are
  /// imported via EquivalenceCatalog::ImportSnapshot and re-persisted by
  /// adding into a fresh store.
  static Result<std::unique_ptr<CatalogStore>> Open(
      const std::string& dir, const CatalogComponents& components,
      const std::vector<PlanPtr>& plans,
      CatalogOptions catalog_options = CatalogOptions(),
      DurabilityOptions durability = DurabilityOptions());

  /// Opens (or creates) a ShardedCatalog store. On recovery the shard
  /// count comes from the manifest (routing must stay consistent with the
  /// ids already logged); \p options.num_shards applies only to a freshly
  /// created store.
  static Result<std::unique_ptr<CatalogStore>> OpenSharded(
      const std::string& dir, const CatalogComponents& components,
      const std::vector<PlanPtr>& plans,
      ShardedCatalogOptions options = ShardedCatalogOptions(),
      DurabilityOptions durability = DurabilityOptions());

  /// Closes best-effort (see Close()).
  ~CatalogStore() override;
  CatalogStore(const CatalogStore&) = delete;
  CatalogStore& operator=(const CatalogStore&) = delete;

  /// The owned catalog; null after Close() and in the other mode.
  EquivalenceCatalog* catalog() { return single_.get(); }
  ShardedCatalog* sharded() { return sharded_.get(); }
  bool sharded_mode() const { return kind_ == StoreKind::kSharded; }
  const std::string& dir() const { return dir_; }

  /// Durability barrier: fsync every live partition, then rotate to a
  /// fresh log generation. The pause is O(num_shards) syncs plus one
  /// manifest write — independent of catalog size, which is the point
  /// (the old API's only barrier was a full snapshot serialize). Returns
  /// any latched append error: a failed journal write means the barrier
  /// is a lie, and this is where it surfaces.
  Status Checkpoint();

  /// Folds the base + sealed log generations into a new base segment and
  /// drops the sealed logs. Safe to call concurrently with serving in
  /// sharded mode; in single mode the caller must be the owner thread.
  Status Compact();

  /// Stops the background worker, releases the catalog (joining its
  /// verifier pool, so final verdicts still reach the log), syncs and
  /// closes every partition, and returns the first latched error. The
  /// store is inert afterwards: catalog()/sharded() return null and no
  /// further mutation can be journaled. Idempotent. Undrained pending
  /// verifications stay in the log and are re-enqueued by the next Open.
  Status Close();

  /// One-shot export of the owned catalog (GEQOCATG / GEQOSHRD), for
  /// artifact interchange — the durable state is the directory itself.
  Status ExportSnapshot(std::ostream& os) const;

  /// First latched background/journal error, or OK.
  Status status() const;
  CatalogStoreStats stats() const;

  // CatalogJournal — called by the owned catalog, not by users.
  void OnAdd(size_t shard, uint64_t gid, uint64_t canonical_hash,
             uint64_t check_hash) override;
  void OnVerdict(size_t shard, uint64_t key_lo, uint64_t key_hi,
                 uint64_t check_lo, uint64_t check_hi,
                 uint8_t verdict) override;
  void OnUnion(size_t shard, uint64_t a_gid, uint64_t b_gid) override;
  void OnPending(size_t shard, uint64_t query_gid,
                 uint64_t member_gid) override;
  void OnPendingResolved(size_t shard, uint64_t query_gid,
                         uint64_t member_gid) override;

 private:
  /// One live log partition. handle.mu orders appends against the writer
  /// swap a rotation performs. Nothing blocking is acquired under it
  /// except the compaction queue's own lock (rank kWalHandle <
  /// kWorkQueue: AppendRecord pushes a compaction request while holding
  /// the handle).
  struct WalHandle {
    Mutex mu{analysis::LockRank::kWalHandle};
    std::unique_ptr<WalWriter> writer GEQO_GUARDED_BY(mu);
  };

  /// (shard, query gid, member gid) — a journaled pending pair not yet
  /// reported resolved; rotation re-logs these so sealed generations can
  /// be dropped without losing the verification backlog.
  using PendingKey = std::tuple<uint64_t, uint64_t, uint64_t>;

  CatalogStore(std::string dir, StoreKind kind, DurabilityOptions durability);

  static Result<std::unique_ptr<CatalogStore>> OpenImpl(
      const std::string& dir, StoreKind kind,
      const CatalogComponents& components, const std::vector<PlanPtr>& plans,
      CatalogOptions catalog_options, ShardedCatalogOptions sharded_options,
      DurabilityOptions durability);
  /// Manifest-driven recovery: base import + log-tail replay (torn tails
  /// truncated, gid gaps dropped loudly). The surviving pending pairs come
  /// back through \p pending_pairs for the caller to rebuild into verify
  /// tasks once the journal is attached.
  Status Recover(const ManifestState& manifest,
                 const CatalogComponents& components,
                 const std::vector<PlanPtr>& plans,
                 CatalogOptions catalog_options,
                 ShardedCatalogOptions sharded_options,
                 std::vector<std::pair<uint64_t, uint64_t>>* pending_pairs);
  /// Creates generation next_file_id (one partition per shard), publishes
  /// the manifest naming it, and swaps the live writers. With \p
  /// relog_pending, outstanding pending pairs are re-appended into the
  /// fresh generation (the step that makes compaction safe).
  Status RotateLocked(bool relog_pending) GEQO_REQUIRES(store_mu_);
  /// Deletes every schema-matching file the manifest does not name.
  void CollectGarbageLocked() GEQO_REQUIRES(store_mu_);
  void AppendRecord(size_t shard, const WalRecord& record);
  void LatchError(const Status& status);
  void MaybeScheduleCompaction();
  void CompactionWorkerLoop();

  const std::string dir_;
  const StoreKind kind_;
  const DurabilityOptions durability_;
  uint64_t num_shards_ = 1;

  // Exactly one of these is set (until Close releases it). Declared
  // before handles_ so accidental destruction without Close() still
  // tears down in a safe order via ~CatalogStore's explicit Close().
  std::unique_ptr<EquivalenceCatalog> single_;
  std::unique_ptr<ShardedCatalog> sharded_;

  /// Guards manifest_ and rotation/compaction manifest edits. Lock order:
  /// store_mu_ -> handle.mu (ranks kStore < kWalHandle); journal hooks
  /// take only handle.mu (they run under a shard lock and must never wait
  /// on a compaction).
  mutable Mutex store_mu_{analysis::LockRank::kStore};
  ManifestState manifest_ GEQO_GUARDED_BY(store_mu_);
  /// The vector itself is fixed after Open (only the per-handle writers
  /// swap, under each handle's own mu).
  std::vector<std::unique_ptr<WalHandle>> handles_;
  bool closed_ GEQO_GUARDED_BY(store_mu_) = false;

  Mutex pending_mu_{analysis::LockRank::kPendingSet};
  std::set<PendingKey> outstanding_pending_ GEQO_GUARDED_BY(pending_mu_);

  mutable Mutex status_mu_{analysis::LockRank::kStatus};
  Status first_error_ GEQO_GUARDED_BY(status_mu_);

  /// Serializes compactions (worker vs explicit Compact()). Ranks below
  /// everything else here: a compaction takes store_mu_, shard locks, and
  /// handle locks while holding it.
  Mutex compact_mu_{analysis::LockRank::kCompaction};
  WorkQueue<int> compact_queue_;
  std::thread compact_worker_;
  std::atomic<bool> compaction_scheduled_{false};

  std::atomic<uint64_t> wal_records_appended_{0};
  std::atomic<uint64_t> records_since_base_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> compactions_{0};
  uint64_t wal_records_replayed_ = 0;     ///< written only during Open
  uint64_t replay_dropped_records_ = 0;   ///< written only during Open
  uint64_t torn_tails_truncated_ = 0;     ///< written only during Open
  std::atomic<uint64_t> gc_files_removed_{0};
  std::atomic<double> last_checkpoint_pause_seconds_{0.0};
  double recovery_seconds_ = 0.0;
};

}  // namespace geqo::serve::persist

namespace geqo::serve {
// The store is the serving layer's durability API; let callers spell it
// serve::CatalogStore without reaching into the persist namespace.
using persist::CatalogComponents;
using persist::CatalogStore;
using persist::CatalogStoreStats;
using persist::DurabilityOptions;
}  // namespace geqo::serve
