#pragma once

#include <vector>

#include "nn/layers.h"

/// \file adam.h
/// The Adam optimizer [33] with decoupled L2 weight decay. The paper trains
/// the EMF with lr = 1e-3 and weight decay = 5e-4 (§7 Implementation).

namespace geqo::nn {

/// \brief Optimizer hyperparameters.
struct AdamOptions {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 5e-4f;
};

/// \brief Adam over a fixed set of parameters. Parameters are registered at
/// construction; Step() consumes and ZeroGrad() clears their grad buffers.
class Adam {
 public:
  Adam(std::vector<ParamRef> params, AdamOptions options = AdamOptions());

  /// Applies one update using the accumulated gradients.
  void Step();

  /// Clears all gradient buffers (call before each forward/backward pass).
  void ZeroGrad();

  const AdamOptions& options() const { return options_; }
  void set_learning_rate(float lr) { options_.learning_rate = lr; }

 private:
  std::vector<ParamRef> params_;
  AdamOptions options_;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
  int64_t step_count_ = 0;
};

}  // namespace geqo::nn
