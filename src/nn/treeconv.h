#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "nn/layers.h"

/// \file treeconv.h
/// Tree convolution over logical-plan trees (Mou et al. [39], as used by
/// Neo/Bao and by the paper's EMF, §3.2/§5). Every node is convolved with
/// its (up to two) children:
///
///   y_i = W_self x_i + W_left x_left(i) + W_right x_right(i) + b
///
/// Missing children contribute zero. Stacking two such layers and applying
/// dynamic max pooling over the nodes yields the fixed-size subexpression
/// embedding shared by the EMF classifier and the VMF's metric space.

namespace geqo::nn {

/// \brief A batch of trees flattened into one node matrix.
///
/// Node features for all trees are concatenated row-wise; `left`/`right`
/// hold *global* row indices of each node's children (or -1); `spans` lists
/// each tree's (first row, node count). Structure is shared unchanged across
/// layers — only node features change.
struct TreeBatch {
  Tensor nodes;                                  ///< [total_nodes, dim]
  std::vector<int32_t> left;                     ///< child index or -1
  std::vector<int32_t> right;                    ///< child index or -1
  std::vector<std::pair<size_t, size_t>> spans;  ///< per-tree (offset, count)

  size_t num_trees() const { return spans.size(); }
  size_t total_nodes() const { return nodes.rows(); }
  size_t feature_dim() const { return nodes.cols(); }

  /// Structural sanity check: child indices stay within their tree's span.
  void Validate() const;
};

/// \brief One tree-convolution layer with three weight matrices.
class TreeConv {
 public:
  TreeConv(size_t in_features, size_t out_features, Rng* rng);

  /// Produces a TreeBatch with identical structure and convolved features.
  TreeBatch Forward(const TreeBatch& input);

  /// Forward pass without caching: re-entrant, usable concurrently while no
  /// thread trains the layer.
  TreeBatch Infer(const TreeBatch& input) const;

  /// \p dy carries gradients w.r.t. this layer's output node features and
  /// must share the cached structure; returns gradients w.r.t. the input.
  TreeBatch Backward(const TreeBatch& dy);

  void CollectParams(const std::string& prefix, std::vector<ParamRef>* out);

  size_t out_features() const { return self_weight_.rows(); }

 private:
  /// Gathers child rows: out[i] = x[child[i]] or zero.
  static Tensor GatherChildren(const Tensor& x,
                               const std::vector<int32_t>& child);
  /// Scatter-adds rows back through the gather.
  static void ScatterAddChildren(const Tensor& dy,
                                 const std::vector<int32_t>& child,
                                 Tensor* dx);

  Tensor self_weight_;   ///< [out, in]
  Tensor left_weight_;   ///< [out, in]
  Tensor right_weight_;  ///< [out, in]
  Tensor bias_;          ///< [1, out]
  Tensor self_grad_;
  Tensor left_grad_;
  Tensor right_grad_;
  Tensor bias_grad_;
  TreeBatch cached_input_;
};

/// \brief Dynamic max pooling: reduces each tree's node features to a single
/// fixed-size vector by elementwise max over its nodes.
class DynamicMaxPool {
 public:
  /// Returns [num_trees, dim]; caches argmax indices for backward.
  Tensor Forward(const TreeBatch& input);

  /// Pooling without the argmax cache: re-entrant, usable concurrently.
  static Tensor Infer(const TreeBatch& input);

  /// Scatters [num_trees, dim] gradients back to the winning nodes.
  TreeBatch Backward(const Tensor& dy);

 private:
  TreeBatch cached_structure_;         ///< structure of the pooled batch
  std::vector<uint32_t> argmax_;       ///< per (tree, channel) winning row
};

}  // namespace geqo::nn
