/// \file observability_demo.cpp
/// Observability walkthrough: runs DetectEquivalences over a small
/// synthetic TPC-H workload with an *untrained* EMF (no training cost — the
/// point here is the instrumentation, not detection quality), prints the
/// StageReport funnel, and, when GEQO_TRACE is set, writes the metrics
/// snapshot and Chrome trace artifacts.
///
///   GEQO_TRACE=spans ./observability_demo
///   -> geqo_metrics.json (registry snapshot)
///   -> geqo_trace.json   (load in chrome://tracing or ui.perfetto.dev)
///
/// scripts/check.sh uses this binary as its traced smoke run and lints the
/// emitted JSON with geqo_json_lint.

#include <cstdio>

#include "common/rng.h"
#include "ml/emf_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/geqo.h"
#include "workload/generator.h"
#include "workload/rewrite.h"
#include "workload/schemas.h"

int main() {
  using namespace geqo;

  const Catalog catalog = MakeTpchCatalog();
  const EncodingLayout instance_layout = EncodingLayout::FromCatalog(catalog);
  const EncodingLayout agnostic_layout = EncodingLayout::Agnostic(6, 8);

  ml::EmfModelOptions model_options;
  model_options.input_dim = agnostic_layout.node_vector_size();
  model_options.conv1_size = 32;
  model_options.conv2_size = 32;
  model_options.fc1_size = 32;
  model_options.fc2_size = 16;
  ml::EmfModel model(model_options);

  // 60 generated subexpressions plus 15 planted rewrites.
  Rng rng(0x0B5E);
  QueryGenerator generator(&catalog, GeneratorOptions());
  Rewriter rewriter(&catalog);
  std::vector<PlanPtr> workload;
  for (size_t i = 0; i < 60; ++i) workload.push_back(generator.Generate(&rng));
  for (size_t i = 0; i < 15; ++i) {
    auto variant = rewriter.RewriteOnce(workload[i], &rng);
    GEQO_CHECK(variant.ok());
    workload.push_back(*variant);
  }

  // Wide funnel so every stage carries load despite the untrained model.
  GeqoOptions options;
  options.vmf.radius = 6.0f;
  options.emf.threshold = 0.0f;
  GeqoPipeline pipeline(&catalog, &model, &instance_layout, &agnostic_layout,
                        options);

  auto result = pipeline.DetectEquivalences(workload, ValueRange{0, 100});
  GEQO_CHECK(result.ok()) << result.status().ToString();

  std::printf("GEQO_TRACE=%s\n",
              obs::SpansEnabled()     ? "spans"
              : obs::MetricsEnabled() ? "metrics"
                                      : "off");
  std::printf("%zu plans, %zu verified equivalences\n\n", workload.size(),
              result->equivalences.size());
  std::printf("%s\n", StageReport::FormatTable(result->stages).c_str());

  if (obs::MetricsEnabled()) {
    const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
    std::printf("registry: %zu metrics; SMT decisions=%.0f, "
                "HNSW distances=%.0f, tensor dispatches=%.0f\n",
                snapshot.samples.size(), snapshot.Value("smt.decisions"),
                snapshot.Value("hnsw.distance_computations"),
                snapshot.Value("tensor.dispatches"));
  }
  if (const auto path = obs::WriteTraceArtifactsIfEnabled()) {
    std::printf("trace artifacts written (last: %s)\n", path->c_str());
  } else {
    std::printf("tracing off; set GEQO_TRACE=metrics|spans for artifacts\n");
  }
  return 0;
}
