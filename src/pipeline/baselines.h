#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "plan/plan.h"
#include "plan/schema.h"

/// \file baselines.h
/// The two non-ML equivalence detectors GEqO is compared against in §7.5:
///
///   Signature-based detection (CloudViews / Jindal et al. [32]): a Merkle-
///   style hash over a lightly normalized syntax tree. Catches identical
///   and trivially-reordered subexpressions; misses semantic rewrites such
///   as implied-predicate insertion or equality substitution.
///
///   Optimizer-based detection (Calcite-style): a rule-driven normal form —
///   column equality classes, per-term redundant-predicate pruning, sorted
///   atoms and conjuncts — compared for identity. Stronger than signatures,
///   but bounded by its rewrite rules: it cannot reason across terms (e.g.
///   Figure 1's A.val > B.val + 10 ∧ B.val + 10 > 20 ⊢ A.val > 20), which
///   is exactly the gap the paper attributes to optimizers [50].

namespace geqo {

/// \brief Signature of a subexpression: a stable 64-bit Merkle-style hash
/// of the canonicalized plan with aliases replaced by table-name ordinals
/// and conjuncts hashed order-insensitively.
Result<uint64_t> PlanSignature(const PlanPtr& plan, const Catalog& catalog);

/// \brief All pairs of \p workload with equal signatures (i < j indices).
Result<std::vector<std::pair<size_t, size_t>>> SignatureEquivalences(
    const std::vector<PlanPtr>& workload, const Catalog& catalog);

/// \brief Rule-based normal form of a subexpression (see file comment);
/// two subexpressions with equal normal forms are deemed equivalent by the
/// optimizer baseline.
Result<std::string> OptimizerNormalForm(const PlanPtr& plan,
                                        const Catalog& catalog);

/// \brief All pairs of \p workload with equal optimizer normal forms.
Result<std::vector<std::pair<size_t, size_t>>> OptimizerEquivalences(
    const std::vector<PlanPtr>& workload, const Catalog& catalog);

}  // namespace geqo
