#!/usr/bin/env bash
# Full correctness gate: plain build + ctest, artifact/SQL linting and debug
# plan validation over the smoke runs, then a ThreadSanitizer build + ctest
# to catch data races in the parallel pipeline, and finally an
# UndefinedBehaviorSanitizer build + ctest as a UB gate.
#
# Usage: scripts/check.sh [ctest-args...]
#   GEQO_CHECK_JOBS=N        parallel build/test jobs (default: nproc)
#   GEQO_CHECK_SKIP_TSAN=1   skip the ThreadSanitizer pass
#   GEQO_CHECK_TSAN_FILTER   ctest -R filter for the TSan pass (default: all;
#                            TSan runs ~5-20x slower, so narrowing to e.g.
#                            'thread_pool|pipeline|tensor' keeps CI fast)
#   GEQO_CHECK_SKIP_UBSAN=1  skip the UndefinedBehaviorSanitizer pass
#   GEQO_CHECK_UBSAN_FILTER  ctest -R filter for the UBSan pass (default: all)
#   GEQO_CHECK_SKIP_ASAN=1   skip the AddressSanitizer kernel-parity pass
#   GEQO_CHECK_SCALAR_FILTER ctest -R filter for the forced-scalar lane
#                            (default: the kernel-sensitive suites)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${GEQO_CHECK_JOBS:-$(nproc)}"

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
echo "== plain ctest =="
ctest --test-dir build --output-on-failure -j "$jobs" "$@"

echo "== forced-scalar ctest lane (GEQO_ISA=scalar) =="
# The portable kernel table must behave exactly like the dispatched one
# across the whole suite — this is the lane that keeps non-AVX2 hosts
# honest. GEQO_CHECK_SCALAR_FILTER narrows it (ctest -R on gtest suite
# names, e.g. 'KernelTable|Quant|Hnsw|Tensor') when CI time is tight.
scalar_filter=(${GEQO_CHECK_SCALAR_FILTER:+-R "$GEQO_CHECK_SCALAR_FILTER"})
GEQO_ISA=scalar ctest --test-dir build --output-on-failure -j "$jobs" \
  "${scalar_filter[@]}" "$@"

lint=./build/src/analysis/geqo_lint

echo "== clang-tidy gate =="
# No-op (exit 0) on gcc-only hosts; full analysis when clang-tidy exists.
scripts/tidy.sh build

echo "== clang thread-safety gate =="
# Compile-time enforcement of the lock annotations (-Wthread-safety
# -Werror); no-op (exit 0) on gcc-only hosts, same pattern as tidy.sh.
scripts/thread_safety.sh

echo "== workload SQL lint =="
# Checked-in example workloads must parse and validate cleanly.
"$lint" --schema=tpch examples/workloads/*.sql

echo "== traced smoke run =="
# Exercise the observability layer end to end: a spans-level run of the demo
# must produce artifacts that the strict JSON linter accepts. GEQO_VALIDATE=1
# turns on plan validation at every pipeline boundary for the smoke runs.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
GEQO_VALIDATE=1 GEQO_TRACE=spans \
  GEQO_TRACE_FILE="$smoke_dir/geqo_trace.json" \
  GEQO_METRICS_FILE="$smoke_dir/geqo_metrics.json" \
  ./build/examples/observability_demo
"$lint" "$smoke_dir/geqo_trace.json" "$smoke_dir/geqo_metrics.json"

echo "== serving store round-trip smoke =="
# The serving catalog's core guarantee: a stream interrupted by
# stop+restart replays from its CatalogStore directory with bit-identical
# probe results, and every durable file (system snapshot, manifest, base
# segment, delta-log partitions) passes the artifact linter.
check_serving_roundtrip() {
  local demo="$1" snap_base="$2"
  GEQO_VALIDATE=1 "$demo" > "$smoke_dir/serve_full.txt"
  GEQO_VALIDATE=1 "$demo" --phase1 "$snap_base" > "$smoke_dir/serve_p1.txt"
  GEQO_VALIDATE=1 "$demo" --phase2 "$snap_base" > "$smoke_dir/serve_p2.txt"
  diff <(grep '^PROBE' "$smoke_dir/serve_full.txt") \
       <(cat <(grep '^PROBE' "$smoke_dir/serve_p1.txt") \
             <(grep '^PROBE' "$smoke_dir/serve_p2.txt"))
  "$lint" "$snap_base.system" "$snap_base.store"/MANIFEST \
          "$snap_base.store"/*.seg "$snap_base.store"/*.log
}
check_serving_roundtrip ./build/examples/serving_demo "$smoke_dir/serve_snap"

echo "== crash-recovery smoke =="
# Kill the demo mid-stream at an exact probe boundary (the demo-probe kill
# point, armed via the env hook), reopen the half-written store, and demand
# the concatenated PROBE lines match the uninterrupted run byte for byte —
# real WAL replay, not a clean shutdown. The crashed store's files must
# still lint clean afterwards.
check_crash_recovery() {
  local demo="$1" snap_base="$2" kill_after="$3"
  local code=0
  GEQO_VALIDATE=1 GEQO_PERSIST_KILL_POINT="demo-probe:$kill_after" \
    "$demo" --phase1 "$snap_base" > "$smoke_dir/serve_killed.txt" || code=$?
  if [[ "$code" != 137 ]]; then
    echo "expected the armed kill point to exit 137, got $code" >&2
    return 1
  fi
  # Resume phase1 from the recovered store, then phase2 as usual.
  GEQO_VALIDATE=1 "$demo" --phase1 "$snap_base" > "$smoke_dir/serve_resume.txt"
  GEQO_VALIDATE=1 "$demo" --phase2 "$snap_base" > "$smoke_dir/serve_tail.txt"
  diff <(grep '^PROBE' "$smoke_dir/serve_full.txt") \
       <(cat <(grep '^PROBE' "$smoke_dir/serve_killed.txt") \
             <(grep '^PROBE' "$smoke_dir/serve_resume.txt") \
             <(grep '^PROBE' "$smoke_dir/serve_tail.txt"))
  "$lint" "$snap_base.store"/MANIFEST \
          "$snap_base.store"/*.seg "$snap_base.store"/*.log
}
check_crash_recovery ./build/examples/serving_demo "$smoke_dir/serve_crash" 4

echo "== e2e reuse-loop bench smoke =="
# Close the loop end to end: equivalence detection (ShardedCatalog::ProbeAdd)
# feeding the OnlineResultCache over the vectorized engine, against an
# uncached all-execute baseline. The cached-vs-uncached delta is recorded in
# the artifact rather than asserted (wall-clock noise; lanes wanting a floor
# set GEQO_E2E_MIN_SPEEDUP), but the artifact must be strict JSON and carry
# the headline fields.
(cd build && GEQO_BENCH_SCALE=smoke ./bench/bench_e2e > "$smoke_dir/bench_e2e.txt")
"$lint" build/BENCH_e2e.json
grep -q '"engine_speedup"' build/BENCH_e2e.json
grep -q '"cached_speedup"' build/BENCH_e2e.json

if [[ "${GEQO_CHECK_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== TSan pass skipped (GEQO_CHECK_SKIP_TSAN=1) =="
else
  echo "== TSan build =="
  cmake -B build-tsan -S . -DGEQO_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs"
  echo "== TSan ctest =="
  # Threads > cores still interleaves enough for TSan to see races; force a
  # multi-threaded pool even on small CI machines.
  tsan_filter=(${GEQO_CHECK_TSAN_FILTER:+-R "$GEQO_CHECK_TSAN_FILTER"})
  GEQO_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    "${tsan_filter[@]}" "$@"

  echo "== TSan executor-parity ctest =="
  # The morsel-driven engine fans every pipeline across the worker pool;
  # oracle parity under TSan is the race gate for the executor. Runs
  # explicitly so a narrowed GEQO_CHECK_TSAN_FILTER cannot skip it.
  GEQO_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'VecExec' "$@"

  echo "== TSan traced smoke run =="
  # Tracing itself must be race-free under the 4-thread pool: spans close on
  # worker threads while metrics fold from every stage.
  GEQO_THREADS=4 GEQO_VALIDATE=1 GEQO_TRACE=spans \
    GEQO_TRACE_FILE="$smoke_dir/geqo_trace_tsan.json" \
    GEQO_METRICS_FILE="$smoke_dir/geqo_metrics_tsan.json" \
    ./build-tsan/examples/observability_demo
  "$lint" "$smoke_dir/geqo_trace_tsan.json" "$smoke_dir/geqo_metrics_tsan.json"

  echo "== TSan serving snapshot round-trip smoke (lock-rank checker armed) =="
  # GEQO_LOCK_RANK=1 arms the runtime lock-rank checker on top of TSan:
  # TSan needs an unlucky schedule to see an inversion, the rank checker
  # aborts on the first out-of-order acquisition on any schedule.
  GEQO_THREADS=4 GEQO_LOCK_RANK=1 \
    check_serving_roundtrip ./build-tsan/examples/serving_demo \
    "$smoke_dir/serve_snap_tsan"

  echo "== TSan multi-client serving bench smoke =="
  # The open-loop phase runs 4 probers + 2 adders against the sharded
  # catalog with background verifier workers — the full concurrent plane
  # under TSan. The sharded-vs-mutex p99 comparison is reported, not
  # asserted (wall-clock noise under TSan's ~10x slowdown would flake);
  # lanes wanting a floor set GEQO_SERVE_MIN_P99_SPEEDUP. The generous SLO
  # bound gates hangs/pathologies, not performance.
  (cd build-tsan && GEQO_THREADS=4 GEQO_BENCH_SCALE=smoke \
    GEQO_SERVE_SLO_MS=500 ./bench/bench_serve > "$smoke_dir/bench_serve_tsan.txt")
  grep -q '"concurrent_p99_speedup"' build-tsan/BENCH_serve.json
fi

if [[ "${GEQO_CHECK_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== ASan kernel-parity pass skipped (GEQO_CHECK_SKIP_ASAN=1) =="
else
  echo "== ASan build (kernel parity) =="
  # The SIMD kernels read in 32-byte lanes with scalar tails; ASan over the
  # parity and quantization suites catches any out-of-bounds lane, on both
  # the dispatched and the forced-scalar table.
  cmake -B build-asan -S . -DGEQO_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$jobs" --target kernels_test quant_test \
    hnsw_test tensor_test
  echo "== ASan kernel-parity ctest =="
  ctest --test-dir build-asan --output-on-failure -j "$jobs" \
    -R 'KernelTable|Alignment|Quant|Hnsw|Tensor' "$@"
  GEQO_ISA=scalar ctest --test-dir build-asan --output-on-failure -j "$jobs" \
    -R 'KernelTable|Alignment|Quant' "$@"
fi

if [[ "${GEQO_CHECK_SKIP_UBSAN:-0}" == "1" ]]; then
  echo "== UBSan pass skipped (GEQO_CHECK_SKIP_UBSAN=1) =="
else
  echo "== UBSan build =="
  # -fno-sanitize-recover=all: any diagnosed UB aborts the test instead of
  # logging and carrying on, so the suite cannot pass over it.
  cmake -B build-ubsan -S . -DGEQO_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "$jobs"
  echo "== UBSan ctest =="
  ubsan_filter=(${GEQO_CHECK_UBSAN_FILTER:+-R "$GEQO_CHECK_UBSAN_FILTER"})
  ctest --test-dir build-ubsan --output-on-failure -j "$jobs" \
    "${ubsan_filter[@]}" "$@"
fi

echo "== all checks passed =="
