#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "common/status.h"

/// \file binary_io.h
/// Little helpers for the versioned binary snapshot formats (model state,
/// HNSW graph, serving catalog). Readers latch the first failure so callers
/// can issue a run of reads and check status() once; every error message
/// carries the caller-supplied context so corrupted or truncated snapshots
/// fail loudly with a pointer at the offending section.

namespace geqo::io {

/// \brief Buffered little-endian-as-host writer over an std::ostream.
///
/// The host format is not translated: snapshots are an on-disk cache for the
/// machine that wrote them, not an interchange format (same stance as the
/// model state files).
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os, std::string context)
      : os_(os), context_(std::move(context)) {}

  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  /// Signed values are stored as their two's-complement u64 image.
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  void String(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  void Bytes(const void* data, size_t size) { Raw(data, size); }

  Status status() const {
    if (os_.good()) return Status::OK();
    return Status::IoError("write failed while saving " + context_);
  }

 private:
  void Raw(const void* data, size_t size) {
    os_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }

  std::ostream& os_;
  std::string context_;
};

/// \brief Reader over an std::istream that latches the first failure.
///
/// After a short read every subsequent accessor returns a zero value, so a
/// sequence of reads can be issued unconditionally and validated once via
/// status(). Truncated input therefore never turns into garbage state.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is, std::string context)
      : is_(is), context_(std::move(context)) {}

  uint64_t U64() { return Fixed<uint64_t>(); }
  uint32_t U32() { return Fixed<uint32_t>(); }
  uint8_t U8() { return Fixed<uint8_t>(); }
  float F32() { return Fixed<float>(); }
  double F64() { return Fixed<double>(); }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  /// Reads a length-prefixed string, failing (not allocating) if the stored
  /// length exceeds \p max_size — a cheap guard against interpreting a
  /// corrupted length field as a multi-gigabyte allocation.
  std::string String(size_t max_size = 1 << 20) {
    const uint64_t size = U64();
    if (!ok()) return {};
    if (size > max_size) {
      Fail("string length " + std::to_string(size) + " exceeds limit");
      return {};
    }
    std::string out(size, '\0');
    Raw(out.data(), out.size());
    if (!ok()) return {};
    return out;
  }

  void Bytes(void* data, size_t size) { Raw(data, size); }

  bool ok() const { return !failed_; }

  Status status() const {
    if (!failed_) return Status::OK();
    return Status::IoError("corrupted or truncated " + context_ +
                           (detail_.empty() ? "" : ": " + detail_));
  }

  /// Marks the stream as failed with a caller-diagnosed reason (e.g. an
  /// out-of-range id); later reads become no-ops.
  void Fail(std::string detail) {
    if (!failed_) detail_ = std::move(detail);
    failed_ = true;
  }

  /// True when every byte of the stream has been consumed; trailing garbage
  /// after a structurally valid snapshot is treated as corruption.
  bool AtEof() {
    if (failed_) return false;
    return is_.peek() == std::istream::traits_type::eof();
  }

 private:
  template <typename T>
  T Fixed() {
    T v{};
    Raw(&v, sizeof(v));
    if (failed_) return T{};
    return v;
  }

  void Raw(void* data, size_t size) {
    if (failed_) {
      std::memset(data, 0, size);
      return;
    }
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (static_cast<size_t>(is_.gcount()) != size) Fail("unexpected end");
  }

  std::istream& is_;
  std::string context_;
  std::string detail_;
  bool failed_ = false;
};

}  // namespace geqo::io
