/// \file bench_micro.cpp
/// google-benchmark microbenchmarks for the performance-sensitive
/// primitives:
///   - instance encoding of a plan (§4.1);
///   - db-agnostic encoding, path A (symbolize + encode) vs path B (the
///     fast converter, §4.2.1) — the paper measures path B ~1.8x faster;
///   - HNSW insertion and radius search (§2.2.1);
///   - DPLL(T) satisfiability queries (the verifier's inner loop);
///   - a full verifier pair check;
///   - the EMF forward pass;
///   - the blocked MatMul kernel across sizes;
///   - thread-scaling of batched EMF scoring and the end-to-end pipeline
///     (the tentpole speedup: run with --benchmark_filter=Threads and
///     compare the per-Arg wall times).

#include <benchmark/benchmark.h>

#include "ann/hnsw.h"
#include "common/thread_pool.h"
#include "encode/agnostic.h"
#include "filters/emf_filter.h"
#include "ml/emf_model.h"
#include "parser/parser.h"
#include "pipeline/baselines.h"
#include "pipeline/geqo.h"
#include "smt/solver.h"
#include "tensor/tensor.h"
#include "verify/verifier.h"
#include "workload/generator.h"
#include "workload/labeled_data.h"
#include "workload/rewrite.h"
#include "workload/schemas.h"

namespace geqo {
namespace {

/// Shared fixtures, built once.
struct Fixture {
  Catalog catalog = MakeTpchCatalog();
  EncodingLayout instance_layout = EncodingLayout::FromCatalog(catalog);
  EncodingLayout agnostic_layout = EncodingLayout::Agnostic(6, 8);
  PlanPtr q1;
  PlanPtr q2;
  EncodedPlan e1;
  EncodedPlan e2;

  Fixture() {
    Rng rng(0x314159);
    QueryGenerator generator(&catalog, GeneratorOptions());
    q1 = generator.Generate(&rng);
    Rewriter rewriter(&catalog);
    q2 = *rewriter.RewriteOnce(q1, &rng);
    PlanEncoder encoder(&instance_layout, &catalog, ValueRange{0, 100});
    e1 = *encoder.Encode(q1);
    e2 = *encoder.Encode(q2);
  }
};

Fixture& GetFixture() {
  static Fixture fixture;
  return fixture;
}

void BM_InstanceEncode(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  PlanEncoder encoder(&fixture.instance_layout, &fixture.catalog,
                      ValueRange{0, 100});
  for (auto _ : state) {
    auto encoded = encoder.Encode(fixture.q1);
    benchmark::DoNotOptimize(encoded);
  }
}
BENCHMARK(BM_InstanceEncode);

void BM_AgnosticPathA_SymbolizeAndEncode(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  for (auto _ : state) {
    auto pair = EncodePairAgnostic(fixture.q1, fixture.q2,
                                   fixture.agnostic_layout, fixture.catalog,
                                   ValueRange{0, 100});
    benchmark::DoNotOptimize(pair);
  }
}
BENCHMARK(BM_AgnosticPathA_SymbolizeAndEncode);

void BM_AgnosticPathB_FastConverter(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  for (auto _ : state) {
    auto converter =
        AgnosticConverter::Create(&fixture.instance_layout,
                                  &fixture.agnostic_layout,
                                  {&fixture.e1, &fixture.e2});
    EncodedPlan a = converter->Convert(fixture.e1);
    EncodedPlan b = converter->Convert(fixture.e2);
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_AgnosticPathB_FastConverter);

void BM_HnswInsert(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 2000; ++i) {
    std::vector<float> point(64);
    for (float& v : point) v = static_cast<float>(rng.NextGaussian());
    points.push_back(std::move(point));
  }
  size_t next = 0;
  ann::HnswIndex index(64);
  for (auto _ : state) {
    index.Add(points[next % points.size()]);
    ++next;
  }
}
BENCHMARK(BM_HnswInsert);

void BM_HnswRadiusSearch(benchmark::State& state) {
  Rng rng(8);
  ann::HnswIndex index(64);
  std::vector<float> query(64);
  for (int i = 0; i < 5000; ++i) {
    std::vector<float> point(64);
    for (float& v : point) v = static_cast<float>(rng.NextGaussian());
    index.Add(point);
  }
  for (auto _ : state) {
    auto hits = index.SearchRadius(query.data(), 6.0f);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_HnswRadiusSearch);

void BM_SmtImplication(benchmark::State& state) {
  for (auto _ : state) {
    // The Figure-1 implication: a - b > 10 ∧ b > 10 ⊢ a > 20 (UNSAT check).
    smt::DiffLogicSolver solver;
    const smt::VarId a = solver.NewVariable();
    const smt::VarId b = solver.NewVariable();
    solver.AddUnit({solver.AddAtom({b, a, -10.0, true}), true});
    solver.AddUnit({solver.AddAtom({smt::kZeroVar, b, -10.0, true}), true});
    solver.AddUnit({solver.AddAtom({a, smt::kZeroVar, 20.0, false}), true});
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_SmtImplication);

void BM_VerifierEquivalentPair(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  SpesVerifier verifier(&fixture.catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verifier.CheckEquivalence(fixture.q1, fixture.q2));
  }
}
BENCHMARK(BM_VerifierEquivalentPair);

void BM_VerifierNonEquivalentPair(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  Rng rng(0x1777);
  QueryGenerator generator(&fixture.catalog, GeneratorOptions());
  const PlanPtr other = generator.Generate(&rng);
  SpesVerifier verifier(&fixture.catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.CheckEquivalence(fixture.q1, other));
  }
}
BENCHMARK(BM_VerifierNonEquivalentPair);

void BM_EmfForwardPair(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  ml::EmfModelOptions options;
  options.input_dim = fixture.agnostic_layout.node_vector_size();
  options.conv1_size = 64;
  options.conv2_size = 64;
  options.fc1_size = 64;
  options.fc2_size = 32;
  ml::EmfModel model(options);
  auto converter = AgnosticConverter::Create(
      &fixture.instance_layout, &fixture.agnostic_layout,
      {&fixture.e1, &fixture.e2});
  const EncodedPlan a = converter->Convert(fixture.e1);
  const EncodedPlan b = converter->Convert(fixture.e2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictProba({&a}, {&b}));
  }
}
BENCHMARK(BM_EmfForwardPair);

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  const Tensor a = Tensor::Randn(n, n, 1.0f, &rng);
  const Tensor b = Tensor::Randn(n, n, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = ops::MatMul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransposeB(benchmark::State& state) {
  // The Linear-forward shape (x · Wᵀ): the row-row dot-product path.
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(12);
  const Tensor a = Tensor::Randn(n, n, 1.0f, &rng);
  const Tensor b = Tensor::Randn(n, n, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = ops::MatMul(a, b, false, true);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulTransposeB)->Arg(64)->Arg(128)->Arg(256);

/// Workload fixture for the thread-scaling benches: >= 200 encoded plans
/// with planted equivalences and an (untrained) model of deployed size.
struct ScalingFixture {
  Catalog catalog = MakeTpchCatalog();
  EncodingLayout instance_layout = EncodingLayout::FromCatalog(catalog);
  EncodingLayout agnostic_layout = EncodingLayout::Agnostic(6, 8);
  std::unique_ptr<ml::EmfModel> model;
  std::vector<PlanPtr> workload;
  std::vector<EncodedPlan> encoded;
  std::vector<std::pair<size_t, size_t>> pairs;

  ScalingFixture() {
    ml::EmfModelOptions options;
    options.input_dim = agnostic_layout.node_vector_size();
    options.conv1_size = 64;
    options.conv2_size = 64;
    options.fc1_size = 64;
    options.fc2_size = 32;
    model = std::make_unique<ml::EmfModel>(options);

    Rng rng(0x9e3779);
    QueryGenerator generator(&catalog, GeneratorOptions());
    Rewriter rewriter(&catalog);
    for (size_t i = 0; i < 180; ++i) {
      workload.push_back(generator.Generate(&rng));
    }
    for (size_t i = 0; i < 40; ++i) {
      workload.push_back(*rewriter.RewriteOnce(workload[i], &rng));
    }
    encoded = *EncodeWorkload(workload, instance_layout, catalog,
                              ValueRange{0, 100});
    // A fixed scoring load for the EMF bench: every planted pair plus a
    // band of random same-schema pairs, ~600 total.
    for (size_t i = 0; i < 40; ++i) pairs.emplace_back(i, 180 + i);
    while (pairs.size() < 600) {
      const size_t i = rng.Uniform(workload.size());
      const size_t j = rng.Uniform(workload.size());
      if (i < j) pairs.emplace_back(i, j);
    }
  }
};

ScalingFixture& GetScalingFixture() {
  static ScalingFixture fixture;
  return fixture;
}

void BM_EmfScoresThreads(benchmark::State& state) {
  ScalingFixture& fixture = GetScalingFixture();
  ThreadPool::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  EmfFilterOptions options;
  options.batch_size = 64;  // 600 pairs -> ~10 shards
  const EquivalenceModelFilter emf(fixture.model.get(),
                                   &fixture.instance_layout,
                                   &fixture.agnostic_layout, options);
  for (auto _ : state) {
    auto scores = emf.Scores(fixture.pairs, fixture.encoded);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * fixture.pairs.size());
  ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_EmfScoresThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PipelineDetectThreads(benchmark::State& state) {
  // End-to-end DetectEquivalences over the 220-plan workload. Generous VMF
  // radius and a zero EMF threshold keep the funnel wide so encoding, VMF,
  // EMF, and verification all carry real load.
  ScalingFixture& fixture = GetScalingFixture();
  ThreadPool::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  GeqoOptions options;
  options.vmf.radius = 6.0f;
  options.emf.threshold = 0.0f;
  GeqoPipeline pipeline(&fixture.catalog, fixture.model.get(),
                        &fixture.instance_layout, &fixture.agnostic_layout,
                        options);
  for (auto _ : state) {
    auto result =
        pipeline.DetectEquivalences(fixture.workload, ValueRange{0, 100});
    benchmark::DoNotOptimize(result);
  }
  ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_PipelineDetectThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PlanSignatureHash(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  for (auto _ : state) {
    auto signature = PlanSignature(fixture.q1, fixture.catalog);
    benchmark::DoNotOptimize(signature);
  }
}
BENCHMARK(BM_PlanSignatureHash);

}  // namespace
}  // namespace geqo

BENCHMARK_MAIN();
