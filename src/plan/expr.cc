#include "plan/expr.h"

#include "common/check.h"

namespace geqo {

ExprPtr Expr::Column(std::string alias, std::string column) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kColumnRef;
  node->column_ = ColumnRef{std::move(alias), std::move(column)};
  return node;
}

ExprPtr Expr::Literal(Value value) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kLiteral;
  node->value_ = std::move(value);
  return node;
}

ExprPtr Expr::Binary(ExprKind kind, ExprPtr left, ExprPtr right) {
  GEQO_CHECK(kind == ExprKind::kAdd || kind == ExprKind::kSub ||
             kind == ExprKind::kMul || kind == ExprKind::kDiv)
      << "Binary() requires an arithmetic kind";
  GEQO_CHECK(left != nullptr && right != nullptr);
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = kind;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

const Value& Expr::value() const {
  GEQO_DCHECK(kind_ == ExprKind::kLiteral);
  return value_;
}

const ColumnRef& Expr::column() const {
  GEQO_DCHECK(kind_ == ExprKind::kColumnRef);
  return column_;
}

const ExprPtr& Expr::left() const {
  GEQO_DCHECK(is_binary());
  return left_;
}

const ExprPtr& Expr::right() const {
  GEQO_DCHECK(is_binary());
  return right_;
}

void Expr::CollectColumns(std::vector<ColumnRef>* out) const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      out->push_back(column_);
      return;
    case ExprKind::kLiteral:
      return;
    default:
      left_->CollectColumns(out);
      right_->CollectColumns(out);
      return;
  }
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kColumnRef:
      return column_ == other.column_;
    case ExprKind::kLiteral:
      return value_.type() == other.value_.type() && value_ == other.value_;
    default:
      return left_->Equals(*other.left_) && right_->Equals(*other.right_);
  }
}

uint64_t Expr::Hash() const {
  uint64_t hash = HashCombine(0x9e3779b9, static_cast<uint64_t>(kind_));
  switch (kind_) {
    case ExprKind::kColumnRef:
      return HashCombine(hash, column_.Hash());
    case ExprKind::kLiteral:
      return HashCombine(hash, value_.Hash());
    default:
      hash = HashCombine(hash, left_->Hash());
      return HashCombine(hash, right_->Hash());
  }
}

namespace {

std::string_view ArithmeticSymbol(ExprKind kind) {
  switch (kind) {
    case ExprKind::kAdd:
      return "+";
    case ExprKind::kSub:
      return "-";
    case ExprKind::kMul:
      return "*";
    case ExprKind::kDiv:
      return "/";
    default:
      return "?";
  }
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return column_.ToString();
    case ExprKind::kLiteral:
      return value_.ToString();
    default:
      return "(" + left_->ToString() + " " +
             std::string(ArithmeticSymbol(kind_)) + " " + right_->ToString() +
             ")";
  }
}

ExprPtr Expr::RenameAliases(
    const std::vector<std::pair<std::string, std::string>>& rename) const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      for (const auto& [from, to] : rename) {
        if (column_.alias == from) return Expr::Column(to, column_.column);
      }
      return Expr::Column(column_.alias, column_.column);
    }
    case ExprKind::kLiteral:
      return Expr::Literal(value_);
    default:
      return Expr::Binary(kind_, left_->RenameAliases(rename),
                          right_->RenameAliases(rename));
  }
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Comparison::ToString() const {
  return lhs->ToString() + " " + std::string(CompareOpToString(op)) + " " +
         rhs->ToString();
}

bool Comparison::Equals(const Comparison& other) const {
  return op == other.op && lhs->Equals(*other.lhs) && rhs->Equals(*other.rhs);
}

uint64_t Comparison::Hash() const {
  uint64_t hash = HashCombine(0xc0111de, static_cast<uint64_t>(op));
  hash = HashCombine(hash, lhs->Hash());
  return HashCombine(hash, rhs->Hash());
}

void Comparison::CollectColumns(std::vector<ColumnRef>* out) const {
  lhs->CollectColumns(out);
  rhs->CollectColumns(out);
}

Comparison Comparison::RenameAliases(
    const std::vector<std::pair<std::string, std::string>>& rename) const {
  return Comparison{lhs->RenameAliases(rename), op, rhs->RenameAliases(rename)};
}

ExprPtr FoldConstants(const ExprPtr& expr) {
  if (!expr->is_binary()) return expr;
  ExprPtr left = FoldConstants(expr->left());
  ExprPtr right = FoldConstants(expr->right());
  if (left->is_literal() && right->is_literal() &&
      left->value().is_numeric() && right->value().is_numeric()) {
    const double a = left->value().AsDouble();
    const double b = right->value().AsDouble();
    double folded = 0.0;
    switch (expr->kind()) {
      case ExprKind::kAdd:
        folded = a + b;
        break;
      case ExprKind::kSub:
        folded = a - b;
        break;
      case ExprKind::kMul:
        folded = a * b;
        break;
      case ExprKind::kDiv:
        if (b == 0.0) return Expr::Binary(expr->kind(), left, right);
        folded = a / b;
        break;
      default:
        return Expr::Binary(expr->kind(), left, right);
    }
    // Preserve integer typing when both operands were integers and the
    // result is integral (keeps signatures of int workloads stable).
    if (left->value().type() == ValueType::kInt &&
        right->value().type() == ValueType::kInt &&
        folded == static_cast<double>(static_cast<int64_t>(folded))) {
      return Expr::IntLiteral(static_cast<int64_t>(folded));
    }
    return Expr::Literal(Value::Double(folded));
  }
  if (left == expr->left() && right == expr->right()) return expr;
  return Expr::Binary(expr->kind(), left, right);
}

std::optional<LinearTerm> ExtractLinearTerm(const ExprPtr& raw) {
  const ExprPtr expr = FoldConstants(raw);
  switch (expr->kind()) {
    case ExprKind::kColumnRef:
      return LinearTerm{expr->column(), 0.0, std::nullopt};
    case ExprKind::kLiteral: {
      if (expr->value().type() == ValueType::kString) {
        return LinearTerm{std::nullopt, 0.0, expr->value().AsString()};
      }
      return LinearTerm{std::nullopt, expr->value().AsDouble(), std::nullopt};
    }
    case ExprKind::kAdd:
    case ExprKind::kSub: {
      auto left = ExtractLinearTerm(expr->left());
      auto right = ExtractLinearTerm(expr->right());
      if (!left || !right) return std::nullopt;
      if (left->string_constant || right->string_constant) return std::nullopt;
      const double sign = expr->kind() == ExprKind::kAdd ? 1.0 : -1.0;
      if (left->column && right->column) return std::nullopt;  // two columns
      if (right->column && expr->kind() == ExprKind::kSub) {
        return std::nullopt;  // c - col: negative coefficient unsupported
      }
      LinearTerm out;
      out.column = left->column ? left->column : right->column;
      out.offset = left->offset + sign * right->offset;
      return out;
    }
    default:
      return std::nullopt;  // kMul/kDiv over columns: outside the fragment
  }
}

std::optional<NormalizedComparison> NormalizeComparison(const Comparison& cmp) {
  auto left = ExtractLinearTerm(cmp.lhs);
  auto right = ExtractLinearTerm(cmp.rhs);
  if (!left || !right) return std::nullopt;

  NormalizedComparison out;
  out.op = cmp.op;
  if (!left->column && right->column) {
    // Put the column on the left: c op col  =>  col flip(op) c.
    std::swap(left, right);
    out.op = FlipCompareOp(out.op);
  }
  if (!left->column) {
    return std::nullopt;  // constant-vs-constant handled by the canonicalizer
  }
  out.left = left->column;
  if (right->string_constant) {
    if (left->offset != 0.0) return std::nullopt;
    out.string_constant = right->string_constant;
    out.constant = 0.0;
    return out;
  }
  if (right->column) {
    // (lc + lo) op (rc + ro)  =>  lc - rc op (ro - lo).
    out.right = right->column;
    out.constant = right->offset - left->offset;
    // Canonical operand order: the lexicographically smaller column goes
    // left (flipping the operator), so that "a.v > b.v + 10" and
    // "b.v + 10 < a.v" normalize identically. The encoder and the signature
    // baseline rely on this; the verifier is order-insensitive anyway.
    if (*out.right < *out.left) {
      std::swap(out.left, out.right);
      out.op = FlipCompareOp(out.op);
      out.constant = -out.constant;
    }
  } else {
    // (lc + lo) op c  =>  lc op (c - lo).
    out.constant = right->offset - left->offset;
  }
  if (out.constant == 0.0) out.constant = 0.0;  // canonicalize -0.0 to +0.0
  return out;
}

std::string NormalizedComparison::ToString() const {
  std::string out = left ? left->ToString() : "<none>";
  if (right) out += " - " + right->ToString();
  out += " " + std::string(CompareOpToString(op)) + " ";
  if (string_constant) {
    out += "'" + *string_constant + "'";
  } else {
    out += std::to_string(constant);
  }
  return out;
}

}  // namespace geqo
