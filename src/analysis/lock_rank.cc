#include "analysis/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace geqo::analysis {
namespace {

/// Held-rank stack of one thread. A fixed array keeps the hot path
/// allocation-free; depth 64 comfortably covers the deepest real nesting
/// (all shard locks during a snapshot export, plus the map lock and the
/// obs locks above it).
constexpr size_t kMaxHeldLocks = 64;
thread_local LockRank t_held[kMaxHeldLocks];
thread_local size_t t_held_count = 0;

enum class Override : int { kUnset = 0, kOn = 1, kOff = 2 };
std::atomic<Override> g_override{Override::kUnset};

bool EnabledFromEnvironment() {
  if (const char* env = std::getenv("GEQO_LOCK_RANK")) {
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0) {
      return true;
    }
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) {
      return false;
    }
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

[[noreturn]] void AbortOnViolation(LockRank held, LockRank acquiring) {
  // stderr + abort, not GEQO_CHECK: the message must come out even if the
  // logging layer itself is mid-lock, and the death tests match on it.
  std::fprintf(stderr,
               "lock-rank violation: acquiring '%s' (rank %d) while holding "
               "'%s' (rank %d); locks must be acquired in ascending rank "
               "order (see analysis/lock_rank.h)\n",
               LockRankName(acquiring), static_cast<int>(acquiring),
               LockRankName(held), static_cast<int>(held));
  std::fflush(stderr);
  std::abort();
}

}  // namespace

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kCompaction:
      return "persist.compact";
    case LockRank::kVerifyDrain:
      return "serve.drain";
    case LockRank::kShard:
      return "serve.shard";
    case LockRank::kCatalogMap:
      return "serve.map";
    case LockRank::kStore:
      return "persist.store";
    case LockRank::kPendingSet:
      return "persist.pending";
    case LockRank::kWalHandle:
      return "persist.wal";
    case LockRank::kWorkQueue:
      return "common.work_queue";
    case LockRank::kGlobalPool:
      return "common.global_pool";
    case LockRank::kThreadPool:
      return "common.thread_pool";
    case LockRank::kPoolRegion:
      return "common.pool_region";
    case LockRank::kObsRegistry:
      return "obs.metrics";
    case LockRank::kObsTracer:
      return "obs.tracer";
    case LockRank::kObsTraceBuffer:
      return "obs.trace_buffer";
    case LockRank::kStatus:
      return "persist.status";
    case LockRank::kKillPoint:
      return "persist.kill_point";
    case LockRank::kLeaf:
      return "common.leaf";
  }
  return "unknown";
}

bool LockRankSameRankNestable(LockRank rank) {
  return rank == LockRank::kShard;
}

bool LockRankCheckingEnabled() {
  const Override forced = g_override.load(std::memory_order_relaxed);
  if (forced != Override::kUnset) return forced == Override::kOn;
  static const bool from_env = EnabledFromEnvironment();
  return from_env;
}

void SetLockRankCheckingForTest(bool enabled) {
  g_override.store(enabled ? Override::kOn : Override::kOff,
                   std::memory_order_relaxed);
}

void LockRankOnAcquire(LockRank rank) {
  if (!LockRankCheckingEnabled()) return;
  for (size_t i = 0; i < t_held_count; ++i) {
    const LockRank held = t_held[i];
    const bool ok = held < rank ||
                    (held == rank && LockRankSameRankNestable(rank));
    if (!ok) AbortOnViolation(held, rank);
  }
  if (t_held_count >= kMaxHeldLocks) {
    std::fprintf(stderr,
                 "lock-rank checker: thread holds more than %zu ranked "
                 "locks; raise kMaxHeldLocks in analysis/lock_rank.cc\n",
                 kMaxHeldLocks);
    std::fflush(stderr);
    std::abort();
  }
  t_held[t_held_count++] = rank;
}

void LockRankOnRelease(LockRank rank) {
  if (!LockRankCheckingEnabled()) return;
  // Most-recent matching entry: guards release in destructor order, but
  // e.g. a snapshot export drops its shard locks front to back.
  for (size_t i = t_held_count; i > 0; --i) {
    if (t_held[i - 1] == rank) {
      for (size_t j = i - 1; j + 1 < t_held_count; ++j) {
        t_held[j] = t_held[j + 1];
      }
      --t_held_count;
      return;
    }
  }
  // Not found: the checker was toggled on while this lock was already
  // held, or its acquisition predates the override. Ignore.
}

size_t HeldLockCountForTest() { return t_held_count; }

}  // namespace geqo::analysis
