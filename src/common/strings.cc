#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace geqo {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace geqo
