#pragma once

#include <vector>

#include "filters/emf_filter.h"
#include "filters/schema_filter.h"
#include "filters/vmf.h"
#include "verify/verifier.h"
#include "workload/labeled_data.h"

/// \file geqo.h
/// The end-to-end GEqO pipeline (Equations 1-2, §2.2): filters applied in
/// decreasing order of speed and increasing order of precision — SF groups,
/// VMF candidate pairs, EMF classification — with the automated verifier
/// eliminating false positives last. Filters short-circuit: a pair rejected
/// by any stage is never seen by later stages.
///
/// DetectEquivalences parallelizes every stage but the (cheap) schema filter
/// across the global ThreadPool: encoding per plan, VMF per SF-group, EMF
/// per batch shard, and verification per pair with per-thread verifier
/// instances. Output is deterministic — candidates and equivalences are
/// sorted by workload index pair and identical at any thread count
/// (GEQO_THREADS / ThreadPool::SetGlobalThreads).

namespace geqo {

/// \brief Which filters run (the Fig-14 ablation toggles these) and their
/// parameters.
struct GeqoOptions {
  bool use_sf = true;
  bool use_vmf = true;
  bool use_emf = true;
  bool run_verifier = true;  ///< disable to inspect raw filter output
  VmfOptions vmf;
  EmfFilterOptions emf;
  VerifierOptions verifier;
};

/// \brief Per-stage accounting for one DetectEquivalences run.
struct StageStats {
  double seconds = 0.0;
  size_t pairs_in = 0;
  size_t pairs_out = 0;
};

/// \brief Output of GEqO_SET. Pair lists are sorted ascending by
/// (first, second) workload index regardless of grouping or thread count.
struct GeqoResult {
  /// Verified equivalent pairs (workload indices, i < j).
  std::vector<std::pair<size_t, size_t>> equivalences;
  /// Pairs surviving all filters (the verifier's input).
  std::vector<std::pair<size_t, size_t>> candidates;
  size_t total_pairs = 0;  ///< |W| * (|W|-1) / 2
  StageStats sf_stats;
  StageStats vmf_stats;
  StageStats emf_stats;
  StageStats verify_stats;
  double total_seconds = 0.0;
};

/// \brief The GEqO pipeline over a fixed catalog, model, and layouts.
class GeqoPipeline {
 public:
  GeqoPipeline(const Catalog* catalog, ml::EmfModel* model,
               const EncodingLayout* instance_layout,
               const EncodingLayout* agnostic_layout,
               GeqoOptions options = GeqoOptions())
      : catalog_(catalog),
        model_(model),
        instance_layout_(instance_layout),
        agnostic_layout_(agnostic_layout),
        options_(options),
        verifier_(catalog, options.verifier) {}

  /// GEqO_SET(W, F): approximates the equivalence set of \p workload.
  Result<GeqoResult> DetectEquivalences(const std::vector<PlanPtr>& workload,
                                        ValueRange value_range);

  /// GEqO_PAIR(q_i, q_j, F): the pairwise special case.
  Result<bool> CheckPair(const PlanPtr& a, const PlanPtr& b,
                         ValueRange value_range);

  SpesVerifier& verifier() { return verifier_; }
  const GeqoOptions& options() const { return options_; }
  /// Adjusts the VMF threshold tau (used after CalibrateVmfRadius).
  void set_vmf_radius(float radius) { options_.vmf.radius = radius; }
  /// Adjusts the EMF decision threshold (used after CalibrateEmfThreshold).
  void set_emf_threshold(float threshold) { options_.emf.threshold = threshold; }

 private:
  const Catalog* catalog_;
  ml::EmfModel* model_;
  const EncodingLayout* instance_layout_;
  const EncodingLayout* agnostic_layout_;
  GeqoOptions options_;
  SpesVerifier verifier_;
};

}  // namespace geqo
