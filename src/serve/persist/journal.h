#pragma once

#include <cstddef>
#include <cstdint>

/// \file journal.h
/// The mutation-journal sink the serving catalogs speak. A CatalogStore
/// attaches one of these to the catalog it owns; the catalog then reports
/// every durable mutation — entry adds, verifier verdicts, union-find
/// proofs, pending-verification enqueues — at the moment it applies, and
/// the store appends the matching delta-log record. Detached (the default),
/// every hook is a null-pointer check.
///
/// Contract:
///   - Ids are *global* entry ids (for a single EquivalenceCatalog, global
///     == local). \p shard names the log partition; a single catalog always
///     reports shard 0.
///   - Hooks for state mutations (add / verdict / union) are invoked while
///     the mutation's lock is still held, so each partition's record order
///     matches its shard's state-evolution order.
///   - Hooks return void: the catalog cannot roll a mutation back, so a
///     failed append latches an error inside the store (surfaced by
///     CatalogStore::status/Checkpoint/Close) instead of poisoning the
///     serving path.

namespace geqo::serve::persist {

class CatalogJournal {
 public:
  virtual ~CatalogJournal() = default;

  /// Entry \p gid was added with the given canonical / secondary hashes.
  virtual void OnAdd(size_t shard, uint64_t gid, uint64_t canonical_hash,
                     uint64_t check_hash) = 0;

  /// A verifier verdict was memoized under the order-normalized key
  /// (key_lo, key_hi) with check pair (check_lo, check_hi).
  /// \p verdict is the EquivalenceVerdict byte.
  virtual void OnVerdict(size_t shard, uint64_t key_lo, uint64_t key_hi,
                         uint64_t check_lo, uint64_t check_hi,
                         uint8_t verdict) = 0;

  /// Classes of entries \p a_gid and \p b_gid were proven equivalent and
  /// merged.
  virtual void OnUnion(size_t shard, uint64_t a_gid, uint64_t b_gid) = 0;

  /// Pair (query \p query_gid, member \p member_gid) was handed to the
  /// async verifier plane — it must survive a crash until resolved.
  virtual void OnPending(size_t shard, uint64_t query_gid,
                         uint64_t member_gid) = 0;

  /// The pair's verification task retired (its class was decided or
  /// exhausted): the pair no longer needs carrying across a log rotation.
  /// Not a log record — bookkeeping for the store's outstanding set.
  virtual void OnPendingResolved(size_t shard, uint64_t query_gid,
                                 uint64_t member_gid) = 0;
};

}  // namespace geqo::serve::persist
