#include "ml/logistic.h"

#include <cmath>

#include "common/check.h"

namespace geqo::ml {
namespace {

float SigmoidScalar(float z) { return 1.0f / (1.0f + std::exp(-z)); }

}  // namespace

void LogisticRegression::Train(const Tensor& features, const Tensor& labels) {
  GEQO_CHECK(features.rows() == labels.rows() && labels.cols() == 1);
  const size_t n = features.rows();
  const size_t d = features.cols();
  weights_ = Tensor(1, d);
  bias_ = 0.0f;
  const float inv_n = 1.0f / static_cast<float>(n);

  std::vector<float> gradient(d);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(gradient.begin(), gradient.end(), 0.0f);
    float bias_gradient = 0.0f;
    for (size_t i = 0; i < n; ++i) {
      const float* row = features.Row(i);
      float z = bias_;
      for (size_t c = 0; c < d; ++c) z += weights_.At(0, c) * row[c];
      const float error = SigmoidScalar(z) - labels.At(i, 0);
      for (size_t c = 0; c < d; ++c) gradient[c] += error * row[c];
      bias_gradient += error;
    }
    for (size_t c = 0; c < d; ++c) {
      weights_.At(0, c) -=
          options_.learning_rate *
          (gradient[c] * inv_n + options_.l2 * weights_.At(0, c));
    }
    bias_ -= options_.learning_rate * bias_gradient * inv_n;
  }
}

std::vector<float> LogisticRegression::PredictProba(
    const Tensor& features) const {
  GEQO_CHECK(features.cols() == weights_.cols());
  std::vector<float> out;
  out.reserve(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    const float* row = features.Row(i);
    float z = bias_;
    for (size_t c = 0; c < features.cols(); ++c) {
      z += weights_.At(0, c) * row[c];
    }
    out.push_back(SigmoidScalar(z));
  }
  return out;
}

}  // namespace geqo::ml
