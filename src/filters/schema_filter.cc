#include "filters/schema_filter.h"

#include <algorithm>
#include <map>

#include "plan/spj.h"

namespace geqo {

Result<std::vector<SfGroup>> SchemaFilter(const std::vector<PlanPtr>& workload,
                                          const Catalog& catalog) {
  std::map<std::pair<std::vector<std::string>, size_t>, size_t> group_index;
  std::vector<SfGroup> groups;
  for (size_t i = 0; i < workload.size(); ++i) {
    std::vector<std::string> tables = SortedTableNames(workload[i]);
    tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
    GEQO_ASSIGN_OR_RETURN(const size_t arity,
                          workload[i]->NumOutputColumns(catalog));
    const auto key = std::make_pair(tables, arity);
    const auto it = group_index.find(key);
    if (it == group_index.end()) {
      group_index.emplace(key, groups.size());
      groups.push_back(SfGroup{std::move(tables), arity, {i}});
    } else {
      groups[it->second].members.push_back(i);
    }
  }
  return groups;
}

size_t CountIntraGroupPairs(const std::vector<SfGroup>& groups) {
  size_t pairs = 0;
  for (const SfGroup& group : groups) {
    pairs += group.members.size() * (group.members.size() - 1) / 2;
  }
  return pairs;
}

Result<bool> SchemaFilterPair(const PlanPtr& a, const PlanPtr& b,
                              const Catalog& catalog) {
  std::vector<std::string> tables_a = SortedTableNames(a);
  std::vector<std::string> tables_b = SortedTableNames(b);
  tables_a.erase(std::unique(tables_a.begin(), tables_a.end()), tables_a.end());
  tables_b.erase(std::unique(tables_b.begin(), tables_b.end()), tables_b.end());
  if (tables_a != tables_b) return false;
  GEQO_ASSIGN_OR_RETURN(const size_t arity_a, a->NumOutputColumns(catalog));
  GEQO_ASSIGN_OR_RETURN(const size_t arity_b, b->NumOutputColumns(catalog));
  return arity_a == arity_b;
}

}  // namespace geqo
