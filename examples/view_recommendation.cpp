/// \file view_recommendation.cpp
/// Workload-scale equivalence detection feeding a view recommender.
///
/// This is the paper's motivating application (§1): a large analytic
/// workload is riddled with semantically equivalent subexpressions written
/// by different authors; detecting them is the first step of materialized-
/// view selection. We:
///   1. generate a TPC-DS-style workload with hidden redundancy,
///   2. enumerate every subexpression (§2.1),
///   3. run GEqO_SET to find the equivalence classes, and
///   4. rank the classes by execution cost measured on synthetic data —
///      the top classes are the views worth materializing.
///
///   ./view_recommendation

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>

#include "core/geqo_system.h"
#include "exec/executor.h"
#include "plan/subexpr.h"
#include "workload/schemas.h"

int main() {
  const geqo::Catalog catalog = geqo::MakeTpcdsCatalog();

  // --- 1. A workload with planted redundancy -----------------------------
  geqo::Rng rng(77);
  geqo::GeneratorOptions generator_options;
  geqo::QueryGenerator generator(&catalog, generator_options);
  geqo::Rewriter rewriter(&catalog);

  std::vector<geqo::PlanPtr> queries;
  for (int i = 0; i < 30; ++i) queries.push_back(generator.Generate(&rng));
  // A third of the queries get semantically-equal rewrites, as if another
  // team had written the same computation differently.
  for (int i = 0; i < 10; ++i) {
    auto variant = rewriter.RewriteOnce(queries[static_cast<size_t>(i)], &rng);
    GEQO_CHECK(variant.ok());
    queries.push_back(*variant);
  }

  const std::vector<geqo::PlanPtr> workload =
      geqo::EnumerateWorkloadSubexpressions(queries);
  std::printf("Workload: %zu queries -> %zu distinct subexpressions "
              "(%zu candidate pairs)\n",
              queries.size(), workload.size(),
              workload.size() * (workload.size() - 1) / 2);

  // --- 2. Train GEqO and detect the equivalence set ----------------------
  geqo::GeqoSystemOptions options;
  options.model.conv1_size = 64;
  options.model.conv2_size = 64;
  options.model.fc1_size = 64;
  options.model.fc2_size = 32;
  options.model.dropout = 0.2f;
  options.training.epochs = 8;
  options.synthetic_data.num_base_queries = 50;
  options.pipeline.vmf.radius = 2.0f;
  options.pipeline.emf.threshold = 0.3f;
  geqo::GeqoSystem system(&catalog, options);
  std::printf("Training the EMF on synthetic TPC-DS rewrites...\n");
  GEQO_CHECK_OK(system.TrainOnSyntheticWorkload(/*seed=*/7).status());

  auto result = system.DetectEquivalences(workload);
  GEQO_CHECK_OK(result.status());
  std::printf("GEqO found %zu equivalent pairs in %.2fs:\n%s",
              result->equivalences.size(), result->total_seconds,
              geqo::StageReport::FormatTable(result->stages).c_str());

  // --- 3. Union-find the pairs into classes ------------------------------
  std::vector<size_t> parent(workload.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  const std::function<size_t(size_t)> find = [&](size_t x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (const auto& [i, j] : result->equivalences) parent[find(i)] = find(j);

  std::map<size_t, std::vector<size_t>> classes;
  for (size_t i = 0; i < workload.size(); ++i) classes[find(i)].push_back(i);

  // --- 4. Cost the classes on synthetic data and recommend views ---------
  geqo::DataGenOptions data_options;
  data_options.default_rows = 400;
  data_options.rows_per_table["store_sales"] = 2000;
  data_options.rows_per_table["catalog_sales"] = 1500;
  data_options.rows_per_table["web_sales"] = 1200;
  const geqo::Database db = geqo::Database::Generate(catalog, data_options);
  geqo::Executor executor(&db);

  struct Recommendation {
    size_t representative;
    size_t occurrences;
    double saved_seconds;
  };
  std::vector<Recommendation> recommendations;
  for (const auto& [root, members] : classes) {
    if (members.size() < 2) continue;
    geqo::ExecStats stats;
    const auto rows = executor.Execute(workload[members[0]], &stats);
    if (!rows.ok()) continue;  // e.g. outer-join subexpression
    recommendations.push_back(Recommendation{
        members[0], members.size(),
        stats.seconds * static_cast<double>(members.size() - 1)});
  }
  std::sort(recommendations.begin(), recommendations.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return a.saved_seconds > b.saved_seconds;
            });

  std::printf("\nTop view recommendations (by estimated time saved):\n");
  const size_t top = std::min<size_t>(5, recommendations.size());
  for (size_t r = 0; r < top; ++r) {
    const Recommendation& rec = recommendations[r];
    std::printf("--- view %zu: %zu equivalent occurrences, saves ~%.1f ms "
                "per workload run ---\n%s",
                r + 1, rec.occurrences, rec.saved_seconds * 1e3,
                workload[rec.representative]->ToString().c_str());
  }
  if (recommendations.empty()) {
    std::printf("  (no multi-member equivalence classes found)\n");
    return 1;
  }
  return 0;
}
