#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

namespace geqo::nn {
namespace {

constexpr uint64_t kMagic = 0x4745514f4d4f444cULL;  // "GEQOMODL"

}  // namespace

Status SaveState(const std::vector<StateEntry>& state,
                 const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  auto write_u64 = [&](uint64_t v) {
    file.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_u64(kMagic);
  write_u64(state.size());
  for (const auto& [name, tensor] : state) {
    write_u64(name.size());
    file.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(tensor->rows());
    write_u64(tensor->cols());
    file.write(reinterpret_cast<const char*>(tensor->data()),
               static_cast<std::streamsize>(tensor->size() * sizeof(float)));
  }
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadState(const std::vector<StateEntry>& state,
                 const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  auto read_u64 = [&]() {
    uint64_t v = 0;
    file.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  if (read_u64() != kMagic) return Status::IoError("bad magic: " + path);
  const uint64_t count = read_u64();
  if (count != state.size()) {
    return Status::InvalidArgument(
        "state entry count mismatch loading " + path);
  }
  for (const auto& [name, tensor] : state) {
    const uint64_t name_size = read_u64();
    std::string saved_name(name_size, '\0');
    file.read(saved_name.data(), static_cast<std::streamsize>(name_size));
    if (saved_name != name) {
      return Status::InvalidArgument("state name mismatch: expected " + name +
                                     ", found " + saved_name);
    }
    const uint64_t rows = read_u64();
    const uint64_t cols = read_u64();
    if (rows != tensor->rows() || cols != tensor->cols()) {
      return Status::InvalidArgument("state shape mismatch for " + name);
    }
    file.read(reinterpret_cast<char*>(tensor->data()),
              static_cast<std::streamsize>(tensor->size() * sizeof(float)));
    if (!file.good()) return Status::IoError("truncated state file: " + path);
  }
  return Status::OK();
}

Result<size_t> StateFileSize(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::IoError("cannot open: " + path);
  return static_cast<size_t>(file.tellg());
}

}  // namespace geqo::nn
