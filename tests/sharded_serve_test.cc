#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/lock_rank.h"
#include "core/geqo_system.h"
#include "serve/sharded_catalog.h"
#include "test_util.h"
#include "workload/schemas.h"

// The sharded serving catalog's concurrency contract: probes never block
// behind verification, concurrent probers and adders agree with a
// single-threaded oracle replay, proofs are never retracted, the async
// plane loses no verdicts across a drain, and GEQOSHRD snapshots round-trip
// the pending-verification tail. The whole suite runs under the TSan lane
// of scripts/check.sh.

namespace geqo {
namespace {

using serve::MatchVerdict;
using serve::ProbeMatch;
using serve::ShardedCatalog;
using serve::ShardedCatalogOptions;
using serve::ShardedProbeResult;
using testing::MustParse;

class ShardedServeTest : public ::testing::Test {
 protected:
  static GeqoSystem& System() {
    static GeqoSystem* system = [] {
      static Catalog catalog = MakeTpchCatalog();
      GeqoSystemOptions options;
      options.model.conv1_size = 32;
      options.model.conv2_size = 32;
      options.model.fc1_size = 32;
      options.model.fc2_size = 16;
      options.model.dropout = 0.2f;
      options.training.epochs = 8;
      options.synthetic_data.num_base_queries = 40;
      auto* out = new GeqoSystem(&catalog, options);
      GEQO_CHECK_OK(out->TrainOnSyntheticWorkload(0xC0DE).status());
      return out;
    }();
    return *system;
  }

  /// Four signature groups (lineitem, supplier, orders, customer) so the
  /// plans spread across shards; each group carries equivalent rewrites and
  /// the lineitem group a near-miss.
  static std::vector<PlanPtr> StreamPlans() {
    const Catalog& catalog = System().catalog();
    return {
        MustParse("SELECT l_orderkey FROM lineitem WHERE l_quantity + 5 > 25",
                  catalog),
        MustParse("SELECT l_orderkey FROM lineitem WHERE 20 < l_quantity",
                  catalog),
        MustParse("SELECT l_orderkey FROM lineitem WHERE l_quantity > 20",
                  catalog),
        MustParse("SELECT l_orderkey FROM lineitem WHERE l_quantity > 21",
                  catalog),
        MustParse("SELECT s_suppkey FROM supplier WHERE s_acctbal > 40",
                  catalog),
        MustParse("SELECT s_suppkey FROM supplier WHERE 40 < s_acctbal",
                  catalog),
        MustParse("SELECT o_orderkey FROM orders WHERE o_totalprice > 100",
                  catalog),
        MustParse("SELECT o_orderkey FROM orders WHERE 100 < o_totalprice",
                  catalog),
        MustParse("SELECT c_custkey FROM customer WHERE c_acctbal > 10",
                  catalog),
        MustParse("SELECT c_custkey FROM customer WHERE 10 < c_acctbal",
                  catalog),
    };
  }

  static std::unique_ptr<ShardedCatalog> Open(size_t num_shards,
                                              size_t verifier_threads) {
    ShardedCatalogOptions options;
    options.catalog.pipeline = System().options().pipeline;
    options.num_shards = num_shards;
    options.verifier_threads = verifier_threads;
    return System().OpenShardedCatalog(options);
  }

  /// The partition-agreement oracle: replays \p sharded's entries (in global
  /// Add order) through a plain single-threaded EquivalenceCatalog and
  /// demands the same same-class relation for every entry pair.
  static void ExpectOracleAgreement(const ShardedCatalog& sharded) {
    auto oracle = System().OpenCatalog();
    for (size_t gid = 0; gid < sharded.size(); ++gid) {
      const auto added = oracle->ProbeAdd(sharded.plan(gid));
      ASSERT_TRUE(added.ok()) << added.status().ToString();
    }
    for (size_t i = 0; i < sharded.size(); ++i) {
      for (size_t j = i + 1; j < sharded.size(); ++j) {
        EXPECT_EQ(sharded.ClassOf(i) == sharded.ClassOf(j),
                  oracle->ClassOf(i) == oracle->ClassOf(j))
            << "entries " << i << " and " << j
            << " disagree with the oracle replay";
      }
    }
    EXPECT_EQ(sharded.NumClasses(), oracle->NumClasses());
  }
};

TEST_F(ShardedServeTest, InvalidOptionsArePoison) {
  ShardedCatalogOptions options;
  options.catalog.pipeline = System().options().pipeline;
  options.num_shards = 0;
  auto zero_shards = System().OpenShardedCatalog(options);
  EXPECT_FALSE(zero_shards->Probe(StreamPlans()[0]).ok());

  options.num_shards = 2;
  options.verifier_threads = 0;
  options.verify_queue_capacity = 8;  // bounded queue with no consumer
  auto deadlock_prone = System().OpenShardedCatalog(options);
  EXPECT_FALSE(deadlock_prone->ProbeAdd(StreamPlans()[0]).ok());
}

TEST_F(ShardedServeTest, DeferredModeMatchesOracleAfterDrain) {
  auto sharded = Open(/*num_shards=*/3, /*verifier_threads=*/0);
  const std::vector<PlanPtr> plans = StreamPlans();
  for (const PlanPtr& plan : plans) {
    const auto result = sharded->ProbeAdd(plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  // Nothing verified yet: equivalences are still queued classes.
  EXPECT_GT(sharded->PendingVerifications(), 0u);
  sharded->DrainPendingVerifications();
  EXPECT_EQ(sharded->PendingVerifications(), 0u);
  ExpectOracleAgreement(*sharded);

  // Once drained, a repeat probe answers decisively from the memo and the
  // class forest — nothing new reaches the async plane.
  const auto probe = sharded->Probe(plans[2]);
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->pending_classes, 0u);
  ASSERT_TRUE(probe->representative.has_value());
  EXPECT_EQ(*probe->representative, 0u);
  std::vector<size_t> proven;
  for (const ProbeMatch& match : probe->matches) {
    if (match.verdict == MatchVerdict::kProven) proven.push_back(match.id);
    EXPECT_NE(match.verdict, MatchVerdict::kLikely);
  }
  EXPECT_EQ(probe->proven_ids, (std::vector<size_t>{0, 1, 2}));

  // Stage accounting carries the shard tag and the prepare stage, and
  // seconds is the stage sum (same contract as the unsharded probe path).
  ASSERT_FALSE(probe->stages.empty());
  EXPECT_EQ(probe->stages.front().name, "prepare");
  double stage_sum = 0.0;
  for (const StageReport& stage : probe->stages) {
    if (stage.name != "prepare") {
      EXPECT_EQ(stage.shard, static_cast<int>(probe->shard)) << stage.name;
    }
    stage_sum += stage.seconds;
  }
  EXPECT_DOUBLE_EQ(probe->seconds, stage_sum);
}

TEST_F(ShardedServeTest, BackgroundWorkersLoseNoVerdicts) {
  auto sharded = Open(/*num_shards=*/4, /*verifier_threads=*/2);
  for (const PlanPtr& plan : StreamPlans()) {
    ASSERT_TRUE(sharded->ProbeAdd(plan).ok());
  }
  sharded->DrainPendingVerifications();
  EXPECT_EQ(sharded->PendingVerifications(), 0u);
  const auto stats = sharded->stats();
  EXPECT_EQ(stats.verify_tasks_completed, stats.verify_tasks_enqueued);
  ExpectOracleAgreement(*sharded);
}

TEST_F(ShardedServeTest, ConcurrentProbersAndAddersAgreeWithOracle) {
  auto sharded = Open(/*num_shards=*/4, /*verifier_threads=*/2);
  const std::vector<PlanPtr> plans = StreamPlans();
  // Warm start so probers have something to hit from the first iteration.
  for (const PlanPtr& plan : plans) {
    ASSERT_TRUE(sharded->ProbeAdd(plan).ok());
  }

  constexpr int kProbers = 4;
  constexpr int kAdders = 2;
  constexpr int kProbeRounds = 25;
  std::atomic<bool> failed{false};
  // Every probe result a prober saw, for the no-retraction check below.
  std::vector<std::vector<ShardedProbeResult>> seen(kProbers);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProbers; ++p) {
    threads.emplace_back([&, p] {
      for (int round = 0; round < kProbeRounds; ++round) {
        const auto result = sharded->Probe(plans[(p + round) % plans.size()]);
        if (!result.ok()) {
          failed = true;
          return;
        }
        seen[p].push_back(*result);
      }
    });
  }
  for (int a = 0; a < kAdders; ++a) {
    threads.emplace_back([&] {
      for (const PlanPtr& plan : plans) {
        if (!sharded->ProbeAdd(plan).ok()) {
          failed = true;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_FALSE(failed.load());
  ASSERT_EQ(sharded->size(), plans.size() * (1 + kAdders));

  sharded->DrainPendingVerifications();
  EXPECT_EQ(sharded->PendingVerifications(), 0u);

  // Proofs are monotone: everything a mid-stream probe reported proven is
  // still one class in the final state, never split back apart.
  for (const auto& prober_results : seen) {
    for (const ShardedProbeResult& result : prober_results) {
      if (!result.representative.has_value()) continue;
      const size_t root = sharded->ClassOf(*result.representative);
      for (const size_t id : result.proven_ids) {
        EXPECT_EQ(sharded->ClassOf(id), root);
      }
    }
  }

  ExpectOracleAgreement(*sharded);

  const auto stats = sharded->stats();
  EXPECT_EQ(stats.adds, plans.size() * (1 + kAdders));
  EXPECT_EQ(stats.probes,
            plans.size() * (1 + kAdders) + kProbers * kProbeRounds);
  EXPECT_EQ(stats.verify_tasks_completed, stats.verify_tasks_enqueued);
}

TEST_F(ShardedServeTest, SnapshotRoundTripsStateAndPendingTail) {
  auto original = Open(/*num_shards=*/3, /*verifier_threads=*/0);
  const std::vector<PlanPtr> plans = StreamPlans();
  std::vector<PlanPtr> in_add_order;
  for (const PlanPtr& plan : plans) {
    ASSERT_TRUE(original->ProbeAdd(plan).ok());
    in_add_order.push_back(plan);
  }
  ASSERT_GT(original->PendingVerifications(), 0u);
  const size_t pending_before = original->PendingVerifications();

  std::stringstream snapshot;
  ASSERT_TRUE(original->ExportSnapshot(snapshot).ok());

  ShardedCatalogOptions load_options;
  load_options.catalog.pipeline = System().options().pipeline;
  load_options.verifier_threads = 0;
  load_options.num_shards = 9999;  // ignored: the snapshot's count wins
  auto loaded_or =
      System().ImportShardedSnapshot(snapshot, in_add_order, load_options);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  auto loaded = std::move(*loaded_or);

  EXPECT_EQ(loaded->num_shards(), 3u);
  EXPECT_EQ(loaded->size(), original->size());
  EXPECT_EQ(loaded->memo_size(), original->memo_size());
  // The pending-verification backlog survived the restart (every queued
  // task here is entry-entry, so none are dropped).
  EXPECT_EQ(loaded->PendingVerifications(), pending_before);
  EXPECT_EQ(loaded->stats().dropped_probe_tasks, 0u);

  // Draining the restored backlog converges to the same classes as draining
  // the uninterrupted catalog — and the drained snapshots are bit-identical.
  original->DrainPendingVerifications();
  loaded->DrainPendingVerifications();
  EXPECT_EQ(loaded->PendingVerifications(), 0u);
  for (size_t gid = 0; gid < original->size(); ++gid) {
    EXPECT_EQ(loaded->ClassOf(gid), original->ClassOf(gid)) << gid;
  }
  std::ostringstream original_bytes;
  std::ostringstream loaded_bytes;
  ASSERT_TRUE(original->ExportSnapshot(original_bytes).ok());
  ASSERT_TRUE(loaded->ExportSnapshot(loaded_bytes).ok());
  EXPECT_EQ(original_bytes.str(), loaded_bytes.str());
}

TEST_F(ShardedServeTest, OverlappingSavesUnderActiveVerifierLoad) {
  ShardedCatalogOptions options;
  options.catalog.pipeline = System().options().pipeline;
  // Stall each verifier call so the Saves below land while workers are
  // mid-task with a queued backlog — the shape where Pause() used to wait
  // forever for an idle signal TaskDone only sent on an empty queue.
  options.catalog.pipeline.verifier.modeled_invocation_stall_seconds = 0.002;
  options.num_shards = 3;
  options.verifier_threads = 2;
  auto sharded = System().OpenShardedCatalog(options);
  const std::vector<PlanPtr> plans = StreamPlans();
  for (const PlanPtr& plan : plans) {
    ASSERT_TRUE(sharded->ProbeAdd(plan).ok());
  }

  // Overlapping exports from several threads: the queue pause must nest, so
  // no export observes workers retiring tasks mid-snapshot.
  constexpr int kSavers = 3;
  std::vector<std::string> snapshots(kSavers);
  std::atomic<bool> save_failed{false};
  std::vector<std::thread> savers;
  for (int i = 0; i < kSavers; ++i) {
    savers.emplace_back([&, i] {
      std::ostringstream bytes;
      if (sharded->ExportSnapshot(bytes).ok()) {
        snapshots[i] = bytes.str();
      } else {
        save_failed = true;
      }
    });
  }
  for (std::thread& saver : savers) saver.join();
  ASSERT_FALSE(save_failed.load());

  sharded->DrainPendingVerifications();
  EXPECT_EQ(sharded->PendingVerifications(), 0u);
  const auto stats = sharded->stats();
  EXPECT_EQ(stats.verify_tasks_completed, stats.verify_tasks_enqueued);
  ExpectOracleAgreement(*sharded);

  // Every snapshot captured a consistent state: restoring one and draining
  // its saved pending tail converges to the same classes as the catalog
  // that was never interrupted — no pending verification was lost to an
  // overlapping Save.
  for (int i = 0; i < kSavers; ++i) {
    std::stringstream stream(snapshots[i]);
    ShardedCatalogOptions load_options;
    load_options.catalog.pipeline = System().options().pipeline;
    load_options.verifier_threads = 0;
    auto loaded_or = System().ImportShardedSnapshot(stream, plans, load_options);
    ASSERT_TRUE(loaded_or.ok())
        << "snapshot " << i << ": " << loaded_or.status().ToString();
    auto loaded = std::move(*loaded_or);
    loaded->DrainPendingVerifications();
    for (size_t gid = 0; gid < sharded->size(); ++gid) {
      EXPECT_EQ(loaded->ClassOf(gid), sharded->ClassOf(gid))
          << "snapshot " << i << ", entry " << gid;
    }
  }
}

TEST_F(ShardedServeTest, ProbePreparationDoesNotRaceShardZeroInserts) {
  // Regression: prep() used to return shard 0's *live* catalog, so every
  // probe's prepare/embed stage read a guarded member with no lock while
  // shard-0 inserts mutated it — a data race TSan flags and the thread-
  // safety annotations reject. With one shard, every add lands on shard 0,
  // maximizing pressure on the (now insert-immune) preparation catalog.
  auto sharded = Open(/*num_shards=*/1, /*verifier_threads=*/2);
  const std::vector<PlanPtr> plans = StreamPlans();
  ASSERT_TRUE(sharded->ProbeAdd(plans[0]).ok());

  constexpr int kProbers = 3;
  constexpr int kAdders = 3;
  constexpr int kRounds = 20;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProbers; ++p) {
    threads.emplace_back([&, p] {
      for (int round = 0; round < kRounds; ++round) {
        if (!sharded->Probe(plans[(p + round) % plans.size()]).ok()) {
          failed = true;
          return;
        }
      }
    });
  }
  for (int a = 0; a < kAdders; ++a) {
    threads.emplace_back([&] {
      for (const PlanPtr& plan : plans) {
        if (!sharded->ProbeAdd(plan).ok()) {
          failed = true;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_FALSE(failed.load());
  sharded->DrainPendingVerifications();
  ExpectOracleAgreement(*sharded);
}

TEST_F(ShardedServeTest, ServeLatticeIsRankCleanIncludingSnapshotImport) {
  // Regression: ImportSnapshot used to install the rebuilt global map and
  // per-shard state through unlocked writes to guarded members. It now
  // stages everything in locals and installs under the shard locks, then
  // the map lock — ascending rank order. Running the full serve workout
  // with the runtime rank checker armed turns any ordering regression
  // (here or anywhere on the probe/add/verify/export/import paths) into a
  // deterministic abort, on every schedule.
  analysis::SetLockRankCheckingForTest(true);
  struct RestoreChecker {
    ~RestoreChecker() { analysis::SetLockRankCheckingForTest(false); }
  } restore;

  auto sharded = Open(/*num_shards=*/3, /*verifier_threads=*/2);
  const std::vector<PlanPtr> plans = StreamPlans();
  std::vector<PlanPtr> in_add_order;
  for (const PlanPtr& plan : plans) {
    ASSERT_TRUE(sharded->ProbeAdd(plan).ok());
    in_add_order.push_back(plan);
  }
  ASSERT_TRUE(sharded->Probe(plans[0]).ok());

  std::stringstream snapshot;
  ASSERT_TRUE(sharded->ExportSnapshot(snapshot).ok());
  ShardedCatalogOptions load_options;
  load_options.catalog.pipeline = System().options().pipeline;
  load_options.verifier_threads = 0;
  auto loaded_or =
      System().ImportShardedSnapshot(snapshot, in_add_order, load_options);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  auto loaded = std::move(*loaded_or);
  loaded->DrainPendingVerifications();
  sharded->DrainPendingVerifications();
  for (size_t gid = 0; gid < sharded->size(); ++gid) {
    EXPECT_EQ(loaded->ClassOf(gid), sharded->ClassOf(gid)) << gid;
  }
}

TEST_F(ShardedServeTest, ProbeOnlyPendingTasksAreDroppedAtSaveAndCounted) {
  auto sharded = Open(/*num_shards=*/2, /*verifier_threads=*/0);
  const std::vector<PlanPtr> plans = StreamPlans();
  ASSERT_TRUE(sharded->ProbeAdd(plans[0]).ok());
  // A plain probe of an equivalent rewrite queues a task whose query is not
  // a catalog entry — unsaveable by design.
  const auto probe = sharded->Probe(plans[1]);
  ASSERT_TRUE(probe.ok());
  ASSERT_GT(probe->pending_classes, 0u);
  // The probe itself reports that its tasks cannot survive a restart.
  EXPECT_EQ(probe->probe_only_pending, probe->pending_classes);

  std::ostringstream bytes;
  ASSERT_TRUE(sharded->ExportSnapshot(bytes).ok());
  EXPECT_GT(sharded->stats().dropped_probe_tasks, 0u);

  // The probe-only task was dropped from the snapshot but not from the live
  // queue: draining still applies its verdict to the memo.
  sharded->DrainPendingVerifications();
  const auto again = sharded->Probe(plans[1]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->pending_classes, 0u);
  EXPECT_GT(again->memo_hits, 0u);
}

}  // namespace
}  // namespace geqo
