#include <gtest/gtest.h>

#include "parser/parser.h"
#include "parser/tokenizer.h"
#include "test_util.h"

namespace geqo {
namespace {

using testing::MakeFigure1Catalog;
using testing::MustParse;

TEST(TokenizerTest, BasicTokens) {
  const auto tokens = Tokenize("SELECT a.x, 10 FROM t WHERE y >= 2.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "select");
  EXPECT_EQ((*tokens)[1].text, "a");
  EXPECT_TRUE((*tokens)[2].IsSymbol("."));
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kInteger);
  EXPECT_TRUE((*tokens)[10].IsSymbol(">="));
  EXPECT_EQ((*tokens)[11].kind, TokenKind::kFloat);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEndOfInput);
}

TEST(TokenizerTest, StringLiterals) {
  const auto tokens = Tokenize("name = 'O''Brien'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[2].text, "O'Brien");
}

TEST(TokenizerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("x = 'oops").status().IsParseError());
}

TEST(TokenizerTest, NotEqualsVariants) {
  const auto tokens = Tokenize("a != b <> c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<>"));
  EXPECT_TRUE((*tokens)[3].IsSymbol("<>"));
}

TEST(TokenizerTest, RejectsStrayCharacters) {
  EXPECT_TRUE(Tokenize("select @x").status().IsParseError());
}

TEST(ParserTest, SimpleSelect) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse("SELECT a.x FROM a WHERE a.val > 3", catalog);
  EXPECT_EQ(plan->kind(), OpKind::kProject);
  EXPECT_EQ(plan->child(0)->kind(), OpKind::kSelect);
  EXPECT_EQ(plan->child(0)->child(0)->kind(), OpKind::kScan);
}

TEST(ParserTest, SelectStarHasNoProject) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse("SELECT * FROM a", catalog);
  EXPECT_EQ(plan->kind(), OpKind::kScan);
}

TEST(ParserTest, ImplicitJoinPicksSpanningPredicate) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse(
      "SELECT a.x, b.y FROM a, b WHERE a.val > 3 AND a.joinkey = b.joinkey",
      catalog);
  // The join predicate must be the equality; the selection stays above.
  ASSERT_EQ(plan->kind(), OpKind::kProject);
  const PlanPtr select = plan->child(0);
  ASSERT_EQ(select->kind(), OpKind::kSelect);
  const PlanPtr join = select->child(0);
  ASSERT_EQ(join->kind(), OpKind::kJoin);
  EXPECT_EQ(join->predicate().ToString(), "a.joinkey = b.joinkey");
}

TEST(ParserTest, ExplicitJoinSyntax) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse(
      "SELECT a.x FROM a INNER JOIN b ON a.joinkey = b.joinkey AND a.val > "
      "b.val",
      catalog);
  // Second ON conjunct becomes a Select above the join.
  const PlanPtr select = plan->child(0);
  ASSERT_EQ(select->kind(), OpKind::kSelect);
  EXPECT_EQ(select->child(0)->kind(), OpKind::kJoin);
}

TEST(ParserTest, LeftOuterJoin) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse(
      "SELECT a.x FROM a LEFT OUTER JOIN b ON a.joinkey = b.joinkey", catalog);
  EXPECT_EQ(plan->child(0)->join_type(), JoinType::kLeftOuter);
}

TEST(ParserTest, TableAliases) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse(
      "SELECT t1.x FROM a AS t1, a t2 WHERE t1.joinkey = t2.joinkey", catalog);
  const auto aliases = plan->ScanAliases();
  EXPECT_EQ(aliases[0], "t1");
  EXPECT_EQ(aliases[1], "t2");
}

TEST(ParserTest, BareColumnResolution) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse("SELECT x FROM a WHERE x > 1", catalog);
  EXPECT_EQ(plan->outputs()[0].expr->ToString(), "a.x");
}

TEST(ParserTest, AmbiguousBareColumnFails) {
  const Catalog catalog = MakeFigure1Catalog();
  // `val` exists in both a and b.
  EXPECT_TRUE(
      ParseSql("SELECT val FROM a, b", catalog).status().IsParseError());
}

TEST(ParserTest, UnknownTableFails) {
  const Catalog catalog = MakeFigure1Catalog();
  EXPECT_TRUE(ParseSql("SELECT x FROM nope", catalog).status().IsParseError());
}

TEST(ParserTest, UnknownColumnFails) {
  const Catalog catalog = MakeFigure1Catalog();
  EXPECT_TRUE(
      ParseSql("SELECT a.zzz FROM a", catalog).status().IsParseError());
}

TEST(ParserTest, DuplicateAliasFails) {
  const Catalog catalog = MakeFigure1Catalog();
  EXPECT_TRUE(
      ParseSql("SELECT a.x FROM a, a", catalog).status().IsParseError());
}

TEST(ParserTest, UnsupportedClauseFails) {
  const Catalog catalog = MakeFigure1Catalog();
  EXPECT_TRUE(ParseSql("SELECT a.x FROM a ORDER BY a.x", catalog)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseSql("SELECT a.x FROM a WHERE a.x > 1 HAVING a.x > 2",
                       catalog)
                  .status()
                  .IsParseError());
}

TEST(ParserTest, ArithmeticPrecedence) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan =
      MustParse("SELECT a.x + a.val * 2 AS z FROM a", catalog);
  EXPECT_EQ(plan->outputs()[0].expr->ToString(), "(a.x + (a.val * 2))");
  EXPECT_EQ(plan->outputs()[0].name, "z");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan =
      MustParse("SELECT (a.x + a.val) * 2 AS z FROM a", catalog);
  EXPECT_EQ(plan->outputs()[0].expr->ToString(), "((a.x + a.val) * 2)");
}

TEST(ParserTest, UnaryMinusLiteral) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse("SELECT a.x FROM a WHERE a.val > -5", catalog);
  EXPECT_EQ(plan->child(0)->predicate().rhs->value().AsInt(), -5);
}

TEST(ParserTest, CrossJoinGetsConstantTruePredicate) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse("SELECT a.x, b.y FROM a, b", catalog);
  const PlanPtr join = plan->child(0);
  ASSERT_EQ(join->kind(), OpKind::kJoin);
  EXPECT_EQ(join->predicate().ToString(), "1 = 1");
}

TEST(ParserTest, Figure1QueriesParse) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr q1 = MustParse(
      "SELECT a.x, b.y FROM a, b WHERE a.joinkey = b.joinkey AND "
      "a.val > b.val + 10 AND b.val > 10",
      catalog);
  const PlanPtr q2 = MustParse(
      "SELECT a.x, b.y FROM b, a WHERE b.joinkey = a.joinkey AND "
      "b.val + 10 < a.val AND b.val + 10 > 20 AND a.val > 20",
      catalog);
  EXPECT_EQ(q1->NumOps(), 6u);  // project, select x2, join, scan x2
  EXPECT_EQ(q2->NumOps(), 7u);
}

}  // namespace
}  // namespace geqo
