#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

/// \file aligned.h
/// 32-byte-aligned storage for the SIMD kernel layer (tensor/kernels). AVX2
/// works on 32-byte lanes; keeping every tensor buffer and every HNSW vector
/// row on a 32-byte boundary lets the vectorized kernels use aligned loads
/// and keeps rows from straddling cache lines.

namespace geqo {

/// Alignment of every buffer the SIMD kernels touch. 32 bytes = one AVX2
/// vector; also a half cache line, so an aligned row never splits a load.
inline constexpr std::size_t kKernelAlignment = 32;

/// \brief Minimal C++17 allocator handing out storage aligned to
/// \p Alignment bytes. Drop-in std::vector allocator.
template <typename T, std::size_t Alignment = kKernelAlignment>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment must not weaken the type's natural alignment");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// A std::vector whose data() is 32-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kKernelAlignment>>;

/// True when \p p sits on a kernel-alignment boundary.
inline bool IsKernelAligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kKernelAlignment == 0;
}

/// Rounds \p n elements of size \p element up so a row of that many elements
/// spans a whole number of 32-byte blocks (e.g. floats round to multiples of
/// 8, bytes to multiples of 32). Used as the row stride of packed
/// vector/code storage so every row starts aligned.
inline constexpr std::size_t AlignedStride(std::size_t n, std::size_t element) {
  const std::size_t per_block = kKernelAlignment / element;
  return (n + per_block - 1) / per_block * per_block;
}

}  // namespace geqo
