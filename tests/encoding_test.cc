#include <gtest/gtest.h>

#include "encode/agnostic.h"
#include "encode/encoding.h"
#include "test_util.h"
#include "workload/schemas.h"

namespace geqo {
namespace {

using testing::MakeFigure1Catalog;
using testing::MustParse;

class EncodingTest : public ::testing::Test {
 protected:
  EncodingTest()
      : catalog_(MakeFigure1Catalog()),
        instance_layout_(EncodingLayout::FromCatalog(catalog_)),
        agnostic_layout_(EncodingLayout::Agnostic(4, 6)),
        encoder_(&instance_layout_, &catalog_, ValueRange{0, 100}) {}

  Catalog catalog_;
  EncodingLayout instance_layout_;
  EncodingLayout agnostic_layout_;
  PlanEncoder encoder_;
};

TEST_F(EncodingTest, LayoutSizesMatchPaperFormula) {
  // |NV| = |T| + 3|C| + 2|O| + |J| + 2 (§4.1) plus the §9.1 aggregation
  // extension segments (2|C| + |F|, F = 5 aggregate functions). Figure-1
  // catalog: 2 tables, 6 columns.
  EXPECT_EQ(instance_layout_.num_tables(), 2u);
  EXPECT_EQ(instance_layout_.num_columns(), 6u);
  EXPECT_EQ(instance_layout_.node_vector_size(),
            (2 + 3 * 6 + 2 * 6 + 3 + 2u) + (2 * 6 + 5u));
}

TEST_F(EncodingTest, AgnosticLayoutShape) {
  EXPECT_EQ(agnostic_layout_.num_tables(), 4u);
  EXPECT_EQ(agnostic_layout_.num_columns(), 24u);
  EXPECT_EQ(agnostic_layout_.TableIndex("t02"), 1u);
  EXPECT_EQ(agnostic_layout_.ColumnIndex("t02", "c03"), 6u + 2u);
}

TEST_F(EncodingTest, ScanEncodesTableOneHot) {
  const auto encoded = encoder_.Encode(PlanNode::Scan("b", "b"));
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->num_nodes(), 1u);
  // "a" sorts before "b": slot 1.
  EXPECT_EQ(encoded->nodes.At(0, instance_layout_.table_offset() + 1), 1.0f);
  EXPECT_EQ(encoded->nodes.At(0, instance_layout_.table_offset() + 0), 0.0f);
}

TEST_F(EncodingTest, SelectEncodesColumnOpConstant) {
  const PlanPtr plan =
      MustParse("SELECT * FROM a WHERE a.val > 40", catalog_);  // Scan+Select
  const auto encoded = encoder_.Encode(plan);
  ASSERT_TRUE(encoded.ok());
  ASSERT_EQ(encoded->num_nodes(), 2u);
  const float* select_row = encoded->nodes.Row(0);  // BFS: select first
  // a.val is column index 2 of sorted {a.joinkey, a.val, a.x, b.*}.
  EXPECT_EQ(select_row[instance_layout_.select_col_offset() + 1], 1.0f);
  EXPECT_EQ(select_row[instance_layout_.select_op_offset() +
                       static_cast<size_t>(CompareOp::kGt)],
            1.0f);
  EXPECT_FLOAT_EQ(select_row[instance_layout_.select_norm_offset()], 0.4f);
  EXPECT_EQ(select_row[instance_layout_.select_null_offset()], 0.0f);
}

TEST_F(EncodingTest, JoinEncodesBothColumnsAndType) {
  const PlanPtr plan = MustParse(
      "SELECT * FROM a JOIN b ON a.joinkey = b.joinkey", catalog_);
  const auto encoded = encoder_.Encode(plan);
  ASSERT_TRUE(encoded.ok());
  const float* join_row = encoded->nodes.Row(0);
  EXPECT_EQ(join_row[instance_layout_.join_left_offset() + 0], 1.0f);
  EXPECT_EQ(join_row[instance_layout_.join_right_offset() + 3], 1.0f);
  EXPECT_EQ(join_row[instance_layout_.join_type_offset() +
                     static_cast<size_t>(JoinType::kInner)],
            1.0f);
}

TEST_F(EncodingTest, BfsStructureAndChildIndices) {
  const PlanPtr plan = MustParse(
      "SELECT a.x FROM a JOIN b ON a.joinkey = b.joinkey", catalog_);
  // Tree: Project -> Join -> (Scan a, Scan b). BFS: P(0) J(1) Sa(2) Sb(3).
  const auto encoded = encoder_.Encode(plan);
  ASSERT_TRUE(encoded.ok());
  ASSERT_EQ(encoded->num_nodes(), 4u);
  EXPECT_EQ(encoded->left[0], 1);
  EXPECT_EQ(encoded->right[0], -1);
  EXPECT_EQ(encoded->left[1], 2);
  EXPECT_EQ(encoded->right[1], 3);
  EXPECT_EQ(encoded->left[2], -1);
}

TEST_F(EncodingTest, NormalizedPredicateEncoding) {
  // a.val + 10 > 30 must encode identically to a.val > 20.
  const auto e1 =
      encoder_.Encode(MustParse("SELECT * FROM a WHERE a.val + 10 > 30", catalog_));
  const auto e2 =
      encoder_.Encode(MustParse("SELECT * FROM a WHERE a.val > 20", catalog_));
  ASSERT_TRUE(e1.ok() && e2.ok());
  ASSERT_EQ(e1->nodes.size(), e2->nodes.size());
  for (size_t i = 0; i < e1->nodes.size(); ++i) {
    EXPECT_EQ(e1->nodes.values()[i], e2->nodes.values()[i]);
  }
}

TEST_F(EncodingTest, PathAEqualsPathB) {
  // The fast converter (§4.2.1) must reproduce symbolize-then-encode.
  const PlanPtr q1 = MustParse(
      "SELECT a.x, b.y FROM a, b WHERE a.joinkey = b.joinkey AND "
      "a.val > b.val + 10 AND b.val > 10",
      catalog_);
  const PlanPtr q2 = MustParse(
      "SELECT a.x, b.y FROM b, a WHERE b.joinkey = a.joinkey AND "
      "b.val + 10 < a.val AND b.val + 10 > 20 AND a.val > 20",
      catalog_);

  // Path A: symbolize then encode.
  const auto path_a = EncodePairAgnostic(q1, q2, agnostic_layout_, catalog_,
                                         ValueRange{0, 100});
  ASSERT_TRUE(path_a.ok()) << path_a.status().ToString();

  // Path B: instance encode, then convert.
  const auto i1 = encoder_.Encode(q1);
  const auto i2 = encoder_.Encode(q2);
  ASSERT_TRUE(i1.ok() && i2.ok());
  const auto converter = AgnosticConverter::Create(
      &instance_layout_, &agnostic_layout_, {&*i1, &*i2});
  ASSERT_TRUE(converter.ok()) << converter.status().ToString();
  const EncodedPlan b1 = converter->Convert(*i1);
  const EncodedPlan b2 = converter->Convert(*i2);

  ASSERT_EQ(path_a->first.nodes.size(), b1.nodes.size());
  for (size_t i = 0; i < b1.nodes.size(); ++i) {
    EXPECT_EQ(path_a->first.nodes.values()[i], b1.nodes.values()[i]) << i;
  }
  for (size_t i = 0; i < b2.nodes.size(); ++i) {
    EXPECT_EQ(path_a->second.nodes.values()[i], b2.nodes.values()[i]) << i;
  }
}

TEST_F(EncodingTest, AgnosticEncodingIsScheamInvariant) {
  // Renaming tables/columns must leave the db-agnostic encoding unchanged
  // (the motivation of §4.2: transfer across databases).
  const PlanPtr q = MustParse(
      "SELECT a.x FROM a, b WHERE a.joinkey = b.joinkey AND a.val > 5",
      catalog_);

  Catalog renamed;
  GEQO_CHECK_OK(renamed.AddTable(
      TableDef("cc", {ColumnDef{"jk", ValueType::kInt},
                      ColumnDef{"vv", ValueType::kInt},
                      ColumnDef{"xx", ValueType::kInt}})));
  GEQO_CHECK_OK(renamed.AddTable(
      TableDef("dd", {ColumnDef{"jk", ValueType::kInt},
                      ColumnDef{"vv", ValueType::kInt},
                      ColumnDef{"yy", ValueType::kInt}})));
  const PlanPtr q_renamed = MustParse(
      "SELECT cc.xx FROM cc, dd WHERE cc.jk = dd.jk AND cc.vv > 5", renamed);

  const auto pair_original = EncodePairAgnostic(q, q, agnostic_layout_,
                                                catalog_, ValueRange{0, 100});
  const auto pair_renamed = EncodePairAgnostic(
      q_renamed, q_renamed, agnostic_layout_, renamed, ValueRange{0, 100});
  ASSERT_TRUE(pair_original.ok() && pair_renamed.ok());
  ASSERT_EQ(pair_original->first.nodes.size(),
            pair_renamed->first.nodes.size());
  // Same symbolic pattern: sorted columns {jk, vv, xx} map to c01..c03 in
  // both schemas (joinkey/val/x sort identically to jk/vv/xx), so the
  // encodings coincide bit for bit.
  for (size_t i = 0; i < pair_original->first.nodes.size(); ++i) {
    EXPECT_EQ(pair_original->first.nodes.values()[i],
              pair_renamed->first.nodes.values()[i]);
  }
}

TEST_F(EncodingTest, CapacityOverflowReported) {
  const EncodingLayout tiny = EncodingLayout::Agnostic(1, 2);
  const PlanPtr q = MustParse(
      "SELECT a.x FROM a, b WHERE a.joinkey = b.joinkey", catalog_);
  EXPECT_TRUE(BuildSymbolMap({q}, tiny).status().code() ==
              StatusCode::kResourceExhausted);
}

TEST_F(EncodingTest, TruncateOverflowDropsExtraTables) {
  const EncodingLayout tiny = EncodingLayout::Agnostic(1, 6);
  const PlanPtr q = MustParse(
      "SELECT a.x FROM a, b WHERE a.joinkey = b.joinkey", catalog_);
  const auto encoded = encoder_.Encode(q);
  ASSERT_TRUE(encoded.ok());
  const auto converter = AgnosticConverter::Create(
      &instance_layout_, &tiny, {&*encoded}, /*truncate_overflow=*/true);
  ASSERT_TRUE(converter.ok());
  const EncodedPlan lossy = converter->Convert(*encoded);
  EXPECT_EQ(lossy.nodes.cols(), tiny.node_vector_size());
}

TEST_F(EncodingTest, ValueRangeFromWorkload) {
  const PlanPtr q1 = MustParse("SELECT * FROM a WHERE a.val > 10", catalog_);
  const PlanPtr q2 = MustParse("SELECT * FROM a WHERE a.val < 90", catalog_);
  const ValueRange range = ComputeValueRange({q1, q2});
  EXPECT_EQ(range.min, 10.0);
  EXPECT_EQ(range.max, 90.0);
  EXPECT_FLOAT_EQ(range.Normalize(50.0), 0.5f);
  EXPECT_FLOAT_EQ(range.Normalize(-100.0), 0.0f);  // clamped
}

TEST_F(EncodingTest, BuildTreeBatchConcatenates) {
  const auto e1 = encoder_.Encode(MustParse("SELECT * FROM a", catalog_));
  const auto e2 = encoder_.Encode(
      MustParse("SELECT * FROM a WHERE a.val > 1", catalog_));
  ASSERT_TRUE(e1.ok() && e2.ok());
  const nn::TreeBatch batch = BuildTreeBatch({&*e1, &*e2});
  batch.Validate();
  EXPECT_EQ(batch.num_trees(), 2u);
  EXPECT_EQ(batch.total_nodes(), 3u);
  EXPECT_EQ(batch.spans[1].first, 1u);
  EXPECT_EQ(batch.left[1], 2);  // child index rebased past tree 1
}

TEST_F(EncodingTest, TpcdsLayoutBuilds) {
  const Catalog tpcds = MakeTpcdsCatalog();
  const EncodingLayout layout = EncodingLayout::FromCatalog(tpcds);
  EXPECT_EQ(layout.num_tables(), 12u);
  EXPECT_GT(layout.num_columns(), 40u);
  EXPECT_EQ(layout.node_vector_size(),
            layout.num_tables() + 5 * layout.num_columns() + 12 + 3 + 2 + 5);
}

}  // namespace
}  // namespace geqo
