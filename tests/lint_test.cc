#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/artifact_lint.h"
#include "analysis/sql_lint.h"
#include "ann/hnsw.h"
#include "common/binary_io.h"
#include "common/checksum_io.h"
#include "common/format_magic.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/geqo_system.h"
#include "common/log_io.h"
#include "ml/emf_model.h"
#include "nn/serialize.h"
#include "serve/persist/manifest.h"
#include "serve/persist/wal.h"
#include "workload/generator.h"
#include "workload/schemas.h"

// Corruption tests for the artifact linter and the v2 snapshot loaders:
// every seeded corruption (byte truncation, bit flips, hand-crafted section
// violations) must be flagged by geqo_lint's walker with a named diagnostic
// AND rejected by the corresponding Load path — while pristine artifacts
// produce zero findings.

namespace geqo::analysis {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string CodesOf(const Diagnostics& diagnostics) {
  return FormatDiagnostics(diagnostics);
}

// Shared fixture: one small system + serving catalog saved once, reused by
// every corruption test in the suite.
class ArtifactLintTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog());
    GeqoSystemOptions options;
    options.model.conv1_size = 8;
    options.model.conv2_size = 8;
    options.model.fc1_size = 8;
    options.model.fc2_size = 4;
    system_ = new GeqoSystem(catalog_, options);

    GeneratorOptions generator_options;
    const QueryGenerator generator(catalog_, generator_options);
    Rng rng(7);
    plans_ = new std::vector<PlanPtr>(generator.GenerateMany(3, &rng));

    system_path_ = ::testing::TempDir() + "/lint_system.snapshot";
    catalog_path_ = ::testing::TempDir() + "/lint_catalog.snapshot";
    sharded_path_ = ::testing::TempDir() + "/lint_sharded.snapshot";
    GEQO_CHECK_OK(system_->SaveSnapshot(system_path_));
    auto serving = system_->OpenCatalog();
    for (const PlanPtr& plan : *plans_) {
      GEQO_CHECK_OK(serving->ProbeAdd(plan).status());
    }
    {
      std::ofstream out(catalog_path_, std::ios::binary | std::ios::trunc);
      GEQO_CHECK_OK(serving->ExportSnapshot(out));
    }

    // A sharded catalog with a non-empty pending-verification tail: deferred
    // mode (no verifier threads) queues every undecided class, and feeding a
    // duplicate plan with the learned filters disabled guarantees at least
    // one undecided class reaches the queue.
    sharded_plans_ = new std::vector<PlanPtr>(*plans_);
    sharded_plans_->push_back((*plans_)[0]);
    serve::ShardedCatalogOptions sharded_options;
    sharded_options.catalog.pipeline = system_->options().pipeline;
    sharded_options.catalog.pipeline.use_vmf = false;
    sharded_options.catalog.pipeline.use_emf = false;
    sharded_options.num_shards = 2;
    sharded_options.verifier_threads = 0;
    auto sharded = system_->OpenShardedCatalog(sharded_options);
    for (const PlanPtr& plan : *sharded_plans_) {
      GEQO_CHECK_OK(sharded->ProbeAdd(plan).status());
    }
    sharded_pending_ = sharded->PendingVerifications();
    {
      std::ofstream out(sharded_path_, std::ios::binary | std::ios::trunc);
      GEQO_CHECK_OK(sharded->ExportSnapshot(out));
    }
  }

  static void TearDownTestSuite() {
    std::remove(system_path_.c_str());
    std::remove(catalog_path_.c_str());
    std::remove(sharded_path_.c_str());
    delete sharded_plans_;
    delete plans_;
    delete system_;
    delete catalog_;
    sharded_plans_ = nullptr;
    plans_ = nullptr;
    system_ = nullptr;
    catalog_ = nullptr;
  }

  static Diagnostics Lint(const std::string& bytes) {
    return LintArtifactBytes(bytes);
  }

  static Status LoadSystem(const std::string& bytes) {
    const std::string path = ::testing::TempDir() + "/lint_mut.snapshot";
    WriteFile(path, bytes);
    const Status status = system_->LoadSnapshot(path);
    std::remove(path.c_str());
    return status;
  }

  static Status LoadServing(const std::string& bytes) {
    std::istringstream stream(bytes);
    return system_->ImportCatalogSnapshot(stream, *plans_).status();
  }

  static Status LoadSharded(const std::string& bytes) {
    std::istringstream stream(bytes);
    serve::ShardedCatalogOptions options;
    options.verifier_threads = 0;
    return system_->ImportShardedSnapshot(stream, *sharded_plans_, options)
        .status();
  }

  /// Rewrites 8 bytes of the checksummed payload at \p offset and refreshes
  /// the footer, so the structural walker (not the checksum) must object.
  static std::string MutatePayloadU64(const std::string& bytes, size_t offset,
                                      uint64_t value) {
    std::string payload = bytes.substr(0, bytes.size() - sizeof(uint64_t));
    std::memcpy(payload.data() + offset, &value, sizeof(value));
    std::ostringstream out;
    GEQO_CHECK_OK(io::WriteChecksummed(out, payload, "mutated artifact"));
    return out.str();
  }

  static Catalog* catalog_;
  static GeqoSystem* system_;
  static std::vector<PlanPtr>* plans_;
  static std::vector<PlanPtr>* sharded_plans_;
  static std::string system_path_;
  static std::string catalog_path_;
  static std::string sharded_path_;
  static size_t sharded_pending_;
};

Catalog* ArtifactLintTest::catalog_ = nullptr;
GeqoSystem* ArtifactLintTest::system_ = nullptr;
std::vector<PlanPtr>* ArtifactLintTest::plans_ = nullptr;
std::vector<PlanPtr>* ArtifactLintTest::sharded_plans_ = nullptr;
std::string ArtifactLintTest::system_path_;
std::string ArtifactLintTest::catalog_path_;
std::string ArtifactLintTest::sharded_path_;
size_t ArtifactLintTest::sharded_pending_ = 0;

TEST_F(ArtifactLintTest, PristineArtifactsHaveZeroFindings) {
  const auto system_findings = LintArtifactFile(system_path_);
  ASSERT_TRUE(system_findings.ok());
  EXPECT_TRUE(system_findings->empty()) << CodesOf(*system_findings);
  EXPECT_EQ(SniffArtifact(ReadFile(system_path_)),
            ArtifactKind::kSystemSnapshot);

  const auto catalog_findings = LintArtifactFile(catalog_path_);
  ASSERT_TRUE(catalog_findings.ok());
  EXPECT_TRUE(catalog_findings->empty()) << CodesOf(*catalog_findings);
  EXPECT_EQ(SniffArtifact(ReadFile(catalog_path_)),
            ArtifactKind::kServingCatalog);

  // The pristine files also load.
  EXPECT_TRUE(LoadSystem(ReadFile(system_path_)).ok());
  EXPECT_TRUE(LoadServing(ReadFile(catalog_path_)).ok());
}

TEST_F(ArtifactLintTest, TruncationIsDetectedAtEveryDepth) {
  for (const std::string& path : {system_path_, catalog_path_}) {
    const std::string bytes = ReadFile(path);
    for (const double fraction : {0.02, 0.2, 0.5, 0.8, 0.99}) {
      const std::string cut =
          bytes.substr(0, static_cast<size_t>(bytes.size() * fraction));
      const Diagnostics findings = Lint(cut);
      EXPECT_TRUE(HasFindings(findings))
          << path << " truncated to " << fraction;
      // The checksum footer (now misaligned) always names the corruption.
      EXPECT_TRUE(HasCode(findings, "snapshot.checksum") ||
                  HasCode(findings, "catalog.checksum") ||
                  HasCode(findings, "snapshot.truncated") ||
                  HasCode(findings, "catalog.truncated") ||
                  HasCode(findings, "artifact.unknown-magic"))
          << CodesOf(findings);
      const Status load = path == system_path_ ? LoadSystem(cut)
                                               : LoadServing(cut);
      EXPECT_FALSE(load.ok()) << path << " truncated to " << fraction;
    }
  }
}

TEST_F(ArtifactLintTest, BitFlipsAreDetectedEverywhere) {
  for (const std::string& path : {system_path_, catalog_path_}) {
    const std::string bytes = ReadFile(path);
    for (const size_t offset :
         {size_t{0}, size_t{8}, bytes.size() / 2, bytes.size() - 1}) {
      std::string flipped = bytes;
      flipped[offset] = static_cast<char>(flipped[offset] ^ 0x20);
      const Diagnostics findings = Lint(flipped);
      EXPECT_TRUE(HasFindings(findings)) << path << " flip at " << offset;
      if (offset == 0) {
        // The leading magic no longer matches any artifact.
        EXPECT_TRUE(HasCode(findings, "artifact.unknown-magic"))
            << CodesOf(findings);
      } else {
        EXPECT_TRUE(HasCode(findings, "snapshot.checksum") ||
                    HasCode(findings, "catalog.checksum"))
            << CodesOf(findings);
      }
      const Status load = path == system_path_ ? LoadSystem(flipped)
                                               : LoadServing(flipped);
      EXPECT_FALSE(load.ok()) << path << " flip at " << offset;
    }
  }
}

TEST_F(ArtifactLintTest, VersionFieldFlipNamesTheVersion) {
  // Byte 8 is the low byte of the version field: rewrite it to a valid
  // little-endian "version 9" and fix up the checksum so the structural
  // walker (not the footer) must catch it.
  std::string bytes = ReadFile(system_path_);
  bytes[8] = 9;
  std::string payload = bytes.substr(0, bytes.size() - sizeof(uint64_t));
  std::ostringstream refreshed;
  GEQO_CHECK_OK(io::WriteChecksummed(refreshed, payload, "test"));
  const Diagnostics findings = Lint(refreshed.str());
  ASSERT_TRUE(HasFindings(findings));
  EXPECT_TRUE(HasCode(findings, "snapshot.version")) << CodesOf(findings);
  EXPECT_FALSE(HasCode(findings, "snapshot.checksum")) << CodesOf(findings);
  EXPECT_FALSE(LoadSystem(refreshed.str()).ok());
}

// ---------------------------------------------------------------------------
// GEQOSHRD sharded catalog container.

TEST_F(ArtifactLintTest, PristineShardedCatalogHasZeroFindings) {
  const std::string bytes = ReadFile(sharded_path_);
  EXPECT_EQ(SniffArtifact(bytes), ArtifactKind::kShardedCatalog);
  const auto findings = LintArtifactFile(sharded_path_);
  ASSERT_TRUE(findings.ok());
  EXPECT_TRUE(findings->empty()) << CodesOf(*findings);
  EXPECT_TRUE(LoadSharded(bytes).ok());
  // The fixture was built to carry a pending-verification tail, so these
  // tests exercise the tail walker, not an empty section.
  EXPECT_GT(sharded_pending_, 0u);
}

TEST_F(ArtifactLintTest, ShardedTruncationAndBitFlipsAreDetected) {
  const std::string bytes = ReadFile(sharded_path_);
  for (const double fraction : {0.02, 0.5, 0.99}) {
    const std::string cut =
        bytes.substr(0, static_cast<size_t>(bytes.size() * fraction));
    const Diagnostics findings = Lint(cut);
    EXPECT_TRUE(HasFindings(findings)) << "truncated to " << fraction;
    EXPECT_FALSE(LoadSharded(cut).ok()) << "truncated to " << fraction;
  }
  std::string flipped = bytes;
  flipped[bytes.size() / 2] =
      static_cast<char>(flipped[bytes.size() / 2] ^ 0x20);
  const Diagnostics findings = Lint(flipped);
  EXPECT_TRUE(HasCode(findings, "sharded.checksum")) << CodesOf(findings);
  EXPECT_FALSE(LoadSharded(flipped).ok());
}

// Payload layout: magic(8) version(8) num_shards(8) count(8), then the
// per-entry shard routing table. The tail is: ...pairs, end magic(8).

TEST_F(ArtifactLintTest, ShardedVersionIsChecked) {
  const std::string mutated =
      MutatePayloadU64(ReadFile(sharded_path_), 8, 9);
  const Diagnostics findings = Lint(mutated);
  EXPECT_TRUE(HasCode(findings, "sharded.version")) << CodesOf(findings);
  EXPECT_FALSE(LoadSharded(mutated).ok());
}

TEST_F(ArtifactLintTest, ShardedRoutingEntryOutOfRange) {
  const std::string mutated =
      MutatePayloadU64(ReadFile(sharded_path_), 32, 9999);
  const Diagnostics findings = Lint(mutated);
  EXPECT_TRUE(HasCode(findings, "sharded.shard-range")) << CodesOf(findings);
  EXPECT_FALSE(LoadSharded(mutated).ok());
}

TEST_F(ArtifactLintTest, ShardedRoutingSegmentCountMismatch) {
  // Re-route entry 0 to the other shard (still a valid shard id): the
  // routing table now disagrees with the segments' own entry counts.
  const std::string bytes = ReadFile(sharded_path_);
  uint64_t shard0 = 0;
  std::memcpy(&shard0, bytes.data() + 32, sizeof(shard0));
  const std::string mutated = MutatePayloadU64(bytes, 32, 1 - shard0);
  const Diagnostics findings = Lint(mutated);
  EXPECT_TRUE(HasCode(findings, "sharded.segment-count"))
      << CodesOf(findings);
  EXPECT_FALSE(LoadSharded(mutated).ok());
}

TEST_F(ArtifactLintTest, ShardedPendingPairOutOfRange) {
  ASSERT_GT(sharded_pending_, 0u);
  const std::string bytes = ReadFile(sharded_path_);
  // The last pair's member gid sits 16 bytes before the end magic, which is
  // the final 8 payload bytes.
  const size_t payload_size = bytes.size() - sizeof(uint64_t);
  const std::string mutated =
      MutatePayloadU64(bytes, payload_size - 2 * sizeof(uint64_t), 1u << 20);
  const Diagnostics findings = Lint(mutated);
  EXPECT_TRUE(HasCode(findings, "sharded.pending-range")) << CodesOf(findings);
  EXPECT_FALSE(LoadSharded(mutated).ok());
}

TEST_F(ArtifactLintTest, ShardedEndMarkerMissing) {
  const std::string bytes = ReadFile(sharded_path_);
  const size_t payload_size = bytes.size() - sizeof(uint64_t);
  const std::string mutated =
      MutatePayloadU64(bytes, payload_size - sizeof(uint64_t), 0);
  const Diagnostics findings = Lint(mutated);
  EXPECT_TRUE(HasCode(findings, "sharded.end-magic")) << CodesOf(findings);
  EXPECT_FALSE(LoadSharded(mutated).ok());
}

// ---------------------------------------------------------------------------
// Hand-crafted catalog payloads: section-level invariant violations that a
// checksum cannot catch (the writer computes a valid footer over bad bytes).

struct MemoEntry {
  uint64_t lo;
  uint64_t hi;
  uint64_t check_lo;
  uint64_t check_hi;
  uint8_t verdict;
};

std::string CraftCatalog(uint64_t dim, const std::vector<uint64_t>& parents,
                         const std::vector<MemoEntry>& memo,
                         uint64_t version = io::kCatalogVersion,
                         uint64_t end_magic = io::kCatalogEndMagic,
                         const std::string& trailing = {}) {
  std::ostringstream payload;
  io::BinaryWriter writer(payload, "crafted catalog");
  writer.U64(io::kCatalogMagic);
  writer.U64(version);
  writer.U64(0);  // schema fingerprint (opaque to the linter)
  writer.U64(dim);
  writer.U64(parents.size());
  for (size_t i = 0; i < parents.size(); ++i) writer.U64(i);  // hashes
  ann::HnswIndex index(dim);
  std::vector<float> vector(dim, 0.0f);
  for (size_t i = 0; i < parents.size(); ++i) {
    vector[0] = static_cast<float>(i);
    index.Add(vector);
  }
  GEQO_CHECK_OK(index.Serialize(payload));
  for (const uint64_t parent : parents) writer.U64(parent);
  writer.U64(memo.size());
  for (const MemoEntry& entry : memo) {
    writer.U64(entry.lo);
    writer.U64(entry.hi);
    writer.U64(entry.check_lo);
    writer.U64(entry.check_hi);
    writer.U8(entry.verdict);
  }
  writer.U64(end_magic);
  payload << trailing;
  std::ostringstream file;
  GEQO_CHECK_OK(io::WriteChecksummed(file, payload.str(), "crafted catalog"));
  return file.str();
}

TEST(CraftedCatalogTest, WellFormedCraftIsClean) {
  const Diagnostics findings = LintArtifactBytes(CraftCatalog(
      4, {0, 1, 0},
      {{3, 5, 9, 2, 0}, {3, 7, 1, 1, 1}, {4, 4, 2, 6, 2}}));
  EXPECT_TRUE(findings.empty()) << CodesOf(findings);
}

TEST(CraftedCatalogTest, UnsupportedVersion) {
  const Diagnostics findings =
      LintArtifactBytes(CraftCatalog(4, {}, {}, /*version=*/1));
  ASSERT_TRUE(HasFindings(findings));
  EXPECT_EQ(findings[0].code, "catalog.version");
}

TEST(CraftedCatalogTest, ParentAboveChild) {
  const Diagnostics findings = LintArtifactBytes(CraftCatalog(4, {1, 0}, {}));
  EXPECT_TRUE(HasCode(findings, "catalog.parent-range")) << CodesOf(findings);
}

TEST(CraftedCatalogTest, ParentNotPathCompressed) {
  const Diagnostics findings =
      LintArtifactBytes(CraftCatalog(4, {0, 0, 1}, {}));
  EXPECT_TRUE(HasCode(findings, "catalog.parent-compressed"))
      << CodesOf(findings);
}

TEST(CraftedCatalogTest, MemoKeyNotNormalized) {
  const Diagnostics findings =
      LintArtifactBytes(CraftCatalog(4, {}, {{9, 3, 0, 0, 0}}));
  EXPECT_TRUE(HasCode(findings, "catalog.memo-key")) << CodesOf(findings);
}

TEST(CraftedCatalogTest, MemoNotStrictlySorted) {
  const Diagnostics findings = LintArtifactBytes(
      CraftCatalog(4, {}, {{5, 6, 0, 0, 0}, {5, 6, 0, 0, 1}}));
  EXPECT_TRUE(HasCode(findings, "catalog.memo-order")) << CodesOf(findings);
}

TEST(CraftedCatalogTest, MemoCheckPairNotNormalizedOnKeyTie) {
  // A key tie (lo == hi) forces the check pair into (min, max) order; a
  // descending check pair there means the writer's collision guard is
  // corrupt and a memo hit could silently compare the wrong direction.
  const Diagnostics findings =
      LintArtifactBytes(CraftCatalog(4, {}, {{4, 4, 9, 3, 0}}));
  EXPECT_TRUE(HasCode(findings, "catalog.memo-check")) << CodesOf(findings);
}

TEST(CraftedCatalogTest, MemoVerdictOutOfRange) {
  const Diagnostics findings =
      LintArtifactBytes(CraftCatalog(4, {}, {{3, 5, 1, 2, 7}}));
  EXPECT_TRUE(HasCode(findings, "catalog.memo-verdict")) << CodesOf(findings);
}

TEST(CraftedCatalogTest, MissingEndMarker) {
  const Diagnostics findings = LintArtifactBytes(
      CraftCatalog(4, {}, {}, io::kCatalogVersion, /*end_magic=*/0));
  EXPECT_TRUE(HasCode(findings, "catalog.end-magic")) << CodesOf(findings);
}

TEST(CraftedCatalogTest, TrailingBytesInsideTheChecksummedPayload) {
  const Diagnostics findings = LintArtifactBytes(
      CraftCatalog(4, {}, {}, io::kCatalogVersion, io::kCatalogEndMagic,
                   "stowaway"));
  EXPECT_TRUE(HasCode(findings, "catalog.trailing")) << CodesOf(findings);
}

TEST(CraftedCatalogTest, ImplausibleEmbeddingDim) {
  // dim 0 is rejected before the HNSW section is even entered.
  std::ostringstream payload;
  io::BinaryWriter writer(payload, "crafted catalog");
  writer.U64(io::kCatalogMagic);
  writer.U64(io::kCatalogVersion);
  writer.U64(0);
  writer.U64(0);  // embedding dim
  writer.U64(0);  // count
  std::ostringstream file;
  GEQO_CHECK_OK(io::WriteChecksummed(file, payload.str(), "crafted catalog"));
  const Diagnostics findings = LintArtifactBytes(file.str());
  EXPECT_TRUE(HasCode(findings, "catalog.embedding-dim"))
      << CodesOf(findings);
}

// ---------------------------------------------------------------------------
// Standalone GEQOMODL and GEQOHNSW blobs.

std::string SmallModelStateBytes() {
  ml::EmfModelOptions options;
  options.input_dim = 12;
  options.conv1_size = 8;
  options.conv2_size = 8;
  options.fc1_size = 8;
  options.fc2_size = 4;
  ml::EmfModel model(options);
  std::ostringstream bytes;
  GEQO_CHECK_OK(nn::SaveState(model.State(), bytes));
  return bytes.str();
}

TEST(ModelStateLintTest, CleanStateAndCorruptions) {
  const std::string bytes = SmallModelStateBytes();
  EXPECT_EQ(SniffArtifact(bytes), ArtifactKind::kModelState);
  EXPECT_TRUE(LintArtifactBytes(bytes).empty())
      << CodesOf(LintArtifactBytes(bytes));

  const Diagnostics truncated =
      LintArtifactBytes(bytes.substr(0, bytes.size() / 3));
  EXPECT_TRUE(HasFindings(truncated)) << CodesOf(truncated);

  const Diagnostics trailing = LintArtifactBytes(bytes + "junk");
  EXPECT_TRUE(HasCode(trailing, "model.trailing")) << CodesOf(trailing);
}

TEST(HnswLintTest, CleanIndexAndCorruptions) {
  ann::HnswIndex index(4);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    index.Add({rng.NextFloat(), rng.NextFloat(), rng.NextFloat(),
               rng.NextFloat()});
  }
  std::ostringstream out;
  GEQO_CHECK_OK(index.Serialize(out));
  const std::string bytes = out.str();
  EXPECT_EQ(SniffArtifact(bytes), ArtifactKind::kHnswIndex);
  EXPECT_TRUE(LintArtifactBytes(bytes).empty())
      << CodesOf(LintArtifactBytes(bytes));

  // Chop off the end marker.
  const Diagnostics cut =
      LintArtifactBytes(bytes.substr(0, bytes.size() - sizeof(uint64_t)));
  EXPECT_TRUE(HasCode(cut, "hnsw.end-magic")) << CodesOf(cut);

  const Diagnostics trailing = LintArtifactBytes(bytes + "junk");
  EXPECT_TRUE(HasCode(trailing, "hnsw.trailing")) << CodesOf(trailing);
}

TEST(HnswLintTest, CorruptedCalibrationIsNamed) {
  ann::HnswOptions options;
  options.quant = ann::QuantOverride::kOn;
  options.sq8_calibration = 8;
  ann::HnswIndex index(4, options);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    index.Add({rng.NextFloat(), rng.NextFloat(), rng.NextFloat(),
               rng.NextFloat()});
  }
  std::ostringstream out;
  GEQO_CHECK_OK(index.Serialize(out));
  const std::string bytes = out.str();
  EXPECT_TRUE(LintArtifactBytes(bytes).empty())
      << CodesOf(LintArtifactBytes(bytes));

  // Quant block layout: 7 header u64s, then quant_enabled / threshold /
  // calibrated u64s, the HNSWSQ8! sub-magic, and the per-dim range table.
  const size_t quant_offset = 7 * sizeof(uint64_t);
  const size_t magic_offset = 10 * sizeof(uint64_t);
  const size_t table_offset = 11 * sizeof(uint64_t);

  std::string bad_flag = bytes;
  bad_flag[quant_offset] = 7;  // quant_enabled must be 0 or 1
  const Diagnostics flag = LintArtifactBytes(bad_flag);
  EXPECT_TRUE(HasCode(flag, "hnsw.quant")) << CodesOf(flag);

  std::string bad_magic = bytes;
  bad_magic[magic_offset] ^= 0x5a;
  const Diagnostics magic = LintArtifactBytes(bad_magic);
  EXPECT_TRUE(HasCode(magic, "hnsw.quant-magic")) << CodesOf(magic);

  // Swap the first (min, max) pair so min > max.
  std::string bad_range = bytes;
  float range_min = 0.0f;
  float range_max = 0.0f;
  std::memcpy(&range_min, bad_range.data() + table_offset, sizeof(float));
  std::memcpy(&range_max, bad_range.data() + table_offset + sizeof(float),
              sizeof(float));
  ASSERT_LT(range_min, range_max);
  std::memcpy(bad_range.data() + table_offset, &range_max, sizeof(float));
  std::memcpy(bad_range.data() + table_offset + sizeof(float), &range_min,
              sizeof(float));
  const Diagnostics range = LintArtifactBytes(bad_range);
  EXPECT_TRUE(HasCode(range, "hnsw.quant-range")) << CodesOf(range);
}

// ---------------------------------------------------------------------------
// GEQOMANI store manifests and GEQOWALG delta-log partitions: every
// corruption the linter names must also be rejected by the persistence
// layer's own reader, and vice versa — the walker mirrors the recovery
// path's validation, from raw bytes.

std::string CraftManifest(uint64_t kind, uint64_t num_shards, uint64_t base_id,
                          uint64_t base_entries, uint64_t next_file_id,
                          const std::vector<uint64_t>& log_ids,
                          uint64_t version = io::kManifestVersion,
                          uint64_t end_magic = io::kManifestEndMagic) {
  std::ostringstream payload;
  io::BinaryWriter writer(payload, "crafted manifest");
  writer.U64(io::kManifestMagic);
  writer.U64(version);
  writer.U64(kind);
  writer.U64(num_shards);
  writer.U64(base_id);
  writer.U64(base_entries);
  writer.U64(next_file_id);
  writer.U64(log_ids.size());
  for (const uint64_t id : log_ids) writer.U64(id);
  writer.U64(end_magic);
  std::ostringstream file;
  GEQO_CHECK_OK(io::WriteChecksummed(file, payload.str(), "crafted manifest"));
  return file.str();
}

/// Writes \p bytes as TempDir/MANIFEST and runs the recovery-path reader.
Status ReadManifestBytes(const std::string& bytes) {
  const std::string dir = ::testing::TempDir();
  WriteFile(dir + "/MANIFEST", bytes);
  const auto state = serve::persist::ReadManifest(dir);
  std::remove((dir + "/MANIFEST").c_str());
  return state.status();
}

TEST(StoreManifestLintTest, CleanManifestHasZeroFindingsAndLoads) {
  const std::string bytes = CraftManifest(
      /*kind=*/2, /*num_shards=*/4, /*base_id=*/3, /*base_entries=*/17,
      /*next_file_id=*/9, /*log_ids=*/{5, 8});
  EXPECT_EQ(SniffArtifact(bytes), ArtifactKind::kStoreManifest);
  EXPECT_TRUE(LintArtifactBytes(bytes).empty())
      << CodesOf(LintArtifactBytes(bytes));
  EXPECT_TRUE(ReadManifestBytes(bytes).ok());
}

TEST(StoreManifestLintTest, BitFlipAndTruncationAreDetected) {
  const std::string bytes =
      CraftManifest(1, 1, 0, 0, 4, {2, 3});
  std::string flipped = bytes;
  flipped[bytes.size() / 2] =
      static_cast<char>(flipped[bytes.size() / 2] ^ 0x20);
  EXPECT_TRUE(HasCode(LintArtifactBytes(flipped), "manifest.checksum"))
      << CodesOf(LintArtifactBytes(flipped));
  EXPECT_FALSE(ReadManifestBytes(flipped).ok());

  const std::string cut = bytes.substr(0, bytes.size() / 2);
  EXPECT_TRUE(HasFindings(LintArtifactBytes(cut)))
      << CodesOf(LintArtifactBytes(cut));
  EXPECT_FALSE(ReadManifestBytes(cut).ok());
}

TEST(StoreManifestLintTest, StructuralViolationsAreNamed) {
  const struct {
    std::string bytes;
    const char* code;
  } cases[] = {
      // Version from the future.
      {CraftManifest(1, 1, 0, 0, 2, {}, /*version=*/9), "manifest.version"},
      // Store kind outside {single, sharded}.
      {CraftManifest(5, 1, 0, 0, 2, {}), "manifest.kind"},
      // Zero shards.
      {CraftManifest(1, 0, 0, 0, 2, {}), "manifest.shard-count"},
      // Entry count without a base segment.
      {CraftManifest(1, 1, 0, 12, 2, {}), "manifest.base"},
      // Base id the allocator never issued.
      {CraftManifest(1, 1, 7, 1, 2, {}), "manifest.base"},
      // Log ids out of order.
      {CraftManifest(1, 1, 0, 0, 9, {5, 5}), "manifest.log-ids"},
      // Log id colliding with the base segment.
      {CraftManifest(1, 1, 3, 1, 9, {3}), "manifest.log-ids"},
      // Log id the allocator never issued.
      {CraftManifest(1, 1, 0, 0, 4, {6}), "manifest.log-ids"},
      // Missing end marker.
      {CraftManifest(1, 1, 0, 0, 2, {}, io::kManifestVersion,
                     /*end_magic=*/0),
       "manifest.end-magic"},
  };
  for (const auto& test_case : cases) {
    const Diagnostics findings = LintArtifactBytes(test_case.bytes);
    EXPECT_TRUE(HasCode(findings, test_case.code))
        << "expected " << test_case.code << ", got " << CodesOf(findings);
    EXPECT_FALSE(ReadManifestBytes(test_case.bytes).ok())
        << test_case.code << " must also fail the recovery-path reader";
  }
}

std::string CraftWal(const std::vector<serve::persist::WalRecord>& records,
                     uint64_t file_id = 7, uint64_t shard = 0,
                     uint64_t magic = io::kWalMagic,
                     uint64_t version = io::kWalVersion) {
  std::string out;
  const uint64_t header[4] = {magic, version, file_id, shard};
  out.append(reinterpret_cast<const char*>(header), sizeof(header));
  for (const serve::persist::WalRecord& record : records) {
    io::AppendFramedRecord(&out, serve::persist::EncodeWalRecord(record));
  }
  return out;
}

/// Writes \p bytes as a partition file and runs the recovery-path reader.
Result<serve::persist::WalReplay> ReadWalBytes(const std::string& bytes,
                                               uint64_t file_id = 7,
                                               uint64_t shard = 0) {
  const std::string path = ::testing::TempDir() + "/lint_wal.log";
  WriteFile(path, bytes);
  auto replay = serve::persist::ReadWalFile(path, file_id, shard);
  std::remove(path.c_str());
  return replay;
}

TEST(WalLintTest, CleanPartitionHasZeroFindingsAndReplays) {
  using serve::persist::WalRecord;
  const std::string bytes = CraftWal({
      WalRecord::Add(0, 0xAAA, 0xBBB),
      WalRecord::Add(1, 0xCCC, 0xDDD),
      WalRecord::Verdict(3, 5, 1, 2, 1),
      WalRecord::Union(0, 1),
      WalRecord::Pending(1, 0),
  });
  EXPECT_EQ(SniffArtifact(bytes), ArtifactKind::kWalLog);
  EXPECT_TRUE(LintArtifactBytes(bytes).empty())
      << CodesOf(LintArtifactBytes(bytes));
  const auto replay = ReadWalBytes(bytes);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records.size(), 5u);
  EXPECT_FALSE(replay->torn);
}

TEST(WalLintTest, TornTailAndMidCorruptionAreDistinguished) {
  using serve::persist::WalRecord;
  const std::string bytes = CraftWal(
      {WalRecord::Add(0, 1, 2), WalRecord::Add(1, 3, 4)});

  // An interrupted append: garbage past the last full frame. The linter
  // flags it, but the recovery reader treats it as a truncatable tail.
  const std::string torn = bytes + "half-writ";
  EXPECT_TRUE(HasCode(LintArtifactBytes(torn), "wal.torn-tail"))
      << CodesOf(LintArtifactBytes(torn));
  const auto torn_replay = ReadWalBytes(torn);
  ASSERT_TRUE(torn_replay.ok()) << torn_replay.status().ToString();
  EXPECT_TRUE(torn_replay->torn);
  EXPECT_EQ(torn_replay->records.size(), 2u);

  // A bit flip inside the FIRST record while a valid frame follows: interior
  // damage, which truncation would wrongly drop durable records for — both
  // layers must refuse.
  std::string interior = bytes;
  interior[4 * sizeof(uint64_t) + sizeof(uint32_t) + 2] ^= 0x01;
  EXPECT_TRUE(HasCode(LintArtifactBytes(interior), "wal.mid-corruption"))
      << CodesOf(LintArtifactBytes(interior));
  EXPECT_FALSE(ReadWalBytes(interior).ok());

  // Shorter than its own header: the creation crash window.
  const std::string stub = bytes.substr(0, 11);
  EXPECT_TRUE(HasCode(LintArtifactBytes(stub), "wal.truncated"))
      << CodesOf(LintArtifactBytes(stub));
  const auto stub_replay = ReadWalBytes(stub);
  ASSERT_TRUE(stub_replay.ok());
  EXPECT_TRUE(stub_replay->header_torn);
}

TEST(WalLintTest, RecordGrammarViolationsAreNamed) {
  using serve::persist::WalRecord;
  // Verdict byte beyond the tri-state range: both layers refuse.
  const std::string bad_verdict =
      CraftWal({WalRecord::Verdict(3, 5, 1, 2, /*verdict=*/7)});
  EXPECT_TRUE(HasCode(LintArtifactBytes(bad_verdict), "wal.verdict-range"))
      << CodesOf(LintArtifactBytes(bad_verdict));
  EXPECT_FALSE(ReadWalBytes(bad_verdict).ok());

  // Non-normalized memo key (lo > hi): the journal always normalizes, so
  // this is corruption even though the frame checksum holds.
  const std::string bad_key = CraftWal({WalRecord::Verdict(9, 3, 0, 0, 1)});
  EXPECT_TRUE(HasCode(LintArtifactBytes(bad_key), "wal.verdict-key"))
      << CodesOf(LintArtifactBytes(bad_key));

  // A self-union and a gid regression among adds.
  EXPECT_TRUE(HasCode(LintArtifactBytes(CraftWal({WalRecord::Union(2, 2)})),
                      "wal.union"));
  EXPECT_TRUE(HasCode(
      LintArtifactBytes(
          CraftWal({WalRecord::Add(4, 0, 0), WalRecord::Add(4, 0, 0)})),
      "wal.add-order"));

  // An unknown record type, correctly framed: the checksum holds but the
  // grammar doesn't.
  std::string unknown;
  const uint64_t header[4] = {io::kWalMagic, io::kWalVersion, 7, 0};
  unknown.append(reinterpret_cast<const char*>(header), sizeof(header));
  io::AppendFramedRecord(&unknown, std::string("\x09junk", 5));
  EXPECT_TRUE(HasCode(LintArtifactBytes(unknown), "wal.record-type"))
      << CodesOf(LintArtifactBytes(unknown));
  EXPECT_FALSE(ReadWalBytes(unknown).ok());

  // Header mismatches: wrong version, and a partition filed under the wrong
  // manifest slot (file id / shard).
  const std::string bad_version =
      CraftWal({}, 7, 0, io::kWalMagic, /*version=*/9);
  EXPECT_TRUE(HasCode(LintArtifactBytes(bad_version), "wal.version"))
      << CodesOf(LintArtifactBytes(bad_version));
  EXPECT_FALSE(ReadWalBytes(bad_version).ok());
  EXPECT_FALSE(ReadWalBytes(CraftWal({}, /*file_id=*/8), 7, 0).ok());
}

// ---------------------------------------------------------------------------
// SQL workload linting.

TEST(SqlLintTest, CleanWorkloadHasNoFindings) {
  const Catalog catalog = MakeTpchCatalog();
  const Diagnostics findings = LintSqlText(
      "-- a comment\n"
      "SELECT r_name FROM region WHERE r_regionkey > 1;\n"
      "SELECT n.n_name, r.r_name\n"
      "FROM nation AS n, region AS r\n"
      "WHERE n.n_regionkey = r.r_regionkey;\n",
      catalog);
  EXPECT_TRUE(findings.empty()) << CodesOf(findings);
}

TEST(SqlLintTest, ParseErrorCarriesTheLineNumber) {
  const Catalog catalog = MakeTpchCatalog();
  const Diagnostics findings = LintSqlText(
      "SELECT r_name FROM region;\n"
      "\n"
      "SELECT FROM WHERE;\n",
      catalog);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "sql.parse");
  EXPECT_NE(findings[0].context.find("line 3"), std::string::npos)
      << findings[0].context;
}

TEST(SqlLintTest, UnknownColumnIsAFinding) {
  const Catalog catalog = MakeTpchCatalog();
  const Diagnostics findings =
      LintSqlText("SELECT r_nothing FROM region;", catalog);
  ASSERT_TRUE(HasFindings(findings));
  EXPECT_EQ(findings[0].code, "sql.parse");
}

TEST(SqlLintTest, CommentsAndBlanksAreIgnored) {
  const Catalog catalog = MakeTpchCatalog();
  EXPECT_TRUE(LintSqlText("", catalog).empty());
  EXPECT_TRUE(LintSqlText("-- nothing here\n\n;\n  ;", catalog).empty());
}

}  // namespace
}  // namespace geqo::analysis
