#include "nn/adam.h"

#include <cmath>

namespace geqo::nn {

Adam::Adam(std::vector<ParamRef> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (const ParamRef& param : params_) {
    GEQO_CHECK(param.value != nullptr && param.grad != nullptr);
    GEQO_CHECK(param.value->rows() == param.grad->rows() &&
               param.value->cols() == param.grad->cols());
    first_moment_.emplace_back(param.value->rows(), param.value->cols());
    second_moment_.emplace_back(param.value->rows(), param.value->cols());
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));
  for (size_t p = 0; p < params_.size(); ++p) {
    float* value = params_[p].value->data();
    const float* grad = params_[p].grad->data();
    float* m = first_moment_[p].data();
    float* v = second_moment_[p].data();
    const size_t n = params_[p].value->size();
    for (size_t i = 0; i < n; ++i) {
      // L2 weight decay folded into the gradient (classic Adam style,
      // matching PyTorch's weight_decay semantics used by the paper).
      const float g = grad[i] + options_.weight_decay * value[i];
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * g;
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      value[i] -=
          options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

void Adam::ZeroGrad() {
  for (const ParamRef& param : params_) param.grad->Fill(0.0f);
}

}  // namespace geqo::nn
