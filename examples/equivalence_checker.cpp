/// \file equivalence_checker.cpp
/// Command-line semantic equivalence checker over the bundled TPC-H schema:
/// pass two SPJ SQL queries and get the verifier's verdict plus the
/// baseline detectors' opinions — a compact way to explore which rewrites
/// each detection tier can and cannot see.
///
///   ./equivalence_checker "SELECT ..." "SELECT ..."
///
/// With no arguments, runs a built-in demonstration suite.

#include <cstdio>
#include <string>

#include "parser/parser.h"
#include "pipeline/baselines.h"
#include "verify/verifier.h"
#include "workload/schemas.h"

namespace {

int CheckOnce(const geqo::Catalog& catalog, const std::string& sql1,
              const std::string& sql2) {
  auto q1 = geqo::ParseSql(sql1, catalog);
  auto q2 = geqo::ParseSql(sql2, catalog);
  if (!q1.ok() || !q2.ok()) {
    std::fprintf(stderr, "parse error:\n  %s\n  %s\n",
                 q1.status().ToString().c_str(),
                 q2.status().ToString().c_str());
    return 2;
  }

  geqo::SpesVerifier verifier(&catalog);
  const geqo::EquivalenceVerdict verdict = verifier.CheckEquivalence(*q1, *q2);

  const auto sig1 = geqo::PlanSignature(*q1, catalog);
  const auto sig2 = geqo::PlanSignature(*q2, catalog);
  const auto opt1 = geqo::OptimizerNormalForm(*q1, catalog);
  const auto opt2 = geqo::OptimizerNormalForm(*q2, catalog);
  GEQO_CHECK(sig1.ok() && sig2.ok() && opt1.ok() && opt2.ok());

  std::printf("query 1: %s\n", sql1.c_str());
  std::printf("query 2: %s\n", sql2.c_str());
  std::printf("  signature baseline (CloudViews-style) : %s\n",
              *sig1 == *sig2 ? "equal" : "different");
  std::printf("  optimizer baseline (Calcite-style)    : %s\n",
              *opt1 == *opt2 ? "equal" : "different");
  std::printf("  automated verifier (SPES-style)       : %s\n\n",
              std::string(geqo::VerdictToString(verdict)).c_str());
  return verdict == geqo::EquivalenceVerdict::kEquivalent ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const geqo::Catalog catalog = geqo::MakeTpchCatalog();

  if (argc == 3) return CheckOnce(catalog, argv[1], argv[2]);
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [\"SELECT ...\" \"SELECT ...\"]\n",
                 argv[0]);
    return 2;
  }

  std::printf("Schema: TPC-H (region, nation, supplier, customer, part, "
              "partsupp, orders, lineitem)\n\n");
  struct Demo {
    const char* description;
    const char* sql1;
    const char* sql2;
  };
  const Demo demos[] = {
      {"operand swap + constant shifting (every tier catches this)",
       "SELECT c_custkey FROM customer WHERE c_acctbal + 10 > 60",
       "SELECT c_custkey FROM customer WHERE 50 < c_acctbal"},
      {"equality substitution (optimizer catches it, signatures do not)",
       "SELECT o_orderkey FROM orders, customer "
       "WHERE o_custkey = c_custkey AND o_custkey > 10",
       "SELECT o_orderkey FROM orders, customer "
       "WHERE o_custkey = c_custkey AND c_custkey > 10"},
      {"cross-term implied predicate (only the verifier proves it; the "
       "Figure-1 pattern)",
       "SELECT o_orderkey FROM orders, customer "
       "WHERE o_custkey = c_custkey AND o_totalprice > c_acctbal + 10 "
       "AND c_acctbal > 10",
       "SELECT o_orderkey FROM orders, customer "
       "WHERE o_custkey = c_custkey AND o_totalprice > c_acctbal + 10 "
       "AND c_acctbal > 10 AND o_totalprice > 20"},
      {"a genuinely different pair (nobody should match it)",
       "SELECT c_custkey FROM customer WHERE c_acctbal > 50",
       "SELECT c_custkey FROM customer WHERE c_acctbal > 51"},
  };
  for (const Demo& demo : demos) {
    std::printf("== %s ==\n", demo.description);
    CheckOnce(catalog, demo.sql1, demo.sql2);
  }
  return 0;
}
