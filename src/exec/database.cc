#include "exec/database.h"

namespace geqo {
namespace {

const char* const kStringPool[] = {"alpha", "beta", "gamma", "delta", "omega",
                                   "sigma", "theta", "kappa"};

}  // namespace

Value TableData::At(size_t row, size_t column) const {
  switch (schema_->columns()[column].type) {
    case ValueType::kInt:
      return Value::Int(int_columns_[column][row]);
    case ValueType::kDouble:
      return Value::Double(double_columns_[column][row]);
    case ValueType::kString:
      return Value::String(string_columns_[column][row]);
  }
  return Value();
}

Database Database::Generate(const Catalog& catalog,
                            const DataGenOptions& options) {
  Database db;
  db.catalog_ = &catalog;
  Rng rng(options.seed);

  // Columns named in join keys share the key domain so equi-joins produce
  // matches at a predictable rate.
  auto is_key_column = [&](const std::string& table,
                           const std::string& column) {
    for (const JoinKey& key : catalog.join_keys()) {
      if ((key.left_table == table && key.left_column == column) ||
          (key.right_table == table && key.right_column == column)) {
        return true;
      }
    }
    return false;
  };

  for (const TableDef& table : catalog.tables()) {
    size_t rows = options.default_rows;
    const auto it = options.rows_per_table.find(table.name());
    if (it != options.rows_per_table.end()) rows = it->second;

    TableData data(&table, rows);
    for (size_t c = 0; c < table.columns().size(); ++c) {
      const ColumnDef& column = table.columns()[c];
      switch (column.type) {
        case ValueType::kInt: {
          auto& values = data.ints(c);
          values.reserve(rows);
          const bool key = is_key_column(table.name(), column.name);
          for (size_t r = 0; r < rows; ++r) {
            values.push_back(
                key ? static_cast<int64_t>(rng.Uniform(options.key_cardinality))
                    : rng.UniformInt(options.int_min, options.int_max));
          }
          break;
        }
        case ValueType::kDouble: {
          auto& values = data.doubles(c);
          values.reserve(rows);
          for (size_t r = 0; r < rows; ++r) {
            values.push_back(static_cast<double>(options.int_min) +
                             rng.NextDouble() *
                                 static_cast<double>(options.int_max -
                                                     options.int_min));
          }
          break;
        }
        case ValueType::kString: {
          auto& values = data.strings(c);
          values.reserve(rows);
          for (size_t r = 0; r < rows; ++r) {
            values.push_back(kStringPool[rng.Uniform(std::size(kStringPool))]);
          }
          break;
        }
      }
    }
    db.tables_.emplace(table.name(), std::move(data));
  }
  return db;
}

const TableData* Database::Find(const std::string& table) const {
  const auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : &it->second;
}

Result<const TableData*> Database::Get(const std::string& table) const {
  const TableData* data = Find(table);
  if (data == nullptr) return Status::NotFound("no data for table: " + table);
  return data;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, data] : tables_) total += data.num_rows();
  return total;
}

}  // namespace geqo
