#include "serve/persist/wal.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/binary_io.h"
#include "common/format_magic.h"
#include "common/log_io.h"
#include "serve/persist/kill_point.h"
#include "verify/verifier.h"

#ifdef __unix__
#include <unistd.h>
#endif

namespace geqo::serve::persist {

namespace {

constexpr size_t kHeaderSize = 4 * sizeof(uint64_t);

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

Status SyncFile(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) return Errno("cannot flush", path);
#ifdef __unix__
  if (::fsync(fileno(file)) != 0) return Errno("cannot fsync", path);
#endif
  return Status::OK();
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::ostringstream payload;
  io::BinaryWriter writer(payload, "wal record");
  writer.U8(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kAddEntry:
      writer.U64(record.gid);
      writer.U64(record.a);
      writer.U64(record.b);
      break;
    case WalRecordType::kVerdict:
      writer.U64(record.a);
      writer.U64(record.b);
      writer.U64(record.c);
      writer.U64(record.d);
      writer.U8(record.verdict);
      break;
    case WalRecordType::kUnion:
    case WalRecordType::kPending:
      writer.U64(record.a);
      writer.U64(record.b);
      break;
  }
  return payload.str();
}

Result<WalRecord> DecodeWalRecord(const std::string& payload,
                                  const std::string& context) {
  std::istringstream stream(payload);
  io::BinaryReader reader(stream, context);
  WalRecord record;
  const uint8_t type = reader.U8();
  GEQO_RETURN_NOT_OK(reader.status());
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kAddEntry:
      record.type = WalRecordType::kAddEntry;
      record.gid = reader.U64();
      record.a = reader.U64();
      record.b = reader.U64();
      break;
    case WalRecordType::kVerdict:
      record.type = WalRecordType::kVerdict;
      record.a = reader.U64();
      record.b = reader.U64();
      record.c = reader.U64();
      record.d = reader.U64();
      record.verdict = reader.U8();
      if (reader.ok() &&
          record.verdict > static_cast<uint8_t>(EquivalenceVerdict::kUnknown)) {
        reader.Fail("verdict byte " + std::to_string(record.verdict) +
                    " out of range");
      }
      break;
    case WalRecordType::kUnion:
    case WalRecordType::kPending:
      record.type = static_cast<WalRecordType>(type);
      record.a = reader.U64();
      record.b = reader.U64();
      break;
    default:
      return Status::InvalidArgument(context + ": unknown record type " +
                                     std::to_string(type) +
                                     " (corrupt log record)");
  }
  GEQO_RETURN_NOT_OK(reader.status());
  if (!reader.AtEof()) {
    return Status::InvalidArgument(
        context + ": trailing bytes inside a framed record (corrupt log)");
  }
  return record;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint64_t file_id,
                                                     uint64_t shard) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Errno("cannot create log partition", path);
  const uint64_t header[4] = {io::kWalMagic, io::kWalVersion, file_id, shard};
  if (std::fwrite(header, sizeof(header), 1, file) != 1 ||
      std::fflush(file) != 0) {
    const Status status = Errno("cannot write log header to", path);
    std::fclose(file);
    return status;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(file, path));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(const WalRecord& record, bool flush) {
  std::string framed;
  io::AppendFramedRecord(&framed, EncodeWalRecord(record));
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    return Errno("cannot append to log partition", path_);
  }
  if (flush && std::fflush(file_) != 0) {
    return Errno("cannot flush log partition", path_);
  }
  ++appended_;
  KillPoint("wal-append");
  return Status::OK();
}

Status WalWriter::Sync() { return SyncFile(file_, path_); }

Result<WalReplay> ReadWalFile(const std::string& path, uint64_t expect_file_id,
                              uint64_t expect_shard) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Errno("cannot open log partition", path);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  const std::string context = "log partition " + path;
  WalReplay replay;
  if (bytes.size() < kHeaderSize) {
    // The creation crash window: the partition exists but its header never
    // completed, so it cannot hold records. The caller decides whether this
    // generation is allowed to be half-created.
    replay.header_torn = true;
    replay.torn = true;
    return replay;
  }
  uint64_t header[4] = {};
  std::memcpy(header, bytes.data(), kHeaderSize);
  if (header[0] != io::kWalMagic) {
    return Status::InvalidArgument(context +
                                   ": bad magic (not a catalog delta log)");
  }
  if (header[1] != io::kWalVersion) {
    return Status::InvalidArgument(
        context + ": unsupported version " + std::to_string(header[1]) +
        " (expected " + std::to_string(io::kWalVersion) + ")");
  }
  replay.file_id = header[2];
  replay.shard = header[3];
  if (replay.file_id != expect_file_id || replay.shard != expect_shard) {
    return Status::InvalidArgument(
        context + ": header names file " + std::to_string(replay.file_id) +
        " shard " + std::to_string(replay.shard) + ", manifest expects file " +
        std::to_string(expect_file_id) + " shard " +
        std::to_string(expect_shard) + " (misplaced or corrupt log)");
  }
  io::FramedScan scan = io::ScanFramedRecords(bytes, kHeaderSize);
  if (scan.mid_corruption) {
    return Status::InvalidArgument(
        context + ": record at offset " + std::to_string(scan.clean_size) +
        " fails its checksum but valid records follow — mid-log corruption, "
        "not a torn tail (refusing to truncate over durable records)");
  }
  replay.torn = scan.torn;
  replay.clean_size = scan.clean_size;
  replay.records.reserve(scan.records.size());
  for (size_t i = 0; i < scan.records.size(); ++i) {
    GEQO_ASSIGN_OR_RETURN(
        WalRecord record,
        DecodeWalRecord(scan.records[i],
                        context + ", record " + std::to_string(i)));
    replay.records.push_back(record);
  }
  return replay;
}

}  // namespace geqo::serve::persist
