#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"

#include "common/stopwatch.h"

namespace geqo {

Result<Value> Executor::Evaluate(const ExprPtr& expr, const Intermediate& input,
                                 const std::vector<Value>& row) const {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return expr->value();
    case ExprKind::kColumnRef: {
      for (size_t i = 0; i < input.bindings.size(); ++i) {
        if (input.bindings[i] == expr->column()) return row[i];
      }
      return Status::InvalidArgument("unbound column: " +
                                     expr->column().ToString());
    }
    default: {
      GEQO_ASSIGN_OR_RETURN(const Value left, Evaluate(expr->left(), input, row));
      GEQO_ASSIGN_OR_RETURN(const Value right,
                            Evaluate(expr->right(), input, row));
      if (!left.is_numeric() || !right.is_numeric()) {
        return Status::InvalidArgument("arithmetic on non-numeric value");
      }
      const double a = left.AsDouble();
      const double b = right.AsDouble();
      switch (expr->kind()) {
        case ExprKind::kAdd:
          return Value::Double(a + b);
        case ExprKind::kSub:
          return Value::Double(a - b);
        case ExprKind::kMul:
          return Value::Double(a * b);
        case ExprKind::kDiv:
          if (b == 0.0) return Status::InvalidArgument("division by zero");
          return Value::Double(a / b);
        default:
          return Status::Internal("unexpected expression kind");
      }
    }
  }
}

Result<bool> Executor::EvaluatePredicate(const Comparison& cmp,
                                         const Intermediate& input,
                                         const std::vector<Value>& row) const {
  GEQO_ASSIGN_OR_RETURN(const Value left, Evaluate(cmp.lhs, input, row));
  GEQO_ASSIGN_OR_RETURN(const Value right, Evaluate(cmp.rhs, input, row));
  if (left.is_numeric() != right.is_numeric()) {
    return Status::InvalidArgument("comparison across numeric and string");
  }
  const int c = left.Compare(right);
  switch (cmp.op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return Status::Internal("unknown comparison operator");
}

Result<Executor::Intermediate> Executor::Run(const PlanPtr& plan,
                                             ExecStats* stats) {
  switch (plan->kind()) {
    case OpKind::kScan: {
      GEQO_ASSIGN_OR_RETURN(const TableData* data,
                            database_->Get(plan->table()));
      Intermediate out;
      const TableDef& schema = data->schema();
      for (const ColumnDef& column : schema.columns()) {
        out.bindings.push_back(ColumnRef{plan->alias(), column.name});
      }
      out.rows.reserve(data->num_rows());
      for (size_t r = 0; r < data->num_rows(); ++r) {
        std::vector<Value> row;
        row.reserve(schema.columns().size());
        for (size_t c = 0; c < schema.columns().size(); ++c) {
          row.push_back(data->At(r, c));
        }
        out.rows.push_back(std::move(row));
      }
      if (stats != nullptr) stats->rows_scanned += data->num_rows();
      return out;
    }

    case OpKind::kSelect: {
      GEQO_ASSIGN_OR_RETURN(Intermediate input, Run(plan->child(0), stats));
      Intermediate out;
      out.bindings = input.bindings;
      for (const std::vector<Value>& row : input.rows) {
        GEQO_ASSIGN_OR_RETURN(
            const bool keep, EvaluatePredicate(plan->predicate(), input, row));
        if (keep) out.rows.push_back(row);
      }
      return out;
    }

    case OpKind::kJoin: {
      if (plan->join_type() != JoinType::kInner) {
        return Status::NotSupported("executor supports inner joins only");
      }
      GEQO_ASSIGN_OR_RETURN(Intermediate left, Run(plan->child(0), stats));
      GEQO_ASSIGN_OR_RETURN(Intermediate right, Run(plan->child(1), stats));
      Intermediate out;
      out.bindings = left.bindings;
      out.bindings.insert(out.bindings.end(), right.bindings.begin(),
                          right.bindings.end());

      // Hash join when the predicate is a plain cross-side column equality;
      // nested loops otherwise.
      const Comparison& predicate = plan->predicate();
      ssize_t left_key = -1;
      ssize_t right_key = -1;
      if (predicate.op == CompareOp::kEq && predicate.lhs->is_column() &&
          predicate.rhs->is_column()) {
        const auto index_of = [](const Intermediate& side, const ColumnRef& ref) {
          for (size_t i = 0; i < side.bindings.size(); ++i) {
            if (side.bindings[i] == ref) return static_cast<ssize_t>(i);
          }
          return static_cast<ssize_t>(-1);
        };
        ssize_t l = index_of(left, predicate.lhs->column());
        ssize_t r = index_of(right, predicate.rhs->column());
        if (l < 0 && r < 0) {
          l = index_of(left, predicate.rhs->column());
          r = index_of(right, predicate.lhs->column());
        }
        left_key = l;
        right_key = r;
      }

      if (left_key >= 0 && right_key >= 0) {
        std::unordered_map<uint64_t, std::vector<size_t>> hash_table;
        for (size_t r = 0; r < right.rows.size(); ++r) {
          hash_table[right.rows[r][static_cast<size_t>(right_key)].Hash()]
              .push_back(r);
        }
        for (const std::vector<Value>& left_row : left.rows) {
          const Value& key = left_row[static_cast<size_t>(left_key)];
          const auto it = hash_table.find(key.Hash());
          if (it == hash_table.end()) continue;
          for (const size_t r : it->second) {
            const Value& other = right.rows[r][static_cast<size_t>(right_key)];
            if (key.is_numeric() != other.is_numeric() || !(key == other)) {
              continue;  // hash collision or type mismatch
            }
            std::vector<Value> row = left_row;
            row.insert(row.end(), right.rows[r].begin(), right.rows[r].end());
            out.rows.push_back(std::move(row));
          }
        }
      } else {
        for (const std::vector<Value>& left_row : left.rows) {
          for (const std::vector<Value>& right_row : right.rows) {
            std::vector<Value> row = left_row;
            row.insert(row.end(), right_row.begin(), right_row.end());
            GEQO_ASSIGN_OR_RETURN(const bool keep,
                                  EvaluatePredicate(predicate, out, row));
            if (keep) out.rows.push_back(std::move(row));
          }
        }
      }
      return out;
    }

    case OpKind::kAggregate: {
      GEQO_ASSIGN_OR_RETURN(Intermediate input, Run(plan->child(0), stats));
      Intermediate out;
      for (const OutputColumn& key : plan->group_by()) {
        out.bindings.push_back(ColumnRef{"", key.name});
      }
      for (const AggregateExpr& aggregate : plan->aggregates()) {
        out.bindings.push_back(ColumnRef{"", aggregate.name});
      }

      // Hash aggregation: group rows by their key tuple, then fold each
      // aggregate over the group.
      struct GroupState {
        std::vector<Value> keys;
        std::vector<double> sums;
        std::vector<Value> minimums;
        std::vector<Value> maximums;
        std::vector<int64_t> counts;
        size_t rows = 0;
      };
      std::unordered_map<uint64_t, std::vector<GroupState>> groups;
      const size_t num_aggregates = plan->aggregates().size();

      for (const std::vector<Value>& row : input.rows) {
        std::vector<Value> keys;
        keys.reserve(plan->group_by().size());
        uint64_t hash = 0x96017;
        for (const OutputColumn& key : plan->group_by()) {
          GEQO_ASSIGN_OR_RETURN(Value value, Evaluate(key.expr, input, row));
          hash = HashCombine(hash, value.Hash());
          keys.push_back(std::move(value));
        }
        auto& bucket = groups[hash];
        GroupState* state = nullptr;
        for (GroupState& candidate : bucket) {
          bool equal = candidate.keys.size() == keys.size();
          for (size_t k = 0; equal && k < keys.size(); ++k) {
            equal = candidate.keys[k].is_numeric() == keys[k].is_numeric() &&
                    candidate.keys[k] == keys[k];
          }
          if (equal) {
            state = &candidate;
            break;
          }
        }
        if (state == nullptr) {
          bucket.push_back(GroupState{});
          state = &bucket.back();
          state->keys = keys;
          state->sums.assign(num_aggregates, 0.0);
          state->minimums.resize(num_aggregates);
          state->maximums.resize(num_aggregates);
          state->counts.assign(num_aggregates, 0);
        }
        ++state->rows;
        for (size_t a = 0; a < num_aggregates; ++a) {
          const AggregateExpr& aggregate = plan->aggregates()[a];
          if (aggregate.argument == nullptr) continue;  // COUNT(*)
          GEQO_ASSIGN_OR_RETURN(Value value,
                                Evaluate(aggregate.argument, input, row));
          if (!value.is_numeric() && aggregate.fn != AggregateFn::kMin &&
              aggregate.fn != AggregateFn::kMax &&
              aggregate.fn != AggregateFn::kCount) {
            return Status::InvalidArgument(
                "numeric aggregate over string column");
          }
          if (state->counts[a] == 0 || value < state->minimums[a]) {
            state->minimums[a] = value;
          }
          if (state->counts[a] == 0 || state->maximums[a] < value) {
            state->maximums[a] = value;
          }
          if (value.is_numeric()) state->sums[a] += value.AsDouble();
          ++state->counts[a];
        }
      }

      for (auto& [hash, bucket] : groups) {
        for (GroupState& state : bucket) {
          std::vector<Value> row = state.keys;
          for (size_t a = 0; a < num_aggregates; ++a) {
            const AggregateExpr& aggregate = plan->aggregates()[a];
            const int64_t count =
                aggregate.argument == nullptr
                    ? static_cast<int64_t>(state.rows)
                    : state.counts[a];
            switch (aggregate.fn) {
              case AggregateFn::kCount:
                row.push_back(Value::Int(count));
                break;
              case AggregateFn::kSum:
                row.push_back(Value::Double(state.sums[a]));
                break;
              case AggregateFn::kMin:
                row.push_back(state.minimums[a]);
                break;
              case AggregateFn::kMax:
                row.push_back(state.maximums[a]);
                break;
              case AggregateFn::kAvg:
                row.push_back(Value::Double(
                    count == 0 ? 0.0
                               : state.sums[a] / static_cast<double>(count)));
                break;
            }
          }
          out.rows.push_back(std::move(row));
        }
      }
      return out;
    }

    case OpKind::kProject: {
      GEQO_ASSIGN_OR_RETURN(Intermediate input, Run(plan->child(0), stats));
      Intermediate out;
      for (const OutputColumn& output : plan->outputs()) {
        // Positional pseudo-bindings; the RowSet carries the real names.
        out.bindings.push_back(ColumnRef{"", output.name});
      }
      out.rows.reserve(input.rows.size());
      for (const std::vector<Value>& row : input.rows) {
        std::vector<Value> projected;
        projected.reserve(plan->outputs().size());
        for (const OutputColumn& output : plan->outputs()) {
          GEQO_ASSIGN_OR_RETURN(Value value, Evaluate(output.expr, input, row));
          projected.push_back(std::move(value));
        }
        out.rows.push_back(std::move(projected));
      }
      return out;
    }
  }
  return Status::Internal("unknown operator kind");
}

Result<RowSet> Executor::Execute(const PlanPtr& plan, ExecStats* stats) {
  Stopwatch watch;
  ExecStats local;
  GEQO_ASSIGN_OR_RETURN(Intermediate result, Run(plan, &local));
  RowSet out;
  for (const ColumnRef& binding : result.bindings) {
    out.column_names.push_back(binding.alias.empty()
                                   ? binding.column
                                   : binding.ToString());
  }
  out.rows = std::move(result.rows);
  local.rows_output = out.rows.size();
  local.seconds = watch.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace geqo
