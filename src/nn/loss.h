#pragma once

#include "tensor/tensor.h"

/// \file loss.h
/// Binary classification loss for the EMF: numerically stable binary
/// cross-entropy on logits, with the sigmoid folded into the gradient.

namespace geqo::nn {

/// \brief Elementwise logistic sigmoid.
Tensor Sigmoid(const Tensor& logits);

/// \brief Mean binary cross-entropy between \p logits ([N,1]) and \p labels
/// ([N,1] of 0/1), computed in the numerically stable log-sum-exp form.
float BceWithLogitsLoss(const Tensor& logits, const Tensor& labels);

/// \brief Gradient of BceWithLogitsLoss w.r.t. the logits:
/// (sigmoid(z) - y) / N.
Tensor BceWithLogitsGrad(const Tensor& logits, const Tensor& labels);

}  // namespace geqo::nn
