#include "analysis/lock_rank.h"

#include <thread>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "common/work_queue.h"

/// \file lock_rank_test.cc
/// The runtime lock-rank checker: unit tests for the held-stack bookkeeping
/// and the lattice rules, plus the two mutation death-tests the PR's
/// acceptance criteria name — an injected map->shard inversion inside a
/// ParallelForWithWorker body and an injected wal->store inversion in a
/// WorkQueue consumer, each required to abort on the *first* run with the
/// exact rank-pair diagnostic (deterministic, unlike a TSan schedule race).

namespace geqo {
namespace {

using analysis::HeldLockCountForTest;
using analysis::LockRank;
using analysis::LockRankName;
using analysis::LockRankSameRankNestable;
using analysis::SetLockRankCheckingForTest;

/// Enables checking for the test body and restores the build default after.
class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLockRankCheckingForTest(true); }
  void TearDown() override { SetLockRankCheckingForTest(false); }
};

TEST_F(LockRankTest, RankNamesAreStable) {
  // The mutation tests (and any operator reading an abort) key on these
  // strings; renaming one is a contract change, not a refactor.
  EXPECT_STREQ("serve.shard", LockRankName(LockRank::kShard));
  EXPECT_STREQ("serve.map", LockRankName(LockRank::kCatalogMap));
  EXPECT_STREQ("persist.store", LockRankName(LockRank::kStore));
  EXPECT_STREQ("persist.wal", LockRankName(LockRank::kWalHandle));
  EXPECT_STREQ("common.work_queue", LockRankName(LockRank::kWorkQueue));
  EXPECT_STREQ("common.thread_pool", LockRankName(LockRank::kThreadPool));
  EXPECT_STREQ("common.leaf", LockRankName(LockRank::kLeaf));
}

TEST_F(LockRankTest, OnlyShardIsSameRankNestable) {
  EXPECT_TRUE(LockRankSameRankNestable(LockRank::kShard));
  EXPECT_FALSE(LockRankSameRankNestable(LockRank::kCatalogMap));
  EXPECT_FALSE(LockRankSameRankNestable(LockRank::kStore));
  EXPECT_FALSE(LockRankSameRankNestable(LockRank::kLeaf));
}

TEST_F(LockRankTest, AscendingAcquisitionTracksHeldCount) {
  Mutex low(LockRank::kCompaction);
  SharedMutex mid(LockRank::kShard);
  Mutex high(LockRank::kLeaf);
  EXPECT_EQ(0u, HeldLockCountForTest());
  {
    MutexLock l1(low);
    EXPECT_EQ(1u, HeldLockCountForTest());
    ReaderLock l2(mid);
    EXPECT_EQ(2u, HeldLockCountForTest());
    MutexLock l3(high);
    EXPECT_EQ(3u, HeldLockCountForTest());
  }
  EXPECT_EQ(0u, HeldLockCountForTest());
}

TEST_F(LockRankTest, ShardLocksNestAgainstEachOther) {
  // Snapshot export holds every shard's lock at once (same rank, index
  // order); the checker must allow equal-rank nesting for kShard only.
  SharedMutex shard0(LockRank::kShard);
  SharedMutex shard1(LockRank::kShard);
  ReaderLock l0(shard0);
  ReaderLock l1(shard1);
  EXPECT_EQ(2u, HeldLockCountForTest());
}

TEST_F(LockRankTest, OutOfOrderReleaseIsSupported) {
  // Snapshot export also releases shard locks front to back (not reverse
  // acquisition order); the stack must pop the matching entry, not the top.
  SharedMutex shard0(LockRank::kShard);
  SharedMutex shard1(LockRank::kShard);
  shard0.lock_shared();
  shard1.lock_shared();
  shard0.unlock_shared();
  EXPECT_EQ(1u, HeldLockCountForTest());
  shard1.unlock_shared();
  EXPECT_EQ(0u, HeldLockCountForTest());
}

TEST_F(LockRankTest, ReleaseOfUntrackedRankIsTolerated) {
  // A lock acquired while the checker was off may be released after it is
  // toggled on (tests do exactly this); the release must be a no-op.
  analysis::LockRankOnRelease(LockRank::kLeaf);
  EXPECT_EQ(0u, HeldLockCountForTest());
}

TEST_F(LockRankTest, DisabledCheckerRecordsNothing) {
  SetLockRankCheckingForTest(false);
  Mutex high(LockRank::kLeaf);
  Mutex low(LockRank::kCompaction);
  MutexLock l1(high);
  MutexLock l2(low);  // inversion, but the checker is off
  EXPECT_EQ(0u, HeldLockCountForTest());
}

using LockRankDeathTest = LockRankTest;

TEST_F(LockRankDeathTest, DirectInversionAbortsWithBothRankNames) {
  Mutex store(LockRank::kStore);
  SharedMutex shard(LockRank::kShard);
  EXPECT_DEATH(
      {
        SetLockRankCheckingForTest(true);
        MutexLock store_lock(store);
        WriterLock shard_lock(shard);
      },
      "lock-rank violation: acquiring 'serve\\.shard' \\(rank 30\\) while "
      "holding 'persist\\.store' \\(rank 40\\)");
}

TEST_F(LockRankDeathTest, MapThenShardInversionAbortsInParallelWorker) {
  // Mutation test A (acceptance criteria): invert the documented
  // "shard.mu before map_mu_" order inside a ParallelForWithWorker body —
  // the shape a refactor of CommitAdd/ProbeAdd would take. The checker
  // must abort on the first acquisition, on every schedule, with the
  // exact rank pair; no interleaving luck involved.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SharedMutex shard(LockRank::kShard);
  SharedMutex map(LockRank::kCatalogMap);
  EXPECT_DEATH(
      {
        SetLockRankCheckingForTest(true);
        ParallelForWithWorker(
            0, 4,
            [&](size_t /*worker*/, size_t /*i*/) {
              WriterLock map_lock(map);
              ReaderLock shard_lock(shard);  // injected inversion: 30 under 35
            },
            1);
      },
      "lock-rank violation: acquiring 'serve\\.shard' \\(rank 30\\) while "
      "holding 'serve\\.map' \\(rank 35\\)");
}

TEST_F(LockRankDeathTest, WalThenStoreInversionAbortsInQueueConsumer) {
  // Mutation test B (acceptance criteria): a WorkQueue consumer that takes
  // a WAL handle lock and then the store lock — the inversion a careless
  // compaction-callback change would introduce (RotateLocked runs the
  // other way: store_mu_ first, then handle.mu).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetLockRankCheckingForTest(true);
        Mutex wal(LockRank::kWalHandle);
        Mutex store(LockRank::kStore);
        WorkQueue<int> queue;
        std::thread consumer([&] {
          while (queue.Pop().has_value()) {
            MutexLock wal_lock(wal);
            MutexLock store_lock(store);  // injected inversion: 40 under 50
            queue.TaskDone();
          }
        });
        queue.Push(1);
        consumer.join();
      },
      "lock-rank violation: acquiring 'persist\\.store' \\(rank 40\\) while "
      "holding 'persist\\.wal' \\(rank 50\\)");
}

}  // namespace
}  // namespace geqo
