#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

/// \file random_forest.h
/// Random-forest baseline classifier (§5, §7.1.1 / Table 3): bagged CART
/// trees with Gini-impurity splits and per-split feature subsampling.

namespace geqo::ml {

/// \brief Forest hyperparameters.
struct RandomForestOptions {
  size_t num_trees = 50;
  size_t max_depth = 12;
  size_t min_samples_leaf = 2;
  /// Features considered per split; 0 = floor(sqrt(d)).
  size_t features_per_split = 0;
  uint64_t seed = 0xf0e57ULL;
};

/// \brief A random forest for binary classification.
class RandomForest {
 public:
  explicit RandomForest(RandomForestOptions options = RandomForestOptions())
      : options_(options) {}

  /// Fits to \p features [n, d] and \p labels [n, 1] in {0, 1}.
  void Train(const Tensor& features, const Tensor& labels);

  /// Mean positive-class vote fraction across trees for each row.
  std::vector<float> PredictProba(const Tensor& features) const;

  size_t num_trees() const { return trees_.size(); }

 private:
  /// Flat array-of-nodes decision tree. Leaves store the positive fraction.
  struct TreeNode {
    int32_t feature = -1;  ///< -1 marks a leaf
    float threshold = 0.0f;
    int32_t left = -1;
    int32_t right = -1;
    float positive_fraction = 0.0f;
  };
  using Tree = std::vector<TreeNode>;

  int32_t BuildNode(Tree* tree, const Tensor& features, const Tensor& labels,
                    std::vector<uint32_t>& indices, size_t begin, size_t end,
                    size_t depth, Rng* rng);
  static float PredictTree(const Tree& tree, const float* row);

  RandomForestOptions options_;
  std::vector<Tree> trees_;
};

}  // namespace geqo::ml
