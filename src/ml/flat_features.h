#pragma once

#include "encode/encoding.h"
#include "ml/dataset.h"

/// \file flat_features.h
/// Fixed-size features for the non-convolutional baseline classifiers of
/// §7.1.1 (logistic regression, random forests). A subexpression pair is
/// flattened as [meanpool(a) | meanpool(b) | |meanpool(a) - meanpool(b)|],
/// where meanpool averages node vectors over the plan tree — the strongest
/// simple summary available to models that cannot consume tree structure.

namespace geqo::ml {

/// \brief Mean of \p plan's node vectors: a 1 x |NV| tensor.
Tensor MeanPoolPlan(const EncodedPlan& plan);

/// \brief Flat feature vector for a pair (length 3 * |NV|).
std::vector<float> FlattenPair(const EncodedPlan& lhs, const EncodedPlan& rhs);

/// \brief Feature matrix [n, 3|NV|] and label column for a PairDataset.
void FlattenDataset(const PairDataset& dataset, Tensor* features,
                    Tensor* labels);

}  // namespace geqo::ml
