#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

/// \file solver.h
/// A miniature SMT solver in the DPLL(T) style: a DPLL SAT search with unit
/// propagation and chronological backtracking, coupled to a difference-logic
/// theory solver (Bellman-Ford negative-cycle detection).
///
/// This is the substrate that replaces Z3 for the SPES-style verifier (see
/// DESIGN.md §1): the verifier lowers predicate-implication queries P ∧ ¬q
/// to CNF over difference atoms and asks for (un)satisfiability. The theory
/// fragment — conjunctions/disjunctions of x - y ⋈ c and x ⋈ c atoms over
/// reals — exactly covers the conjunctive SPJ predicates GEqO targets.

namespace geqo::smt {

/// Variable identifiers. Variable 0 is reserved as the designated zero
/// constant: "x <= 5" is expressed as x - zero <= 5.
using VarId = int32_t;
inline constexpr VarId kZeroVar = 0;

/// \brief A difference-logic atom: x - y < c (strict) or x - y <= c.
struct DiffAtom {
  VarId x = kZeroVar;
  VarId y = kZeroVar;
  double bound = 0.0;
  bool strict = false;

  /// The negation: !(x - y <= c) == y - x < -c, and
  /// !(x - y < c) == y - x <= -c.
  DiffAtom Negated() const { return DiffAtom{y, x, -bound, !strict}; }
};

/// \brief A literal: an atom index with a polarity.
struct Literal {
  int32_t atom = 0;
  bool positive = true;
};

enum class Verdict { kSat, kUnsat };

/// \brief The DPLL(T) solver. Usage: create variables and atoms, add CNF
/// clauses of literals, call Solve(). Solvers are single-shot.
class DiffLogicSolver {
 public:
  DiffLogicSolver() { num_vars_ = 1; /* the zero variable */ }

  /// Allocates a fresh theory variable.
  VarId NewVariable() { return num_vars_++; }

  /// Registers \p atom, returning its index for use in literals.
  int32_t AddAtom(DiffAtom atom) {
    atoms_.push_back(atom);
    return static_cast<int32_t>(atoms_.size()) - 1;
  }

  /// Adds a CNF clause (disjunction of literals). An empty clause makes the
  /// formula trivially unsatisfiable.
  void AddClause(std::vector<Literal> clause) {
    clauses_.push_back(std::move(clause));
  }

  /// Convenience: adds the unit clause [lit].
  void AddUnit(Literal literal) { AddClause({literal}); }

  /// Decides satisfiability of the clause set modulo difference logic.
  Verdict Solve();

  /// Number of registered atoms (γ in the paper's AV complexity bound).
  size_t num_atoms() const { return atoms_.size(); }

  /// Cumulative statistics across Solve() calls, for benchmark reporting.
  struct Stats {
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t theory_checks = 0;
    uint64_t conflicts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  enum class Assignment : int8_t { kUnassigned, kTrue, kFalse };

  bool Dpll();
  /// Runs unit propagation; returns false on boolean conflict.
  bool PropagateUnits(std::vector<int32_t>* trail);
  /// Checks theory consistency of the current assignment; returns false on
  /// a negative cycle (theory conflict).
  bool TheoryConsistent();
  void Unassign(const std::vector<int32_t>& trail, size_t from);
  int32_t PickBranchAtom() const;

  int32_t num_vars_ = 1;
  std::vector<DiffAtom> atoms_;
  std::vector<std::vector<Literal>> clauses_;
  std::vector<Assignment> assignment_;
  Stats stats_;
};

}  // namespace geqo::smt
