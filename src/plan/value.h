#pragma once

#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/hash.h"

/// \file value.h
/// Runtime / literal values shared by the plan library (literals in
/// predicates) and the mini executor (cell values).

namespace geqo {

/// Column / literal types supported by the substrate.
enum class ValueType : uint8_t { kInt, kDouble, kString };

std::string_view ValueTypeToString(ValueType type);

/// \brief A dynamically typed scalar value.
///
/// Small, copyable, ordered within a type. Numeric comparisons promote
/// kInt to kDouble; cross-type comparison with strings is an error caught
/// upstream by the analyzer/generator.
class Value {
 public:
  Value() : type_(ValueType::kInt), int_(0) {}
  static Value Int(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = std::move(v);
    return out;
  }

  ValueType type() const { return type_; }
  bool is_numeric() const { return type_ != ValueType::kString; }

  int64_t AsInt() const {
    GEQO_DCHECK(type_ == ValueType::kInt);
    return int_;
  }
  double AsDouble() const {
    GEQO_DCHECK(is_numeric());
    return type_ == ValueType::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const {
    GEQO_DCHECK(type_ == ValueType::kString);
    return string_;
  }

  /// Three-way comparison; numeric values compare numerically across
  /// kInt/kDouble, strings compare lexicographically. Aborts on
  /// numeric-vs-string comparison (a type error upstream).
  int Compare(const Value& other) const {
    if (is_numeric() && other.is_numeric()) {
      const double a = AsDouble();
      const double b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    GEQO_CHECK(type_ == ValueType::kString && other.type_ == ValueType::kString)
        << "cannot compare numeric and string values";
    return string_.compare(other.string_) < 0
               ? -1
               : (string_ == other.string_ ? 0 : 1);
  }

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  uint64_t Hash() const {
    switch (type_) {
      case ValueType::kInt:
        // Hash ints through their double form so 3 == 3.0 hash-agree.
        return HashBytes(&int_, sizeof(int_), 0x1234567);
      case ValueType::kDouble: {
        if (double_ == static_cast<double>(static_cast<int64_t>(double_))) {
          const int64_t as_int = static_cast<int64_t>(double_);
          return HashBytes(&as_int, sizeof(as_int), 0x1234567);
        }
        return HashBytes(&double_, sizeof(double_), 0x89abcd);
      }
      case ValueType::kString:
        return HashString(string_);
    }
    return 0;
  }

  std::string ToString() const;

 private:
  ValueType type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

}  // namespace geqo
