#include <gtest/gtest.h>

#include "plan/canonicalize.h"
#include "plan/expr.h"
#include "plan/plan.h"
#include "plan/spj.h"
#include "plan/subexpr.h"
#include "test_util.h"

namespace geqo {
namespace {

using testing::MakeFigure1Catalog;
using testing::MustParse;

ExprPtr Col(const char* alias, const char* column) {
  return Expr::Column(alias, column);
}

TEST(ExprTest, ToStringRendersTree) {
  const ExprPtr expr = Expr::Binary(ExprKind::kAdd, Col("a", "val"),
                                    Expr::IntLiteral(10));
  EXPECT_EQ(expr->ToString(), "(a.val + 10)");
}

TEST(ExprTest, EqualsIsStructural) {
  const ExprPtr a = Expr::Binary(ExprKind::kAdd, Col("a", "v"),
                                 Expr::IntLiteral(1));
  const ExprPtr b = Expr::Binary(ExprKind::kAdd, Col("a", "v"),
                                 Expr::IntLiteral(1));
  const ExprPtr c = Expr::Binary(ExprKind::kAdd, Expr::IntLiteral(1),
                                 Col("a", "v"));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));  // operand order matters structurally
  EXPECT_EQ(a->Hash(), b->Hash());
}

TEST(ExprTest, CollectColumns) {
  const ExprPtr expr = Expr::Binary(
      ExprKind::kSub, Col("a", "x"),
      Expr::Binary(ExprKind::kAdd, Col("b", "y"), Expr::IntLiteral(3)));
  std::vector<ColumnRef> columns;
  expr->CollectColumns(&columns);
  ASSERT_EQ(columns.size(), 2u);
  EXPECT_EQ(columns[0].ToString(), "a.x");
  EXPECT_EQ(columns[1].ToString(), "b.y");
}

TEST(ExprTest, FoldConstantsCollapsesArithmetic) {
  const ExprPtr expr = Expr::Binary(
      ExprKind::kMul,
      Expr::Binary(ExprKind::kAdd, Expr::IntLiteral(2), Expr::IntLiteral(3)),
      Expr::IntLiteral(4));
  const ExprPtr folded = FoldConstants(expr);
  ASSERT_TRUE(folded->is_literal());
  EXPECT_EQ(folded->value().AsInt(), 20);
}

TEST(ExprTest, FoldConstantsPreservesColumns) {
  const ExprPtr expr = Expr::Binary(
      ExprKind::kAdd, Col("a", "v"),
      Expr::Binary(ExprKind::kAdd, Expr::IntLiteral(5), Expr::IntLiteral(5)));
  const ExprPtr folded = FoldConstants(expr);
  EXPECT_EQ(folded->ToString(), "(a.v + 10)");
}

TEST(ExprTest, FoldConstantsLeavesDivisionByZero) {
  const ExprPtr expr = Expr::Binary(ExprKind::kDiv, Expr::IntLiteral(1),
                                    Expr::IntLiteral(0));
  EXPECT_TRUE(FoldConstants(expr)->is_binary());
}

TEST(LinearTermTest, ColumnPlusConstant) {
  const auto term = ExtractLinearTerm(
      Expr::Binary(ExprKind::kAdd, Col("a", "v"), Expr::IntLiteral(7)));
  ASSERT_TRUE(term.has_value());
  EXPECT_EQ(term->column->ToString(), "a.v");
  EXPECT_EQ(term->offset, 7.0);
}

TEST(LinearTermTest, ConstantPlusColumn) {
  const auto term = ExtractLinearTerm(
      Expr::Binary(ExprKind::kAdd, Expr::IntLiteral(7), Col("a", "v")));
  ASSERT_TRUE(term.has_value());
  EXPECT_EQ(term->column->ToString(), "a.v");
  EXPECT_EQ(term->offset, 7.0);
}

TEST(LinearTermTest, ColumnMinusConstant) {
  const auto term = ExtractLinearTerm(
      Expr::Binary(ExprKind::kSub, Col("a", "v"), Expr::IntLiteral(3)));
  ASSERT_TRUE(term.has_value());
  EXPECT_EQ(term->offset, -3.0);
}

TEST(LinearTermTest, RejectsTwoColumns) {
  EXPECT_FALSE(ExtractLinearTerm(Expr::Binary(ExprKind::kAdd, Col("a", "v"),
                                              Col("b", "w")))
                   .has_value());
}

TEST(LinearTermTest, RejectsScaledColumn) {
  EXPECT_FALSE(ExtractLinearTerm(Expr::Binary(ExprKind::kMul, Col("a", "v"),
                                              Expr::IntLiteral(2)))
                   .has_value());
}

TEST(NormalizeComparisonTest, MovesConstantRight) {
  // a.v + 10 < 30  =>  a.v < 20.
  const Comparison cmp{
      Expr::Binary(ExprKind::kAdd, Col("a", "v"), Expr::IntLiteral(10)),
      CompareOp::kLt, Expr::IntLiteral(30)};
  const auto normalized = NormalizeComparison(cmp);
  ASSERT_TRUE(normalized.has_value());
  EXPECT_EQ(normalized->left->ToString(), "a.v");
  EXPECT_FALSE(normalized->right.has_value());
  EXPECT_EQ(normalized->op, CompareOp::kLt);
  EXPECT_EQ(normalized->constant, 20.0);
}

TEST(NormalizeComparisonTest, FlipsWhenColumnOnRight) {
  // 30 < a.v  =>  a.v > 30.
  const Comparison cmp{Expr::IntLiteral(30), CompareOp::kLt, Col("a", "v")};
  const auto normalized = NormalizeComparison(cmp);
  ASSERT_TRUE(normalized.has_value());
  EXPECT_EQ(normalized->left->ToString(), "a.v");
  EXPECT_EQ(normalized->op, CompareOp::kGt);
  EXPECT_EQ(normalized->constant, 30.0);
}

TEST(NormalizeComparisonTest, DifferenceForm) {
  // a.v > b.v + 10  =>  a.v - b.v > 10.
  const Comparison cmp{
      Col("a", "v"), CompareOp::kGt,
      Expr::Binary(ExprKind::kAdd, Col("b", "v"), Expr::IntLiteral(10))};
  const auto normalized = NormalizeComparison(cmp);
  ASSERT_TRUE(normalized.has_value());
  EXPECT_EQ(normalized->left->ToString(), "a.v");
  EXPECT_EQ(normalized->right->ToString(), "b.v");
  EXPECT_EQ(normalized->constant, 10.0);
}

TEST(NormalizeComparisonTest, EquivalentFormsNormalizeEqually) {
  // b.val + 10 < a.val vs a.val > b.val + 10 (the Figure 1 rewrite).
  const Comparison q2{
      Expr::Binary(ExprKind::kAdd, Col("b", "val"), Expr::IntLiteral(10)),
      CompareOp::kLt, Col("a", "val")};
  const Comparison q1{
      Col("a", "val"), CompareOp::kGt,
      Expr::Binary(ExprKind::kAdd, Col("b", "val"), Expr::IntLiteral(10))};
  const auto n1 = NormalizeComparison(q1);
  const auto n2 = NormalizeComparison(q2);
  ASSERT_TRUE(n1 && n2);
  EXPECT_EQ(n1->left->ToString(), "a.val");  // canonical operand order
  EXPECT_EQ(n1->left->ToString(), n2->left->ToString());
  EXPECT_EQ(n1->right->ToString(), n2->right->ToString());
  EXPECT_EQ(n1->op, n2->op);
  EXPECT_EQ(n1->constant, n2->constant);
}

TEST(NormalizeComparisonTest, StringEquality) {
  const Comparison cmp{Col("a", "name"), CompareOp::kEq,
                       Expr::Literal(Value::String("acme"))};
  const auto normalized = NormalizeComparison(cmp);
  ASSERT_TRUE(normalized.has_value());
  ASSERT_TRUE(normalized->string_constant.has_value());
  EXPECT_EQ(*normalized->string_constant, "acme");
}

TEST(PlanTest, FactoriesAndAccessors) {
  const PlanPtr scan = PlanNode::Scan("a", "a1");
  EXPECT_EQ(scan->kind(), OpKind::kScan);
  EXPECT_EQ(scan->table(), "a");
  EXPECT_EQ(scan->alias(), "a1");
  EXPECT_EQ(scan->NumOps(), 1u);

  const PlanPtr select = PlanNode::Select(
      Comparison{Col("a1", "val"), CompareOp::kGt, Expr::IntLiteral(5)}, scan);
  EXPECT_EQ(select->NumOps(), 2u);
  EXPECT_EQ(select->Height(), 2u);
}

TEST(PlanTest, ScanBindingsInOrder) {
  const PlanPtr join = PlanNode::Join(
      JoinType::kInner,
      Comparison{Col("x", "joinkey"), CompareOp::kEq, Col("y", "joinkey")},
      PlanNode::Scan("a", "x"), PlanNode::Scan("b", "y"));
  const auto bindings = join->ScanBindings();
  ASSERT_EQ(bindings.size(), 2u);
  EXPECT_EQ(bindings[0].first, "a");
  EXPECT_EQ(bindings[1].second, "y");
}

TEST(PlanTest, OutputColumnsExpandScans) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr scan = PlanNode::Scan("a", "a");
  const auto columns = scan->OutputColumns(catalog);
  ASSERT_TRUE(columns.ok());
  EXPECT_EQ(columns->size(), 3u);
  EXPECT_EQ((*columns)[0].name, "a.joinkey");
}

TEST(PlanTest, RenameAliasesRewritesEverything) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse(
      "SELECT a.x FROM a, b WHERE a.joinkey = b.joinkey AND a.val > 3",
      catalog);
  const PlanPtr renamed = plan->RenameAliases({{"a", "t1"}, {"b", "t2"}});
  const auto aliases = renamed->ScanAliases();
  EXPECT_EQ(aliases[0], "t1");
  EXPECT_EQ(aliases[1], "t2");
  EXPECT_EQ(renamed->outputs()[0].expr->ToString(), "t1.x");
}

TEST(PlanTest, HashAndEqualsAgree) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr p1 = MustParse("SELECT a.x FROM a WHERE a.val > 3", catalog);
  const PlanPtr p2 = MustParse("SELECT a.x FROM a WHERE a.val > 3", catalog);
  const PlanPtr p3 = MustParse("SELECT a.x FROM a WHERE a.val > 4", catalog);
  EXPECT_TRUE(p1->Equals(*p2));
  EXPECT_EQ(p1->Hash(), p2->Hash());
  EXPECT_FALSE(p1->Equals(*p3));
}

TEST(CanonicalizeTest, FoldsPredicateConstants) {
  const PlanPtr plan = PlanNode::Select(
      Comparison{Col("a", "v"), CompareOp::kGt,
                 Expr::Binary(ExprKind::kAdd, Expr::IntLiteral(10),
                              Expr::IntLiteral(5))},
      PlanNode::Scan("a", "a"));
  const PlanPtr canonical = Canonicalize(plan);
  EXPECT_EQ(canonical->predicate().rhs->value().AsInt(), 15);
}

TEST(CanonicalizeTest, DropsVacuousSelection) {
  const PlanPtr plan = PlanNode::Select(
      Comparison{Expr::IntLiteral(1), CompareOp::kEq, Expr::IntLiteral(1)},
      PlanNode::Scan("a", "a"));
  EXPECT_EQ(Canonicalize(plan)->kind(), OpKind::kScan);
}

TEST(CanonicalizeTest, KeepsFalseSelection) {
  const PlanPtr plan = PlanNode::Select(
      Comparison{Expr::IntLiteral(1), CompareOp::kEq, Expr::IntLiteral(2)},
      PlanNode::Scan("a", "a"));
  EXPECT_EQ(Canonicalize(plan)->kind(), OpKind::kSelect);
}

TEST(CanonicalizeTest, CountPredicates) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse(
      "SELECT a.x FROM a, b WHERE a.joinkey = b.joinkey AND a.val > 3 AND "
      "b.val < 9",
      catalog);
  EXPECT_EQ(CountPredicates(plan), 3u);
}

TEST(TryEvaluateComparisonTest, EvaluatesConstants) {
  EXPECT_EQ(TryEvaluateComparison(Comparison{Expr::IntLiteral(3), CompareOp::kLt,
                                             Expr::IntLiteral(4)}),
            std::optional<bool>(true));
  EXPECT_EQ(TryEvaluateComparison(Comparison{Expr::IntLiteral(3), CompareOp::kEq,
                                             Expr::IntLiteral(4)}),
            std::optional<bool>(false));
  EXPECT_FALSE(TryEvaluateComparison(Comparison{Col("a", "v"), CompareOp::kLt,
                                                Expr::IntLiteral(4)})
                   .has_value());
}

TEST(FlattenSpjTest, CollectsAtomsPredicatesOutputs) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse(
      "SELECT a.x, b.y FROM a, b WHERE a.joinkey = b.joinkey AND a.val > 3",
      catalog);
  const auto flat = FlattenSpj(plan, catalog);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->atoms.size(), 2u);
  EXPECT_EQ(flat->predicates.size(), 2u);
  EXPECT_EQ(flat->outputs.size(), 2u);
  EXPECT_TRUE(flat->has_root_project);
}

TEST(FlattenSpjTest, RejectsOuterJoin) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse(
      "SELECT a.x FROM a LEFT JOIN b ON a.joinkey = b.joinkey", catalog);
  EXPECT_TRUE(FlattenSpj(plan, catalog).status().IsNotSupported());
}

TEST(FlattenSpjTest, NoProjectUsesScanColumns) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse("SELECT * FROM a WHERE a.val > 1", catalog);
  const auto flat = FlattenSpj(plan, catalog);
  ASSERT_TRUE(flat.ok());
  EXPECT_FALSE(flat->has_root_project);
  EXPECT_EQ(flat->outputs.size(), 3u);
}

TEST(SubexprTest, EnumeratesAllSubtrees) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr plan = MustParse(
      "SELECT a.x FROM a, b WHERE a.joinkey = b.joinkey AND a.val > 3",
      catalog);
  // Project -> Select -> Join -> (Scan, Scan): 5 subexpressions.
  EXPECT_EQ(EnumerateSubexpressions(plan).size(), 5u);
}

TEST(SubexprTest, WorkloadEnumerationDeduplicates) {
  const Catalog catalog = MakeFigure1Catalog();
  const PlanPtr q1 = MustParse("SELECT a.x FROM a WHERE a.val > 3", catalog);
  const PlanPtr q2 = MustParse("SELECT a.x FROM a WHERE a.val > 3", catalog);
  const PlanPtr q3 = MustParse("SELECT a.x FROM a WHERE a.val > 4", catalog);
  const auto subexprs = EnumerateWorkloadSubexpressions({q1, q2, q3});
  // q1 == q2 dedupes entirely: their 3 subtrees (project/select/scan) appear
  // once; q3 contributes a distinct project and select but shares the scan.
  EXPECT_EQ(subexprs.size(), 5u);
}

}  // namespace
}  // namespace geqo
