#include "serve/sharded_catalog.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <sys/resource.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/binary_io.h"
#include "common/checksum_io.h"
#include "common/format_magic.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/stage_scope.h"

namespace geqo::serve {

namespace {

constexpr size_t kMaxShards = 4096;
constexpr size_t kMaxVerifierThreads = 256;

double SumStageSeconds(const std::vector<StageReport>& stages) {
  double total = 0.0;
  for (const StageReport& stage : stages) total += stage.seconds;
  return total;
}

/// Background proofs should lose every CPU race against foreground
/// Probe/Add clients, but a worker must NEVER hold a shard lock while in
/// the idle scheduling class — a preempted idle lock-holder starves the
/// probes waiting on that shard (classic priority inversion). So demotion
/// is scoped: ScopedIdleSched wraps only the lock-free CheckEquivalence
/// call, and is enabled only when the thread is guaranteed to be able to
/// switch back (the kernel gates leaving SCHED_IDLE behind CAP_SYS_NICE /
/// RLIMIT_NICE; a thread stuck at idle would reintroduce the inversion).
bool CanUseIdleProofPriority() {
#if defined(__linux__) && defined(SCHED_IDLE)
  if (geteuid() == 0) return true;
  rlimit lim{};
  if (getrlimit(RLIMIT_NICE, &lim) != 0) return false;
  // rlim_cur >= 20 permits re-acquiring nice 0 (SCHED_OTHER's default),
  // which is what leaving SCHED_IDLE requires of an unprivileged thread.
  return lim.rlim_cur >= 20;
#else
  return false;
#endif
}

class ScopedIdleSched {
 public:
  explicit ScopedIdleSched(bool enable) {
#if defined(__linux__) && defined(SCHED_IDLE)
    if (!enable) return;
    if (pthread_getschedparam(pthread_self(), &saved_policy_, &saved_param_) !=
        0) {
      return;
    }
    sched_param idle{};
    demoted_ =
        pthread_setschedparam(pthread_self(), SCHED_IDLE, &idle) == 0;
#else
    (void)enable;
#endif
  }
  ~ScopedIdleSched() {
#if defined(__linux__) && defined(SCHED_IDLE)
    if (demoted_) {
      pthread_setschedparam(pthread_self(), saved_policy_, &saved_param_);
    }
#endif
  }
  ScopedIdleSched(const ScopedIdleSched&) = delete;
  ScopedIdleSched& operator=(const ScopedIdleSched&) = delete;

 private:
#if defined(__linux__) && defined(SCHED_IDLE)
  int saved_policy_ = 0;
  sched_param saved_param_{};
  bool demoted_ = false;
#endif
};

}  // namespace

/// Holds every shard's shared lock, acquired in index order so concurrent
/// exports cannot deadlock (kShard is the one same-rank-nestable rank in
/// the lattice — see analysis/lock_rank.h). The static analysis cannot
/// model a dynamically sized lock set, so acquisition opts out; the
/// runtime rank checker still validates each lock_shared on every run.
class ShardedCatalog::AllShardsReadLock {
 public:
  explicit AllShardsReadLock(const std::vector<std::unique_ptr<Shard>>& shards)
      GEQO_NO_THREAD_SAFETY_ANALYSIS : shards_(shards) {
    for (const auto& shard : shards_) shard->mu.lock_shared();
  }
  ~AllShardsReadLock() GEQO_NO_THREAD_SAFETY_ANALYSIS {
    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
      (*it)->mu.unlock_shared();
    }
  }
  AllShardsReadLock(const AllShardsReadLock&) = delete;
  AllShardsReadLock& operator=(const AllShardsReadLock&) = delete;

 private:
  const std::vector<std::unique_ptr<Shard>>& shards_;
};

Status ShardedCatalogOptions::Validate() const {
  GEQO_RETURN_NOT_OK(catalog.Validate());
  if (num_shards == 0) {
    return Status::InvalidArgument("sharded catalog: num_shards must be >= 1");
  }
  if (num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "sharded catalog: num_shards " + std::to_string(num_shards) +
        " exceeds the sanity bound " + std::to_string(kMaxShards));
  }
  if (verifier_threads > kMaxVerifierThreads) {
    return Status::InvalidArgument(
        "sharded catalog: verifier_threads " +
        std::to_string(verifier_threads) + " exceeds the sanity bound " +
        std::to_string(kMaxVerifierThreads));
  }
  if (verify_queue_capacity != 0 && verifier_threads == 0) {
    return Status::InvalidArgument(
        "sharded catalog: a bounded verify queue requires verifier_threads "
        "> 0 (a full queue with no consumer would block producers forever)");
  }
  return Status::OK();
}

ShardedCatalog::ShardedCatalog(const Catalog* db_catalog, ml::EmfModel* model,
                               const EncodingLayout* instance_layout,
                               const EncodingLayout* agnostic_layout,
                               ValueRange value_range,
                               ShardedCatalogOptions options)
    : db_catalog_(db_catalog),
      model_(model),
      instance_layout_(instance_layout),
      agnostic_layout_(agnostic_layout),
      value_range_(value_range),
      options_(std::move(options)),
      options_status_(options_.Validate()),
      queue_(options_.verify_queue_capacity) {
  if (!options_status_.ok()) return;  // poisoned: every entry point reports it
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    WriterLock lock(shard->mu);  // pre-publication, but keeps TSA unconditional
    shard->catalog = std::make_unique<EquivalenceCatalog>(
        db_catalog_, model_, instance_layout_, agnostic_layout_, value_range_,
        options_.catalog);
    shards_.push_back(std::move(shard));
  }
  prep_ = std::make_unique<EquivalenceCatalog>(
      db_catalog_, model_, instance_layout_, agnostic_layout_, value_range_,
      options_.catalog);
  workers_.reserve(options_.verifier_threads);
  for (size_t i = 0; i < options_.verifier_threads; ++i) {
    workers_.emplace_back(&ShardedCatalog::WorkerLoop, this);
  }
}

ShardedCatalog::~ShardedCatalog() {
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
}

size_t ShardedCatalog::ShardOf(const SfSignature& signature) const {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::string& table : signature.tables) {
    hash = HashCombine(hash, HashString(table));
  }
  hash = HashCombine(hash, signature.num_output_columns);
  return static_cast<size_t>(hash % shards_.size());
}

void ShardedCatalog::UpdateQueueGauge() const {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry::Global()
      .GetGauge("serve.verify_queue_depth")
      .Set(static_cast<double>(queue_.outstanding()));
}

Result<ShardedCatalog::PreparedAdd> ShardedCatalog::PrepareAdd(
    const PlanPtr& plan) const {
  PreparedAdd out;
  GEQO_ASSIGN_OR_RETURN(out.query, prep().PrepareQuery(plan));
  GEQO_ASSIGN_OR_RETURN(out.embedding, prep().EmbedQuery(out.query));
  return out;
}

Result<size_t> ShardedCatalog::CommitAdd(PreparedAdd prepared) {
  const size_t sid = ShardOf(prepared.query.signature);
  const uint64_t canonical_hash = prepared.query.canonical_hash;
  const uint64_t check_hash = prepared.query.check_hash;
  Shard& shard = *shards_[sid];
  WriterLock lock(shard.mu);
  GEQO_ASSIGN_OR_RETURN(
      const size_t local,
      shard.catalog->AddWithEmbedding(std::move(prepared.query),
                                      prepared.embedding));
  size_t gid = 0;
  {
    WriterLock map_lock(map_mu_);
    gid = global_map_.size();
    global_map_.emplace_back(sid, local);
  }
  shard.to_global.push_back(gid);
  // Journal under the shard lock: each shard's log partition is a
  // self-consistent stream (this entry's later verdicts/unions/pendings
  // land behind its add record).
  if (journal_ != nullptr) {
    journal_->OnAdd(sid, gid, canonical_hash, check_hash);
  }
  adds_.fetch_add(1, std::memory_order_relaxed);
  return gid;
}

Result<size_t> ShardedCatalog::Add(const PlanPtr& plan) {
  GEQO_RETURN_NOT_OK(options_status_);
  obs::Span span("serve.ShardedAdd");
  GEQO_ASSIGN_OR_RETURN(PreparedAdd prepared, PrepareAdd(plan));
  return CommitAdd(std::move(prepared));
}

Result<std::vector<size_t>> ShardedCatalog::AddBatch(
    const std::vector<PlanPtr>& plans) {
  GEQO_RETURN_NOT_OK(options_status_);
  obs::Span span("serve.ShardedAddBatch");
  const size_t n = plans.size();
  // Prepare + embed (the expensive part) in parallel on the global pool;
  // commit sequentially in input order so ids are deterministic.
  std::vector<std::optional<PreparedAdd>> items(n);
  std::vector<Status> statuses(n);
  ParallelFor(0, n, [&](size_t i) {
    Result<PreparedAdd> prepared = PrepareAdd(plans[i]);
    if (prepared.ok()) {
      items[i] = std::move(*prepared);
    } else {
      statuses[i] = prepared.status();
    }
  });
  for (const Status& status : statuses) GEQO_RETURN_NOT_OK(status);
  std::vector<size_t> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    GEQO_ASSIGN_OR_RETURN(const size_t gid, CommitAdd(std::move(*items[i])));
    ids.push_back(gid);
  }
  return ids;
}

void ShardedCatalog::TranslateLocked(const Shard& shard, size_t sid,
                                     EquivalenceCatalog::ReadProbeResult& read,
                                     ShardedProbeResult* out) const {
  out->matches.reserve(read.matches.size());
  for (const ProbeMatch& match : read.matches) {
    out->matches.push_back(
        ProbeMatch{shard.to_global[match.id], match.verdict, match.score});
  }
  // to_global is strictly increasing in the local id, so sorted local lists
  // translate to sorted global lists.
  out->proven_ids.reserve(read.proven_ids.size());
  for (const size_t id : read.proven_ids) {
    out->proven_ids.push_back(shard.to_global[id]);
  }
  if (read.representative) {
    out->representative = shard.to_global[*read.representative];
  }
  out->memo_hits = read.memo_hits;
  out->class_shortcuts = read.class_shortcuts;
  for (StageReport& stage : read.stages) {
    stage.shard = static_cast<int>(sid);
    out->stages.push_back(std::move(stage));
  }
}

std::vector<ShardedCatalog::VerifyTask> ShardedCatalog::BuildPendingTasksLocked(
    const Shard& shard, size_t sid, const PlanPtr& query_plan,
    uint64_t query_hash, uint64_t query_check, size_t query_local,
    std::vector<EquivalenceCatalog::ClassDecision> pending) const {
  std::vector<VerifyTask> tasks;
  tasks.reserve(pending.size());
  for (EquivalenceCatalog::ClassDecision& decision : pending) {
    VerifyTask task;
    task.shard = sid;
    task.query_plan = query_plan;
    task.query_hash = query_hash;
    task.query_check = query_check;
    task.query_local = query_local;
    task.agenda = std::move(decision.agenda);
    if (query_local != kNoEntry && journal_ != nullptr) {
      const uint64_t query_gid = shard.to_global[query_local];
      task.logged_pairs.reserve(task.agenda.size());
      for (const size_t member : task.agenda) {
        task.logged_pairs.emplace_back(query_gid, shard.to_global[member]);
      }
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

void ShardedCatalog::EnqueueTasks(std::vector<VerifyTask> tasks) {
  if (tasks.empty()) return;
  for (VerifyTask& task : tasks) {
    // Pending records go to the journal before the push: once a worker can
    // see the task, its resolution must never outrun the pending record.
    if (journal_ != nullptr) {
      for (const auto& [query_gid, member_gid] : task.logged_pairs) {
        journal_->OnPending(task.shard, query_gid, member_gid);
      }
    }
    if (queue_.Push(std::move(task))) {
      verify_tasks_enqueued_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  UpdateQueueGauge();
}

Result<ShardedProbeResult> ShardedCatalog::Probe(const PlanPtr& plan) {
  GEQO_RETURN_NOT_OK(options_status_);
  // Span + stage clock at entry: PrepareQuery's canonicalize/encode cost is
  // part of the reported probe latency (see ProbeResult::seconds).
  obs::Span span("serve.ShardedProbe");
  StageReport prepare = MakeStage("prepare", true);
  StageScope prepare_scope("serve.prepare");
  Result<EquivalenceCatalog::QueryContext> prepared = prep().PrepareQuery(plan);
  GEQO_RETURN_NOT_OK(prepared.status());
  prepare.pairs_in = 1;
  prepare.pairs_out = 1;
  prepare_scope.Finish(&prepare);

  const size_t sid = ShardOf(prepared->signature);
  Shard& shard = *shards_[sid];
  ShardedProbeResult result;
  result.shard = sid;
  result.stages.push_back(std::move(prepare));
  EquivalenceCatalog::ReadProbeResult read;
  std::vector<VerifyTask> tasks;
  {
    ReaderLock lock(shard.mu);
    GEQO_ASSIGN_OR_RETURN(read, shard.catalog->ProbeReadOnly(*prepared));
    TranslateLocked(shard, sid, read, &result);
    result.pending_classes = read.pending.size();
    tasks = BuildPendingTasksLocked(shard, sid, prepared->plan,
                                    prepared->canonical_hash,
                                    prepared->check_hash, kNoEntry,
                                    std::move(read.pending));
  }
  probes_.fetch_add(1, std::memory_order_relaxed);
  memo_collisions_.fetch_add(read.collisions, std::memory_order_relaxed);
  // A plain probe's tasks are process-local (the query is not an entry, so
  // nothing durable can re-derive them) — surfaced so callers know these
  // classes will not survive an export or a restart.
  result.probe_only_pending = result.pending_classes;
  EnqueueTasks(std::move(tasks));
  result.seconds = SumStageSeconds(result.stages);
  if (obs::MetricsEnabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("serve.probes").Add(1);
    registry.GetCounter("serve.memo_hits").Add(result.memo_hits);
    registry.GetCounter("serve.pending_classes").Add(result.pending_classes);
    registry.GetHistogram("serve.probe_seconds").Observe(result.seconds);
  }
  return result;
}

Result<ShardedProbeAddResult> ShardedCatalog::ProbeAdd(const PlanPtr& plan) {
  GEQO_RETURN_NOT_OK(options_status_);
  obs::Span span("serve.ShardedProbeAdd");
  StageReport prepare = MakeStage("prepare", true);
  StageScope prepare_scope("serve.prepare");
  Result<PreparedAdd> prepared = PrepareAdd(plan);  // embed outside the lock
  GEQO_RETURN_NOT_OK(prepared.status());
  prepare.pairs_in = 1;
  prepare.pairs_out = 1;
  prepare_scope.Finish(&prepare);

  const size_t sid = ShardOf(prepared->query.signature);
  Shard& shard = *shards_[sid];
  ShardedProbeAddResult result;
  result.probe.shard = sid;
  result.probe.stages.push_back(std::move(prepare));
  const PlanPtr query_plan = prepared->query.plan;
  const uint64_t query_hash = prepared->query.canonical_hash;
  const uint64_t query_check = prepared->query.check_hash;
  EquivalenceCatalog::ReadProbeResult read;
  std::vector<VerifyTask> tasks;
  size_t local = 0;
  {
    // Probe + insert + sync unions as one exclusive critical section on the
    // routed shard: the probe's verdicts and the join set stay consistent.
    WriterLock lock(shard.mu);
    GEQO_ASSIGN_OR_RETURN(read, shard.catalog->ProbeReadOnly(prepared->query));
    std::set<size_t> roots;
    for (const size_t id : read.proven_ids) {
      roots.insert(shard.catalog->classes_.Find(id));
    }
    GEQO_ASSIGN_OR_RETURN(
        local, shard.catalog->AddWithEmbedding(std::move(prepared->query),
                                               prepared->embedding));
    {
      WriterLock map_lock(map_mu_);
      result.id = global_map_.size();
      global_map_.emplace_back(sid, local);
    }
    shard.to_global.push_back(result.id);
    if (journal_ != nullptr) {
      journal_->OnAdd(sid, result.id, query_hash, query_check);
    }
    for (const size_t root : roots) {
      if (shard.catalog->classes_.Union(local, root) && journal_ != nullptr) {
        journal_->OnUnion(sid, result.id, shard.to_global[root]);
      }
    }
    TranslateLocked(shard, sid, read, &result.probe);
    result.probe.pending_classes = read.pending.size();
    tasks = BuildPendingTasksLocked(shard, sid, query_plan, query_hash,
                                    query_check, local,
                                    std::move(read.pending));
  }
  adds_.fetch_add(1, std::memory_order_relaxed);
  probes_.fetch_add(1, std::memory_order_relaxed);
  memo_collisions_.fetch_add(read.collisions, std::memory_order_relaxed);
  EnqueueTasks(std::move(tasks));
  result.probe.seconds = SumStageSeconds(result.probe.stages);
  if (obs::MetricsEnabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("serve.probes").Add(1);
    registry.GetCounter("serve.memo_hits").Add(result.probe.memo_hits);
    registry.GetCounter("serve.pending_classes")
        .Add(result.probe.pending_classes);
    registry.GetHistogram("serve.probe_seconds").Observe(result.probe.seconds);
  }
  return result;
}

void ShardedCatalog::WorkerLoop() {
  const bool idle_proofs =
      options_.low_priority_verifiers && CanUseIdleProofPriority();
  // Each worker owns its verifier: CheckEquivalence mutates per-instance
  // stats, so instances are thread-confined (same rule as the pipeline's
  // per-thread verifiers).
  SpesVerifier verifier(db_catalog_, options_.catalog.pipeline.verifier);
  while (std::optional<VerifyTask> task = queue_.Pop()) {
    ProcessTask(*task, verifier, idle_proofs);
    queue_.TaskDone();
    UpdateQueueGauge();
  }
}

void ShardedCatalog::ProcessTask(const VerifyTask& task,
                                 SpesVerifier& verifier, bool idle_proofs) {
  Shard& shard = *shards_[task.shard];
  const VerifierStats before = verifier.stats();
  // Replay the sync path's class-at-a-time cascade: root first, advance
  // past kUnknown, stop at the first decisive verdict. Memo lookups happen
  // under the shard's shared lock; actual proofs run with no lock held and
  // fold back in under a brief unique lock.
  std::optional<EquivalenceVerdict> decision;
  size_t decided_member = kNoEntry;
  for (const size_t id : task.agenda) {
    CheckedPair memo_key;
    PlanPtr entry_plan;
    std::optional<EquivalenceVerdict> verdict;
    {
      ReaderLock lock(shard.mu);
      const auto& entry = shard.catalog->entries_[id];
      memo_key = MakeCheckedPair(task.query_hash, task.query_check,
                                 entry.canonical_hash, entry.check_hash);
      const VerifierMemo::LookupOutcome memoized =
          shard.catalog->memo_.Lookup(memo_key.key, memo_key.check);
      if (memoized.collision) {
        memo_collisions_.fetch_add(1, std::memory_order_relaxed);
      }
      if (memoized.verdict) {
        verdict = memoized.verdict;
        async_memo_hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        entry_plan = entry.plan;
      }
    }
    if (!verdict) {
      async_verifier_calls_.fetch_add(1, std::memory_order_relaxed);
      const EquivalenceVerdict proved = [&] {
        // Idle priority for the proof only — never across a lock.
        ScopedIdleSched idle(idle_proofs);
        return verifier.CheckEquivalence(task.query_plan, entry_plan);
      }();
      WriterLock lock(shard.mu);
      shard.catalog->memo_.Insert(memo_key.key, memo_key.check, proved);
      if (journal_ != nullptr) {
        journal_->OnVerdict(task.shard, memo_key.key.lo, memo_key.key.hi,
                            memo_key.check.lo, memo_key.check.hi,
                            static_cast<uint8_t>(proved));
      }
      verdict = proved;
    }
    if (*verdict != EquivalenceVerdict::kUnknown) {
      decision = verdict;
      decided_member = id;
      break;
    }
  }
  if (decision == EquivalenceVerdict::kEquivalent &&
      task.query_local != kNoEntry) {
    // The query is itself an entry (ProbeAdd): fold the proof into the
    // shard's class forest, upgrading what later probes see.
    WriterLock lock(shard.mu);
    if (shard.catalog->classes_.Union(task.query_local, decided_member)) {
      async_unions_.fetch_add(1, std::memory_order_relaxed);
      if (journal_ != nullptr) {
        journal_->OnUnion(task.shard, shard.to_global[task.query_local],
                          shard.to_global[decided_member]);
      }
    }
  }
  // The task is fully applied: its journaled pending pairs are no longer
  // outstanding (the store stops re-logging them at the next rotation).
  if (journal_ != nullptr) {
    for (const auto& [query_gid, member_gid] : task.logged_pairs) {
      journal_->OnPendingResolved(task.shard, query_gid, member_gid);
    }
  }
  verify_tasks_completed_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("serve.verify_tasks").Add(1);
    registry.GetHistogram("serve.verify_lag_seconds")
        .Observe(task.enqueued.ElapsedSeconds());
    FoldVerifierStatsToMetrics(verifier.stats().DeltaSince(before));
  }
}

void ShardedCatalog::DrainPendingVerifications() {
  if (!workers_.empty()) {
    queue_.WaitIdle();
    UpdateQueueGauge();
    return;
  }
  // Deferred mode: process the backlog inline. drain_mu_ makes this the
  // queue's only consumer, so size() > 0 guarantees Pop() will not block.
  MutexLock drain_lock(drain_mu_);
  if (!drain_verifier_) {
    drain_verifier_ = std::make_unique<SpesVerifier>(
        db_catalog_, options_.catalog.pipeline.verifier);
  }
  while (queue_.size() > 0) {
    std::optional<VerifyTask> task = queue_.Pop();
    if (!task) break;
    ProcessTask(*task, *drain_verifier_);
    queue_.TaskDone();
  }
  UpdateQueueGauge();
}

size_t ShardedCatalog::size() const {
  ReaderLock lock(map_mu_);
  return global_map_.size();
}

size_t ShardedCatalog::NumClasses() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    total += shard->catalog->NumClasses();
  }
  return total;
}

size_t ShardedCatalog::memo_size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    ReaderLock lock(shard->mu);
    total += shard->catalog->memo_size();
  }
  return total;
}

std::vector<size_t> ShardedCatalog::ClassMembers(size_t gid) const {
  std::pair<size_t, size_t> slot;
  {
    ReaderLock lock(map_mu_);
    GEQO_CHECK(gid < global_map_.size());
    slot = global_map_[gid];
  }
  const Shard& shard = *shards_[slot.first];
  ReaderLock lock(shard.mu);
  std::vector<size_t> members;
  for (const size_t local : shard.catalog->ClassMembers(slot.second)) {
    members.push_back(shard.to_global[local]);
  }
  return members;
}

size_t ShardedCatalog::ClassOf(size_t gid) const {
  std::pair<size_t, size_t> slot;
  {
    ReaderLock lock(map_mu_);
    GEQO_CHECK(gid < global_map_.size());
    slot = global_map_[gid];
  }
  const Shard& shard = *shards_[slot.first];
  ReaderLock lock(shard.mu);
  return shard.to_global[shard.catalog->ClassOf(slot.second)];
}

PlanPtr ShardedCatalog::plan(size_t gid) const {
  std::pair<size_t, size_t> slot;
  {
    ReaderLock lock(map_mu_);
    GEQO_CHECK(gid < global_map_.size());
    slot = global_map_[gid];
  }
  const Shard& shard = *shards_[slot.first];
  ReaderLock lock(shard.mu);
  return shard.catalog->plan(slot.second);
}

ShardedCatalogStats ShardedCatalog::stats() const {
  ShardedCatalogStats out;
  out.adds = adds_.load(std::memory_order_relaxed);
  out.probes = probes_.load(std::memory_order_relaxed);
  out.verify_tasks_enqueued =
      verify_tasks_enqueued_.load(std::memory_order_relaxed);
  out.verify_tasks_completed =
      verify_tasks_completed_.load(std::memory_order_relaxed);
  out.async_verifier_calls =
      async_verifier_calls_.load(std::memory_order_relaxed);
  out.async_memo_hits = async_memo_hits_.load(std::memory_order_relaxed);
  out.async_unions = async_unions_.load(std::memory_order_relaxed);
  out.memo_collisions = memo_collisions_.load(std::memory_order_relaxed);
  out.dropped_probe_tasks =
      dropped_probe_tasks_.load(std::memory_order_relaxed);
  return out;
}

Status ShardedCatalog::WriteSnapshotLocked(
    std::ostream& os, const std::vector<VerifyTask>* pending) const {
  std::ostringstream payload;
  io::BinaryWriter writer(payload, "sharded catalog snapshot");
  writer.U64(io::kShardedCatalogMagic);
  writer.U64(io::kShardedCatalogVersion);
  writer.U64(shards_.size());
  writer.U64(global_map_.size());
  for (const auto& [sid, local] : global_map_) writer.U64(sid);
  GEQO_RETURN_NOT_OK(writer.status());
  for (const auto& shard : shards_) {
    std::ostringstream segment;
    GEQO_RETURN_NOT_OK(shard->catalog->ExportSnapshot(segment));
    const std::string bytes = segment.str();
    writer.U64(bytes.size());
    writer.Bytes(bytes.data(), bytes.size());
  }
  // The pending tail: (query gid, member gid) pairs for tasks whose query
  // is a catalog entry. Probe-only tasks have no entry to name across a
  // restart — they are dropped loudly, and the client just re-probes. A
  // base export (null \p pending) writes an empty tail: a store's backlog
  // travels in the delta log, never the base segment.
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  size_t dropped = 0;
  if (pending != nullptr) {
    for (const VerifyTask& task : *pending) {
      if (task.query_local == kNoEntry) {
        ++dropped;
        continue;
      }
      const std::vector<size_t>& to_global = shards_[task.shard]->to_global;
      for (const size_t member : task.agenda) {
        pairs.emplace_back(to_global[task.query_local], to_global[member]);
      }
    }
  }
  if (dropped > 0) {
    dropped_probe_tasks_.fetch_add(dropped, std::memory_order_relaxed);
    GEQO_LOG(kWarning)
        << "sharded catalog export: dropping " << dropped
        << " probe-only pending verification task(s) — their queries are "
           "not catalog entries and cannot be re-derived after a restart; "
           "affected clients must re-probe (see "
           "ShardedProbeResult::probe_only_pending and "
           "stats().dropped_probe_tasks)";
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("serve.dropped_probe_tasks")
          .Add(dropped);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  writer.U64(pairs.size());
  for (const auto& [query_gid, member_gid] : pairs) {
    writer.U64(query_gid);
    writer.U64(member_gid);
  }
  writer.U64(io::kShardedCatalogEndMagic);
  GEQO_RETURN_NOT_OK(writer.status());
  return io::WriteChecksummed(os, payload.str(), "sharded catalog snapshot");
}

Status ShardedCatalog::ExportSnapshot(std::ostream& os) const {
  GEQO_RETURN_NOT_OK(options_status_);
  // Freeze the async plane: Pause waits for in-flight tasks to apply their
  // side effects, after which the backlog is exactly SnapshotPending().
  // Pauses nest, so with overlapping exports the queue stays frozen until
  // the last one Resumes — no export can observe workers retiring tasks
  // mid-shot.
  queue_.Pause();
  Status status = [&]() -> Status {
    const std::vector<VerifyTask> pending = queue_.SnapshotPending();
    // Lock every shard (index order, so concurrent exports cannot deadlock)
    // plus the global map for one consistent cross-shard view.
    AllShardsReadLock shard_locks(shards_);
    ReaderLock map_lock(map_mu_);
    return WriteSnapshotLocked(os, &pending);
  }();
  queue_.Resume();
  return status;
}

Status ShardedCatalog::ExportBase(std::ostream& os,
                                  uint64_t* entry_count) const {
  GEQO_RETURN_NOT_OK(options_status_);
  // No queue pause: the backlog is not captured (the store's delta log
  // carries it), so probes and the verifier plane keep running while the
  // base serializes under shared locks; only adds briefly block.
  AllShardsReadLock shard_locks(shards_);
  ReaderLock map_lock(map_mu_);
  if (entry_count != nullptr) *entry_count = global_map_.size();
  return WriteSnapshotLocked(os, nullptr);
}

Result<std::unique_ptr<ShardedCatalog>> ShardedCatalog::ImportSnapshot(
    std::istream& is, const Catalog* db_catalog, ml::EmfModel* model,
    const EncodingLayout* instance_layout,
    const EncodingLayout* agnostic_layout, ValueRange value_range,
    const std::vector<PlanPtr>& plans, ShardedCatalogOptions options) {
  GEQO_ASSIGN_OR_RETURN(const std::string payload,
                        io::ReadChecksummed(is, "sharded catalog snapshot"));
  std::istringstream stream(payload);
  io::BinaryReader reader(stream, "sharded catalog snapshot");
  const uint64_t magic = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (magic != io::kShardedCatalogMagic) {
    return Status::InvalidArgument(
        "sharded catalog snapshot: bad magic (not a sharded catalog "
        "snapshot)");
  }
  const uint64_t version = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (version != io::kShardedCatalogVersion) {
    return Status::InvalidArgument(
        "sharded catalog snapshot: unsupported version " +
        std::to_string(version) + " (expected " +
        std::to_string(io::kShardedCatalogVersion) + ")");
  }
  const uint64_t num_shards = reader.U64();
  const uint64_t count = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (num_shards == 0 || num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "sharded catalog snapshot: implausible shard count " +
        std::to_string(num_shards) + " (corrupt snapshot)");
  }
  if (count != plans.size()) {
    return Status::InvalidArgument(
        "sharded catalog snapshot: entry count mismatch (snapshot " +
        std::to_string(count) + ", caller supplied " +
        std::to_string(plans.size()) + " plans)");
  }
  std::vector<size_t> shard_of(count);
  for (auto& sid : shard_of) {
    sid = reader.U64();
    if (reader.ok() && sid >= num_shards) {
      reader.Fail("entry routed to shard " + std::to_string(sid) +
                  " of " + std::to_string(num_shards));
    }
  }
  GEQO_RETURN_NOT_OK(reader.status());

  // Routing must stay consistent with the ids already assigned, so the
  // shard count is adopted from the snapshot regardless of the option.
  options.num_shards = num_shards;
  auto catalog = std::make_unique<ShardedCatalog>(
      db_catalog, model, instance_layout, agnostic_layout, value_range,
      options);
  GEQO_RETURN_NOT_OK(catalog->options_status_);

  // Split the global plan list into per-shard lists (local order == global
  // order restricted to the shard) and rebuild both id maps. Everything is
  // staged in locals and installed under the proper locks only once the
  // whole snapshot has validated — no guarded member is ever written (or
  // read, for the pending tail below) without its lock.
  std::vector<std::vector<PlanPtr>> shard_plans(num_shards);
  std::vector<std::pair<size_t, size_t>> gmap;
  std::vector<std::vector<size_t>> to_global(num_shards);
  gmap.reserve(count);
  for (size_t gid = 0; gid < count; ++gid) {
    const size_t sid = shard_of[gid];
    gmap.emplace_back(sid, shard_plans[sid].size());
    to_global[sid].push_back(gid);
    shard_plans[sid].push_back(plans[gid]);
  }
  std::vector<std::unique_ptr<EquivalenceCatalog>> shard_catalogs(num_shards);
  for (size_t sid = 0; sid < num_shards; ++sid) {
    const uint64_t segment_size = reader.U64();
    GEQO_RETURN_NOT_OK(reader.status());
    if (segment_size > payload.size()) {
      return Status::InvalidArgument(
          "sharded catalog snapshot: shard " + std::to_string(sid) +
          " segment length exceeds the payload (corrupt snapshot)");
    }
    std::string segment(segment_size, '\0');
    reader.Bytes(segment.data(), segment.size());
    GEQO_RETURN_NOT_OK(reader.status());
    std::istringstream segment_stream(segment);
    Result<std::unique_ptr<EquivalenceCatalog>> loaded =
        EquivalenceCatalog::ImportSnapshot(
            segment_stream, db_catalog, model, instance_layout,
            agnostic_layout, value_range, shard_plans[sid], options.catalog);
    if (!loaded.ok()) {
      return Status(loaded.status().code(), "sharded catalog snapshot: shard " +
                                                std::to_string(sid) + ": " +
                                                loaded.status().message());
    }
    shard_catalogs[sid] = std::move(*loaded);
  }
  const uint64_t num_pending = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (num_pending > payload.size()) {
    return Status::InvalidArgument(
        "sharded catalog snapshot: implausible pending-tail count (corrupt "
        "snapshot)");
  }
  std::vector<VerifyTask> pending;
  pending.reserve(num_pending);
  for (uint64_t i = 0; i < num_pending; ++i) {
    const uint64_t query_gid = reader.U64();
    const uint64_t member_gid = reader.U64();
    GEQO_RETURN_NOT_OK(reader.status());
    if (query_gid >= count || member_gid >= count) {
      return Status::InvalidArgument(
          "sharded catalog snapshot: pending pair references entry beyond "
          "the catalog (corrupt snapshot)");
    }
    if (shard_of[query_gid] != shard_of[member_gid]) {
      return Status::InvalidArgument(
          "sharded catalog snapshot: pending pair spans shards — classes "
          "never do (corrupt snapshot)");
    }
    const size_t sid = shard_of[query_gid];
    const size_t query_local = gmap[query_gid].second;
    const auto& entry = shard_catalogs[sid]->entries_[query_local];
    VerifyTask task;
    task.shard = sid;
    task.query_plan = entry.plan;
    task.query_hash = entry.canonical_hash;
    task.query_check = entry.check_hash;
    task.query_local = query_local;
    task.agenda = {gmap[member_gid].second};
    pending.push_back(std::move(task));
  }
  if (reader.U64() != io::kShardedCatalogEndMagic) {
    reader.Fail("missing end marker");
  }
  GEQO_RETURN_NOT_OK(reader.status());
  if (!reader.AtEof()) {
    return Status::InvalidArgument(
        "sharded catalog snapshot: trailing bytes after end marker (corrupt "
        "snapshot)");
  }
  // Install the staged state. The worker pool is already running but can
  // see nothing until the backlog below is pushed; the locks keep the
  // guarded-by contract unconditional (shard before map, ranks ascending).
  for (size_t sid = 0; sid < num_shards; ++sid) {
    Shard& shard = *catalog->shards_[sid];
    WriterLock lock(shard.mu);
    shard.catalog = std::move(shard_catalogs[sid]);
    shard.to_global = std::move(to_global[sid]);
  }
  {
    WriterLock map_lock(catalog->map_mu_);
    catalog->global_map_ = std::move(gmap);
  }
  // Re-arm the verification backlog only once the whole snapshot has
  // validated (the worker pool may start consuming immediately).
  for (VerifyTask& task : pending) {
    if (catalog->queue_.Push(std::move(task))) {
      catalog->verify_tasks_enqueued_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  catalog->UpdateQueueGauge();
  return catalog;
}

Result<size_t> ShardedCatalog::ReplayAdd(const PlanPtr& plan,
                                         uint64_t canonical_hash,
                                         uint64_t check_hash) {
  GEQO_RETURN_NOT_OK(options_status_);
  GEQO_ASSIGN_OR_RETURN(PreparedAdd prepared, PrepareAdd(plan));
  if (prepared.query.canonical_hash != canonical_hash ||
      prepared.query.check_hash != check_hash) {
    return Status::InvalidArgument(
        "catalog store replay: plan does not match the logged add record "
        "(canonical hash " + std::to_string(prepared.query.canonical_hash) +
        ", log expects " + std::to_string(canonical_hash) +
        ") — plans must be passed in Add order");
  }
  return CommitAdd(std::move(prepared));
}

Status ShardedCatalog::ReplayVerdict(size_t shard, const CheckedPair& pair,
                                     EquivalenceVerdict verdict) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument(
        "catalog store replay: verdict record names shard " +
        std::to_string(shard) + " of " + std::to_string(shards_.size()) +
        " (corrupt log)");
  }
  Shard& s = *shards_[shard];
  WriterLock lock(s.mu);
  s.catalog->memo_.Insert(pair.key, pair.check, verdict);
  return Status::OK();
}

Status ShardedCatalog::ReplayUnion(uint64_t a_gid, uint64_t b_gid) {
  std::pair<size_t, size_t> a_slot;
  std::pair<size_t, size_t> b_slot;
  {
    ReaderLock lock(map_mu_);
    if (a_gid >= global_map_.size() || b_gid >= global_map_.size()) {
      return Status::InvalidArgument(
          "catalog store replay: union record references entry beyond the "
          "catalog (corrupt log)");
    }
    a_slot = global_map_[a_gid];
    b_slot = global_map_[b_gid];
  }
  if (a_slot.first != b_slot.first) {
    return Status::InvalidArgument(
        "catalog store replay: union record spans shards — classes never do "
        "(corrupt log)");
  }
  Shard& shard = *shards_[a_slot.first];
  WriterLock lock(shard.mu);
  shard.catalog->classes_.Union(a_slot.second, b_slot.second);
  return Status::OK();
}

Result<std::vector<ShardedCatalog::VerifyTask>>
ShardedCatalog::BuildRecoveredTasks(
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs,
    std::vector<std::pair<uint64_t, uint64_t>>* kept) {
  GEQO_RETURN_NOT_OK(options_status_);
  kept->clear();
  std::map<uint64_t, std::vector<uint64_t>> by_query;
  for (const auto& [query_gid, member_gid] : pairs) {
    by_query[query_gid].push_back(member_gid);
  }
  std::vector<VerifyTask> tasks;
  const size_t total = size();
  for (auto& [query_gid, members] : by_query) {
    if (query_gid >= total) {
      return Status::InvalidArgument(
          "catalog store replay: pending pair references entry " +
          std::to_string(query_gid) + " beyond the catalog (corrupt log)");
    }
    std::pair<size_t, size_t> query_slot;
    {
      ReaderLock map_lock(map_mu_);
      query_slot = global_map_[query_gid];
    }
    const size_t sid = query_slot.first;
    const size_t query_local = query_slot.second;
    Shard& shard = *shards_[sid];
    // Unique lock: a memoized kEquivalent applies its union right here.
    WriterLock lock(shard.mu);
    // Regroup the members by their *current* class root — unions that
    // landed after the pending records may have merged classes since.
    std::map<size_t, std::vector<size_t>> by_root;
    std::set<size_t> seen;
    for (const uint64_t member_gid : members) {
      if (member_gid >= total) {
        return Status::InvalidArgument(
            "catalog store replay: pending pair references entry " +
            std::to_string(member_gid) + " beyond the catalog (corrupt log)");
      }
      std::pair<size_t, size_t> member_slot;
      {
        // Nested under the shard lock: kShard < kCatalogMap, ascending.
        ReaderLock map_lock(map_mu_);
        member_slot = global_map_[member_gid];
      }
      if (member_slot.first != sid) {
        return Status::InvalidArgument(
            "catalog store replay: pending pair spans shards — classes "
            "never do (corrupt log)");
      }
      if (!seen.insert(member_slot.second).second) continue;
      by_root[shard.catalog->classes_.Find(member_slot.second)].push_back(
          member_slot.second);
    }
    const auto& query_entry = shard.catalog->entries_[query_local];
    for (auto& [root, locals] : by_root) {
      // Rebuild the sync path's agenda: current root first, then the
      // members ascending; walk it memo-first exactly like ProbeReadOnly.
      std::sort(locals.begin(), locals.end());
      std::vector<size_t> agenda;
      agenda.push_back(root);
      for (const size_t member : locals) {
        if (member != root) agenda.push_back(member);
      }
      std::optional<EquivalenceVerdict> decision;
      size_t decided_member = kNoEntry;
      bool needs_verify = false;
      for (const size_t id : agenda) {
        const auto& entry = shard.catalog->entries_[id];
        const CheckedPair memo_key =
            MakeCheckedPair(query_entry.canonical_hash,
                            query_entry.check_hash, entry.canonical_hash,
                            entry.check_hash);
        const VerifierMemo::LookupOutcome memoized =
            shard.catalog->memo_.Lookup(memo_key.key, memo_key.check);
        if (!memoized.verdict) {
          needs_verify = true;
          break;
        }
        if (*memoized.verdict != EquivalenceVerdict::kUnknown) {
          decision = *memoized.verdict;
          decided_member = id;
          break;
        }
      }
      if (needs_verify) {
        VerifyTask task;
        task.shard = sid;
        task.query_plan = query_entry.plan;
        task.query_hash = query_entry.canonical_hash;
        task.query_check = query_entry.check_hash;
        task.query_local = query_local;
        task.agenda = std::move(agenda);
        task.logged_pairs.reserve(task.agenda.size());
        for (const size_t member : task.agenda) {
          task.logged_pairs.emplace_back(query_gid, shard.to_global[member]);
          kept->push_back(task.logged_pairs.back());
        }
        tasks.push_back(std::move(task));
      } else if (decision == EquivalenceVerdict::kEquivalent) {
        // The log holds the decisive verdict but the crash landed before
        // the union record: fold the proof in now — exactly what
        // ProcessTask would have done on its first memo hit.
        shard.catalog->classes_.Union(query_local, decided_member);
      }
      // kNotEquivalent / all-kUnknown: the class is settled; drop.
    }
  }
  return tasks;
}

void ShardedCatalog::EnqueueRecoveredTasks(std::vector<VerifyTask> tasks) {
  // No journaling: the surviving pairs' pending records already live in the
  // replayed log generations (and the store re-logs them at compaction).
  for (VerifyTask& task : tasks) {
    if (queue_.Push(std::move(task))) {
      verify_tasks_enqueued_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  UpdateQueueGauge();
}

}  // namespace geqo::serve
