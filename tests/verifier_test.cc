#include <gtest/gtest.h>

#include "test_util.h"
#include "verify/verifier.h"

namespace geqo {
namespace {

using testing::MakeFigure1Catalog;
using testing::MustParse;

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() : catalog_(MakeFigure1Catalog()), verifier_(&catalog_) {}

  EquivalenceVerdict Check(std::string_view sql_a, std::string_view sql_b) {
    return verifier_.CheckEquivalence(MustParse(sql_a, catalog_),
                                      MustParse(sql_b, catalog_));
  }

  Catalog catalog_;
  SpesVerifier verifier_;
};

TEST_F(VerifierTest, IdenticalQueriesAreEquivalent) {
  EXPECT_EQ(Check("SELECT a.x FROM a WHERE a.val > 3",
                  "SELECT a.x FROM a WHERE a.val > 3"),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(VerifierTest, DifferentConstantsAreNot) {
  EXPECT_EQ(Check("SELECT a.x FROM a WHERE a.val > 3",
                  "SELECT a.x FROM a WHERE a.val > 4"),
            EquivalenceVerdict::kNotEquivalent);
}

TEST_F(VerifierTest, OperandSwapIsEquivalent) {
  EXPECT_EQ(Check("SELECT a.x FROM a WHERE a.val > 3",
                  "SELECT a.x FROM a WHERE 3 < a.val"),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(VerifierTest, ConstantShiftingIsEquivalent) {
  EXPECT_EQ(Check("SELECT a.x FROM a WHERE a.val + 10 > 30",
                  "SELECT a.x FROM a WHERE a.val > 20"),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(VerifierTest, PredicateOrderIrrelevant) {
  EXPECT_EQ(Check("SELECT a.x FROM a WHERE a.val > 3 AND a.joinkey < 7",
                  "SELECT a.x FROM a WHERE a.joinkey < 7 AND a.val > 3"),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(VerifierTest, RedundantImpliedPredicateIsEquivalent) {
  // a.val > 5 implies a.val > 3; the weaker conjunct is redundant.
  EXPECT_EQ(Check("SELECT a.x FROM a WHERE a.val > 5",
                  "SELECT a.x FROM a WHERE a.val > 5 AND a.val > 3"),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(VerifierTest, StrictVsNonStrictDiffers) {
  EXPECT_EQ(Check("SELECT a.x FROM a WHERE a.val > 3",
                  "SELECT a.x FROM a WHERE a.val >= 3"),
            EquivalenceVerdict::kNotEquivalent);
}

TEST_F(VerifierTest, JoinCommutativityIsEquivalent) {
  EXPECT_EQ(Check("SELECT a.x, b.y FROM a, b WHERE a.joinkey = b.joinkey",
                  "SELECT a.x, b.y FROM b, a WHERE b.joinkey = a.joinkey"),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(VerifierTest, Figure1PairIsEquivalent) {
  // The paper's running example: syntactically dissimilar, semantically
  // equal (A.val > 20 is implied by the other two conjuncts).
  EXPECT_EQ(
      Check("SELECT a.x, b.y FROM a, b WHERE a.joinkey = b.joinkey AND "
            "a.val > b.val + 10 AND b.val > 10",
            "SELECT a.x, b.y FROM b, a WHERE b.joinkey = a.joinkey AND "
            "b.val + 10 < a.val AND b.val + 10 > 20 AND a.val > 20"),
      EquivalenceVerdict::kEquivalent);
}

TEST_F(VerifierTest, Figure1WeakenedVariantIsNot) {
  // Replacing b.val > 10 with b.val > 5 changes the semantics.
  EXPECT_EQ(
      Check("SELECT a.x, b.y FROM a, b WHERE a.joinkey = b.joinkey AND "
            "a.val > b.val + 10 AND b.val > 5",
            "SELECT a.x, b.y FROM b, a WHERE b.joinkey = a.joinkey AND "
            "b.val + 10 < a.val AND b.val + 10 > 20 AND a.val > 20"),
      EquivalenceVerdict::kNotEquivalent);
}

TEST_F(VerifierTest, DifferentProjectionOrderIsNot) {
  EXPECT_EQ(Check("SELECT a.x, b.y FROM a, b WHERE a.joinkey = b.joinkey",
                  "SELECT b.y, a.x FROM a, b WHERE a.joinkey = b.joinkey"),
            EquivalenceVerdict::kNotEquivalent);
}

TEST_F(VerifierTest, DifferentTablesAreNot) {
  EXPECT_EQ(Check("SELECT a.val FROM a", "SELECT b.val FROM b"),
            EquivalenceVerdict::kNotEquivalent);
}

TEST_F(VerifierTest, DifferentArityIsNot) {
  EXPECT_EQ(Check("SELECT a.x FROM a", "SELECT a.x, a.val FROM a"),
            EquivalenceVerdict::kNotEquivalent);
}

TEST_F(VerifierTest, OutputEqualityThroughJoinPredicate) {
  // a.joinkey = b.joinkey forces the two projections to coincide.
  EXPECT_EQ(Check("SELECT a.joinkey FROM a, b WHERE a.joinkey = b.joinkey",
                  "SELECT b.joinkey FROM a, b WHERE a.joinkey = b.joinkey"),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(VerifierTest, BothInfeasibleAreEquivalent) {
  EXPECT_EQ(Check("SELECT a.x FROM a WHERE a.val > 5 AND a.val < 3",
                  "SELECT a.x FROM a WHERE a.val > 9 AND a.val < 9"),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(VerifierTest, InfeasibleVsFeasibleAreNot) {
  EXPECT_EQ(Check("SELECT a.x FROM a WHERE a.val > 5 AND a.val < 3",
                  "SELECT a.x FROM a WHERE a.val > 5"),
            EquivalenceVerdict::kNotEquivalent);
}

TEST_F(VerifierTest, SelfJoinAliasPermutation) {
  EXPECT_EQ(Check("SELECT t1.x FROM a t1, a t2 WHERE t1.joinkey = t2.joinkey "
                  "AND t1.val > 3",
                  "SELECT t2.x FROM a t1, a t2 WHERE t2.joinkey = t1.joinkey "
                  "AND t2.val > 3"),
            EquivalenceVerdict::kEquivalent);
}

TEST_F(VerifierTest, SelfJoinAsymmetricPredicatesAreNot) {
  EXPECT_EQ(Check("SELECT t1.x FROM a t1, a t2 WHERE t1.joinkey = t2.joinkey "
                  "AND t1.val > 3",
                  "SELECT t1.x FROM a t1, a t2 WHERE t1.joinkey = t2.joinkey "
                  "AND t2.val > 3 AND t1.val < 0"),
            EquivalenceVerdict::kNotEquivalent);
}

TEST_F(VerifierTest, OuterJoinIsUnknownUnlessIdentical) {
  const PlanPtr left_join = MustParse(
      "SELECT a.x FROM a LEFT JOIN b ON a.joinkey = b.joinkey", catalog_);
  const PlanPtr left_join_same = MustParse(
      "SELECT a.x FROM a LEFT JOIN b ON a.joinkey = b.joinkey", catalog_);
  const PlanPtr inner = MustParse(
      "SELECT a.x FROM a JOIN b ON a.joinkey = b.joinkey", catalog_);
  EXPECT_EQ(verifier_.CheckEquivalence(left_join, left_join_same),
            EquivalenceVerdict::kEquivalent);
  EXPECT_EQ(verifier_.CheckEquivalence(left_join, inner),
            EquivalenceVerdict::kUnknown);
}

TEST_F(VerifierTest, NonLinearPredicateIsUnknown) {
  EXPECT_EQ(Check("SELECT a.x FROM a WHERE a.val * 2 > 6",
                  "SELECT a.x FROM a WHERE a.val > 3"),
            EquivalenceVerdict::kUnknown);
}

TEST_F(VerifierTest, StatsTrackWork) {
  verifier_.ResetStats();
  Check("SELECT a.x FROM a WHERE a.val > 3",
        "SELECT a.x FROM a WHERE 3 < a.val");
  EXPECT_EQ(verifier_.stats().pairs_checked, 1u);
  EXPECT_GT(verifier_.stats().solver_calls, 0u);
  EXPECT_GE(verifier_.stats().bijections_tried, 1u);
}

TEST_F(VerifierTest, ContainmentStrongerIsContained) {
  const PlanPtr strong =
      MustParse("SELECT a.x FROM a WHERE a.val > 10", catalog_);
  const PlanPtr weak = MustParse("SELECT a.x FROM a WHERE a.val > 3", catalog_);
  EXPECT_EQ(verifier_.CheckContainment(strong, weak),
            EquivalenceVerdict::kEquivalent);  // strong ⊆ weak
  EXPECT_EQ(verifier_.CheckContainment(weak, strong),
            EquivalenceVerdict::kNotEquivalent);
}

TEST_F(VerifierTest, StringPredicates) {
  Catalog catalog;
  GEQO_CHECK_OK(catalog.AddTable(
      TableDef("t", {ColumnDef{"name", ValueType::kString},
                     ColumnDef{"v", ValueType::kInt}})));
  SpesVerifier verifier(&catalog);
  const auto check = [&](std::string_view sa, std::string_view sb) {
    return verifier.CheckEquivalence(MustParse(sa, catalog),
                                     MustParse(sb, catalog));
  };
  EXPECT_EQ(check("SELECT t.v FROM t WHERE t.name = 'x'",
                  "SELECT t.v FROM t WHERE 'x' = t.name"),
            EquivalenceVerdict::kEquivalent);
  EXPECT_EQ(check("SELECT t.v FROM t WHERE t.name = 'x'",
                  "SELECT t.v FROM t WHERE t.name = 'y'"),
            EquivalenceVerdict::kNotEquivalent);
  // name = 'x' and name = 'y' simultaneously is infeasible.
  EXPECT_EQ(check("SELECT t.v FROM t WHERE t.name = 'x' AND t.name = 'y'",
                  "SELECT t.v FROM t WHERE t.v > 1 AND t.v < 1"),
            EquivalenceVerdict::kEquivalent);
}

}  // namespace
}  // namespace geqo
