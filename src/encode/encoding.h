#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/treeconv.h"
#include "plan/plan.h"
#include "plan/schema.h"
#include "tensor/tensor.h"

/// \file encoding.h
/// Instance-based node-vector encoding of logical plans (§4.1, Figure 3).
///
/// Every plan node becomes a node vector (NV) laid out as
///   [ V_table | V_join | V_select ]
/// with
///   V_table  = onehot(t, T_W)
///   V_join   = onehot(c_l, C_W) (+) onehot(o, O_W) (+) onehot(c_r, C_W)
///              (+) onehot(j, J_W)
///   V_select = onehot(c, C_W) (+) onehot(o, O_W) (+) norm(v) (+) null(v)
/// so |NV| = |T_W| + 3|C_W| + 2|O_W| + |J_W| + 2. Segments that do not apply
/// to a node are zero.

namespace geqo {

/// Number of comparison operators in O_W (=, <>, <, <=, >, >=).
inline constexpr size_t kNumCompareOps = 6;
/// Number of join types in J_W (inner, left outer, right outer).
inline constexpr size_t kNumJoinTypes = 3;
/// Number of aggregate functions (COUNT, SUM, MIN, MAX, AVG) in the group-by
/// extension of the featurization (paper §9.1).
inline constexpr size_t kNumAggregateFns = 5;

/// \brief The featurization layout: which tables and columns occupy which
/// one-hot positions. Tables and columns are sorted alphanumerically so
/// that the fast instance->agnostic converter (§4.2.1) preserves symbol
/// order (see agnostic.h).
class EncodingLayout {
 public:
  /// Builds the layout for a database instance: all catalog tables and all
  /// their columns, in sorted order.
  static EncodingLayout FromCatalog(const Catalog& catalog);

  /// Builds the db-agnostic symbolic layout T'_W = {t1..tn},
  /// C'_W = {t1.c1 .. tn.cm} (§4.2).
  static EncodingLayout Agnostic(size_t max_tables, size_t max_columns_per_table);

  size_t num_tables() const { return tables_.size(); }
  size_t num_columns() const { return columns_.size(); }
  /// Total node-vector width |NV|: the paper's |T|+3|C|+2|O|+|J|+2 (§4.1)
  /// plus the §9.1 extension segments — a group-by multi-hot over C_W, an
  /// aggregate-function one-hot, and an aggregate-argument multi-hot.
  size_t node_vector_size() const {
    return num_tables() + 3 * num_columns() + 2 * kNumCompareOps +
           kNumJoinTypes + 2 + 2 * num_columns() + kNumAggregateFns;
  }

  /// Index of \p table in T_W, or npos.
  size_t TableIndex(std::string_view table) const;
  /// Index of "table.column" in C_W, or npos.
  size_t ColumnIndex(std::string_view table, std::string_view column) const;

  const std::vector<std::string>& tables() const { return tables_; }
  const std::vector<std::string>& columns() const { return columns_; }

  // Segment offsets within a node vector.
  size_t table_offset() const { return 0; }
  size_t join_left_offset() const { return num_tables(); }
  size_t join_op_offset() const { return join_left_offset() + num_columns(); }
  size_t join_right_offset() const { return join_op_offset() + kNumCompareOps; }
  size_t join_type_offset() const { return join_right_offset() + num_columns(); }
  size_t select_col_offset() const { return join_type_offset() + kNumJoinTypes; }
  size_t select_op_offset() const { return select_col_offset() + num_columns(); }
  size_t select_norm_offset() const { return select_op_offset() + kNumCompareOps; }
  size_t select_null_offset() const { return select_norm_offset() + 1; }
  // Group-by / aggregation extension segments (paper §9.1).
  size_t group_by_offset() const { return select_null_offset() + 1; }
  size_t agg_fn_offset() const { return group_by_offset() + num_columns(); }
  size_t agg_col_offset() const { return agg_fn_offset() + kNumAggregateFns; }

  static constexpr size_t npos = static_cast<size_t>(-1);

  /// For agnostic layouts: the (max_tables, max_columns_per_table) bounds.
  size_t max_columns_per_table() const { return max_columns_per_table_; }

 private:
  std::vector<std::string> tables_;   ///< sorted table names (or symbols)
  std::vector<std::string> columns_;  ///< sorted "table.column" strings
  size_t max_columns_per_table_ = 0;  ///< nonzero only for agnostic layouts
};

/// \brief Normalization range for predicate constants: norm(v) maps workload
/// scalars into [0, 1] (§4.1).
struct ValueRange {
  double min = 0.0;
  double max = 1.0;

  float Normalize(double v) const {
    if (max <= min) return 0.5f;
    const double clamped = std::min(std::max(v, min), max);
    return static_cast<float>((clamped - min) / (max - min));
  }
};

/// \brief Scans \p plans for numeric predicate constants and returns their
/// range (used to configure norm(v) for a workload).
ValueRange ComputeValueRange(const std::vector<PlanPtr>& plans);

/// \brief A plan encoded as a node matrix plus tree structure, ready to be
/// packed into an nn::TreeBatch. Node order is breadth-first (§3.2).
struct EncodedPlan {
  Tensor nodes;                ///< [num_nodes, |NV|]
  std::vector<int32_t> left;   ///< child row index or -1
  std::vector<int32_t> right;  ///< child row index or -1

  size_t num_nodes() const { return nodes.rows(); }
};

/// \brief Maps real table/column names onto the symbolic names of an
/// agnostic layout (§4.2, Table 2). Built per subexpression pair (or per
/// SF-group for the n-ary variant) by BuildSymbolMap in agnostic.h.
struct SymbolMap {
  /// real table name -> symbolic table name ("t01"...), sorted by real name.
  std::vector<std::pair<std::string, std::string>> tables;
  /// (real table, real column) -> symbolic column name ("c01"...).
  std::vector<std::pair<std::pair<std::string, std::string>, std::string>>
      columns;

  /// Symbol for \p table, or nullptr.
  const std::string* TableSymbol(std::string_view table) const;
  /// Symbol for \p table.\p column, or nullptr.
  const std::string* ColumnSymbol(std::string_view table,
                                  std::string_view column) const;
};

/// \brief Encodes plans into node-vector matrices.
///
/// With a null SymbolMap this produces the instance-based encoding (§4.1)
/// against an instance layout; with a SymbolMap it produces the db-agnostic
/// encoding (§4.2, "path A": symbolize then encode) against an agnostic
/// layout. agnostic.h additionally implements "path B", the fast
/// instance->agnostic converter of §4.2.1; tests assert A == B.
class PlanEncoder {
 public:
  PlanEncoder(const EncodingLayout* layout, const Catalog* catalog,
              ValueRange value_range, const SymbolMap* symbols = nullptr)
      : layout_(layout),
        catalog_(catalog),
        value_range_(value_range),
        symbols_(symbols) {}

  /// Encodes \p plan. References outside the layout (or outside the symbol
  /// map when one is set) yield InvalidArgument.
  Result<EncodedPlan> Encode(const PlanPtr& plan) const;

  const EncodingLayout& layout() const { return *layout_; }
  const ValueRange& value_range() const { return value_range_; }

 private:
  Status EncodeNode(const PlanNode& node,
                    const std::vector<std::pair<std::string, std::string>>&
                        alias_to_table,
                    float* row) const;

  const EncodingLayout* layout_;
  const Catalog* catalog_;
  ValueRange value_range_;
  const SymbolMap* symbols_;
};

/// \brief Packs encoded plans into a single nn::TreeBatch for the tree
/// convolution (child indices are rebased to global rows).
nn::TreeBatch BuildTreeBatch(const std::vector<const EncodedPlan*>& plans);

}  // namespace geqo
