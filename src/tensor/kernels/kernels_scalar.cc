#include "tensor/kernels/kernel_table.h"

/// \file kernels_scalar.cc
/// Portable reference kernels. These loops ARE the pre-dispatch tensor.cc
/// arithmetic, moved verbatim: strict left-to-right accumulation, no
/// reassociation, no FMA contraction surprises beyond what the base compile
/// flags already allowed. The forced-`GEQO_ISA=scalar` CI lane asserts the
/// pipeline output is bit-identical to the pre-dispatch code, so treat any
/// change to the float ordering here as a format break.

namespace geqo::kernels {
namespace {

float DotScalar(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void AxpyScalar(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

float SquaredDistanceScalar(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void AddScalar(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void SubScalar(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] -= src[i];
}

void MulScalar(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] *= src[i];
}

void ScaleScalar(float* dst, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] *= s;
}

float Sq8DistanceScalar(const float* t, const float* scale,
                        const std::uint8_t* codes, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = t[i] - scale[i] * static_cast<float>(codes[i]);
    acc += d * d;
  }
  return acc;
}

std::int32_t DotI8Scalar(const std::int8_t* a, const std::int8_t* b,
                         std::size_t n) {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

void AddF64Scalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void SubF64Scalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] -= src[i];
}

void MulF64Scalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] *= src[i];
}

void DivF64Scalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] /= src[i];
}

void FillF64Scalar(double* dst, double v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = v;
}

std::size_t CmpSelectF64Scalar(int op, const double* a, const double* b,
                               std::uint32_t* out, std::size_t n) {
  std::size_t count = 0;
  switch (op) {
    case 0:
      for (std::size_t i = 0; i < n; ++i)
        if (a[i] == b[i]) out[count++] = static_cast<std::uint32_t>(i);
      break;
    case 1:
      for (std::size_t i = 0; i < n; ++i)
        if (a[i] != b[i]) out[count++] = static_cast<std::uint32_t>(i);
      break;
    case 2:
      for (std::size_t i = 0; i < n; ++i)
        if (a[i] < b[i]) out[count++] = static_cast<std::uint32_t>(i);
      break;
    case 3:
      for (std::size_t i = 0; i < n; ++i)
        if (a[i] <= b[i]) out[count++] = static_cast<std::uint32_t>(i);
      break;
    case 4:
      for (std::size_t i = 0; i < n; ++i)
        if (a[i] > b[i]) out[count++] = static_cast<std::uint32_t>(i);
      break;
    default:
      for (std::size_t i = 0; i < n; ++i)
        if (a[i] >= b[i]) out[count++] = static_cast<std::uint32_t>(i);
      break;
  }
  return count;
}

constexpr KernelTable kScalarTable = {
    "scalar",         DotScalar, AxpyScalar, SquaredDistanceScalar,
    AddScalar,        SubScalar, MulScalar,  ScaleScalar,
    Sq8DistanceScalar, DotI8Scalar,
    AddF64Scalar,     SubF64Scalar, MulF64Scalar, DivF64Scalar,
    FillF64Scalar,    CmpSelectF64Scalar,
};

}  // namespace

const KernelTable& ScalarTable() { return kScalarTable; }

}  // namespace geqo::kernels
