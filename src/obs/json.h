#pragma once

#include <optional>
#include <string>
#include <string_view>

/// \file json.h
/// Minimal JSON support for the observability exports: a streaming writer
/// (correct escaping, no intermediate DOM) and a strict validator used by
/// tests and the `geqo_json_lint` tool to check the emitted artifacts.
/// Self-contained on purpose — geqo_obs sits below geqo_common in the
/// dependency order and cannot use Status.

namespace geqo::obs {

/// \brief Builds a JSON document incrementally. The writer inserts commas
/// between siblings automatically; calls must still nest correctly (this is
/// a formatting helper, not a schema checker).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  /// Finite numbers print as shortest round-trip doubles; NaN/inf (invalid
  /// JSON) are written as 0.
  JsonWriter& Number(double value);
  JsonWriter& Number(uint64_t value);
  JsonWriter& Bool(bool value);

  std::string Finish() &&;

 private:
  void Separate();

  std::string out_;
  /// Whether the next value at the current nesting depth needs a ','.
  std::string need_comma_;  // used as a stack of 0/1 bytes
  bool after_key_ = false;
};

/// Escapes \p value for inclusion in a JSON string literal (no quotes).
std::string JsonEscape(std::string_view value);

/// Strict recursive-descent validation of a complete JSON document.
/// Returns std::nullopt on success, or a human-readable error with offset.
std::optional<std::string> ValidateJson(std::string_view text);

}  // namespace geqo::obs
