#include "exec/validate.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "analysis/diagnostics.h"
#include "analysis/plan_validator.h"
#include "common/aligned.h"

/// \file exec_validate_test.cc
/// The exec-batch / pipeline invariant validators: every exec.* diagnostic
/// code fires on the malformed input it names and stays silent on valid
/// input, and the Debug* boundary wrappers are a no-op when the
/// GEQO_VALIDATE gate is off and abort with the formatted findings when it
/// is forced on.

namespace geqo::exec {
namespace {

using analysis::Diagnostics;
using analysis::HasCode;

/// A dense two-column batch with kernel-aligned owned storage — valid under
/// every check, the baseline the mutation cases perturb.
Batch MakeValidBatch(size_t rows = 8) {
  Batch batch;
  batch.num_rows = rows;
  AlignedVector<int64_t> ints(rows, 1);
  AlignedVector<double> doubles(rows, 2.0);
  batch.columns.push_back(ColumnVector::OwnInts(std::move(ints)));
  batch.columns.push_back(ColumnVector::OwnDoubles(std::move(doubles)));
  batch.bindings = {ColumnRef{"t", "a"}, ColumnRef{"t", "b"}};
  return batch;
}

TEST(ExecValidateBatchTest, ValidBatchHasNoFindings) {
  Diagnostics diagnostics;
  ValidateBatch(MakeValidBatch(), &diagnostics);
  EXPECT_TRUE(diagnostics.empty())
      << analysis::FormatDiagnostics(diagnostics);
}

TEST(ExecValidateBatchTest, ValidSelectionHasNoFindings) {
  Batch batch = MakeValidBatch();
  batch.all = false;
  batch.sel = {0, 3, 7};
  Diagnostics diagnostics;
  ValidateBatch(batch, &diagnostics);
  EXPECT_TRUE(diagnostics.empty())
      << analysis::FormatDiagnostics(diagnostics);
}

TEST(ExecValidateBatchTest, BindingArityMismatch) {
  Batch batch = MakeValidBatch();
  batch.bindings.pop_back();
  Diagnostics diagnostics;
  ValidateBatch(batch, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.batch.binding-arity"));
}

TEST(ExecValidateBatchTest, DescendingSelection) {
  Batch batch = MakeValidBatch();
  batch.all = false;
  batch.sel = {0, 5, 3};
  Diagnostics diagnostics;
  ValidateBatch(batch, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.batch.sel-not-ascending"));
}

TEST(ExecValidateBatchTest, DuplicateSelectionEntryIsNotAscending) {
  Batch batch = MakeValidBatch();
  batch.all = false;
  batch.sel = {2, 2};
  Diagnostics diagnostics;
  ValidateBatch(batch, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.batch.sel-not-ascending"));
}

TEST(ExecValidateBatchTest, SelectionOutOfRange) {
  Batch batch = MakeValidBatch(8);
  batch.all = false;
  batch.sel = {0, 8};  // physical rows are 0..7
  Diagnostics diagnostics;
  ValidateBatch(batch, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.batch.sel-out-of-range"));
}

TEST(ExecValidateBatchTest, OwnedColumnShorterThanBatch) {
  Batch batch = MakeValidBatch(8);
  AlignedVector<int64_t> short_ints(4, 0);
  batch.columns[0] = ColumnVector::OwnInts(std::move(short_ints));
  Diagnostics diagnostics;
  ValidateBatch(batch, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.batch.column-length"));
}

TEST(ExecValidateBatchTest, MisalignedViewCaughtOnlyUnderStrictOption) {
  // An owned column can never be misaligned (AlignedVector guarantees the
  // boundary), so the diagnostic is exercised through a view at an odd
  // element offset — exactly the shape of a morsel-offset scan view, which
  // is why views are exempt unless the caller opts in.
  AlignedVector<double> storage(16, 0.0);
  Batch batch;
  batch.num_rows = 4;
  batch.bindings = {ColumnRef{"t", "a"}};
  batch.columns.push_back(ColumnVector::ViewDoubles(storage.data() + 1));
  Diagnostics loose;
  ValidateBatch(batch, &loose);
  EXPECT_FALSE(HasCode(loose, "exec.batch.misaligned-column"))
      << "default options must exempt views";
  BatchValidationOptions strict;
  strict.require_view_alignment = true;
  Diagnostics diagnostics;
  ValidateBatch(batch, &diagnostics, strict);
  EXPECT_TRUE(HasCode(diagnostics, "exec.batch.misaligned-column"));
}

TEST(ExecValidateBatchTest, AlignedViewPassesStrictOption) {
  AlignedVector<double> storage(16, 0.0);
  Batch batch;
  batch.num_rows = 4;
  batch.bindings = {ColumnRef{"t", "a"}};
  batch.columns.push_back(ColumnVector::ViewDoubles(storage.data()));
  BatchValidationOptions strict;
  strict.require_view_alignment = true;
  Diagnostics diagnostics;
  ValidateBatch(batch, &diagnostics, strict);
  EXPECT_TRUE(diagnostics.empty())
      << analysis::FormatDiagnostics(diagnostics);
}

/// A minimal result pipeline (scan -> sink) with a consistent schema.
Pipeline MakeValidPipeline() {
  Pipeline pipeline;
  pipeline.source.kind = Source::Kind::kScan;
  pipeline.source_columns = {ColumnInfo{ColumnRef{"t", "a"}, ValueType::kInt}};
  pipeline.final_columns = pipeline.source_columns;
  pipeline.sink.kind = Sink::Kind::kResult;
  return pipeline;
}

TEST(ExecValidatePipelineTest, ValidPipelineHasNoFindings) {
  Diagnostics diagnostics;
  ValidatePipeline(MakeValidPipeline(), {}, &diagnostics);
  EXPECT_TRUE(diagnostics.empty())
      << analysis::FormatDiagnostics(diagnostics);
}

TEST(ExecValidatePipelineTest, SourceBreakerOutOfRange) {
  Pipeline pipeline = MakeValidPipeline();
  pipeline.source.kind = Source::Kind::kMaterialized;
  pipeline.source.breaker = 2;
  Diagnostics diagnostics;
  ValidatePipeline(pipeline, {}, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.pipeline.source-breaker-range"));
}

TEST(ExecValidatePipelineTest, ProbeBreakerOutOfRange) {
  Pipeline pipeline = MakeValidPipeline();
  CompiledOp probe;
  probe.tag = CompiledOp::Tag::kHashProbe;
  probe.breaker = 5;  // no breakers exist
  probe.out_columns = pipeline.final_columns;
  pipeline.ops.push_back(std::move(probe));
  Diagnostics diagnostics;
  ValidatePipeline(pipeline, {}, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.pipeline.op-breaker-range"));
}

TEST(ExecValidatePipelineTest, HashProbeKeyOutOfRange) {
  Pipeline pipeline = MakeValidPipeline();
  std::vector<Breaker> breakers(1);
  breakers[0].columns = {ColumnInfo{ColumnRef{"b", "k"}, ValueType::kInt}};
  breakers[0].hashed = true;
  breakers[0].hash_key = 0;
  CompiledOp probe;
  probe.tag = CompiledOp::Tag::kHashProbe;
  probe.breaker = 0;
  probe.probe_key = 3;  // incoming schema has one column
  probe.build_key = 0;
  probe.out_columns = pipeline.final_columns;
  pipeline.ops.push_back(std::move(probe));
  Diagnostics diagnostics;
  ValidatePipeline(pipeline, breakers, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.pipeline.probe-key-range"));
}

TEST(ExecValidatePipelineTest, ProbeAgainstUnhashedBuild) {
  Pipeline pipeline = MakeValidPipeline();
  std::vector<Breaker> breakers(1);
  breakers[0].columns = {ColumnInfo{ColumnRef{"b", "k"}, ValueType::kInt}};
  breakers[0].hashed = false;
  CompiledOp probe;
  probe.tag = CompiledOp::Tag::kHashProbe;
  probe.breaker = 0;
  probe.probe_key = 0;
  probe.build_key = 0;
  probe.out_columns = pipeline.final_columns;
  pipeline.ops.push_back(std::move(probe));
  Diagnostics diagnostics;
  ValidatePipeline(pipeline, breakers, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.pipeline.unhashed-build"));
}

TEST(ExecValidatePipelineTest, ProjectionArityMismatch) {
  Pipeline pipeline = MakeValidPipeline();
  CompiledOp project;
  project.tag = CompiledOp::Tag::kProject;
  project.outputs.resize(2);  // two expressions ...
  project.out_columns = pipeline.final_columns;  // ... but one out column
  pipeline.ops.push_back(std::move(project));
  Diagnostics diagnostics;
  ValidatePipeline(pipeline, {}, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.pipeline.project-arity"));
}

TEST(ExecValidatePipelineTest, FinalSchemaMismatch) {
  Pipeline pipeline = MakeValidPipeline();
  pipeline.final_columns.push_back(
      ColumnInfo{ColumnRef{"t", "phantom"}, ValueType::kInt});
  Diagnostics diagnostics;
  ValidatePipeline(pipeline, {}, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.pipeline.final-schema"));
}

TEST(ExecValidatePipelineTest, SinkBreakerOutOfRange) {
  Pipeline pipeline = MakeValidPipeline();
  pipeline.sink.kind = Sink::Kind::kBuild;
  pipeline.sink.breaker = 9;
  Diagnostics diagnostics;
  ValidatePipeline(pipeline, {}, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.pipeline.sink-breaker-range"));
}

TEST(ExecValidatePipelineTest, AggregateArityMismatch) {
  Pipeline pipeline = MakeValidPipeline();
  std::vector<Breaker> breakers(1);
  pipeline.sink.kind = Sink::Kind::kAggregate;
  pipeline.sink.breaker = 0;
  pipeline.sink.aggregate.group_by.resize(1);
  pipeline.sink.aggregate.aggregates.resize(1);
  pipeline.sink.aggregate.out_columns = {
      ColumnInfo{ColumnRef{"", "g"}, ValueType::kInt}};  // expected 2
  Diagnostics diagnostics;
  ValidatePipeline(pipeline, breakers, &diagnostics);
  EXPECT_TRUE(HasCode(diagnostics, "exec.pipeline.aggregate-arity"));
}

TEST(ExecValidateDebugTest, DebugWrappersAreNoOpsWhenGateIsOff) {
  if (analysis::DebugValidationEnabled()) {
    GTEST_SKIP() << "debug validation is on in this configuration";
  }
  // A batch violating several invariants at once must pass untouched:
  // the wrappers' entire cost when off is one cached-bool load.
  Batch bad = MakeValidBatch();
  bad.bindings.clear();
  bad.all = false;
  bad.sel = {5, 1};
  DebugValidateBatch(bad, "test.off");
  Pipeline pipeline = MakeValidPipeline();
  pipeline.final_columns.clear();
  DebugValidatePipeline(pipeline, {}, "test.off");
}

void ValidateBadBatchAtBoundary() {
  Batch bad = MakeValidBatch();
  bad.all = false;
  bad.sel = std::vector<uint32_t>({5, 1});
  DebugValidateBatch(bad, "test.forced");
}

void ValidateBadPipelineAtBoundary() {
  Pipeline pipeline = MakeValidPipeline();
  pipeline.final_columns.clear();
  DebugValidatePipeline(pipeline, {}, "test.forced");
}

TEST(ExecValidateDeathTest, DebugValidateBatchAbortsWhenForcedOn) {
  // GEQO_VALIDATE is read once per process; the threadsafe death test
  // re-executes the binary, so the child sees the env var set here and
  // comes up with the gate armed.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  setenv("GEQO_VALIDATE", "1", 1);
  EXPECT_DEATH(ValidateBadBatchAtBoundary(),
               "exec\\.batch\\.sel-not-ascending");
  unsetenv("GEQO_VALIDATE");
}

TEST(ExecValidateDeathTest, DebugValidatePipelineAbortsWhenForcedOn) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  setenv("GEQO_VALIDATE", "1", 1);
  EXPECT_DEATH(ValidateBadPipelineAtBoundary(),
               "exec\\.pipeline\\.final-schema");
  unsetenv("GEQO_VALIDATE");
}

}  // namespace
}  // namespace geqo::exec
