#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "ann/hnsw.h"
#include "encode/encoding.h"
#include "filters/vmf.h"
#include "ml/emf_model.h"
#include "ml/trainer.h"
#include "tensor/kernels/kernel_table.h"
#include "workload/labeled_data.h"
#include "workload/schemas.h"

/// Quantization accuracy budget on the seed workload (DESIGN.md §9): SQ8
/// approximations must stay within a stated epsilon of the f32 baseline —
/// EMF AUC within 0.02, VMF radius-search recall within 0.05. A fast path
/// that loses more than that just shifts cost back onto the verifier tier,
/// defeating the cascade.

namespace geqo {
namespace {

constexpr double kEmfAucEpsilon = 0.02;
constexpr double kVmfRecallEpsilon = 0.05;

/// Flips the process-wide quant switch for one scope.
class QuantGuard {
 public:
  explicit QuantGuard(bool on) : saved_(kernels::QuantEnabled()) {
    kernels::SetQuantMode(on);
  }
  ~QuantGuard() { kernels::SetQuantMode(saved_); }

 private:
  bool saved_;
};

/// Rank-based AUC (probability a positive outscores a negative; ties count
/// half).
double Auc(const std::vector<float>& scores, const std::vector<float>& labels) {
  double pairs = 0.0;
  double wins = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] < 0.5f) continue;
    for (size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] >= 0.5f) continue;
      pairs += 1.0;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  return pairs > 0.0 ? wins / pairs : 0.0;
}

/// Shared trained-model fixture (same shape as pipeline_test's): a small
/// TPC-H-trained EMF built once for the suite.
class QuantTest : public ::testing::Test {
 protected:
  struct Shared {
    Catalog catalog = MakeTpchCatalog();
    EncodingLayout instance_layout = EncodingLayout::FromCatalog(catalog);
    EncodingLayout agnostic_layout = EncodingLayout::Agnostic(6, 8);
    std::unique_ptr<ml::EmfModel> model;
    ValueRange value_range{0, 100};
    ml::PairDataset eval;
    /// Instance encodings of the eval lhs plans (EmbedSingle's input form —
    /// the dataset's plans are already agnostic-converted).
    std::vector<EncodedPlan> eval_instance;
  };

  static Shared& shared() {
    static Shared* instance = [] {
      auto* s = new Shared();
      ml::EmfModelOptions model_options;
      model_options.input_dim = s->agnostic_layout.node_vector_size();
      model_options.conv1_size = 32;
      model_options.conv2_size = 32;
      model_options.fc1_size = 32;
      model_options.fc2_size = 16;
      model_options.dropout = 0.2f;
      s->model = std::make_unique<ml::EmfModel>(model_options);

      Rng rng(71);
      LabeledDataOptions data_options;
      data_options.num_base_queries = 40;
      data_options.variants_per_query = 3;
      auto pairs = BuildLabeledPairs(s->catalog, data_options, &rng);
      GEQO_CHECK(pairs.ok());
      auto dataset =
          EncodeLabeledPairs(*pairs, s->catalog, s->instance_layout,
                             s->agnostic_layout, s->value_range);
      GEQO_CHECK(dataset.ok());
      ml::TrainOptions train_options;
      train_options.epochs = 10;
      ml::EmfTrainer trainer(s->model.get(), train_options);
      trainer.Train(*dataset);

      // Held-out pairs from a different generator stream for evaluation.
      Rng eval_rng(1234);
      LabeledDataOptions eval_options;
      eval_options.num_base_queries = 24;
      eval_options.variants_per_query = 2;
      auto eval_pairs = BuildLabeledPairs(s->catalog, eval_options, &eval_rng);
      GEQO_CHECK(eval_pairs.ok());
      auto eval =
          EncodeLabeledPairs(*eval_pairs, s->catalog, s->instance_layout,
                             s->agnostic_layout, s->value_range);
      GEQO_CHECK(eval.ok());
      s->eval = std::move(*eval);

      PlanEncoder encoder(&s->instance_layout, &s->catalog, s->value_range);
      for (const auto& pair : *eval_pairs) {
        auto encoded = encoder.Encode(pair.lhs);
        GEQO_CHECK(encoded.ok());
        s->eval_instance.push_back(std::move(*encoded));
      }
      return s;
    }();
    return *instance;
  }

  /// Scores every eval pair in one batch (large enough to take the
  /// quantized Linear path when quant is on).
  static std::vector<float> ScoreEval() {
    Shared& s = shared();
    std::vector<const EncodedPlan*> lhs;
    std::vector<const EncodedPlan*> rhs;
    for (size_t i = 0; i < s.eval.lhs.size(); ++i) {
      lhs.push_back(&s.eval.lhs[i]);
      rhs.push_back(&s.eval.rhs[i]);
    }
    const Tensor proba = s.model->PredictProba(lhs, rhs);
    std::vector<float> scores(proba.size());
    for (size_t i = 0; i < proba.size(); ++i) scores[i] = proba.values()[i];
    return scores;
  }

  /// Singleton-map embeddings of the eval set's lhs plans.
  static std::vector<std::vector<float>> EvalEmbeddings() {
    Shared& s = shared();
    VectorMatchingFilter vmf(s.model.get(), &s.instance_layout,
                             &s.agnostic_layout);
    std::vector<std::vector<float>> embeddings;
    for (const EncodedPlan& plan : s.eval_instance) {
      auto embedding = vmf.EmbedSingle(plan);
      GEQO_CHECK(embedding.ok());
      embeddings.push_back(std::move(*embedding));
    }
    return embeddings;
  }
};

TEST_F(QuantTest, EmfAucWithinEpsilonOfF32) {
  Shared& s = shared();
  std::vector<float> f32_scores;
  std::vector<float> sq8_scores;
  {
    QuantGuard off(false);
    f32_scores = ScoreEval();
  }
  {
    QuantGuard on(true);
    sq8_scores = ScoreEval();
  }
  const double f32_auc = Auc(f32_scores, s.eval.labels);
  const double sq8_auc = Auc(sq8_scores, s.eval.labels);
  // The baseline itself must be informative for the comparison to mean
  // anything.
  EXPECT_GT(f32_auc, 0.7) << "f32 baseline degenerate";
  EXPECT_GE(sq8_auc, f32_auc - kEmfAucEpsilon)
      << "f32 AUC " << f32_auc << " vs SQ8 AUC " << sq8_auc;
}

TEST_F(QuantTest, VmfRadiusRecallWithinEpsilonOfF32) {
  // Distinct embeddings only: equivalent variants embed identically, and a
  // duplicate-heavy set degrades HNSW graph connectivity for f32 and SQ8
  // alike, drowning the comparison in graph noise.
  std::vector<std::vector<float>> embeddings;
  for (auto& embedding : EvalEmbeddings()) {
    if (std::find(embeddings.begin(), embeddings.end(), embedding) ==
        embeddings.end()) {
      embeddings.push_back(std::move(embedding));
    }
  }
  ASSERT_GE(embeddings.size(), 16u);
  const size_t dim = embeddings[0].size();

  // Radius chosen from the data: median nearest-neighbor distance times a
  // small factor, so every query has a non-trivial exact result set.
  std::vector<float> nn(embeddings.size(), std::numeric_limits<float>::max());
  for (size_t i = 0; i < embeddings.size(); ++i) {
    for (size_t j = 0; j < embeddings.size(); ++j) {
      if (i == j) continue;
      float d2 = 0.0f;
      for (size_t k = 0; k < dim; ++k) {
        const float d = embeddings[i][k] - embeddings[j][k];
        d2 += d * d;
      }
      nn[i] = std::min(nn[i], std::sqrt(d2));
    }
  }
  std::vector<float> sorted_nn = nn;
  std::sort(sorted_nn.begin(), sorted_nn.end());
  const float radius = sorted_nn[sorted_nn.size() / 2] * 2.0f;

  const auto recall_with = [&](bool quant) {
    ann::HnswOptions options;
    options.quant = quant ? ann::QuantOverride::kOn : ann::QuantOverride::kOff;
    options.sq8_calibration = 8;  // calibrate early on this small set
    ann::HnswIndex index(dim, options);
    for (const auto& embedding : embeddings) index.Add(embedding);
    EXPECT_EQ(index.quantized(), quant);
    if (quant) {
      EXPECT_TRUE(index.calibrated());
    }

    double recalled = 0.0;
    double expected = 0.0;
    for (const auto& embedding : embeddings) {
      const auto exact = index.ExactRadius(embedding.data(), radius);
      const auto approx = index.SearchRadius(embedding.data(), radius);
      expected += static_cast<double>(exact.size());
      for (const auto& hit : exact) {
        for (const auto& candidate : approx) {
          if (candidate.id == hit.id) {
            recalled += 1.0;
            break;
          }
        }
      }
    }
    return expected > 0.0 ? recalled / expected : 1.0;
  };

  const double f32_recall = recall_with(false);
  const double sq8_recall = recall_with(true);
  EXPECT_GT(f32_recall, 0.9) << "f32 baseline degenerate";
  EXPECT_GE(sq8_recall, f32_recall - kVmfRecallEpsilon)
      << "f32 recall " << f32_recall << " vs SQ8 recall " << sq8_recall;
}

TEST_F(QuantTest, QuantizedSearchReportsExactDistances) {
  // Exact-rerank contract: reported distances come from the f32 vectors even
  // when traversal used SQ8 codes.
  const std::vector<std::vector<float>> embeddings = EvalEmbeddings();
  const size_t dim = embeddings[0].size();
  ann::HnswOptions options;
  options.quant = ann::QuantOverride::kOn;
  options.sq8_calibration = 4;
  ann::HnswIndex index(dim, options);
  for (const auto& embedding : embeddings) index.Add(embedding);
  ASSERT_TRUE(index.calibrated());

  const auto hits = index.SearchKnn(embeddings[0].data(), 5);
  ASSERT_FALSE(hits.empty());
  for (const auto& hit : hits) {
    float d2 = 0.0f;
    const float* stored = index.vector(hit.id);
    for (size_t k = 0; k < dim; ++k) {
      const float d = embeddings[0][k] - stored[k];
      d2 += d * d;
    }
    EXPECT_FLOAT_EQ(hit.distance, std::sqrt(d2));
  }
}

}  // namespace
}  // namespace geqo
