#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "plan/plan.h"
#include "plan/schema.h"
#include "plan/spj.h"

/// \file verifier.h
/// A SPES-style automated equivalence verifier [54] for SPJ subexpressions
/// with conjunctive predicates under bag semantics, built on the from-scratch
/// DPLL(T) difference-logic solver (src/smt). See DESIGN.md §1 for the
/// substitution rationale.
///
/// Method: both plans are canonicalized and flattened to
/// (table multiset, predicate conjunction, output list). For conjunctive
/// queries under bag semantics, equivalence holds iff some table-name-
/// consistent bijection between scan atoms maps one query onto the other
/// (Chaudhuri & Vardi); predicate-set equality is checked as mutual
/// implication discharged by the SMT solver, which also proves implied
/// (redundant) predicates such as Figure 1's
///   A.val > B.val + 10 ∧ B.val + 10 > 20  ⊢  A.val > 20.
///
/// Aggregates (the §9.1 extension) are proved structurally on top of the
/// SPJ machinery: two aggregate roots are equivalent when some bijection
/// makes their SPJ children mutually imply each other, their group-by key
/// sets coincide under the renaming, and their aggregate lists match
/// positionally. This is conservative (set-equal keys, syntactic argument
/// match after renaming) and therefore sound.
///
/// The verifier is correct but not complete (§2.1): plans outside the
/// supported fragment (outer joins, non-root projections, non-linear
/// predicates) yield kUnknown.

namespace geqo {

enum class EquivalenceVerdict : uint8_t {
  kEquivalent,
  kNotEquivalent,
  kUnknown,
};

std::string_view VerdictToString(EquivalenceVerdict verdict);

/// \brief Verifier tuning knobs.
struct VerifierOptions {
  /// Upper bound on alias bijections tried per pair (factorial in the
  /// number of same-table self-join atoms; real workloads stay tiny).
  uint64_t max_bijections = 100000;
  /// Models the paper's out-of-process AV invocation (SPES spawns a JVM +
  /// Z3 per check, ~18 ms wall — see kSpesInvocationOverheadSeconds in
  /// bench_util.h): every CheckEquivalence call stalls this long before
  /// returning. 0 disables it (the in-process DPLL(T) cost only).
  /// Benches enable this when the *placement* of verification cost
  /// (inline under a serving lock vs. on the async plane) is the object
  /// of measurement, not just its total.
  double modeled_invocation_stall_seconds = 0.0;
};

/// \brief Cumulative verifier work counters (reported by benches; the
/// solver-call count tracks the paper's O(2^Ω(γ)) AV cost driver). The
/// smt_* fields accumulate the DPLL(T) search totals across every solver
/// call, so one merged VerifierStats carries the full SMT cost of a run.
struct VerifierStats {
  uint64_t pairs_checked = 0;
  uint64_t solver_calls = 0;
  uint64_t bijections_tried = 0;
  uint64_t unknown_results = 0;
  uint64_t smt_decisions = 0;
  uint64_t smt_propagations = 0;
  uint64_t smt_theory_checks = 0;
  uint64_t smt_conflicts = 0;

  /// Field-wise difference vs an earlier copy of the same counters.
  VerifierStats DeltaSince(const VerifierStats& before) const {
    VerifierStats delta;
    delta.pairs_checked = pairs_checked - before.pairs_checked;
    delta.solver_calls = solver_calls - before.solver_calls;
    delta.bijections_tried = bijections_tried - before.bijections_tried;
    delta.unknown_results = unknown_results - before.unknown_results;
    delta.smt_decisions = smt_decisions - before.smt_decisions;
    delta.smt_propagations = smt_propagations - before.smt_propagations;
    delta.smt_theory_checks = smt_theory_checks - before.smt_theory_checks;
    delta.smt_conflicts = smt_conflicts - before.smt_conflicts;
    return delta;
  }
};

/// Adds \p delta to the global metrics registry under the "verify." and
/// "smt." counters. No-op (one atomic load) when GEQO_TRACE=off; callers
/// fold merged per-run deltas, never per-query values, to keep the hot path
/// off the registry.
void FoldVerifierStatsToMetrics(const VerifierStats& delta);

/// \brief The automated verifier (the AV of Equation 2).
class SpesVerifier {
 public:
  explicit SpesVerifier(const Catalog* catalog,
                        VerifierOptions options = VerifierOptions())
      : catalog_(catalog), options_(options) {}

  /// Decides semantic equivalence of \p a and \p b.
  EquivalenceVerdict CheckEquivalence(const PlanPtr& a, const PlanPtr& b);

  /// §9.2 extension: decides whether \p a is semantically contained in
  /// \p b (every result row of a appears in b, over every database).
  EquivalenceVerdict CheckContainment(const PlanPtr& a, const PlanPtr& b);

  const VerifierStats& stats() const { return stats_; }
  void ResetStats() { stats_ = VerifierStats(); }
  /// Folds another verifier's counters into this one. The parallel pipeline
  /// verifies with per-thread SpesVerifier instances (CheckEquivalence
  /// mutates stats_, so instances must not be shared across threads) and
  /// merges their work accounting back into the pipeline's verifier.
  void MergeStats(const VerifierStats& other) {
    stats_.pairs_checked += other.pairs_checked;
    stats_.solver_calls += other.solver_calls;
    stats_.bijections_tried += other.bijections_tried;
    stats_.unknown_results += other.unknown_results;
    stats_.smt_decisions += other.smt_decisions;
    stats_.smt_propagations += other.smt_propagations;
    stats_.smt_theory_checks += other.smt_theory_checks;
    stats_.smt_conflicts += other.smt_conflicts;
  }

 private:
  EquivalenceVerdict CheckFlattened(const FlatSpj& a, const FlatSpj& b,
                                    bool containment_only,
                                    const PlanNode* aggregate_a = nullptr,
                                    const PlanNode* aggregate_b = nullptr);

  const Catalog* catalog_;
  VerifierOptions options_;
  VerifierStats stats_;
};

}  // namespace geqo
