#include "workload/schemas.h"

#include "common/strings.h"

namespace geqo {
namespace {

ColumnDef IntCol(const char* name) { return ColumnDef{name, ValueType::kInt}; }
ColumnDef DblCol(const char* name) {
  return ColumnDef{name, ValueType::kDouble};
}
ColumnDef StrCol(const char* name) {
  return ColumnDef{name, ValueType::kString};
}

}  // namespace

Catalog MakeTpchCatalog() {
  Catalog catalog;
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "region", {IntCol("r_regionkey"), StrCol("r_name")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "nation",
      {IntCol("n_nationkey"), IntCol("n_regionkey"), StrCol("n_name")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "supplier", {IntCol("s_suppkey"), IntCol("s_nationkey"),
                   DblCol("s_acctbal"), StrCol("s_name")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "customer", {IntCol("c_custkey"), IntCol("c_nationkey"),
                   DblCol("c_acctbal"), StrCol("c_mktsegment")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "part", {IntCol("p_partkey"), IntCol("p_size"), DblCol("p_retailprice"),
               StrCol("p_brand")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "partsupp", {IntCol("ps_partkey"), IntCol("ps_suppkey"),
                   IntCol("ps_availqty"), DblCol("ps_supplycost")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "orders", {IntCol("o_orderkey"), IntCol("o_custkey"),
                 DblCol("o_totalprice"), IntCol("o_shippriority")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "lineitem",
      {IntCol("l_orderkey"), IntCol("l_partkey"), IntCol("l_suppkey"),
       IntCol("l_quantity"), DblCol("l_extendedprice"), DblCol("l_discount")})));

  GEQO_CHECK_OK(
      catalog.AddJoinKey({"nation", "n_regionkey", "region", "r_regionkey"}));
  GEQO_CHECK_OK(
      catalog.AddJoinKey({"supplier", "s_nationkey", "nation", "n_nationkey"}));
  GEQO_CHECK_OK(
      catalog.AddJoinKey({"customer", "c_nationkey", "nation", "n_nationkey"}));
  GEQO_CHECK_OK(
      catalog.AddJoinKey({"partsupp", "ps_partkey", "part", "p_partkey"}));
  GEQO_CHECK_OK(
      catalog.AddJoinKey({"partsupp", "ps_suppkey", "supplier", "s_suppkey"}));
  GEQO_CHECK_OK(
      catalog.AddJoinKey({"orders", "o_custkey", "customer", "c_custkey"}));
  GEQO_CHECK_OK(
      catalog.AddJoinKey({"lineitem", "l_orderkey", "orders", "o_orderkey"}));
  GEQO_CHECK_OK(
      catalog.AddJoinKey({"lineitem", "l_partkey", "part", "p_partkey"}));
  GEQO_CHECK_OK(
      catalog.AddJoinKey({"lineitem", "l_suppkey", "supplier", "s_suppkey"}));
  return catalog;
}

Catalog MakeTpcdsCatalog() {
  Catalog catalog;
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "date_dim", {IntCol("d_date_sk"), IntCol("d_year"), IntCol("d_moy"),
                   IntCol("d_dom")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "item", {IntCol("i_item_sk"), DblCol("i_current_price"),
               IntCol("i_manufact_id"), StrCol("i_category")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "customer", {IntCol("c_customer_sk"), IntCol("c_current_addr_sk"),
                   IntCol("c_birth_year")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "customer_address",
      {IntCol("ca_address_sk"), IntCol("ca_gmt_offset"), StrCol("ca_state")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "store", {IntCol("s_store_sk"), IntCol("s_number_employees"),
                DblCol("s_tax_percentage")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "warehouse", {IntCol("w_warehouse_sk"), IntCol("w_warehouse_sq_ft")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "promotion", {IntCol("p_promo_sk"), IntCol("p_item_sk"),
                    DblCol("p_cost")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "store_sales",
      {IntCol("ss_sold_date_sk"), IntCol("ss_item_sk"), IntCol("ss_customer_sk"),
       IntCol("ss_store_sk"), IntCol("ss_promo_sk"), IntCol("ss_quantity"),
       DblCol("ss_sales_price"), DblCol("ss_net_profit")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "store_returns",
      {IntCol("sr_returned_date_sk"), IntCol("sr_item_sk"),
       IntCol("sr_customer_sk"), IntCol("sr_return_quantity"),
       DblCol("sr_return_amt")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "catalog_sales",
      {IntCol("cs_sold_date_sk"), IntCol("cs_item_sk"),
       IntCol("cs_bill_customer_sk"), IntCol("cs_warehouse_sk"),
       IntCol("cs_quantity"), DblCol("cs_sales_price")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "web_sales",
      {IntCol("ws_sold_date_sk"), IntCol("ws_item_sk"),
       IntCol("ws_bill_customer_sk"), IntCol("ws_promo_sk"),
       IntCol("ws_quantity"), DblCol("ws_sales_price")})));
  GEQO_CHECK_OK(catalog.AddTable(TableDef(
      "inventory", {IntCol("inv_date_sk"), IntCol("inv_item_sk"),
                    IntCol("inv_warehouse_sk"), IntCol("inv_quantity_on_hand")})));

  const auto join = [&](const char* lt, const char* lc, const char* rt,
                        const char* rc) {
    GEQO_CHECK_OK(catalog.AddJoinKey({lt, lc, rt, rc}));
  };
  join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk");
  join("store_sales", "ss_item_sk", "item", "i_item_sk");
  join("store_sales", "ss_customer_sk", "customer", "c_customer_sk");
  join("store_sales", "ss_store_sk", "store", "s_store_sk");
  join("store_sales", "ss_promo_sk", "promotion", "p_promo_sk");
  join("store_returns", "sr_returned_date_sk", "date_dim", "d_date_sk");
  join("store_returns", "sr_item_sk", "item", "i_item_sk");
  join("store_returns", "sr_customer_sk", "customer", "c_customer_sk");
  join("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk");
  join("catalog_sales", "cs_item_sk", "item", "i_item_sk");
  join("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk");
  join("catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk");
  join("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk");
  join("web_sales", "ws_item_sk", "item", "i_item_sk");
  join("web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk");
  join("web_sales", "ws_promo_sk", "promotion", "p_promo_sk");
  join("inventory", "inv_date_sk", "date_dim", "d_date_sk");
  join("inventory", "inv_item_sk", "item", "i_item_sk");
  join("inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk");
  join("customer", "c_current_addr_sk", "customer_address", "ca_address_sk");
  join("promotion", "p_item_sk", "item", "i_item_sk");
  return catalog;
}

Catalog MakeRandomCatalog(const RandomSchemaOptions& options, Rng* rng) {
  Catalog catalog;
  for (size_t t = 0; t < options.num_tables; ++t) {
    std::vector<ColumnDef> columns;
    const size_t num_columns = static_cast<size_t>(rng->UniformInt(
        static_cast<int64_t>(options.min_columns),
        static_cast<int64_t>(options.max_columns)));
    // Column 0 is always an integer key so join edges are available.
    columns.push_back(ColumnDef{StrFormat("k%zu", t), ValueType::kInt});
    for (size_t c = 1; c < num_columns; ++c) {
      const bool is_string = rng->Bernoulli(options.string_column_fraction);
      columns.push_back(
          ColumnDef{StrFormat("r%zu_c%zu", t, c),
                    is_string ? ValueType::kString
                              : (rng->Bernoulli(0.5) ? ValueType::kInt
                                                     : ValueType::kDouble)});
    }
    GEQO_CHECK_OK(
        catalog.AddTable(TableDef(StrFormat("rt%zu", t), std::move(columns))));
  }
  // Random join edges between distinct tables' key columns.
  for (size_t k = 0; k < options.num_join_keys; ++k) {
    const size_t a = rng->Uniform(options.num_tables);
    size_t b = rng->Uniform(options.num_tables);
    if (a == b) b = (b + 1) % options.num_tables;
    GEQO_CHECK_OK(catalog.AddJoinKey({StrFormat("rt%zu", a),
                                      StrFormat("k%zu", a),
                                      StrFormat("rt%zu", b),
                                      StrFormat("k%zu", b)}));
  }
  return catalog;
}

}  // namespace geqo
