#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"

namespace geqo::obs {
namespace {

std::atomic<int>& LevelSlot() {
  static std::atomic<int> level{-1};  // -1 = not yet parsed from GEQO_TRACE
  return level;
}

}  // namespace

TraceLevel ParseTraceLevel(const char* value) {
  if (value == nullptr) return TraceLevel::kOff;
  std::string lower(value);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "metrics") return TraceLevel::kMetrics;
  if (lower == "spans") return TraceLevel::kSpans;
  return TraceLevel::kOff;
}

TraceLevel GlobalTraceLevel() {
  int level = LevelSlot().load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(ParseTraceLevel(std::getenv("GEQO_TRACE")));
    // Racing first queries parse the same env var to the same answer.
    LevelSlot().store(level, std::memory_order_relaxed);
  }
  return static_cast<TraceLevel>(level);
}

void SetTraceLevel(TraceLevel level) {
  LevelSlot().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool MetricsEnabled() { return GlobalTraceLevel() >= TraceLevel::kMetrics; }
bool SpansEnabled() { return GlobalTraceLevel() >= TraceLevel::kSpans; }

double Histogram::BucketBound(size_t i) {
  double bound = kFirstBound;
  for (size_t b = 0; b < i; ++b) bound *= 2.0;
  return bound;
}

void Histogram::Observe(double value) {
  if (value < 0.0) value = 0.0;
  size_t bucket = 0;
  double bound = kFirstBound;
  while (bucket + 1 < kNumBuckets && value > bound) {
    bound *= 2.0;
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.Add(value);
}

double Histogram::Mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lower = b == 0 ? 0.0 : BucketBound(b - 1);
      const double upper = BucketBound(b);
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return BucketBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.Reset();
}

double MetricsSnapshot::Value(std::string_view name) const {
  for (const MetricSample& sample : samples) {
    if (sample.name == name) return sample.value;
  }
  return 0.0;
}

std::vector<std::pair<std::string, double>> MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& before) const {
  std::vector<std::pair<std::string, double>> delta;
  for (const MetricSample& sample : samples) {
    const double change = sample.value - before.Value(sample.name);
    if (change != 0.0) delta.emplace_back(sample.name, change);
  }
  return delta;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  for (const MetricSample& sample : samples) {
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge:
        json.Key(sample.name).Number(sample.value);
        break;
      case MetricSample::Kind::kHistogram:
        json.Key(sample.name).BeginObject();
        json.Key("count").Number(static_cast<double>(sample.count));
        json.Key("sum").Number(sample.value);
        json.Key("p50").Number(sample.p50);
        json.Key("p95").Number(sample.p95);
        json.Key("p99").Number(sample.p99);
        json.EndObject();
        break;
    }
  }
  json.EndObject();
  return std::move(json).Finish();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kCounter;
    sample.value = static_cast<double>(counter->value());
    snapshot.samples.push_back(std::move(sample));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kGauge;
    sample.value = gauge->value();
    snapshot.samples.push_back(std::move(sample));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kHistogram;
    sample.value = histogram->sum();
    sample.count = histogram->count();
    sample.p50 = histogram->P50();
    sample.p95 = histogram->P95();
    sample.p99 = histogram->P99();
    snapshot.samples.push_back(std::move(sample));
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snapshot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace geqo::obs
