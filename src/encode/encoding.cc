#include "encode/encoding.h"

#include <algorithm>
#include <deque>

#include "common/hash.h"
#include "common/strings.h"

namespace geqo {
namespace {

size_t CompareOpIndex(CompareOp op) { return static_cast<size_t>(op); }
size_t JoinTypeIndex(JoinType type) { return static_cast<size_t>(type); }

}  // namespace

EncodingLayout EncodingLayout::FromCatalog(const Catalog& catalog) {
  EncodingLayout layout;
  for (const TableDef& table : catalog.tables()) {
    layout.tables_.push_back(table.name());
    for (const ColumnDef& column : table.columns()) {
      layout.columns_.push_back(table.name() + "." + column.name);
    }
  }
  std::sort(layout.tables_.begin(), layout.tables_.end());
  std::sort(layout.columns_.begin(), layout.columns_.end());
  return layout;
}

EncodingLayout EncodingLayout::Agnostic(size_t max_tables,
                                        size_t max_columns_per_table) {
  GEQO_CHECK(max_tables >= 1 && max_tables <= 99);
  GEQO_CHECK(max_columns_per_table >= 1 && max_columns_per_table <= 99);
  EncodingLayout layout;
  layout.max_columns_per_table_ = max_columns_per_table;
  // Zero-padded symbols keep lexicographic order equal to index order, which
  // the fast converter relies on (§4.2.1).
  for (size_t t = 1; t <= max_tables; ++t) {
    layout.tables_.push_back(StrFormat("t%02zu", t));
    for (size_t c = 1; c <= max_columns_per_table; ++c) {
      layout.columns_.push_back(StrFormat("t%02zu.c%02zu", t, c));
    }
  }
  // Already sorted by construction.
  return layout;
}

size_t EncodingLayout::TableIndex(std::string_view table) const {
  const auto it = std::lower_bound(tables_.begin(), tables_.end(), table);
  if (it == tables_.end() || *it != table) return npos;
  return static_cast<size_t>(it - tables_.begin());
}

size_t EncodingLayout::ColumnIndex(std::string_view table,
                                   std::string_view column) const {
  std::string key;
  key.reserve(table.size() + column.size() + 1);
  key.append(table);
  key.push_back('.');
  key.append(column);
  const auto it = std::lower_bound(columns_.begin(), columns_.end(), key);
  if (it == columns_.end() || *it != key) return npos;
  return static_cast<size_t>(it - columns_.begin());
}

namespace {

void CollectConstants(const ExprPtr& expr, ValueRange* range, bool* any) {
  if (expr->is_literal()) {
    if (expr->value().is_numeric()) {
      const double v = expr->value().AsDouble();
      if (!*any) {
        range->min = range->max = v;
        *any = true;
      } else {
        range->min = std::min(range->min, v);
        range->max = std::max(range->max, v);
      }
    }
    return;
  }
  if (expr->is_binary()) {
    CollectConstants(expr->left(), range, any);
    CollectConstants(expr->right(), range, any);
  }
}

void CollectPlanConstants(const PlanPtr& plan, ValueRange* range, bool* any) {
  if (plan->kind() == OpKind::kSelect || plan->kind() == OpKind::kJoin) {
    CollectConstants(plan->predicate().lhs, range, any);
    CollectConstants(plan->predicate().rhs, range, any);
  }
  if (plan->kind() == OpKind::kProject) {
    for (const OutputColumn& output : plan->outputs()) {
      CollectConstants(output.expr, range, any);
    }
  }
  for (const PlanPtr& child : plan->children()) {
    CollectPlanConstants(child, range, any);
  }
}

/// Maps a string constant deterministically into [0, 1] for norm(v).
float NormalizeString(const std::string& s) {
  return static_cast<float>(HashString(s) % 10000) / 10000.0f;
}

}  // namespace

ValueRange ComputeValueRange(const std::vector<PlanPtr>& plans) {
  ValueRange range;
  bool any = false;
  for (const PlanPtr& plan : plans) CollectPlanConstants(plan, &range, &any);
  if (!any) return ValueRange{0.0, 1.0};
  if (range.max == range.min) range.max = range.min + 1.0;
  return range;
}

const std::string* SymbolMap::TableSymbol(std::string_view table) const {
  for (const auto& [real, symbol] : tables) {
    if (real == table) return &symbol;
  }
  return nullptr;
}

const std::string* SymbolMap::ColumnSymbol(std::string_view table,
                                           std::string_view column) const {
  for (const auto& [key, symbol] : columns) {
    if (key.first == table && key.second == column) return &symbol;
  }
  return nullptr;
}

Status PlanEncoder::EncodeNode(
    const PlanNode& node,
    const std::vector<std::pair<std::string, std::string>>& alias_to_table,
    float* row) const {
  const EncodingLayout& layout = *layout_;

  auto table_of_alias = [&](const std::string& alias) -> const std::string* {
    for (const auto& [table, bound_alias] : alias_to_table) {
      if (bound_alias == alias) return &table;
    }
    return nullptr;
  };
  auto table_slot = [&](const std::string& table) -> size_t {
    if (symbols_ != nullptr) {
      const std::string* symbol = symbols_->TableSymbol(table);
      if (symbol == nullptr) return EncodingLayout::npos;
      return layout.TableIndex(*symbol);
    }
    return layout.TableIndex(table);
  };
  auto column_slot = [&](const ColumnRef& ref) -> size_t {
    const std::string* table = table_of_alias(ref.alias);
    if (table == nullptr) return EncodingLayout::npos;
    if (symbols_ != nullptr) {
      const std::string* table_symbol = symbols_->TableSymbol(*table);
      const std::string* column_symbol =
          symbols_->ColumnSymbol(*table, ref.column);
      if (table_symbol == nullptr || column_symbol == nullptr) {
        return EncodingLayout::npos;
      }
      return layout.ColumnIndex(*table_symbol, *column_symbol);
    }
    return layout.ColumnIndex(*table, ref.column);
  };

  switch (node.kind()) {
    case OpKind::kScan: {
      const size_t slot = table_slot(node.table());
      if (slot == EncodingLayout::npos) {
        return Status::InvalidArgument("table outside encoding layout: " +
                                       node.table());
      }
      row[layout.table_offset() + slot] = 1.0f;
      return Status::OK();
    }
    case OpKind::kJoin:
    case OpKind::kSelect: {
      const Comparison& predicate = node.predicate();
      const auto normalized = NormalizeComparison(predicate);
      const bool is_join = node.kind() == OpKind::kJoin;
      if (is_join) {
        row[layout.join_type_offset() + JoinTypeIndex(node.join_type())] = 1.0f;
      }
      if (!normalized.has_value()) {
        // Outside the linear fragment: best-effort encoding of the first
        // referenced column and the operator. Deterministic, never fails.
        std::vector<ColumnRef> columns;
        predicate.CollectColumns(&columns);
        if (!columns.empty()) {
          const size_t slot = column_slot(columns[0]);
          if (slot != EncodingLayout::npos) {
            row[layout.select_col_offset() + slot] = 1.0f;
          }
        }
        row[layout.select_op_offset() + CompareOpIndex(predicate.op)] = 1.0f;
        row[layout.select_null_offset()] = 1.0f;
        return Status::OK();
      }
      if (normalized->left && normalized->right) {
        // Column-column predicate: join segment (for both Join nodes and
        // column-column selections hoisted above joins).
        const size_t left_slot = column_slot(*normalized->left);
        const size_t right_slot = column_slot(*normalized->right);
        if (left_slot == EncodingLayout::npos ||
            right_slot == EncodingLayout::npos) {
          return Status::InvalidArgument(
              "predicate column outside encoding layout: " +
              predicate.ToString());
        }
        row[layout.join_left_offset() + left_slot] = 1.0f;
        row[layout.join_op_offset() + CompareOpIndex(normalized->op)] = 1.0f;
        row[layout.join_right_offset() + right_slot] = 1.0f;
        // The residual constant of a difference predicate
        // (c_l - c_r op k) lands in the select norm slot so the encoding
        // distinguishes "A.v > B.v" from "A.v > B.v + 10".
        row[layout.select_norm_offset()] =
            value_range_.Normalize(normalized->constant);
        return Status::OK();
      }
      // Column-constant predicate: selection segment.
      GEQO_CHECK(normalized->left.has_value());
      const size_t slot = column_slot(*normalized->left);
      if (slot == EncodingLayout::npos) {
        return Status::InvalidArgument(
            "predicate column outside encoding layout: " +
            predicate.ToString());
      }
      row[layout.select_col_offset() + slot] = 1.0f;
      row[layout.select_op_offset() + CompareOpIndex(normalized->op)] = 1.0f;
      if (normalized->string_constant) {
        row[layout.select_norm_offset()] =
            NormalizeString(*normalized->string_constant);
      } else {
        row[layout.select_norm_offset()] =
            value_range_.Normalize(normalized->constant);
      }
      return Status::OK();
    }
    case OpKind::kProject: {
      // The paper's NV covers scan/select/join segments; we extend projection
      // nodes with a multi-hot of the projected columns in the selection
      // column segment so the EMF can distinguish different projections.
      for (const OutputColumn& output : node.outputs()) {
        std::vector<ColumnRef> columns;
        output.expr->CollectColumns(&columns);
        for (const ColumnRef& ref : columns) {
          const size_t slot = column_slot(ref);
          if (slot == EncodingLayout::npos) {
            return Status::InvalidArgument(
                "projected column outside encoding layout: " + ref.ToString());
          }
          row[layout.select_col_offset() + slot] = 1.0f;
        }
      }
      return Status::OK();
    }
    case OpKind::kAggregate: {
      // Paper §9.1: a multi-hot over the group-by columns, a one-hot (or
      // multi-hot with several aggregates) over aggregate functions, and a
      // multi-hot over aggregate-argument columns.
      for (const OutputColumn& key : node.group_by()) {
        std::vector<ColumnRef> columns;
        key.expr->CollectColumns(&columns);
        for (const ColumnRef& ref : columns) {
          const size_t slot = column_slot(ref);
          if (slot == EncodingLayout::npos) {
            return Status::InvalidArgument(
                "group-by column outside encoding layout: " + ref.ToString());
          }
          row[layout.group_by_offset() + slot] = 1.0f;
        }
      }
      for (const AggregateExpr& aggregate : node.aggregates()) {
        row[layout.agg_fn_offset() + static_cast<size_t>(aggregate.fn)] = 1.0f;
        if (aggregate.argument == nullptr) continue;  // COUNT(*)
        std::vector<ColumnRef> columns;
        aggregate.argument->CollectColumns(&columns);
        for (const ColumnRef& ref : columns) {
          const size_t slot = column_slot(ref);
          if (slot == EncodingLayout::npos) {
            return Status::InvalidArgument(
                "aggregate column outside encoding layout: " + ref.ToString());
          }
          row[layout.agg_col_offset() + slot] = 1.0f;
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown operator kind");
}

Result<EncodedPlan> PlanEncoder::Encode(const PlanPtr& plan) const {
  const auto alias_to_table = [&] {
    std::vector<std::pair<std::string, std::string>> bindings =
        plan->ScanBindings();
    return bindings;
  }();

  // Breadth-first traversal (§3.2): row order is BFS order. Each queue item
  // remembers its parent's row so child indices are assigned on dequeue.
  struct QueueItem {
    const PlanNode* node;
    int32_t parent_row;
    int child_slot;  ///< 0 = left/only child, 1 = right child
  };
  std::vector<const PlanNode*> order;
  std::vector<int32_t> left;
  std::vector<int32_t> right;
  std::deque<QueueItem> queue = {{plan.get(), -1, 0}};
  while (!queue.empty()) {
    const QueueItem item = queue.front();
    queue.pop_front();
    const int32_t row = static_cast<int32_t>(order.size());
    order.push_back(item.node);
    left.push_back(-1);
    right.push_back(-1);
    if (item.parent_row >= 0) {
      (item.child_slot == 0 ? left : right)[item.parent_row] = row;
    }
    for (size_t c = 0; c < item.node->num_children(); ++c) {
      queue.push_back(
          QueueItem{item.node->child(c).get(), row, static_cast<int>(c)});
    }
  }

  EncodedPlan encoded;
  encoded.nodes = Tensor(order.size(), layout_->node_vector_size());
  encoded.left = std::move(left);
  encoded.right = std::move(right);
  for (size_t i = 0; i < order.size(); ++i) {
    GEQO_RETURN_NOT_OK(
        EncodeNode(*order[i], alias_to_table, encoded.nodes.Row(i)));
  }
  return encoded;
}

nn::TreeBatch BuildTreeBatch(const std::vector<const EncodedPlan*>& plans) {
  GEQO_CHECK(!plans.empty());
  size_t total_nodes = 0;
  const size_t dim = plans[0]->nodes.cols();
  for (const EncodedPlan* plan : plans) {
    GEQO_CHECK(plan->nodes.cols() == dim);
    total_nodes += plan->num_nodes();
  }
  nn::TreeBatch batch;
  batch.nodes = Tensor(total_nodes, dim);
  batch.left.reserve(total_nodes);
  batch.right.reserve(total_nodes);
  size_t offset = 0;
  for (const EncodedPlan* plan : plans) {
    const size_t count = plan->num_nodes();
    std::copy(plan->nodes.data(), plan->nodes.data() + plan->nodes.size(),
              batch.nodes.Row(offset));
    for (size_t i = 0; i < count; ++i) {
      batch.left.push_back(plan->left[i] < 0
                               ? -1
                               : plan->left[i] + static_cast<int32_t>(offset));
      batch.right.push_back(
          plan->right[i] < 0 ? -1
                             : plan->right[i] + static_cast<int32_t>(offset));
    }
    batch.spans.emplace_back(offset, count);
    offset += count;
  }
  return batch;
}

}  // namespace geqo
