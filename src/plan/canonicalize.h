#pragma once

#include <optional>

#include "plan/plan.h"

/// \file canonicalize.h
/// Plan canonicalization (§3.1): constant folding inside predicates and
/// projections, plus elimination of vacuously true selections. Conjunctive
/// predicates are already split — each Select/Join node carries exactly one
/// atomic comparison by construction (the parser stacks Select nodes).

namespace geqo {

/// \brief Returns the canonical form of \p plan:
///   - every expression is constant-folded (A.x > 10 + 5  =>  A.x > 15);
///   - selections whose predicate folds to a constant true are removed;
///   - selections folding to constant false are retained (removing them
///     would change semantics; the verifier handles them via infeasibility).
PlanPtr Canonicalize(const PlanPtr& plan);

/// \brief Counts the selection/join predicates in \p plan.
size_t CountPredicates(const PlanPtr& plan);

/// \brief Evaluates `lhs op rhs` when both sides fold to literals of
/// comparable types; nullopt otherwise. Used by the canonicalizer (dropping
/// vacuous selections) and the verifier (constant join predicates).
std::optional<bool> TryEvaluateComparison(const Comparison& cmp);

}  // namespace geqo
