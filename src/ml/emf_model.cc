#include "ml/emf_model.h"

#include <cmath>

namespace geqo::ml {

EmfModel::EmfModel(EmfModelOptions options)
    : options_(options),
      rng_(options.seed),
      conv1_(options.input_dim, options.conv1_size, &rng_),
      bn1_(options.conv1_size),
      act1_(options.conv1_size),
      conv2_(options.conv1_size, options.conv2_size, &rng_),
      bn2_(options.conv2_size),
      act2_(options.conv2_size),
      fc1_(options.conv2_size * 3, options.fc1_size, &rng_),
      act3_(options.fc1_size),
      drop1_(options.dropout, &rng_),
      fc2_(options.fc1_size, options.fc2_size, &rng_),
      act4_(options.fc2_size),
      drop2_(options.dropout, &rng_),
      fc3_(options.fc2_size, 1, &rng_) {
  GEQO_CHECK(options.input_dim > 0) << "EmfModelOptions.input_dim is required";
}

Tensor EmfModel::ForwardTrunk(const nn::TreeBatch& batch, bool training) {
  nn::TreeBatch t = conv1_.Forward(batch);
  t.nodes = bn1_.Forward(t.nodes, training);
  t.nodes = act1_.Forward(t.nodes);
  t = conv2_.Forward(t);
  t.nodes = bn2_.Forward(t.nodes, training);
  t.nodes = act2_.Forward(t.nodes);
  return pool_.Forward(t);
}

Tensor EmfModel::InferTrunk(const nn::TreeBatch& batch) const {
  nn::TreeBatch t = conv1_.Infer(batch);
  t.nodes = bn1_.Infer(t.nodes);
  t.nodes = act1_.Infer(t.nodes);
  t = conv2_.Infer(t);
  t.nodes = bn2_.Infer(t.nodes);
  t.nodes = act2_.Infer(t.nodes);
  return nn::DynamicMaxPool::Infer(t);
}

void EmfModel::BackwardTrunk(const Tensor& pooled_grad) {
  nn::TreeBatch grad = pool_.Backward(pooled_grad);
  grad.nodes = act2_.Backward(grad.nodes);
  grad.nodes = bn2_.Backward(grad.nodes);
  grad = conv2_.Backward(grad);
  grad.nodes = act1_.Backward(grad.nodes);
  grad.nodes = bn1_.Backward(grad.nodes);
  conv1_.Backward(grad);  // input gradients are discarded at the leaves
}

Tensor EmfModel::Forward(const std::vector<const EncodedPlan*>& lhs,
                         const std::vector<const EncodedPlan*>& rhs,
                         bool training) {
  GEQO_CHECK(lhs.size() == rhs.size() && !lhs.empty());
  const size_t n = lhs.size();
  last_pair_count_ = n;

  // Both sides share convolution weights: run them as one combined batch
  // [lhs trees..., rhs trees...] so layer caches stay consistent for the
  // backward pass.
  std::vector<const EncodedPlan*> combined;
  combined.reserve(2 * n);
  combined.insert(combined.end(), lhs.begin(), lhs.end());
  combined.insert(combined.end(), rhs.begin(), rhs.end());
  const nn::TreeBatch batch = BuildTreeBatch(combined);

  const Tensor pooled = ForwardTrunk(batch, training);  // [2n, h]
  const Tensor lhs_embedding = pooled.Slice(0, n);
  const Tensor rhs_embedding = pooled.Slice(n, 2 * n);
  // Head input: [e_a | e_b | |e_a - e_b|].
  const size_t h = options_.conv2_size;
  Tensor abs_diff(n, h);
  cached_diff_sign_ = Tensor(n, h);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < h; ++c) {
      const float d = lhs_embedding.At(i, c) - rhs_embedding.At(i, c);
      abs_diff.At(i, c) = std::fabs(d);
      cached_diff_sign_.At(i, c) = d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f);
    }
  }
  const Tensor concat = ops::ConcatColumns(
      ops::ConcatColumns(lhs_embedding, rhs_embedding), abs_diff);

  Tensor x = fc1_.Forward(concat);
  x = act3_.Forward(x);
  x = drop1_.Forward(x, training);
  x = fc2_.Forward(x);
  x = act4_.Forward(x);
  x = drop2_.Forward(x, training);
  return fc3_.Forward(x);
}

float EmfModel::TrainStep(const std::vector<const EncodedPlan*>& lhs,
                          const std::vector<const EncodedPlan*>& rhs,
                          const Tensor& labels, nn::Adam* optimizer) {
  optimizer->ZeroGrad();
  const Tensor logits = Forward(lhs, rhs, /*training=*/true);
  const float loss = nn::BceWithLogitsLoss(logits, labels);

  // Backward through the classifier head.
  Tensor grad = nn::BceWithLogitsGrad(logits, labels);
  grad = fc3_.Backward(grad);
  grad = drop2_.Backward(grad);
  grad = act4_.Backward(grad);
  grad = fc2_.Backward(grad);
  grad = drop1_.Backward(grad);
  grad = act3_.Backward(grad);
  grad = fc1_.Backward(grad);  // [n, 2h]

  // Split the concatenation gradient back into the combined pooled layout:
  // d e_a = g[0:h] + sign(e_a - e_b) * g[2h:3h], d e_b = g[h:2h] - same.
  const size_t n = last_pair_count_;
  const size_t h = options_.conv2_size;
  Tensor pooled_grad(2 * n, h);
  for (size_t i = 0; i < n; ++i) {
    const float* row = grad.Row(i);
    float* lhs_grad = pooled_grad.Row(i);
    float* rhs_grad = pooled_grad.Row(n + i);
    for (size_t c = 0; c < h; ++c) {
      const float diff_grad = row[2 * h + c] * cached_diff_sign_.At(i, c);
      lhs_grad[c] = row[c] + diff_grad;
      rhs_grad[c] = row[h + c] - diff_grad;
    }
  }
  BackwardTrunk(pooled_grad);
  optimizer->Step();
  return loss;
}

Tensor EmfModel::InferLogits(const std::vector<const EncodedPlan*>& lhs,
                             const std::vector<const EncodedPlan*>& rhs) const {
  GEQO_CHECK(lhs.size() == rhs.size() && !lhs.empty());
  const size_t n = lhs.size();

  // Same combined-batch layout as Forward so results match it bit for bit;
  // no caches are written, keeping this path re-entrant.
  std::vector<const EncodedPlan*> combined;
  combined.reserve(2 * n);
  combined.insert(combined.end(), lhs.begin(), lhs.end());
  combined.insert(combined.end(), rhs.begin(), rhs.end());
  const nn::TreeBatch batch = BuildTreeBatch(combined);

  const Tensor pooled = InferTrunk(batch);  // [2n, h]
  const Tensor lhs_embedding = pooled.Slice(0, n);
  const Tensor rhs_embedding = pooled.Slice(n, 2 * n);
  const size_t h = options_.conv2_size;
  Tensor abs_diff(n, h);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < h; ++c) {
      abs_diff.At(i, c) =
          std::fabs(lhs_embedding.At(i, c) - rhs_embedding.At(i, c));
    }
  }
  const Tensor concat = ops::ConcatColumns(
      ops::ConcatColumns(lhs_embedding, rhs_embedding), abs_diff);

  Tensor x = fc1_.Infer(concat);
  x = act3_.Infer(x);
  x = fc2_.Infer(x);  // dropout is the identity at inference
  x = act4_.Infer(x);
  return fc3_.Infer(x);
}

Tensor EmfModel::PredictProba(const std::vector<const EncodedPlan*>& lhs,
                              const std::vector<const EncodedPlan*>& rhs) const {
  return nn::Sigmoid(InferLogits(lhs, rhs));
}

Tensor EmfModel::Embed(const std::vector<const EncodedPlan*>& plans) const {
  GEQO_CHECK(!plans.empty());
  const nn::TreeBatch batch = BuildTreeBatch(plans);
  return InferTrunk(batch);
}

std::vector<nn::ParamRef> EmfModel::Params() {
  std::vector<nn::ParamRef> params;
  conv1_.CollectParams("conv1", &params);
  bn1_.CollectParams("bn1", &params);
  act1_.CollectParams("act1", &params);
  conv2_.CollectParams("conv2", &params);
  bn2_.CollectParams("bn2", &params);
  act2_.CollectParams("act2", &params);
  fc1_.CollectParams("fc1", &params);
  act3_.CollectParams("act3", &params);
  fc2_.CollectParams("fc2", &params);
  act4_.CollectParams("act4", &params);
  fc3_.CollectParams("fc3", &params);
  return params;
}

std::vector<nn::StateEntry> EmfModel::State() {
  std::vector<nn::StateEntry> state;
  for (const nn::ParamRef& param : Params()) {
    state.emplace_back(param.name, param.value);
  }
  state.emplace_back("bn1.running_mean", &bn1_.running_mean());
  state.emplace_back("bn1.running_var", &bn1_.running_var());
  state.emplace_back("bn2.running_mean", &bn2_.running_mean());
  state.emplace_back("bn2.running_var", &bn2_.running_var());
  return state;
}

size_t EmfModel::NumParameters() {
  size_t total = 0;
  for (const nn::ParamRef& param : Params()) total += param.value->size();
  return total;
}

}  // namespace geqo::ml
