/// \file serving_demo.cpp
/// Online serving walkthrough: streams a workload through an
/// EquivalenceCatalog with ProbeAdd — each query is checked against
/// everything seen so far, then becomes part of the catalog — closes the
/// compute-reuse loop (each probed query is served through an
/// OnlineResultCache keyed by its equivalence class, executing on the
/// vectorized engine only on a miss), and shows the durable-store
/// contract: a service stopped after half the stream and restarted from
/// its CatalogStore directory replays the remaining probes with
/// bit-identical results.
///
///   ./serving_demo                    # the full stream, uninterrupted
///   ./serving_demo --phase1 BASE      # first half into BASE.store, compact
///   ./serving_demo --phase2 BASE      # reopen the store, replay the rest
///
/// Both phases resume from catalog->size(), so a run killed mid-stream (the
/// recovery lane in scripts/check.sh arms GEQO_PERSIST_KILL_POINT=
/// "demo-probe:N" to die after N probes) reopens the same store and replays
/// only the probes whose records never reached the log. Every probe prints
/// one "PROBE ..." line; scripts/check.sh diffs those lines between the
/// uninterrupted run and the phased/killed runs to smoke-test recovery. The
/// EMF stays untrained with a wide-open funnel (as in observability_demo):
/// the demo is about the serving machinery, and the verifier keeps the
/// reported equivalences exact regardless.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/geqo_system.h"
#include "exec/result_cache.h"
#include "exec/session.h"
#include "plan/canonicalize.h"
#include "serve/persist/kill_point.h"
#include "workload/generator.h"
#include "workload/rewrite.h"
#include "workload/schemas.h"

namespace {

/// 12 generated subexpressions, then 6 rewrites of the early ones (so the
/// second half of the stream probes equivalences across the restart
/// boundary), then 4 verbatim repeats — the third visit to those classes,
/// which is when the result cache starts serving hits.
std::vector<geqo::PlanPtr> BuildStream(const geqo::Catalog& catalog) {
  geqo::Rng rng(0x5E11);
  geqo::QueryGenerator generator(&catalog, geqo::GeneratorOptions());
  geqo::Rewriter rewriter(&catalog);
  std::vector<geqo::PlanPtr> stream;
  for (size_t i = 0; i < 12; ++i) stream.push_back(generator.Generate(&rng));
  for (size_t i = 0; i < 6; ++i) {
    auto variant = rewriter.RewriteOnce(stream[i], &rng);
    GEQO_CHECK(variant.ok());
    stream.push_back(*variant);
  }
  for (size_t i = 0; i < 4; ++i) stream.push_back(stream[i]);
  return stream;
}

void PrintProbe(size_t index, const geqo::serve::ProbeAddResult& result) {
  std::string equivalents;
  for (const size_t id : result.probe.equivalent_ids) {
    if (!equivalents.empty()) equivalents += ",";
    equivalents += std::to_string(id);
  }
  std::printf(
      "PROBE %zu: id=%zu class=%zu eq=[%s] calls=%zu memo=%zu shortcuts=%zu\n",
      index, result.id, result.class_id, equivalents.c_str(),
      result.probe.verifier_calls, result.probe.memo_hits,
      result.probe.class_shortcuts);
}

void PrintSummary(const geqo::serve::EquivalenceCatalog& catalog) {
  const geqo::serve::CatalogStats& stats = catalog.stats();
  std::printf(
      "catalog: %zu entries, %zu classes, %zu memoized verdicts\n"
      "session: %llu probes, %llu verifier calls, %llu memo hits, "
      "%llu class shortcuts\n",
      catalog.size(), catalog.NumClasses(), catalog.memo_size(),
      static_cast<unsigned long long>(stats.probes),
      static_cast<unsigned long long>(stats.verifier_calls),
      static_cast<unsigned long long>(stats.memo_hits),
      static_cast<unsigned long long>(stats.class_shortcuts));
}

/// The serving side of the reuse loop: queries execute on the vectorized
/// engine unless their equivalence class already has a materialized result.
/// Costs are modeled from deterministic execution metrics (rows scanned),
/// not wall clock, so every SERVE line is reproducible run to run. The
/// cache is in-memory session state — phased runs rebuild it, which is why
/// the recovery lane diffs PROBE lines (durable catalog state), not SERVE
/// lines.
struct ReuseLoop {
  explicit ReuseLoop(const geqo::Database* database)
      : session(database), cache(/*budget_bytes=*/64 * 1024) {}

  void Serve(size_t index, const geqo::PlanPtr& plan, size_t class_id) {
    const uint64_t hash = geqo::CanonicalHash(plan);
    const Profile known = profiles.count(class_id) ? profiles[class_id]
                                                   : Profile{};
    const geqo::CacheAccess access = cache.OnQuery(
        geqo::CacheRequest{.equivalence_class = class_id,
                           .canonical_hash = hash,
                           .execution_seconds = known.modeled_seconds,
                           .result_bytes = known.bytes});
    if (access.hit) {
      std::printf("SERVE %zu: class=%zu hit bytes=%zu\n", index, class_id,
                  known.bytes);
      return;
    }
    geqo::exec::ExecMetrics metrics;
    auto rows = session.Execute(plan, &metrics);
    GEQO_CHECK(rows.ok()) << rows.status().ToString();
    Profile& profile = profiles[class_id];
    profile.modeled_seconds =
        static_cast<double>(metrics.rows_scanned) * 1e-6;
    profile.bytes = rows->ByteSize();
    std::printf("SERVE %zu: class=%zu exec rows=%zu bytes=%zu%s\n", index,
                class_id, rows->num_rows(), profile.bytes,
                access.admitted ? "" : " (not admitted)");
  }

  struct Profile {
    double modeled_seconds = 0.0;
    size_t bytes = 0;
  };
  geqo::exec::ExecutionSession session;
  geqo::OnlineResultCache cache;
  std::map<size_t, Profile> profiles;
};

/// Streams stream[catalog->size()..limit) through the catalog, printing one
/// PROBE line per query (plus one SERVE line from the reuse loop). The
/// "demo-probe" kill point fires after each fully logged probe so the
/// recovery lane can crash the process at an exact op boundary.
void RunStream(geqo::serve::EquivalenceCatalog* catalog,
               const std::vector<geqo::PlanPtr>& stream, size_t limit,
               ReuseLoop* reuse) {
  for (size_t i = catalog->size(); i < limit; ++i) {
    auto result = catalog->ProbeAdd(stream[i]);
    GEQO_CHECK(result.ok()) << result.status().ToString();
    PrintProbe(i, *result);
    reuse->Serve(i, stream[i], result->class_id);
    // Armed kills die via _exit, which skips stdio flushing — flush so the
    // recovery lane's PROBE-line diff sees everything printed before the
    // crash.
    std::fflush(stdout);
    geqo::serve::persist::KillPoint("demo-probe");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace geqo;

  const std::string mode = argc >= 2 ? argv[1] : "";
  const std::string base = argc >= 3 ? argv[2] : "";
  if (!mode.empty() && (mode != "--phase1" || base.empty()) &&
      (mode != "--phase2" || base.empty())) {
    std::fprintf(stderr, "usage: %s [--phase1 BASE | --phase2 BASE]\n",
                 argv[0]);
    return 2;
  }

  const Catalog catalog = MakeTpchCatalog();
  GeqoSystemOptions options;
  options.model.conv1_size = 32;
  options.model.conv2_size = 32;
  options.model.fc1_size = 32;
  options.model.fc2_size = 16;
  options.pipeline.vmf.radius = 6.0f;
  options.pipeline.emf.threshold = 0.0f;
  GeqoSystem system(&catalog, options);

  const std::vector<PlanPtr> stream = BuildStream(catalog);
  const size_t half = stream.size() / 2;

  // The execution substrate for the reuse loop: small synthetic TPC-H data,
  // deterministically seeded so SERVE lines are stable across runs.
  DataGenOptions data_options;
  data_options.default_rows = 60;
  data_options.key_cardinality = 12;
  data_options.seed = 0xDE40;
  const Database database = Database::Generate(catalog, data_options);
  ReuseLoop reuse(&database);

  if (mode == "--phase1") {
    // First half into a durable store. Compact() at the end folds the log
    // into a base segment, so phase2 recovers base + log tail rather than a
    // pure log replay.
    auto store = system.OpenCatalogStore(base + ".store", stream);
    GEQO_CHECK(store.ok()) << store.status().ToString();
    RunStream((*store)->catalog(), stream, half, &reuse);
    GEQO_CHECK_OK(system.SaveSnapshot(base + ".system"));
    GEQO_CHECK_OK((*store)->Checkpoint());
    GEQO_CHECK_OK((*store)->Compact());
    std::printf("durable state written: %s.system, %s.store\n", base.c_str(),
                base.c_str());
    PrintSummary(*(*store)->catalog());
    GEQO_CHECK_OK((*store)->Close());
    return 0;
  }

  if (mode == "--phase2") {
    // Restart: restore the system (weights + calibration), reopen the store
    // (base import + log replay), then resume the stream wherever the
    // recovered catalog left off.
    GEQO_CHECK_OK(system.LoadSnapshot(base + ".system"));
    auto store = system.OpenCatalogStore(base + ".store", stream);
    GEQO_CHECK(store.ok()) << store.status().ToString();
    RunStream((*store)->catalog(), stream, stream.size(), &reuse);
    PrintSummary(*(*store)->catalog());
    GEQO_CHECK_OK((*store)->Close());
    return 0;
  }

  auto serving = system.OpenCatalog();
  RunStream(serving.get(), stream, stream.size(), &reuse);
  PrintSummary(*serving);
  return 0;
}
