#pragma once

#include "common/rng.h"
#include "plan/schema.h"

/// \file schemas.h
/// Benchmark schemas for workload generation: simplified TPC-H and TPC-DS
/// catalogs (the paper's evaluation schemas, §7) and a random-schema
/// generator for the transfer-learning study (Table 4).
///
/// The catalogs carry the tables, the numeric columns predicates range
/// over, and the PK/FK join keys the generator builds equi-joins from.
/// Column lists are trimmed to the attributes analytic subexpressions
/// actually touch; this affects only encoding-layout width, not behaviour.

namespace geqo {

/// \brief Simplified TPC-H catalog (8 tables).
Catalog MakeTpchCatalog();

/// \brief Simplified TPC-DS catalog (12 tables around the store/catalog/web
/// sales fact tables).
Catalog MakeTpcdsCatalog();

/// \brief Options for random schema synthesis (Table 4's "randomly-generated
/// schema" datasets).
struct RandomSchemaOptions {
  size_t num_tables = 6;
  size_t min_columns = 3;
  size_t max_columns = 7;
  double string_column_fraction = 0.2;
  size_t num_join_keys = 8;
};

/// \brief Generates a random catalog with joinable tables.
Catalog MakeRandomCatalog(const RandomSchemaOptions& options, Rng* rng);

}  // namespace geqo
