#include "serve/equivalence_catalog.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/plan_validator.h"
#include "common/binary_io.h"
#include "common/checksum_io.h"
#include "common/format_magic.h"
#include "common/stopwatch.h"
#include "filters/emf_filter.h"
#include "filters/vmf.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/stage_scope.h"
#include "plan/canonicalize.h"
#include "workload/labeled_data.h"

namespace geqo::serve {

namespace {

double SumStageSeconds(const std::vector<StageReport>& stages) {
  double total = 0.0;
  for (const StageReport& stage : stages) total += stage.seconds;
  return total;
}

}  // namespace

std::string_view MatchVerdictToString(MatchVerdict verdict) {
  switch (verdict) {
    case MatchVerdict::kProven:
      return "proven";
    case MatchVerdict::kLikely:
      return "likely";
    case MatchVerdict::kRefuted:
      return "refuted";
  }
  return "invalid";
}

EquivalenceCatalog::EquivalenceCatalog(const Catalog* db_catalog,
                                       ml::EmfModel* model,
                                       const EncodingLayout* instance_layout,
                                       const EncodingLayout* agnostic_layout,
                                       ValueRange value_range,
                                       CatalogOptions options)
    : db_catalog_(db_catalog),
      model_(model),
      instance_layout_(instance_layout),
      agnostic_layout_(agnostic_layout),
      value_range_(value_range),
      options_(options),
      options_status_(options.Validate()),
      verifier_(db_catalog, options.pipeline.verifier) {
  // Only build the index once the options are known-valid (the HnswIndex
  // constructor enforces its parameters with aborts, not Status).
  if (options_status_.ok()) {
    index_ = std::make_unique<ann::HnswIndex>(model_->embedding_dim(),
                                              options_.pipeline.vmf.hnsw);
  }
}

std::vector<size_t> EquivalenceCatalog::ClassMembers(size_t id) const {
  const size_t root = classes_.Find(id);
  std::vector<size_t> members;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (classes_.Find(i) == root) members.push_back(i);
  }
  return members;
}

Result<EquivalenceCatalog::QueryContext> EquivalenceCatalog::PrepareQuery(
    const PlanPtr& plan) const {
  QueryContext query;
  query.plan = plan;
  // Canonicalize exactly once: both hashes and the debug fixed-point check
  // below consume the same canonical form.
  const PlanPtr canonical = Canonicalize(plan);
  // Debug-gated boundary checks: the incoming plan must be valid, and its
  // canonical form must be a Canonicalize fixed point (the canonical hash
  // below is only meaningful if canonicalization is idempotent).
  if (analysis::DebugValidationEnabled()) {
    analysis::DebugValidatePlan(plan, *db_catalog_, "serve.PrepareQuery");
    analysis::DebugValidateCanonical(canonical, *db_catalog_,
                                     "serve.PrepareQuery/canonical");
  }
  query.canonical_hash = canonical->Hash();
  query.check_hash = CanonicalCheckHash(canonical);
  GEQO_ASSIGN_OR_RETURN(query.signature, SchemaSignature(plan, *db_catalog_));
  GEQO_ASSIGN_OR_RETURN(
      std::vector<EncodedPlan> encoded,
      EncodeWorkload({plan}, *instance_layout_, *db_catalog_, value_range_));
  query.encoded = std::move(encoded[0]);
  return query;
}

void EquivalenceCatalog::UpdateGauges() const {
  if (!obs::MetricsEnabled()) return;
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("serve.index_size").Set(static_cast<double>(size()));
  registry.GetGauge("serve.classes").Set(static_cast<double>(NumClasses()));
  registry.GetGauge("serve.memo_size").Set(static_cast<double>(memo_.size()));
}

Result<size_t> EquivalenceCatalog::Add(const PlanPtr& plan) {
  GEQO_RETURN_NOT_OK(options_status_);
  obs::Span span("serve.Add");
  GEQO_ASSIGN_OR_RETURN(QueryContext query, PrepareQuery(plan));
  return AddPrepared(std::move(query));
}

Result<std::vector<float>> EquivalenceCatalog::EmbedQuery(
    const QueryContext& query) const {
  // The embedding uses the singleton agnostic map (see EmbedSingle): it
  // depends only on the plan, so it is computed exactly once per entry for
  // the catalog's whole lifetime, across any number of later Adds.
  const VectorMatchingFilter vmf(model_, instance_layout_, agnostic_layout_,
                                 options_.pipeline.vmf);
  return vmf.EmbedSingle(query.encoded);
}

Result<size_t> EquivalenceCatalog::AddPrepared(QueryContext query) {
  GEQO_ASSIGN_OR_RETURN(const std::vector<float> embedding, EmbedQuery(query));
  return AddWithEmbedding(std::move(query), embedding);
}

Result<size_t> EquivalenceCatalog::AddWithEmbedding(
    QueryContext query, const std::vector<float>& embedding) {
  const size_t id = index_->Add(embedding);
  GEQO_CHECK(id == entries_.size());
  sf_groups_[query.signature].push_back(id);
  entries_.push_back(Entry{std::move(query.plan), query.canonical_hash,
                           query.check_hash, std::move(query.encoded)});
  const size_t class_id = classes_.Add();
  GEQO_CHECK(class_id == id);
  // Journal after the in-memory commit: the hashes are what replay needs to
  // re-derive (and verify) this entry from its plan.
  if (journal_ != nullptr) {
    journal_->OnAdd(0, id, query.canonical_hash, query.check_hash);
  }
  ++stats_.adds;
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().GetCounter("serve.adds").Add(1);
    UpdateGauges();
  }
  return id;
}

Result<ProbeResult> EquivalenceCatalog::Probe(const PlanPtr& plan) {
  GEQO_RETURN_NOT_OK(options_status_);
  // The span and the stage clock start here, before PrepareQuery does its
  // (non-trivial) canonicalize/encode work — a probe's reported latency is
  // the full entry-to-exit cost.
  obs::Span span("serve.Probe");
  StageReport prepare = MakeStage("prepare", true);
  StageScope prepare_scope("serve.prepare");
  Result<QueryContext> query = PrepareQuery(plan);
  GEQO_RETURN_NOT_OK(query.status());
  prepare.pairs_in = 1;
  prepare.pairs_out = 1;
  prepare_scope.Finish(&prepare);
  return ProbePrepared(*query, std::move(prepare));
}

EquivalenceVerdict EquivalenceCatalog::VerdictFor(const QueryContext& query,
                                                  size_t id,
                                                  ProbeResult* result) {
  const Entry& entry = entries_[id];
  const CheckedPair memo_key =
      MakeCheckedPair(query.canonical_hash, query.check_hash,
                      entry.canonical_hash, entry.check_hash);
  const VerifierMemo::LookupOutcome memoized =
      memo_.Lookup(memo_key.key, memo_key.check);
  if (memoized.collision) ++stats_.memo_collisions;
  if (memoized.verdict) {
    ++stats_.memo_hits;
    ++result->memo_hits;
    return *memoized.verdict;
  }
  ++stats_.verifier_calls;
  ++result->verifier_calls;
  const EquivalenceVerdict verdict =
      verifier_.CheckEquivalence(query.plan, entry.plan);
  memo_.Insert(memo_key.key, memo_key.check, verdict);
  if (journal_ != nullptr) {
    journal_->OnVerdict(0, memo_key.key.lo, memo_key.key.hi, memo_key.check.lo,
                        memo_key.check.hi, static_cast<uint8_t>(verdict));
  }
  return verdict;
}

Result<EquivalenceCatalog::FilterOutcome> EquivalenceCatalog::RunFilters(
    const QueryContext& query, std::vector<StageReport>* stages) const {
  const GeqoOptions& opt = options_.pipeline;
  FilterOutcome out;

  // Stage 1: schema filter via the incremental signature map — O(log groups)
  // instead of re-grouping the workload.
  StageReport sf_report = MakeStage("sf", opt.use_sf);
  StageScope sf_scope("serve.sf");
  std::vector<size_t> pool;
  if (opt.use_sf) {
    const auto it = sf_groups_.find(query.signature);
    if (it != sf_groups_.end()) pool = it->second;
  } else {
    pool.resize(entries_.size());
    for (size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  }
  sf_report.pairs_in = entries_.size();
  sf_report.pairs_out = pool.size();
  sf_scope.Finish(&sf_report);
  stages->push_back(std::move(sf_report));

  // Stage 2: VMF as one radius search of the shared persistent index,
  // intersected with the SF pool.
  StageReport vmf_report = MakeStage("vmf", opt.use_vmf);
  StageScope vmf_scope("serve.vmf");
  std::vector<size_t> candidates;
  if (opt.use_vmf && !pool.empty()) {
    const VectorMatchingFilter vmf(model_, instance_layout_, agnostic_layout_,
                                   opt.vmf);
    GEQO_ASSIGN_OR_RETURN(const std::vector<float> embedding,
                          vmf.EmbedSingle(query.encoded));
    std::vector<size_t> hits;
    for (const ann::Neighbor& neighbor :
         index_->SearchRadius(embedding.data(), opt.vmf.radius)) {
      hits.push_back(neighbor.id);
    }
    std::sort(hits.begin(), hits.end());
    std::set_intersection(pool.begin(), pool.end(), hits.begin(), hits.end(),
                          std::back_inserter(candidates));
  } else {
    candidates = pool;
  }
  vmf_report.pairs_in = pool.size();
  vmf_report.pairs_out = candidates.size();
  vmf_scope.Finish(&vmf_report);
  stages->push_back(std::move(vmf_report));

  // Stage 3: EMF scoring of (query, entry) pairs — slot 0 is the query, the
  // entries are viewed in place. Survivors keep their score (1.0 when the
  // stage is disabled) for the async path's Likely classification.
  StageReport emf_report = MakeStage("emf", opt.use_emf);
  StageScope emf_scope("serve.emf");
  emf_report.pairs_in = candidates.size();
  std::vector<float> survivor_scores;
  if (opt.use_emf && !candidates.empty()) {
    const EquivalenceModelFilter emf(model_, instance_layout_,
                                     agnostic_layout_, opt.emf);
    std::vector<const EncodedPlan*> views;
    views.reserve(candidates.size() + 1);
    views.push_back(&query.encoded);
    std::vector<std::pair<size_t, size_t>> pairs;
    pairs.reserve(candidates.size());
    for (size_t k = 0; k < candidates.size(); ++k) {
      views.push_back(&entries_[candidates[k]].encoded);
      pairs.emplace_back(0, k + 1);
    }
    GEQO_ASSIGN_OR_RETURN(const std::vector<float> scores,
                          emf.Scores(pairs, views));
    std::vector<size_t> surviving;
    for (size_t k = 0; k < candidates.size(); ++k) {
      if (scores[k] >= opt.emf.threshold) {
        surviving.push_back(candidates[k]);
        survivor_scores.push_back(scores[k]);
      }
    }
    candidates = std::move(surviving);
  } else {
    survivor_scores.assign(candidates.size(), 1.0f);
  }
  emf_report.pairs_out = candidates.size();
  emf_scope.Finish(&emf_report);
  stages->push_back(std::move(emf_report));

  out.candidates = std::move(candidates);
  out.scores = std::move(survivor_scores);
  return out;
}

Result<ProbeResult> EquivalenceCatalog::ProbePrepared(const QueryContext& query,
                                                      StageReport prepare) {
  ProbeResult result;
  result.stages.push_back(std::move(prepare));
  ++stats_.probes;
  const GeqoOptions& opt = options_.pipeline;

  GEQO_ASSIGN_OR_RETURN(FilterOutcome filtered,
                        RunFilters(query, &result.stages));
  std::vector<size_t>& candidates = filtered.candidates;
  result.candidate_ids = candidates;

  // Stage 4: verification, memo-first and class-at-a-time. Candidates are
  // grouped by equivalence class; the representative (the class's oldest
  // member) is decided first. A proof adopts the entire class and a
  // refutation rejects it — members are mutually proven equivalent, so
  // either verdict transfers — and only a kUnknown (budget exhaustion /
  // unsupported fragment) falls back to the class's individual survivors.
  StageReport verify_report = MakeStage("verify", opt.run_verifier);
  StageScope verify_scope("serve.verify");
  std::vector<size_t> equivalent;
  std::vector<size_t> proven_roots;
  if (!opt.run_verifier) {
    // Batch-pipeline parity: without the verifier, the filter survivors are
    // reported as (approximate) equivalences.
    equivalent = candidates;
    for (const size_t id : candidates) {
      proven_roots.push_back(classes_.Find(id));
    }
  } else if (!candidates.empty()) {
    const VerifierStats before = verifier_.stats();
    std::map<size_t, std::vector<size_t>> by_class;
    for (const size_t id : candidates) {
      by_class[classes_.Find(id)].push_back(id);
    }
    for (const auto& [root, class_candidates] : by_class) {
      size_t lookups = 1;
      EquivalenceVerdict verdict = VerdictFor(query, root, &result);
      if (verdict == EquivalenceVerdict::kUnknown) {
        // The representative was inconclusive; any surviving member can
        // still decide the class (q ~ member and member ~ root compose).
        for (const size_t id : class_candidates) {
          if (id == root) continue;
          ++lookups;
          verdict = VerdictFor(query, id, &result);
          if (verdict != EquivalenceVerdict::kUnknown) break;
        }
      }
      if (verdict == EquivalenceVerdict::kEquivalent) {
        const std::vector<size_t> members = ClassMembers(root);
        equivalent.insert(equivalent.end(), members.begin(), members.end());
        proven_roots.push_back(root);
        if (members.size() > lookups) {
          const size_t shortcuts = members.size() - lookups;
          result.class_shortcuts += shortcuts;
          stats_.class_shortcuts += shortcuts;
        }
      } else if (verdict == EquivalenceVerdict::kNotEquivalent &&
                 class_candidates.size() > lookups) {
        const size_t shortcuts = class_candidates.size() - lookups;
        result.class_shortcuts += shortcuts;
        stats_.class_shortcuts += shortcuts;
      }
    }
    FoldVerifierStatsToMetrics(verifier_.stats().DeltaSince(before));
  }
  std::sort(equivalent.begin(), equivalent.end());
  equivalent.erase(std::unique(equivalent.begin(), equivalent.end()),
                   equivalent.end());
  result.equivalent_ids = std::move(equivalent);
  if (!proven_roots.empty()) {
    result.representative =
        *std::min_element(proven_roots.begin(), proven_roots.end());
  }
  verify_report.pairs_in = result.candidate_ids.size();
  verify_report.pairs_out = result.equivalent_ids.size();
  verify_scope.Finish(&verify_report);
  result.stages.push_back(std::move(verify_report));

  // The reported latency is the stage sum (prepare included) — the same
  // convention as GeqoResult::total_seconds, so stage accounting always
  // explains the whole number.
  result.seconds = SumStageSeconds(result.stages);
  if (obs::MetricsEnabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("serve.probes").Add(1);
    registry.GetCounter("serve.verifier_calls").Add(result.verifier_calls);
    registry.GetCounter("serve.memo_hits").Add(result.memo_hits);
    registry.GetCounter("serve.class_shortcuts").Add(result.class_shortcuts);
    registry.GetHistogram("serve.probe_seconds").Observe(result.seconds);
    UpdateGauges();
  }
  return result;
}

Result<EquivalenceCatalog::ReadProbeResult> EquivalenceCatalog::ProbeReadOnly(
    const QueryContext& query) const {
  GEQO_RETURN_NOT_OK(options_status_);
  const GeqoOptions& opt = options_.pipeline;
  ReadProbeResult result;
  GEQO_ASSIGN_OR_RETURN(FilterOutcome filtered,
                        RunFilters(query, &result.stages));

  // Stage 4 (read-only): classify each survivor from the memo and the class
  // forest alone. Proven/Refuted verdicts are final; everything else is
  // Likely, and classes with at least one un-memoized pair go on the pending
  // agenda for the async verifier plane. No verifier call, no mutation.
  StageReport classify = MakeStage("classify", opt.run_verifier);
  StageScope classify_scope("serve.classify");
  classify.pairs_in = filtered.candidates.size();
  std::map<size_t, float> score_of;
  for (size_t k = 0; k < filtered.candidates.size(); ++k) {
    score_of[filtered.candidates[k]] = filtered.scores[k];
  }
  std::vector<size_t> proven_roots;
  if (!opt.run_verifier) {
    // Batch-pipeline parity: without the verifier, the filter survivors are
    // the (approximate) equivalences — final, nothing pending.
    for (const size_t id : filtered.candidates) {
      result.matches.push_back(
          ProbeMatch{id, MatchVerdict::kProven, score_of[id]});
      result.proven_ids.push_back(id);
      proven_roots.push_back(classes_.Find(id));
    }
  } else if (!filtered.candidates.empty()) {
    std::map<size_t, std::vector<size_t>> by_class;
    for (const size_t id : filtered.candidates) {
      by_class[classes_.Find(id)].push_back(id);
    }
    for (const auto& [root, class_candidates] : by_class) {
      // Replay the sync path's agenda — root first, then the surviving
      // members — against the memo only. The first decisive memoized
      // verdict settles the class; a miss or a detected collision defers
      // the whole class to the async plane.
      std::vector<size_t> agenda;
      agenda.push_back(root);
      for (const size_t id : class_candidates) {
        if (id != root) agenda.push_back(id);
      }
      std::optional<EquivalenceVerdict> decision;
      bool needs_verify = false;
      size_t lookups = 0;
      for (const size_t id : agenda) {
        const Entry& entry = entries_[id];
        const CheckedPair memo_key =
            MakeCheckedPair(query.canonical_hash, query.check_hash,
                            entry.canonical_hash, entry.check_hash);
        const VerifierMemo::LookupOutcome memoized =
            memo_.Lookup(memo_key.key, memo_key.check);
        if (memoized.collision) ++result.collisions;
        if (!memoized.verdict) {
          needs_verify = true;
          break;
        }
        ++result.memo_hits;
        ++lookups;
        if (*memoized.verdict != EquivalenceVerdict::kUnknown) {
          decision = *memoized.verdict;
          break;
        }
      }
      MatchVerdict match_verdict = MatchVerdict::kLikely;
      if (needs_verify) {
        result.pending.push_back(ClassDecision{root, std::move(agenda)});
      } else if (decision == EquivalenceVerdict::kEquivalent) {
        match_verdict = MatchVerdict::kProven;
        proven_roots.push_back(root);
        const std::vector<size_t> members = ClassMembers(root);
        result.proven_ids.insert(result.proven_ids.end(), members.begin(),
                                 members.end());
        if (members.size() > lookups) {
          result.class_shortcuts += members.size() - lookups;
        }
      } else if (decision == EquivalenceVerdict::kNotEquivalent) {
        match_verdict = MatchVerdict::kRefuted;
        if (class_candidates.size() > lookups) {
          result.class_shortcuts += class_candidates.size() - lookups;
        }
      }
      // decision absent with nothing pending: every agenda pair is memoized
      // kUnknown — the verifier already gave up on this class, so it stays
      // Likely forever (the async plane would re-derive exactly that).
      for (const size_t id : class_candidates) {
        result.matches.push_back(ProbeMatch{id, match_verdict, score_of[id]});
      }
    }
  }
  std::sort(result.matches.begin(), result.matches.end(),
            [](const ProbeMatch& a, const ProbeMatch& b) { return a.id < b.id; });
  std::sort(result.proven_ids.begin(), result.proven_ids.end());
  result.proven_ids.erase(
      std::unique(result.proven_ids.begin(), result.proven_ids.end()),
      result.proven_ids.end());
  if (!proven_roots.empty()) {
    result.representative =
        *std::min_element(proven_roots.begin(), proven_roots.end());
  }
  classify.pairs_out = result.matches.size();
  classify_scope.Finish(&classify);
  result.stages.push_back(std::move(classify));
  return result;
}

Result<ProbeAddResult> EquivalenceCatalog::ProbeAdd(const PlanPtr& plan) {
  GEQO_RETURN_NOT_OK(options_status_);
  // Span + stage clock at entry, same as Probe: PrepareQuery's cost belongs
  // to this call's reported latency.
  obs::Span span("serve.ProbeAdd");
  StageReport prepare = MakeStage("prepare", true);
  StageScope prepare_scope("serve.prepare");
  Result<QueryContext> prepared = PrepareQuery(plan);
  GEQO_RETURN_NOT_OK(prepared.status());
  prepare.pairs_in = 1;
  prepare.pairs_out = 1;
  prepare_scope.Finish(&prepare);
  QueryContext query = std::move(*prepared);
  GEQO_ASSIGN_OR_RETURN(ProbeResult probe,
                        ProbePrepared(query, std::move(prepare)));
  // Collect the classes to join before inserting (the new entry's own
  // singleton class would otherwise show up in the scan).
  std::set<size_t> roots;
  for (const size_t id : probe.equivalent_ids) roots.insert(classes_.Find(id));
  GEQO_ASSIGN_OR_RETURN(const size_t id, AddPrepared(std::move(query)));
  for (const size_t root : roots) {
    if (classes_.Union(id, root)) {
      ++stats_.unions;
      if (journal_ != nullptr) journal_->OnUnion(0, id, root);
    }
  }
  if (obs::MetricsEnabled()) UpdateGauges();
  ProbeAddResult result;
  result.probe = std::move(probe);
  result.id = id;
  result.class_id = classes_.Find(id);
  return result;
}

Status EquivalenceCatalog::ExportSnapshot(std::ostream& os) const {
  GEQO_RETURN_NOT_OK(options_status_);
  // Buffer the payload so the v2 checksum footer can cover it whole.
  std::ostringstream payload;
  io::BinaryWriter writer(payload, "catalog snapshot");
  writer.U64(io::kCatalogMagic);
  writer.U64(io::kCatalogVersion);
  writer.U64(CatalogFingerprint(*db_catalog_));
  writer.U64(model_->embedding_dim());
  writer.U64(entries_.size());
  for (const Entry& entry : entries_) writer.U64(entry.canonical_hash);
  GEQO_RETURN_NOT_OK(writer.status());
  GEQO_RETURN_NOT_OK(index_->Serialize(payload));
  for (const size_t parent : classes_.CompressedParents()) {
    writer.U64(parent);
  }
  memo_.Serialize(writer);
  writer.U64(io::kCatalogEndMagic);
  GEQO_RETURN_NOT_OK(writer.status());
  return io::WriteChecksummed(os, payload.str(), "catalog snapshot");
}

Result<std::unique_ptr<EquivalenceCatalog>> EquivalenceCatalog::ImportSnapshot(
    std::istream& is, const Catalog* db_catalog, ml::EmfModel* model,
    const EncodingLayout* instance_layout,
    const EncodingLayout* agnostic_layout, ValueRange value_range,
    const std::vector<PlanPtr>& plans, CatalogOptions options) {
  // The v2 footer checksums the whole payload: corruption anywhere —
  // including trailing bytes after the end marker — fails here, before any
  // section is interpreted.
  GEQO_ASSIGN_OR_RETURN(const std::string payload,
                        io::ReadChecksummed(is, "catalog snapshot"));
  std::istringstream stream(payload);
  io::BinaryReader reader(stream, "catalog snapshot");
  const uint64_t magic = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (magic != io::kCatalogMagic) {
    return Status::InvalidArgument(
        "catalog snapshot: bad magic (not a catalog snapshot)");
  }
  const uint64_t version = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (version != io::kCatalogVersion) {
    return Status::InvalidArgument(
        "catalog snapshot: unsupported version " + std::to_string(version) +
        " (expected " + std::to_string(io::kCatalogVersion) + ")");
  }
  const uint64_t saved_fingerprint = reader.U64();
  const uint64_t saved_dim = reader.U64();
  const uint64_t count = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  const uint64_t expected_fingerprint = CatalogFingerprint(*db_catalog);
  if (saved_fingerprint != expected_fingerprint) {
    return Status::InvalidArgument(
        "catalog snapshot: database schema fingerprint mismatch (snapshot " +
        std::to_string(saved_fingerprint) + ", current " +
        std::to_string(expected_fingerprint) +
        ") — the snapshot was built against a different catalog");
  }
  if (saved_dim != model->embedding_dim()) {
    return Status::InvalidArgument(
        "catalog snapshot: embedding dim mismatch (snapshot " +
        std::to_string(saved_dim) + ", model " +
        std::to_string(model->embedding_dim()) + ")");
  }
  if (count != plans.size()) {
    return Status::InvalidArgument(
        "catalog snapshot: entry count mismatch (snapshot " +
        std::to_string(count) + ", caller supplied " +
        std::to_string(plans.size()) + " plans)");
  }
  std::vector<uint64_t> hashes(count);
  for (auto& hash : hashes) hash = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());

  auto catalog = std::make_unique<EquivalenceCatalog>(
      db_catalog, model, instance_layout, agnostic_layout, value_range,
      options);
  GEQO_RETURN_NOT_OK(catalog->options_status_);
  // Re-derive only the cheap per-entry state (signature, instance encoding,
  // the two canonical hashes); embeddings come from the serialized index
  // below and memoized verdicts from the memo section — nothing is
  // re-embedded or re-proved.
  for (size_t i = 0; i < plans.size(); ++i) {
    GEQO_ASSIGN_OR_RETURN(QueryContext query,
                          catalog->PrepareQuery(plans[i]));
    if (query.canonical_hash != hashes[i]) {
      return Status::InvalidArgument(
          "catalog snapshot: plan " + std::to_string(i) +
          " does not match the snapshot (canonical hash " +
          std::to_string(query.canonical_hash) + ", snapshot expects " +
          std::to_string(hashes[i]) + ") — plans must be passed in Add order");
    }
    catalog->sf_groups_[query.signature].push_back(i);
    catalog->entries_.push_back(Entry{std::move(query.plan),
                                      query.canonical_hash, query.check_hash,
                                      std::move(query.encoded)});
  }
  GEQO_ASSIGN_OR_RETURN(catalog->index_, ann::HnswIndex::Deserialize(stream));
  if (catalog->index_->size() != count) {
    return Status::InvalidArgument(
        "catalog snapshot: index holds " +
        std::to_string(catalog->index_->size()) + " vectors for " +
        std::to_string(count) + " entries (corrupt snapshot)");
  }
  if (catalog->index_->dim() != saved_dim) {
    return Status::InvalidArgument(
        "catalog snapshot: index dim does not match header (corrupt "
        "snapshot)");
  }
  std::vector<size_t> parents(count);
  for (auto& parent : parents) parent = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  GEQO_RETURN_NOT_OK(catalog->classes_.Restore(std::move(parents)));
  GEQO_RETURN_NOT_OK(catalog->memo_.Deserialize(reader));
  if (reader.U64() != io::kCatalogEndMagic) {
    reader.Fail("missing end marker");
  }
  GEQO_RETURN_NOT_OK(reader.status());
  if (!reader.AtEof()) {
    return Status::InvalidArgument(
        "catalog snapshot: trailing bytes after end marker (corrupt "
        "snapshot)");
  }
  if (obs::MetricsEnabled()) catalog->UpdateGauges();
  return catalog;
}

}  // namespace geqo::serve
