#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace geqo::ml {
namespace {

/// Candidate thresholds drawn per selected feature (extra-trees style
/// randomized thresholds: fast, no per-node sorting, and competitive with
/// exhaustive splits at forest sizes used here).
constexpr size_t kThresholdsPerFeature = 8;

/// Gini impurity of a split given class counts.
double SplitGini(size_t left_total, size_t left_pos, size_t right_total,
                 size_t right_pos) {
  auto gini = [](size_t total, size_t positives) {
    if (total == 0) return 0.0;
    const double p = static_cast<double>(positives) / static_cast<double>(total);
    return 2.0 * p * (1.0 - p);
  };
  const double n = static_cast<double>(left_total + right_total);
  return (static_cast<double>(left_total) * gini(left_total, left_pos) +
          static_cast<double>(right_total) * gini(right_total, right_pos)) /
         n;
}

}  // namespace

void RandomForest::Train(const Tensor& features, const Tensor& labels) {
  GEQO_CHECK(features.rows() == labels.rows() && labels.cols() == 1);
  const size_t n = features.rows();
  trees_.clear();
  trees_.reserve(options_.num_trees);
  Rng rng(options_.seed);

  for (size_t t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<uint32_t> indices(n);
    for (size_t i = 0; i < n; ++i) {
      indices[i] = static_cast<uint32_t>(rng.Uniform(n));
    }
    Tree tree;
    Rng tree_rng = rng.Fork();
    BuildNode(&tree, features, labels, indices, 0, n, 0, &tree_rng);
    trees_.push_back(std::move(tree));
  }
}

int32_t RandomForest::BuildNode(Tree* tree, const Tensor& features,
                                const Tensor& labels,
                                std::vector<uint32_t>& indices, size_t begin,
                                size_t end, size_t depth, Rng* rng) {
  const size_t count = end - begin;
  size_t positives = 0;
  for (size_t i = begin; i < end; ++i) {
    positives += labels.At(indices[i], 0) > 0.5f;
  }
  const auto node_id = static_cast<int32_t>(tree->size());
  tree->push_back(TreeNode{});
  (*tree)[static_cast<size_t>(node_id)].positive_fraction =
      count == 0 ? 0.0f
                 : static_cast<float>(positives) / static_cast<float>(count);

  const bool pure = positives == 0 || positives == count;
  if (pure || depth >= options_.max_depth ||
      count < 2 * options_.min_samples_leaf) {
    return node_id;  // leaf
  }

  const size_t d = features.cols();
  const size_t features_per_split =
      options_.features_per_split > 0
          ? options_.features_per_split
          : std::max<size_t>(1, static_cast<size_t>(std::sqrt(
                                    static_cast<double>(d))));

  // Best randomized split across the sampled features.
  int32_t best_feature = -1;
  float best_threshold = 0.0f;
  double best_gini = 1.0;
  for (size_t f = 0; f < features_per_split; ++f) {
    const auto feature = static_cast<int32_t>(rng->Uniform(d));
    float lo = features.At(indices[begin], static_cast<size_t>(feature));
    float hi = lo;
    for (size_t i = begin; i < end; ++i) {
      const float v = features.At(indices[i], static_cast<size_t>(feature));
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (lo == hi) continue;  // constant feature on this node
    for (size_t k = 0; k < kThresholdsPerFeature; ++k) {
      const float threshold =
          lo + static_cast<float>(rng->NextDouble()) * (hi - lo);
      size_t left_total = 0;
      size_t left_pos = 0;
      for (size_t i = begin; i < end; ++i) {
        if (features.At(indices[i], static_cast<size_t>(feature)) <=
            threshold) {
          ++left_total;
          left_pos += labels.At(indices[i], 0) > 0.5f;
        }
      }
      const size_t right_total = count - left_total;
      if (left_total < options_.min_samples_leaf ||
          right_total < options_.min_samples_leaf) {
        continue;
      }
      const double g = SplitGini(left_total, left_pos, right_total,
                                 positives - left_pos);
      if (g < best_gini) {
        best_gini = g;
        best_feature = feature;
        best_threshold = threshold;
      }
    }
  }
  if (best_feature < 0) return node_id;  // no usable split: stay a leaf

  // Partition indices in place around the chosen split.
  const auto middle = static_cast<size_t>(
      std::partition(indices.begin() + static_cast<ptrdiff_t>(begin),
                     indices.begin() + static_cast<ptrdiff_t>(end),
                     [&](uint32_t index) {
                       return features.At(index,
                                          static_cast<size_t>(best_feature)) <=
                              best_threshold;
                     }) -
      indices.begin());

  (*tree)[static_cast<size_t>(node_id)].feature = best_feature;
  (*tree)[static_cast<size_t>(node_id)].threshold = best_threshold;
  const int32_t left =
      BuildNode(tree, features, labels, indices, begin, middle, depth + 1, rng);
  const int32_t right =
      BuildNode(tree, features, labels, indices, middle, end, depth + 1, rng);
  (*tree)[static_cast<size_t>(node_id)].left = left;
  (*tree)[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

float RandomForest::PredictTree(const Tree& tree, const float* row) {
  int32_t node = 0;
  while (tree[static_cast<size_t>(node)].feature >= 0) {
    const TreeNode& current = tree[static_cast<size_t>(node)];
    node = row[current.feature] <= current.threshold ? current.left
                                                     : current.right;
  }
  return tree[static_cast<size_t>(node)].positive_fraction;
}

std::vector<float> RandomForest::PredictProba(const Tensor& features) const {
  GEQO_CHECK(!trees_.empty()) << "RandomForest::Train must run first";
  std::vector<float> out;
  out.reserve(features.rows());
  for (size_t i = 0; i < features.rows(); ++i) {
    double sum = 0.0;
    for (const Tree& tree : trees_) sum += PredictTree(tree, features.Row(i));
    out.push_back(static_cast<float>(sum / static_cast<double>(trees_.size())));
  }
  return out;
}

}  // namespace geqo::ml
