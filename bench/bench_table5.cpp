/// \file bench_table5.cpp
/// Reproduces Table 5 (§7.2): standalone VMF quality — accuracy, precision,
/// recall, F1 — on TPC-DS pairs, with the model trained on TPC-H.
///
/// Paper shape to reproduce: recall is near-perfect (0.98) while precision
/// is deliberately moderate (0.42): the VMF is an over-admitting prefilter
/// whose job is to never drop a true equivalence, not to decide.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "filters/vmf.h"

using namespace geqo;
using namespace geqo::bench;

int main() {
  PrintHeader("bench_table5", "Table 5: VMF performance (train TPC-H, "
                              "test TPC-DS)");
  BenchContext context = TpchTrainedSystem(GetScale());
  const float radius = context.system->pipeline().options().vmf.radius;
  std::printf("calibrated VMF radius tau = %.3f\n\n", radius);

  const Catalog tpcds = MakeTpcdsCatalog();
  const size_t eval_bases = Pick(30, 120, 300);
  EvalSet eval = MakeEvalSet(*context.system, tpcds, eval_bases, 3,
                             /*seed=*/0x7AB1E5);

  // Pairwise VMF decision (Definition 2.1): embedding distance < tau. The
  // eval dataset is already pairwise db-agnostic-encoded.
  ml::ConfusionMatrix matrix;
  const size_t batch = 256;
  for (size_t begin = 0; begin < eval.dataset.size(); begin += batch) {
    const size_t end = std::min(begin + batch, eval.dataset.size());
    std::vector<const EncodedPlan*> lhs;
    std::vector<const EncodedPlan*> rhs;
    for (size_t i = begin; i < end; ++i) {
      lhs.push_back(&eval.dataset.lhs[i]);
      rhs.push_back(&eval.dataset.rhs[i]);
    }
    const Tensor lhs_embeddings = context.system->model().Embed(lhs);
    const Tensor rhs_embeddings = context.system->model().Embed(rhs);
    for (size_t i = 0; i < lhs_embeddings.rows(); ++i) {
      const float distance = std::sqrt(
          ops::SquaredDistance(lhs_embeddings.Row(i), rhs_embeddings.Row(i),
                               lhs_embeddings.cols()));
      matrix.Add(distance < radius, eval.dataset.labels[begin + i] > 0.5f);
    }
  }

  std::printf("%-10s %10s %8s %6s  (paper: 0.74, 0.42, 0.98, 0.60)\n",
              "Accuracy", "Precision", "Recall", "F1");
  std::printf("%-10.2f %10.2f %8.2f %6.2f\n", matrix.Accuracy(),
              matrix.Precision(), matrix.Recall(), matrix.F1());
  std::printf("\n%s", matrix.ToString().c_str());

  const bool shape = matrix.Recall() > 0.9 &&
                     matrix.Recall() > matrix.Precision();
  std::printf("\nshape check: recall near-perfect and above precision -> %s\n",
              shape ? "yes (matches paper)" : "NO");
  return shape ? 0 : 1;
}
