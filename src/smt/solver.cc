#include "smt/solver.h"

#include <limits>

namespace geqo::smt {

Verdict DiffLogicSolver::Solve() {
  assignment_.assign(atoms_.size(), Assignment::kUnassigned);
  return Dpll() ? Verdict::kSat : Verdict::kUnsat;
}

bool DiffLogicSolver::Dpll() {
  std::vector<int32_t> trail;
  if (!PropagateUnits(&trail)) {
    ++stats_.conflicts;
    Unassign(trail, 0);
    return false;
  }
  if (!TheoryConsistent()) {
    ++stats_.conflicts;
    Unassign(trail, 0);
    return false;
  }

  const int32_t branch_atom = PickBranchAtom();
  if (branch_atom < 0) {
    // All clauses satisfied and the theory is consistent: SAT.
    Unassign(trail, 0);
    return true;
  }

  ++stats_.decisions;
  for (const Assignment choice : {Assignment::kTrue, Assignment::kFalse}) {
    assignment_[static_cast<size_t>(branch_atom)] = choice;
    if (Dpll()) {
      assignment_[static_cast<size_t>(branch_atom)] = Assignment::kUnassigned;
      Unassign(trail, 0);
      return true;
    }
    assignment_[static_cast<size_t>(branch_atom)] = Assignment::kUnassigned;
  }
  Unassign(trail, 0);
  return false;
}

bool DiffLogicSolver::PropagateUnits(std::vector<int32_t>* trail) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::vector<Literal>& clause : clauses_) {
      int unassigned_count = 0;
      const Literal* unit = nullptr;
      bool satisfied = false;
      for (const Literal& literal : clause) {
        const Assignment a = assignment_[static_cast<size_t>(literal.atom)];
        if (a == Assignment::kUnassigned) {
          ++unassigned_count;
          unit = &literal;
        } else if ((a == Assignment::kTrue) == literal.positive) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (unassigned_count == 0) return false;  // conflict: clause falsified
      if (unassigned_count == 1) {
        assignment_[static_cast<size_t>(unit->atom)] =
            unit->positive ? Assignment::kTrue : Assignment::kFalse;
        trail->push_back(unit->atom);
        ++stats_.propagations;
        changed = true;
      }
    }
  }
  return true;
}

bool DiffLogicSolver::TheoryConsistent() {
  ++stats_.theory_checks;
  // Collect asserted edges: atom true  => x - y (<|<=) c, edge y -> x, w = c;
  //                         atom false => its negation's edge.
  struct Edge {
    VarId from;
    VarId to;
    double weight;
    bool strict;
  };
  std::vector<Edge> edges;
  edges.reserve(atoms_.size());
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (assignment_[i] == Assignment::kUnassigned) continue;
    const DiffAtom atom = assignment_[i] == Assignment::kTrue
                              ? atoms_[i]
                              : atoms_[i].Negated();
    edges.push_back(Edge{atom.y, atom.x, atom.bound, atom.strict});
  }
  if (edges.empty()) return true;

  // Bellman-Ford from a virtual source connected to every node with weight
  // 0. A strict edge x - y < c behaves as x - y <= c - ε: distances are
  // (value, epsilon_count) pairs ordered lexicographically, with more
  // epsilons meaning strictly smaller. A negative cycle — total weight < 0,
  // or == 0 with at least one strict edge — keeps improving distances
  // forever, so any improvement after |V| full rounds is a theory conflict.
  const size_t n = static_cast<size_t>(num_vars_);
  std::vector<double> dist(n, 0.0);
  std::vector<int32_t> epsilons(n, 0);
  auto improves = [](double new_d, int32_t new_e, double old_d, int32_t old_e) {
    if (new_d < old_d) return true;
    return new_d == old_d && new_e > old_e;
  };
  for (size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (const Edge& edge : edges) {
      const auto from = static_cast<size_t>(edge.from);
      const auto to = static_cast<size_t>(edge.to);
      const double candidate = dist[from] + edge.weight;
      const int32_t candidate_eps = epsilons[from] + (edge.strict ? 1 : 0);
      if (improves(candidate, candidate_eps, dist[to], epsilons[to])) {
        dist[to] = candidate;
        epsilons[to] = candidate_eps;
        changed = true;
      }
    }
    if (!changed) return true;  // converged: no negative cycle
  }
  // Still improving after |V|+1 rounds: negative (or zero-strict) cycle.
  return false;
}

void DiffLogicSolver::Unassign(const std::vector<int32_t>& trail, size_t from) {
  for (size_t i = from; i < trail.size(); ++i) {
    assignment_[static_cast<size_t>(trail[i])] = Assignment::kUnassigned;
  }
}

int32_t DiffLogicSolver::PickBranchAtom() const {
  // Prefer atoms from unresolved clauses (pure decision heuristics are
  // unnecessary at verifier formula sizes).
  for (const std::vector<Literal>& clause : clauses_) {
    bool satisfied = false;
    int32_t candidate = -1;
    for (const Literal& literal : clause) {
      const Assignment a = assignment_[static_cast<size_t>(literal.atom)];
      if (a == Assignment::kUnassigned) {
        if (candidate < 0) candidate = literal.atom;
      } else if ((a == Assignment::kTrue) == literal.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied && candidate >= 0) return candidate;
  }
  return -1;
}

}  // namespace geqo::smt
