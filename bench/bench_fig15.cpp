/// \file bench_fig15.cpp
/// Reproduces Figure 15 (§7.7): the result-caching case study. GEqO detects
/// the equivalence classes of a TPC-DS workload; a result cache then
/// materializes one representative per class under a storage budget
/// (most-expensive-first, from measured runtimes) and serves later class
/// members from the cache. Queries are actually executed on the bundled
/// in-memory engine over synthetic TPC-DS data (DESIGN.md §1: the paper
/// used a 100 GB instance on a commercial DBMS; the mechanism is preserved
/// at reduced scale).
///
/// Paper shape to reproduce: large savings at small budgets (61.5% of
/// workload time at a 10% budget) climbing to near-total reduction of the
/// redundant computation at 100%.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>

#include "bench_util.h"
#include "exec/executor.h"
#include "exec/result_cache.h"

using namespace geqo;
using namespace geqo::bench;

int main() {
  PrintHeader("bench_fig15", "Figure 15: result caching under a storage "
                             "budget");
  BenchContext context = TpchTrainedSystem(GetScale());
  const Catalog tpcds = MakeTpcdsCatalog();

  // Workload with heavy redundancy: every query appears in several
  // semantically-equal spellings (the paper's workload had 23k expressions
  // in 5.3k equivalence classes, ~4.3 occurrences per class).
  const size_t num_classes = Pick(10, 30, 80);
  const size_t repeats_per_class = 3;
  Rng rng(0xF16015);
  // Selective queries: expensive to compute but small results, the regime
  // the paper's workload lives in (§7.7).
  GeneratorOptions generator_options;
  generator_options.fixed_projection_columns = 2;
  generator_options.min_select_predicates = 2;
  generator_options.max_select_predicates = 4;
  QueryGenerator generator(&tpcds, generator_options);
  Rewriter rewriter(&tpcds);

  std::vector<PlanPtr> workload;
  for (size_t c = 0; c < num_classes; ++c) {
    const PlanPtr base = generator.Generate(&rng);
    workload.push_back(base);
    for (size_t r = 1; r < repeats_per_class; ++r) {
      auto variant = rewriter.RewriteOnce(base, &rng);
      GEQO_CHECK(variant.ok());
      workload.push_back(*variant);
    }
  }
  rng.Shuffle(workload);

  // GEqO detects the equivalence classes.
  ForeignPipeline geqo = MakeForeignPipeline(
      *context.system, std::make_unique<Catalog>(MakeTpcdsCatalog()),
      GeqoOptions());
  auto detection = geqo.pipeline->DetectEquivalences(
      workload, context.system->value_range());
  GEQO_CHECK(detection.ok());
  WritePipelineArtifact("fig15/geqo", *detection);

  // Union-find into class ids.
  std::vector<size_t> parent(workload.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  const std::function<size_t(size_t)> find = [&](size_t x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (const auto& [i, j] : detection->equivalences) parent[find(i)] = find(j);
  std::map<size_t, size_t> class_ids;
  size_t detected_classes = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (class_ids.emplace(find(i), detected_classes).second) {
      ++detected_classes;
    }
  }

  // Execute the whole workload once to collect runtime/size profiles.
  DataGenOptions data_options;
  data_options.default_rows = Pick(150, 400, 1200);
  data_options.rows_per_table["store_sales"] = Pick(600, 2000, 8000);
  data_options.rows_per_table["catalog_sales"] = Pick(500, 1500, 6000);
  data_options.rows_per_table["web_sales"] = Pick(400, 1200, 5000);
  const Database db = Database::Generate(tpcds, data_options);
  Executor executor(&db);

  std::vector<QueryProfile> profiles;
  size_t executed = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    ExecStats stats;
    auto rows = executor.Execute(workload[i], &stats);
    if (!rows.ok() || rows->num_rows() == 0) continue;  // as in §7.7
    profiles.push_back(QueryProfile{i, class_ids[find(i)], stats.seconds,
                                    rows->ByteSize()});
    ++executed;
  }

  ResultCacheSimulator simulator(profiles);
  const size_t full_bytes = simulator.FullMaterializationBytes();
  std::printf("workload: %zu queries (%zu executable, non-empty), "
              "%zu detected equivalence classes\n",
              workload.size(), executed, detected_classes);
  std::printf("full materialization footprint (100%% budget): %.2f MB\n\n",
              static_cast<double>(full_bytes) / 1e6);

  std::printf("%-12s %14s %16s %12s\n", "budget (%)", "used (MB)",
              "classes cached", "time saved (%)");
  double at_small = 0.0;  // best of the 10% / 20% budgets
  double at_hundred = 0.0;
  for (const int percent : {0, 10, 20, 40, 60, 80, 100}) {
    const CacheSimulation simulation = simulator.Simulate(
        full_bytes * static_cast<size_t>(percent) / 100);
    std::printf("%-12d %14.2f %16zu %12.1f\n", percent,
                static_cast<double>(simulation.used_bytes) / 1e6,
                simulation.classes_materialized,
                simulation.ReductionPercent());
    if (percent == 10 || percent == 20) {
      at_small = std::max(at_small, simulation.ReductionPercent());
    }
    if (percent == 100) at_hundred = simulation.ReductionPercent();
  }

  std::printf("\npaper reference: 61.5%% reduction at a 10%% budget, 96.2%% "
              "at 100%%\n");
  // Our synthetic result-size distribution shifts the knee slightly (to
  // ~20%% of the footprint) relative to the paper's 10%%; the qualitative
  // claim — a small budget captures most of the achievable savings — is
  // checked over the <=20%% budgets (see EXPERIMENTS.md).
  const bool shape = at_small > 0.4 * at_hundred && at_hundred > 30.0;
  std::printf("shape check: small budgets (<=20%%) capture a "
              "disproportionate share of the savings -> %s\n",
              shape ? "yes (matches paper)" : "NO");
  return shape ? 0 : 1;
}
