#include "common/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "common/logging.h"
#include "obs/metrics.h"

namespace geqo {
namespace {

/// True while this thread is executing inside a parallel region; nested
/// ParallelFor calls then run inline (no recursive fan-out).
thread_local bool t_in_parallel_region = false;

size_t DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  const size_t hardware = hc > 0 ? hc : 1;
  if (const char* env = std::getenv("GEQO_THREADS")) {
    const size_t parsed = ThreadPool::ParseThreadCount(env, hardware);
    if (parsed > 0) return parsed;
  }
  return hardware;
}

Mutex& GlobalPoolMutex() {
  static Mutex mu(analysis::LockRank::kGlobalPool);
  return mu;
}

std::shared_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::shared_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

/// Shared state of one ParallelFor region. Chunks are claimed off `next`;
/// helper tasks hold the state alive via shared_ptr, and the caller does not
/// return (so `fn` does not go out of scope) until `pending` reaches zero.
struct ThreadPool::ForState {
  std::atomic<size_t> next{0};
  size_t end = 0;
  size_t grain = 1;
  const WorkerFn* fn = nullptr;
  std::atomic<size_t> worker_ids{0};
  std::atomic<size_t> pending{0};
  Mutex mu{analysis::LockRank::kPoolRegion};
  std::condition_variable_any done_cv;
  Mutex error_mu{analysis::LockRank::kPoolRegion};
  std::exception_ptr error GEQO_GUARDED_BY(error_mu);
};

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t spawned = num_threads > 0 ? num_threads - 1 : 0;
  workers_.reserve(spawned);
  for (size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  // Everything a worker runs is a region drain: nested regions stay inline.
  t_in_parallel_region = true;
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mu_);
      while (!shutdown_ && queue_.empty()) {
        cv_.wait(lock);
      }
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      if (obs::MetricsEnabled()) {
        obs::MetricsRegistry::Global()
            .GetGauge("pool.queue_depth")
            .Set(static_cast<double>(queue_.size()));
      }
    }
    task();
  }
}

void ThreadPool::Drain(ForState* state) {
  const size_t worker = state->worker_ids.fetch_add(1);
  for (;;) {
    const size_t chunk_begin = state->next.fetch_add(state->grain);
    if (chunk_begin >= state->end) return;
    const size_t chunk_end = std::min(chunk_begin + state->grain, state->end);
    try {
      for (size_t i = chunk_begin; i < chunk_end; ++i) (*state->fn)(worker, i);
    } catch (...) {
      {
        MutexLock lock(state->error_mu);
        if (!state->error) state->error = std::current_exception();
      }
      // Abandon remaining chunks; in-flight ones finish their iteration.
      state->next.store(state->end);
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, const WorkerFn& fn,
                             size_t grain) {
  if (begin >= end) return;
  const size_t count = end - begin;
  if (t_in_parallel_region || workers_.empty() || count == 1) {
    for (size_t i = begin; i < end; ++i) fn(0, i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->next.store(begin);
  state->end = end;
  state->grain =
      grain > 0 ? grain : std::max<size_t>(1, count / (4 * num_threads()));
  state->fn = &fn;

  const size_t helpers = std::min(workers_.size(), count - 1);
  const bool metered = obs::MetricsEnabled();
  const auto enqueue_time = metered ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point();
  {
    MutexLock lock(mu_);
    for (size_t t = 0; t < helpers; ++t) {
      state->pending.fetch_add(1, std::memory_order_relaxed);
      queue_.emplace_back([state, metered, enqueue_time] {
        if (metered) {
          const std::chrono::duration<double> wait =
              std::chrono::steady_clock::now() - enqueue_time;
          auto& registry = obs::MetricsRegistry::Global();
          registry.GetHistogram("pool.task_latency_seconds")
              .Observe(wait.count());
          registry.GetCounter("pool.tasks_executed").Increment();
        }
        Drain(state.get());
        if (state->pending.fetch_sub(1) == 1) {
          MutexLock state_lock(state->mu);
          state->done_cv.notify_all();
        }
      });
    }
    if (metered) {
      obs::MetricsRegistry::Global()
          .GetGauge("pool.queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_all();

  t_in_parallel_region = true;
  Drain(state.get());
  t_in_parallel_region = false;

  {
    UniqueLock lock(state->mu);
    while (state->pending.load() != 0) {
      state->done_cv.wait(lock);
    }
  }
  // The region is over (pending hit zero after every helper's error_mu
  // critical section), so this read is ordered; take the lock anyway to
  // keep the guarded-by contract unconditional.
  std::exception_ptr error;
  {
    MutexLock lock(state->error_mu);
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

size_t ThreadPool::ParseThreadCount(const char* value,
                                    size_t hardware_concurrency) {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < 1) {
    GEQO_LOG(kWarning) << "ignoring GEQO_THREADS='" << value
                       << "': not a positive integer";
    return 0;
  }
  const size_t hardware = hardware_concurrency > 0 ? hardware_concurrency : 1;
  const size_t cap = hardware * kMaxHardwareMultiple;
  if (static_cast<unsigned long long>(parsed) > cap) {
    GEQO_LOG(kWarning) << "clamping GEQO_THREADS=" << parsed << " to " << cap
                       << " (" << kMaxHardwareMultiple << "x the "
                       << hardware << " hardware threads)";
    return cap;
  }
  return static_cast<size_t>(parsed);
}

std::shared_ptr<ThreadPool> ThreadPool::GlobalPool() {
  MutexLock lock(GlobalPoolMutex());
  std::shared_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (!pool) pool = std::make_shared<ThreadPool>(DefaultThreadCount());
  return pool;
}

void ThreadPool::SetGlobalThreads(size_t num_threads) {
  auto fresh = std::make_shared<ThreadPool>(std::max<size_t>(1, num_threads));
  MutexLock lock(GlobalPoolMutex());
  GlobalPoolSlot().swap(fresh);
  // `fresh` now holds the old pool; it is destroyed here unless an in-flight
  // region still shares ownership.
}

size_t ThreadPool::GlobalThreads() { return GlobalPool()->num_threads(); }

}  // namespace geqo
