#include "encode/agnostic.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace geqo {
namespace {

using TableColumn = std::pair<std::string, std::string>;

const std::string* TableOfAlias(
    const std::vector<std::pair<std::string, std::string>>& bindings,
    const std::string& alias) {
  for (const auto& [table, bound_alias] : bindings) {
    if (bound_alias == alias) return &table;
  }
  return nullptr;
}

void CollectNodeColumns(
    const PlanNode& node,
    const std::vector<std::pair<std::string, std::string>>& bindings,
    std::set<TableColumn>* out) {
  auto add = [&](const ColumnRef& ref) {
    const std::string* table = TableOfAlias(bindings, ref.alias);
    if (table != nullptr) out->emplace(*table, ref.column);
  };
  switch (node.kind()) {
    case OpKind::kScan:
      return;
    case OpKind::kSelect:
    case OpKind::kJoin: {
      const auto normalized = NormalizeComparison(node.predicate());
      if (normalized.has_value()) {
        if (normalized->left) add(*normalized->left);
        if (normalized->right) add(*normalized->right);
      } else {
        // Mirror the encoder's fallback: only the first column is marked.
        std::vector<ColumnRef> columns;
        node.predicate().CollectColumns(&columns);
        if (!columns.empty()) add(columns[0]);
      }
      return;
    }
    case OpKind::kProject: {
      for (const OutputColumn& output : node.outputs()) {
        std::vector<ColumnRef> columns;
        output.expr->CollectColumns(&columns);
        for (const ColumnRef& ref : columns) add(ref);
      }
      return;
    }
    case OpKind::kAggregate: {
      for (const OutputColumn& key : node.group_by()) {
        std::vector<ColumnRef> columns;
        key.expr->CollectColumns(&columns);
        for (const ColumnRef& ref : columns) add(ref);
      }
      for (const AggregateExpr& aggregate : node.aggregates()) {
        if (aggregate.argument == nullptr) continue;
        std::vector<ColumnRef> columns;
        aggregate.argument->CollectColumns(&columns);
        for (const ColumnRef& ref : columns) add(ref);
      }
      return;
    }
  }
}

void CollectPlanColumns(const PlanNode& node,
                        const std::vector<std::pair<std::string, std::string>>&
                            bindings,
                        std::set<TableColumn>* out) {
  CollectNodeColumns(node, bindings, out);
  for (const PlanPtr& child : node.children()) {
    CollectPlanColumns(*child, bindings, out);
  }
}

}  // namespace

std::vector<TableColumn> CollectEncodedColumns(const PlanPtr& plan) {
  std::set<TableColumn> columns;
  const auto bindings = plan->ScanBindings();
  CollectPlanColumns(*plan, bindings, &columns);
  return std::vector<TableColumn>(columns.begin(), columns.end());
}

Result<SymbolMap> BuildSymbolMap(const std::vector<PlanPtr>& plans,
                                 const EncodingLayout& agnostic_layout) {
  std::set<std::string> tables;
  std::set<TableColumn> columns;
  for (const PlanPtr& plan : plans) {
    for (const auto& [table, alias] : plan->ScanBindings()) tables.insert(table);
    for (TableColumn& column : CollectEncodedColumns(plan)) {
      columns.insert(std::move(column));
    }
  }
  if (tables.size() > agnostic_layout.num_tables()) {
    return Status::ResourceExhausted(StrFormat(
        "group references %zu tables; agnostic layout holds %zu",
        tables.size(), agnostic_layout.num_tables()));
  }

  SymbolMap map;
  size_t table_index = 0;
  for (const std::string& table : tables) {  // std::set: sorted order
    map.tables.emplace_back(table, StrFormat("t%02zu", ++table_index));
  }
  std::map<std::string, size_t> per_table_count;
  for (const TableColumn& column : columns) {  // sorted by (table, column)
    const size_t rank = ++per_table_count[column.first];
    if (rank > agnostic_layout.max_columns_per_table()) {
      return Status::ResourceExhausted(StrFormat(
          "table %s references more than %zu columns", column.first.c_str(),
          agnostic_layout.max_columns_per_table()));
    }
    map.columns.emplace_back(column, StrFormat("c%02zu", rank));
  }
  return map;
}

Result<AgnosticConverter> AgnosticConverter::Create(
    const EncodingLayout* instance_layout, const EncodingLayout* agnostic_layout,
    const std::vector<const EncodedPlan*>& group, bool truncate_overflow) {
  GEQO_CHECK(!group.empty());
  AgnosticConverter converter(instance_layout, agnostic_layout);
  const size_t num_tables = instance_layout->num_tables();
  const size_t num_columns = instance_layout->num_columns();

  // Masks: which instance table/column slots carry a nonzero bit anywhere
  // in the group (Figure 5's columnwiseUnion over both subexpressions).
  std::vector<bool> table_mask(num_tables, false);
  std::vector<bool> column_mask(num_columns, false);
  for (const EncodedPlan* plan : group) {
    GEQO_CHECK(plan->nodes.cols() == instance_layout->node_vector_size());
    for (size_t row = 0; row < plan->num_nodes(); ++row) {
      const float* values = plan->nodes.Row(row);
      for (size_t t = 0; t < num_tables; ++t) {
        if (values[instance_layout->table_offset() + t] != 0.0f) {
          table_mask[t] = true;
        }
      }
      for (size_t c = 0; c < num_columns; ++c) {
        if (values[instance_layout->join_left_offset() + c] != 0.0f ||
            values[instance_layout->join_right_offset() + c] != 0.0f ||
            values[instance_layout->select_col_offset() + c] != 0.0f ||
            values[instance_layout->group_by_offset() + c] != 0.0f ||
            values[instance_layout->agg_col_offset() + c] != 0.0f) {
          column_mask[c] = true;
        }
      }
    }
  }

  // A referenced column's table must get a symbol even if (pathologically)
  // its table bit never appears; union it in for safety.
  auto table_of_column_slot = [&](size_t slot) {
    const std::string& qualified = instance_layout->columns()[slot];
    return qualified.substr(0, qualified.find('.'));
  };
  for (size_t c = 0; c < num_columns; ++c) {
    if (!column_mask[c]) continue;
    const size_t table_slot =
        instance_layout->TableIndex(table_of_column_slot(c));
    if (table_slot != EncodingLayout::npos) table_mask[table_slot] = true;
  }

  // Assign symbols: referenced tables in instance order (= sorted real
  // names) map to agnostic slots 0, 1, ... — exactly path A's assignment.
  converter.table_map_.assign(num_tables, EncodingLayout::npos);
  std::map<std::string, size_t> table_symbol_index;
  size_t next_table = 0;
  for (size_t t = 0; t < num_tables; ++t) {
    if (!table_mask[t]) continue;
    if (next_table >= agnostic_layout->num_tables()) {
      if (truncate_overflow) continue;
      return Status::ResourceExhausted(
          "group references more tables than the agnostic layout holds");
    }
    converter.table_map_[t] = next_table;
    table_symbol_index[instance_layout->tables()[t]] = next_table;
    ++next_table;
  }

  converter.column_map_.assign(num_columns, EncodingLayout::npos);
  std::map<std::string, size_t> per_table_rank;
  const size_t columns_per_table = agnostic_layout->max_columns_per_table();
  for (size_t c = 0; c < num_columns; ++c) {
    if (!column_mask[c]) continue;
    const std::string table = table_of_column_slot(c);
    const auto it = table_symbol_index.find(table);
    if (it == table_symbol_index.end()) {
      // Only reachable with truncate_overflow: the column's table was
      // dropped, so the column is dropped too.
      GEQO_CHECK(truncate_overflow);
      continue;
    }
    const size_t rank = per_table_rank[table]++;
    if (rank >= columns_per_table) {
      if (truncate_overflow) continue;
      return Status::ResourceExhausted(
          "group references more columns per table than the agnostic layout "
          "holds");
    }
    converter.column_map_[c] = it->second * columns_per_table + rank;
  }
  return converter;
}

EncodedPlan AgnosticConverter::Convert(const EncodedPlan& instance) const {
  const EncodingLayout& in = *instance_layout_;
  const EncodingLayout& out_layout = *agnostic_layout_;
  EncodedPlan out;
  out.nodes = Tensor(instance.num_nodes(), out_layout.node_vector_size());
  out.left = instance.left;
  out.right = instance.right;

  for (size_t row = 0; row < instance.num_nodes(); ++row) {
    const float* src = instance.nodes.Row(row);
    float* dst = out.nodes.Row(row);
    for (size_t t = 0; t < in.num_tables(); ++t) {
      if (table_map_[t] == EncodingLayout::npos) continue;
      dst[out_layout.table_offset() + table_map_[t]] =
          src[in.table_offset() + t];
    }
    for (size_t c = 0; c < in.num_columns(); ++c) {
      if (column_map_[c] == EncodingLayout::npos) continue;
      const size_t mapped = column_map_[c];
      dst[out_layout.join_left_offset() + mapped] =
          src[in.join_left_offset() + c];
      dst[out_layout.join_right_offset() + mapped] =
          src[in.join_right_offset() + c];
      dst[out_layout.select_col_offset() + mapped] =
          src[in.select_col_offset() + c];
      dst[out_layout.group_by_offset() + mapped] =
          src[in.group_by_offset() + c];
      dst[out_layout.agg_col_offset() + mapped] =
          src[in.agg_col_offset() + c];
    }
    for (size_t o = 0; o < kNumCompareOps; ++o) {
      dst[out_layout.join_op_offset() + o] = src[in.join_op_offset() + o];
      dst[out_layout.select_op_offset() + o] = src[in.select_op_offset() + o];
    }
    for (size_t j = 0; j < kNumJoinTypes; ++j) {
      dst[out_layout.join_type_offset() + j] = src[in.join_type_offset() + j];
    }
    for (size_t f = 0; f < kNumAggregateFns; ++f) {
      dst[out_layout.agg_fn_offset() + f] = src[in.agg_fn_offset() + f];
    }
    dst[out_layout.select_norm_offset()] = src[in.select_norm_offset()];
    dst[out_layout.select_null_offset()] = src[in.select_null_offset()];
  }
  return out;
}

Result<std::pair<EncodedPlan, EncodedPlan>> EncodePairAgnostic(
    const PlanPtr& a, const PlanPtr& b, const EncodingLayout& agnostic_layout,
    const Catalog& catalog, ValueRange value_range) {
  GEQO_ASSIGN_OR_RETURN(SymbolMap symbols,
                        BuildSymbolMap({a, b}, agnostic_layout));
  PlanEncoder encoder(&agnostic_layout, &catalog, value_range, &symbols);
  GEQO_ASSIGN_OR_RETURN(EncodedPlan encoded_a, encoder.Encode(a));
  GEQO_ASSIGN_OR_RETURN(EncodedPlan encoded_b, encoder.Encode(b));
  return std::make_pair(std::move(encoded_a), std::move(encoded_b));
}

}  // namespace geqo
