#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

/// \file trace.h
/// Scoped tracing spans for the GEqO pipeline (DESIGN.md "Observability").
///
/// A Span is an RAII scope that records {name, thread, start, duration,
/// nesting depth}. When GEQO_TRACE is not "spans" construction reduces to a
/// single relaxed atomic load and nothing is recorded.
///
/// Concurrency model: each thread appends completed spans to its own
/// thread-local buffer, registered once with the process-wide Tracer. The
/// per-buffer mutex is essentially uncontended (the owning thread at span
/// close vs. the exporter at snapshot time), so tracing a ParallelFor body
/// does not serialize the cascade. Buffers are owned by shared_ptr, so spans
/// recorded by pool workers survive thread exit until exported. Export
/// merges all buffers, sorts by start time, and rebuilds the tree from
/// (thread, depth) nesting.

namespace geqo::obs {

/// \brief One completed span, as recorded at scope exit.
struct SpanEvent {
  std::string name;
  uint64_t thread_id = 0;   ///< stable small id assigned per OS thread
  int depth = 0;            ///< nesting depth within the recording thread
  int64_t start_us = 0;     ///< microseconds since the process trace epoch
  int64_t duration_us = 0;
};

/// \brief RAII tracing scope. Cheap no-op unless GEQO_TRACE=spans.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  int64_t start_us_ = 0;
};

/// \brief Process-wide collector of completed spans.
class Tracer {
 public:
  /// Per-thread event sink; shared-owned so worker spans outlive the worker.
  /// The buffer lock is a near-leaf: spans close from under shard, store,
  /// and pool locks, so only kStatus/kKillPoint rank above it.
  struct Buffer {
    mutable Mutex mu{analysis::LockRank::kObsTraceBuffer};
    std::vector<SpanEvent> events GEQO_GUARDED_BY(mu);
  };

  static Tracer& Global();

  /// All spans recorded so far, merged across threads and sorted by
  /// (start time, depth). Does not clear the buffers.
  std::vector<SpanEvent> Collect() const;

  /// Drops every recorded span (for tests and repeated runs).
  void Reset();

  /// Microseconds since the process trace epoch (steady clock).
  static int64_t NowMicros();

 private:
  friend class Span;

  /// The calling thread's buffer, registering it on first use.
  Buffer& LocalBuffer();

  mutable Mutex mu_{analysis::LockRank::kObsTracer};
  std::vector<std::shared_ptr<Buffer>> buffers_ GEQO_GUARDED_BY(mu_);
  uint64_t next_thread_id_ GEQO_GUARDED_BY(mu_) = 0;
};

/// Chrome trace-event JSON (chrome://tracing / Perfetto): one ph:"X"
/// complete event per span plus ph:"C" counter events for every counter and
/// gauge in \p metrics.
std::string ToChromeTraceJson(const std::vector<SpanEvent>& spans,
                              const MetricsSnapshot& metrics);

/// Hierarchical span-tree JSON: spans nested by (thread, depth)
/// containment, one top-level entry per root span.
std::string ToSpanTreeJson(const std::vector<SpanEvent>& spans);

/// If GEQO_TRACE enables collection, writes the metrics snapshot (and, at
/// spans level, the Chrome trace) to disk and returns the trace path.
/// Paths default to "geqo_trace.json" / "geqo_metrics.json" in the working
/// directory and can be overridden with GEQO_TRACE_FILE / GEQO_METRICS_FILE.
/// Returns std::nullopt when tracing is off or the write fails.
std::optional<std::string> WriteTraceArtifactsIfEnabled();

}  // namespace geqo::obs
