/// \file bench_table4.cpp
/// Reproduces Table 4 (§7.1.3): transfer-learning performance of the
/// TPC-H-trained EMF on datasets generated over *randomly generated*
/// schemas, at growing dataset sizes.
///
/// Paper shape to reproduce: precision/recall/F1 remain high (F1 ~0.94-0.97)
/// across all sizes even though the model never saw these schemas — the
/// db-agnostic encoding (§4.2) carries the learning over.

#include <cstdio>

#include "bench_util.h"

using namespace geqo;
using namespace geqo::bench;

int main() {
  PrintHeader("bench_table4",
              "Table 4: transfer learning on randomly-generated schemas");
  BenchContext context = TpchTrainedSystem(GetScale());

  // Paper sizes: 1.2k, 5k, 11k, 19.9k, 44.9k pairs. A base query with 3
  // variants yields ~12 labeled pairs, so bases ~= target size / 12.
  const std::vector<size_t> target_sizes =
      GetScale() == Scale::kFull
          ? std::vector<size_t>{1200, 5000, 11000, 19900, 44900}
          : (GetScale() == Scale::kSmoke
                 ? std::vector<size_t>{150, 300}
                 : std::vector<size_t>{600, 1200, 2400, 4800});

  std::printf("%-14s %-12s %10s %8s %8s\n", "Dataset Size", "(requested)",
              "Precision", "Recall", "F1");
  bool all_transfer = true;
  Rng schema_rng(0x5EED5);
  for (size_t index = 0; index < target_sizes.size(); ++index) {
    // A fresh random schema per row, as in the paper's five datasets.
    RandomSchemaOptions schema_options;
    schema_options.num_tables = 5 + index % 3;
    const Catalog catalog = MakeRandomCatalog(schema_options, &schema_rng);

    const size_t bases = std::max<size_t>(8, target_sizes[index] / 12);
    EvalSet eval = MakeEvalSet(*context.system, catalog, bases, 3,
                               /*seed=*/0x7AB1E4 + index);
    const ml::ConfusionMatrix matrix = ml::EvaluateBinary(
        ml::PredictAll(&context.system->model(), eval.dataset),
        eval.dataset.labels);
    std::printf("%-14zu %-12zu %10.3f %8.3f %8.3f\n", eval.dataset.size(),
                target_sizes[index], matrix.Precision(), matrix.Recall(),
                matrix.F1());
    all_transfer &= matrix.F1() > 0.6;
  }
  std::printf("\nshape check: F1 stays high on every unseen random schema -> "
              "%s\n",
              all_transfer ? "yes (matches paper)" : "NO");
  return all_transfer ? 0 : 1;
}
