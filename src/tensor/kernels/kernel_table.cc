#include "tensor/kernels/kernel_table.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"

namespace geqo::kernels {
namespace {

std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<int> g_active_isa{static_cast<int>(Isa::kScalar)};
std::atomic<bool> g_quant{false};
std::once_flag g_init_once;

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &ScalarTable();
    case Isa::kAvx2:
      return Avx2TableOrNull();
  }
  return nullptr;
}

bool ParseBoolEnv(const char* value) {
  const std::string v(value);
  return v == "1" || v == "on" || v == "true";
}

/// Resolves GEQO_ISA / GEQO_QUANT exactly once. Unknown specs and
/// unavailable ISAs degrade with a warning rather than aborting: a serving
/// binary started with a stale env var should come up (slower), not crash.
void InitFromEnv() {
  Isa isa = Isa::kScalar;
  const char* spec = std::getenv("GEQO_ISA");
  std::string spec_str = spec == nullptr ? "auto" : spec;
  if (!ResolveIsaSpec(spec_str, &isa)) {
    GEQO_LOG(kWarning) << "GEQO_ISA=" << spec_str
                       << " not recognised (want scalar|avx2|auto); using auto";
    ResolveIsaSpec("auto", &isa);
  }
  const KernelTable* table = TableFor(isa);
  if (table == nullptr) {
    GEQO_LOG(kWarning) << "GEQO_ISA=" << spec_str
                       << " unavailable on this build/host; using scalar";
    isa = Isa::kScalar;
    table = &ScalarTable();
  }
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);

  const char* quant = std::getenv("GEQO_QUANT");
  if (quant != nullptr) {
    g_quant.store(ParseBoolEnv(quant), std::memory_order_relaxed);
  }
}

void EnsureInit() { std::call_once(g_init_once, InitFromEnv); }

}  // namespace

const KernelTable& Active() {
  EnsureInit();
  return *g_active.load(std::memory_order_acquire);
}

Isa ActiveIsa() {
  EnsureInit();
  return static_cast<Isa>(g_active_isa.load(std::memory_order_relaxed));
}

const char* ActiveIsaName() { return Active().name; }

const char* DispatchCounterName() {
  switch (ActiveIsa()) {
    case Isa::kScalar:
      return "kernel.dispatch.scalar";
    case Isa::kAvx2:
      return "kernel.dispatch.avx2";
  }
  return "kernel.dispatch.scalar";
}

bool SetIsa(Isa isa) {
  EnsureInit();
  const KernelTable* table = TableFor(isa);
  if (table == nullptr) return false;
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  return true;
}

bool ResolveIsaSpec(const std::string& spec, Isa* out) {
  if (spec == "scalar") {
    *out = Isa::kScalar;
    return true;
  }
  if (spec == "avx2") {
    *out = Isa::kAvx2;
    return true;
  }
  if (spec == "auto") {
    *out = Avx2TableOrNull() != nullptr ? Isa::kAvx2 : Isa::kScalar;
    return true;
  }
  return false;
}

bool QuantEnabled() {
  EnsureInit();
  return g_quant.load(std::memory_order_relaxed);
}

void SetQuantMode(bool on) {
  EnsureInit();
  g_quant.store(on, std::memory_order_relaxed);
}

const char* QuantModeName() { return QuantEnabled() ? "sq8" : "f32"; }

}  // namespace geqo::kernels
