#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/expr.h"
#include "plan/schema.h"

/// \file plan.h
/// Logical query plans. A plan is an immutable operator tree; every subtree
/// is itself an executable subexpression (§2.1). GEqO's focus is SPJ plans
/// with conjunctive predicates, which is exactly the operator set here.

namespace geqo {

enum class OpKind : uint8_t { kScan, kSelect, kProject, kJoin, kAggregate };

std::string_view OpKindToString(OpKind kind);

/// Join types referenced by the paper's featurization (J_W = {inner, left
/// outer, right outer}); the verifier only proves inner joins, matching the
/// conjunctive SPJ fragment, while outer joins flow through the filters and
/// the syntactic baselines.
enum class JoinType : uint8_t { kInner, kLeftOuter, kRightOuter };

std::string_view JoinTypeToString(JoinType type);

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// Aggregate functions supported by the §9.1 extension.
enum class AggregateFn : uint8_t { kCount, kSum, kMin, kMax, kAvg };

std::string_view AggregateFnToString(AggregateFn fn);

/// \brief One aggregate output: fn(argument) AS name. A null argument means
/// COUNT(*).
struct AggregateExpr {
  AggregateFn fn = AggregateFn::kCount;
  ExprPtr argument;  ///< null for COUNT(*)
  std::string name;

  std::string ToString() const;
  bool Equals(const AggregateExpr& other) const;
  uint64_t Hash() const;
};

/// \brief A named output column of a plan: the projected expression plus the
/// name it is exposed under.
struct OutputColumn {
  std::string name;
  ExprPtr expr;
};

/// \brief An immutable logical plan operator.
///
/// Construction goes through the factories (Scan/Select/Project/Join), which
/// validate shape invariants. After Canonicalize() (see canonicalize.h) each
/// Select and Join node carries exactly one atomic comparison.
class PlanNode {
 public:
  /// Leaf: scan of \p table bound to \p alias (alias must be plan-unique).
  static PlanPtr Scan(std::string table, std::string alias);
  /// Filter: retains rows of \p child satisfying \p predicate.
  static PlanPtr Select(Comparison predicate, PlanPtr child);
  /// Projection: exposes \p outputs computed over \p child.
  static PlanPtr Project(std::vector<OutputColumn> outputs, PlanPtr child);
  /// Join of \p left and \p right on \p predicate.
  static PlanPtr Join(JoinType type, Comparison predicate, PlanPtr left,
                      PlanPtr right);
  /// Grouped aggregation over \p child (§9.1 extension). Outputs are the
  /// group-by expressions (in order) followed by the aggregates. Either
  /// list may be empty, but not both.
  static PlanPtr Aggregate(std::vector<OutputColumn> group_by,
                           std::vector<AggregateExpr> aggregates,
                           PlanPtr child);

  OpKind kind() const { return kind_; }
  bool is_leaf() const { return kind_ == OpKind::kScan; }

  // Scan accessors.
  const std::string& table() const;
  const std::string& alias() const;

  // Select / Join accessors.
  const Comparison& predicate() const;
  JoinType join_type() const;

  // Project accessors.
  const std::vector<OutputColumn>& outputs() const;

  // Aggregate accessors.
  const std::vector<OutputColumn>& group_by() const;
  const std::vector<AggregateExpr>& aggregates() const;

  /// Children: 0 for scans, 1 for select/project, 2 for joins.
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i) const { return children_[i]; }
  size_t num_children() const { return children_.size(); }

  /// Number of operator nodes in this subtree (ops(q) in the paper).
  size_t NumOps() const;

  /// Height of this subtree (a single scan has height 1).
  size_t Height() const;

  /// All scan aliases in this subtree, in scan (left-to-right) order.
  std::vector<std::string> ScanAliases() const;

  /// All (table, alias) scan bindings in this subtree.
  std::vector<std::pair<std::string, std::string>> ScanBindings() const;

  /// The columns this subexpression returns. For a Project node these are
  /// its outputs; otherwise every column of every scanned table in alias
  /// order (requires \p catalog to expand scan schemas).
  Result<std::vector<OutputColumn>> OutputColumns(const Catalog& catalog) const;

  /// Number of returned columns (used by the schema filter, §2.2.1).
  Result<size_t> NumOutputColumns(const Catalog& catalog) const;

  /// Structural equality (exact tree match, no semantic reasoning).
  bool Equals(const PlanNode& other) const;

  /// Structural hash, stable across runs.
  uint64_t Hash() const;

  /// Multi-line indented rendering for debugging and examples.
  std::string ToString() const;

  /// Returns a copy of this plan with scan aliases (and all column
  /// references) renamed via \p rename.
  PlanPtr RenameAliases(
      const std::vector<std::pair<std::string, std::string>>& rename) const;

 private:
  PlanNode() = default;
  void AppendString(std::string* out, int indent) const;

  OpKind kind_ = OpKind::kScan;
  std::string table_;
  std::string alias_;
  Comparison predicate_;
  JoinType join_type_ = JoinType::kInner;
  std::vector<OutputColumn> outputs_;  ///< Project outputs / Aggregate keys
  std::vector<AggregateExpr> aggregates_;
  std::vector<PlanPtr> children_;
};

}  // namespace geqo
