#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "plan/value.h"

/// \file expr.h
/// Scalar expressions and comparison predicates. Expression nodes are
/// immutable and shared (std::shared_ptr<const Expr>), so plans can share
/// structure freely across rewrites and subexpression enumeration.

namespace geqo {

/// \brief A fully qualified column reference: alias.column.
///
/// Aliases identify table *instances* within a plan (self-joins bind the
/// same table under two aliases), matching the paper's symbol tables
/// (Figure 4 / Table 2).
struct ColumnRef {
  std::string alias;
  std::string column;

  bool operator==(const ColumnRef&) const = default;
  bool operator<(const ColumnRef& other) const {
    return alias != other.alias ? alias < other.alias : column < other.column;
  }
  std::string ToString() const { return alias + "." + column; }
  uint64_t Hash() const {
    return HashCombine(HashString(alias), HashString(column));
  }
};

enum class ExprKind : uint8_t { kColumnRef, kLiteral, kAdd, kSub, kMul, kDiv };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief An immutable scalar expression node.
class Expr {
 public:
  /// Factory: column reference.
  static ExprPtr Column(std::string alias, std::string column);
  /// Factory: literal.
  static ExprPtr Literal(Value value);
  static ExprPtr IntLiteral(int64_t v) { return Literal(Value::Int(v)); }
  /// Factory: binary arithmetic node (kind must be kAdd..kDiv).
  static ExprPtr Binary(ExprKind kind, ExprPtr left, ExprPtr right);

  ExprKind kind() const { return kind_; }
  bool is_literal() const { return kind_ == ExprKind::kLiteral; }
  bool is_column() const { return kind_ == ExprKind::kColumnRef; }
  bool is_binary() const {
    return kind_ != ExprKind::kColumnRef && kind_ != ExprKind::kLiteral;
  }

  const Value& value() const;
  const ColumnRef& column() const;
  const ExprPtr& left() const;
  const ExprPtr& right() const;

  /// Appends every column referenced in this expression to \p out.
  void CollectColumns(std::vector<ColumnRef>* out) const;

  /// Structural equality.
  bool Equals(const Expr& other) const;

  /// Structural hash, stable across runs.
  uint64_t Hash() const;

  /// SQL-ish rendering, e.g. "(A.val + 10)".
  std::string ToString() const;

  /// Returns a copy of this expression with every column's alias replaced
  /// via \p rename (alias -> new alias). Unlisted aliases are kept.
  ExprPtr RenameAliases(
      const std::vector<std::pair<std::string, std::string>>& rename) const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  Value value_;
  ColumnRef column_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Comparison operators appearing in selection and join predicates.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// \brief Returns the operator with sides swapped (a < b  <=>  b > a).
CompareOp FlipCompareOp(CompareOp op);
/// \brief Returns the logical negation (a < b  <=>  !(a >= b)).
CompareOp NegateCompareOp(CompareOp op);
std::string_view CompareOpToString(CompareOp op);

/// \brief An atomic comparison predicate `lhs op rhs`.
///
/// After canonicalization (§3.1) every Select/Join node carries exactly one
/// Comparison; conjunctions are represented as stacked Select nodes.
struct Comparison {
  ExprPtr lhs;
  CompareOp op = CompareOp::kEq;
  ExprPtr rhs;

  std::string ToString() const;
  bool Equals(const Comparison& other) const;
  uint64_t Hash() const;
  void CollectColumns(std::vector<ColumnRef>* out) const;
  Comparison RenameAliases(
      const std::vector<std::pair<std::string, std::string>>& rename) const;
};

/// \brief An expression reduced to `column + offset` or a bare constant.
///
/// The canonical currency of the verifier and of predicate encoding: every
/// predicate side that the system reasons about symbolically must reduce to
/// this form (otherwise the verifier answers Unknown — it is correct but not
/// complete, per §2.1).
struct LinearTerm {
  std::optional<ColumnRef> column;  ///< absent for pure constants
  double offset = 0.0;              ///< additive constant
  std::optional<std::string> string_constant;  ///< for string literals

  bool is_constant() const { return !column.has_value(); }
};

/// \brief Reduces \p expr to a LinearTerm if possible (constant folding plus
/// `col + c` / `c + col` / `col - c` patterns). Returns nullopt for
/// expressions outside that fragment (e.g. col * 2, col1 + col2).
std::optional<LinearTerm> ExtractLinearTerm(const ExprPtr& expr);

/// \brief A comparison normalized to difference form.
///
/// Either `left - right op constant` (two columns) or `left op constant`
/// (one column; right is absent). Produced by NormalizeComparison.
struct NormalizedComparison {
  std::optional<ColumnRef> left;
  std::optional<ColumnRef> right;
  CompareOp op = CompareOp::kEq;
  double constant = 0.0;
  std::optional<std::string> string_constant;

  std::string ToString() const;
};

/// \brief Normalizes `lhs op rhs` into difference form, moving constants to
/// the right and ensuring a column appears on the left (flipping the
/// operator as needed). Returns nullopt outside the supported fragment.
std::optional<NormalizedComparison> NormalizeComparison(const Comparison& cmp);

/// \brief Folds constant subtrees: (10 + 5) -> 15, recursively. Division by
/// zero and string arithmetic are left unfolded (and will later fail linear
/// extraction, yielding Unknown from the verifier).
ExprPtr FoldConstants(const ExprPtr& expr);

}  // namespace geqo
