#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

/// \file hnsw.h
/// Hierarchical Navigable Small World index (Malkov & Yashunin [35]) for
/// approximate nearest-neighbor search, implemented from scratch. The VMF
/// (§2.2.1, Definition 2.1) embeds subexpressions with the EMF's learned
/// tree convolution and uses this index for threshold (radius) searches at
/// O(log n) per query.

namespace geqo::ann {

/// \brief Construction / search parameters.
struct HnswOptions {
  size_t max_connections = 16;    ///< M: links per node above layer 0
  size_t ef_construction = 100;   ///< beam width while inserting
  size_t ef_search = 64;          ///< default beam width while querying
  uint64_t seed = 0x9e3779b97f4aULL;
};

/// \brief One search hit: element id plus its L2 distance to the query.
struct Neighbor {
  size_t id;
  float distance;

  /// Orders by distance, tie-breaking equal distances by id so result
  /// ordering is deterministic across platforms and insertion interleavings
  /// (duplicate embeddings are common in catalog serving).
  bool operator<(const Neighbor& other) const {
    if (distance != other.distance) return distance < other.distance;
    return id < other.id;
  }
};

/// \brief An HNSW index over fixed-dimension float vectors.
///
/// Vectors are copied in. Ids are assigned densely in insertion order.
/// Single-threaded (consistent with the library's execution model).
class HnswIndex {
 public:
  HnswIndex(size_t dim, HnswOptions options = HnswOptions());

  /// Inserts \p vector (length dim()); returns its id.
  size_t Add(const float* vector);
  size_t Add(const std::vector<float>& vector);

  /// Approximate k-nearest-neighbor search, closest first.
  std::vector<Neighbor> SearchKnn(const float* query, size_t k,
                                  size_t ef = 0) const;

  /// Approximate radius search: all indexed vectors within L2 distance
  /// \p radius of \p query (closest first). \p ef bounds the exploration
  /// beam; larger values increase recall.
  std::vector<Neighbor> SearchRadius(const float* query, float radius,
                                     size_t ef = 0) const;

  /// Exact (brute-force) radius search, for recall evaluation in tests.
  std::vector<Neighbor> ExactRadius(const float* query, float radius) const;

  size_t size() const { return vectors_.size(); }
  size_t dim() const { return dim_; }
  const float* vector(size_t id) const { return vectors_[id].data(); }
  const HnswOptions& options() const { return options_; }

  /// Writes the complete index state — options, the rng's position in its
  /// stream, all vectors, and the layered graph — to \p os. A deserialized
  /// index continues to accept Add calls and produces bit-identical search
  /// results and level assignments to the original.
  Status Serialize(std::ostream& os) const;

  /// Restores an index written by Serialize. Fails with a descriptive Status
  /// (never aborts) on bad magic, version skew, truncation, or a graph that
  /// violates structural invariants (out-of-range ids, level mismatches).
  static Result<std::unique_ptr<HnswIndex>> Deserialize(std::istream& is);

 private:
  struct Node {
    int level;
    /// Adjacency lists, one per layer 0..level.
    std::vector<std::vector<uint32_t>> neighbors;
  };

  float Distance(const float* a, const float* b) const;
  /// Drains the pending distance/hop tallies into the metrics registry
  /// ("hnsw.distance_computations", "hnsw.hops"). Called at the end of every
  /// public operation so hot inner loops only touch the local atomics.
  void FoldMetrics() const;
  int RandomLevel();
  /// Greedy descent in one layer starting from \p entry.
  uint32_t GreedySearch(const float* query, uint32_t entry, int layer) const;
  /// Beam search within a layer; returns up to \p ef closest, sorted.
  std::vector<Neighbor> SearchLayer(const float* query, uint32_t entry,
                                    size_t ef, int layer) const;
  /// Links \p id to the closest \p max_links of \p candidates in \p layer,
  /// pruning back-links that overflow.
  void Connect(uint32_t id, const std::vector<Neighbor>& candidates, int layer,
               size_t max_links);

  size_t dim_;
  HnswOptions options_;
  double level_multiplier_;
  Rng rng_;
  std::vector<std::vector<float>> vectors_;
  std::vector<Node> nodes_;
  int max_level_ = -1;
  uint32_t entry_point_ = 0;
  /// Index-local observability tallies. Searches run concurrently from the
  /// VMF's parallel region, so these are relaxed atomics (statistics only);
  /// they are drained to the global registry by FoldMetrics.
  mutable std::atomic<uint64_t> pending_distances_{0};
  mutable std::atomic<uint64_t> pending_hops_{0};
};

}  // namespace geqo::ann
