#include <gtest/gtest.h>

#include <cstdio>

#include "core/geqo_system.h"
#include "filters/emf_filter.h"
#include "filters/vmf.h"
#include "test_util.h"
#include "workload/schemas.h"

namespace geqo {
namespace {

using testing::MustParse;

/// Shared small trained system over TPC-H (training amortized per suite).
class FiltersTest : public ::testing::Test {
 protected:
  static GeqoSystem& System() {
    static GeqoSystem* system = [] {
      static Catalog catalog = MakeTpchCatalog();
      GeqoSystemOptions options;
      options.model.conv1_size = 32;
      options.model.conv2_size = 32;
      options.model.fc1_size = 32;
      options.model.fc2_size = 16;
      options.model.dropout = 0.2f;
      options.training.epochs = 8;
      options.synthetic_data.num_base_queries = 40;
      auto* out = new GeqoSystem(&catalog, options);
      GEQO_CHECK_OK(out->TrainOnSyntheticWorkload(0xF117).status());
      return out;
    }();
    return *system;
  }

  static std::vector<EncodedPlan> Encode(const std::vector<PlanPtr>& plans) {
    auto encoded = EncodeWorkload(plans, System().instance_layout(),
                                  System().catalog(), System().value_range());
    GEQO_CHECK(encoded.ok());
    return *encoded;
  }
};

TEST_F(FiltersTest, CalibrationSetsOperatingPoints) {
  // Training calibrated both thresholds away from their raw defaults.
  const GeqoOptions& options = System().pipeline().options();
  EXPECT_GT(options.vmf.radius, 0.0f);
  EXPECT_GE(options.emf.threshold, 0.02f);
  EXPECT_LE(options.emf.threshold, 0.5f);
}

TEST_F(FiltersTest, CalibratedVmfAdmitsKnownEquivalences) {
  // Build fresh labeled pairs; the calibrated radius must admit nearly all
  // positives (the Table-1 TPR ~0.98 operating point).
  Rng rng(0xAB);
  LabeledDataOptions data_options;
  data_options.num_base_queries = 25;
  auto pairs = BuildLabeledPairs(System().catalog(), data_options, &rng);
  ASSERT_TRUE(pairs.ok());
  auto dataset = EncodeLabeledPairs(*pairs, System().catalog(),
                                    System().instance_layout(),
                                    System().agnostic_layout(),
                                    System().value_range());
  ASSERT_TRUE(dataset.ok());

  const float radius = System().pipeline().options().vmf.radius;
  size_t admitted = 0;
  size_t positives = 0;
  for (size_t i = 0; i < dataset->size(); ++i) {
    if (dataset->labels[i] < 0.5f) continue;
    ++positives;
    const Tensor lhs = System().model().Embed({&dataset->lhs[i]});
    const Tensor rhs = System().model().Embed({&dataset->rhs[i]});
    const float distance = std::sqrt(
        ops::SquaredDistance(lhs.Row(0), rhs.Row(0), lhs.cols()));
    admitted += distance < radius;
  }
  ASSERT_GT(positives, 5u);
  EXPECT_GE(static_cast<double>(admitted) / static_cast<double>(positives),
            0.85);
}

TEST_F(FiltersTest, EmfThresholdCalibrationRespectsBounds) {
  Rng rng(0xAC);
  LabeledDataOptions data_options;
  data_options.num_base_queries = 15;
  auto pairs = BuildLabeledPairs(System().catalog(), data_options, &rng);
  ASSERT_TRUE(pairs.ok());
  auto dataset = EncodeLabeledPairs(*pairs, System().catalog(),
                                    System().instance_layout(),
                                    System().agnostic_layout(),
                                    System().value_range());
  ASSERT_TRUE(dataset.ok());
  const auto threshold = CalibrateEmfThreshold(&System().model(), *dataset);
  ASSERT_TRUE(threshold.ok());
  EXPECT_GE(*threshold, 0.02f);
  EXPECT_LE(*threshold, 0.5f);

  // Calibration without positives is an error, not a silent default.
  ml::PairDataset negatives_only;
  for (size_t i = 0; i < dataset->size(); ++i) {
    if (dataset->labels[i] < 0.5f) {
      negatives_only.Add(dataset->lhs[i], dataset->rhs[i], 0.0f);
    }
  }
  EXPECT_FALSE(
      CalibrateEmfThreshold(&System().model(), negatives_only).ok());
  EXPECT_FALSE(CalibrateVmfRadius(&System().model(), negatives_only).ok());
}

TEST_F(FiltersTest, VmfGroupEmbeddingShapes) {
  const Catalog& catalog = System().catalog();
  const std::vector<PlanPtr> plans = {
      MustParse("SELECT c_custkey FROM customer WHERE c_acctbal > 10",
                catalog),
      MustParse("SELECT c_custkey FROM customer WHERE 10 < c_acctbal",
                catalog),
      MustParse("SELECT c_custkey FROM customer WHERE c_acctbal > 95",
                catalog),
  };
  const std::vector<EncodedPlan> encoded = Encode(plans);
  const VectorMatchingFilter vmf(&System().model(),
                                 &System().instance_layout(),
                                 &System().agnostic_layout());
  const auto embeddings = vmf.EmbedGroup({0, 1, 2}, encoded);
  ASSERT_TRUE(embeddings.ok());
  EXPECT_EQ(embeddings->rows(), 3u);
  EXPECT_EQ(embeddings->cols(), System().model().embedding_dim());

  // The operand-swapped pair encodes identically, hence distance zero.
  const float d01 = std::sqrt(ops::SquaredDistance(
      embeddings->Row(0), embeddings->Row(1), embeddings->cols()));
  const float d02 = std::sqrt(ops::SquaredDistance(
      embeddings->Row(0), embeddings->Row(2), embeddings->cols()));
  EXPECT_FLOAT_EQ(d01, 0.0f);
  EXPECT_GT(d02, 0.0f);
}

TEST_F(FiltersTest, VmfCandidatesAreDeduplicatedAndOrdered) {
  const Catalog& catalog = System().catalog();
  std::vector<PlanPtr> plans;
  for (int i = 0; i < 6; ++i) {
    plans.push_back(MustParse("SELECT c_custkey FROM customer", catalog));
  }
  const std::vector<EncodedPlan> encoded = Encode(plans);
  VmfOptions options;
  options.radius = 10.0f;  // everything within radius
  const VectorMatchingFilter vmf(&System().model(),
                                 &System().instance_layout(),
                                 &System().agnostic_layout(), options);
  const auto pairs = vmf.CandidatePairs({0, 1, 2, 3, 4, 5}, encoded);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 15u);  // C(6,2), each exactly once
  for (const auto& [i, j] : *pairs) EXPECT_LT(i, j);
}

TEST_F(FiltersTest, EmfFilterThresholdSplitsScores) {
  const Catalog& catalog = System().catalog();
  // The EMF runs after the SF, so its training distribution only contains
  // schema-compatible pairs; probe it with same-table pairs.
  const std::vector<PlanPtr> plans = {
      MustParse("SELECT c_custkey FROM customer WHERE c_acctbal > 10",
                catalog),
      MustParse("SELECT c_custkey FROM customer WHERE 10 < c_acctbal",
                catalog),
      MustParse("SELECT c_custkey FROM customer WHERE c_nationkey < 85",
                catalog),
  };
  const std::vector<EncodedPlan> encoded = Encode(plans);
  const EquivalenceModelFilter emf(&System().model(),
                                   &System().instance_layout(),
                                   &System().agnostic_layout());
  const auto scores = emf.Scores({{0, 1}, {0, 2}}, encoded);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 2u);
  // The identical-after-normalization pair must score higher than the
  // different-column, opposite-direction pair.
  EXPECT_GT((*scores)[0], (*scores)[1]);
}

TEST_F(FiltersTest, SystemSnapshotRoundTripKeepsCalibration) {
  const std::string path = ::testing::TempDir() + "/system_snapshot.bin";
  const float radius = System().options().pipeline.vmf.radius;
  const float threshold = System().options().pipeline.emf.threshold;
  ASSERT_TRUE(System().SaveSnapshot(path).ok());
  ASSERT_TRUE(System().LoadSnapshot(path).ok());
  EXPECT_EQ(System().options().pipeline.vmf.radius, radius);
  EXPECT_EQ(System().options().pipeline.emf.threshold, threshold);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geqo
