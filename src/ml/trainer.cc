#include "ml/trainer.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace geqo::ml {

EmfTrainer::EmfTrainer(EmfModel* model, TrainOptions options)
    : model_(model),
      options_(options),
      optimizer_(model->Params(), options.adam),
      rng_(options.seed) {}

TrainReport EmfTrainer::Train(const PairDataset& dataset) {
  return RunEpochs(dataset, options_.epochs);
}

TrainReport EmfTrainer::FineTune(const PairDataset& dataset, size_t epochs) {
  return RunEpochs(dataset, epochs);
}

TrainReport EmfTrainer::RunEpochs(const PairDataset& dataset, size_t epochs) {
  GEQO_CHECK(!dataset.empty()) << "cannot train on an empty dataset";
  Stopwatch watch;
  TrainReport report;
  std::vector<size_t> order(dataset.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  obs::Span train_span("Train");
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    obs::Span epoch_span("train.epoch");
    Stopwatch epoch_watch;
    rng_.Shuffle(order);
    double epoch_loss = 0.0;
    size_t epoch_batches = 0;
    for (size_t begin = 0; begin < dataset.size();
         begin += options_.batch_size) {
      const size_t end = std::min(begin + options_.batch_size, dataset.size());
      const float loss = model_->TrainStep(
          dataset.LhsSlice(order, begin, end),
          dataset.RhsSlice(order, begin, end),
          dataset.LabelSlice(order, begin, end), &optimizer_);
      epoch_loss += loss;
      ++epoch_batches;
      ++report.steps;
    }
    report.final_epoch_loss =
        static_cast<float>(epoch_loss / static_cast<double>(epoch_batches));
    if (obs::MetricsEnabled()) {
      auto& registry = obs::MetricsRegistry::Global();
      registry.GetCounter("train.epochs").Increment();
      registry.GetCounter("train.steps").Add(epoch_batches);
      registry.GetGauge("train.last_epoch_loss").Set(report.final_epoch_loss);
      const double epoch_seconds = epoch_watch.ElapsedSeconds();
      if (epoch_seconds > 0.0) {
        registry.GetGauge("train.examples_per_second")
            .Set(static_cast<double>(dataset.size()) / epoch_seconds);
      }
      registry.GetHistogram("train.epoch_seconds").Observe(epoch_seconds);
    }
    if (options_.verbose) {
      GEQO_LOG(kInfo) << "epoch " << (epoch + 1) << "/" << epochs << " loss "
                      << report.final_epoch_loss;
    }
  }
  report.seconds = watch.ElapsedSeconds();
  return report;
}

std::vector<float> PredictAll(EmfModel* model, const PairDataset& dataset,
                              size_t batch_size) {
  std::vector<float> out;
  out.reserve(dataset.size());
  std::vector<size_t> order(dataset.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const size_t end = std::min(begin + batch_size, dataset.size());
    const Tensor probs = model->PredictProba(
        dataset.LhsSlice(order, begin, end),
        dataset.RhsSlice(order, begin, end));
    for (size_t i = 0; i < probs.rows(); ++i) out.push_back(probs.At(i, 0));
  }
  return out;
}

}  // namespace geqo::ml
