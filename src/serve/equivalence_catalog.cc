#include "serve/equivalence_catalog.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis/plan_validator.h"
#include "common/binary_io.h"
#include "common/checksum_io.h"
#include "common/format_magic.h"
#include "common/stopwatch.h"
#include "filters/emf_filter.h"
#include "filters/vmf.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/stage_scope.h"
#include "plan/canonicalize.h"
#include "workload/labeled_data.h"

namespace geqo::serve {

EquivalenceCatalog::EquivalenceCatalog(const Catalog* db_catalog,
                                       ml::EmfModel* model,
                                       const EncodingLayout* instance_layout,
                                       const EncodingLayout* agnostic_layout,
                                       ValueRange value_range,
                                       CatalogOptions options)
    : db_catalog_(db_catalog),
      model_(model),
      instance_layout_(instance_layout),
      agnostic_layout_(agnostic_layout),
      value_range_(value_range),
      options_(options),
      options_status_(options.Validate()),
      verifier_(db_catalog, options.pipeline.verifier) {
  // Only build the index once the options are known-valid (the HnswIndex
  // constructor enforces its parameters with aborts, not Status).
  if (options_status_.ok()) {
    index_ = std::make_unique<ann::HnswIndex>(model_->embedding_dim(),
                                              options_.pipeline.vmf.hnsw);
  }
}

std::vector<size_t> EquivalenceCatalog::ClassMembers(size_t id) const {
  const size_t root = classes_.Find(id);
  std::vector<size_t> members;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (classes_.Find(i) == root) members.push_back(i);
  }
  return members;
}

Result<EquivalenceCatalog::QueryContext> EquivalenceCatalog::PrepareQuery(
    const PlanPtr& plan) const {
  QueryContext query;
  query.plan = plan;
  // Debug-gated boundary checks: the incoming plan must be valid, and its
  // canonical form must be a Canonicalize fixed point (the canonical hash
  // below is only meaningful if canonicalization is idempotent).
  if (analysis::DebugValidationEnabled()) {
    analysis::DebugValidatePlan(plan, *db_catalog_, "serve.PrepareQuery");
    analysis::DebugValidateCanonical(Canonicalize(plan), *db_catalog_,
                                     "serve.PrepareQuery/canonical");
  }
  query.canonical_hash = CanonicalHash(plan);
  GEQO_ASSIGN_OR_RETURN(query.signature, SchemaSignature(plan, *db_catalog_));
  GEQO_ASSIGN_OR_RETURN(
      std::vector<EncodedPlan> encoded,
      EncodeWorkload({plan}, *instance_layout_, *db_catalog_, value_range_));
  query.encoded = std::move(encoded[0]);
  return query;
}

void EquivalenceCatalog::UpdateGauges() const {
  if (!obs::MetricsEnabled()) return;
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("serve.index_size").Set(static_cast<double>(size()));
  registry.GetGauge("serve.classes").Set(static_cast<double>(NumClasses()));
  registry.GetGauge("serve.memo_size").Set(static_cast<double>(memo_.size()));
}

Result<size_t> EquivalenceCatalog::Add(const PlanPtr& plan) {
  GEQO_RETURN_NOT_OK(options_status_);
  obs::Span span("serve.Add");
  GEQO_ASSIGN_OR_RETURN(QueryContext query, PrepareQuery(plan));
  return AddPrepared(std::move(query));
}

Result<size_t> EquivalenceCatalog::AddPrepared(QueryContext query) {
  // The embedding uses the singleton agnostic map (see EmbedSingle): it
  // depends only on the plan, so it is computed exactly once per entry for
  // the catalog's whole lifetime, across any number of later Adds.
  const VectorMatchingFilter vmf(model_, instance_layout_, agnostic_layout_,
                                 options_.pipeline.vmf);
  GEQO_ASSIGN_OR_RETURN(const std::vector<float> embedding,
                        vmf.EmbedSingle(query.encoded));
  const size_t id = index_->Add(embedding);
  GEQO_CHECK(id == entries_.size());
  sf_groups_[query.signature].push_back(id);
  entries_.push_back(Entry{std::move(query.plan), query.canonical_hash,
                           std::move(query.encoded)});
  const size_t class_id = classes_.Add();
  GEQO_CHECK(class_id == id);
  ++stats_.adds;
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().GetCounter("serve.adds").Add(1);
    UpdateGauges();
  }
  return id;
}

Result<ProbeResult> EquivalenceCatalog::Probe(const PlanPtr& plan) {
  GEQO_RETURN_NOT_OK(options_status_);
  GEQO_ASSIGN_OR_RETURN(const QueryContext query, PrepareQuery(plan));
  return ProbePrepared(query);
}

EquivalenceVerdict EquivalenceCatalog::VerdictFor(const QueryContext& query,
                                                  size_t id,
                                                  ProbeResult* result) {
  const PairFingerprint key =
      FingerprintPair(query.canonical_hash, entries_[id].canonical_hash);
  if (const auto memoized = memo_.Lookup(key)) {
    ++stats_.memo_hits;
    ++result->memo_hits;
    return *memoized;
  }
  ++stats_.verifier_calls;
  ++result->verifier_calls;
  const EquivalenceVerdict verdict =
      verifier_.CheckEquivalence(query.plan, entries_[id].plan);
  memo_.Insert(key, verdict);
  return verdict;
}

Result<ProbeResult> EquivalenceCatalog::ProbePrepared(
    const QueryContext& query) {
  obs::Span span("serve.Probe");
  Stopwatch watch;
  ProbeResult result;
  ++stats_.probes;
  const GeqoOptions& opt = options_.pipeline;

  // Stage 1: schema filter via the incremental signature map — O(log groups)
  // instead of re-grouping the workload.
  StageReport sf_report = MakeStage("sf", opt.use_sf);
  StageScope sf_scope("serve.sf");
  std::vector<size_t> pool;
  if (opt.use_sf) {
    const auto it = sf_groups_.find(query.signature);
    if (it != sf_groups_.end()) pool = it->second;
  } else {
    pool.resize(entries_.size());
    for (size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  }
  sf_report.pairs_in = entries_.size();
  sf_report.pairs_out = pool.size();
  sf_scope.Finish(&sf_report);
  result.stages.push_back(std::move(sf_report));

  // Stage 2: VMF as one radius search of the shared persistent index,
  // intersected with the SF pool.
  StageReport vmf_report = MakeStage("vmf", opt.use_vmf);
  StageScope vmf_scope("serve.vmf");
  std::vector<size_t> candidates;
  if (opt.use_vmf && !pool.empty()) {
    const VectorMatchingFilter vmf(model_, instance_layout_, agnostic_layout_,
                                   opt.vmf);
    GEQO_ASSIGN_OR_RETURN(const std::vector<float> embedding,
                          vmf.EmbedSingle(query.encoded));
    std::vector<size_t> hits;
    for (const ann::Neighbor& neighbor :
         index_->SearchRadius(embedding.data(), opt.vmf.radius)) {
      hits.push_back(neighbor.id);
    }
    std::sort(hits.begin(), hits.end());
    std::set_intersection(pool.begin(), pool.end(), hits.begin(), hits.end(),
                          std::back_inserter(candidates));
  } else {
    candidates = pool;
  }
  vmf_report.pairs_in = pool.size();
  vmf_report.pairs_out = candidates.size();
  vmf_scope.Finish(&vmf_report);
  result.stages.push_back(std::move(vmf_report));

  // Stage 3: EMF scoring of (query, entry) pairs — slot 0 is the query, the
  // entries are viewed in place.
  StageReport emf_report = MakeStage("emf", opt.use_emf);
  StageScope emf_scope("serve.emf");
  emf_report.pairs_in = candidates.size();
  if (opt.use_emf && !candidates.empty()) {
    const EquivalenceModelFilter emf(model_, instance_layout_,
                                     agnostic_layout_, opt.emf);
    std::vector<const EncodedPlan*> views;
    views.reserve(candidates.size() + 1);
    views.push_back(&query.encoded);
    std::vector<std::pair<size_t, size_t>> pairs;
    pairs.reserve(candidates.size());
    for (size_t k = 0; k < candidates.size(); ++k) {
      views.push_back(&entries_[candidates[k]].encoded);
      pairs.emplace_back(0, k + 1);
    }
    GEQO_ASSIGN_OR_RETURN(const std::vector<float> scores,
                          emf.Scores(pairs, views));
    std::vector<size_t> surviving;
    for (size_t k = 0; k < candidates.size(); ++k) {
      if (scores[k] >= opt.emf.threshold) surviving.push_back(candidates[k]);
    }
    candidates = std::move(surviving);
  }
  emf_report.pairs_out = candidates.size();
  emf_scope.Finish(&emf_report);
  result.stages.push_back(std::move(emf_report));
  result.candidate_ids = candidates;

  // Stage 4: verification, memo-first and class-at-a-time. Candidates are
  // grouped by equivalence class; the representative (the class's oldest
  // member) is decided first. A proof adopts the entire class and a
  // refutation rejects it — members are mutually proven equivalent, so
  // either verdict transfers — and only a kUnknown (budget exhaustion /
  // unsupported fragment) falls back to the class's individual survivors.
  StageReport verify_report = MakeStage("verify", opt.run_verifier);
  StageScope verify_scope("serve.verify");
  std::vector<size_t> equivalent;
  std::vector<size_t> proven_roots;
  if (!opt.run_verifier) {
    // Batch-pipeline parity: without the verifier, the filter survivors are
    // reported as (approximate) equivalences.
    equivalent = candidates;
    for (const size_t id : candidates) {
      proven_roots.push_back(classes_.Find(id));
    }
  } else if (!candidates.empty()) {
    const VerifierStats before = verifier_.stats();
    std::map<size_t, std::vector<size_t>> by_class;
    for (const size_t id : candidates) {
      by_class[classes_.Find(id)].push_back(id);
    }
    for (const auto& [root, class_candidates] : by_class) {
      size_t lookups = 1;
      EquivalenceVerdict verdict = VerdictFor(query, root, &result);
      if (verdict == EquivalenceVerdict::kUnknown) {
        // The representative was inconclusive; any surviving member can
        // still decide the class (q ~ member and member ~ root compose).
        for (const size_t id : class_candidates) {
          if (id == root) continue;
          ++lookups;
          verdict = VerdictFor(query, id, &result);
          if (verdict != EquivalenceVerdict::kUnknown) break;
        }
      }
      if (verdict == EquivalenceVerdict::kEquivalent) {
        const std::vector<size_t> members = ClassMembers(root);
        equivalent.insert(equivalent.end(), members.begin(), members.end());
        proven_roots.push_back(root);
        if (members.size() > lookups) {
          const size_t shortcuts = members.size() - lookups;
          result.class_shortcuts += shortcuts;
          stats_.class_shortcuts += shortcuts;
        }
      } else if (verdict == EquivalenceVerdict::kNotEquivalent &&
                 class_candidates.size() > lookups) {
        const size_t shortcuts = class_candidates.size() - lookups;
        result.class_shortcuts += shortcuts;
        stats_.class_shortcuts += shortcuts;
      }
    }
    FoldVerifierStatsToMetrics(verifier_.stats().DeltaSince(before));
  }
  std::sort(equivalent.begin(), equivalent.end());
  equivalent.erase(std::unique(equivalent.begin(), equivalent.end()),
                   equivalent.end());
  result.equivalent_ids = std::move(equivalent);
  if (!proven_roots.empty()) {
    result.representative =
        *std::min_element(proven_roots.begin(), proven_roots.end());
  }
  verify_report.pairs_in = result.candidate_ids.size();
  verify_report.pairs_out = result.equivalent_ids.size();
  verify_scope.Finish(&verify_report);
  result.stages.push_back(std::move(verify_report));

  result.seconds = watch.ElapsedSeconds();
  if (obs::MetricsEnabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("serve.probes").Add(1);
    registry.GetCounter("serve.verifier_calls").Add(result.verifier_calls);
    registry.GetCounter("serve.memo_hits").Add(result.memo_hits);
    registry.GetCounter("serve.class_shortcuts").Add(result.class_shortcuts);
    registry.GetHistogram("serve.probe_seconds").Observe(result.seconds);
    UpdateGauges();
  }
  return result;
}

Result<ProbeAddResult> EquivalenceCatalog::ProbeAdd(const PlanPtr& plan) {
  GEQO_RETURN_NOT_OK(options_status_);
  obs::Span span("serve.ProbeAdd");
  GEQO_ASSIGN_OR_RETURN(QueryContext query, PrepareQuery(plan));
  GEQO_ASSIGN_OR_RETURN(ProbeResult probe, ProbePrepared(query));
  // Collect the classes to join before inserting (the new entry's own
  // singleton class would otherwise show up in the scan).
  std::set<size_t> roots;
  for (const size_t id : probe.equivalent_ids) roots.insert(classes_.Find(id));
  GEQO_ASSIGN_OR_RETURN(const size_t id, AddPrepared(std::move(query)));
  for (const size_t root : roots) {
    if (classes_.Union(id, root)) ++stats_.unions;
  }
  if (obs::MetricsEnabled()) UpdateGauges();
  ProbeAddResult result;
  result.probe = std::move(probe);
  result.id = id;
  result.class_id = classes_.Find(id);
  return result;
}

Status EquivalenceCatalog::Save(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  GEQO_RETURN_NOT_OK(Save(file));
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status EquivalenceCatalog::Save(std::ostream& os) const {
  GEQO_RETURN_NOT_OK(options_status_);
  // Buffer the payload so the v2 checksum footer can cover it whole.
  std::ostringstream payload;
  io::BinaryWriter writer(payload, "catalog snapshot");
  writer.U64(io::kCatalogMagic);
  writer.U64(io::kCatalogVersion);
  writer.U64(CatalogFingerprint(*db_catalog_));
  writer.U64(model_->embedding_dim());
  writer.U64(entries_.size());
  for (const Entry& entry : entries_) writer.U64(entry.canonical_hash);
  GEQO_RETURN_NOT_OK(writer.status());
  GEQO_RETURN_NOT_OK(index_->Serialize(payload));
  for (const size_t parent : classes_.CompressedParents()) {
    writer.U64(parent);
  }
  memo_.Serialize(writer);
  writer.U64(io::kCatalogEndMagic);
  GEQO_RETURN_NOT_OK(writer.status());
  return io::WriteChecksummed(os, payload.str(), "catalog snapshot");
}

Result<std::unique_ptr<EquivalenceCatalog>> EquivalenceCatalog::Load(
    const std::string& path, const Catalog* db_catalog, ml::EmfModel* model,
    const EncodingLayout* instance_layout,
    const EncodingLayout* agnostic_layout, ValueRange value_range,
    const std::vector<PlanPtr>& plans, CatalogOptions options) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  Result<std::unique_ptr<EquivalenceCatalog>> catalog =
      Load(file, db_catalog, model, instance_layout, agnostic_layout,
           value_range, plans, options);
  if (!catalog.ok()) {
    return Status(catalog.status().code(),
                  catalog.status().message() + " (file: " + path + ")");
  }
  return catalog;
}

Result<std::unique_ptr<EquivalenceCatalog>> EquivalenceCatalog::Load(
    std::istream& is, const Catalog* db_catalog, ml::EmfModel* model,
    const EncodingLayout* instance_layout,
    const EncodingLayout* agnostic_layout, ValueRange value_range,
    const std::vector<PlanPtr>& plans, CatalogOptions options) {
  // The v2 footer checksums the whole payload: corruption anywhere —
  // including trailing bytes after the end marker — fails here, before any
  // section is interpreted.
  GEQO_ASSIGN_OR_RETURN(const std::string payload,
                        io::ReadChecksummed(is, "catalog snapshot"));
  std::istringstream stream(payload);
  io::BinaryReader reader(stream, "catalog snapshot");
  const uint64_t magic = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (magic != io::kCatalogMagic) {
    return Status::InvalidArgument(
        "catalog snapshot: bad magic (not a catalog snapshot)");
  }
  const uint64_t version = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (version != io::kCatalogVersion) {
    return Status::InvalidArgument(
        "catalog snapshot: unsupported version " + std::to_string(version) +
        " (expected " + std::to_string(io::kCatalogVersion) + ")");
  }
  const uint64_t saved_fingerprint = reader.U64();
  const uint64_t saved_dim = reader.U64();
  const uint64_t count = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  const uint64_t expected_fingerprint = CatalogFingerprint(*db_catalog);
  if (saved_fingerprint != expected_fingerprint) {
    return Status::InvalidArgument(
        "catalog snapshot: database schema fingerprint mismatch (snapshot " +
        std::to_string(saved_fingerprint) + ", current " +
        std::to_string(expected_fingerprint) +
        ") — the snapshot was built against a different catalog");
  }
  if (saved_dim != model->embedding_dim()) {
    return Status::InvalidArgument(
        "catalog snapshot: embedding dim mismatch (snapshot " +
        std::to_string(saved_dim) + ", model " +
        std::to_string(model->embedding_dim()) + ")");
  }
  if (count != plans.size()) {
    return Status::InvalidArgument(
        "catalog snapshot: entry count mismatch (snapshot " +
        std::to_string(count) + ", caller supplied " +
        std::to_string(plans.size()) + " plans)");
  }
  std::vector<uint64_t> hashes(count);
  for (auto& hash : hashes) hash = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());

  auto catalog = std::make_unique<EquivalenceCatalog>(
      db_catalog, model, instance_layout, agnostic_layout, value_range,
      options);
  GEQO_RETURN_NOT_OK(catalog->options_status_);
  // Re-derive only the cheap per-entry state (signature, instance encoding);
  // embeddings come from the serialized index below and memoized verdicts
  // from the memo section — nothing is re-embedded or re-proved.
  for (size_t i = 0; i < plans.size(); ++i) {
    GEQO_ASSIGN_OR_RETURN(QueryContext query,
                          catalog->PrepareQuery(plans[i]));
    if (query.canonical_hash != hashes[i]) {
      return Status::InvalidArgument(
          "catalog snapshot: plan " + std::to_string(i) +
          " does not match the snapshot (canonical hash " +
          std::to_string(query.canonical_hash) + ", snapshot expects " +
          std::to_string(hashes[i]) + ") — plans must be passed in Add order");
    }
    catalog->sf_groups_[query.signature].push_back(i);
    catalog->entries_.push_back(Entry{std::move(query.plan),
                                      query.canonical_hash,
                                      std::move(query.encoded)});
  }
  GEQO_ASSIGN_OR_RETURN(catalog->index_, ann::HnswIndex::Deserialize(stream));
  if (catalog->index_->size() != count) {
    return Status::InvalidArgument(
        "catalog snapshot: index holds " +
        std::to_string(catalog->index_->size()) + " vectors for " +
        std::to_string(count) + " entries (corrupt snapshot)");
  }
  if (catalog->index_->dim() != saved_dim) {
    return Status::InvalidArgument(
        "catalog snapshot: index dim does not match header (corrupt "
        "snapshot)");
  }
  std::vector<size_t> parents(count);
  for (auto& parent : parents) parent = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  GEQO_RETURN_NOT_OK(catalog->classes_.Restore(std::move(parents)));
  GEQO_RETURN_NOT_OK(catalog->memo_.Deserialize(reader));
  if (reader.U64() != io::kCatalogEndMagic) {
    reader.Fail("missing end marker");
  }
  GEQO_RETURN_NOT_OK(reader.status());
  if (!reader.AtEof()) {
    return Status::InvalidArgument(
        "catalog snapshot: trailing bytes after end marker (corrupt "
        "snapshot)");
  }
  if (obs::MetricsEnabled()) catalog->UpdateGauges();
  return catalog;
}

}  // namespace geqo::serve
