#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "encode/agnostic.h"
#include "ml/dataset.h"
#include "workload/generator.h"
#include "workload/rewrite.h"

/// \file labeled_data.h
/// Labeled training-data synthesis (§5): positives are pairs drawn from a
/// base query's rewrite-variant closure (AMOEBA + WeTune role), negatives
/// are random schema-compatible pairs from distinct bases; the result is a
/// balanced dataset of (lhs, rhs, label) plans, plus the encoder that turns
/// it into the EMF's tensor form.

namespace geqo {

/// \brief One labeled subexpression pair.
struct LabeledPair {
  PlanPtr lhs;
  PlanPtr rhs;
  bool equivalent = false;
};

/// \brief Synthesis knobs.
struct LabeledDataOptions {
  size_t num_base_queries = 60;
  size_t variants_per_query = 3;
  /// Negatives generated per positive (1 = balanced, as in §5).
  double negatives_per_positive = 1.0;
  /// Cap on positive pairs taken per base query's variant closure.
  size_t max_positive_pairs_per_base = 6;
  GeneratorOptions generator;
  RewriteOptions rewrite;
};

/// \brief Builds a balanced labeled pair set over \p catalog.
Result<std::vector<LabeledPair>> BuildLabeledPairs(
    const Catalog& catalog, const LabeledDataOptions& options, Rng* rng);

/// \brief Encodes labeled plan pairs into an ml::PairDataset: instance
/// encoding (§4.1) followed by the pairwise fast agnostic conversion
/// (§4.2.1). Pairs that exceed the agnostic layout's capacity are skipped
/// (counted in \p skipped if non-null).
Result<ml::PairDataset> EncodeLabeledPairs(
    const std::vector<LabeledPair>& pairs, const Catalog& catalog,
    const EncodingLayout& instance_layout, const EncodingLayout& agnostic_layout,
    ValueRange value_range, size_t* skipped = nullptr);

/// \brief Instance-encodes a workload of subexpressions (shared by the
/// filters and the pipeline). Position i of the result corresponds to
/// workload[i].
Result<std::vector<EncodedPlan>> EncodeWorkload(
    const std::vector<PlanPtr>& workload, const EncodingLayout& instance_layout,
    const Catalog& catalog, ValueRange value_range);

}  // namespace geqo
