#include "analysis/sql_lint.h"

#include <string>

#include "analysis/plan_validator.h"
#include "parser/parser.h"

namespace geqo::analysis {
namespace {

/// Replaces `--` comments with spaces, keeping every newline so byte
/// positions keep mapping to the same lines.
std::string StripComments(std::string_view text) {
  std::string out(text);
  size_t i = 0;
  while (i + 1 < out.size()) {
    if (out[i] == '-' && out[i + 1] == '-') {
      while (i < out.size() && out[i] != '\n') out[i++] = ' ';
    } else {
      ++i;
    }
  }
  return out;
}

size_t LineOf(std::string_view text, size_t offset) {
  size_t line = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

bool IsBlank(std::string_view statement) {
  for (const char c : statement) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
  }
  return true;
}

}  // namespace

Diagnostics LintSqlText(std::string_view text, const Catalog& catalog) {
  Diagnostics out;
  const std::string stripped = StripComments(text);
  const PlanValidator validator(&catalog);
  size_t start = 0;
  while (start <= stripped.size()) {
    size_t end = stripped.find(';', start);
    if (end == std::string::npos) end = stripped.size();
    const std::string_view statement =
        std::string_view(stripped).substr(start, end - start);
    if (!IsBlank(statement)) {
      // Skip leading whitespace so the reported line is the statement's.
      size_t first = start;
      while (first < end && (stripped[first] == ' ' ||
                             stripped[first] == '\t' ||
                             stripped[first] == '\n' ||
                             stripped[first] == '\r')) {
        ++first;
      }
      const std::string line = "line " + std::to_string(LineOf(stripped, first));
      const Result<PlanPtr> plan = ParseSql(statement, catalog);
      if (!plan.ok()) {
        Report(&out, "sql.parse", plan.status().message(), line);
      } else {
        for (Diagnostic diagnostic : validator.Validate(*plan)) {
          diagnostic.context = line + ", " + diagnostic.context;
          out.push_back(std::move(diagnostic));
        }
      }
    }
    start = end + 1;
  }
  return out;
}

}  // namespace geqo::analysis
