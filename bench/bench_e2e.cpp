#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "exec/executor.h"
#include "exec/result_cache.h"
#include "exec/session.h"
#include "plan/canonicalize.h"
#include "serve/sharded_catalog.h"

/// \file bench_e2e.cpp
/// The end-to-end compute-reuse loop (§7.7 at reduced scale): concurrent
/// client streams of recurring subexpressions are served either by raw
/// vectorized execution (no reuse machinery) or through the full loop —
/// ShardedCatalog::ProbeAdd resolves each query to an equivalence class,
/// and an OnlineResultCache short-circuits classes with demonstrated
/// reuse. The artifact (BENCH_e2e.json) records both stream reports plus a
/// single-stream comparison of the legacy row oracle against the
/// morsel-driven vectorized engine.

namespace geqo::bench {
namespace {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1) + 0.5));
  return sorted[index];
}

/// The recurring stream: \p rounds passes over the workload, each round
/// rotated so clients do not replay the exact arrival order.
std::vector<const PlanPtr*> BuildStream(const std::vector<PlanPtr>& plans,
                                        size_t rounds) {
  std::vector<const PlanPtr*> stream;
  stream.reserve(plans.size() * rounds);
  for (size_t r = 0; r < rounds; ++r) {
    const size_t offset = (r * 7) % plans.size();
    for (size_t i = 0; i < plans.size(); ++i) {
      stream.push_back(&plans[(offset + i) % plans.size()]);
    }
  }
  return stream;
}

/// Single-stream engine phase: runs every query in \p stream through \p run
/// and reports aggregate throughput.
template <typename RunFn>
E2eEngineReport RunEngine(const std::string& label,
                          const std::vector<const PlanPtr*>& stream,
                          const RunFn& run) {
  E2eEngineReport report;
  report.label = label;
  Stopwatch watch;
  for (const PlanPtr* plan : stream) {
    auto rows = run(*plan);
    GEQO_CHECK(rows.ok()) << label << ": " << rows.status().ToString();
    report.rows += rows->num_rows();
  }
  report.queries = stream.size();
  report.seconds = watch.ElapsedSeconds();
  report.queries_per_second =
      static_cast<double>(report.queries) / std::max(report.seconds, 1e-12);
  return report;
}

void PrintEngine(const E2eEngineReport& report) {
  std::printf("%-12s  queries=%-5zu rows=%-7zu %8.3f s  %10.1f q/s\n",
              report.label.c_str(), report.queries, report.rows,
              report.seconds, report.queries_per_second);
}

/// Closed-loop multi-client phase: \p clients threads pull queries from the
/// shared \p stream via an atomic cursor and serve each one through
/// \p serve (which returns true when the query was a cache hit). Latency is
/// per-query service time under the closed-loop convention — the stream has
/// no think time, so throughput is the headline number and the percentiles
/// describe the per-query cost distribution.
template <typename ServeFn>
E2eStreamReport RunStream(const std::string& label,
                          const std::vector<const PlanPtr*>& stream,
                          size_t clients, const ServeFn& serve) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> hits{0};
  std::atomic<bool> failed{false};
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(stream.size() / clients + 1);
      while (true) {
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= stream.size()) return;
        Stopwatch query_watch;
        bool hit = false;
        if (!serve(*stream[i], &hit)) {
          failed = true;
          return;
        }
        if (hit) hits.fetch_add(1, std::memory_order_relaxed);
        latencies[c].push_back(query_watch.ElapsedSeconds());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  GEQO_CHECK(!failed.load()) << label << ": a client query failed";

  std::vector<double> merged;
  for (const auto& per_client : latencies) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  std::sort(merged.begin(), merged.end());
  E2eStreamReport report;
  report.label = label;
  report.clients = clients;
  report.queries = merged.size();
  report.cache_hits = hits.load();
  report.executions = report.queries - report.cache_hits;
  report.p50_seconds = Percentile(merged, 0.50);
  report.p99_seconds = Percentile(merged, 0.99);
  report.wall_seconds = wall.ElapsedSeconds();
  report.queries_per_second = static_cast<double>(report.queries) /
                              std::max(report.wall_seconds, 1e-12);
  return report;
}

void PrintStream(const E2eStreamReport& report) {
  std::printf(
      "%-10s  %zu clients  queries=%-5zu exec=%-5zu hits=%-5zu "
      "p50=%7.3f ms  p99=%7.3f ms  wall=%6.2f s  %8.1f q/s\n",
      report.label.c_str(), report.clients, report.queries, report.executions,
      report.cache_hits, report.p50_seconds * 1e3, report.p99_seconds * 1e3,
      report.wall_seconds, report.queries_per_second);
}

}  // namespace
}  // namespace geqo::bench

int main() {
  using namespace geqo;
  using namespace geqo::bench;

  PrintHeader("bench_e2e",
              "the end-to-end compute-reuse loop (equivalence detection "
              "feeding an online result cache over the vectorized engine)");

  const Scale scale = GetScale();
  BenchContext context = TpchTrainedSystem(scale);
  const DetectionWorkload workload = MakeDetectionWorkload(
      *context.catalog, Pick(24, 48, 96), Pick(8, 16, 32), /*seed=*/0xE2E0);
  const size_t rounds = Pick(4, 5, 7);
  const std::vector<const PlanPtr*> stream =
      BuildStream(workload.subexpressions, rounds);

  DataGenOptions data_options;
  data_options.default_rows = Pick(300, 600, 1200);
  data_options.key_cardinality = 40;
  data_options.seed = 0xE2EDA7A;
  const Database database = Database::Generate(*context.catalog, data_options);
  std::printf("# workload: %zu subexpressions x %zu rounds over %zu data "
              "rows\n\n",
              workload.subexpressions.size(), rounds, database.TotalRows());

  // Phase 1: single-stream engine comparison, with a bag-equality parity
  // sweep on the first round. The oracle's row-at-a-time evaluation is the
  // semantics reference; the morsel-driven engine must match it exactly
  // before its throughput means anything.
  std::printf("# single-stream engine comparison\n");
  Executor oracle(&database);
  exec::ExecutionSession session(&database);
  for (const PlanPtr& plan : workload.subexpressions) {
    auto expected = oracle.Execute(plan);
    GEQO_CHECK(expected.ok()) << expected.status().ToString();
    auto actual = session.Execute(plan);
    GEQO_CHECK(actual.ok()) << actual.status().ToString();
    GEQO_CHECK(expected->BagEquals(*actual))
        << "vectorized result diverges from the row oracle";
  }
  std::vector<E2eEngineReport> engines;
  engines.push_back(RunEngine("row-oracle", stream, [&](const PlanPtr& plan) {
    return oracle.Execute(plan);
  }));
  PrintEngine(engines.back());
  engines.push_back(RunEngine("vectorized", stream, [&](const PlanPtr& plan) {
    return session.Execute(plan);
  }));
  PrintEngine(engines.back());
  const double engine_speedup =
      engines[1].queries_per_second /
      std::max(engines[0].queries_per_second, 1e-12);
  std::printf("vectorized over row-oracle: %.2fx\n\n", engine_speedup);

  // Phase 2: concurrent client streams. The uncached configuration executes
  // every arrival; the cached configuration resolves each arrival to an
  // equivalence class — an exact-match tier first (CanonicalHash lookup, the
  // cheapest filter in the stack), falling back to the semantic tier
  // (ShardedCatalog::ProbeAdd) for texts it has never seen — and then lets
  // the OnlineResultCache short-circuit classes with demonstrated reuse.
  // Rewritten duplicates miss the exact tier but land in their original
  // class through the probe, which is the detection loop paying for itself.
  const size_t clients = Pick(2, 4, 4);
  std::printf("# concurrent streams (%zu clients)\n", clients);
  std::vector<E2eStreamReport> streams;
  {
    streams.push_back(RunStream(
        "uncached", stream, clients, [&](const PlanPtr& plan, bool* hit) {
          *hit = false;
          exec::ExecutionSession client_session(&database);
          return client_session.Execute(plan).ok();
        }));
    PrintStream(streams.back());
  }

  auto catalog = context.system->OpenShardedCatalog();
  // Budget sized to hold a handful of representatives, so admission and
  // eviction both exercise (the §7.7 knapsack at online scale).
  const size_t budget_bytes = 1024 * 1024;
  OnlineResultCache cache(budget_bytes);
  {
    // Per-class serving profile: the last measured execution, used to value
    // accesses before they execute (hits are charged the cost they avoided).
    struct ClassProfile {
      double seconds = 0.0;
      size_t bytes = 0;
    };
    std::unordered_map<size_t, ClassProfile> profiles;
    std::unordered_map<uint64_t, size_t> class_by_hash;
    std::mutex cache_mu;
    streams.push_back(RunStream(
        "cached", stream, clients, [&](const PlanPtr& plan, bool* hit) {
          const uint64_t hash = CanonicalHash(plan);
          size_t cls = 0;
          bool known_text = false;
          {
            std::lock_guard<std::mutex> lock(cache_mu);
            const auto it = class_by_hash.find(hash);
            if (it != class_by_hash.end()) {
              cls = it->second;
              known_text = true;
            }
          }
          if (!known_text) {
            auto probe = catalog->ProbeAdd(plan);
            if (!probe.ok()) return false;
            cls = catalog->ClassOf(probe->id);
            std::lock_guard<std::mutex> lock(cache_mu);
            class_by_hash.emplace(hash, cls);
          }
          {
            std::lock_guard<std::mutex> lock(cache_mu);
            const ClassProfile& known = profiles[cls];
            const CacheAccess access =
                cache.OnQuery(CacheRequest{.equivalence_class = cls,
                                           .canonical_hash = hash,
                                           .execution_seconds = known.seconds,
                                           .result_bytes = known.bytes});
            if (access.hit) {
              *hit = true;
              return true;
            }
          }
          *hit = false;
          exec::ExecutionSession client_session(&database);
          Stopwatch exec_watch;
          auto rows = client_session.Execute(plan);
          if (!rows.ok()) return false;
          const double seconds = exec_watch.ElapsedSeconds();
          std::lock_guard<std::mutex> lock(cache_mu);
          ClassProfile& profile = profiles[cls];
          profile.seconds = seconds;
          profile.bytes = rows->ByteSize();
          return true;
        }));
    catalog->DrainPendingVerifications();
    PrintStream(streams.back());
  }

  const double cached_speedup =
      streams[1].queries_per_second /
      std::max(streams[0].queries_per_second, 1e-12);
  std::printf("\ncached over uncached throughput: %.2fx  (hit rate %.0f%%)\n",
              cached_speedup,
              100.0 * static_cast<double>(streams[1].cache_hits) /
                  std::max<size_t>(streams[1].queries, 1));
  std::printf("catalog: %zu entries in %zu classes; cache: %zu/%zu bytes, "
              "%zu admissions, %zu evictions, %zu rejected\n",
              catalog->size(), catalog->NumClasses(),
              cache.stats().used_bytes, cache.budget_bytes(),
              cache.stats().admissions, cache.stats().evictions,
              cache.stats().rejected);
  // Throughput comparisons are noisy on loaded machines, so a regression is
  // reported (and recorded in BENCH_e2e.json) rather than hard-aborted;
  // lanes that want a floor set GEQO_E2E_MIN_SPEEDUP (a factor, e.g. "1.0"
  // for parity).
  if (cached_speedup < 1.0) {
    std::printf("WARNING: cached stream (%.1f q/s) did not beat the uncached "
                "stream (%.1f q/s) on this run — likely scheduling noise\n",
                streams[1].queries_per_second, streams[0].queries_per_second);
  }
  if (const char* min_speedup = std::getenv("GEQO_E2E_MIN_SPEEDUP");
      min_speedup != nullptr && std::atof(min_speedup) > 0.0) {
    GEQO_CHECK(cached_speedup >= std::atof(min_speedup))
        << "cached-over-uncached speedup " << cached_speedup
        << "x is under GEQO_E2E_MIN_SPEEDUP=" << min_speedup;
  }

  WriteE2eArtifact(engines, engine_speedup, streams, cached_speedup,
                   catalog->size(), catalog->NumClasses(),
                   cache.stats().used_bytes, cache.budget_bytes());
  std::printf("\nwrote BENCH_e2e.json\n");
  return 0;
}
