#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "tensor/tensor.h"

/// \file serialize.h
/// Binary (de)serialization of named tensors, used to persist the trained
/// EMF model (the paper reports a ~2.3 MB serialized size, §7.1.2) and to
/// swap fine-tuned models in after an SSFL round.

namespace geqo::nn {

/// A named tensor in a model's state (parameters + batch-norm statistics).
using StateEntry = std::pair<std::string, Tensor*>;

/// \brief Writes all \p state tensors to \p path. Format: magic, count, then
/// per tensor (name, rows, cols, float32 row-major data).
Status SaveState(const std::vector<StateEntry>& state, const std::string& path);

/// \brief Stream variant, for embedding a model state section inside a
/// larger snapshot (the section is self-delimiting).
Status SaveState(const std::vector<StateEntry>& state, std::ostream& os);

/// \brief Restores \p state tensors from \p path. Names and shapes must
/// match the saved file exactly.
Status LoadState(const std::vector<StateEntry>& state, const std::string& path);

/// \brief Stream variant of LoadState; consumes exactly one state section.
Status LoadState(const std::vector<StateEntry>& state, std::istream& is);

/// \brief Size in bytes of a saved state file.
Result<size_t> StateFileSize(const std::string& path);

}  // namespace geqo::nn
