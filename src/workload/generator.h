#pragma once

#include <vector>

#include "common/rng.h"
#include "plan/plan.h"
#include "plan/schema.h"

/// \file generator.h
/// AMOEBA-style SPJ query fuzzer (§5). Generates random base queries over a
/// catalog: a connected join path through the catalog's join-key graph,
/// conjunctive selection predicates over numeric columns, and a projection.
/// Substitution note (DESIGN.md §1): AMOEBA's role in the paper is to supply
/// diverse base queries for training-data synthesis; this fuzzer fills that
/// role for our catalogs.

namespace geqo {

/// \brief Fuzzer knobs.
struct GeneratorOptions {
  size_t max_tables = 3;          ///< 1..max joined tables per query
  size_t min_select_predicates = 0;
  size_t max_select_predicates = 3;
  /// Restrict generation to these tables (empty = whole catalog). Detection
  /// benchmarks use a narrow pool so that many subexpressions share an
  /// SF signature, matching the collision-heavy corpora of §7.
  std::vector<std::string> table_pool;
  /// Exact number of projected columns (0 = random 1..max_projected).
  size_t fixed_projection_columns = 0;
  double column_predicate_probability = 0.25;  ///< col-op-col(+c) selections
  /// Probability of wrapping the query in a GROUP BY / aggregation root
  /// (paper §9.1 extension). Zero keeps the classic SPJ-only workloads.
  double aggregate_probability = 0.0;
  double string_predicate_probability = 0.15;
  int64_t constant_min = 0;
  int64_t constant_max = 100;
  size_t max_projected_columns = 4;
};

/// \brief Generates random SPJ logical plans over a catalog.
class QueryGenerator {
 public:
  QueryGenerator(const Catalog* catalog, GeneratorOptions options)
      : catalog_(catalog), options_(options) {}

  /// One random SPJ query (Project over Selects over a join tree).
  PlanPtr Generate(Rng* rng) const;

  /// \p count independent queries.
  std::vector<PlanPtr> GenerateMany(size_t count, Rng* rng) const;

  const Catalog& catalog() const { return *catalog_; }

 private:
  /// Random connected table walk: (table, alias) list plus join predicates.
  void PickTables(Rng* rng,
                  std::vector<std::pair<std::string, std::string>>* tables,
                  std::vector<Comparison>* join_predicates) const;
  Comparison MakeSelectionPredicate(
      Rng* rng,
      const std::vector<std::pair<std::string, std::string>>& tables) const;

  const Catalog* catalog_;
  GeneratorOptions options_;
};

}  // namespace geqo
