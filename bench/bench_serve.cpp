/// \file bench_serve.cpp
/// Online serving benchmark (§1 / §7.7 deployment scenario): streams a
/// detection workload through an EquivalenceCatalog with ProbeAdd — the
/// motivating "check each incoming subexpression against the repository"
/// loop — then re-probes the full stream against the warm catalog. Reports
/// probe latency percentiles and the work the memo cache and equivalence
/// classes save, and writes BENCH_serve.json.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ann/hnsw.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "encode/encoding.h"
#include "filters/vmf.h"
#include "tensor/kernels/kernel_table.h"

namespace geqo::bench {
namespace {

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5));
  return sorted[index];
}

struct PhaseAccumulator {
  std::vector<double> latencies;
  size_t verifier_calls = 0;
  size_t memo_hits = 0;
  size_t class_shortcuts = 0;
  double total_seconds = 0.0;

  void Record(const serve::ProbeResult& probe) {
    latencies.push_back(probe.seconds);
    verifier_calls += probe.verifier_calls;
    memo_hits += probe.memo_hits;
    class_shortcuts += probe.class_shortcuts;
    total_seconds += probe.seconds;
  }

  ServeBenchReport Finish(const std::string& label,
                          const serve::EquivalenceCatalog& catalog) {
    std::sort(latencies.begin(), latencies.end());
    ServeBenchReport report;
    report.label = label;
    report.catalog_size = catalog.size();
    report.num_classes = catalog.NumClasses();
    report.probes = latencies.size();
    report.verifier_calls = verifier_calls;
    report.memo_hits = memo_hits;
    report.class_shortcuts = class_shortcuts;
    const double decided =
        static_cast<double>(memo_hits) + static_cast<double>(verifier_calls);
    report.memo_hit_rate =
        decided > 0.0 ? static_cast<double>(memo_hits) / decided : 0.0;
    report.p50_seconds = Percentile(latencies, 0.50);
    report.p99_seconds = Percentile(latencies, 0.99);
    report.total_seconds = total_seconds;
    return report;
  }
};

void PrintPhase(const ServeBenchReport& report) {
  std::printf(
      "%-8s  probes=%-4zu p50=%7.3f ms  p99=%7.3f ms  verifier=%-5llu "
      "memo=%-5llu shortcuts=%-5llu memo-hit=%5.1f%%\n",
      report.label.c_str(), report.probes, report.p50_seconds * 1e3,
      report.p99_seconds * 1e3,
      static_cast<unsigned long long>(report.verifier_calls),
      static_cast<unsigned long long>(report.memo_hits),
      static_cast<unsigned long long>(report.class_shortcuts),
      report.memo_hit_rate * 100.0);
}

/// Times the serving-core embed+probe loop (EMF embedding through the VMF's
/// singleton map, then an HNSW radius probe of a pre-built catalog index)
/// under the currently forced kernel table / quant mode.
KernelBenchReport RunEmbedProbePhase(const std::string& label,
                                     const VectorMatchingFilter& vmf,
                                     const std::vector<EncodedPlan>& encoded,
                                     float radius) {
  // Index build is serving state, not the measured op; the quant override
  // follows the process-wide switch, calibrating early enough that even the
  // smoke-scale workload exercises the SQ8 path.
  ann::HnswOptions hnsw = vmf.options().hnsw;
  hnsw.quant = ann::QuantOverride::kAuto;
  hnsw.sq8_calibration = std::max<size_t>(8, encoded.size() / 2);
  std::unique_ptr<ann::HnswIndex> index;
  for (const EncodedPlan& plan : encoded) {
    auto embedding = vmf.EmbedSingle(plan);
    GEQO_CHECK(embedding.ok()) << embedding.status().ToString();
    if (index == nullptr) {
      index = std::make_unique<ann::HnswIndex>(embedding->size(), hnsw);
    }
    index->Add(*embedding);
  }
  GEQO_CHECK(index != nullptr);

  KernelBenchReport report;
  report.label = label;
  report.isa = kernels::ActiveIsaName();
  report.quant = kernels::QuantModeName();
  Stopwatch watch;
  // Whole passes over the stream until enough wall clock has accumulated,
  // so both modes are measured over the same op mix.
  while (report.seconds < 0.5) {
    for (const EncodedPlan& plan : encoded) {
      auto embedding = vmf.EmbedSingle(plan);
      GEQO_CHECK(embedding.ok()) << embedding.status().ToString();
      index->SearchRadius(embedding->data(), radius);
    }
    report.ops += encoded.size();
    report.seconds = watch.ElapsedSeconds();
  }
  report.ops_per_second =
      static_cast<double>(report.ops) / std::max(report.seconds, 1e-12);
  return report;
}

void PrintKernelPhase(const KernelBenchReport& report) {
  std::printf("%-12s  isa=%-6s quant=%-4s ops=%-6zu %10.1f ops/s\n",
              report.label.c_str(), report.isa.c_str(), report.quant.c_str(),
              report.ops, report.ops_per_second);
}

}  // namespace
}  // namespace geqo::bench

int main() {
  using namespace geqo;
  using namespace geqo::bench;

  PrintHeader("bench_serve",
              "the online serving scenario (incremental probe latency, "
              "memoization and class shortcuts)");

  const Scale scale = GetScale();
  BenchContext context = TpchTrainedSystem(scale);
  const DetectionWorkload workload = MakeDetectionWorkload(
      *context.catalog, Pick(30, 80, 200), Pick(8, 20, 50), /*seed=*/0x5EF3);
  std::printf("# workload: %zu subexpressions, %zu planted equivalences\n\n",
              workload.subexpressions.size(), workload.planted.size());

  auto catalog = context.system->OpenCatalog();
  std::vector<ServeBenchReport> phases;

  // Phase 1: the cold stream — every query probes the catalog built from
  // its predecessors, then joins it.
  PhaseAccumulator stream;
  size_t proven_pairs = 0;
  for (const PlanPtr& plan : workload.subexpressions) {
    auto result = catalog->ProbeAdd(plan);
    GEQO_CHECK(result.ok()) << result.status().ToString();
    stream.Record(result->probe);
    proven_pairs += result->probe.equivalent_ids.size();
  }
  phases.push_back(stream.Finish("stream", *catalog));
  PrintPhase(phases.back());

  // Phase 2: re-probe the identical stream against the warm catalog. The
  // stream phase only checked each query against its predecessors, so the
  // forward pairs (against entries added later) still need proofs; the
  // backward pairs come from the memo and the classes.
  PhaseAccumulator reprobe;
  for (const PlanPtr& plan : workload.subexpressions) {
    auto result = catalog->Probe(plan);
    GEQO_CHECK(result.ok()) << result.status().ToString();
    reprobe.Record(*result);
  }
  phases.push_back(reprobe.Finish("reprobe", *catalog));
  PrintPhase(phases.back());

  // Phase 3: the steady state of a recurring workload — every surviving
  // pair has been decided once, so the verifier is never invoked again.
  PhaseAccumulator steady;
  for (const PlanPtr& plan : workload.subexpressions) {
    auto result = catalog->Probe(plan);
    GEQO_CHECK(result.ok()) << result.status().ToString();
    steady.Record(*result);
  }
  phases.push_back(steady.Finish("steady", *catalog));
  PrintPhase(phases.back());
  GEQO_CHECK(phases.back().verifier_calls == 0)
      << "steady-state probes must be fully memoized";

  std::printf(
      "\ncatalog: %zu entries in %zu classes, %zu memoized verdicts, "
      "%zu proven pairs during the stream\n",
      catalog->size(), catalog->NumClasses(), catalog->memo_size(),
      proven_pairs);
  std::printf("modeled AV seconds saved by memo+classes at steady state: %.2f\n",
              ModeledAvSeconds(0.0, phases.back().memo_hits +
                                        phases.back().class_shortcuts));

  // Phase 4: kernel throughput — the embed+probe core of every probe above,
  // measured under the portable scalar/f32 table and again under the best
  // dispatched table with SQ8 quantization, for the speedup record.
  std::printf("\n# embed+probe kernel throughput (%s host)\n",
              kernels::Avx2TableOrNull() != nullptr ? "avx2" : "scalar-only");
  GeqoSystem& system = *context.system;
  PlanEncoder encoder(&system.instance_layout(), &system.catalog(),
                      system.value_range());
  std::vector<EncodedPlan> encoded;
  for (const PlanPtr& plan : workload.subexpressions) {
    auto plan_encoded = encoder.Encode(plan);
    GEQO_CHECK(plan_encoded.ok()) << plan_encoded.status().ToString();
    encoded.push_back(std::move(*plan_encoded));
  }
  const VmfOptions vmf_options = system.options().pipeline.vmf;
  VectorMatchingFilter vmf(&system.model(), &system.instance_layout(),
                           &system.agnostic_layout(), vmf_options);

  const kernels::Isa saved_isa = kernels::ActiveIsa();
  const bool saved_quant = kernels::QuantEnabled();
  std::vector<KernelBenchReport> kernel_phases;

  kernels::SetIsa(kernels::Isa::kScalar);
  kernels::SetQuantMode(false);
  kernel_phases.push_back(RunEmbedProbePhase("scalar/f32", vmf, encoded,
                                             vmf_options.radius));
  PrintKernelPhase(kernel_phases.back());

  const kernels::Isa best_isa = kernels::Avx2TableOrNull() != nullptr
                                    ? kernels::Isa::kAvx2
                                    : kernels::Isa::kScalar;
  kernels::SetIsa(best_isa);
  kernels::SetQuantMode(true);
  kernel_phases.push_back(RunEmbedProbePhase(
      std::string(best_isa == kernels::Isa::kAvx2 ? "avx2" : "scalar") +
          "/sq8",
      vmf, encoded, vmf_options.radius));
  PrintKernelPhase(kernel_phases.back());

  kernels::SetIsa(saved_isa);
  kernels::SetQuantMode(saved_quant);

  const double speedup =
      kernel_phases[1].ops_per_second /
      std::max(kernel_phases[0].ops_per_second, 1e-12);
  std::printf("embed+probe speedup (%s over scalar/f32): %.2fx\n",
              kernel_phases[1].label.c_str(), speedup);

  WriteServeArtifact(phases, kernel_phases, speedup);
  std::printf("\nBENCH_serve.json written\n");
  return 0;
}
