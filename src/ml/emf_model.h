#pragma once

#include <memory>
#include <vector>

#include "encode/encoding.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/serialize.h"
#include "nn/treeconv.h"

/// \file emf_model.h
/// The Equivalence Model Filter network (§5, Figure 6): a siamese pair of
/// two tree-convolution layers (each followed by batch normalization and
/// PReLU) produces a 128-dimensional summary per subexpression via dynamic
/// max pooling; the two summaries are concatenated and classified by three
/// fully connected layers. The learned tree convolution doubles as the
/// VMF's embedding function (§2.2).

namespace geqo::ml {

/// \brief Architecture hyperparameters (defaults follow §5/Figure 7's
/// found-best shape scaled to the embedding size h = 128).
struct EmfModelOptions {
  size_t input_dim = 0;   ///< |NV_alpha|; required
  size_t conv1_size = 128;
  size_t conv2_size = 128;  ///< also the embedding dimension h
  size_t fc1_size = 128;
  size_t fc2_size = 64;
  float dropout = 0.5f;   ///< paper trains with 50% dropout on all layers
  uint64_t seed = 0x5eed5eedULL;
};

/// \brief The EMF network. Forward/backward over batches of encoded plan
/// pairs; both plans of a pair share the convolution weights (siamese).
///
/// Thread-safety: the const inference entry points (PredictProba, Embed,
/// InferLogits) run through the layers' cache-free Infer paths and may be
/// called concurrently from many threads on one model instance, provided no
/// thread calls Forward/TrainStep at the same time (training mutates weights
/// and layer caches). The parallel EMF/VMF stages rely on this contract.
class EmfModel {
 public:
  explicit EmfModel(EmfModelOptions options);

  /// Logits for each pair, shape [batch, 1]. \p lhs and \p rhs must have
  /// equal length; element i of each forms pair i. Caches activations for
  /// TrainStep's backward pass — training-side API, not re-entrant.
  Tensor Forward(const std::vector<const EncodedPlan*>& lhs,
                 const std::vector<const EncodedPlan*>& rhs, bool training);

  /// One optimization step on a batch; returns the BCE loss. \p labels is
  /// [batch, 1] with entries in {0, 1}.
  float TrainStep(const std::vector<const EncodedPlan*>& lhs,
                  const std::vector<const EncodedPlan*>& rhs,
                  const Tensor& labels, nn::Adam* optimizer);

  /// Inference logits, shape [batch, 1]. Bit-identical to
  /// Forward(lhs, rhs, /*training=*/false) but cache-free and re-entrant.
  Tensor InferLogits(const std::vector<const EncodedPlan*>& lhs,
                     const std::vector<const EncodedPlan*>& rhs) const;

  /// Equivalence probabilities (sigmoid of logits), shape [batch, 1].
  /// Re-entrant (see class comment).
  Tensor PredictProba(const std::vector<const EncodedPlan*>& lhs,
                      const std::vector<const EncodedPlan*>& rhs) const;

  /// The VMF embedding: pooled tree-convolution features, [n, h] (§2.2,
  /// §4.2.2). Runs the convolutional trunk in inference mode. Re-entrant
  /// (see class comment).
  Tensor Embed(const std::vector<const EncodedPlan*>& plans) const;

  /// Embedding dimension h.
  size_t embedding_dim() const { return options_.conv2_size; }
  const EmfModelOptions& options() const { return options_; }

  /// Trainable parameters (for the optimizer).
  std::vector<nn::ParamRef> Params();
  /// Full state (parameters + batch-norm running statistics) for
  /// (de)serialization via nn::SaveState/LoadState.
  std::vector<nn::StateEntry> State();

  /// Total number of trainable scalars.
  size_t NumParameters();

 private:
  /// Runs the convolutional trunk; returns pooled [n, h] features.
  Tensor ForwardTrunk(const nn::TreeBatch& batch, bool training);
  /// Cache-free inference trunk (running batch-norm statistics, no dropout).
  Tensor InferTrunk(const nn::TreeBatch& batch) const;
  /// Backpropagates through the trunk given pooled-feature gradients.
  void BackwardTrunk(const Tensor& pooled_grad);

  EmfModelOptions options_;
  Rng rng_;
  nn::TreeConv conv1_;
  nn::BatchNorm1d bn1_;
  nn::PReLU act1_;
  nn::TreeConv conv2_;
  nn::BatchNorm1d bn2_;
  nn::PReLU act2_;
  nn::DynamicMaxPool pool_;
  Tensor cached_diff_sign_;  ///< sign(e_a - e_b) for the |.| backward pass
  nn::Linear fc1_;
  nn::PReLU act3_;
  nn::Dropout drop1_;
  nn::Linear fc2_;
  nn::PReLU act4_;
  nn::Dropout drop2_;
  nn::Linear fc3_;
  size_t last_pair_count_ = 0;
};

}  // namespace geqo::ml
