#include "exec/session.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace geqo::exec {

ExecutionSession::ExecutionSession(const Database* database,
                                   SessionOptions options)
    : database_(database),
      morsel_rows_(std::clamp<size_t>(options.morsel_rows, 1, 65536)) {}

Result<std::unique_ptr<QueryExecution>> ExecutionSession::Prepare(
    const PlanPtr& plan) const {
  Stopwatch watch;
  GEQO_ASSIGN_OR_RETURN(std::unique_ptr<CompiledQuery> query,
                        CompiledQuery::Compile(*database_, plan));
  const double compile_seconds = watch.ElapsedSeconds();
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetHistogram("exec.compile_seconds")
        .Observe(compile_seconds);
  }
  return std::unique_ptr<QueryExecution>(new QueryExecution(
      std::move(query), morsel_rows_, compile_seconds));
}

Result<RowSet> ExecutionSession::Execute(const PlanPtr& plan,
                                         ExecMetrics* metrics) const {
  GEQO_ASSIGN_OR_RETURN(std::unique_ptr<QueryExecution> query, Prepare(plan));
  GEQO_ASSIGN_OR_RETURN(RowSet out, query->Materialize());
  if (metrics != nullptr) *metrics = query->metrics();
  return out;
}

Status QueryExecution::EnsureRan() {
  if (ran_) return Status::OK();
  ran_ = true;
  obs::Span span("exec.execute");
  Stopwatch watch;
  GEQO_RETURN_NOT_OK(query_->Run(morsel_rows_, &metrics_, &batches_));
  metrics_.execute_seconds = watch.ElapsedSeconds();
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetHistogram("exec.execute_seconds")
        .Observe(metrics_.execute_seconds);
  }
  return Status::OK();
}

Result<const Batch*> QueryExecution::NextBatch() {
  GEQO_RETURN_NOT_OK(EnsureRan());
  if (cursor_ >= batches_.size()) return static_cast<const Batch*>(nullptr);
  return static_cast<const Batch*>(&batches_[cursor_++]);
}

Result<RowSet> QueryExecution::Materialize() {
  GEQO_RETURN_NOT_OK(EnsureRan());
  RowSet out;
  out.column_names = query_->column_names();
  size_t remaining = 0;
  for (size_t b = cursor_; b < batches_.size(); ++b) {
    remaining += batches_[b].ActiveRows();
  }
  out.rows.reserve(remaining);
  for (; cursor_ < batches_.size(); ++cursor_) {
    const Batch& batch = batches_[cursor_];
    const size_t n = batch.ActiveRows();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t r = batch.RowAt(i);
      std::vector<Value> row;
      row.reserve(batch.columns.size());
      for (size_t c = 0; c < batch.columns.size(); ++c) {
        row.push_back(batch.ValueAt(c, r));
      }
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace geqo::exec
