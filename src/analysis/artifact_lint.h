#pragma once

#include <string>
#include <string_view>

#include "analysis/diagnostics.h"
#include "common/result.h"

/// \file artifact_lint.h
/// Static validation of the library's binary artifacts from raw bytes —
/// no GeqoSystem, catalog, or model is needed, so a linter can gate files
/// before they ever reach the serving path. The walker mirrors the on-disk
/// formats declared in common/format_magic.h:
///
///   GEQOSNAP  system snapshot: header, calibration, GEQOMODL model state,
///             checksum footer. Codes snapshot.* / model.* / emf.*.
///   GEQOCATG  serving catalog: header, canonical hashes, GEQOHNSW graph,
///             union-find parents, verifier memo, end magic, checksum
///             footer. Codes catalog.* / hnsw.*.
///   GEQOMODL  standalone model state file. Codes model.* / emf.*.
///   GEQOHNSW  standalone index blob. Codes hnsw.*.
///   GEQOSHRD  sharded serving catalog: header, per-entry shard ids,
///             per-shard GEQOCATG segments, pending-verification tail, end
///             magic, checksum footer. Codes sharded.* plus the per-segment
///             catalog.* / hnsw.* codes.
///   GEQOMANI  catalog store manifest: versioned header, store kind, live
///             base segment + delta-log tail ids, end magic, checksum
///             footer. Codes manifest.*.
///   GEQOWALG  catalog delta-log partition: header (file id, shard) then
///             FNV-1a-framed mutation records. A torn tail is itself a
///             finding — a cleanly closed store syncs its logs — and
///             mid-log corruption (valid frames after a bad one) is
///             distinguished from it. Codes wal.*.
///
/// Diagnostics carry byte-offset contexts ("offset 123") pointing at the
/// section that violated its invariant.

namespace geqo::analysis {

enum class ArtifactKind : uint8_t {
  kUnknown,
  kSystemSnapshot,
  kServingCatalog,
  kModelState,
  kHnswIndex,
  kShardedCatalog,
  kStoreManifest,
  kWalLog,
};

std::string_view ArtifactKindToString(ArtifactKind kind);

/// Identifies an artifact by its leading magic (8 bytes).
ArtifactKind SniffArtifact(std::string_view bytes);

/// Lints \p bytes as whichever artifact its magic announces. Unknown magic
/// is itself a finding (artifact.unknown-magic). Empty result = valid.
Diagnostics LintArtifactBytes(std::string_view bytes);

/// Reads and lints \p path; Status errors are I/O-level only (unreadable
/// file), all content problems come back as diagnostics.
Result<Diagnostics> LintArtifactFile(const std::string& path);

}  // namespace geqo::analysis
