#include "workload/generator.h"

#include <algorithm>

#include "analysis/plan_validator.h"

namespace geqo {
namespace {

const char* const kStringConstants[] = {"alpha", "beta", "gamma", "delta",
                                        "omega"};

CompareOp RandomNumericOp(Rng* rng) {
  // Skew toward inequalities: equality on raw constants is rarely selective
  // in analytic predicates, matching the generated-workload style of [34].
  static const CompareOp kOps[] = {CompareOp::kLt, CompareOp::kLe,
                                   CompareOp::kGt, CompareOp::kGe,
                                   CompareOp::kEq, CompareOp::kNe};
  return kOps[rng->Uniform(6)];
}

}  // namespace

void QueryGenerator::PickTables(
    Rng* rng, std::vector<std::pair<std::string, std::string>>* tables,
    std::vector<Comparison>* join_predicates) const {
  const auto in_pool = [&](const std::string& table) {
    if (options_.table_pool.empty()) return true;
    return std::find(options_.table_pool.begin(), options_.table_pool.end(),
                     table) != options_.table_pool.end();
  };
  std::vector<const TableDef*> seeds;
  for (const TableDef& table : catalog_->tables()) {
    if (in_pool(table.name())) seeds.push_back(&table);
  }
  GEQO_CHECK(!seeds.empty()) << "table pool matches no catalog table";

  const size_t target =
      1 + rng->Uniform(std::max<size_t>(options_.max_tables, 1));
  const TableDef& first = *seeds[rng->Uniform(seeds.size())];
  tables->emplace_back(first.name(), first.name());

  while (tables->size() < target) {
    // Candidate join edges touching any already-bound table and introducing
    // a new one (no self-joins: aliases equal table names).
    struct Candidate {
      JoinKey key;
      std::string bound_alias;
      bool new_on_right;
    };
    std::vector<Candidate> candidates;
    for (const JoinKey& key : catalog_->join_keys()) {
      const auto bound = [&](const std::string& table) -> const std::string* {
        for (const auto& [t, alias] : *tables) {
          if (t == table) return &alias;
        }
        return nullptr;
      };
      const std::string* left_bound = bound(key.left_table);
      const std::string* right_bound = bound(key.right_table);
      if (left_bound != nullptr && right_bound == nullptr &&
          in_pool(key.right_table)) {
        candidates.push_back(Candidate{key, *left_bound, true});
      } else if (right_bound != nullptr && left_bound == nullptr &&
                 in_pool(key.left_table)) {
        candidates.push_back(Candidate{key, *right_bound, false});
      }
    }
    if (candidates.empty()) break;  // join graph exhausted around this seed
    const Candidate& chosen = candidates[rng->Uniform(candidates.size())];
    const std::string& new_table =
        chosen.new_on_right ? chosen.key.right_table : chosen.key.left_table;
    tables->emplace_back(new_table, new_table);
    const std::string& new_column =
        chosen.new_on_right ? chosen.key.right_column : chosen.key.left_column;
    const std::string& bound_column =
        chosen.new_on_right ? chosen.key.left_column : chosen.key.right_column;
    join_predicates->push_back(
        Comparison{Expr::Column(chosen.bound_alias, bound_column),
                   CompareOp::kEq, Expr::Column(new_table, new_column)});
  }
}

Comparison QueryGenerator::MakeSelectionPredicate(
    Rng* rng,
    const std::vector<std::pair<std::string, std::string>>& tables) const {
  // Pick a random bound table and a column of it.
  const auto& [table_name, alias] = tables[rng->Uniform(tables.size())];
  const TableDef* table = catalog_->FindTable(table_name);
  GEQO_CHECK(table != nullptr);

  // String equality predicate.
  if (rng->Bernoulli(options_.string_predicate_probability)) {
    std::vector<std::string> string_columns;
    for (const ColumnDef& column : table->columns()) {
      if (column.type == ValueType::kString) string_columns.push_back(column.name);
    }
    if (!string_columns.empty()) {
      return Comparison{
          Expr::Column(alias, rng->Choice(string_columns)),
          rng->Bernoulli(0.8) ? CompareOp::kEq : CompareOp::kNe,
          Expr::Literal(Value::String(kStringConstants[rng->Uniform(5)]))};
    }
  }

  const std::vector<std::string> numeric = table->NumericColumns();
  GEQO_CHECK(!numeric.empty()) << "table without numeric columns: "
                               << table_name;
  const std::string column = rng->Choice(numeric);

  // Column-vs-column(+const) predicate across the bound tables.
  if (tables.size() > 1 &&
      rng->Bernoulli(options_.column_predicate_probability)) {
    const auto& [other_table_name, other_alias] =
        tables[rng->Uniform(tables.size())];
    const TableDef* other = catalog_->FindTable(other_table_name);
    const std::vector<std::string> other_numeric = other->NumericColumns();
    if (!(other_alias == alias) && !other_numeric.empty()) {
      ExprPtr rhs = Expr::Column(other_alias, rng->Choice(other_numeric));
      if (rng->Bernoulli(0.5)) {
        rhs = Expr::Binary(
            ExprKind::kAdd, rhs,
            Expr::IntLiteral(rng->UniformInt(1, options_.constant_max / 4)));
      }
      return Comparison{Expr::Column(alias, column), RandomNumericOp(rng),
                        std::move(rhs)};
    }
  }

  // Column-vs-constant predicate.
  return Comparison{
      Expr::Column(alias, column), RandomNumericOp(rng),
      Expr::IntLiteral(
          rng->UniformInt(options_.constant_min, options_.constant_max))};
}

PlanPtr QueryGenerator::Generate(Rng* rng) const {
  std::vector<std::pair<std::string, std::string>> tables;
  std::vector<Comparison> join_predicates;
  PickTables(rng, &tables, &join_predicates);

  // Left-deep join tree in pick order.
  PlanPtr plan = PlanNode::Scan(tables[0].first, tables[0].second);
  for (size_t i = 1; i < tables.size(); ++i) {
    plan = PlanNode::Join(JoinType::kInner, join_predicates[i - 1],
                          std::move(plan),
                          PlanNode::Scan(tables[i].first, tables[i].second));
  }

  // Conjunctive selections.
  const size_t span =
      options_.max_select_predicates - std::min(options_.min_select_predicates,
                                                options_.max_select_predicates);
  const size_t num_predicates =
      options_.min_select_predicates + rng->Uniform(span + 1);
  for (size_t p = 0; p < num_predicates; ++p) {
    plan = PlanNode::Select(MakeSelectionPredicate(rng, tables),
                            std::move(plan));
  }

  // Projection over a random subset of the available columns.
  std::vector<OutputColumn> available;
  for (const auto& [table_name, alias] : tables) {
    const TableDef* table = catalog_->FindTable(table_name);
    for (const ColumnDef& column : table->columns()) {
      available.push_back(
          OutputColumn{column.name, Expr::Column(alias, column.name)});
    }
  }
  const size_t num_outputs =
      options_.fixed_projection_columns > 0
          ? std::min(options_.fixed_projection_columns, available.size())
          : 1 + rng->Uniform(std::min(options_.max_projected_columns,
                                      available.size()));
  std::vector<size_t> chosen = rng->SampleIndices(available.size(), num_outputs);
  std::sort(chosen.begin(), chosen.end());  // deterministic output order
  std::vector<OutputColumn> outputs;
  for (const size_t index : chosen) outputs.push_back(available[index]);

  // Optional aggregation root (§9.1 extension): group by the first chosen
  // columns and aggregate a numeric column.
  if (options_.aggregate_probability > 0.0 &&
      rng->Bernoulli(options_.aggregate_probability)) {
    std::vector<OutputColumn> keys = {outputs[0]};
    if (outputs.size() > 1 && rng->Bernoulli(0.5)) keys.push_back(outputs[1]);
    std::vector<AggregateExpr> aggregates;
    static const AggregateFn kFns[] = {AggregateFn::kCount, AggregateFn::kSum,
                                       AggregateFn::kMin, AggregateFn::kMax,
                                       AggregateFn::kAvg};
    const AggregateFn fn = kFns[rng->Uniform(5)];
    ExprPtr argument;
    if (fn != AggregateFn::kCount || rng->Bernoulli(0.5)) {
      // Aggregate a random numeric column of one of the bound tables.
      const auto& [table_name, alias] = tables[rng->Uniform(tables.size())];
      const TableDef* table = catalog_->FindTable(table_name);
      const auto numeric = table->NumericColumns();
      if (!numeric.empty()) {
        argument = Expr::Column(alias, rng->Choice(numeric));
      }
    }
    if (argument == nullptr && fn != AggregateFn::kCount) {
      // No numeric column found: fall back to COUNT(*).
      aggregates.push_back(AggregateExpr{AggregateFn::kCount, nullptr, "agg0"});
    } else {
      aggregates.push_back(AggregateExpr{fn, argument, "agg0"});
    }
    PlanPtr aggregated = PlanNode::Aggregate(std::move(keys),
                                             std::move(aggregates),
                                             std::move(plan));
    analysis::DebugValidatePlan(aggregated, *catalog_, "workload.Generate");
    return aggregated;
  }
  PlanPtr projected = PlanNode::Project(std::move(outputs), std::move(plan));
  analysis::DebugValidatePlan(projected, *catalog_, "workload.Generate");
  return projected;
}

std::vector<PlanPtr> QueryGenerator::GenerateMany(size_t count,
                                                  Rng* rng) const {
  std::vector<PlanPtr> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(Generate(rng));
  return out;
}

}  // namespace geqo
