// Tiny JSON well-formedness checker used by scripts/check.sh to validate the
// observability artifacts. Exit 0 when every input file parses, 1 otherwise.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: geqo_json_lint FILE...\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    if (auto error = geqo::obs::ValidateJson(contents.str())) {
      std::fprintf(stderr, "%s: invalid JSON: %s\n", argv[i], error->c_str());
      ++failures;
    } else {
      std::printf("%s: ok\n", argv[i]);
    }
  }
  return failures == 0 ? 0 : 1;
}
