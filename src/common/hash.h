#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

/// \file hash.h
/// Stable 64-bit hashing used for plan signatures and hash-map keys. Stability
/// matters: signature-based equivalence detection (the CloudViews baseline)
/// compares hashes across processes and runs.

namespace geqo {

/// \brief FNV-1a over raw bytes; stable across platforms and runs.
inline uint64_t HashBytes(const void* data, size_t size,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

inline uint64_t HashString(std::string_view s,
                           uint64_t seed = 0xcbf29ce484222325ULL) {
  return HashBytes(s.data(), s.size(), seed);
}

/// \brief Mixes a new 64-bit value into an accumulated hash (boost-style).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // 64-bit variant of boost::hash_combine with a murmur-style finalizer.
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

/// \brief Order-independent combination, for hashing sets and multisets.
inline uint64_t HashCombineUnordered(uint64_t seed, uint64_t value) {
  value *= 0x9ddfea08eb382d69ULL;
  value ^= value >> 29;
  return seed + value;  // commutative and associative in the accumulator
}

inline uint64_t HashVector(const std::vector<uint64_t>& values,
                           uint64_t seed = 0x9e3779b97f4a7c15ULL) {
  uint64_t hash = seed;
  for (uint64_t v : values) hash = HashCombine(hash, v);
  return hash;
}

}  // namespace geqo
