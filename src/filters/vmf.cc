#include "filters/vmf.h"

#include <algorithm>
#include <cmath>

namespace geqo {

Result<Tensor> VectorMatchingFilter::EmbedGroup(
    const std::vector<size_t>& group,
    const std::vector<EncodedPlan>& instance_encoded) const {
  GEQO_CHECK(!group.empty());
  std::vector<const EncodedPlan*> members;
  members.reserve(group.size());
  for (const size_t index : group) members.push_back(&instance_encoded[index]);

  // n-ary db-agnostic transformation over the whole group (§4.2.2).
  GEQO_ASSIGN_OR_RETURN(
      AgnosticConverter converter,
      AgnosticConverter::Create(instance_layout_, agnostic_layout_, members,
                                options_.truncate_overflow));
  std::vector<EncodedPlan> converted;
  converted.reserve(members.size());
  for (const EncodedPlan* member : members) {
    converted.push_back(converter.Convert(*member));
  }
  std::vector<const EncodedPlan*> views;
  views.reserve(converted.size());
  for (const EncodedPlan& plan : converted) views.push_back(&plan);
  return model_->Embed(views);
}

Result<std::vector<float>> VectorMatchingFilter::EmbedSingle(
    const EncodedPlan& instance_encoded) const {
  GEQO_ASSIGN_OR_RETURN(
      AgnosticConverter converter,
      AgnosticConverter::Create(instance_layout_, agnostic_layout_,
                                {&instance_encoded},
                                options_.truncate_overflow));
  const EncodedPlan converted = converter.Convert(instance_encoded);
  const Tensor embedding = model_->Embed({&converted});
  return std::vector<float>(embedding.Row(0),
                            embedding.Row(0) + embedding.cols());
}

Result<std::vector<std::pair<size_t, size_t>>>
VectorMatchingFilter::CandidatePairs(
    const std::vector<size_t>& group,
    const std::vector<EncodedPlan>& instance_encoded) const {
  std::vector<std::pair<size_t, size_t>> pairs;
  if (group.size() < 2) return pairs;
  GEQO_ASSIGN_OR_RETURN(Tensor embeddings,
                        EmbedGroup(group, instance_encoded));

  ann::HnswIndex index(embeddings.cols(), options_.hnsw);
  for (size_t i = 0; i < embeddings.rows(); ++i) index.Add(embeddings.Row(i));

  for (size_t i = 0; i < embeddings.rows(); ++i) {
    for (const ann::Neighbor& neighbor :
         index.SearchRadius(embeddings.Row(i), options_.radius)) {
      if (neighbor.id == i) continue;
      const size_t a = group[std::min(i, neighbor.id)];
      const size_t b = group[std::max(i, neighbor.id)];
      pairs.emplace_back(a, b);
    }
  }
  // Radius searches report each pair from both endpoints: dedupe.
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

Result<std::vector<std::pair<std::pair<size_t, size_t>, float>>>
VectorMatchingFilter::NearestPairs(
    const std::vector<size_t>& group,
    const std::vector<EncodedPlan>& instance_encoded, size_t k) const {
  std::vector<std::pair<std::pair<size_t, size_t>, float>> out;
  if (group.size() < 2) return out;
  GEQO_ASSIGN_OR_RETURN(Tensor embeddings,
                        EmbedGroup(group, instance_encoded));
  ann::HnswIndex index(embeddings.cols(), options_.hnsw);
  for (size_t i = 0; i < embeddings.rows(); ++i) index.Add(embeddings.Row(i));
  for (size_t i = 0; i < embeddings.rows(); ++i) {
    for (const ann::Neighbor& neighbor :
         index.SearchKnn(embeddings.Row(i), k + 1)) {
      if (neighbor.id == i) continue;
      const size_t a = group[std::min(i, neighbor.id)];
      const size_t b = group[std::max(i, neighbor.id)];
      out.emplace_back(std::make_pair(a, b), neighbor.distance);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end(),
                        [](const auto& x, const auto& y) {
                          return x.first == y.first;
                        }),
            out.end());
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return x.second < y.second;
  });
  return out;
}

Result<float> CalibrateVmfRadius(ml::EmfModel* model,
                                 const ml::PairDataset& dataset,
                                 double target_recall) {
  std::vector<float> positive_distances;
  const size_t batch = 256;
  for (size_t begin = 0; begin < dataset.size(); begin += batch) {
    const size_t end = std::min(begin + batch, dataset.size());
    std::vector<const EncodedPlan*> lhs;
    std::vector<const EncodedPlan*> rhs;
    for (size_t i = begin; i < end; ++i) {
      if (dataset.labels[i] < 0.5f) continue;
      lhs.push_back(&dataset.lhs[i]);
      rhs.push_back(&dataset.rhs[i]);
    }
    if (lhs.empty()) continue;
    const Tensor lhs_embeddings = model->Embed(lhs);
    const Tensor rhs_embeddings = model->Embed(rhs);
    for (size_t i = 0; i < lhs_embeddings.rows(); ++i) {
      positive_distances.push_back(std::sqrt(ops::SquaredDistance(
          lhs_embeddings.Row(i), rhs_embeddings.Row(i),
          lhs_embeddings.cols())));
    }
  }
  if (positive_distances.empty()) {
    return Status::InvalidArgument(
        "VMF calibration requires positive training pairs");
  }
  std::sort(positive_distances.begin(), positive_distances.end());
  const size_t index = std::min(
      positive_distances.size() - 1,
      static_cast<size_t>(target_recall *
                          static_cast<double>(positive_distances.size())));
  // A small multiplicative margin guards against group-vs-pairwise encoding
  // drift (the VMF embeds with the n-ary group transformation, §4.2.2).
  return positive_distances[index] * 1.1f;
}

}  // namespace geqo
