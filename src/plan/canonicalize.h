#pragma once

#include <optional>

#include "plan/plan.h"

/// \file canonicalize.h
/// Plan canonicalization (§3.1): constant folding inside predicates and
/// projections, plus elimination of vacuously true selections. Conjunctive
/// predicates are already split — each Select/Join node carries exactly one
/// atomic comparison by construction (the parser stacks Select nodes).

namespace geqo {

/// \brief Returns the canonical form of \p plan:
///   - every expression is constant-folded (A.x > 10 + 5  =>  A.x > 15);
///   - selections whose predicate folds to a constant true are removed;
///   - selections folding to constant false are retained (removing them
///     would change semantics; the verifier handles them via infeasibility).
PlanPtr Canonicalize(const PlanPtr& plan);

/// \brief Counts the selection/join predicates in \p plan.
size_t CountPredicates(const PlanPtr& plan);

/// \brief Evaluates `lhs op rhs` when both sides fold to literals of
/// comparable types; nullopt otherwise. Used by the canonicalizer (dropping
/// vacuous selections) and the verifier (constant join predicates).
std::optional<bool> TryEvaluateComparison(const Comparison& cmp);

/// \brief Stable structural hash of the canonical form of \p plan, i.e.
/// `Canonicalize(plan)->Hash()`. Plans that canonicalize identically (e.g.
/// differing only in foldable constants) share a canonical hash.
uint64_t CanonicalHash(const PlanPtr& plan);

/// \brief Secondary canonical-form hash over an independent channel: the
/// canonical rendering (ToString) hashed with a distinct FNV seed, where
/// CanonicalHash walks the node structure. Two distinct canonical plans that
/// collide on CanonicalHash are overwhelmingly unlikely to also collide
/// here. The verifier memo stores this pair alongside every entry and treats
/// a mismatch as a collision (i.e. a miss), so a 64-bit CanonicalHash
/// collision can no longer serve a wrong — potentially unsound — cached
/// verdict.
uint64_t CanonicalCheckHash(const PlanPtr& plan);

/// \brief Order-normalized fingerprint of an unordered plan pair, used to key
/// verifier memoization: FingerprintPair(a, b) == FingerprintPair(b, a).
/// Both canonical hashes are kept (128 bits total) rather than folded into
/// one word, so accidental collisions need both halves to collide.
struct PairFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const PairFingerprint&) const = default;
  bool operator<(const PairFingerprint& other) const {
    if (lo != other.lo) return lo < other.lo;
    return hi < other.hi;
  }
};

/// \brief Builds the fingerprint of the unordered pair of two canonical
/// hashes (as produced by CanonicalHash).
PairFingerprint FingerprintPair(uint64_t canonical_hash_a,
                                uint64_t canonical_hash_b);

}  // namespace geqo
