#include "ml/flat_features.h"

#include <cmath>

namespace geqo::ml {

Tensor MeanPoolPlan(const EncodedPlan& plan) {
  Tensor out(1, plan.nodes.cols());
  const float inv_n = 1.0f / static_cast<float>(plan.num_nodes());
  for (size_t row = 0; row < plan.num_nodes(); ++row) {
    const float* src = plan.nodes.Row(row);
    for (size_t c = 0; c < plan.nodes.cols(); ++c) out.At(0, c) += src[c];
  }
  for (size_t c = 0; c < out.cols(); ++c) out.At(0, c) *= inv_n;
  return out;
}

std::vector<float> FlattenPair(const EncodedPlan& lhs, const EncodedPlan& rhs) {
  const Tensor a = MeanPoolPlan(lhs);
  const Tensor b = MeanPoolPlan(rhs);
  GEQO_CHECK(a.cols() == b.cols());
  std::vector<float> out;
  out.reserve(3 * a.cols());
  for (size_t c = 0; c < a.cols(); ++c) out.push_back(a.At(0, c));
  for (size_t c = 0; c < b.cols(); ++c) out.push_back(b.At(0, c));
  for (size_t c = 0; c < a.cols(); ++c) {
    out.push_back(std::fabs(a.At(0, c) - b.At(0, c)));
  }
  return out;
}

void FlattenDataset(const PairDataset& dataset, Tensor* features,
                    Tensor* labels) {
  GEQO_CHECK(!dataset.empty());
  const std::vector<float> first = FlattenPair(dataset.lhs[0], dataset.rhs[0]);
  *features = Tensor(dataset.size(), first.size());
  *labels = Tensor(dataset.size(), 1);
  for (size_t i = 0; i < dataset.size(); ++i) {
    const std::vector<float> row =
        i == 0 ? first : FlattenPair(dataset.lhs[i], dataset.rhs[i]);
    std::copy(row.begin(), row.end(), features->Row(i));
    labels->At(i, 0) = dataset.labels[i];
  }
}

}  // namespace geqo::ml
