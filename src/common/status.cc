#include "common/status.h"

#include <cstdio>
#include <ostream>

namespace geqo {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

void Status::Abort() const { Abort(""); }

void Status::Abort(std::string_view context) const {
  if (ok()) return;
  if (context.empty()) {
    std::fprintf(stderr, "geqo: fatal status: %s\n", ToString().c_str());
  } else {
    std::fprintf(stderr, "geqo: fatal status in %.*s: %s\n",
                 static_cast<int>(context.size()), context.data(),
                 ToString().c_str());
  }
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace geqo
