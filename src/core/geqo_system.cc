#include "core/geqo_system.h"

#include <fstream>
#include <sstream>

#include "analysis/model_check.h"
#include "analysis/plan_validator.h"
#include "common/binary_io.h"
#include "common/checksum_io.h"
#include "common/format_magic.h"
#include "filters/emf_filter.h"
#include "filters/vmf.h"
#include "nn/serialize.h"
#include "plan/schema.h"

namespace geqo {

GeqoSystem::GeqoSystem(const Catalog* catalog, GeqoSystemOptions options)
    : catalog_(catalog),
      options_(options),
      instance_layout_(EncodingLayout::FromCatalog(*catalog)),
      agnostic_layout_(EncodingLayout::Agnostic(
          options.agnostic_tables, options.agnostic_columns_per_table)) {
  options_.model.input_dim = agnostic_layout_.node_vector_size();
  model_ = std::make_unique<ml::EmfModel>(options_.model);
  trainer_ = std::make_unique<ml::EmfTrainer>(model_.get(), options_.training);
  pipeline_ = std::make_unique<GeqoPipeline>(catalog_, model_.get(),
                                             &instance_layout_,
                                             &agnostic_layout_,
                                             options_.pipeline);
}

Result<ml::TrainReport> GeqoSystem::TrainOnSyntheticWorkload(uint64_t seed) {
  Rng rng(seed);
  GEQO_ASSIGN_OR_RETURN(
      std::vector<LabeledPair> pairs,
      BuildLabeledPairs(*catalog_, options_.synthetic_data, &rng));
  return TrainOnPairs(pairs);
}

Result<ml::TrainReport> GeqoSystem::TrainOnPairs(
    const std::vector<LabeledPair>& pairs) {
  // Static shape proof before any MatMul runs: a mis-assembled model fails
  // here with named diagnostics rather than deep inside the first batch.
  GEQO_RETURN_NOT_OK(analysis::CheckModelShapes(*model_));
  GEQO_ASSIGN_OR_RETURN(
      ml::PairDataset dataset,
      EncodeLabeledPairs(pairs, *catalog_, instance_layout_, agnostic_layout_,
                         options_.value_range));
  if (dataset.empty()) {
    return Status::InvalidArgument("no trainable pairs after encoding");
  }
  GEQO_ASSIGN_OR_RETURN(ml::TrainReport report, Result<ml::TrainReport>(trainer_->Train(dataset)));
  // Calibrate the VMF threshold on the freshly trained embedding space so
  // that ~98% of known-equivalent pairs fall within radius tau (Table 1).
  GeqoOptions calibrated = pipeline_->options();
  const Result<float> radius = CalibrateVmfRadius(model_.get(), dataset);
  if (radius.ok()) calibrated.vmf.radius = *radius;
  // Likewise pick the EMF operating point that keeps recall near-perfect
  // (false negatives are the costly error; false positives only waste
  // verifier time, §7.1.1).
  const Result<float> threshold = CalibrateEmfThreshold(model_.get(), dataset);
  if (threshold.ok()) calibrated.emf.threshold = *threshold;
  GEQO_RETURN_NOT_OK(pipeline_->UpdateOptions(calibrated));
  options_.pipeline = calibrated;
  return report;
}

Result<GeqoResult> GeqoSystem::DetectEquivalences(
    const std::vector<PlanPtr>& workload) {
  return pipeline_->DetectEquivalences(workload, options_.value_range);
}

Result<EquivalenceVerdict> GeqoSystem::CheckPair(const PlanPtr& a,
                                                 const PlanPtr& b) {
  return pipeline_->CheckPair(a, b, options_.value_range);
}

Result<std::vector<SsflIterationReport>> GeqoSystem::RunSsfl(
    const std::vector<PlanPtr>& workload, SsflOptions options) {
  Ssfl ssfl(catalog_, model_.get(), trainer_.get(), &instance_layout_,
            &agnostic_layout_, options);
  return ssfl.Run(workload, options_.value_range);
}

Status GeqoSystem::SaveSnapshot(const std::string& path) {
  GEQO_RETURN_NOT_OK(analysis::CheckModelShapes(*model_));
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  // The payload is buffered so the v2 footer can checksum it whole: any
  // later bit flip or truncation fails loudly at load time instead of
  // surviving as silently corrupted weights.
  std::ostringstream payload;
  io::BinaryWriter writer(payload, "system snapshot");
  writer.U64(io::kSystemSnapshotMagic);
  writer.U64(io::kSystemSnapshotVersion);
  writer.U64(CatalogFingerprint(*catalog_));
  writer.U64(options_.agnostic_tables);
  writer.U64(options_.agnostic_columns_per_table);
  // The calibrated operating point (TrainOnPairs) travels with the weights,
  // so a restored system needs no recalibration data.
  writer.F32(options_.pipeline.vmf.radius);
  writer.F32(options_.pipeline.emf.threshold);
  GEQO_RETURN_NOT_OK(writer.status());
  GEQO_RETURN_NOT_OK(nn::SaveState(model_->State(), payload));
  GEQO_RETURN_NOT_OK(
      io::WriteChecksummed(file, payload.str(), "system snapshot"));
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status GeqoSystem::LoadSnapshot(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  GEQO_ASSIGN_OR_RETURN(
      const std::string payload,
      io::ReadChecksummed(file, "system snapshot " + path));
  std::istringstream stream(payload);
  io::BinaryReader reader(stream, "system snapshot");
  const uint64_t magic = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (magic != io::kSystemSnapshotMagic) {
    return Status::InvalidArgument(
        "system snapshot: bad magic (not a GEqO snapshot): " + path);
  }
  const uint64_t version = reader.U64();
  GEQO_RETURN_NOT_OK(reader.status());
  if (version != io::kSystemSnapshotVersion) {
    return Status::InvalidArgument(
        "system snapshot: unsupported version " + std::to_string(version) +
        " (expected " + std::to_string(io::kSystemSnapshotVersion) +
        "): " + path);
  }
  const uint64_t fingerprint = reader.U64();
  const uint64_t tables = reader.U64();
  const uint64_t columns = reader.U64();
  const float radius = reader.F32();
  const float threshold = reader.F32();
  GEQO_RETURN_NOT_OK(reader.status());
  const uint64_t expected = CatalogFingerprint(*catalog_);
  if (fingerprint != expected) {
    return Status::InvalidArgument(
        "system snapshot: database schema fingerprint mismatch (snapshot " +
        std::to_string(fingerprint) + ", current " + std::to_string(expected) +
        ") — the snapshot was trained against a different catalog: " + path);
  }
  if (tables != options_.agnostic_tables ||
      columns != options_.agnostic_columns_per_table) {
    return Status::InvalidArgument(
        "system snapshot: agnostic layout mismatch (snapshot " +
        std::to_string(tables) + "x" + std::to_string(columns) + ", system " +
        std::to_string(options_.agnostic_tables) + "x" +
        std::to_string(options_.agnostic_columns_per_table) + "): " + path);
  }
  GEQO_RETURN_NOT_OK(nn::LoadState(model_->State(), stream));
  if (!reader.AtEof()) {
    return Status::InvalidArgument(
        "system snapshot: trailing bytes after the model state: " + path);
  }
  // The loaded weights must still assemble into a shape-sound network.
  GEQO_RETURN_NOT_OK(analysis::CheckModelShapes(*model_));
  GeqoOptions calibrated = pipeline_->options();
  calibrated.vmf.radius = radius;
  calibrated.emf.threshold = threshold;
  GEQO_RETURN_NOT_OK(pipeline_->UpdateOptions(calibrated));
  options_.pipeline = calibrated;
  return Status::OK();
}

std::unique_ptr<serve::EquivalenceCatalog> GeqoSystem::OpenCatalog(
    serve::CatalogOptions options) {
  return std::make_unique<serve::EquivalenceCatalog>(
      catalog_, model_.get(), &instance_layout_, &agnostic_layout_,
      options_.value_range, options);
}

std::unique_ptr<serve::EquivalenceCatalog> GeqoSystem::OpenCatalog() {
  serve::CatalogOptions options;
  options.pipeline = options_.pipeline;
  return OpenCatalog(options);
}

serve::CatalogComponents GeqoSystem::ServeComponents() {
  serve::CatalogComponents components;
  components.db_catalog = catalog_;
  components.model = model_.get();
  components.instance_layout = &instance_layout_;
  components.agnostic_layout = &agnostic_layout_;
  components.value_range = options_.value_range;
  return components;
}

Result<std::unique_ptr<serve::EquivalenceCatalog>>
GeqoSystem::ImportCatalogSnapshot(std::istream& is,
                                  const std::vector<PlanPtr>& plans) {
  serve::CatalogOptions options;
  options.pipeline = options_.pipeline;
  return serve::EquivalenceCatalog::ImportSnapshot(
      is, catalog_, model_.get(), &instance_layout_, &agnostic_layout_,
      options_.value_range, plans, options);
}

Result<std::unique_ptr<serve::CatalogStore>> GeqoSystem::OpenCatalogStore(
    const std::string& dir, const std::vector<PlanPtr>& plans,
    serve::DurabilityOptions durability) {
  serve::CatalogOptions options;
  options.pipeline = options_.pipeline;
  return serve::CatalogStore::Open(dir, ServeComponents(), plans, options,
                                   durability);
}

std::unique_ptr<serve::ShardedCatalog> GeqoSystem::OpenShardedCatalog(
    serve::ShardedCatalogOptions options) {
  return std::make_unique<serve::ShardedCatalog>(
      catalog_, model_.get(), &instance_layout_, &agnostic_layout_,
      options_.value_range, options);
}

std::unique_ptr<serve::ShardedCatalog> GeqoSystem::OpenShardedCatalog() {
  serve::ShardedCatalogOptions options;
  options.catalog.pipeline = options_.pipeline;
  return OpenShardedCatalog(options);
}

Result<std::unique_ptr<serve::ShardedCatalog>> GeqoSystem::ImportShardedSnapshot(
    std::istream& is, const std::vector<PlanPtr>& plans,
    serve::ShardedCatalogOptions options) {
  options.catalog.pipeline = options_.pipeline;
  return serve::ShardedCatalog::ImportSnapshot(
      is, catalog_, model_.get(), &instance_layout_, &agnostic_layout_,
      options_.value_range, plans, options);
}

Result<std::unique_ptr<serve::CatalogStore>> GeqoSystem::OpenShardedCatalogStore(
    const std::string& dir, const std::vector<PlanPtr>& plans,
    serve::ShardedCatalogOptions options, serve::DurabilityOptions durability) {
  options.catalog.pipeline = options_.pipeline;
  return serve::CatalogStore::OpenSharded(dir, ServeComponents(), plans,
                                          options, durability);
}

}  // namespace geqo
