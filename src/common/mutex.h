#pragma once

#include <mutex>
#include <shared_mutex>

#include "analysis/lock_rank.h"
#include "common/thread_annotations.h"

/// \file mutex.h
/// The codebase's lock vocabulary: capability-annotated wrappers around
/// std::mutex / std::shared_mutex, plus their scoped guards. Locking
/// through these types (instead of the std types directly) buys two
/// checkers at once:
///
///   - clang's -Wthread-safety sees the GEQO_CAPABILITY annotations, so
///     GEQO_GUARDED_BY members and GEQO_REQUIRES contracts are enforced
///     at compile time (std::mutex carries no annotations under
///     libstdc++, which is why wrappers are required at all);
///   - every acquisition funnels through the runtime lock-rank checker
///     (analysis/lock_rank.h), so a lock-order inversion aborts
///     deterministically on its first occurrence — the rank check runs
///     *before* the blocking lock call, turning a would-be deadlock into
///     a named diagnostic.
///
/// Construction takes the lock's analysis::LockRank; the lattice and the
/// conventions are documented in DESIGN.md §13.
///
/// Condition variables: use std::condition_variable_any with UniqueLock
/// (it satisfies BasicLockable), and write wait loops as explicit
/// `while (!cond) cv.wait(lock);` — a predicate lambda would read guarded
/// members from a context the static analysis cannot see the lock in.

namespace geqo {

/// \brief Rank-checked, capability-annotated std::mutex.
class GEQO_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(analysis::LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GEQO_ACQUIRE() {
    analysis::LockRankOnAcquire(rank_);
    mu_.lock();
  }
  void unlock() GEQO_RELEASE() {
    mu_.unlock();
    analysis::LockRankOnRelease(rank_);
  }

  analysis::LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  const analysis::LockRank rank_;
};

/// \brief Rank-checked, capability-annotated std::shared_mutex. Shared
/// acquisitions are rank-checked exactly like exclusive ones: a
/// reader-side inversion deadlocks against a writer just the same.
class GEQO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(analysis::LockRank rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() GEQO_ACQUIRE() {
    analysis::LockRankOnAcquire(rank_);
    mu_.lock();
  }
  void unlock() GEQO_RELEASE() {
    mu_.unlock();
    analysis::LockRankOnRelease(rank_);
  }
  void lock_shared() GEQO_ACQUIRE_SHARED() {
    analysis::LockRankOnAcquire(rank_);
    mu_.lock_shared();
  }
  void unlock_shared() GEQO_RELEASE_SHARED() {
    mu_.unlock_shared();
    analysis::LockRankOnRelease(rank_);
  }

  analysis::LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const analysis::LockRank rank_;
};

/// \brief Scoped exclusive lock of a Mutex (the std::lock_guard shape).
class GEQO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GEQO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GEQO_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Scoped exclusive lock of a Mutex that a
/// std::condition_variable_any can wait on (BasicLockable), with early
/// unlock()/relock for handoff patterns.
class GEQO_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) GEQO_ACQUIRE(mu) : mu_(mu), owns_(true) {
    mu_.lock();
  }
  ~UniqueLock() GEQO_RELEASE() {
    if (owns_) mu_.unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() GEQO_ACQUIRE() {
    mu_.lock();
    owns_ = true;
  }
  void unlock() GEQO_RELEASE() {
    owns_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool owns_;
};

/// \brief Scoped shared (reader) lock of a SharedMutex.
class GEQO_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) GEQO_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() GEQO_RELEASE_GENERIC() { mu_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief Scoped exclusive (writer) lock of a SharedMutex.
class GEQO_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) GEQO_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() GEQO_RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace geqo
