#include <gtest/gtest.h>

#include "tensor/device.h"
#include "tensor/tensor.h"

namespace geqo {
namespace {

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  t.At(1, 2) = 5.0f;
  EXPECT_EQ(t.At(1, 2), 5.0f);
  EXPECT_EQ(t.At(0, 0), 0.0f);
}

TEST(TensorTest, FromVectorAndReshape) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.rows(), 1u);
  const Tensor reshaped = t.Reshaped(2, 3);
  EXPECT_EQ(reshaped.At(1, 0), 4.0f);
}

TEST(TensorTest, SliceRows) {
  const Tensor t = Tensor::FromRows(3, 2, {1, 2, 3, 4, 5, 6});
  const Tensor middle = t.Slice(1, 2);
  EXPECT_EQ(middle.rows(), 1u);
  EXPECT_EQ(middle.At(0, 0), 3.0f);
  EXPECT_EQ(middle.At(0, 1), 4.0f);
}

TEST(TensorOpsTest, MatMulBasic) {
  const Tensor a = Tensor::FromRows(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::FromRows(3, 2, {7, 8, 9, 10, 11, 12});
  const Tensor c = ops::MatMul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_EQ(c.At(0, 0), 58.0f);
  EXPECT_EQ(c.At(1, 1), 154.0f);
}

TEST(TensorOpsTest, MatMulTransposes) {
  const Tensor a = Tensor::FromRows(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::FromRows(2, 3, {1, 0, 1, 0, 1, 0});
  // a x b^T: [2,3] x [3,2].
  const Tensor c = ops::MatMul(a, b, false, true);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_EQ(c.At(0, 0), 4.0f);   // 1+3
  EXPECT_EQ(c.At(0, 1), 2.0f);   // 2
  // a^T x a: [3,2]x[2,3] -> [3,3].
  const Tensor d = ops::MatMul(a, a, true, false);
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_EQ(d.At(0, 0), 17.0f);  // 1*1 + 4*4
}

TEST(TensorOpsTest, ElementwiseOps) {
  const Tensor a = Tensor::FromVector({1, 2, 3});
  const Tensor b = Tensor::FromVector({4, 5, 6});
  EXPECT_EQ(ops::Add(a, b).At(0, 2), 9.0f);
  EXPECT_EQ(ops::Sub(b, a).At(0, 0), 3.0f);
  EXPECT_EQ(ops::Mul(a, b).At(0, 1), 10.0f);
  EXPECT_EQ(ops::Scale(a, 2.0f).At(0, 2), 6.0f);
}

TEST(TensorOpsTest, RowVectorBroadcast) {
  Tensor a = Tensor::FromRows(2, 2, {1, 2, 3, 4});
  const Tensor bias = Tensor::FromVector({10, 20});
  ops::AddRowVectorInPlace(&a, bias);
  EXPECT_EQ(a.At(0, 0), 11.0f);
  EXPECT_EQ(a.At(1, 1), 24.0f);
}

TEST(TensorOpsTest, ColumnSum) {
  const Tensor a = Tensor::FromRows(2, 2, {1, 2, 3, 4});
  const Tensor sums = ops::ColumnSum(a);
  EXPECT_EQ(sums.At(0, 0), 4.0f);
  EXPECT_EQ(sums.At(0, 1), 6.0f);
}

TEST(TensorOpsTest, TransposeRoundTrip) {
  const Tensor a = Tensor::FromRows(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor t = ops::Transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.At(2, 1), 6.0f);
  const Tensor back = ops::Transpose(t);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.values()[i], back.values()[i]);
  }
}

TEST(TensorOpsTest, ConcatColumns) {
  const Tensor a = Tensor::FromRows(2, 1, {1, 2});
  const Tensor b = Tensor::FromRows(2, 2, {3, 4, 5, 6});
  const Tensor c = ops::ConcatColumns(a, b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_EQ(c.At(1, 0), 2.0f);
  EXPECT_EQ(c.At(1, 2), 6.0f);
}

TEST(TensorOpsTest, SquaredDistance) {
  const float a[] = {0.0f, 3.0f};
  const float b[] = {4.0f, 0.0f};
  EXPECT_EQ(ops::SquaredDistance(a, b, 2), 25.0f);
}

TEST(TensorOpsTest, KernelStatsCount) {
  GetKernelStats().Reset();
  const Tensor a = Tensor::FromRows(4, 4, std::vector<float>(16, 1.0f));
  ops::MatMul(a, a);
  EXPECT_EQ(GetKernelStats().dispatches, 1u);
  EXPECT_EQ(GetKernelStats().flops, 2.0 * 4 * 4 * 4);
}

TEST(DeviceModelTest, CpuIsIdentity) {
  KernelStats stats;
  stats.dispatches = 100;
  EXPECT_EQ(DeviceModel::Cpu().ModelSeconds(1.5, stats, 1e9), 1.5);
}

TEST(DeviceModelTest, AcceleratorCrossover) {
  // Small job: dispatch overhead dominates, accelerator loses.
  const DeviceModel gpu = DeviceModel::AcceleratorT4Like();
  KernelStats small;
  small.dispatches = 1000;
  const double small_cpu = 1e-3;
  EXPECT_GT(gpu.ModelSeconds(small_cpu, small, 1e6), small_cpu);
  // Large job: compute dominates, accelerator wins.
  KernelStats large;
  large.dispatches = 1000;
  const double large_cpu = 100.0;
  EXPECT_LT(gpu.ModelSeconds(large_cpu, large, 1e9), large_cpu);
}

TEST(TensorTest, RandnIsSeeded) {
  Rng rng1(42);
  Rng rng2(42);
  const Tensor a = Tensor::Randn(2, 2, 1.0f, &rng1);
  const Tensor b = Tensor::Randn(2, 2, 1.0f, &rng2);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.values()[i], b.values()[i]);
}

}  // namespace
}  // namespace geqo
