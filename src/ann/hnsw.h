#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

/// \file hnsw.h
/// Hierarchical Navigable Small World index (Malkov & Yashunin [35]) for
/// approximate nearest-neighbor search, implemented from scratch. The VMF
/// (§2.2.1, Definition 2.1) embeds subexpressions with the EMF's learned
/// tree convolution and uses this index for threshold (radius) searches at
/// O(log n) per query.
///
/// Distances: graph traversal compares squared L2 distances (sqrt is
/// monotonic, so ordering is unchanged and the per-comparison sqrt of the
/// original implementation is gone); results convert to true distance only at
/// the radius-check / result boundary, so the public Neighbor contract is
/// still true L2 distance.
///
/// Quantization: with SQ8 enabled (HnswOptions::quant, defaulting to the
/// process-wide GEQO_QUANT switch), the index stores uint8 codes alongside
/// the f32 vectors. Per-dimension min/max ranges are calibrated from the
/// first `sq8_calibration` inserts, after which traversal distances use the
/// asymmetric int8 kernel and the final beam is exactly reranked against the
/// f32 vectors — quantization error can only reorder the beam's tail, never
/// the reported distances.

namespace geqo::ann {

/// Index-level SQ8 switch: kAuto follows kernels::QuantEnabled() at
/// construction time, the explicit settings pin it per index.
enum class QuantOverride : int { kAuto = 0, kOff = 1, kOn = 2 };

/// \brief Construction / search parameters.
struct HnswOptions {
  size_t max_connections = 16;    ///< M: links per node above layer 0
  size_t ef_construction = 100;   ///< beam width while inserting
  size_t ef_search = 64;          ///< default beam width while querying
  uint64_t seed = 0x9e3779b97f4aULL;
  /// SQ8 storage for traversal distances (see file comment).
  QuantOverride quant = QuantOverride::kAuto;
  /// Number of inserts observed before the per-dimension ranges freeze and
  /// codes are built; until then quantized indexes search in f32.
  size_t sq8_calibration = 64;
};

/// \brief One search hit: element id plus its L2 distance to the query.
struct Neighbor {
  size_t id;
  float distance;

  /// Orders by distance, tie-breaking equal distances by id so result
  /// ordering is deterministic across platforms and insertion interleavings
  /// (duplicate embeddings are common in catalog serving).
  bool operator<(const Neighbor& other) const {
    if (distance != other.distance) return distance < other.distance;
    return id < other.id;
  }
};

/// \brief An HNSW index over fixed-dimension float vectors.
///
/// Vectors are copied in. Ids are assigned densely in insertion order.
///
/// Thread-safety contract (relied on by serve::ShardedCatalog): the index
/// is a single-writer / multi-reader structure. Any number of const
/// searches (SearchKnn / SearchRadius) may run concurrently with each
/// other — search state lives in a per-call context and the observability
/// tallies are relaxed atomics. Add is NOT safe concurrently with anything,
/// including searches: it splices link lists and grows the vector arena in
/// place, so writers need exclusive external synchronization (the sharded
/// catalog wraps each shard's index in a reader-writer lock: probes hold it
/// shared, inserts hold it unique).
///
/// Under Clang's -Wthread-safety that external lock is a real capability:
/// ShardedCatalog::Shard pt-guards its whole EquivalenceCatalog — and
/// therefore this index — behind Shard::mu (rank kShard), so any unlocked
/// path to Add or Search is a compile error there, not a convention. The
/// index itself stays annotation-free by design: it owns no lock and must
/// stay usable single-threaded without one (the pipeline's per-thread
/// indexes never synchronize).
class HnswIndex {
 public:
  HnswIndex(size_t dim, HnswOptions options = HnswOptions());

  /// Inserts \p vector (length dim()); returns its id.
  size_t Add(const float* vector);
  size_t Add(const std::vector<float>& vector);

  /// Approximate k-nearest-neighbor search, closest first.
  std::vector<Neighbor> SearchKnn(const float* query, size_t k,
                                  size_t ef = 0) const;

  /// Approximate radius search: all indexed vectors within L2 distance
  /// \p radius of \p query (closest first). \p ef bounds the exploration
  /// beam; larger values increase recall.
  std::vector<Neighbor> SearchRadius(const float* query, float radius,
                                     size_t ef = 0) const;

  /// Exact (brute-force, always f32) radius search, for recall evaluation.
  std::vector<Neighbor> ExactRadius(const float* query, float radius) const;

  size_t size() const { return nodes_.size(); }
  size_t dim() const { return dim_; }
  /// Stored f32 vector for \p id — 32-byte aligned (rows are padded to the
  /// kernel alignment).
  const float* vector(size_t id) const {
    return vectors_.data() + id * padded_dim_;
  }
  const HnswOptions& options() const { return options_; }

  /// True when this index stores SQ8 codes (resolved from options().quant at
  /// construction, or from the snapshot at load).
  bool quantized() const { return quant_enabled_; }
  /// True once the per-dimension ranges have frozen and traversal uses the
  /// int8 kernel.
  bool calibrated() const { return calibrated_; }

  /// Writes the complete index state — options, the rng's position in its
  /// stream, quantization ranges, all vectors, and the layered graph — to
  /// \p os. A deserialized index continues to accept Add calls and produces
  /// bit-identical search results and level assignments to the original.
  Status Serialize(std::ostream& os) const;

  /// Restores an index written by Serialize. Fails with a descriptive Status
  /// (never aborts) on bad magic, version skew, truncation, a corrupt
  /// quantization range table, or a graph that violates structural
  /// invariants (out-of-range ids, level mismatches). The quantization mode
  /// stored in the snapshot wins over the current GEQO_QUANT environment, so
  /// a loaded index reproduces the serving behavior it was built with; SQ8
  /// codes are re-encoded deterministically from the stored f32 vectors.
  static Result<std::unique_ptr<HnswIndex>> Deserialize(std::istream& is);

 private:
  struct Node {
    int level;
    /// Adjacency lists, one per layer 0..level.
    std::vector<std::vector<uint32_t>> neighbors;
  };

  /// Per-search state. Quantized traversal needs the query pre-shifted by
  /// the per-dimension minima (so the range offsets cancel in the kernel);
  /// building it once per search keeps Distance() scratch-free and searches
  /// safely concurrent.
  struct SearchContext {
    const float* query;
    /// query - min_, only populated when `quantized` is set.
    AlignedVector<float> shifted;
    bool quantized = false;
    /// Per-search scratch for SearchLayer: a byte-mask visited set and the
    /// two beam heaps, allocated once per search instead of per layer (the
    /// hot serving probe was dominated by these allocations, not distance
    /// math). Living in the context keeps concurrent searches safe.
    std::vector<uint8_t> visited;
    std::vector<Neighbor> best_heap;
    std::vector<Neighbor> candidate_heap;
  };

  SearchContext MakeContext(const float* query) const;
  /// Squared distance from the context's query to stored element \p id —
  /// SQ8 approximate when the context is quantized, exact f32 otherwise.
  float DistanceSq(const SearchContext& ctx, uint32_t id) const;
  /// Exact f32 squared distance between two stored elements (link pruning).
  float StoredDistanceSq(uint32_t a, uint32_t b) const;
  /// Converts a beam of squared distances into true-distance neighbors,
  /// exactly reranking against the f32 vectors when \p ctx is quantized.
  std::vector<Neighbor> FinishBeam(const SearchContext& ctx,
                                   std::vector<Neighbor> beam) const;
  /// Drains the pending distance/hop tallies into the metrics registry
  /// ("hnsw.distance_computations", "hnsw.hops"). Called at the end of every
  /// public operation so hot inner loops only touch the local atomics.
  void FoldMetrics() const;
  int RandomLevel();
  /// Freezes min/max ranges and encodes all stored vectors.
  void Calibrate();
  /// Encodes stored element \p id into codes_ using the frozen ranges.
  void EncodeVector(uint32_t id);
  /// Greedy descent in one layer starting from \p entry.
  uint32_t GreedySearch(const SearchContext& ctx, uint32_t entry,
                        int layer) const;
  /// Beam search within a layer; returns up to \p ef closest by squared
  /// distance, sorted. Mutates only \p ctx's scratch buffers.
  std::vector<Neighbor> SearchLayer(SearchContext& ctx, uint32_t entry,
                                    size_t ef, int layer) const;
  /// Links \p id to the closest \p max_links of \p candidates in \p layer,
  /// pruning back-links that overflow.
  void Connect(uint32_t id, const std::vector<Neighbor>& candidates, int layer,
               size_t max_links);

  size_t dim_;
  /// dim_ rounded up to a whole number of 32-byte blocks; row stride of
  /// vectors_ (floats) and codes_ (bytes use their own stride).
  size_t padded_dim_;
  size_t code_stride_;
  HnswOptions options_;
  double level_multiplier_;
  Rng rng_;
  /// Flat row-major storage, one padded row per element, 32-byte aligned.
  AlignedVector<float> vectors_;
  std::vector<Node> nodes_;
  int max_level_ = -1;
  uint32_t entry_point_ = 0;

  /// SQ8 state (see file comment). min_/scale_ have dim_ entries once
  /// calibrated; codes_ is one padded row per element.
  bool quant_enabled_ = false;
  bool calibrated_ = false;
  std::vector<float> range_min_;
  std::vector<float> range_max_;
  std::vector<float> scale_;
  AlignedVector<uint8_t> codes_;

  /// Index-local observability tallies. Searches run concurrently from the
  /// VMF's parallel region, so these are relaxed atomics (statistics only);
  /// they are drained to the global registry by FoldMetrics.
  mutable std::atomic<uint64_t> pending_distances_{0};
  mutable std::atomic<uint64_t> pending_hops_{0};
};

}  // namespace geqo::ann
