#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/geqo_system.h"
#include "serve/persist/catalog_store.h"
#include "serve/persist/kill_point.h"
#include "serve/persist/manifest.h"
#include "workload/generator.h"
#include "workload/rewrite.h"
#include "workload/schemas.h"

// Crash-recovery matrix for the LSM-style catalog store. Each scenario
// forks a child that arms a kill point (kill_point.h) and drives the store
// until _exit(137) fires at exactly that write-path boundary, then the
// parent reopens the half-written directory and proves recovery:
//
//   - kills between ops (after each add record, during checkpoint rotation,
//     mid-compaction, pre-manifest-swap, pre-GC) recover to a catalog whose
//     ExportSnapshot bytes are IDENTICAL to an uninterrupted reference;
//   - kills inside a multi-record op (mid-ProbeAdd) recover to the exact
//     durable log prefix: two independent recoveries of the same directory
//     are bit-identical, and the store keeps serving;
//   - a torn log tail is truncated (once), counted, and gone on the next
//     open; recovery itself can be killed and re-run idempotently;
//   - legacy one-shot snapshot files are rejected loudly, as is opening a
//     store with the wrong kind entry point.

namespace geqo::serve {
namespace {

namespace fs = std::filesystem;

class PersistTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog());
    GeqoSystemOptions options;
    options.model.conv1_size = 8;
    options.model.conv2_size = 8;
    options.model.fc1_size = 8;
    options.model.fc2_size = 4;
    // Wide-open funnel (untrained EMF): probes reach the exact verifier, so
    // the stream below proves equivalences, memoizes verdicts, and unions
    // classes — every record type flows through the log.
    options.pipeline.vmf.radius = 6.0f;
    options.pipeline.emf.threshold = 0.0f;
    system_ = new GeqoSystem(catalog_, options);

    // 8 generated subexpressions + 4 rewrites of the early ones.
    Rng rng(0xD15C);
    QueryGenerator generator(catalog_, GeneratorOptions());
    Rewriter rewriter(catalog_);
    plans_ = new std::vector<PlanPtr>(generator.GenerateMany(8, &rng));
    for (size_t i = 0; i < 4; ++i) {
      auto variant = rewriter.RewriteOnce((*plans_)[i], &rng);
      GEQO_CHECK(variant.ok());
      plans_->push_back(*variant);
    }
  }

  static void TearDownTestSuite() {
    delete plans_;
    delete system_;
    delete catalog_;
    plans_ = nullptr;
    system_ = nullptr;
    catalog_ = nullptr;
  }

  /// A fresh, empty store directory under the test tmpdir.
  static std::string StoreDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/persist_" + name;
    std::error_code ec;
    fs::remove_all(dir, ec);
    return dir;
  }

  static Result<std::unique_ptr<CatalogStore>> OpenSingle(
      const std::string& dir) {
    return system_->OpenCatalogStore(dir, *plans_);
  }

  static Result<std::unique_ptr<CatalogStore>> OpenShardedStore(
      const std::string& dir) {
    ShardedCatalogOptions options;
    options.num_shards = 2;
    options.verifier_threads = 0;  // deferred mode: deterministic streams
    return system_->OpenShardedCatalogStore(dir, *plans_, options);
  }

  static std::string SnapshotBytes(const CatalogStore& store) {
    std::ostringstream out;
    GEQO_CHECK_OK(store.ExportSnapshot(out));
    return out.str();
  }

  /// Forks a child that arms \p kill_point on hit \p hits and runs \p body;
  /// returns the child's exit code (137 when the kill fired, 0 when the
  /// body ran to completion without reaching the armed hit).
  static int RunKilledChild(const char* kill_point, int hits,
                            const std::function<void()>& body) {
    const pid_t pid = fork();
    GEQO_CHECK(pid >= 0);
    if (pid == 0) {
      persist::SetKillPoint(kill_point, hits);
      body();
      std::_Exit(0);
    }
    int status = 0;
    GEQO_CHECK(waitpid(pid, &status, 0) == pid);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  static Catalog* catalog_;
  static GeqoSystem* system_;
  static std::vector<PlanPtr>* plans_;
};

Catalog* PersistTest::catalog_ = nullptr;
GeqoSystem* PersistTest::system_ = nullptr;
std::vector<PlanPtr>* PersistTest::plans_ = nullptr;

// ---------------------------------------------------------------------------
// Exact recovery at every record boundary: an add-only stream appends one
// record per op, so "killed after record k" is "killed between ops" for all
// k — the recovered + re-applied store must be bit-identical to a store
// that was never interrupted.

TEST_F(PersistTest, SingleAddStreamKilledAfterEveryRecordIsExact) {
  const std::string ref_dir = StoreDir("add_ref");
  std::string ref_bytes;
  {
    auto ref = OpenSingle(ref_dir);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    for (const PlanPtr& plan : *plans_) {
      ASSERT_TRUE((*ref)->catalog()->Add(plan).ok());
    }
    ref_bytes = SnapshotBytes(**ref);
    ASSERT_TRUE((*ref)->Close().ok());
  }

  for (int k = 1;; ++k) {
    const std::string dir = StoreDir("add_kill");
    const int code = RunKilledChild("wal-append", k, [&] {
      auto store = OpenSingle(dir);
      GEQO_CHECK(store.ok());
      for (const PlanPtr& plan : *plans_) {
        GEQO_CHECK((*store)->catalog()->Add(plan).ok());
      }
      GEQO_CHECK_OK((*store)->Close());
    });
    if (code == 0) {
      // Hit k exceeds the stream's record count: the matrix is exhausted.
      ASSERT_GT(k, static_cast<int>(plans_->size()));
      break;
    }
    ASSERT_EQ(code, 137) << "kill after record " << k;

    auto store = OpenSingle(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    const size_t recovered = (*store)->catalog()->size();
    EXPECT_EQ(recovered, static_cast<size_t>(k))
        << "every flushed add record must survive the crash";
    for (size_t i = recovered; i < plans_->size(); ++i) {
      ASSERT_TRUE((*store)->catalog()->Add((*plans_)[i]).ok());
    }
    EXPECT_EQ(SnapshotBytes(**store), ref_bytes)
        << "recovery after record " << k
        << " + re-applied tail diverged from the uninterrupted reference";
    ASSERT_TRUE((*store)->Close().ok());
  }
}

TEST_F(PersistTest, ShardedAddStreamKilledAfterEveryRecordIsExact) {
  const std::string ref_dir = StoreDir("shadd_ref");
  std::string ref_bytes;
  {
    auto ref = OpenShardedStore(ref_dir);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    for (const PlanPtr& plan : *plans_) {
      ASSERT_TRUE((*ref)->sharded()->Add(plan).ok());
    }
    ref_bytes = SnapshotBytes(**ref);
    ASSERT_TRUE((*ref)->Close().ok());
  }

  for (int k = 1;; ++k) {
    const std::string dir = StoreDir("shadd_kill");
    const int code = RunKilledChild("wal-append", k, [&] {
      auto store = OpenShardedStore(dir);
      GEQO_CHECK(store.ok());
      for (const PlanPtr& plan : *plans_) {
        GEQO_CHECK((*store)->sharded()->Add(plan).ok());
      }
      GEQO_CHECK_OK((*store)->Close());
    });
    if (code == 0) {
      ASSERT_GT(k, static_cast<int>(plans_->size()));
      break;
    }
    ASSERT_EQ(code, 137) << "kill after record " << k;

    auto store = OpenShardedStore(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    const size_t recovered = (*store)->sharded()->size();
    EXPECT_EQ(recovered, static_cast<size_t>(k));
    for (size_t i = recovered; i < plans_->size(); ++i) {
      ASSERT_TRUE((*store)->sharded()->Add((*plans_)[i]).ok());
    }
    EXPECT_EQ(SnapshotBytes(**store), ref_bytes)
        << "sharded recovery after record " << k << " diverged";
    ASSERT_TRUE((*store)->Close().ok());
  }
}

// ---------------------------------------------------------------------------
// Maintenance kill points: the full probe stream (verdicts, unions, memo)
// lands before the crash, which fires inside Checkpoint / Compact — log
// rotation, the mid-base export, the pre-manifest-swap window, and the
// pre-GC window. All state is durable by then, so recovery must be exact.

TEST_F(PersistTest, MaintenanceKillPointsRecoverBitIdentical) {
  const std::string ref_dir = StoreDir("maint_ref");
  std::string ref_bytes;
  {
    auto ref = OpenSingle(ref_dir);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    for (const PlanPtr& plan : *plans_) {
      ASSERT_TRUE((*ref)->catalog()->ProbeAdd(plan).ok());
    }
    ref_bytes = SnapshotBytes(**ref);
    ASSERT_TRUE((*ref)->Close().ok());
  }

  for (const char* kill_point :
       {"manifest-tmp", "manifest-renamed", "compact-mid-base",
        "compact-pre-manifest", "compact-pre-gc"}) {
    const std::string dir = StoreDir("maint_kill");
    const int code = RunKilledChild("noop", 1, [&] {
      auto store = OpenSingle(dir);
      GEQO_CHECK(store.ok());
      for (const PlanPtr& plan : *plans_) {
        GEQO_CHECK((*store)->catalog()->ProbeAdd(plan).ok());
      }
      // Arm only now: Open's own rotation writes the manifest too, and the
      // crash under test is the one during maintenance.
      persist::SetKillPoint(kill_point);
      GEQO_CHECK_OK((*store)->Checkpoint());
      GEQO_CHECK_OK((*store)->Compact());
      GEQO_CHECK_OK((*store)->Close());
    });
    ASSERT_EQ(code, 137) << kill_point << " never fired";

    auto store = OpenSingle(dir);
    ASSERT_TRUE(store.ok())
        << kill_point << ": " << store.status().ToString();
    EXPECT_EQ(SnapshotBytes(**store), ref_bytes)
        << "crash at " << kill_point << " lost or invented state";
    // The recovered store keeps serving and checkpointing.
    ASSERT_TRUE((*store)->Checkpoint().ok()) << kill_point;
    ASSERT_TRUE((*store)->Compact().ok()) << kill_point;
    EXPECT_EQ(SnapshotBytes(**store), ref_bytes) << kill_point;
    ASSERT_TRUE((*store)->Close().ok()) << kill_point;
  }
}

TEST_F(PersistTest, ShardedCheckpointKillRecoversPendingTail) {
  const std::string ref_dir = StoreDir("shmaint_ref");
  std::string ref_bytes;
  size_t ref_pending = 0;
  {
    auto ref = OpenShardedStore(ref_dir);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    for (const PlanPtr& plan : *plans_) {
      ASSERT_TRUE((*ref)->sharded()->ProbeAdd(plan).ok());
    }
    ref_pending = (*ref)->sharded()->PendingVerifications();
    ref_bytes = SnapshotBytes(**ref);
    ASSERT_TRUE((*ref)->Close().ok());
  }
  // Deferred mode plus rewrites guarantees a non-empty pending tail, so the
  // crash window covers pending re-logging at rotation.
  ASSERT_GT(ref_pending, 0u);

  for (const char* kill_point : {"manifest-tmp", "manifest-renamed"}) {
    const std::string dir = StoreDir("shmaint_kill");
    const int code = RunKilledChild("noop", 1, [&] {
      auto store = OpenShardedStore(dir);
      GEQO_CHECK(store.ok());
      for (const PlanPtr& plan : *plans_) {
        GEQO_CHECK((*store)->sharded()->ProbeAdd(plan).ok());
      }
      persist::SetKillPoint(kill_point);
      GEQO_CHECK_OK((*store)->Checkpoint());
      GEQO_CHECK_OK((*store)->Close());
    });
    ASSERT_EQ(code, 137) << kill_point << " never fired";

    auto store = OpenShardedStore(dir);
    ASSERT_TRUE(store.ok())
        << kill_point << ": " << store.status().ToString();
    EXPECT_EQ((*store)->sharded()->PendingVerifications(), ref_pending)
        << kill_point << " dropped or duplicated pending verifications";
    EXPECT_EQ(SnapshotBytes(**store), ref_bytes) << kill_point;
    ASSERT_TRUE((*store)->Close().ok());
  }
}

// ---------------------------------------------------------------------------
// Kills inside a multi-record op (mid-ProbeAdd): the durable prefix is a
// legal catalog state, and recovering it must be deterministic — two
// independent recoveries of copies of the same crashed directory agree to
// the byte, and the recovered store still serves.

TEST_F(PersistTest, MidProbeKillsRecoverDeterministically) {
  for (const int k : {2, 5, 9, 14}) {
    const std::string dir = StoreDir("midprobe_kill");
    const int code = RunKilledChild("wal-append", k, [&] {
      auto store = OpenSingle(dir);
      GEQO_CHECK(store.ok());
      for (const PlanPtr& plan : *plans_) {
        GEQO_CHECK((*store)->catalog()->ProbeAdd(plan).ok());
      }
      GEQO_CHECK_OK((*store)->Close());
    });
    ASSERT_EQ(code, 137) << "probe stream appended fewer than " << k
                         << " records";

    // Copy the crashed directory BEFORE recovery mutates it (rotation,
    // truncation), then recover both copies independently.
    const std::string twin = StoreDir("midprobe_twin");
    fs::copy(dir, twin);

    auto first = OpenSingle(dir);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    const std::string first_bytes = SnapshotBytes(**first);
    auto twin_store = OpenSingle(twin);
    ASSERT_TRUE(twin_store.ok()) << twin_store.status().ToString();
    EXPECT_EQ(first_bytes, SnapshotBytes(**twin_store))
        << "recovery of the same crash image (record " << k
        << ") is not deterministic";
    ASSERT_TRUE((*twin_store)->Close().ok());

    // The recovered store keeps serving: finish the stream and close.
    for (size_t i = (*first)->catalog()->size(); i < plans_->size(); ++i) {
      ASSERT_TRUE((*first)->catalog()->ProbeAdd((*plans_)[i]).ok());
    }
    ASSERT_TRUE((*first)->Close().ok());
  }
}

// ---------------------------------------------------------------------------
// Recovery is itself crash-safe: replay does not mutate the directory (the
// only write, tail truncation, is idempotent), so a kill mid-replay
// followed by a second recovery lands on the uninterrupted result.

TEST_F(PersistTest, KillDuringReplayThenRecoverAgainIsExact) {
  const std::string dir = StoreDir("replay_kill");
  std::string ref_bytes;
  {
    auto store = OpenSingle(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (const PlanPtr& plan : *plans_) {
      ASSERT_TRUE((*store)->catalog()->ProbeAdd(plan).ok());
    }
    ref_bytes = SnapshotBytes(**store);
    ASSERT_TRUE((*store)->Close().ok());
  }

  // Die while applying the 3rd replayed record, then once more on the 7th.
  for (const int k : {3, 7}) {
    const int code = RunKilledChild("replay-record", k, [&] {
      auto reopened = OpenSingle(dir);
      GEQO_CHECK(reopened.ok());
    });
    ASSERT_EQ(code, 137) << "replay-record hit " << k << " never fired";
  }

  auto recovered = OpenSingle(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SnapshotBytes(**recovered), ref_bytes);
  ASSERT_TRUE((*recovered)->Close().ok());
}

// ---------------------------------------------------------------------------
// Torn tails: garbage past the last valid frame is truncated exactly once,
// counted in stats, and gone from disk on the next open.

TEST_F(PersistTest, TornTailIsTruncatedOnceAndCounted) {
  const std::string dir = StoreDir("torn");
  {
    auto store = OpenSingle(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE((*store)->catalog()->Add((*plans_)[i]).ok());
    }
    ASSERT_TRUE((*store)->Close().ok());
  }

  // Append a torn half-record to every log partition the manifest lists.
  const auto manifest = persist::ReadManifest(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_FALSE(manifest->log_ids.empty());
  size_t damaged = 0;
  for (const uint64_t id : manifest->log_ids) {
    const std::string path =
        dir + "/" + persist::WalPartitionFileName(id, 0);
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    if (!probe) continue;
    const auto clean_size = probe.tellg();
    probe.close();
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "torn-half-frame";
    out.close();
    ASSERT_GT(fs::file_size(path), static_cast<uint64_t>(clean_size));
    ++damaged;
  }
  ASSERT_GT(damaged, 0u);

  {
    auto store = OpenSingle(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->stats().torn_tails_truncated, damaged);
    EXPECT_EQ((*store)->catalog()->size(), 3u)
        << "truncation must not cost valid records";
    ASSERT_TRUE((*store)->Close().ok());
  }
  {
    // The truncation is durable: a second open sees clean logs.
    auto store = OpenSingle(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->stats().torn_tails_truncated, 0u);
    EXPECT_EQ((*store)->catalog()->size(), 3u);
    ASSERT_TRUE((*store)->Close().ok());
  }
}

// ---------------------------------------------------------------------------
// Loud failures: legacy snapshot files and wrong-kind opens must not be
// silently adopted or clobbered.

TEST_F(PersistTest, LegacySnapshotFileIsRejectedLoudly) {
  const std::string path = StoreDir("legacy") + ".snapshot";
  {
    auto serving = system_->OpenCatalog();
    for (const PlanPtr& plan : *plans_) {
      ASSERT_TRUE(serving->ProbeAdd(plan).ok());
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(serving->ExportSnapshot(out).ok());
  }
  auto store = OpenSingle(path);
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().ToString().find("legacy"), std::string::npos)
      << store.status().ToString();
  // The misuse did not destroy the snapshot: it still imports.
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(system_->ImportCatalogSnapshot(in, *plans_).ok());
  std::remove(path.c_str());
}

TEST_F(PersistTest, WrongKindOpenIsRejected) {
  const std::string dir = StoreDir("kind");
  {
    auto store = OpenSingle(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->catalog()->Add((*plans_)[0]).ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  auto sharded = OpenShardedStore(dir);
  ASSERT_FALSE(sharded.ok());
  EXPECT_NE(
      sharded.status().ToString().find("single-catalog"), std::string::npos)
      << sharded.status().ToString();
}

// A store reopened with fewer plans than logged entries fails loudly
// instead of replaying garbage.

TEST_F(PersistTest, ReopenWithTruncatedPlanListFailsLoudly) {
  const std::string dir = StoreDir("plans");
  {
    auto store = OpenSingle(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (const PlanPtr& plan : *plans_) {
      ASSERT_TRUE((*store)->catalog()->Add(plan).ok());
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
  const std::vector<PlanPtr> short_plans(plans_->begin(),
                                         plans_->begin() + 2);
  auto reopened = system_->OpenCatalogStore(dir, short_plans);
  EXPECT_FALSE(reopened.ok());
}

}  // namespace
}  // namespace geqo::serve
