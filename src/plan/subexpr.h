#pragma once

#include <vector>

#include "plan/plan.h"

/// \file subexpr.h
/// Subexpression enumeration (§2.1): every subtree of a logical plan is an
/// unambiguously executable subexpression, and the workload-equivalence
/// problem is posed over the union of all subexpressions of all queries.

namespace geqo {

/// \brief Returns every subtree of \p plan, root included, in pre-order.
/// Subtrees share structure with the input (no copies are made).
std::vector<PlanPtr> EnumerateSubexpressions(const PlanPtr& plan);

/// \brief Enumerates subexpressions of every plan in \p queries (the
/// W = U_k S(Q^k) formulation), deduplicating structurally identical trees.
std::vector<PlanPtr> EnumerateWorkloadSubexpressions(
    const std::vector<PlanPtr>& queries);

}  // namespace geqo
