/// \file bench_fig9.cpp
/// Reproduces Figure 9 (§7.3): SSFL accuracy and F1 after each fine-tuning
/// batch, comparing filter-balanced sampling against random sampling. The
/// initial model is degenerate — trained only on join-free TPC-H queries —
/// and is fine-tuned toward a join-heavy TPC-DS workload.
///
/// Paper shape to reproduce: filter-based sampling climbs to ~90% accuracy
/// and F1 within a few thousand samples; random sampling barely moves
/// (it almost never surfaces positive examples in a quadratic pair space).

#include <cstdio>

#include "bench_util.h"

using namespace geqo;
using namespace geqo::bench;

int main() {
  PrintHeader("bench_fig9", "Figure 9: SSFL accuracy/F1, filter-based vs "
                            "random sampling");
  const SsflStudyResult study = RunSsflStudy(GetScale());

  std::printf("\n%-10s | %-28s | %-28s\n", "", "filter-based sampling",
              "random sampling");
  std::printf("%-10s | %-9s %-8s %-8s | %-9s %-8s %-8s\n", "iteration",
              "samples", "accuracy", "F1", "samples", "accuracy", "F1");
  const size_t rows =
      std::max(study.filter_based.size(), study.random.size());
  for (size_t i = 0; i < rows; ++i) {
    const SsflStudyPoint f = i < study.filter_based.size()
                                 ? study.filter_based[i]
                                 : study.filter_based.back();
    const SsflStudyPoint r =
        i < study.random.size() ? study.random[i] : study.random.back();
    std::printf("%-10zu | %-9zu %-8.3f %-8.3f | %-9zu %-8.3f %-8.3f\n", i,
                f.cumulative_samples, f.accuracy, f.f1, r.cumulative_samples,
                r.accuracy, r.f1);
  }

  const double filter_gain =
      study.filter_based.back().f1 - study.filter_based.front().f1;
  const double random_gain = study.random.back().f1 - study.random.front().f1;
  std::printf("\nF1 gain: filter-based %+.3f, random %+.3f\n", filter_gain,
              random_gain);
  const bool shape = filter_gain > random_gain;
  std::printf("shape check: filter-based sampling improves the model more "
              "than random -> %s\n",
              shape ? "yes (matches paper)" : "NO");
  return shape ? 0 : 1;
}
