/// \file bench_serve.cpp
/// Online serving benchmark (§1 / §7.7 deployment scenario): streams a
/// detection workload through an EquivalenceCatalog with ProbeAdd — the
/// motivating "check each incoming subexpression against the repository"
/// loop — then re-probes the full stream against the warm catalog. Reports
/// probe latency percentiles and the work the memo cache and equivalence
/// classes save, and writes BENCH_serve.json.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"

namespace geqo::bench {
namespace {

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5));
  return sorted[index];
}

struct PhaseAccumulator {
  std::vector<double> latencies;
  size_t verifier_calls = 0;
  size_t memo_hits = 0;
  size_t class_shortcuts = 0;
  double total_seconds = 0.0;

  void Record(const serve::ProbeResult& probe) {
    latencies.push_back(probe.seconds);
    verifier_calls += probe.verifier_calls;
    memo_hits += probe.memo_hits;
    class_shortcuts += probe.class_shortcuts;
    total_seconds += probe.seconds;
  }

  ServeBenchReport Finish(const std::string& label,
                          const serve::EquivalenceCatalog& catalog) {
    std::sort(latencies.begin(), latencies.end());
    ServeBenchReport report;
    report.label = label;
    report.catalog_size = catalog.size();
    report.num_classes = catalog.NumClasses();
    report.probes = latencies.size();
    report.verifier_calls = verifier_calls;
    report.memo_hits = memo_hits;
    report.class_shortcuts = class_shortcuts;
    const double decided =
        static_cast<double>(memo_hits) + static_cast<double>(verifier_calls);
    report.memo_hit_rate =
        decided > 0.0 ? static_cast<double>(memo_hits) / decided : 0.0;
    report.p50_seconds = Percentile(latencies, 0.50);
    report.p99_seconds = Percentile(latencies, 0.99);
    report.total_seconds = total_seconds;
    return report;
  }
};

void PrintPhase(const ServeBenchReport& report) {
  std::printf(
      "%-8s  probes=%-4zu p50=%7.3f ms  p99=%7.3f ms  verifier=%-5llu "
      "memo=%-5llu shortcuts=%-5llu memo-hit=%5.1f%%\n",
      report.label.c_str(), report.probes, report.p50_seconds * 1e3,
      report.p99_seconds * 1e3,
      static_cast<unsigned long long>(report.verifier_calls),
      static_cast<unsigned long long>(report.memo_hits),
      static_cast<unsigned long long>(report.class_shortcuts),
      report.memo_hit_rate * 100.0);
}

}  // namespace
}  // namespace geqo::bench

int main() {
  using namespace geqo;
  using namespace geqo::bench;

  PrintHeader("bench_serve",
              "the online serving scenario (incremental probe latency, "
              "memoization and class shortcuts)");

  const Scale scale = GetScale();
  BenchContext context = TpchTrainedSystem(scale);
  const DetectionWorkload workload = MakeDetectionWorkload(
      *context.catalog, Pick(30, 80, 200), Pick(8, 20, 50), /*seed=*/0x5EF3);
  std::printf("# workload: %zu subexpressions, %zu planted equivalences\n\n",
              workload.subexpressions.size(), workload.planted.size());

  auto catalog = context.system->OpenCatalog();
  std::vector<ServeBenchReport> phases;

  // Phase 1: the cold stream — every query probes the catalog built from
  // its predecessors, then joins it.
  PhaseAccumulator stream;
  size_t proven_pairs = 0;
  for (const PlanPtr& plan : workload.subexpressions) {
    auto result = catalog->ProbeAdd(plan);
    GEQO_CHECK(result.ok()) << result.status().ToString();
    stream.Record(result->probe);
    proven_pairs += result->probe.equivalent_ids.size();
  }
  phases.push_back(stream.Finish("stream", *catalog));
  PrintPhase(phases.back());

  // Phase 2: re-probe the identical stream against the warm catalog. The
  // stream phase only checked each query against its predecessors, so the
  // forward pairs (against entries added later) still need proofs; the
  // backward pairs come from the memo and the classes.
  PhaseAccumulator reprobe;
  for (const PlanPtr& plan : workload.subexpressions) {
    auto result = catalog->Probe(plan);
    GEQO_CHECK(result.ok()) << result.status().ToString();
    reprobe.Record(*result);
  }
  phases.push_back(reprobe.Finish("reprobe", *catalog));
  PrintPhase(phases.back());

  // Phase 3: the steady state of a recurring workload — every surviving
  // pair has been decided once, so the verifier is never invoked again.
  PhaseAccumulator steady;
  for (const PlanPtr& plan : workload.subexpressions) {
    auto result = catalog->Probe(plan);
    GEQO_CHECK(result.ok()) << result.status().ToString();
    steady.Record(*result);
  }
  phases.push_back(steady.Finish("steady", *catalog));
  PrintPhase(phases.back());
  GEQO_CHECK(phases.back().verifier_calls == 0)
      << "steady-state probes must be fully memoized";

  std::printf(
      "\ncatalog: %zu entries in %zu classes, %zu memoized verdicts, "
      "%zu proven pairs during the stream\n",
      catalog->size(), catalog->NumClasses(), catalog->memo_size(),
      proven_pairs);
  std::printf("modeled AV seconds saved by memo+classes at steady state: %.2f\n",
              ModeledAvSeconds(0.0, phases.back().memo_hits +
                                        phases.back().class_shortcuts));

  WriteServeArtifact(phases);
  std::printf("\nBENCH_serve.json written\n");
  return 0;
}
