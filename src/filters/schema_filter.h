#pragma once

#include <vector>

#include "common/result.h"
#include "plan/plan.h"
#include "plan/schema.h"

/// \file schema_filter.h
/// The schema filter (SF, §2.2.1): subexpressions that scan different table
/// sets or return different column counts are highly unlikely to be
/// equivalent, so the workload is grouped by (sorted table names, output
/// arity) in O(n); only intra-group pairs survive to later filters.

namespace geqo {

/// \brief One SF-group: workload indices sharing a schema signature.
struct SfGroup {
  std::vector<std::string> tables;  ///< sorted distinct table names
  size_t num_output_columns = 0;
  std::vector<size_t> members;      ///< indices into the workload
};

/// \brief The SF signature of one subexpression: sorted distinct table names
/// plus output arity. Two plans can only be SF-compatible if their
/// signatures compare equal; the serving catalog keys its incremental group
/// map on this.
struct SfSignature {
  std::vector<std::string> tables;
  size_t num_output_columns = 0;

  bool operator==(const SfSignature&) const = default;
  bool operator<(const SfSignature& other) const {
    if (tables != other.tables) return tables < other.tables;
    return num_output_columns < other.num_output_columns;
  }
};

/// \brief Computes the SF signature of \p plan.
Result<SfSignature> SchemaSignature(const PlanPtr& plan,
                                    const Catalog& catalog);

/// \brief Groups \p workload subexpressions into SF-groups.
Result<std::vector<SfGroup>> SchemaFilter(const std::vector<PlanPtr>& workload,
                                          const Catalog& catalog);

/// \brief Number of intra-group pairs (the SF's surviving candidate count).
size_t CountIntraGroupPairs(const std::vector<SfGroup>& groups);

/// \brief SF as a pairwise predicate (for the pairwise special case and the
/// ablation study): same table multiset and same output arity.
Result<bool> SchemaFilterPair(const PlanPtr& a, const PlanPtr& b,
                              const Catalog& catalog);

}  // namespace geqo
