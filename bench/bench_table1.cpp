/// \file bench_table1.cpp
/// Reproduces Table 1 (§1/§7.5): per-filter wall time, TPR, and TNR over a
/// TPC-DS subexpression workload, for the cumulative filter prefixes
///   SF, SF+VMF, SF+VMF+EMF,
/// plus the automated verifier over all pairs (AV), the full GEqO pipeline,
/// and the hypothetical Oracle+AV lower bound. Ground truth is the AV's
/// output over all pairs, exactly as in §7.5.
///
/// Paper shape to reproduce: TPR stays near-perfect down the filter stack
/// while TNR rises monotonically; AV is orders of magnitude slower than the
/// filters; GEqO lands within a small factor of Oracle+AV and verifies only
/// ~5-10% more pairs than the oracle (the epsilon of Table 1).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"

using namespace geqo;
using namespace geqo::bench;

namespace {

ml::ConfusionMatrix ScoreAgainstTruth(
    size_t n, const std::vector<std::pair<size_t, size_t>>& truth,
    const std::vector<std::pair<size_t, size_t>>& detected) {
  std::vector<std::pair<size_t, size_t>> truth_sorted = truth;
  std::vector<std::pair<size_t, size_t>> detected_sorted = detected;
  std::sort(truth_sorted.begin(), truth_sorted.end());
  std::sort(detected_sorted.begin(), detected_sorted.end());
  ml::ConfusionMatrix matrix;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const std::pair<size_t, size_t> pair{i, j};
      matrix.Add(
          std::binary_search(detected_sorted.begin(), detected_sorted.end(),
                             pair),
          std::binary_search(truth_sorted.begin(), truth_sorted.end(), pair));
    }
  }
  return matrix;
}

void PrintRow(const char* name, double measured_seconds,
              double modeled_seconds, const ml::ConfusionMatrix& matrix) {
  std::printf("%-30s %10.3f %12.1f %6.2f %6.2f\n", name, measured_seconds,
              modeled_seconds, matrix.TruePositiveRate(),
              matrix.TrueNegativeRate());
}

}  // namespace

int main() {
  PrintHeader("bench_table1", "Table 1: filter performance on TPC-DS pairs");
  BenchContext context = TpchTrainedSystem(GetScale());

  // Paper scale: ~50k pairs (317 subexpressions), ~50 equivalences.
  const size_t n = Pick(60, 160, 317);
  const size_t equivalences = Pick(8, 25, 50);
  const Catalog tpcds = MakeTpcdsCatalog();
  const DetectionWorkload workload =
      MakeDetectionWorkload(tpcds, n, equivalences, /*seed=*/0x7AB1E1);
  std::printf("workload: %zu TPC-DS subexpressions, %zu pairs, %zu planted "
              "equivalences\n\n",
              n, workload.TotalPairs(), workload.planted.size());

  auto run_with = [&](bool sf, bool vmf, bool emf,
                      bool verify) -> std::pair<GeqoResult, double> {
    GeqoOptions options;
    options.use_sf = sf;
    options.use_vmf = vmf;
    options.use_emf = emf;
    options.run_verifier = verify;
    ForeignPipeline foreign = MakeForeignPipeline(
        *context.system, std::make_unique<Catalog>(MakeTpcdsCatalog()),
        options);
    Stopwatch watch;
    auto result =
        foreign.pipeline->DetectEquivalences(workload.subexpressions,
                                             context.system->value_range());
    GEQO_CHECK(result.ok()) << result.status().ToString();
    return {std::move(*result), watch.ElapsedSeconds()};
  };

  // Ground truth: the AV over every pair (its output defines truth, §7.5).
  auto [av_all, av_seconds] = run_with(false, false, false, true);
  const std::vector<std::pair<size_t, size_t>>& truth = av_all.equivalences;
  std::printf("AV ground truth: %zu equivalent pairs "
              "(%zu planted + %zu random byproducts)\n\n",
              truth.size(), workload.planted.size(),
              truth.size() - std::min(truth.size(), workload.planted.size()));

  std::printf("%-30s %10s %12s %6s %6s\n", "Filter", "Time (s)",
              "modeled (s)", "TPR", "TNR");
  std::printf("# 'modeled' adds the SPES/Z3 per-invocation price of %.0f ms\n"
              "# to each verifier call (see bench_util.h); filter-only rows\n"
              "# invoke no verifier and are unchanged.\n",
              kSpesInvocationOverheadSeconds * 1e3);

  auto [sf_result, sf_seconds] = run_with(true, false, false, false);
  PrintRow("Schema Filter (SF)", sf_seconds, sf_seconds,
           ScoreAgainstTruth(n, truth, sf_result.candidates));

  auto [vmf_result, vmf_seconds] = run_with(true, true, false, false);
  PrintRow("Vector Matching Filter (VMF)", vmf_seconds, vmf_seconds,
           ScoreAgainstTruth(n, truth, vmf_result.candidates));

  auto [emf_result, emf_seconds] = run_with(true, true, true, false);
  PrintRow("Equivalence Model Filter (EMF)", emf_seconds, emf_seconds,
           ScoreAgainstTruth(n, truth, emf_result.candidates));

  const double av_modeled = ModeledAvSeconds(av_seconds, workload.TotalPairs());
  PrintRow("Automated Verifier (AV)", av_seconds, av_modeled,
           ScoreAgainstTruth(n, truth, truth));

  auto [geqo_result, geqo_seconds] = run_with(true, true, true, true);
  const double geqo_modeled =
      ModeledAvSeconds(geqo_seconds, geqo_result.candidates.size());
  PrintRow("GEqO", geqo_seconds, geqo_modeled,
           ScoreAgainstTruth(n, truth, geqo_result.equivalences));
  WritePipelineArtifact("table1/geqo", geqo_result);
  std::printf("\nfull-pipeline stage funnel:\n%s",
              StageReport::FormatTable(geqo_result.stages).c_str());

  // Oracle + AV: verify exactly the true pairs.
  double oracle_modeled = 0.0;
  {
    SpesVerifier verifier(&tpcds);
    Stopwatch watch;
    for (const auto& [i, j] : truth) {
      verifier.CheckEquivalence(workload.subexpressions[i],
                                workload.subexpressions[j]);
    }
    ml::ConfusionMatrix perfect = ScoreAgainstTruth(n, truth, truth);
    oracle_modeled = ModeledAvSeconds(watch.ElapsedSeconds(), truth.size());
    PrintRow("Oracle + AV", watch.ElapsedSeconds(), oracle_modeled, perfect);
  }

  const size_t verified_by_geqo = geqo_result.candidates.size();
  std::printf("\nGEqO verified %zu pairs vs the oracle's %zu "
              "(epsilon = +%.1f%%; paper reports ~5-10%%)\n",
              verified_by_geqo, truth.size(),
              truth.empty()
                  ? 0.0
                  : 100.0 * (static_cast<double>(verified_by_geqo) -
                             static_cast<double>(truth.size())) /
                        static_cast<double>(truth.size()));
  std::printf("AV / GEqO ratio: measured %.1fx, modeled %.1fx "
              "(paper: ~290x at 50k pairs)\n",
              av_seconds / std::max(geqo_seconds, 1e-9),
              av_modeled / std::max(geqo_modeled, 1e-9));
  std::printf("GEqO / Oracle+AV modeled ratio: %.1fx (paper: ~3x)\n",
              geqo_modeled / std::max(oracle_modeled, 1e-9));
  return 0;
}
